package snacc

import (
	"bytes"
	"fmt"
	"testing"

	"snacc/internal/sim"
)

// TestClusterRandomizedDataIntegrity is the scale-out crash variant of
// TestRandomizedDataIntegrity: a randomized overlapping read/write workload
// runs against a replicated 4-node cluster while one node's controller is
// surprise-removed mid-run. For R in {2, 3} every byte must survive — reads
// fail over, writes re-home to survivors, and background re-replication
// restores full replication before the run drains — and the entire
// timeline must be byte-identical at any kernel worker count.
func TestClusterRandomizedDataIntegrity(t *testing.T) {
	for _, r := range []int{2, 3} {
		r := r
		t.Run(fmt.Sprintf("R%d", r), func(t *testing.T) {
			base := runClusterIntegrity(t, r, 1)
			for _, w := range []int{2, 4} {
				if got := runClusterIntegrity(t, r, w); got != base {
					t.Errorf("workers=%d digest %x != workers=1 digest %x", w, got, base)
				}
			}
		})
	}
}

// runClusterIntegrity runs one kill-a-node workload and returns a digest
// over the final readback bytes, the cluster clock, and the recovery
// counters — equal digests mean byte- and timeline-identical runs.
func runClusterIntegrity(t *testing.T, replication, workers int) uint64 {
	quorum := replication - 1
	if quorum < 1 {
		quorum = 1
	}
	sys := MustNewSystem(Options{
		Seed:          9,
		KernelWorkers: workers,
		Cluster: &ClusterOptions{
			Nodes:       4,
			Replication: replication,
			Quorum:      quorum,
			NodeFaults:  map[int]*FaultOptions{2: {RemoveAtCommand: 6}},
		},
	})

	const span = 2 << 20 // 2 MiB working window (8 default chunks)
	shadow := make([]byte, span)
	rng := sim.NewRand(uint64(replication)*31 + 5)
	const prime = 1099511628211
	digest := uint64(14695981039346656037)

	// Failures are collected and reported outside Execute: t.Fatalf inside
	// a sim proc goroutine aborts it without unwinding the kernel and
	// deadlocks the run.
	var failure string
	sys.Execute(func(h *Handle) {
		for op := 0; op < 70; op++ {
			n := (rng.Int63n(96) + 1) * 512
			addr := uint64(rng.Int63n((span-n)/512)) * 512
			if rng.Float64() < 0.55 {
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(rng.Int63n(256))
				}
				if err := h.WriteErr(addr, data); err != nil {
					failure = fmt.Sprintf("op %d: write %d@%#x: %v", op, n, addr, err)
					return
				}
				copy(shadow[addr:], data)
			} else {
				got, err := h.ReadErr(addr, n)
				if err != nil {
					failure = fmt.Sprintf("op %d: read %d@%#x: %v", op, n, addr, err)
					return
				}
				if want := shadow[addr : addr+uint64(n)]; !bytes.Equal(got, want) {
					failure = fmt.Sprintf("op %d: read %d@%#x diverged from shadow (first diff at %d)",
						op, n, addr, firstDiff(got, want))
					return
				}
			}
		}
		got, err := h.ReadErr(0, span)
		if err != nil {
			failure = fmt.Sprintf("final readback: %v", err)
			return
		}
		if !bytes.Equal(got, shadow) {
			failure = fmt.Sprintf("final readback diverged at byte %d", firstDiff(got, shadow))
			return
		}
		for _, b := range got {
			digest = (digest ^ uint64(b)) * prime
		}
		digest = (digest ^ uint64(h.Now())) * prime
	})
	if failure != "" {
		t.Fatal(failure)
	}

	st := sys.Stats()
	if st.NodeDeaths != 1 {
		t.Fatalf("R=%d workers=%d: NodeDeaths = %d, want 1", replication, workers, st.NodeDeaths)
	}
	if len(st.DeadNodes) != 1 || st.DeadNodes[0] != 2 {
		t.Fatalf("R=%d workers=%d: DeadNodes = %v, want [2]", replication, workers, st.DeadNodes)
	}
	if st.ReReplicatedBytes == 0 {
		t.Fatalf("R=%d workers=%d: repair never ran: %+v", replication, workers, st)
	}
	if st.UnderReplicatedChunks != 0 {
		t.Fatalf("R=%d workers=%d: cluster still under-replicated after drain (%d chunks)",
			replication, workers, st.UnderReplicatedChunks)
	}
	digest = (digest ^ uint64(st.NodeDeaths)) * prime
	digest = (digest ^ uint64(st.Failovers)) * prime
	digest = (digest ^ uint64(st.ReReplicatedBytes)) * prime
	digest = (digest ^ uint64(st.DegradedWindowNs)) * prime
	digest = (digest ^ uint64(st.SimTime)) * prime
	return digest
}

package cluster

// The remote streaming protocol is NVMe-oF in miniature: the coordinator
// frames command capsules onto the simulated Ethernet link and each node
// answers with a response capsule; data rides the same frames (write
// payload with the command, read payload with the response), so a transfer
// pays real store-and-forward, serialization, and 802.3x backpressure in
// the MAC/switch models. The switch's per-egress FIFO gives per-node
// in-order delivery, and every frame crosses shard domains over an edge
// whose lookahead is the declared wire latency.

// op selects a capsule's operation.
type op uint8

const (
	// opWrite carries a replica write: payload in the frame, one response
	// capsule acknowledging persistence.
	opWrite op = iota
	// opRead requests n bytes; the response capsule carries them back.
	opRead
	// opProbe is the health ladder's liveness check: a dead node's serve
	// loop still answers (the simulated NIC outlives the NVMe controller),
	// reporting whether its streamer can serve I/O.
	opProbe
)

func (o op) String() string {
	switch o {
	case opWrite:
		return "write"
	case opRead:
		return "read"
	case opProbe:
		return "probe"
	default:
		return "op?"
	}
}

// capsuleBytes is the on-wire size of a command or response capsule —
// 64 bytes, the NVMe-oF submission-capsule floor.
const capsuleBytes = 64

// capsule is one command from the coordinator to a node, riding Frame.Meta;
// write payload rides Frame.Data alongside it.
type capsule struct {
	Op   op
	ID   uint64 // request id, echoed by the response
	Node int    // destination node
	Addr uint64 // node-local device byte address
	Len  int64
}

// response answers one capsule, riding Frame.Meta on the way back; read
// payload rides Frame.Data.
type response struct {
	ID   uint64
	Node int // responding node
	OK   bool
	// Err carries the node-side failure rendered to a string — capsules
	// cross shard domains, so they carry plain data, not live error values.
	Err string
	// Timeout marks a synthesized response: the coordinator's watchdog
	// expired before the node answered (the node never sent this).
	Timeout bool
	Len     int64
}

// Package cluster scales the single-node SNAcc system out over the
// simulated network: M streamer nodes — each a full TaPaSCo platform with
// its own NVMe SSD and Streamer, living in its own conservative-parallel
// DES domain — sit behind the internal/ethernet switch, and a coordinator
// in the "front" domain speaks an NVMe-oF-style capsule protocol to them
// (protocol.go). A consistent-hash ring (ring.go) shards the logical byte
// space in chunks with replication factor R: writes fan out to R replicas
// and acknowledge at a configurable quorum, reads prefer the primary
// replica and fail over on error or timeout.
//
// The robustness core reuses the existing recovery ladder end to end: node
// death (controller crash/hang/removal via internal/fault, or a link
// partition dropping frames via fault.LinkInjector) trips a per-node
// health tracker (alive → suspect → dead, echoing the Streamer's circuit
// breaker), traffic redirects to survivors, and a background repair
// process re-replicates under-replicated chunks onto the remaining nodes
// while foreground I/O continues. Recovered nodes rejoin through a bounded
// prober and resync through the same repair path.
package cluster

import (
	"fmt"

	"snacc/internal/ethernet"
	"snacc/internal/fault"
	"snacc/internal/obs"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// nodeBAR is where each node's private fabric places its SSD register BAR
// (nodes are independent PCIe fabrics, so the address can repeat).
const nodeBAR = 0x10_0000_0000

// DefaultChunkBytes is the replication granule: the unit of placement,
// locking, and repair. 256 KiB keeps a whole-chunk repair copy to one
// capsule exchange under the default Ethernet FIFO sizing.
const DefaultChunkBytes = 256 * sim.KiB

// Partition describes one link-level fault window against a node, mapped
// onto fault.LinkInjector rules at the affected receive sites. With
// neither ToNode nor FromNode set the partition applies in both
// directions.
type Partition struct {
	// Node is the partitioned node.
	Node int
	// From/Until bound the window on the simulation clock ([From, Until),
	// Until 0 = forever).
	From, Until sim.Time
	// Drop discards matched frames; otherwise they are delivered Delay
	// late.
	Drop  bool
	Delay sim.Time
	// Probability/Nth/Count select frames within the window the way
	// fault.LinkRule does; all zero matches every frame.
	Probability float64
	Nth         int64
	Count       int64
	// ToNode drops/delays frames the node receives; FromNode frames the
	// coordinator receives from it.
	ToNode, FromNode bool
}

// Config parameterizes a cluster.
type Config struct {
	// Nodes is the node count M (>= 2).
	Nodes int
	// Replication is the copies-per-chunk factor R (1 <= R <= Nodes).
	Replication int
	// Quorum is the replica acks a write needs before acknowledging the
	// caller (1 <= Quorum <= Replication); the remaining acks resolve in
	// the background. When fewer than Quorum replicas of a chunk remain
	// alive, writes degrade to the survivors rather than failing.
	Quorum int
	// ChunkBytes is the placement/repair granule, a positive multiple of
	// 4 KiB up to 4 MiB. Default DefaultChunkBytes.
	ChunkBytes int64
	// VNodes is the ring's virtual-node count per node (DefaultVNodes
	// when 0).
	VNodes int
	// KernelWorkers is the shard worker budget (min 1; results are
	// identical at any count). Domains synchronize by per-domain safe
	// times, so a node whose inbound links are quiet advances past the
	// global minimum lookahead; sim.Shard.SyncStats exposes the round
	// counters.
	KernelWorkers int
	// Functional moves real payload bytes end to end.
	Functional bool
	// Seed derives each node's NAND jitter seed and the link injectors'
	// PRNG streams.
	Seed uint64
	// Variant/QueueDepth configure each node's Streamer.
	Variant    streamer.Variant
	QueueDepth int

	// RequestTimeout is the coordinator's per-capsule watchdog — it must
	// comfortably exceed a node's worst-case local recovery (crash detect
	// + controller reset + replay). Default 10 ms.
	RequestTimeout sim.Time
	// DeadAfter is the consecutive-failure count that declares a node
	// dead (the first failure marks it suspect). Default 2.
	DeadAfter int
	// ProbeInterval/ProbeLimit bound the rejoin prober for a dead node:
	// one liveness probe per interval, giving up after the limit.
	// Defaults 2 ms and 25.
	ProbeInterval sim.Time
	ProbeLimit    int

	// TraceSpans attaches a per-node span tracer (obs.Tracer with the
	// node identity stamped); SpanLimit caps each node's retention.
	TraceSpans bool
	SpanLimit  int

	// Ethernet overrides the link model config (DefaultConfig when
	// zero). FIFO and switch buffers are widened to fit ChunkBytes.
	Ethernet *ethernet.Config

	// NodeInjector, when set, supplies a per-node NVMe fault injector
	// (nil for healthy nodes) — built per node, never shared, so each
	// node domain owns its PRNG stream.
	NodeInjector func(node int) *fault.Injector
	// StreamerTune, when set, adjusts a node's Streamer config after the
	// cluster recovery defaults are applied.
	StreamerTune func(node int, cfg *streamer.Config)
	// Partitions lists link-level fault windows (see Partition).
	Partitions []Partition
}

// DefaultConfig returns a functional cluster config.
func DefaultConfig(nodes, replication, quorum int) Config {
	return Config{
		Nodes:       nodes,
		Replication: replication,
		Quorum:      quorum,
		Functional:  true,
	}
}

// validate fills defaults and rejects invalid shapes.
func (cfg *Config) validate() error {
	if cfg.Nodes < 2 {
		return fmt.Errorf("cluster: Nodes must be >= 2, got %d", cfg.Nodes)
	}
	if cfg.Replication < 1 || cfg.Replication > cfg.Nodes {
		return fmt.Errorf("cluster: Replication must be in [1, Nodes=%d], got %d", cfg.Nodes, cfg.Replication)
	}
	if cfg.Quorum < 1 || cfg.Quorum > cfg.Replication {
		return fmt.Errorf("cluster: Quorum must be in [1, Replication=%d], got %d", cfg.Replication, cfg.Quorum)
	}
	if cfg.ChunkBytes == 0 {
		cfg.ChunkBytes = DefaultChunkBytes
	}
	if cfg.ChunkBytes <= 0 || cfg.ChunkBytes%4096 != 0 || cfg.ChunkBytes > 4*sim.MiB {
		return fmt.Errorf("cluster: ChunkBytes must be a positive multiple of 4 KiB up to 4 MiB, got %d", cfg.ChunkBytes)
	}
	if cfg.KernelWorkers < 1 {
		cfg.KernelWorkers = 1
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * sim.Millisecond
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 2
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * sim.Millisecond
	}
	if cfg.ProbeLimit <= 0 {
		cfg.ProbeLimit = 25
	}
	for _, pt := range cfg.Partitions {
		if pt.Node < 0 || pt.Node >= cfg.Nodes {
			return fmt.Errorf("cluster: partition names node %d outside [0, %d)", pt.Node, cfg.Nodes)
		}
	}
	return nil
}

// Plan maps an M-node cluster onto a conservative-parallel shard
// partition: the switch and coordinator share the "front" domain, each
// node is its own domain, and every front<->node edge declares the
// Ethernet wire propagation delay as lookahead (every delivery a MAC or
// switch port schedules is at least that far in the future).
func Plan(nodes int, eth ethernet.Config) sim.Plan {
	p := sim.Plan{Domains: []string{"front"}}
	wire := eth.EdgeLookahead()
	for i := 0; i < nodes; i++ {
		name := nodeDomain(i)
		p.Domains = append(p.Domains, name)
		p.Edges = append(p.Edges,
			sim.EdgeSpec{Src: "front", Dst: name, Lookahead: wire},
			sim.EdgeSpec{Src: name, Dst: "front", Lookahead: wire},
		)
	}
	return p
}

func nodeDomain(i int) string { return fmt.Sprintf("node%d", i) }

// Cluster is an assembled multi-node system.
type Cluster struct {
	cfg   Config
	eth   ethernet.Config
	shard *sim.Shard
	front *sim.Kernel
	sw    *ethernet.Switch
	nodes []*node
	co    *coordinator
}

// New builds and initializes a cluster: shard topology per Plan, one full
// platform stack per node, the switch fabric, and the coordinator's
// daemons (response router, repair worker, node serve loops).
func New(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ecfg := ethernet.DefaultConfig()
	if cfg.Ethernet != nil {
		ecfg = *cfg.Ethernet
	}
	// A whole-chunk capsule must fit the receive FIFOs with room for
	// pause-reaction headroom, or large repair frames would drop even on
	// an idle link.
	if minFIFO := 4 * (cfg.ChunkBytes + capsuleBytes); ecfg.RxFIFOBytes < minFIFO {
		ecfg.RxFIFOBytes = minFIFO
	}

	cl := &Cluster{cfg: cfg, eth: ecfg}
	cl.shard = sim.NewShard(cfg.KernelWorkers)
	plan := Plan(cfg.Nodes, ecfg)
	domains, edges, err := plan.Build(cl.shard)
	if err != nil {
		return nil, err
	}
	cl.front = domains["front"].Kernel()
	cl.sw = ethernet.NewSwitch(cl.front, "cluster-sw", ecfg, cfg.Nodes+1, 8*(cfg.ChunkBytes+capsuleBytes))
	comac := ethernet.NewMAC(cl.front, "coord", ecfg)
	cl.sw.Attach(0, comac)

	for i := 0; i < cfg.Nodes; i++ {
		n := newNode(cfg, ecfg, i, domains[nodeDomain(i)].Kernel())
		cl.nodes = append(cl.nodes, n)
		toNode := edges[fmt.Sprintf("front->%s", nodeDomain(i))]
		fromNode := edges[fmt.Sprintf("%s->front", nodeDomain(i))]
		if err := cl.sw.AttachCross(i+1, n.mac, toNode, fromNode); err != nil {
			return nil, err
		}
	}

	// Drain node initialization (admin bring-up, queue creation) before
	// any traffic.
	cl.shard.Run(0)
	for _, n := range cl.nodes {
		if n.initErr != nil {
			return nil, fmt.Errorf("cluster: node %d init: %w", n.id, n.initErr)
		}
		if !n.initOK {
			return nil, fmt.Errorf("cluster: node %d initialization stalled", n.id)
		}
	}

	cl.co = newCoordinator(cl, comac)
	for _, n := range cl.nodes {
		n.spawnServe()
	}
	cl.co.spawnDaemons()
	return cl, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Cluster {
	cl, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return cl
}

// Execute runs fn as a coordinator-domain process and advances the whole
// shard until everything it triggered drains.
//
// Run leaves each domain kernel at its own last-event time, so after a
// drain the front domain can lag the node domains. The app is therefore
// started at the shard-wide maximum: a send from an earlier clock would
// otherwise ride an edge into a faster domain's past and violate the
// conservative delivery invariant.
func (cl *Cluster) Execute(fn func(p *sim.Proc)) {
	at := cl.shard.Now()
	cl.front.At(at, func() { cl.front.Spawn("app", fn) })
	cl.shard.Run(0)
}

// Write replicates data (len multiple of 512, addr 512-aligned) at the
// cluster's logical byte address, acknowledging at the configured quorum.
// It must be called from a process spawned via Execute.
func (cl *Cluster) Write(p *sim.Proc, addr uint64, data []byte) error {
	return cl.co.write(p, addr, int64(len(data)), data)
}

// WriteTimed is a timing-only Write of n bytes.
func (cl *Cluster) WriteTimed(p *sim.Proc, addr uint64, n int64) error {
	return cl.co.write(p, addr, n, nil)
}

// Read returns n bytes from the cluster's logical byte address, preferring
// the primary replica and failing over to the others. On error the
// returned buffer holds the pieces that succeeded.
func (cl *Cluster) Read(p *sim.Proc, addr uint64, n int64) ([]byte, error) {
	return cl.co.read(p, addr, n)
}

// KernelWorkers returns the shard worker budget.
func (cl *Cluster) KernelWorkers() int { return cl.shard.Workers() }

// Capacity returns the cluster's logical byte capacity: one node's
// namespace (replicas store chunks at their logical addresses).
func (cl *Cluster) Capacity() int64 {
	return cl.nodes[0].dev.Config().NamespaceBytes
}

// Nodes returns the node count.
func (cl *Cluster) Nodes() int { return len(cl.nodes) }

// Node returns node i's streamer (test instrumentation).
func (cl *Cluster) Node(i int) *streamer.Streamer { return cl.nodes[i].st }

// Spans returns the completed spans of every node tracer, grouped in node
// order, each span carrying its node identity (nil without TraceSpans).
func (cl *Cluster) Spans() []obs.Span {
	var out []obs.Span
	for _, n := range cl.nodes {
		out = append(out, n.tracer.Spans()...)
	}
	return out
}

// Stats snapshots the cluster counters. Call between Execute runs, not
// from inside one.
func (cl *Cluster) Stats() Stats {
	s := cl.co.stats()
	s.SimTime = int64(cl.shard.Now())
	s.SimEvents = cl.shard.EventsExecuted()
	for _, n := range cl.nodes {
		s.LinkFramesDropped += n.rx.Dropped()
		s.LinkFramesDelayed += n.rx.Delayed()
		if n.st.Dead() {
			s.DeadNodes = append(s.DeadNodes, n.id)
		}
	}
	return s
}

// Stats is a snapshot of cluster counters.
type Stats struct {
	// NodeDeaths counts health-ladder death declarations; Rejoins counts
	// probed recoveries; Probes counts liveness probes sent.
	NodeDeaths int64
	Rejoins    int64
	Probes     int64
	// Failovers counts read attempts abandoned on one replica and
	// redirected to another.
	Failovers int64
	// ReReplicatedBytes is the payload the background repair worker
	// copied to restore replication.
	ReReplicatedBytes int64
	// DegradedWindowNs is the cumulative time any chunk held fewer live
	// replicas than the cluster could sustain.
	DegradedWindowNs int64
	// UnderReplicatedChunks is the current count of such chunks (0 once
	// repair has caught up).
	UnderReplicatedChunks int64
	// Chunks is the total chunks placed.
	Chunks int64
	// RequestTimeouts counts coordinator watchdog expirations;
	// LateReplies counts node responses that arrived after their
	// watchdog fired.
	RequestTimeouts int64
	LateReplies     int64
	// LinkFramesDropped/Delayed count link-injector firings across all
	// receive sites.
	LinkFramesDropped int64
	LinkFramesDelayed int64
	// BytesWritten/BytesRead are caller-acknowledged logical payload
	// bytes (BytesWritten counts each logical byte once, independent of
	// the replication factor).
	BytesWritten int64
	BytesRead    int64
	// DeadNodes lists nodes whose controllers are terminally dead.
	DeadNodes []int
	// SimTime/SimEvents mirror the shard clock and event counter.
	SimTime   int64
	SimEvents uint64
}

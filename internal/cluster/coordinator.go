package cluster

import (
	"fmt"

	"snacc/internal/ethernet"
	"snacc/internal/fault"
	"snacc/internal/sim"
)

// Node health states — the cluster-level echo of the Streamer's circuit
// breaker: a failure marks a node suspect (reads stop preferring it), and
// DeadAfter consecutive failures declare it dead (it leaves every replica
// set, repair re-homes its chunks, and a bounded prober watches for it to
// come back).
const (
	stateAlive = iota
	stateSuspect
	stateDead
)

type nodeHealth struct {
	state int
	fails int
}

// chunkMeta is the coordinator's bookkeeping for one placed chunk. The
// lock serializes every operation touching the chunk — foreground writes
// (held until all R replica acks resolve, not just the quorum), reads, and
// repair copies — which is what makes quorum early-acks, failover reads,
// and background repair mutually consistent without version counters.
type chunkMeta struct {
	// set lists the nodes holding a valid, complete copy of the chunk.
	// It is sticky: the ring seeds the initial placement and supplies
	// replacement targets, but membership changes only through failure
	// pruning and whole-chunk repair copies (a partial write to a node
	// holding none of the chunk's earlier writes would not be a valid
	// copy).
	set     []int
	written bool
	locked  bool
	waiters []*sim.Chan[struct{}]
	// under mirrors this chunk's contribution to the degraded-window
	// accounting.
	under bool
}

// arrival pairs a response capsule with its frame payload on its way to a
// waiting requester.
type arrival struct {
	rep  response
	data []byte
}

// coordinator owns all front-domain cluster state: the request router,
// chunk table, health ladder, and repair worker.
type coordinator struct {
	cl    *Cluster
	cfg   *Config
	k     *sim.Kernel
	mac   *ethernet.MAC
	ring  *Ring
	nextID uint64
	// waiters routes response IDs to requester channels; entries are
	// removed by whichever of response/watchdog fires first.
	waiters map[uint64]*sim.Chan[arrival]
	// linkRx holds the from-node link injectors (one per node, each
	// consulted only from the front domain).
	linkRx []*fault.LinkInjector
	health []nodeHealth
	chunks map[int64]*chunkMeta
	order  []int64 // chunk keys in placement order (deterministic scans)

	repairKick *sim.Chan[struct{}]

	// Stats.
	nodeDeaths    int64
	rejoins       int64
	probes        int64
	failovers     int64
	reReplicated  int64
	timeouts      int64
	lateReplies   int64
	bytesWritten  int64
	bytesRead     int64
	underN        int64
	degradedSince sim.Time
	degradedNs    sim.Time
}

func newCoordinator(cl *Cluster, mac *ethernet.MAC) *coordinator {
	co := &coordinator{
		cl:         cl,
		cfg:        &cl.cfg,
		k:          cl.front,
		mac:        mac,
		ring:       NewRing(cl.cfg.Nodes, cl.cfg.VNodes),
		waiters:    make(map[uint64]*sim.Chan[arrival]),
		health:     make([]nodeHealth, cl.cfg.Nodes),
		chunks:     make(map[int64]*chunkMeta),
		repairKick: sim.NewChan[struct{}](cl.front, 1),
	}
	for i := 0; i < cl.cfg.Nodes; i++ {
		li := fault.NewLinkInjector(splitmix64(cl.cfg.Seed + uint64(i) + 0x66726f))
		for _, pt := range cl.cfg.Partitions {
			if pt.Node != i || (!pt.FromNode && pt.ToNode) {
				continue
			}
			li.Add(fault.LinkRule{
				Name: fmt.Sprintf("partition-from-node%d", i),
				Drop: pt.Drop, Delay: pt.Delay,
				From: pt.From, Until: pt.Until,
				Probability: pt.Probability, Nth: pt.Nth, Count: pt.Count,
			})
		}
		co.linkRx = append(co.linkRx, li)
	}
	return co
}

func (co *coordinator) spawnDaemons() {
	co.k.Spawn("coord.rx", co.rxLoop)
	co.k.Spawn("coord.repair", co.repairLoop)
}

// rxLoop routes node responses to their waiting requesters, applying the
// from-node link injectors. Delayed frames are re-scheduled rather than
// held, so one degraded node cannot head-of-line-block the others'
// responses.
func (co *coordinator) rxLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		f := co.mac.Recv(p)
		rep, ok := f.Meta.(response)
		if !ok {
			continue
		}
		switch fate := co.linkRx[rep.Node].FrameFate(p.Now()); {
		case fate.Drop:
			continue
		case fate.Delay > 0:
			a := arrival{rep: rep, data: f.Data}
			co.k.After(fate.Delay, func() { co.route(a) })
		default:
			co.route(arrival{rep: rep, data: f.Data})
		}
	}
}

func (co *coordinator) route(a arrival) {
	ch, ok := co.waiters[a.rep.ID]
	if !ok {
		// The watchdog already resolved this request; the node's answer
		// (possibly a completed write) is accounted but discarded — the
		// chunk lock it raced is still held, so set bookkeeping stays
		// consistent.
		co.lateReplies++
		return
	}
	delete(co.waiters, a.rep.ID)
	ch.TryPut(a)
}

// sendReq frames one capsule toward a node and arms its watchdog; the
// response (or a synthesized timeout) lands on respCh exactly once.
func (co *coordinator) sendReq(p *sim.Proc, nd int, c capsule, payload []byte, respCh *sim.Chan[arrival]) {
	id := co.nextID
	co.nextID++
	c.ID = id
	c.Node = nd
	co.waiters[id] = respCh
	wire := int64(capsuleBytes)
	if c.Op == opWrite {
		wire += c.Len
	}
	co.mac.Send(p, ethernet.Frame{Bytes: wire, Data: payload, Meta: c, DstPort: nd + 1})
	co.k.After(co.cfg.RequestTimeout, func() {
		ch, ok := co.waiters[id]
		if !ok {
			return
		}
		delete(co.waiters, id)
		co.timeouts++
		ch.TryPut(arrival{rep: response{ID: id, Node: nd, Timeout: true, Err: "request timeout"}})
	})
}

// request is the blocking single-capsule exchange.
func (co *coordinator) request(p *sim.Proc, nd int, c capsule, payload []byte) arrival {
	ch := sim.NewChan[arrival](co.k, 1)
	co.sendReq(p, nd, c, payload, ch)
	return ch.Get(p)
}

// --- health ladder ---

func (co *coordinator) alive(nd int) bool { return co.health[nd].state != stateDead }

func (co *coordinator) aliveCount() int {
	n := 0
	for i := range co.health {
		if co.health[i].state != stateDead {
			n++
		}
	}
	return n
}

func (co *coordinator) noteSuccess(nd int) {
	h := &co.health[nd]
	if h.state == stateDead {
		// Rejoin goes through the prober, not through a stray late
		// success.
		return
	}
	h.state = stateAlive
	h.fails = 0
}

func (co *coordinator) noteFailure(nd int) {
	h := &co.health[nd]
	if h.state == stateDead {
		return
	}
	h.fails++
	if h.fails >= co.cfg.DeadAfter {
		co.declareDead(nd)
		return
	}
	h.state = stateSuspect
}

func (co *coordinator) declareDead(nd int) {
	co.health[nd].state = stateDead
	co.nodeDeaths++
	// The dead node leaves every replica set; repair re-homes what it
	// held while foreground I/O keeps running on the survivors.
	for _, key := range co.order {
		co.chunks[key].set = removeMember(co.chunks[key].set, nd)
	}
	co.recomputeUnder()
	co.kickRepair()
	co.spawnProber(nd)
}

func (co *coordinator) rejoin(nd int) {
	h := &co.health[nd]
	h.state = stateAlive
	h.fails = 0
	co.rejoins++
	// The rejoined node holds no valid chunks (its sets were pruned at
	// death and writes moved on); repair resyncs it as a target.
	co.recomputeUnder()
	co.kickRepair()
}

// spawnProber watches a dead node for recovery: one liveness probe per
// interval, up to the limit. A node whose controller is terminally gone
// answers every probe with "dead", so the prober gives up and the kernel
// drains; a healed partition or reset-recovered controller answers OK and
// rejoins.
func (co *coordinator) spawnProber(nd int) {
	co.k.Spawn(fmt.Sprintf("coord.probe%d", nd), func(p *sim.Proc) {
		for i := 0; i < co.cfg.ProbeLimit; i++ {
			p.Sleep(co.cfg.ProbeInterval)
			co.probes++
			a := co.request(p, nd, capsule{Op: opProbe}, nil)
			if a.rep.OK && !a.rep.Timeout {
				co.rejoin(nd)
				return
			}
		}
	})
}

// --- chunk table ---

func (co *coordinator) chunk(key int64) *chunkMeta {
	if m, ok := co.chunks[key]; ok {
		return m
	}
	m := &chunkMeta{}
	co.chunks[key] = m
	co.order = append(co.order, key)
	return m
}

func (co *coordinator) lockChunk(p *sim.Proc, m *chunkMeta) {
	for m.locked {
		w := sim.NewChan[struct{}](co.k, 1)
		m.waiters = append(m.waiters, w)
		w.Get(p)
	}
	m.locked = true
}

func (co *coordinator) unlockChunk(m *chunkMeta) {
	m.locked = false
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		w.TryPut(struct{}{})
	}
}

// liveSet returns the chunk's members that are not dead (pruning makes
// this usually the whole set; a member can fail between prunes).
func (co *coordinator) liveSet(m *chunkMeta) []int {
	var out []int
	for _, nd := range m.set {
		if co.alive(nd) {
			out = append(out, nd)
		}
	}
	return out
}

// wantReplicas is the replication the cluster can currently sustain.
func (co *coordinator) wantReplicas() int {
	want := co.cfg.Replication
	if a := co.aliveCount(); want > a {
		want = a
	}
	return want
}

func (co *coordinator) setUnder(m *chunkMeta, under bool) {
	if m.under == under {
		return
	}
	m.under = under
	if under {
		co.underN++
		if co.underN == 1 {
			co.degradedSince = co.k.Now()
		}
		return
	}
	co.underN--
	if co.underN == 0 {
		co.degradedNs += co.k.Now() - co.degradedSince
	}
}

func (co *coordinator) updateUnder(m *chunkMeta) {
	co.setUnder(m, m.written && len(co.liveSet(m)) < co.wantReplicas())
}

func (co *coordinator) recomputeUnder() {
	for _, key := range co.order {
		co.updateUnder(co.chunks[key])
	}
}

func (co *coordinator) kickRepair() { co.repairKick.TryPut(struct{}{}) }

func removeMember(set []int, nd int) []int {
	out := set[:0]
	for _, m := range set {
		if m != nd {
			out = append(out, m)
		}
	}
	return out
}

func contains(set []int, nd int) bool {
	for _, m := range set {
		if m == nd {
			return true
		}
	}
	return false
}

// --- write path ---

func (co *coordinator) write(p *sim.Proc, addr uint64, n int64, data []byte) error {
	if addr%512 != 0 || n%512 != 0 {
		panic(fmt.Sprintf("cluster: transfer %d@%#x not 512-aligned", n, addr))
	}
	var firstErr error
	chunkB := uint64(co.cfg.ChunkBytes)
	var off int64
	for off < n {
		pos := addr + uint64(off)
		key := int64(pos / chunkB)
		m := co.cfg.ChunkBytes - int64(pos%chunkB)
		if m > n-off {
			m = n - off
		}
		var d []byte
		if data != nil {
			d = data[off : off+int64(m)]
		}
		if err := co.writePiece(p, key, pos, m, d); err != nil && firstErr == nil {
			firstErr = err
		}
		off += m
	}
	if firstErr == nil {
		co.bytesWritten += n
	}
	return firstErr
}

// writeState accumulates one piece's replica outcomes across the
// foreground quorum wait and the background finisher.
type writeState struct {
	co        *coordinator
	m         *chunkMeta
	key       int64
	acked     int
	remaining int
	failed    []int
}

func (st *writeState) absorb(a arrival) {
	st.remaining--
	if a.rep.OK && !a.rep.Timeout {
		st.acked++
		st.co.noteSuccess(a.rep.Node)
		return
	}
	st.failed = append(st.failed, a.rep.Node)
	st.co.noteFailure(a.rep.Node)
}

// finalize applies the piece's outcomes to the chunk and releases it: a
// failed or timed-out replica no longer holds a valid copy (even a timeout
// — the write may not have landed), so it leaves the set and repair
// restores the count.
func (st *writeState) finalize() {
	co := st.co
	for _, nd := range st.failed {
		st.m.set = removeMember(st.m.set, nd)
	}
	if !st.m.written {
		if st.acked > 0 {
			st.m.written = true
			co.chunksPlacedCheck(st.key)
		} else {
			st.m.set = nil
		}
	}
	co.updateUnder(st.m)
	if len(st.failed) > 0 {
		co.kickRepair()
	}
	co.unlockChunk(st.m)
}

// chunksPlacedCheck exists for debuggability symmetry; placement already
// recorded the key in co.order.
func (co *coordinator) chunksPlacedCheck(key int64) {
	if _, ok := co.chunks[key]; !ok {
		panic(fmt.Sprintf("cluster: chunk %d written but never placed", key))
	}
}

func (co *coordinator) writePiece(p *sim.Proc, key int64, addr uint64, n int64, data []byte) error {
	m := co.chunk(key)
	co.lockChunk(p, m)
	var targets []int
	if !m.written {
		targets = co.ring.Lookup(uint64(key), co.cfg.Replication, co.alive)
		m.set = append([]int(nil), targets...)
	} else {
		targets = co.liveSet(m)
	}
	if len(targets) == 0 {
		co.unlockChunk(m)
		return fmt.Errorf("cluster: chunk %d unavailable: no live replica", key)
	}
	// One payload copy per piece, shared read-only by every replica
	// frame, decoupled from the caller's buffer.
	var payload []byte
	if data != nil {
		payload = append([]byte(nil), data...)
	}
	respCh := sim.NewChan[arrival](co.k, len(targets))
	for _, nd := range targets {
		co.sendReq(p, nd, capsule{Op: opWrite, Addr: addr, Len: n}, payload, respCh)
	}
	needQ := co.cfg.Quorum
	if needQ > len(targets) {
		// Degraded mode: fewer live replicas than the quorum — accept
		// the survivors' acks rather than failing foreground writes
		// while repair catches up.
		needQ = len(targets)
	}
	st := &writeState{co: co, m: m, key: key, remaining: len(targets)}
	for st.remaining > 0 {
		st.absorb(respCh.Get(p))
		if st.acked >= needQ && st.remaining > 0 {
			// Quorum reached: acknowledge the caller now; a finisher
			// resolves the stragglers and releases the chunk.
			co.k.Spawn("coord.write.fin", func(fp *sim.Proc) {
				for st.remaining > 0 {
					st.absorb(respCh.Get(fp))
				}
				st.finalize()
			})
			return nil
		}
	}
	var err error
	if st.acked < needQ {
		err = fmt.Errorf("cluster: chunk %d write acked by %d/%d replicas (quorum %d)",
			key, st.acked, len(targets), needQ)
	}
	st.finalize()
	return err
}

// --- read path ---

func (co *coordinator) read(p *sim.Proc, addr uint64, n int64) ([]byte, error) {
	if addr%512 != 0 || n%512 != 0 {
		panic(fmt.Sprintf("cluster: transfer %d@%#x not 512-aligned", n, addr))
	}
	var out []byte
	if co.cfg.Functional {
		out = make([]byte, n)
	}
	var firstErr error
	chunkB := uint64(co.cfg.ChunkBytes)
	var off int64
	for off < n {
		pos := addr + uint64(off)
		key := int64(pos / chunkB)
		m := co.cfg.ChunkBytes - int64(pos%chunkB)
		if m > n-off {
			m = n - off
		}
		if err := co.readPiece(p, key, pos, m, out, off); err != nil && firstErr == nil {
			firstErr = err
		}
		off += m
	}
	if firstErr == nil {
		co.bytesRead += n
	}
	return out, firstErr
}

func (co *coordinator) readPiece(p *sim.Proc, key int64, addr uint64, n int64, out []byte, off int64) error {
	m := co.chunk(key)
	co.lockChunk(p, m)
	var candidates []int
	if m.written {
		// Prefer healthy members (the set's head is the primary), fall
		// back to suspects; dead members were pruned.
		for _, nd := range m.set {
			if co.health[nd].state == stateAlive {
				candidates = append(candidates, nd)
			}
		}
		for _, nd := range m.set {
			if co.health[nd].state == stateSuspect {
				candidates = append(candidates, nd)
			}
		}
	} else {
		// Never-written chunk: any live ring replica serves the zeros.
		candidates = co.ring.Lookup(uint64(key), co.cfg.Replication, co.alive)
	}
	var firstErr error
	for _, nd := range candidates {
		a := co.request(p, nd, capsule{Op: opRead, Addr: addr, Len: n}, nil)
		if a.rep.OK && !a.rep.Timeout {
			co.noteSuccess(nd)
			if out != nil && a.data != nil {
				copy(out[off:off+n], a.data)
			}
			co.unlockChunk(m)
			return nil
		}
		co.noteFailure(nd)
		co.failovers++
		if firstErr == nil {
			firstErr = fmt.Errorf("cluster: chunk %d read from node %d: %s", key, nd, a.rep.Err)
		}
	}
	co.unlockChunk(m)
	if firstErr == nil {
		firstErr = fmt.Errorf("cluster: chunk %d unavailable: no live replica", key)
	}
	return firstErr
}

// --- background re-replication ---

// repairLoop is the repair worker: woken by kicks (death, rejoin, write
// failures), it scans the chunk table in placement order and copies whole
// chunks from a surviving holder to a ring-preferred new target until
// every chunk is back at the sustainable replica count. Foreground I/O
// interleaves freely; the per-chunk lock serializes only same-chunk work.
func (co *coordinator) repairLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		co.repairKick.Get(p)
		for {
			key, m := co.nextRepair()
			if m == nil {
				break
			}
			co.repairChunk(p, key, m)
		}
	}
}

// nextRepair finds the first chunk short of the sustainable replica count
// that has both a live source and a live target candidate.
func (co *coordinator) nextRepair() (int64, *chunkMeta) {
	want := co.wantReplicas()
	for _, key := range co.order {
		m := co.chunks[key]
		if !m.written {
			continue
		}
		live := co.liveSet(m)
		if len(live) == 0 || len(live) >= want {
			continue
		}
		if co.repairTarget(key, m) < 0 {
			continue
		}
		return key, m
	}
	return 0, nil
}

// repairTarget picks the ring-preferred live node not already holding the
// chunk, or -1.
func (co *coordinator) repairTarget(key int64, m *chunkMeta) int {
	for _, nd := range co.ring.Lookup(uint64(key), co.cfg.Nodes, co.alive) {
		if !contains(m.set, nd) {
			return nd
		}
	}
	return -1
}

// repairChunk copies one whole chunk to one new target. Whole-chunk copies
// are what keep the sticky replica sets valid: the target ends up with
// every byte the chunk holds (unwritten regions read as zeros on the
// source and write as zeros on the target).
func (co *coordinator) repairChunk(p *sim.Proc, key int64, m *chunkMeta) {
	co.lockChunk(p, m)
	// Re-validate under the lock — foreground failures or a rejoin may
	// have changed the picture while we waited.
	live := co.liveSet(m)
	target := co.repairTarget(key, m)
	if !m.written || len(live) == 0 || len(live) >= co.wantReplicas() || target < 0 {
		co.unlockChunk(m)
		return
	}
	src := live[0]
	base := uint64(key) * uint64(co.cfg.ChunkBytes)
	rd := co.request(p, src, capsule{Op: opRead, Addr: base, Len: co.cfg.ChunkBytes}, nil)
	if !rd.rep.OK || rd.rep.Timeout {
		co.noteFailure(src)
		co.unlockChunk(m)
		return
	}
	co.noteSuccess(src)
	wr := co.request(p, target, capsule{Op: opWrite, Addr: base, Len: co.cfg.ChunkBytes}, rd.data)
	if !wr.rep.OK || wr.rep.Timeout {
		co.noteFailure(target)
		co.unlockChunk(m)
		return
	}
	co.noteSuccess(target)
	m.set = append(m.set, target)
	co.reReplicated += co.cfg.ChunkBytes
	co.updateUnder(m)
	co.unlockChunk(m)
}

// stats snapshots the coordinator counters.
func (co *coordinator) stats() Stats {
	degraded := co.degradedNs
	if co.underN > 0 {
		degraded += co.k.Now() - co.degradedSince
	}
	s := Stats{
		NodeDeaths:            co.nodeDeaths,
		Rejoins:               co.rejoins,
		Probes:                co.probes,
		Failovers:             co.failovers,
		ReReplicatedBytes:     co.reReplicated,
		DegradedWindowNs:      int64(degraded),
		UnderReplicatedChunks: co.underN,
		Chunks:                int64(len(co.order)),
		RequestTimeouts:       co.timeouts,
		LateReplies:           co.lateReplies,
		BytesWritten:          co.bytesWritten,
		BytesRead:             co.bytesRead,
	}
	for _, li := range co.linkRx {
		s.LinkFramesDropped += li.Dropped()
		s.LinkFramesDelayed += li.Delayed()
	}
	return s
}

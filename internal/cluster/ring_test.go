package cluster

import "testing"

func TestRingLookupDistinctAndFull(t *testing.T) {
	r := NewRing(5, 0)
	for key := uint64(0); key < 200; key++ {
		got := r.Lookup(key, 3, nil)
		if len(got) != 3 {
			t.Fatalf("key %d: got %d nodes, want 3", key, len(got))
		}
		seen := map[int]bool{}
		for _, nd := range got {
			if nd < 0 || nd >= 5 {
				t.Fatalf("key %d: node %d out of range", key, nd)
			}
			if seen[nd] {
				t.Fatalf("key %d: duplicate node %d in %v", key, nd, got)
			}
			seen[nd] = true
		}
	}
}

func TestRingLookupSkipsDeadNodes(t *testing.T) {
	r := NewRing(4, 0)
	dead := 2
	live := func(nd int) bool { return nd != dead }
	for key := uint64(0); key < 200; key++ {
		got := r.Lookup(key, 3, live)
		if len(got) != 3 {
			t.Fatalf("key %d: got %d live nodes, want 3", key, len(got))
		}
		for _, nd := range got {
			if nd == dead {
				t.Fatalf("key %d: dead node %d placed: %v", key, dead, got)
			}
		}
	}
	// Wanting more replicas than live nodes returns all live nodes.
	if got := r.Lookup(7, 4, live); len(got) != 3 {
		t.Fatalf("want-4 with 3 live returned %v", got)
	}
}

func TestRingPlacementSpread(t *testing.T) {
	r := NewRing(4, 0)
	counts := make([]int, 4)
	const keys = 4096
	for key := uint64(0); key < keys; key++ {
		counts[r.Lookup(key, 1, nil)[0]]++
	}
	for nd, c := range counts {
		// Even spread would be 1024 per node; virtual nodes keep the
		// imbalance well inside 2x.
		if c < keys/8 || c > keys/2 {
			t.Fatalf("node %d holds %d/%d primaries — ring badly unbalanced: %v", nd, c, keys, counts)
		}
	}
}

// TestRingStabilityUnderGrowth pins the consistent-hashing property the
// fuzz target generalizes: adding a node only moves placements onto the
// new node; every placement that changes at all gains only the new node.
func TestRingStabilityUnderGrowth(t *testing.T) {
	old := NewRing(4, 0)
	grown := NewRing(5, 0)
	moved := 0
	const keys = 2048
	for key := uint64(0); key < keys; key++ {
		before := old.Lookup(key, 2, nil)
		after := grown.Lookup(key, 2, nil)
		beforeSet := map[int]bool{}
		for _, nd := range before {
			beforeSet[nd] = true
		}
		for _, nd := range after {
			if !beforeSet[nd] {
				if nd != 4 {
					t.Fatalf("key %d: placement moved to pre-existing node %d (%v -> %v)", key, nd, before, after)
				}
				moved++
			}
		}
	}
	if moved == 0 {
		t.Fatalf("no placement moved to the new node across %d keys", keys)
	}
	if moved > keys {
		t.Fatalf("moved %d placements of %d keys — more than the new node's fair share region", moved, keys)
	}
}

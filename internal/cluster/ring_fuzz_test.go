package cluster

import "testing"

// FuzzRingPlacement pins the ring's three load-bearing properties for the
// replication layer across arbitrary cluster shapes and key spaces:
//
//  1. every key maps to exactly min(R, live) distinct live nodes;
//  2. adding a node moves placements only onto the new node;
//  3. removing a node (the live filter) disturbs only placements that
//     contained it — every surviving member stays placed.
func FuzzRingPlacement(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(0), uint64(0))
	f.Add(uint8(4), uint8(2), uint8(1), uint64(42))
	f.Add(uint8(5), uint8(3), uint8(2), uint64(1<<40))
	f.Add(uint8(8), uint8(3), uint8(7), uint64(0xdeadbeef))
	f.Add(uint8(3), uint8(1), uint8(0), uint64(1))
	f.Add(uint8(16), uint8(5), uint8(15), uint64(^uint64(0)))
	f.Fuzz(func(t *testing.T, nodesIn, wantIn, deadIn uint8, key uint64) {
		nodes := int(nodesIn%16) + 2 // 2..17
		want := int(wantIn%uint8(nodes)) + 1
		dead := int(deadIn) % nodes
		r := NewRing(nodes, 0)

		// Property 1: exactly `want` distinct in-range nodes.
		placed := r.Lookup(key, want, nil)
		if len(placed) != want {
			t.Fatalf("nodes=%d want=%d key=%d: placed %v", nodes, want, key, placed)
		}
		seen := map[int]bool{}
		for _, nd := range placed {
			if nd < 0 || nd >= nodes || seen[nd] {
				t.Fatalf("nodes=%d key=%d: bad placement %v", nodes, key, placed)
			}
			seen[nd] = true
		}

		// Property 2: growing the ring only moves placements onto the
		// new node.
		grownSet := NewRing(nodes+1, 0).Lookup(key, want, nil)
		for _, nd := range grownSet {
			if nd != nodes && !seen[nd] {
				t.Fatalf("nodes=%d key=%d: growth moved placement to old node %d (%v -> %v)",
					nodes, key, nd, placed, grownSet)
			}
		}

		// Property 3: killing one node keeps every survivor placed, and
		// the result is exactly min(want, nodes-1) distinct live nodes.
		live := func(nd int) bool { return nd != dead }
		failed := r.Lookup(key, want, live)
		wantLive := want
		if wantLive > nodes-1 {
			wantLive = nodes - 1
		}
		if len(failed) != wantLive {
			t.Fatalf("nodes=%d want=%d dead=%d key=%d: degraded placement %v",
				nodes, want, dead, key, failed)
		}
		failedSet := map[int]bool{}
		for _, nd := range failed {
			if nd == dead {
				t.Fatalf("key=%d: dead node %d placed: %v", key, dead, failed)
			}
			failedSet[nd] = true
		}
		for _, nd := range placed {
			if nd != dead && !failedSet[nd] {
				t.Fatalf("nodes=%d dead=%d key=%d: survivor %d lost its placement (%v -> %v)",
					nodes, dead, key, nd, placed, failed)
			}
		}
	})
}

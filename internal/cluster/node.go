package cluster

import (
	"fmt"

	"snacc/internal/ethernet"
	"snacc/internal/fault"
	"snacc/internal/nvme"
	"snacc/internal/obs"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

// node is one cluster member: a full TaPaSCo platform (its own PCIe
// fabric), one NVMe SSD, one Streamer, and a MAC — all owned by the node's
// shard domain. The serve loop applies capsules strictly in arrival order,
// which together with the switch's per-egress FIFO gives each node
// read-your-writes ordering without any protocol-level sequencing.
type node struct {
	id  int
	k   *sim.Kernel
	mac *ethernet.MAC
	dev *nvme.Device
	st  *streamer.Streamer
	c   *streamer.Client
	// rx drops/delays frames this node receives (the to-node side of a
	// Partition); owned by the node domain.
	rx     *fault.LinkInjector
	tracer *obs.Tracer

	initOK  bool
	initErr error
}

// clusterRecoveryDefaults arms the Streamer's full recovery ladder — the
// cluster's health tracker depends on nodes resolving local faults
// (bounded retry, breaker, reset+replay) or failing commands terminally,
// never stalling them.
func clusterRecoveryDefaults(cfg *streamer.Config) {
	cfg.CmdTimeout = 50 * sim.Millisecond
	cfg.MaxRetries = 3
	cfg.RetryBackoff = 10 * sim.Microsecond
	cfg.BreakerThreshold = 2
	cfg.MaxResets = 2
	cfg.CFSPollInterval = sim.Millisecond
}

// newNode assembles node id on its domain kernel and spawns its init
// process (drained by New before traffic starts).
func newNode(cfg Config, ecfg ethernet.Config, id int, k *sim.Kernel) *node {
	n := &node{id: id, k: k}
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	devName := fmt.Sprintf("ssd%d", id)
	devCfg := nvme.DefaultConfig(devName, nodeBAR)
	devCfg.Functional = cfg.Functional
	if cfg.Seed != 0 {
		// Distinct per-node NAND jitter streams from one cluster seed.
		devCfg.NAND.Seed = splitmix64(cfg.Seed + uint64(id))
	}
	n.dev = nvme.New(k, pl.Fabric, devCfg)

	stCfg := streamer.DefaultConfig(fmt.Sprintf("snacc%d", id), 0, cfg.Variant)
	stCfg.Functional = cfg.Functional
	if cfg.QueueDepth > 0 {
		stCfg.QueueDepth = cfg.QueueDepth
	}
	clusterRecoveryDefaults(&stCfg)
	if cfg.StreamerTune != nil {
		cfg.StreamerTune(id, &stCfg)
	}
	n.st = pl.AddStreamer(stCfg)
	n.c = streamer.NewClient(n.st)

	if cfg.NodeInjector != nil {
		if in := cfg.NodeInjector(id); in != nil {
			in.Attach(n.dev)
		}
	}
	if cfg.TraceSpans {
		n.tracer = obs.NewTracer(cfg.SpanLimit)
		n.tracer.SetNode(id)
		n.st.SetTracer(n.tracer)
		st := n.st
		n.dev.SetCmdObserver(func(qid, cid uint16, stage obs.Stage, at sim.Time) {
			if qid >= 1 && int(qid) <= st.IOQueues() {
				st.OnDeviceEvent(cid, stage, at)
			}
		})
	}

	n.rx = fault.NewLinkInjector(splitmix64(cfg.Seed + uint64(id) + 0x746f))
	for _, pt := range cfg.Partitions {
		if pt.Node != id || (!pt.ToNode && pt.FromNode) {
			continue
		}
		n.rx.Add(fault.LinkRule{
			Name: fmt.Sprintf("partition-to-node%d", id),
			Drop: pt.Drop, Delay: pt.Delay,
			From: pt.From, Until: pt.Until,
			Probability: pt.Probability, Nth: pt.Nth, Count: pt.Count,
		})
	}

	n.mac = ethernet.NewMAC(k, fmt.Sprintf("node%d", id), ecfg)
	drv := tapasco.NewDriver(pl, devName, nodeBAR)
	k.Spawn(fmt.Sprintf("node%d.init", id), func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			n.initErr = err
			return
		}
		if err := drv.AttachStreamer(p, n.st, 1); err != nil {
			n.initErr = err
			return
		}
		n.initOK = true
	})
	return n
}

// spawnServe starts the capsule serve loop (a daemon of the node domain).
func (n *node) spawnServe() {
	n.k.Spawn(fmt.Sprintf("node%d.serve", n.id), n.serve)
}

func (n *node) serve(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		f := n.mac.Recv(p)
		c, ok := f.Meta.(capsule)
		if !ok {
			continue
		}
		switch fate := n.rx.FrameFate(p.Now()); {
		case fate.Drop:
			continue
		case fate.Delay > 0:
			// Delaying in the serve loop preserves in-order application.
			p.Sleep(fate.Delay)
		}
		n.handle(p, c, f.Data)
	}
}

// handle applies one capsule against the local streamer and answers. A
// node whose controller died still answers — the simulated NIC outlives
// the NVMe controller — with fail-fast errors (and probe replies saying
// so), which is what lets the coordinator's ladder distinguish a dead
// controller from a dead link.
func (n *node) handle(p *sim.Proc, c capsule, data []byte) {
	rep := response{ID: c.ID, Node: n.id}
	var payload []byte
	switch c.Op {
	case opProbe:
		rep.OK = !n.st.Dead()
		if !rep.OK {
			rep.Err = "controller dead"
		}
	case opWrite:
		if err := n.c.WriteErr(p, c.Addr, c.Len, data); err != nil {
			rep.Err = err.Error()
		} else {
			rep.OK = true
			rep.Len = c.Len
		}
	case opRead:
		d, err := n.c.ReadErr(p, c.Addr, c.Len)
		if err != nil {
			rep.Err = err.Error()
		} else {
			rep.OK = true
			rep.Len = c.Len
			payload = d
		}
	}
	wire := int64(capsuleBytes)
	if payload != nil {
		wire += rep.Len
	}
	n.mac.Send(p, ethernet.Frame{Bytes: wire, Data: payload, Meta: rep, DstPort: 0})
}

package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"snacc/internal/fault"
	"snacc/internal/sim"
)

// fillPattern writes a deterministic byte pattern derived from tag.
func fillPattern(buf []byte, tag uint64) {
	h := splitmix64(tag)
	for i := range buf {
		if i%8 == 0 {
			h = splitmix64(h)
		}
		buf[i] = byte(h >> (8 * (i % 8)))
	}
}

func TestClusterValidation(t *testing.T) {
	cases := []Config{
		{Nodes: 1, Replication: 1, Quorum: 1},
		{Nodes: 3, Replication: 4, Quorum: 1},
		{Nodes: 3, Replication: 0, Quorum: 0},
		{Nodes: 3, Replication: 2, Quorum: 3},
		{Nodes: 3, Replication: 2, Quorum: 0},
		{Nodes: 3, Replication: 2, Quorum: 1, ChunkBytes: 1000},
		{Nodes: 3, Replication: 2, Quorum: 1, ChunkBytes: 8 * sim.MiB},
		{Nodes: 3, Replication: 2, Quorum: 1, Partitions: []Partition{{Node: 3}}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d (%+v): New accepted an invalid config", i, cfg)
		}
	}
}

func TestClusterWriteReadRoundTrip(t *testing.T) {
	cl := MustNew(DefaultConfig(3, 2, 1))
	const n = 640 * sim.KiB // spans three default chunks
	data := make([]byte, n)
	fillPattern(data, 7)
	var got []byte
	var rerr, werr error
	cl.Execute(func(p *sim.Proc) {
		werr = cl.Write(p, 512, data)
		got, rerr = cl.Read(p, 512, n)
	})
	if werr != nil || rerr != nil {
		t.Fatalf("write err %v, read err %v", werr, rerr)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read returned different bytes (first diff at %d)", firstDiff(got, data))
	}
	st := cl.Stats()
	if st.BytesWritten != n || st.BytesRead != n {
		t.Fatalf("BytesWritten/Read = %d/%d, want %d/%d", st.BytesWritten, st.BytesRead, n, n)
	}
	if st.NodeDeaths != 0 || st.Failovers != 0 || st.UnderReplicatedChunks != 0 {
		t.Fatalf("healthy run shows failures: %+v", st)
	}
	if st.Chunks < 3 {
		t.Fatalf("expected >= 3 chunks placed, got %d", st.Chunks)
	}
}

func TestClusterReadUnwrittenReturnsZeros(t *testing.T) {
	cl := MustNew(DefaultConfig(3, 2, 1))
	var got []byte
	var err error
	cl.Execute(func(p *sim.Proc) {
		got, err = cl.Read(p, 4096, 8192)
	})
	if err != nil {
		t.Fatalf("read of unwritten range: %v", err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("unwritten byte %d reads %#x", i, b)
		}
	}
}

// TestClusterWriteFanout verifies writes really land on R replicas: each
// member of a chunk's set serves the chunk's bytes when read directly.
func TestClusterWriteFanout(t *testing.T) {
	cfg := DefaultConfig(4, 3, 2)
	cfg.ChunkBytes = DefaultChunkBytes
	cl := MustNew(cfg)
	data := make([]byte, cfg.ChunkBytes)
	fillPattern(data, 99)
	cl.Execute(func(p *sim.Proc) {
		if err := cl.Write(p, 0, data); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	m := cl.co.chunks[0]
	if m == nil || len(m.set) != 3 {
		t.Fatalf("chunk 0 replica set = %+v, want 3 members", m)
	}
	// Read the chunk straight off each replica over the wire.
	for _, nd := range m.set {
		nd := nd
		var got []byte
		cl.Execute(func(p *sim.Proc) {
			a := cl.co.request(p, nd, capsule{Op: opRead, Addr: 0, Len: cfg.ChunkBytes}, nil)
			if !a.rep.OK {
				t.Errorf("replica %d read failed: %s", nd, a.rep.Err)
			}
			got = a.data
		})
		if !bytes.Equal(got, data) {
			t.Fatalf("replica %d holds different bytes (first diff %d)", nd, firstDiff(got, data))
		}
	}
	// And the per-node streamer counters show R-times write amplification.
	var fanout int64
	for i := 0; i < cfg.Nodes; i++ {
		fanout += cl.Node(i).BytesFromPE()
	}
	if want := 3 * cfg.ChunkBytes; fanout != want {
		t.Fatalf("replica write fan-out moved %d bytes, want %d", fanout, want)
	}
}

// killNodeInjector surprise-removes node `victim`'s controller at its Nth
// I/O completion.
func killNodeInjector(victim int, nth int64) func(int) *fault.Injector {
	return func(node int) *fault.Injector {
		if node != victim {
			return nil
		}
		in := fault.NewInjector(1)
		in.Add(fault.Rule{Name: "kill", Kind: fault.RemoveCtrl,
			Opcode: fault.OpAny, Nth: nth, Count: 1})
		return in
	}
}

// TestClusterNodeDeathFailoverAndRepair is the robustness headline: a
// whole node dies mid-workload and it is a non-event — reads fail over,
// writes re-home, repair restores full replication, and every byte
// survives.
func TestClusterNodeDeathFailoverAndRepair(t *testing.T) {
	cfg := DefaultConfig(4, 2, 1)
	cfg.Seed = 3
	cfg.NodeInjector = killNodeInjector(1, 6)
	cl := MustNew(cfg)

	const ops = 24
	const ioBytes = 64 * sim.KiB
	shadow := make(map[uint64][]byte)
	var failures []string
	cl.Execute(func(p *sim.Proc) {
		rnd := sim.NewRand(11)
		for i := 0; i < ops; i++ {
			addr := uint64(int64(rnd.Intn(64)) * ioBytes)
			data := make([]byte, ioBytes)
			fillPattern(data, uint64(i)<<32|addr)
			if err := cl.Write(p, addr, data); err != nil {
				failures = append(failures, fmt.Sprintf("write %d @%#x: %v", i, addr, err))
				continue
			}
			shadow[addr] = data
			if i%3 == 0 {
				got, err := cl.Read(p, addr, ioBytes)
				if err != nil {
					failures = append(failures, fmt.Sprintf("read %d @%#x: %v", i, addr, err))
				} else if !bytes.Equal(got, data) {
					failures = append(failures, fmt.Sprintf("read %d @%#x: bytes differ at %d", i, addr, firstDiff(got, data)))
				}
			}
		}
	})
	for _, f := range failures {
		t.Error(f)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Full readback after the dust settles: zero data loss.
	var readbackErrs []string
	cl.Execute(func(p *sim.Proc) {
		for addr, want := range shadow {
			got, err := cl.Read(p, addr, ioBytes)
			if err != nil {
				readbackErrs = append(readbackErrs, fmt.Sprintf("readback @%#x: %v", addr, err))
			} else if !bytes.Equal(got, want) {
				readbackErrs = append(readbackErrs, fmt.Sprintf("readback @%#x differs at %d", addr, firstDiff(got, want)))
			}
		}
	})
	for _, f := range readbackErrs {
		t.Error(f)
	}

	st := cl.Stats()
	if st.NodeDeaths != 1 {
		t.Fatalf("NodeDeaths = %d, want 1 (stats %+v)", st.NodeDeaths, st)
	}
	if len(st.DeadNodes) != 1 || st.DeadNodes[0] != 1 {
		t.Fatalf("DeadNodes = %v, want [1]", st.DeadNodes)
	}
	if st.ReReplicatedBytes == 0 {
		t.Fatalf("repair never ran: %+v", st)
	}
	if st.UnderReplicatedChunks != 0 {
		t.Fatalf("cluster still under-replicated after drain: %+v", st)
	}
	if st.DegradedWindowNs == 0 {
		t.Fatalf("degraded window not accounted: %+v", st)
	}
}

// TestClusterPartitionRejoin: a link partition (not a controller fault)
// isolates a node long enough for the health ladder to declare it dead;
// when the partition heals the prober brings it back, and the cluster ends
// fully replicated with zero data loss. The controller itself never dies,
// so DeadNodes stays empty — the ladder must distinguish a dead link from
// dead hardware only by observed behavior.
func TestClusterPartitionRejoin(t *testing.T) {
	cfg := DefaultConfig(3, 2, 1)
	cfg.Seed = 5
	cfg.RequestTimeout = sim.Millisecond
	cfg.ProbeInterval = 2 * sim.Millisecond
	cfg.ProbeLimit = 25
	cfg.Partitions = []Partition{{Node: 1, Drop: true, From: 0, Until: 20 * sim.Millisecond}}
	cl := MustNew(cfg)

	const ops = 18
	const ioBytes = 32 * sim.KiB
	shadow := make(map[uint64][]byte)
	var failures []string
	cl.Execute(func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			addr := uint64(int64(i) * 5 * ioBytes) // spread over many chunks
			data := make([]byte, ioBytes)
			fillPattern(data, uint64(i)+0x70617274)
			if err := cl.Write(p, addr, data); err != nil {
				failures = append(failures, fmt.Sprintf("write %d: %v", i, err))
				continue
			}
			shadow[addr] = data
		}
	})
	for _, f := range failures {
		t.Error(f)
	}
	if t.Failed() {
		t.FailNow()
	}

	st := cl.Stats()
	if st.NodeDeaths != 1 {
		t.Fatalf("partition did not trip the health ladder: %+v", st)
	}
	if st.Rejoins != 1 {
		t.Fatalf("healed partition did not rejoin: %+v", st)
	}
	if len(st.DeadNodes) != 0 {
		t.Fatalf("link partition reported dead hardware: %v", st.DeadNodes)
	}
	if st.LinkFramesDropped == 0 {
		t.Fatalf("partition dropped no frames: %+v", st)
	}
	if st.RequestTimeouts == 0 || st.Probes == 0 {
		t.Fatalf("ladder ran without timeouts/probes: %+v", st)
	}
	if st.UnderReplicatedChunks != 0 {
		t.Fatalf("cluster still under-replicated after rejoin: %+v", st)
	}

	var readbackErrs []string
	cl.Execute(func(p *sim.Proc) {
		for addr, want := range shadow {
			got, err := cl.Read(p, addr, ioBytes)
			if err != nil {
				readbackErrs = append(readbackErrs, fmt.Sprintf("readback @%#x: %v", addr, err))
			} else if !bytes.Equal(got, want) {
				readbackErrs = append(readbackErrs, fmt.Sprintf("readback @%#x differs at %d", addr, firstDiff(got, want)))
			}
		}
	})
	for _, f := range readbackErrs {
		t.Error(f)
	}
}

// TestClusterDeterminismAcrossWorkers pins byte-identical behavior at any
// shard worker count for the node-death scenario.
func TestClusterDeterminismAcrossWorkers(t *testing.T) {
	type fingerprint struct {
		stats  Stats
		digest uint64
	}
	run := func(workers int) fingerprint {
		cfg := DefaultConfig(4, 2, 1)
		cfg.Seed = 3
		cfg.KernelWorkers = workers
		cfg.NodeInjector = killNodeInjector(2, 5)
		cl := MustNew(cfg)
		const ops = 16
		const ioBytes = 32 * sim.KiB
		digest := uint64(14695981039346656037)
		cl.Execute(func(p *sim.Proc) {
			rnd := sim.NewRand(7)
			for i := 0; i < ops; i++ {
				addr := uint64(int64(rnd.Intn(48)) * ioBytes)
				data := make([]byte, ioBytes)
				fillPattern(data, uint64(i))
				if err := cl.Write(p, addr, data); err != nil {
					digest ^= 0xbad
				}
				got, err := cl.Read(p, addr, ioBytes)
				if err != nil {
					digest ^= 0xdead
				}
				for _, b := range got {
					digest ^= uint64(b)
					digest *= 1099511628211
				}
				digest ^= uint64(p.Now())
				digest *= 1099511628211
			}
		})
		return fingerprint{stats: cl.Stats(), digest: digest}
	}
	base := run(1)
	if base.stats.NodeDeaths != 1 {
		t.Fatalf("scenario did not kill the node: %+v", base.stats)
	}
	for _, w := range []int{2, 4} {
		got := run(w)
		if got.digest != base.digest {
			t.Errorf("workers=%d digest %x != workers=1 digest %x", w, got.digest, base.digest)
		}
		if fmt.Sprintf("%+v", got.stats) != fmt.Sprintf("%+v", base.stats) {
			t.Errorf("workers=%d stats diverged:\n  w1: %+v\n  w%d: %+v", w, base.stats, w, got.stats)
		}
	}
}

// TestClusterSpanNodeAttribution: per-node tracers stamp spans with node
// identity and the merged view keeps them attributable.
func TestClusterSpanNodeAttribution(t *testing.T) {
	cfg := DefaultConfig(3, 2, 2)
	cfg.TraceSpans = true
	cl := MustNew(cfg)
	data := make([]byte, 128*sim.KiB)
	fillPattern(data, 5)
	cl.Execute(func(p *sim.Proc) {
		if err := cl.Write(p, 0, data); err != nil {
			t.Errorf("write: %v", err)
		}
		if _, err := cl.Read(p, 0, int64(len(data))); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	spans := cl.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans traced")
	}
	nodesSeen := map[int]bool{}
	for _, sp := range spans {
		if sp.Node < 0 || sp.Node >= cfg.Nodes {
			t.Fatalf("span carries node %d outside the cluster", sp.Node)
		}
		nodesSeen[sp.Node] = true
	}
	if len(nodesSeen) < 2 {
		t.Fatalf("R=2 write traffic reached only nodes %v", nodesSeen)
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

package cluster

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring sharding the cluster's logical byte space
// across nodes. Each node projects VNodes points onto a 64-bit circle; a key
// hashes onto the circle and its replica set is the first R *distinct live*
// nodes walking clockwise from that point. Because a node's points depend
// only on its own identity, adding or removing a node moves only the arcs
// adjacent to its points — every other placement is stable, the property
// FuzzRingPlacement pins.
type Ring struct {
	nodes  int
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int
}

// DefaultVNodes is the virtual-node count per physical node; enough points
// that placement spreads evenly at the small cluster sizes the simulator
// runs (a handful of nodes), small enough that lookups stay cheap.
const DefaultVNodes = 64

// NewRing builds the ring for nodes physical nodes with vnodes points each
// (DefaultVNodes when vnodes <= 0).
func NewRing(nodes, vnodes int) *Ring {
	if nodes <= 0 {
		panic(fmt.Sprintf("cluster: ring needs at least one node, got %d", nodes))
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{nodes: nodes, vnodes: vnodes}
	for n := 0; n < nodes; n++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// 64-bit collisions are vanishingly rare but must still order
		// deterministically.
		return a.node < b.node
	})
	return r
}

// Nodes returns the physical node count the ring was built for.
func (r *Ring) Nodes() int { return r.nodes }

// Lookup returns up to want distinct nodes for key, walking clockwise from
// the key's hash and skipping nodes the live filter rejects (nil accepts
// all). Fewer than want nodes come back only when fewer live nodes exist.
func (r *Ring) Lookup(key uint64, want int, live func(node int) bool) []int {
	if want <= 0 {
		return nil
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []int
	seen := make([]bool, r.nodes)
	for i := 0; i < len(r.points) && len(out) < want; i++ {
		pt := r.points[(start+i)%len(r.points)]
		if seen[pt.node] {
			continue
		}
		seen[pt.node] = true
		if live != nil && !live(pt.node) {
			continue
		}
		out = append(out, pt.node)
	}
	return out
}

// splitmix64 is the avalanche finalizer both hash functions share —
// deterministic across runs and platforms, no seed material.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pointHash places virtual node v of physical node n on the circle.
func pointHash(n, v int) uint64 {
	return splitmix64(uint64(n)<<32 | uint64(uint32(v)) | 1<<63)
}

// keyHash places a chunk key on the circle.
func keyHash(key uint64) uint64 { return splitmix64(key) }

package bench

import (
	"fmt"

	"snacc/internal/nvme"
	"snacc/internal/obs"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// LatencyRow is one per-stage latency distribution of the latency-breakdown
// rig: where the nanoseconds of a variant's commands go, stage by stage.
type LatencyRow struct {
	Variant string
	Op      string   // "write" or "read"
	Stage   string   // pipeline stage the transition enters
	Count   int64    // commands observed
	P50     sim.Time // transition latency quantiles
	P90     sim.Time
	P99     sim.Time
	P999    sim.Time
	Max     sim.Time
}

// LatencyBreakdown runs a sequential write-then-read workload on every
// variant with span tracing enabled and reports the latency distribution of
// each pipeline-stage transition, split by direction — the simulation's
// version of the paper's §5.2 ILA attribution, but as percentiles over every
// command instead of a handful of captured transactions. Each variant runs
// on a private rig (own kernel, own tracer), so rows are deterministic at
// any -j.
func LatencyBreakdown(totalBytes int64) []LatencyRow {
	vs := []streamer.Variant{streamer.URAM, streamer.OnboardDRAM, streamer.HostDRAM}
	perVariant := mapRows(len(vs), func(i int) []LatencyRow {
		v := vs[i]
		rig := buildSNAcc(v, nil, nil)
		// Retain every span: one command per MiB each way, plus slack.
		tr := obs.NewTracer(int(2*totalBytes/sim.MiB) + 16)
		rig.st.SetTracer(tr)
		st := rig.st
		rig.dev.SetCmdObserver(func(qid, cid uint16, stage obs.Stage, at sim.Time) {
			if qid == 1 {
				st.OnDeviceEvent(cid, stage, at)
			}
		})
		rig.measure(func(p *sim.Proc) {
			streamer.SeqWrite(p, rig.c, 0, totalBytes)
			streamer.SeqRead(p, rig.c, 0, totalBytes)
		})
		if tr.Opened() != tr.Closed() {
			panic(fmt.Sprintf("bench: latency rig leaked spans (%d opened, %d closed)",
				tr.Opened(), tr.Closed()))
		}
		spans := tr.Spans()
		var rows []LatencyRow
		for _, op := range []string{"write", "read"} {
			var sel []obs.Span
			for _, sp := range spans {
				if sp.Write == (op == "write") && sp.Status == nvme.StatusSuccess {
					sel = append(sel, sp)
				}
			}
			rows = append(rows, LatencyStages(v.String(), op, sel)...)
		}
		return rows
	})
	var out []LatencyRow
	for _, rows := range perVariant {
		out = append(out, rows...)
	}
	return out
}

// LatencyStages reduces an already-traced span set to per-stage rows, for
// callers (snacctrace -spans) that ran their own workload and want the same
// table LatencyBreakdown produces.
func LatencyStages(variant, op string, spans []obs.Span) []LatencyRow {
	bd := obs.NewBreakdown(spans)
	var rows []LatencyRow
	for stg := obs.StageBufReady; stg < obs.NumStages; stg++ {
		h := &bd.Stage[stg]
		if h.Count() == 0 {
			continue
		}
		rows = append(rows, LatencyRow{
			Variant: variant, Op: op, Stage: stg.String(),
			Count: h.Count(),
			P50:   h.P50(), P90: h.P90(), P99: h.P99(), P999: h.P999(),
			Max: h.Max(),
		})
	}
	return rows
}

// RenderLatencyBreakdown formats the per-stage latency distributions.
func RenderLatencyBreakdown(rows []LatencyRow) Table {
	t := Table{
		Title:   "Latency breakdown — per-stage pipeline latency distributions (span tracer)",
		Columns: []string{"n", "p50", "p90", "p99", "p999", "max"},
		Notes: []string{
			"each row is the latency of entering that stage from the previous recorded stage",
			"stages: buf-ready (staging buffer) → submitted → doorbell → fetched (SQE over PCIe) → transfer (execution) → cqe → retired",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("%s %s %s", r.Variant, r.Op, r.Stage),
			Cells: []string{
				fmt.Sprintf("%d", r.Count),
				r.P50.String(), r.P90.String(), r.P99.String(), r.P999.String(),
				r.Max.String(),
			},
		})
	}
	return t
}

package bench

import (
	"reflect"
	"testing"

	"snacc/internal/sim"
)

// TestClusterSweepRecovers: every grid shape absorbs the node-1 kill —
// the death is detected, writes keep landing, the repairer restores full
// replication before drain — and the sweep is deterministic across
// parallelism levels.
func TestClusterSweepRecovers(t *testing.T) {
	grid := [][3]int{{3, 2, 1}, {4, 3, 2}}
	rows := ClusterSweep(grid, 2*sim.MiB)
	for _, r := range rows {
		if r.NodeDeaths != 1 {
			t.Errorf("n=%d R=%d Q=%d: NodeDeaths = %d, want 1", r.Nodes, r.Replication, r.Quorum, r.NodeDeaths)
		}
		if r.UnderRep != 0 {
			t.Errorf("n=%d R=%d Q=%d: %d chunks under-replicated at drain", r.Nodes, r.Replication, r.Quorum, r.UnderRep)
		}
		if r.ReRepMiB == 0 {
			t.Errorf("n=%d R=%d Q=%d: repair never ran", r.Nodes, r.Replication, r.Quorum)
		}
		if r.WriteGB <= 0 {
			t.Errorf("n=%d R=%d Q=%d: no goodput (%v GB/s)", r.Nodes, r.Replication, r.Quorum, r.WriteGB)
		}
	}
	prev := Parallelism()
	SetParallelism(4)
	again := ClusterSweep(grid, 2*sim.MiB)
	SetParallelism(prev)
	if !reflect.DeepEqual(rows, again) {
		t.Errorf("sweep diverged across parallelism levels:\nserial   %+v\nparallel %+v", rows, again)
	}
}

// TestClusterTimelineArc: the availability timeline covers the whole
// kill -> failover -> heal -> rejoin arc on one continuous write stream.
func TestClusterTimelineArc(t *testing.T) {
	pts, st := ClusterTimeline(24*sim.Millisecond, 2*sim.Millisecond)
	if len(pts) < 4 {
		t.Fatalf("only %d timeline samples", len(pts))
	}
	if st.NodeDeaths != 1 {
		t.Errorf("NodeDeaths = %d, want 1 (partition never killed the node)", st.NodeDeaths)
	}
	if st.Rejoins != 1 {
		t.Errorf("Rejoins = %d, want 1 (node never readmitted after heal)", st.Rejoins)
	}
	if st.LinkFramesDropped == 0 {
		t.Error("partition dropped no frames")
	}
	if len(st.DeadNodes) != 0 {
		t.Errorf("DeadNodes = %v after rejoin, want none", st.DeadNodes)
	}
}

package bench

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

// TestKernelSweepDeterministic pins the tentpole guarantee at the bench
// layer: the DomainPlan chain rig produces the same digest and event count
// at every worker count.
func TestKernelSweepDeterministic(t *testing.T) {
	r := KernelSweep([]int{1, 2, 4}, 2000)
	if !r.Deterministic {
		t.Fatalf("worker counts diverged: %+v", r.Points)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(r.Points))
	}
	base := r.Points[0]
	if base.Events == 0 || base.CrossEvents == 0 {
		t.Fatalf("chain rig executed no (cross) events: %+v", base)
	}
	for _, p := range r.Points[1:] {
		if p.Digest != base.Digest {
			t.Errorf("workers=%d digest %s != serial %s", p.Workers, p.Digest, base.Digest)
		}
		if p.Events != base.Events {
			t.Errorf("workers=%d events %d != serial %d", p.Workers, p.Events, base.Events)
		}
	}
	if got := []string{"ethernet", "pcie", "nvme0", "nvme1"}; len(r.Domains) != len(got) {
		t.Errorf("domains = %v", r.Domains)
	}
	if r.MinLookaheadNs != 150 {
		t.Errorf("min lookahead = %dns, want 150 (NVMe link propagation)", r.MinLookaheadNs)
	}
}

// TestKernelSweepCoreBound checks the machine-limit flag: requesting more
// workers than GOMAXPROCS must set CoreBound and say so in the note, so a
// flat speedup on constrained CI reads as the machine, not a regression.
func TestKernelSweepCoreBound(t *testing.T) {
	over := runtime.GOMAXPROCS(0) + 1
	r := KernelSweep([]int{1, over}, 500)
	if !r.CoreBound {
		t.Fatalf("CoreBound not set with %d workers on GOMAXPROCS=%d", over, runtime.GOMAXPROCS(0))
	}
	if !strings.Contains(r.Note, "core-bound") {
		t.Errorf("note does not flag the core limit: %q", r.Note)
	}
	last := r.Points[len(r.Points)-1]
	if last.EffectiveWorkers > runtime.GOMAXPROCS(0) {
		t.Errorf("effective workers %d exceeds GOMAXPROCS", last.EffectiveWorkers)
	}
}

// TestKernelSweepJSON round-trips the report and checks the rendered table.
func TestKernelSweepJSON(t *testing.T) {
	r := KernelSweep([]int{1, 2}, 500)
	var back KernelReport
	if err := json.Unmarshal([]byte(r.JSON()), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.MinLookaheadNs != r.MinLookaheadNs || len(back.Points) != len(r.Points) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, r)
	}
	tbl := RenderKernelSweep(r)
	s := tbl.String()
	if !strings.Contains(s, "workers=1") || !strings.Contains(s, r.Points[0].Digest) {
		t.Errorf("rendered table missing rows:\n%s", s)
	}
	bad := r
	bad.Deterministic = false
	if !strings.Contains(RenderKernelSweep(bad).String(), "DIGEST MISMATCH") {
		t.Error("non-deterministic report not flagged in table notes")
	}
}

package bench

import (
	"fmt"

	"snacc/internal/fault"
	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

// CrashSweepRow is one point of the controller-crash sweep: sequential read
// goodput and recovery-ladder accounting when the controller crashes every
// Nth executed command.
type CrashSweepRow struct {
	CrashEveryN int64   // injected crash period in commands; 0 = baseline
	GoodputGB   float64 // delivered bytes / elapsed, GB/s
	Crashes     int64   // controller crashes the device recorded
	Trips       int64   // circuit-breaker trips
	Resets      int64   // controller resets issued
	Replayed    int64   // in-flight commands replayed after resets
	MTTRUs      float64 // mean time from trip to resumed submission, µs
	Aborts      int64   // commands failed terminally (0 when recovery works)
}

// crashLadder enables the full recovery ladder on top of the per-command
// reference settings: a two-timeout breaker, two reset attempts, and a 1 ms
// controller-status poll as the fast-detect path (the 50 ms CmdTimeout is
// sized for worst-case queue-depth bursts, far too slow for crash detection).
func crashLadder(c *streamer.Config) {
	faultRecovery(c)
	c.BreakerThreshold = 2
	c.MaxResets = 2
	c.CFSPollInterval = sim.Millisecond
}

// CrashSweep measures URAM sequential-read goodput and mean time to recover
// as the injected controller-crash rate grows. Each row builds a fresh rig
// whose controller fatally crashes (CSTS.CFS, no fetches, no completions)
// every Nth executed command; the Streamer's breaker detects it via the
// status poll, resets the controller, and replays the in-flight window.
// Rows are independent and deterministic, so the sweep replays
// byte-identically at any parallelism level. N must be 0 or >= 2: a
// controller that crashes at every command never completes one.
func CrashSweep(everyN []int64, totalBytes int64) []CrashSweepRow {
	return mapRows(len(everyN), func(i int) CrashSweepRow {
		n := everyN[i]
		if n == 1 {
			panic("bench: CrashSweep period 1 can never make progress")
		}
		rig := buildSNAcc(streamer.URAM, crashLadder, nil)
		in := fault.NewInjector(faultSweepSeed)
		if n > 0 {
			in.Add(fault.Rule{Name: "ctrl-crash", Kind: fault.CrashCtrl,
				Opcode: fault.OpAny, Nth: n})
		}
		in.Attach(rig.dev)
		res := faultSeqRead(rig, 0, totalBytes)
		mttr := 0.0
		if trips := rig.st.BreakerTrips(); trips > 0 {
			mttr = float64(rig.st.RecoveryTime()) / float64(trips) / 1e3
		}
		return CrashSweepRow{
			CrashEveryN: n,
			GoodputGB:   res.GBps(),
			Crashes:     rig.dev.ControllerCrashes(),
			Trips:       rig.st.BreakerTrips(),
			Resets:      rig.st.ControllerResets(),
			Replayed:    rig.st.CommandsReplayed(),
			MTTRUs:      mttr,
			Aborts:      rig.st.CommandAborts(),
		}
	})
}

// CrashTimeline samples instantaneous sequential-write bandwidth while the
// controller crashes every Nth command — the goodput dips are the
// detect→reset→replay episodes the averaged sweep numbers hide.
func CrashTimeline(everyN int64, totalBytes int64, window sim.Time) []TimelinePoint {
	rig := buildSNAcc(streamer.URAM, crashLadder, nil)
	in := fault.NewInjector(faultSweepSeed)
	if everyN > 0 {
		in.Add(fault.Rule{Name: "ctrl-crash", Kind: fault.CrashCtrl,
			Opcode: fault.OpAny, Nth: everyN})
	}
	in.Attach(rig.dev)
	var points []TimelinePoint
	done := false
	rig.k.Spawn("sampler", func(p *sim.Proc) {
		var last int64
		for !done {
			p.Sleep(window)
			cur := rig.dev.Port().PayloadRx()
			points = append(points, TimelinePoint{
				At:   p.Now(),
				GBps: float64(cur-last) / window.Seconds() / 1e9,
			})
			last = cur
		}
	})
	rig.measure(func(p *sim.Proc) {
		streamer.SeqWrite(p, rig.c, 0, totalBytes)
		done = true
	})
	return points
}

// StripedDegradedRow summarizes a striped set losing one member mid-stream.
type StripedDegradedRow struct {
	Members        int     // striped set size
	DeadMember     int     // member that died (-1: none)
	WriteGB        float64 // aggregate write goodput across the episode, GB/s
	DegradedWrites int64   // stripe writes failed against the dead member
	DegradedReads  int64   // stripe reads failed against the dead member
	SurvivorBytes  int64   // bytes readable from surviving members afterwards
}

// StripedDegraded demonstrates degraded multi-SSD operation: members SSDs
// consolidated into one address space, with member 1's controller removed
// partway through a striped write. The dead member's stripes fail with
// attributed errors while the survivors keep streaming; afterwards every
// surviving stripe reads back.
func StripedDegraded(members int, totalBytes int64) StripedDegradedRow {
	k := sim.NewKernel()
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	var sts []*streamer.Streamer
	var drvs []*tapasco.Driver
	for i := 0; i < members; i++ {
		bar := uint64(ssdBAR) + uint64(i)*0x100000
		name := fmt.Sprintf("ssd%d", i)
		dev := nvme.New(k, pl.Fabric, nvme.DefaultConfig(name, bar))
		if i == 1 {
			// Surprise-remove member 1 mid-stream: no reset revives it, so
			// the ladder exhausts its resets and declares the member dead.
			in := fault.NewInjector(faultSweepSeed)
			in.Add(fault.Rule{Name: "remove", Kind: fault.RemoveCtrl,
				Opcode: fault.OpAny, Nth: 8, Count: 1})
			in.Attach(dev)
		}
		stCfg := streamer.DefaultConfig(fmt.Sprintf("snacc%d", i), 0, streamer.URAM)
		crashLadder(&stCfg)
		sts = append(sts, pl.AddStreamer(stCfg))
		drvs = append(drvs, tapasco.NewDriver(pl, name, bar))
	}
	row := StripedDegradedRow{Members: members, DeadMember: -1}
	var start, end sim.Time
	k.Spawn("main", func(p *sim.Proc) {
		for i := range drvs {
			if err := drvs[i].InitController(p); err != nil {
				panic(err)
			}
			if err := drvs[i].AttachStreamer(p, sts[i], 1); err != nil {
				panic(err)
			}
		}
		s := streamer.NewStriped(k, sts, sim.MiB)
		start = p.Now()
		for off := int64(0); off < totalBytes; off += sim.MiB {
			s.WriteErr(p, uint64(off), sim.MiB, nil) // dead stripes error, survivors land
		}
		end = p.Now()
		for off := int64(0); off < totalBytes; off += sim.MiB {
			if _, err := s.ReadErr(p, uint64(off), sim.MiB); err == nil {
				row.SurvivorBytes += sim.MiB
			}
		}
		if dead := s.DeadMembers(); len(dead) > 0 {
			row.DeadMember = dead[0]
		}
		row.DegradedWrites = s.DegradedWrites()
		row.DegradedReads = s.DegradedReads()
	})
	k.Run(0)
	row.WriteGB = float64(totalBytes) / (end - start).Seconds() / 1e9
	return row
}

// RenderStripedDegraded formats the degraded-operation demo.
func RenderStripedDegraded(r StripedDegradedRow) Table {
	t := Table{
		Title:   "Degraded striping — member 1 surprise-removed mid-stream",
		Columns: []string{"write GB/s", "dead member", "degraded wr", "degraded rd", "survivor MiB"},
		Notes: []string{
			"the dead member's stripes fail with attributed errors; survivors keep streaming",
		},
	}
	t.Rows = append(t.Rows, TableRow{
		Label: fmt.Sprintf("%d SSDs", r.Members),
		Cells: []string{
			gb(r.WriteGB), fmt.Sprintf("%d", r.DeadMember),
			fmt.Sprintf("%d", r.DegradedWrites), fmt.Sprintf("%d", r.DegradedReads),
			fmt.Sprintf("%d", r.SurvivorBytes/sim.MiB),
		},
	})
	return t
}

// RenderCrashSweep formats the controller-crash sweep.
func RenderCrashSweep(rows []CrashSweepRow) Table {
	t := Table{
		Title:   "Crash sweep — URAM sequential read goodput vs controller-crash rate",
		Columns: []string{"goodput GB/s", "crashes", "trips", "resets", "replayed", "MTTR µs", "abort"},
		Notes: []string{
			"MTTR = mean breaker-trip-to-resumed-submission time (detection latency, bounded by the 1 ms status poll, is separate)",
			"abort = 0 means every crashed in-flight window was replayed to completion",
		},
	}
	for _, r := range rows {
		label := "none"
		if r.CrashEveryN > 0 {
			label = fmt.Sprintf("every %d", r.CrashEveryN)
		}
		t.Rows = append(t.Rows, TableRow{
			Label: label,
			Cells: []string{
				gb(r.GoodputGB),
				fmt.Sprintf("%d", r.Crashes), fmt.Sprintf("%d", r.Trips),
				fmt.Sprintf("%d", r.Resets), fmt.Sprintf("%d", r.Replayed),
				fmt.Sprintf("%.1f", r.MTTRUs), fmt.Sprintf("%d", r.Aborts),
			},
		})
	}
	return t
}

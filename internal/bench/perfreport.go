package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"snacc/internal/sim"
)

// PerfReport summarizes the experiment engine's serial-vs-parallel wall time
// on a sample of the suite plus the simulation kernel's scheduling rate.
// The snaccbench CLI emits it as BENCH_parallel.json.
type PerfReport struct {
	// CPUs is runtime.NumCPU() on the measuring machine — the hard ceiling
	// on any parallel speedup. GOMAXPROCS is the Go scheduler's limit at
	// measurement time, which can be lower (CI containers routinely pin it
	// to 1); that is the number that actually bounds wall-clock speedup.
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Workers is the requested worker count; EffectiveWorkers is how many
	// can truly run at once, min(Workers, GOMAXPROCS).
	Workers          int `json:"workers"`
	EffectiveWorkers int `json:"effective_workers"`
	// CoreBound flags a measurement whose wall-clock speedup is limited by
	// the machine rather than the scheduler: fewer schedulable cores than
	// requested workers. A speedup near 1x with CoreBound set is the
	// machine's fault, NOT a parallelism regression — single-CPU CI must
	// check this flag before judging the Speedup number.
	CoreBound bool `json:"core_bound"`
	// SerialSeconds and ParallelSeconds are wall times for the same sample
	// suite at -j 1 and -j Workers.
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	// KernelEventsPerSec is the discrete-event scheduler's throughput
	// (schedule + dispatch) on one core; KernelAllocsPerEvent is the
	// steady-state heap allocations per event (0 for the inlined 4-ary
	// heap).
	KernelEventsPerSec   float64 `json:"kernel_events_per_sec"`
	KernelAllocsPerEvent float64 `json:"kernel_allocs_per_event"`
	// KernelSyncRounds and KernelSyncEventsPerRound come from one serial pass
	// of the sharded chain rig: how many barrier rounds the conservative
	// scheduler needed and the useful events each carried. They make sync
	// overhead a number this report tracks, not a note in the kernel sweep.
	KernelSyncRounds         uint64  `json:"kernel_sync_rounds"`
	KernelSyncEventsPerRound float64 `json:"kernel_sync_events_per_round"`
	Note                     string  `json:"note,omitempty"`
}

// JSON renders the report.
func (r PerfReport) JSON() string {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return string(out)
}

// perfSample runs a representative slice of the suite: two bandwidth
// figures, a latency figure, an ablation with two sub-rigs per row, and a
// case-study pass — ten-plus independent rigs with uneven run times, the
// load shape the worker pool has to schedule well.
func perfSample() {
	Fig4a(48 * sim.MiB)
	Fig4b(12 * sim.MiB)
	Fig4c(60)
	AblationGen5(32 * sim.MiB)
	Fig6(48)
}

// MeasurePerf times perfSample at -j 1 and -j workers and benchmarks the
// kernel's event throughput. The engine parallelism is restored afterwards.
func MeasurePerf(workers int) PerfReport {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	prev := Parallelism()
	defer SetParallelism(prev)

	SetParallelism(1)
	perfSample() // warm-up: page in code paths and prime the buffer pools
	start := time.Now()
	perfSample()
	serial := time.Since(start)

	SetParallelism(workers)
	start = time.Now()
	perfSample()
	par := time.Since(start)

	eps, allocs := kernelRate()
	_, sync := kernelChainRun(1, 2000)
	r := PerfReport{
		CPUs:                     runtime.NumCPU(),
		GOMAXPROCS:               runtime.GOMAXPROCS(0),
		Workers:                  workers,
		SerialSeconds:            serial.Seconds(),
		ParallelSeconds:          par.Seconds(),
		Speedup:                  serial.Seconds() / par.Seconds(),
		KernelEventsPerSec:       eps,
		KernelAllocsPerEvent:     allocs,
		KernelSyncRounds:         sync.Rounds,
		KernelSyncEventsPerRound: sync.EventsPerRound,
	}
	r.EffectiveWorkers = r.Workers
	if r.GOMAXPROCS < r.EffectiveWorkers {
		r.EffectiveWorkers = r.GOMAXPROCS
	}
	r.CoreBound = r.EffectiveWorkers < r.Workers
	if r.CoreBound {
		r.Note = fmt.Sprintf("core-bound: only %d of %d workers can run concurrently; the speedup figure reflects the machine, not the scheduler",
			r.EffectiveWorkers, r.Workers)
	}
	return r
}

// kernelRate measures scheduler throughput and allocations per event: batches
// of 4096 timestamp-shuffled events scheduled and dispatched to completion,
// the access pattern the figure rigs generate.
func kernelRate() (eventsPerSec, allocsPerEvent float64) {
	const (
		batch  = 4096
		rounds = 256
	)
	k := sim.NewKernel()
	fn := func() {}
	rng := sim.NewRand(7)
	run := func() {
		base := k.Now()
		for i := 0; i < batch; i++ {
			k.At(base+sim.Time(rng.Int63n(1000)), fn)
		}
		k.Run(0)
	}
	run() // warm-up grows the heap's backing array
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		run()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	events := float64(batch * rounds)
	return events / elapsed.Seconds(), float64(after.Mallocs-before.Mallocs) / events
}

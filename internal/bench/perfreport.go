package bench

import (
	"encoding/json"
	"runtime"
	"time"

	"snacc/internal/sim"
)

// PerfReport summarizes the experiment engine's serial-vs-parallel wall time
// on a sample of the suite plus the simulation kernel's scheduling rate.
// The snaccbench CLI emits it as BENCH_parallel.json.
type PerfReport struct {
	// CPUs is runtime.NumCPU() on the measuring machine — the hard ceiling
	// on any parallel speedup.
	CPUs    int `json:"cpus"`
	Workers int `json:"workers"`
	// SerialSeconds and ParallelSeconds are wall times for the same sample
	// suite at -j 1 and -j Workers.
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	// KernelEventsPerSec is the discrete-event scheduler's throughput
	// (schedule + dispatch) on one core; KernelAllocsPerEvent is the
	// steady-state heap allocations per event (0 for the inlined 4-ary
	// heap).
	KernelEventsPerSec   float64 `json:"kernel_events_per_sec"`
	KernelAllocsPerEvent float64 `json:"kernel_allocs_per_event"`
	Note                 string  `json:"note,omitempty"`
}

// JSON renders the report.
func (r PerfReport) JSON() string {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return string(out)
}

// perfSample runs a representative slice of the suite: two bandwidth
// figures, a latency figure, an ablation with two sub-rigs per row, and a
// case-study pass — ten-plus independent rigs with uneven run times, the
// load shape the worker pool has to schedule well.
func perfSample() {
	Fig4a(48 * sim.MiB)
	Fig4b(12 * sim.MiB)
	Fig4c(60)
	AblationGen5(32 * sim.MiB)
	Fig6(48)
}

// MeasurePerf times perfSample at -j 1 and -j workers and benchmarks the
// kernel's event throughput. The engine parallelism is restored afterwards.
func MeasurePerf(workers int) PerfReport {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	prev := Parallelism()
	defer SetParallelism(prev)

	SetParallelism(1)
	perfSample() // warm-up: page in code paths and prime the buffer pools
	start := time.Now()
	perfSample()
	serial := time.Since(start)

	SetParallelism(workers)
	start = time.Now()
	perfSample()
	par := time.Since(start)

	eps, allocs := kernelRate()
	r := PerfReport{
		CPUs:                 runtime.NumCPU(),
		Workers:              workers,
		SerialSeconds:        serial.Seconds(),
		ParallelSeconds:      par.Seconds(),
		Speedup:              serial.Seconds() / par.Seconds(),
		KernelEventsPerSec:   eps,
		KernelAllocsPerEvent: allocs,
	}
	if r.CPUs == 1 {
		r.Note = "single-CPU machine: workers share one core, so wall-time speedup is bounded at 1x"
	}
	return r
}

// kernelRate measures scheduler throughput and allocations per event: batches
// of 4096 timestamp-shuffled events scheduled and dispatched to completion,
// the access pattern the figure rigs generate.
func kernelRate() (eventsPerSec, allocsPerEvent float64) {
	const (
		batch  = 4096
		rounds = 256
	)
	k := sim.NewKernel()
	fn := func() {}
	rng := sim.NewRand(7)
	run := func() {
		base := k.Now()
		for i := 0; i < batch; i++ {
			k.At(base+sim.Time(rng.Int63n(1000)), fn)
		}
		k.Run(0)
	}
	run() // warm-up grows the heap's backing array
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		run()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	events := float64(batch * rounds)
	return events / elapsed.Seconds(), float64(after.Mallocs-before.Mallocs) / events
}

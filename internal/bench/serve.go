package bench

import (
	"fmt"
	"strconv"
	"strings"

	"snacc/internal/ethernet"
	"snacc/internal/nvme"
	"snacc/internal/serve"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
	"snacc/internal/workload"
)

// ServeSweepRow is one client-population point of the open-loop serving
// experiment: an RPC client fleet drives the URAM streamer through the
// serving tier over the simulated 100 G link, and the row reports what the
// fleet observed (goodput, latency percentiles, drops) next to what the
// server spent remembering it (connection-table state bytes).
type ServeSweepRow struct {
	Clients   int     // simulated client population
	Requests  int64   // open-loop arrivals generated
	Completed int64   // responses received OK
	Dropped   int64   // arrivals shed at the paused client
	GoodMBps  float64 // end-to-end payload goodput, MB/s
	P50Us     float64 // median due→response latency, µs
	P99Us     float64 // p99 due→response latency, µs
	P999Us    float64 // p99.9 due→response latency, µs
	PeakConns int     // connection-table high-water mark
	StateMiB  float64 // connection-table state bytes, MiB
	PeakQueue int     // dispatch-queue high-water mark
	Pauses    int64   // 802.3x pause frames the server sent
}

// Serve-sweep workload shape: 4 KiB requests, 70% reads, a zipfian hot set,
// 5% session churn, and a burst schedule that multiplies the baseline rate
// 6x for short windows — the overload that makes the pause/shed loop do
// real work.
const (
	serveSpanBytes = 256 * sim.MiB
	serveIOBytes   = int64(4 * sim.KiB)
	serveRate      = 500e3
	serveSeed      = 0x5ac5
)

// DefaultServeClients is the CLI's client-population sweep: 10k, 100k and
// one million simulated clients.
var DefaultServeClients = []int{10_000, 100_000, 1_000_000}

// DefaultServePhases is the burst schedule: 200 µs at the baseline rate,
// then a 50 µs burst at 6x.
var DefaultServePhases = []workload.PhaseSpec{
	{RateScale: 1, Duration: 200 * sim.Microsecond},
	{RateScale: 6, Duration: 50 * sim.Microsecond},
}

// serveSpec builds the open-loop spec for one sweep point.
func serveSpec(clients int, ops int, phases []workload.PhaseSpec) workload.OpenLoopSpec {
	return workload.OpenLoopSpec{
		Clients:      clients,
		RatePerSec:   serveRate,
		Ops:          int64(ops),
		ReadFraction: 0.7,
		IOBytes:      serveIOBytes,
		SpanBytes:    serveSpanBytes,
		ZipfTheta:    0.9,
		ZipfBuckets:  64,
		Phases:       phases,
		CloseProb:    0.05,
		Seed:         serveSeed,
	}
}

// runServeRig builds a full-stack serving rig — platform, NVMe, URAM
// streamer, serving tier over the Ethernet link — runs it to quiescence and
// returns the tier's report. With domain-level workers configured the
// client fleet and the FPGA side run in separate shard domains joined by
// wire-latency edges, exactly like the case study's front end; results are
// byte-identical either way.
func runServeRig(spec workload.OpenLoopSpec, cfg serve.Config) serve.Report {
	var (
		shard *sim.Shard
		cliK  *sim.Kernel
		toSrv *sim.Edge
		toCli *sim.Edge
	)
	k := sim.NewKernel()
	if kernelWorkers > 1 {
		shard = sim.NewShard(kernelWorkers)
		cliD := shard.AddDomain("clients")
		fpga := shard.AddDomain("fpga")
		k = fpga.Kernel()
		cliK = cliD.Kernel()
		look := ethernet.DefaultConfig().EdgeLookahead()
		toSrv = shard.MustConnect(cliD, fpga, look)
		toCli = shard.MustConnect(fpga, cliD, look)
	}
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssd0", ssdBAR))
	st := pl.AddStreamer(streamer.DefaultConfig("snacc0", 0, streamer.URAM))
	drv := tapasco.NewDriver(pl, "ssd0", ssdBAR)
	backend := serve.NewStreamerBackend(streamer.NewClient(st))

	var tier *serve.Tier
	var err error
	if shard != nil {
		tier, err = serve.NewCross(cliK, k, toSrv, toCli, cfg, spec, backend)
	} else {
		tier, err = serve.New(k, cfg, spec, backend)
	}
	if err != nil {
		panic(err)
	}

	ok := false
	k.Spawn("init", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			panic(err)
		}
		if err := drv.AttachStreamer(p, st, 1); err != nil {
			panic(err)
		}
		ok = true
	})
	drain := func() {
		if shard != nil {
			shard.Run(0)
		} else {
			k.Run(0)
		}
	}
	drain()
	if !ok {
		panic("bench: serve rig initialization failed")
	}
	now := k.Now()
	if shard != nil {
		now = shard.Now()
	}
	if err := tier.Start(now); err != nil {
		panic(err)
	}
	drain()
	return tier.Report()
}

// ServeSweep runs the open-loop serving experiment at each client
// population. Zero/nil arguments select the defaults (10k/100k/1M clients,
// 4000 requests, the burst schedule). Rigs shard across the experiment
// engine; rows are deterministic at any parallelism and worker count.
func ServeSweep(clients []int, ops int, phases []workload.PhaseSpec) []ServeSweepRow {
	if len(clients) == 0 {
		clients = DefaultServeClients
	}
	if ops <= 0 {
		ops = 4000
	}
	if phases == nil {
		phases = DefaultServePhases
	}
	return mapRows(len(clients), func(i int) ServeSweepRow {
		rep := runServeRig(serveSpec(clients[i], ops, phases), serve.Config{})
		return ServeSweepRow{
			Clients:   clients[i],
			Requests:  rep.Generated,
			Completed: rep.Completed,
			Dropped:   rep.Dropped,
			GoodMBps:  rep.GoodputMBps(),
			P50Us:     rep.Latency.P50().Seconds() * 1e6,
			P99Us:     rep.Latency.P99().Seconds() * 1e6,
			P999Us:    rep.Latency.P999().Seconds() * 1e6,
			PeakConns: rep.PeakConns,
			StateMiB:  float64(rep.ConnStateBytes) / float64(sim.MiB),
			PeakQueue: rep.PeakDispatch,
			Pauses:    rep.PausesSent,
		}
	})
}

// RenderServeSweep formats the serving-tier sweep.
func RenderServeSweep(rows []ServeSweepRow) Table {
	t := Table{
		Title:   "Serve sweep — open-loop RPC fleet over 100G into the URAM streamer",
		Columns: []string{"reqs", "done", "drop", "MB/s", "p50 µs", "p99 µs", "p999 µs", "conns", "state MiB", "queue", "pauses"},
		Notes: []string{
			"open-loop arrivals: zipfian keys, exponential gaps, burst phase schedule; drops are load shed at the paused client",
			"state MiB is the server's connection-table footprint (32 B array slots + client index)",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("%dk clients", r.Clients/1000),
			Cells: []string{
				fmt.Sprintf("%d", r.Requests),
				fmt.Sprintf("%d", r.Completed),
				fmt.Sprintf("%d", r.Dropped),
				fmt.Sprintf("%.1f", r.GoodMBps),
				fmt.Sprintf("%.1f", r.P50Us),
				fmt.Sprintf("%.1f", r.P99Us),
				fmt.Sprintf("%.1f", r.P999Us),
				fmt.Sprintf("%d", r.PeakConns),
				fmt.Sprintf("%.2f", r.StateMiB),
				fmt.Sprintf("%d", r.PeakQueue),
				fmt.Sprintf("%d", r.Pauses),
			},
		})
	}
	return t
}

// ParseServeClients parses the CLI's -clients flag: a comma-separated list
// of positive client populations ("10000,100000,1000000").
func ParseServeClients(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("bench: -clients needs a comma-separated list of positive counts")
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bench: -clients entry %q is not an integer", strings.TrimSpace(p))
		}
		if n < 1 {
			return nil, fmt.Errorf("bench: -clients entry %d must be positive", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseServePhases parses the CLI's -phases flag: comma-separated
// "scale:µs" pairs ("1:200,6:50") describing the burst schedule. An empty
// string selects the default schedule.
func ParseServePhases(s string) ([]workload.PhaseSpec, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultServePhases, nil
	}
	parts := strings.Split(s, ",")
	out := make([]workload.PhaseSpec, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		scaleStr, usStr, ok := strings.Cut(p, ":")
		if !ok {
			return nil, fmt.Errorf("bench: -phases entry %q is not scale:µs", p)
		}
		scale, err := strconv.ParseFloat(scaleStr, 64)
		if err != nil || scale <= 0 {
			return nil, fmt.Errorf("bench: -phases entry %q: scale must be a positive number", p)
		}
		us, err := strconv.ParseFloat(usStr, 64)
		if err != nil || us <= 0 {
			return nil, fmt.Errorf("bench: -phases entry %q: duration must be positive microseconds", p)
		}
		out = append(out, workload.PhaseSpec{
			RateScale: scale,
			Duration:  sim.Time(us * float64(sim.Microsecond)),
		})
	}
	return out, nil
}

package bench

import (
	"snacc/internal/fault"
	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// faultSweepSeed pins the injector's decision stream so the sweep (and the
// determinism tests pinning it) replays byte-identically at any -j.
const faultSweepSeed = 0x5EED

// FaultSweepRow is one point of the fault-injection sweep: sequential read
// goodput and recovery accounting at a given injected read-error rate.
type FaultSweepRow struct {
	RatePct       float64 // injected read-error probability, percent
	GoodputGB     float64 // delivered (non-aborted) bytes / elapsed, GB/s
	Injected      int64   // faults the injector fired
	Errors        int64   // error CQEs observed by the streamer
	Retries       int64   // bounded resubmissions
	Timeouts      int64   // watchdog deadline expirations
	Aborts        int64   // commands failed after exhausting retries
	Amplification float64 // commands submitted / commands retired
}

// faultRecovery enables the streamer's recovery machinery with the sweep's
// reference settings: a deadline comfortably above worst-case device latency,
// three resubmissions, and a short exponential backoff base.
func faultRecovery(c *streamer.Config) {
	c.CmdTimeout = 50 * sim.Millisecond
	c.MaxRetries = 3
	c.RetryBackoff = 10 * sim.Microsecond
}

// FaultSweep measures sequential read goodput and retry amplification of the
// URAM variant as the injected NVMe read-error rate grows. Each rate builds a
// fresh rig with a deterministic injector (retryable StatusDataTransferError
// on reads with the given probability), so rows are independent and
// reproducible. The zero-rate row doubles as the no-fault baseline: nothing
// fires and the recovery path stays cold.
func FaultSweep(ratesPct []float64, totalBytes int64) []FaultSweepRow {
	return mapRows(len(ratesPct), func(i int) FaultSweepRow {
		rate := ratesPct[i]
		rig := buildSNAcc(streamer.URAM, faultRecovery, nil)
		in := fault.NewInjector(faultSweepSeed)
		if rate > 0 {
			in.Add(fault.Rule{Name: "read-errors", Kind: fault.StatusError,
				Opcode: nvme.OpRead, Probability: rate / 100,
				Status: nvme.StatusDataTransferError})
		}
		in.Attach(rig.dev)
		res := faultSeqRead(rig, 0, totalBytes)
		amp := 1.0
		if rt := rig.st.CommandsRetired(); rt > 0 {
			amp = float64(rig.st.CommandsSubmitted()) / float64(rt)
		}
		return FaultSweepRow{
			RatePct:       rate,
			GoodputGB:     res.GBps(),
			Injected:      in.Injected(),
			Errors:        rig.st.CommandErrors(),
			Retries:       rig.st.CommandRetries(),
			Timeouts:      rig.st.CommandTimeouts(),
			Aborts:        rig.st.CommandAborts(),
			Amplification: amp,
		}
	})
}

// faultSeqRead measures one large sequential read under fault injection,
// returning the bytes actually delivered and the elapsed time. SeqRead cannot
// be used here: it insists on full delivery and would wait forever for bytes
// an aborted command never produces. ConsumeReadErr instead follows the TLAST
// framing, which aborted pieces preserve via zero-byte flagged packets.
func faultSeqRead(rig *snaccRig, addr uint64, total int64) streamer.PerfResult {
	var res streamer.PerfResult
	rig.measure(func(p *sim.Proc) {
		start := p.Now()
		rig.c.ReadAsync(p, addr, total)
		got, _, _ := rig.c.ConsumeReadErr(p)
		res = streamer.PerfResult{Bytes: got, Elapsed: p.Now() - start}
	})
	return res
}

package bench

import (
	"fmt"

	"snacc/internal/cluster"
	"snacc/internal/fault"
	"snacc/internal/sim"
)

// clusterSeed feeds every cluster rig so rows replay byte-identically.
const clusterSeed = 0xC1057E4

// ClusterSweepRow is one grid point of the replicated-cluster sweep: a
// nodes x replication x quorum shape absorbing a node death mid-workload.
type ClusterSweepRow struct {
	Nodes       int
	Replication int
	Quorum      int
	WriteGB     float64 // write goodput across the whole episode, GB/s
	NodeDeaths  int64   // nodes declared dead (1: the injected kill landed)
	Failovers   int64   // reads served by a non-primary replica
	ReRepMiB    float64 // bytes re-replicated onto survivors, MiB
	DegradedUs  float64 // time any chunk spent under-replicated, µs
	Timeouts    int64   // capsule requests that hit the request timeout
	FailedWr    int64   // writes refused for missing quorum during detection
	UnderRep    int64   // chunks still under-replicated at drain (want 0)
}

// clusterEpisodeConfig is the shared rig shape: timing-mode replicas with
// a tight request timeout so death detection costs µs, not the 10 ms
// production default, and node 1's controller surprise-removed at its
// eighth I/O completion.
func clusterEpisodeConfig(nodes, replication, quorum int) cluster.Config {
	cfg := cluster.DefaultConfig(nodes, replication, quorum)
	cfg.Functional = false
	cfg.Seed = clusterSeed
	cfg.RequestTimeout = sim.Millisecond
	cfg.NodeInjector = func(node int) *fault.Injector {
		if node != 1 {
			return nil
		}
		in := fault.NewInjector(clusterSeed)
		in.Add(fault.Rule{Name: "kill", Kind: fault.RemoveCtrl,
			Opcode: fault.OpAny, Nth: 8, Count: 1})
		return in
	}
	return cfg
}

// ClusterSweep measures write goodput and recovery accounting across a
// grid of cluster shapes, each losing node 1 mid-run. Writes quorum-ack
// and re-home around the death; the background repairer restores full
// replication before the run drains (UnderRep 0). Rows build independent
// clusters with fixed seeds, so the sweep is deterministic at any -j.
func ClusterSweep(grid [][3]int, totalBytes int64) []ClusterSweepRow {
	return mapRows(len(grid), func(i int) ClusterSweepRow {
		shape := grid[i]
		cfg := clusterEpisodeConfig(shape[0], shape[1], shape[2])
		cl := cluster.MustNew(cfg)
		const op = 64 * sim.KiB
		span := 4 * sim.MiB
		var start, end sim.Time
		var okBytes, failed int64
		cl.Execute(func(p *sim.Proc) {
			start = p.Now()
			for off := int64(0); off < totalBytes; off += op {
				// A strict quorum (Q == R) legitimately refuses writes in the
				// window between the kill and the death verdict; that dip is
				// part of the availability story, so count it, don't abort.
				if err := cl.WriteTimed(p, uint64(off%span), op); err != nil {
					failed++
					continue
				}
				okBytes += op
			}
			end = p.Now()
		})
		st := cl.Stats()
		return ClusterSweepRow{
			Nodes:       shape[0],
			Replication: shape[1],
			Quorum:      shape[2],
			WriteGB:     float64(okBytes) / (end - start).Seconds() / 1e9,
			NodeDeaths:  st.NodeDeaths,
			Failovers:   st.Failovers,
			ReRepMiB:    float64(st.ReReplicatedBytes) / float64(sim.MiB),
			DegradedUs:  float64(st.DegradedWindowNs) / 1e3,
			Timeouts:    st.RequestTimeouts,
			FailedWr:    failed,
			UnderRep:    st.UnderReplicatedChunks,
		}
	})
}

// ClusterTimeline runs the full availability arc on a 3-node R=2 cluster
// — healthy, node 1 partitioned from the switch (suspect, then dead),
// the link healing, the prober readmitting the node — while a continuous
// write stream samples goodput per window. The dips are the failure
// detection and failover episodes; the recovery after `until`/2 is the
// rejoin. Returns the sampled points and the episode's cluster stats.
func ClusterTimeline(until, window sim.Time) ([]TimelinePoint, cluster.Stats) {
	cfg := cluster.DefaultConfig(3, 2, 1)
	cfg.Functional = false
	cfg.Seed = clusterSeed
	cfg.RequestTimeout = sim.Millisecond
	cfg.Partitions = []cluster.Partition{
		{Node: 1, Drop: true, From: until / 4, Until: until / 2},
	}
	cl := cluster.MustNew(cfg)
	const op = 64 * sim.KiB
	span := 4 * sim.MiB
	var points []TimelinePoint
	cl.Execute(func(p *sim.Proc) {
		windowStart, windowBytes := p.Now(), int64(0)
		for off := int64(0); p.Now() < until; off += op {
			if err := cl.WriteTimed(p, uint64(off%span), op); err != nil {
				continue // partition-window writes may time out; keep streaming
			}
			windowBytes += op
			if now := p.Now(); now-windowStart >= window {
				points = append(points, TimelinePoint{
					At:   now,
					GBps: float64(windowBytes) / (now - windowStart).Seconds() / 1e9,
				})
				windowStart, windowBytes = now, 0
			}
		}
	})
	return points, cl.Stats()
}

// RenderClusterSweep formats the replicated-cluster grid sweep.
func RenderClusterSweep(rows []ClusterSweepRow) Table {
	t := Table{
		Title:   "Cluster sweep — node 1 surprise-removed mid-run, quorum writes re-home to survivors",
		Columns: []string{"write GB/s", "deaths", "failovers", "re-rep MiB", "degraded µs", "timeouts", "failed wr", "under-rep"},
		Notes: []string{
			"re-rep = bytes the background repairer copied to restore full replication",
			"failed wr = writes refused while a strict quorum (Q = R) straddled the detection window",
			"under-rep = chunks still below R replicas at drain; 0 means repair completed",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("n=%d R=%d Q=%d", r.Nodes, r.Replication, r.Quorum),
			Cells: []string{
				gb(r.WriteGB),
				fmt.Sprintf("%d", r.NodeDeaths), fmt.Sprintf("%d", r.Failovers),
				fmt.Sprintf("%.2f", r.ReRepMiB), fmt.Sprintf("%.1f", r.DegradedUs),
				fmt.Sprintf("%d", r.Timeouts), fmt.Sprintf("%d", r.FailedWr),
				fmt.Sprintf("%d", r.UnderRep),
			},
		})
	}
	return t
}

// RenderClusterRecovery summarizes the timeline episode's recovery ledger.
func RenderClusterRecovery(st cluster.Stats) Table {
	t := Table{
		Title:   "Cluster recovery ledger — partition, death, heal, rejoin",
		Columns: []string{"deaths", "rejoins", "probes", "timeouts", "dropped frames", "re-rep MiB", "under-rep"},
	}
	t.Rows = append(t.Rows, TableRow{
		Label: "3 nodes R=2",
		Cells: []string{
			fmt.Sprintf("%d", st.NodeDeaths), fmt.Sprintf("%d", st.Rejoins),
			fmt.Sprintf("%d", st.Probes), fmt.Sprintf("%d", st.RequestTimeouts),
			fmt.Sprintf("%d", st.LinkFramesDropped),
			fmt.Sprintf("%.2f", float64(st.ReReplicatedBytes)/float64(sim.MiB)),
			fmt.Sprintf("%d", st.UnderReplicatedChunks),
		},
	})
	return t
}

// Package bench regenerates every table and figure in the paper's
// evaluation (§5, §6) plus the §7 ablations, as plain-Go experiment
// runners shared by the root-level benchmarks and the snaccbench CLI.
// Each runner builds a fresh simulated system, executes the paper's
// workload, and returns the rows the paper plots.
package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"snacc/internal/nvme"
	"snacc/internal/pcie"
	"snacc/internal/sim"
	"snacc/internal/spdk"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

const ssdBAR = 0x10_0000_0000

// Variants lists the three SNAcc configurations in paper order.
func Variants() []streamer.Variant {
	return []streamer.Variant{streamer.URAM, streamer.OnboardDRAM, streamer.HostDRAM}
}

// snaccRig is one assembled SNAcc system.
type snaccRig struct {
	k   *sim.Kernel
	pl  *tapasco.Platform
	dev *nvme.Device
	st  *streamer.Streamer
	c   *streamer.Client
}

// buildSNAcc assembles platform + SSD + streamer and runs initialization.
func buildSNAcc(v streamer.Variant, mutSt func(*streamer.Config), mutDev func(*nvme.Config)) *snaccRig {
	k := sim.NewKernel()
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	devCfg := nvme.DefaultConfig("ssd0", ssdBAR)
	if mutDev != nil {
		mutDev(&devCfg)
	}
	dev := nvme.New(k, pl.Fabric, devCfg)
	stCfg := streamer.DefaultConfig("snacc0", 0, v)
	if mutSt != nil {
		mutSt(&stCfg)
	}
	st := pl.AddStreamer(stCfg)
	drv := tapasco.NewDriver(pl, "ssd0", ssdBAR)
	ok := false
	k.Spawn("init", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			panic(err)
		}
		if err := drv.AttachStreamer(p, st, 1); err != nil {
			panic(err)
		}
		ok = true
	})
	k.Run(0)
	if !ok {
		panic("bench: initialization failed")
	}
	return &snaccRig{k: k, pl: pl, dev: dev, st: st, c: streamer.NewClient(st)}
}

// measure runs fn in a fresh proc and drains the kernel.
func (r *snaccRig) measure(fn func(p *sim.Proc)) {
	r.k.Spawn("bench", fn)
	r.k.Run(0)
}

// buildSPDK assembles host + SSD and attaches the SPDK driver.
func buildSPDK(qd int, mutDev func(*nvme.Config)) (*sim.Kernel, *pcie.Host, chan *spdk.Driver) {
	k := sim.NewKernel()
	f := pcie.NewFabric(k, pcie.DefaultConfig())
	host := pcie.NewHost(f, pcie.DefaultHostConfig())
	devCfg := nvme.DefaultConfig("ssd0", ssdBAR)
	if mutDev != nil {
		mutDev(&devCfg)
	}
	nvme.New(k, f, devCfg)
	f.IOMMU().Grant("ssd0", pcie.DefaultHostConfig().MemBase, pcie.DefaultHostConfig().MemSize)
	out := make(chan *spdk.Driver, 1)
	cfg := spdk.DefaultDriverConfig()
	if qd > 0 {
		cfg.QueueDepth = qd
	}
	k.Spawn("attach", func(p *sim.Proc) {
		d, err := spdk.Attach(p, host, ssdBAR, cfg)
		if err != nil {
			panic(err)
		}
		out <- d
	})
	return k, host, out
}

// Table is a generic labelled result grid used by the CLI output.
type Table struct {
	Title   string
	Columns []string
	Rows    []TableRow
	Notes   []string
}

// TableRow is one labelled row of cells.
type TableRow struct {
	Label string
	Cells []string
}

// String renders an aligned text table.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("variant")
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
		for _, r := range t.Rows {
			if i < len(r.Cells) && len(r.Cells[i]) > widths[i+1] {
				widths[i+1] = len(r.Cells[i])
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0]+2, "")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%*s  ", widths[i+1], c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0]+2, r.Label)
		for i, c := range r.Cells {
			fmt.Fprintf(&b, "%*s  ", widths[i+1], c)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func gb(v float64) string { return fmt.Sprintf("%.2f", v) }

// CSV renders the table as comma-separated values with a header row, for
// plotting outside the CLI.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString("label")
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(strings.ReplaceAll(c, ",", ";"))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.ReplaceAll(r.Label, ",", ";"))
		for _, c := range r.Cells {
			b.WriteByte(',')
			b.WriteString(strings.ReplaceAll(c, ",", ";"))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the table as a JSON object with title, columns, rows (label
// plus cells) and notes, for machine consumption of regenerated results.
func (t Table) JSON() string {
	type jsonRow struct {
		Label string   `json:"label"`
		Cells []string `json:"cells"`
	}
	doc := struct {
		Title   string    `json:"title"`
		Columns []string  `json:"columns"`
		Rows    []jsonRow `json:"rows"`
		Notes   []string  `json:"notes,omitempty"`
	}{Title: t.Title, Columns: t.Columns, Notes: t.Notes}
	for _, r := range t.Rows {
		doc.Rows = append(doc.Rows, jsonRow{Label: r.Label, Cells: r.Cells})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// Strings and slices of strings cannot fail to marshal.
		panic(err)
	}
	return string(out)
}

package bench

import (
	"fmt"
	"strings"

	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// TimelinePoint is one sample of instantaneous write bandwidth.
type TimelinePoint struct {
	At   sim.Time
	GBps float64
}

// Timeline samples the sequential-write bandwidth of a Streamer variant
// over time. Two effects the averaged figures hide become visible: the
// initial inflation while the SSD's write buffer absorbs data, and the
// firmware banding epochs alternating between the two program rates —
// the time-resolved view behind Figure 4a's stacked "fluctuating
// bandwidth" bars.
func Timeline(v streamer.Variant, totalBytes int64, window sim.Time) []TimelinePoint {
	rig := buildSNAcc(v, nil, func(c *nvme.Config) { c.NAND.EpochBytes = totalBytes / 4 })
	var points []TimelinePoint
	done := false
	rig.k.Spawn("sampler", func(p *sim.Proc) {
		var last int64
		for !done {
			p.Sleep(window)
			cur := rig.dev.Port().PayloadRx()
			points = append(points, TimelinePoint{
				At:   p.Now(),
				GBps: float64(cur-last) / window.Seconds() / 1e9,
			})
			last = cur
		}
	})
	rig.measure(func(p *sim.Proc) {
		streamer.SeqWrite(p, rig.c, 0, totalBytes)
		done = true
	})
	return points
}

// RenderTimeline draws an ASCII bandwidth-over-time strip chart.
func RenderTimeline(v string, points []TimelinePoint, fullScale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== write bandwidth over time — %s (full scale %.1f GB/s) ==\n", v, fullScale)
	const width = 50
	for _, pt := range points {
		bars := int(pt.GBps / fullScale * width)
		if bars < 0 {
			bars = 0
		}
		if bars > width {
			bars = width
		}
		fmt.Fprintf(&b, "%10v  %5.2f  |%s\n", pt.At, pt.GBps, strings.Repeat("#", bars))
	}
	return b.String()
}

package bench

import (
	"fmt"

	"snacc/internal/casestudy"
	"snacc/internal/sim"
)

// RenderFig4a formats Figure 4a rows.
func RenderFig4a(rows []Fig4aRow) Table {
	t := Table{
		Title:   "Figure 4a — sequential NVMe bandwidth (GB/s)",
		Columns: []string{"seq-r", "seq-w", "w-low", "w-high"},
		Notes: []string{
			"paper: seq-r ≈6.9 all; seq-w SPDK/Host 6.24/5.90 alternating, URAM 5.6/5.32, On-board 4.6–4.8",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{Label: r.Label, Cells: []string{
			gb(r.SeqReadGB), gb(r.SeqWriteGB), gb(r.WriteLoGB), gb(r.WriteHiGB),
		}})
	}
	return t
}

// RenderFig4b formats Figure 4b rows.
func RenderFig4b(rows []Fig4bRow) Table {
	t := Table{
		Title:   "Figure 4b — random 4 KiB NVMe bandwidth (GB/s)",
		Columns: []string{"rand-r", "rand-w"},
		Notes: []string{
			"paper: rand-r SNAcc ≈1.6 (in-order retirement), SPDK 4.5; rand-w Host 4.8, SPDK 5.25",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{Label: r.Label, Cells: []string{
			gb(r.RandReadGB), gb(r.RandWriteGB),
		}})
	}
	return t
}

// RenderFig4c formats Figure 4c rows.
func RenderFig4c(rows []Fig4cRow) Table {
	t := Table{
		Title:   "Figure 4c — 4 KiB access latency",
		Columns: []string{"read", "read-p99", "write", "write-p99"},
		Notes: []string{
			"paper: read URAM 34us, On-board 41us, Host 43us, SPDK 57us; write all < 9us",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{Label: r.Label, Cells: []string{
			r.ReadLatency.String(), r.ReadP99.String(),
			r.WriteLatency.String(), r.WriteP99.String(),
		}})
	}
	return t
}

// RenderTable1 formats the resource table.
func RenderTable1(rows []Table1Row) Table {
	t := Table{
		Title:   "Table 1 — NVMe Streamer FPGA resource utilization (Alveo U280)",
		Columns: []string{"LUT", "LUT%", "FF", "FF%", "BRAM", "BRAM%", "URAM", "DRAM"},
	}
	for _, r := range rows {
		uram := "-"
		if r.Resources.URAMBlocks > 0 {
			uram = fmt.Sprintf("%d MiB (%.1f%%)",
				int64(r.Resources.URAMBlocks)*32*sim.KiB/sim.MiB, r.Util.URAM*100)
		}
		dram := "-"
		if r.Resources.DRAMBytes > 0 {
			dram = fmt.Sprintf("%d MiB", r.Resources.DRAMBytes/sim.MiB)
		}
		if r.Resources.HostDRAMBytes > 0 {
			dram = fmt.Sprintf("%d MiB*", r.Resources.HostDRAMBytes/sim.MiB)
		}
		t.Rows = append(t.Rows, TableRow{Label: r.Label, Cells: []string{
			fmt.Sprintf("%d", r.Resources.LUT),
			fmt.Sprintf("%.1f%%", r.Util.LUT*100),
			fmt.Sprintf("%d", r.Resources.FF),
			fmt.Sprintf("%.1f%%", r.Util.FF*100),
			fmt.Sprintf("%.1f", r.Resources.BRAM),
			fmt.Sprintf("%.1f%%", r.Util.BRAM*100),
			uram, dram,
		}})
	}
	t.Notes = append(t.Notes, "*pinned host memory")
	return t
}

// RenderFig6 formats case-study bandwidth.
func RenderFig6(rows []casestudy.Result) Table {
	t := Table{
		Title:   "Figure 6 — case-study bandwidth",
		Columns: []string{"GB/s", "frames/s", "img-latency", "CPU"},
		Notes: []string{
			"paper: Host DRAM & SPDK ≈6.1 GB/s (676 fps), GPU 5.76, URAM/On-board at their seq-write levels",
		},
	}
	for _, r := range rows {
		cpu := "idle after setup"
		if r.BusyPolling {
			cpu = "1 core @ 100% (polling)"
		}
		lat := "-"
		if r.ImageLatency != nil && r.ImageLatency.Count() > 0 {
			lat = r.ImageLatency.Mean().String()
		}
		t.Rows = append(t.Rows, TableRow{Label: r.Variant, Cells: []string{
			gb(r.GBps()), fmt.Sprintf("%.0f", r.FPS()), lat, cpu,
		}})
	}
	return t
}

// RenderFig7 formats case-study PCIe traffic.
func RenderFig7(rows []casestudy.Result) Table {
	t := Table{
		Title:   "Figure 7 — PCIe data transfers per configuration",
		Columns: []string{"total GB", "x payload", "card", "host", "ssd", "gpu"},
		Notes: []string{
			"paper: URAM and On-board DRAM fewest transfers; GPU the most",
		},
	}
	for _, r := range rows {
		payload := float64(r.Bytes)
		cell := func(k string) string {
			if v, ok := r.PCIe[k]; ok && v > 0 {
				return fmt.Sprintf("%.2f", float64(v)/1e9)
			}
			return "-"
		}
		t.Rows = append(t.Rows, TableRow{Label: r.Variant, Cells: []string{
			fmt.Sprintf("%.2f", float64(r.PCIeTotal)/1e9),
			fmt.Sprintf("%.2fx", float64(r.PCIeTotal)/payload),
			cell("card"), cell("host"), cell("ssd"), cell("gpu"),
		}})
	}
	return t
}

// RenderAblationQD formats the queue-depth sweep.
func RenderAblationQD(rows []AblationQDRow) Table {
	t := Table{
		Title:   "Ablation A1 — random-read bandwidth vs queue depth (GB/s)",
		Columns: []string{"SPDK", "SNAcc URAM"},
		Notes:   []string{"§5.2: SPDK scales with queue size; in-order SNAcc stays flat"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{Label: fmt.Sprintf("QD %d", r.QueueDepth), Cells: []string{
			gb(r.SPDKGB), gb(r.SNAccGB),
		}})
	}
	return t
}

// RenderAblationOOO formats the retirement-policy comparison.
func RenderAblationOOO(rows []AblationOOORow) Table {
	t := Table{
		Title:   "Ablation A2 — in-order vs out-of-order retirement (GB/s)",
		Columns: []string{"rand-r", "seq-r"},
		Notes:   []string{"§7: out-of-order retirement recovers random-read bandwidth"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{Label: r.Label, Cells: []string{gb(r.RandReadGB), gb(r.SeqReadGB)}})
	}
	return t
}

// RenderAblationMultiSSD formats the multi-SSD scaling rows.
func RenderAblationMultiSSD(rows []AblationMultiSSDRow) Table {
	t := Table{
		Title:   "Ablation A3 — multi-SSD sequential write scaling",
		Columns: []string{"aggregate GB/s", "per-SSD GB/s"},
		Notes:   []string{"§7: separate queues per SSD hide single-SSD latency and fill PCIe"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{Label: fmt.Sprintf("%d SSD", r.SSDs), Cells: []string{
			gb(r.SeqWriteGB), gb(r.PerSSDWrite),
		}})
	}
	return t
}

// RenderAblationGen5 formats the PCIe 5.0 projection.
func RenderAblationGen5(rows []AblationGen5Row) Table {
	t := Table{
		Title:   "Ablation A4 — PCIe 5.0 SSD projection (URAM variant, GB/s)",
		Columns: []string{"seq-r", "seq-w"},
		Notes:   []string{"§7: the implementation accommodates Gen5 SSDs without modification"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{Label: r.Label, Cells: []string{gb(r.SeqReadGB), gb(r.SeqWriteGB)}})
	}
	return t
}

// RenderAblationDRAM formats the DRAM-controller comparison.
func RenderAblationDRAM(rows []AblationDRAMRow) Table {
	t := Table{
		Title:   "Ablation A5 — on-board DRAM controller contention (seq write, GB/s)",
		Columns: []string{"seq-w"},
		Notes:   []string{"§5.2: read/write turnaround between NVMe fetches and buffer fills costs bandwidth"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{Label: r.Label, Cells: []string{gb(r.SeqWriteGB)}})
	}
	return t
}

// RenderAblationHBM formats the staging-memory comparison.
func RenderAblationHBM(rows []AblationHBMRow) Table {
	t := Table{
		Title:   "Ablation A6 — HBM staging for the on-card variant (GB/s)",
		Columns: []string{"seq-w", "seq-r"},
		Notes:   []string{"§7: HBM channel parallelism removes the DDR4 turnaround interplay"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{Label: r.Label, Cells: []string{gb(r.SeqWriteGB), gb(r.SeqReadGB)}})
	}
	return t
}

// RenderSweep formats the transfer-size sweep.
func RenderSweep(v string, rows []SweepRow) Table {
	t := Table{
		Title:   "Transfer-size convergence — " + v,
		Columns: []string{"seq-w", "seq-r"},
		Notes:   []string{"steady state: values stop moving well before the paper's 1 GB transfers"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("%d MiB", r.TransferBytes/sim.MiB),
			Cells: []string{gb(r.SeqWriteGB), gb(r.SeqReadGB)},
		})
	}
	return t
}

// RenderFig6Striped formats the multi-SSD case-study extension.
func RenderFig6Striped(rows []casestudy.Result) Table {
	t := Table{
		Title:   "Ablation A7 — case study with striped multi-SSD storage (§7)",
		Columns: []string{"GB/s", "frames/s", "pauses"},
		Notes: []string{
			"§7 resolves §6.2's gap: with ≥3 SSDs the 100G link (≈12.2 GB/s payload) becomes the bottleneck",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{Label: r.Variant, Cells: []string{
			gb(r.GBps()), fmt.Sprintf("%.0f", r.FPS()), fmt.Sprintf("%d", r.EthernetPauses),
		}})
	}
	return t
}

// RenderAblationMTU formats the Ethernet frame-size sensitivity sweep.
func RenderAblationMTU(rows []AblationMTURow) Table {
	t := Table{
		Title:   "Ablation A8 — Ethernet MTU vs the network-bound striped pipeline (3 SSDs)",
		Columns: []string{"link ceiling GB/s", "measured GB/s", "frames/s"},
		Notes: []string{
			"per-frame overhead is fixed, so the payload ceiling — and the network-bound pipeline — tracks MTU/(MTU+38)",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("MTU %d", r.MTU),
			Cells: []string{gb(r.CeilingGB), gb(r.CaseGB), fmt.Sprintf("%.0f", r.FPS)},
		})
	}
	return t
}

// RenderAblationQP formats the queue-pair scaling sweep.
func RenderAblationQP(rows []AblationQPRow) Table {
	t := Table{
		Title:   "Ablation A9 — multiple Streamers sharing one SSD (one queue pair each, §7)",
		Columns: []string{"seq-w GB/s", "rand-r GB/s"},
		Notes: []string{
			"seq writes stay at the single-SSD NAND ceiling; rand reads scale because the in-order FSM is per-queue, not per-device",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("%d streamer(s)", r.Streamers),
			Cells: []string{gb(r.SeqWriteGB), gb(r.RandReadGB)},
		})
	}
	return t
}

// RenderFaultSweep formats the fault-injection sweep.
func RenderFaultSweep(rows []FaultSweepRow) Table {
	t := Table{
		Title:   "Fault sweep — URAM sequential read goodput vs injected NVMe error rate",
		Columns: []string{"goodput GB/s", "inject", "errs", "retry", "tmo", "abort", "amp"},
		Notes: []string{
			"amp = commands submitted / retired (retry amplification); 1.00 means no resubmissions",
			"invariant: inject == errs == retry + abort — no error completion is silently swallowed",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("%.2f%%", r.RatePct),
			Cells: []string{
				gb(r.GoodputGB),
				fmt.Sprintf("%d", r.Injected), fmt.Sprintf("%d", r.Errors),
				fmt.Sprintf("%d", r.Retries), fmt.Sprintf("%d", r.Timeouts),
				fmt.Sprintf("%d", r.Aborts), fmt.Sprintf("%.2f", r.Amplification),
			},
		})
	}
	return t
}

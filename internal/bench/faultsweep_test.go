package bench

import (
	"testing"

	"snacc/internal/fault"
	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// TestFaultSweepBaselineRow pins the zero-rate row: with no rule registered
// nothing fires, nothing retries, and the sweep degenerates to an ordinary
// sequential-read measurement.
func TestFaultSweepBaselineRow(t *testing.T) {
	rows := FaultSweep([]float64{0}, 8*sim.MiB)
	r := rows[0]
	if r.Injected != 0 || r.Errors != 0 || r.Retries != 0 || r.Timeouts != 0 || r.Aborts != 0 {
		t.Errorf("zero-rate row has recovery activity: %+v", r)
	}
	if r.Amplification != 1 {
		t.Errorf("zero-rate amplification = %.3f, want exactly 1", r.Amplification)
	}
	if r.GoodputGB <= 0 {
		t.Errorf("zero-rate goodput = %.3f GB/s, want > 0", r.GoodputGB)
	}
}

// TestStatusFaultAccountingInvariant is the issue's acceptance criterion: at
// a 1% injected read-error rate, every injected fault must be visible in the
// streamer's books — injected == error CQEs observed == retried + aborted.
// Nothing is silently swallowed.
func TestStatusFaultAccountingInvariant(t *testing.T) {
	const total = sim.GiB // 1024 commands: ~10 injections expected at 1%
	rig := buildSNAcc(streamer.URAM, faultRecovery, nil)
	in := fault.NewInjector(faultSweepSeed)
	in.Add(fault.Rule{Name: "read-errors", Kind: fault.StatusError,
		Opcode: nvme.OpRead, Probability: 0.01,
		Status: nvme.StatusDataTransferError})
	in.Attach(rig.dev)
	res := faultSeqRead(rig, 0, total)

	st := rig.st
	if in.Injected() == 0 {
		t.Fatal("1% rate over the seeded workload injected nothing; grow the transfer")
	}
	if st.CommandErrors() != in.Injected() {
		t.Errorf("error CQEs observed = %d, injected = %d; errors were swallowed",
			st.CommandErrors(), in.Injected())
	}
	if got := st.CommandRetries() + st.CommandAborts(); got != in.Injected() {
		t.Errorf("retried+aborted = %d+%d = %d, want every injected fault (%d) dispositioned",
			st.CommandRetries(), st.CommandAborts(), got, in.Injected())
	}
	if st.CommandTimeouts() != 0 || st.ProtocolErrors() != 0 {
		t.Errorf("status faults produced timeouts=%d protocolErrors=%d, want 0/0",
			st.CommandTimeouts(), st.ProtocolErrors())
	}
	if res.Bytes > total {
		t.Errorf("delivered %d bytes of a %d-byte read", res.Bytes, total)
	}
	if (st.CommandAborts() == 0) != (res.Bytes == total) {
		t.Errorf("aborts=%d but delivered %d/%d bytes; aborted pieces must (only) account for the shortfall",
			st.CommandAborts(), res.Bytes, total)
	}
}

// TestDropFaultAccountingInvariant covers the lost-completion leg: every
// dropped CQE must surface as exactly one watchdog timeout, and every timeout
// must be dispositioned as a retry or an abort.
func TestDropFaultAccountingInvariant(t *testing.T) {
	const total = 64 * sim.MiB
	rig := buildSNAcc(streamer.URAM, faultRecovery, nil)
	in := fault.NewInjector(faultSweepSeed)
	in.Add(fault.Rule{Name: "drop-16th", Kind: fault.DropCQE,
		Opcode: nvme.OpRead, Nth: 16})
	in.Attach(rig.dev)
	res := faultSeqRead(rig, 0, total)

	st := rig.st
	if in.Injected() == 0 {
		t.Fatal("Nth:16 drop rule fired nothing over a 64-command read")
	}
	if st.CommandTimeouts() != in.Injected() {
		t.Errorf("timeouts = %d, dropped CQEs = %d; a lost completion went unnoticed",
			st.CommandTimeouts(), in.Injected())
	}
	if got := st.CommandRetries() + st.CommandAborts(); got != st.CommandTimeouts() {
		t.Errorf("retried+aborted = %d, want every timeout (%d) dispositioned",
			got, st.CommandTimeouts())
	}
	if st.CommandErrors() != 0 {
		t.Errorf("drops produced %d error CQEs, want 0", st.CommandErrors())
	}
	if st.CommandAborts() == 0 && res.Bytes != total {
		t.Errorf("no aborts yet delivered only %d/%d bytes", res.Bytes, total)
	}
}

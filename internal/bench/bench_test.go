package bench

import (
	"encoding/json"
	"testing"

	"snacc/internal/sim"
	"snacc/internal/streamer"
)

func TestFig4aShape(t *testing.T) {
	rows := Fig4a(192 * sim.MiB)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byLabel := map[string]Fig4aRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.SeqReadGB < 6.4 || r.SeqReadGB > 7.1 {
			t.Errorf("%s seq read %.2f outside paper band", r.Label, r.SeqReadGB)
		}
	}
	if !(byLabel["Host DRAM"].SeqWriteGB > byLabel["URAM"].SeqWriteGB &&
		byLabel["URAM"].SeqWriteGB > byLabel["On-board DRAM"].SeqWriteGB) {
		t.Errorf("Figure 4a write ordering violated: %+v", rows)
	}
	// The alternating-band spread must be visible on SPDK/Host writes.
	if s := byLabel["SPDK"]; s.WriteHiGB-s.WriteLoGB < 0.15 {
		t.Errorf("SPDK write band too narrow: %.2f–%.2f", s.WriteLoGB, s.WriteHiGB)
	}
	t.Log(RenderFig4a(rows).String())
}

func TestFig4bShape(t *testing.T) {
	rows := Fig4b(48 * sim.MiB)
	byLabel := map[string]Fig4bRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// SPDK rand-read well above every SNAcc variant (in-order penalty).
	for _, v := range []string{"URAM", "On-board DRAM", "Host DRAM"} {
		if byLabel[v].RandReadGB*2 > byLabel["SPDK"].RandReadGB {
			t.Errorf("%s rand-read %.2f not well below SPDK %.2f",
				v, byLabel[v].RandReadGB, byLabel["SPDK"].RandReadGB)
		}
	}
	// Host rand-write competitive with SPDK (§5.2: 4.8 vs 5.25).
	if h, s := byLabel["Host DRAM"].RandWriteGB, byLabel["SPDK"].RandWriteGB; h < 0.8*s {
		t.Errorf("host rand-write %.2f not competitive with SPDK %.2f", h, s)
	}
	t.Log(RenderFig4b(rows).String())
}

func TestFig4cShape(t *testing.T) {
	rows := Fig4c(120)
	byLabel := map[string]Fig4cRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.WriteLatency >= 9*sim.Microsecond {
			t.Errorf("%s write latency %v ≥ 9us", r.Label, r.WriteLatency)
		}
	}
	if !(byLabel["URAM"].ReadLatency < byLabel["On-board DRAM"].ReadLatency &&
		byLabel["On-board DRAM"].ReadLatency < byLabel["SPDK"].ReadLatency) {
		t.Errorf("read latency ordering violated")
	}
	t.Log(RenderFig4c(rows).String())
}

func TestTable1Render(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := RenderTable1(rows).String()
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	t.Log(out)
}

func TestAblationQDShape(t *testing.T) {
	// §5.2: beyond the paper's QD 64, SPDK keeps gaining while the
	// in-order Streamer saturates its retirement FSM and stays flat.
	rows := AblationQD([]int{64, 256}, 24*sim.MiB)
	if rows[1].SPDKGB <= rows[0].SPDKGB*1.05 {
		t.Errorf("SPDK should scale past QD 64: %.2f → %.2f", rows[0].SPDKGB, rows[1].SPDKGB)
	}
	if g := rows[1].SNAccGB / rows[0].SNAccGB; g > 1.15 {
		t.Errorf("in-order SNAcc should stay nearly flat past QD 64, grew %.2fx", g)
	}
	t.Log(RenderAblationQD(rows).String())
}

func TestAblationOOOShape(t *testing.T) {
	rows := AblationOOO(24 * sim.MiB)
	if rows[1].RandReadGB <= rows[0].RandReadGB*1.2 {
		t.Errorf("OOO retirement should lift rand-read: %.2f vs %.2f",
			rows[1].RandReadGB, rows[0].RandReadGB)
	}
	t.Log(RenderAblationOOO(rows).String())
}

func TestAblationMultiSSDShape(t *testing.T) {
	rows := AblationMultiSSD([]int{1, 2, 4}, 96*sim.MiB)
	if rows[1].SeqWriteGB < rows[0].SeqWriteGB*1.7 {
		t.Errorf("2 SSDs should nearly double write BW: %.2f vs %.2f",
			rows[1].SeqWriteGB, rows[0].SeqWriteGB)
	}
	// §7 predicts scaling "will better saturate PCIe bandwidth": four SSDs
	// demand ~22 GB/s of P2P fetches, so the card's Gen3 x16 link (~15
	// effective GB/s) becomes the ceiling.
	if rows[2].SeqWriteGB < 13.5 || rows[2].SeqWriteGB > 15.8 {
		t.Errorf("4 SSDs should saturate the x16 link near 15 GB/s, got %.2f", rows[2].SeqWriteGB)
	}
	t.Log(RenderAblationMultiSSD(rows).String())
}

func TestAblationGen5Shape(t *testing.T) {
	rows := AblationGen5(192 * sim.MiB)
	if rows[1].SeqReadGB < rows[0].SeqReadGB*1.5 {
		t.Errorf("Gen5 seq read should be well above Gen4: %.2f vs %.2f",
			rows[1].SeqReadGB, rows[0].SeqReadGB)
	}
	if rows[1].SeqWriteGB < rows[0].SeqWriteGB*1.3 {
		t.Errorf("Gen5 seq write should improve: %.2f vs %.2f",
			rows[1].SeqWriteGB, rows[0].SeqWriteGB)
	}
	t.Log(RenderAblationGen5(rows).String())
}

func TestAblationDRAMShape(t *testing.T) {
	rows := AblationDRAM(192 * sim.MiB)
	if rows[1].SeqWriteGB <= rows[0].SeqWriteGB {
		t.Errorf("removing turnaround should recover write BW: %.2f vs %.2f",
			rows[1].SeqWriteGB, rows[0].SeqWriteGB)
	}
	t.Log(RenderAblationDRAM(rows).String())
}

func TestAblationHBMShape(t *testing.T) {
	rows := AblationHBM(128 * sim.MiB)
	if rows[1].SeqWriteGB <= rows[0].SeqWriteGB {
		t.Errorf("HBM staging should lift on-card write BW: %.2f vs %.2f",
			rows[1].SeqWriteGB, rows[0].SeqWriteGB)
	}
	// The P2P read limit still caps HBM below the host-DRAM variant's 6.2.
	if rows[1].SeqWriteGB > 5.9 {
		t.Errorf("HBM write %.2f should stay P2P-limited below ~5.6", rows[1].SeqWriteGB)
	}
	t.Log(RenderAblationHBM(rows).String())
}

func TestSweepConvergence(t *testing.T) {
	// The EXPERIMENTS.md scaling claim: beyond 128 MiB, sequential
	// bandwidth changes by well under 2%.
	rows := SweepTransferSize(streamer.URAM, []int64{128 * sim.MiB, 256 * sim.MiB, 512 * sim.MiB})
	for i := 1; i < len(rows); i++ {
		for _, pair := range [][2]float64{
			{rows[i].SeqWriteGB, rows[i-1].SeqWriteGB},
			{rows[i].SeqReadGB, rows[i-1].SeqReadGB},
		} {
			rel := (pair[0] - pair[1]) / pair[1]
			if rel < 0 {
				rel = -rel
			}
			if rel > 0.02 {
				t.Errorf("bandwidth moved %.1f%% between %d and %d MiB",
					rel*100, rows[i-1].TransferBytes/sim.MiB, rows[i].TransferBytes/sim.MiB)
			}
		}
	}
	t.Log(RenderSweep("URAM", rows).String())
}

func TestTableCSV(t *testing.T) {
	tb := Table{
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    []TableRow{{Label: "x,y", Cells: []string{"1", "2"}}},
	}
	csv := tb.CSV()
	want := "label,a,b\nx;y,1,2\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestTimelineShowsEpochs(t *testing.T) {
	pts := Timeline(streamer.URAM, 96*sim.MiB, 2*sim.Millisecond)
	if len(pts) < 6 {
		t.Fatalf("only %d samples", len(pts))
	}
	// Ignore the trailing drain sample; the body must show two distinct
	// bandwidth plateaus (the banding epochs).
	body := pts[:len(pts)-1]
	min, max := body[0].GBps, body[0].GBps
	for _, p := range body {
		if p.GBps < min {
			min = p.GBps
		}
		if p.GBps > max {
			max = p.GBps
		}
	}
	if max-min < 0.1 {
		t.Fatalf("timeline flat (%.2f..%.2f); banding epochs should be visible", min, max)
	}
	if out := RenderTimeline("URAM", pts, 8); len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestFig4aDeterministic(t *testing.T) {
	a := Fig4a(96 * sim.MiB)
	b := Fig4a(96 * sim.MiB)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d diverged across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAblationMTUShape(t *testing.T) {
	rows := AblationMTU([]int64{1500, 9000}, 64)
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.CaseGB > r.CeilingGB {
			t.Errorf("MTU %d: measured %.2f exceeds the analytic ceiling %.2f", r.MTU, r.CaseGB, r.CeilingGB)
		}
		if r.CaseGB < 0.9*r.CeilingGB {
			t.Errorf("MTU %d: measured %.2f far below the ceiling %.2f — pipeline should be network-bound", r.MTU, r.CaseGB, r.CeilingGB)
		}
	}
	if rows[0].CaseGB >= rows[1].CaseGB {
		t.Fatalf("standard MTU (%.2f) should underperform jumbo (%.2f)", rows[0].CaseGB, rows[1].CaseGB)
	}
	t.Log(RenderAblationMTU(rows).String())
}

func TestTableJSON(t *testing.T) {
	tbl := Table{
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    []TableRow{{Label: "r1", Cells: []string{"1", "2"}}},
		Notes:   []string{"n"},
	}
	var doc struct {
		Title   string   `json:"title"`
		Columns []string `json:"columns"`
		Rows    []struct {
			Label string   `json:"label"`
			Cells []string `json:"cells"`
		} `json:"rows"`
		Notes []string `json:"notes"`
	}
	if err := json.Unmarshal([]byte(tbl.JSON()), &doc); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if doc.Title != "t" || len(doc.Columns) != 2 || len(doc.Rows) != 1 ||
		doc.Rows[0].Label != "r1" || doc.Rows[0].Cells[1] != "2" || doc.Notes[0] != "n" {
		t.Fatalf("round trip mangled the table: %+v", doc)
	}
}

func TestAblationQPShape(t *testing.T) {
	rows := AblationQP([]int{1, 4}, 16*sim.MiB)
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	// Sequential writes: NAND-limited, no scaling with queue count.
	if r := rows[1].SeqWriteGB / rows[0].SeqWriteGB; r > 1.1 || r < 0.9 {
		t.Errorf("seq write scaled %.2fx with queue pairs; the NAND is the ceiling", r)
	}
	// Random reads: each streamer's in-order FSM is a per-queue limit.
	if rows[1].RandReadGB < 2.2*rows[0].RandReadGB {
		t.Errorf("rand read scaled only %.2f -> %.2f across 4 queue pairs",
			rows[0].RandReadGB, rows[1].RandReadGB)
	}
	t.Log(RenderAblationQP(rows).String())
}

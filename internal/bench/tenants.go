package bench

import (
	"fmt"

	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

// TenantSweepRow is one (scheduler, tenant) cell of the multi-tenant QoS
// experiment: a paced 4 KiB "victim" shares one URAM streamer with a bursty
// 64 KiB "noisy" neighbor, under the DRR scheduler and under the FIFO
// baseline, against a solo-victim control run.
type TenantSweepRow struct {
	Sched  string  // "solo" (victim alone), "drr", or "fifo"
	Tenant string  // tenant name ("victim" / "noisy")
	Reads  int64   // completed read commands
	KIOPS  float64 // read commands per second, thousands
	P50Us  float64 // median accept→complete read latency, µs
	P99Us  float64 // p99 accept→complete read latency, µs
	VsSolo float64 // victim p99 relative to the solo control (0 for noisy rows)
}

// IsolationBound is the pinned noisy-neighbor guarantee: with the DRR
// scheduler, the victim's p99 read latency under a saturating noisy neighbor
// stays within this factor of its solo p99. The FIFO baseline breaks the
// bound (the victim queues behind the neighbor's whole burst), which is what
// the weighted scheduler exists to prevent. TestTenantIsolationBound pins
// both sides.
const IsolationBound = 4.0

// Tenant-sweep workload shape. The victim issues paced, latency-sensitive
// 4 KiB reads; the noisy neighbor fires 16-command bursts of 64 KiB reads
// every 20 µs — an offered load of ~50 GB/s, more than 4× its weight's fair
// share of the device — throttled only by the hub's admission cap, so its
// backlog always exceeds the dispatch window and the schedulers actually
// arbitrate.
const (
	tenantWindowBytes = 256 * sim.MiB
	victimIOBytes     = int64(4 * sim.KiB)
	victimGap         = 25 * sim.Microsecond
	noisyIOBytes      = int64(64 * sim.KiB)
	noisyBurst        = 16
	noisyDepth        = 32
	noisyGap          = 20 * sim.Microsecond
)

// tenantRig is one URAM streamer fronted by a two-tenant hub, optionally
// wrapped in a single-domain shard so the rig exercises the sharded-kernel
// run path when domain-level workers are configured (results are identical
// either way; the determinism tests sweep both axes).
type tenantRig struct {
	k     *sim.Kernel
	shard *sim.Shard
	hub   *streamer.TenantHub
}

func newTenantRig(fifo bool) *tenantRig {
	r := &tenantRig{}
	r.k = sim.NewKernel()
	if kernelWorkers > 1 {
		r.shard = sim.NewShard(kernelWorkers)
		r.k = r.shard.AddDomain("fpga").Kernel()
	}
	pl := tapasco.NewPlatform(r.k, tapasco.DefaultU280())
	nvme.New(r.k, pl.Fabric, nvme.DefaultConfig("ssd0", ssdBAR))
	stCfg := streamer.DefaultConfig("snacc0", 0, streamer.URAM)
	st := pl.AddStreamer(stCfg)
	drv := tapasco.NewDriver(pl, "ssd0", ssdBAR)
	hub, err := streamer.NewTenantHub(r.k, st, []streamer.TenantConfig{
		{Name: "victim", Weight: 1, LBAStart: 0, LBABytes: tenantWindowBytes},
		{Name: "noisy", Weight: 1, LBAStart: uint64(tenantWindowBytes), LBABytes: tenantWindowBytes},
	}, streamer.HubOptions{FIFO: fifo})
	if err != nil {
		panic(err)
	}
	r.hub = hub
	ok := false
	r.k.Spawn("init", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			panic(err)
		}
		if err := drv.AttachStreamer(p, st, 1); err != nil {
			panic(err)
		}
		ok = true
	})
	r.drain()
	if !ok {
		panic("bench: tenant rig initialization failed")
	}
	return r
}

// drain runs the rig to quiescence on whichever engine owns it.
func (r *tenantRig) drain() {
	if r.shard != nil {
		r.shard.Run(0)
	} else {
		r.k.Run(0)
	}
}

// victimLoop issues ops paced 4 KiB random reads and returns via elapsed.
func victimLoop(c *streamer.TenantClient, ops int, elapsed *sim.Time) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		rnd := sim.NewRand(11)
		slots := int(tenantWindowBytes / victimIOBytes)
		start := p.Now()
		for i := 0; i < ops; i++ {
			addr := uint64(int64(rnd.Intn(slots)) * victimIOBytes)
			c.Read(p, addr, victimIOBytes)
			p.Sleep(victimGap)
		}
		*elapsed = p.Now() - start
	}
}

// noisyLoop fires bursts of 64 KiB reads, keeping up to noisyDepth commands
// outstanding, and returns via elapsed.
func noisyLoop(c *streamer.TenantClient, ops int, elapsed *sim.Time) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		rnd := sim.NewRand(23)
		slots := int(tenantWindowBytes / noisyIOBytes)
		start := p.Now()
		inflight := 0
		for issued := 0; issued < ops; {
			b := noisyBurst
			if b > ops-issued {
				b = ops - issued
			}
			for i := 0; i < b; i++ {
				addr := uint64(int64(rnd.Intn(slots)) * noisyIOBytes)
				c.ReadAsync(p, addr, noisyIOBytes)
			}
			issued += b
			inflight += b
			for inflight > noisyDepth {
				c.ConsumeRead(p)
				inflight--
			}
			p.Sleep(noisyGap)
		}
		for ; inflight > 0; inflight-- {
			c.ConsumeRead(p)
		}
		*elapsed = p.Now() - start
	}
}

// runTenantRig executes one scheduler configuration and returns its rows
// (victim first, then the neighbor when present).
func runTenantRig(sched string, fifo, withNoisy bool, victimOps, noisyOps int) []TenantSweepRow {
	rig := newTenantRig(fifo)
	var vElapsed, nElapsed sim.Time
	rig.k.Spawn("victim", victimLoop(rig.hub.Client(0), victimOps, &vElapsed))
	if withNoisy {
		rig.k.Spawn("noisy", noisyLoop(rig.hub.Client(1), noisyOps, &nElapsed))
	}
	rig.drain()

	row := func(tenant int, elapsed sim.Time) TenantSweepRow {
		st := rig.hub.Stats()[tenant]
		lat := rig.hub.ReadLatency(tenant)
		r := TenantSweepRow{
			Sched:  sched,
			Tenant: st.Name,
			Reads:  st.Reads,
			P50Us:  float64(lat.Percentile(50)) / 1e3,
			P99Us:  float64(lat.Percentile(99)) / 1e3,
		}
		if elapsed > 0 {
			r.KIOPS = float64(st.Reads) / elapsed.Seconds() / 1e3
		}
		return r
	}
	rows := []TenantSweepRow{row(0, vElapsed)}
	if withNoisy {
		rows = append(rows, row(1, nElapsed))
	}
	return rows
}

// TenantSweep runs the three-rig noisy-neighbor experiment: the victim
// alone (control), then victim + neighbor under the weighted DRR scheduler,
// then the same pair under the FIFO baseline. Rigs are independent and
// deterministic, so the sweep replays byte-identically at any rig-level
// parallelism and any kernel worker count. victimOps/noisyOps <= 0 select
// the CLI defaults (400 / 2400).
func TenantSweep(victimOps, noisyOps int) []TenantSweepRow {
	if victimOps <= 0 {
		victimOps = 400
	}
	if noisyOps <= 0 {
		noisyOps = 2400
	}
	specs := []struct {
		sched string
		fifo  bool
		noisy bool
	}{
		{"solo", false, false},
		{"drr", false, true},
		{"fifo", true, true},
	}
	groups := mapRows(len(specs), func(i int) []TenantSweepRow {
		s := specs[i]
		return runTenantRig(s.sched, s.fifo, s.noisy, victimOps, noisyOps)
	})
	var rows []TenantSweepRow
	for _, g := range groups {
		rows = append(rows, g...)
	}
	var soloP99 float64
	for _, r := range rows {
		if r.Sched == "solo" && r.Tenant == "victim" {
			soloP99 = r.P99Us
			break
		}
	}
	for i := range rows {
		if soloP99 > 0 && rows[i].Tenant == "victim" {
			rows[i].VsSolo = rows[i].P99Us / soloP99
		}
	}
	return rows
}

// RenderTenantSweep formats the multi-tenant QoS sweep.
func RenderTenantSweep(rows []TenantSweepRow) Table {
	t := Table{
		Title:   "Tenant sweep — victim 4 KiB reads vs bursty 64 KiB noisy neighbor",
		Columns: []string{"reads", "kIOPS", "p50 µs", "p99 µs", "p99/solo"},
		Notes: []string{
			"solo = victim alone; drr = weighted deficit round robin; fifo = arrival-order baseline",
			fmt.Sprintf("QoS guarantee: drr victim p99 stays within %.1fx of solo (the fifo baseline does not)", IsolationBound),
		},
	}
	for _, r := range rows {
		vs := "-"
		if r.VsSolo > 0 {
			vs = fmt.Sprintf("%.2fx", r.VsSolo)
		}
		t.Rows = append(t.Rows, TableRow{
			Label: r.Sched + "/" + r.Tenant,
			Cells: []string{
				fmt.Sprintf("%d", r.Reads),
				fmt.Sprintf("%.1f", r.KIOPS),
				fmt.Sprintf("%.1f", r.P50Us),
				fmt.Sprintf("%.1f", r.P99Us),
				vs,
			},
		})
	}
	return t
}

package bench

import (
	"testing"

	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// benchmarkStreamerRead measures one full-stack read per iteration: client
// command in, SQE synthesis, controller fetch over the fabric, NAND read,
// DMA into the staging buffer, in-order retirement, and the drain to the PE
// stream. This is the end-to-end cost the kernel and buffer-pool work
// targets; run with -benchmem to watch steady-state allocations.
func benchmarkStreamerRead(b *testing.B, ioBytes int64) {
	rig := buildSNAcc(streamer.URAM, nil, nil)
	run := func() {
		rig.measure(func(p *sim.Proc) {
			rig.c.Read(p, 0, ioBytes)
		})
	}
	run() // warm the rig (queues created, pools primed)
	b.SetBytes(ioBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkStreamerRead4K(b *testing.B) { benchmarkStreamerRead(b, 4*sim.KiB) }

func BenchmarkStreamerRead1M(b *testing.B) { benchmarkStreamerRead(b, sim.MiB) }

package bench

import (
	"testing"

	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// benchmarkStreamerRead measures one full-stack read per iteration: client
// command in, SQE synthesis, controller fetch over the fabric, NAND read,
// DMA into the staging buffer, in-order retirement, and the drain to the PE
// stream. This is the end-to-end cost the kernel and buffer-pool work
// targets; run with -benchmem to watch steady-state allocations.
func benchmarkStreamerRead(b *testing.B, ioBytes int64) {
	rig := buildSNAcc(streamer.URAM, nil, nil)
	run := func() {
		rig.measure(func(p *sim.Proc) {
			rig.c.Read(p, 0, ioBytes)
		})
	}
	run() // warm the rig (queues created, pools primed)
	b.SetBytes(ioBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkStreamerRead4K(b *testing.B) { benchmarkStreamerRead(b, 4*sim.KiB) }

func BenchmarkStreamerRead1M(b *testing.B) { benchmarkStreamerRead(b, sim.MiB) }

// BenchmarkStreamerRead4KMultiQueue is the batched multi-queue variant of
// BenchmarkStreamerRead4K: four I/O queue pairs with doorbell coalescing at
// batch 8, so every iteration exercises the chunked round-robin placement,
// the deferred SQ-tail flush, and the batched CQ-head drain. The coalescing
// machinery (doorbell payloads recycled through bufpool, preallocated flush
// closures, the reused dbSlots scratch) must add exactly zero allocations:
// allocs/op here must match a single-queue read of the same 64 KiB — the
// residue both report is the fixed per-measure rig overhead (proc spawn,
// span roots), not the batched paths.
func BenchmarkStreamerRead4KMultiQueue(b *testing.B) {
	rig := buildSNAcc(streamer.URAM, func(cfg *streamer.Config) {
		cfg.IOQueues = 4
		cfg.DoorbellBatch = 8
	}, nil)
	run := func() {
		rig.measure(func(p *sim.Proc) {
			rig.c.Read(p, 0, 64*sim.KiB)
		})
	}
	run() // warm the rig (queues created, pools primed, dbSlots grown)
	b.SetBytes(64 * sim.KiB)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

package bench

import (
	"reflect"
	"testing"

	"snacc/internal/sim"
	"snacc/internal/workload"
)

// TestRenderServeSweepGolden pins the serve-sweep renderer against
// synthetic rows (regenerate with -update).
func TestRenderServeSweepGolden(t *testing.T) {
	rows := []ServeSweepRow{
		{
			Clients: 10_000, Requests: 4000, Completed: 4000, Dropped: 0,
			GoodMBps: 2236.31, P50Us: 1638.4, P99Us: 3276.8, P999Us: 3288.7,
			PeakConns: 3103, StateMiB: 0.15, PeakQueue: 256, Pauses: 161,
		},
		{
			Clients: 1_000_000, Requests: 4000, Completed: 3000, Dropped: 1000,
			GoodMBps: 1677.2, P50Us: 1638.4, P99Us: 5300.5, P999Us: 8123.9,
			PeakConns: 3770, StateMiB: 3.96, PeakQueue: 256, Pauses: 348,
		},
	}
	checkGolden(t, "servesweep", RenderServeSweep(rows).String())
}

// TestServeSweepLive runs a scaled-down sweep end to end and checks the
// row-level facts the table is meant to convey: everything generated is
// accounted for, the connection-state footprint grows with the population,
// and the sweep is deterministic run to run.
func TestServeSweepLive(t *testing.T) {
	clients := []int{2000, 20_000}
	rows := ServeSweep(clients, 500, nil)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.Clients != clients[i] {
			t.Fatalf("row %d clients %d, want %d", i, r.Clients, clients[i])
		}
		if r.Requests != 500 {
			t.Fatalf("row %d generated %d, want 500", i, r.Requests)
		}
		if r.Completed+r.Dropped != r.Requests {
			t.Fatalf("row %d: completed %d + dropped %d != requests %d",
				i, r.Completed, r.Dropped, r.Requests)
		}
		if r.GoodMBps <= 0 || r.P50Us <= 0 || r.P99Us < r.P50Us || r.P999Us < r.P99Us {
			t.Fatalf("row %d: implausible goodput/latency %+v", i, r)
		}
		if r.PeakConns < 1 || r.PeakConns > clients[i] {
			t.Fatalf("row %d: peak conns %d outside (0, %d]", i, r.PeakConns, clients[i])
		}
	}
	if rows[1].StateMiB <= rows[0].StateMiB {
		t.Fatalf("conn state did not grow with population: %.3f vs %.3f MiB",
			rows[0].StateMiB, rows[1].StateMiB)
	}
	if again := ServeSweep(clients, 500, nil); !reflect.DeepEqual(again, rows) {
		t.Fatalf("repeat sweep diverged:\n%+v\n%+v", rows, again)
	}
}

func TestParseServeClients(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"10000", []int{10000}, true},
		{"10000,100000,1000000", []int{10000, 100000, 1000000}, true},
		{" 500 , 600 ", []int{500, 600}, true},
		{"", nil, false},
		{"   ", nil, false},
		{"10,abc", nil, false},
		{"10,,20", nil, false},
		{"0", nil, false},
		{"-5", nil, false},
		{"10.5", nil, false},
	}
	for _, tc := range cases {
		got, err := ParseServeClients(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseServeClients(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseServeClients(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseServePhases(t *testing.T) {
	cases := []struct {
		in   string
		want []workload.PhaseSpec
		ok   bool
	}{
		{"", DefaultServePhases, true},
		{"1:200", []workload.PhaseSpec{{RateScale: 1, Duration: 200 * sim.Microsecond}}, true},
		{"1:200,6:50", []workload.PhaseSpec{
			{RateScale: 1, Duration: 200 * sim.Microsecond},
			{RateScale: 6, Duration: 50 * sim.Microsecond},
		}, true},
		{"0.5:12.5", []workload.PhaseSpec{{RateScale: 0.5, Duration: sim.Time(12.5 * float64(sim.Microsecond))}}, true},
		{"1", nil, false},
		{"1:", nil, false},
		{":200", nil, false},
		{"0:200", nil, false},
		{"-1:200", nil, false},
		{"1:0", nil, false},
		{"1:-50", nil, false},
		{"abc:200", nil, false},
		{"1:xyz", nil, false},
		{"1:200,,2:50", nil, false},
	}
	for _, tc := range cases {
		got, err := ParseServePhases(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseServePhases(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseServePhases(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Every accepted shape must survive the workload spec validation the
	// rig applies.
	for _, in := range []string{"", "1:200,6:50", "0.5:12.5"} {
		phases, err := ParseServePhases(in)
		if err != nil {
			t.Fatalf("ParseServePhases(%q): %v", in, err)
		}
		spec := serveSpec(1000, 10, phases)
		if err := spec.Validate(); err != nil {
			t.Errorf("phases %q produce an invalid spec: %v", in, err)
		}
	}
}

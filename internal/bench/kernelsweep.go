package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"snacc/internal/ethernet"
	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// KernelPoint is one worker count of the sharded-kernel sweep.
type KernelPoint struct {
	Workers int `json:"workers"`
	// EffectiveWorkers caps Workers by GOMAXPROCS and the domain count —
	// what can actually run concurrently.
	EffectiveWorkers int     `json:"effective_workers"`
	Seconds          float64 `json:"seconds"`
	Events           uint64  `json:"events"`
	EventsPerSec     float64 `json:"events_per_sec"`
	// CrossEvents counts inter-domain handoffs; Rounds counts
	// synchronization windows.
	CrossEvents uint64 `json:"cross_events"`
	Rounds      uint64 `json:"rounds"`
	// Speedup is events/s relative to the workers=1 point.
	Speedup float64 `json:"speedup"`
	// Digest is the FNV-1a fold of every executed event's (domain, time,
	// sequence) — the byte-identity witness across worker counts.
	Digest string `json:"digest"`
}

// KernelReport is the -kernelworkers sweep the snaccbench CLI emits as
// BENCH_kernel.json: event throughput of the sharded conservative-parallel
// kernel on the ethernet → pcie → nvme-per-controller chain, at several
// worker counts, with the determinism digests and the machine's concurrency
// limits alongside — so a flat speedup curve on a core-bound machine reads
// as the machine's limit, not a scheduler regression.
type KernelReport struct {
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// CoreBound flags that some requested worker count exceeds GOMAXPROCS:
	// wall-clock scaling beyond that is impossible on this machine and the
	// speedup column must not be read as a regression.
	CoreBound bool     `json:"core_bound"`
	Domains   []string `json:"domains"`
	// MinLookaheadNs is the smallest edge lookahead — the conservative
	// window increment the topology sustains per round.
	MinLookaheadNs int64 `json:"min_lookahead_ns"`
	// Deterministic is true when every point produced the same digest and
	// event count (the tentpole guarantee, checked on every sweep).
	Deterministic bool          `json:"deterministic"`
	Points        []KernelPoint `json:"points"`
	Note          string        `json:"note,omitempty"`
}

// JSON renders the report.
func (r KernelReport) JSON() string {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return string(out)
}

// chainState is one domain's workload state; everything here is owned by
// exactly one domain and touched only by its events.
type chainState struct {
	h   uint64 // FNV-1a digest
	n   uint64 // events folded
	now func() sim.Time
}

func (c *chainState) fold(v uint64) {
	c.n++
	h := c.h
	h ^= v
	h *= 1099511628211
	h ^= uint64(c.now())
	h *= 1099511628211
	c.h = h
}

// kernelChainRun drives `frames` Ethernet arrivals through the full
// streamer.DomainPlan chain: each frame fans out local protocol events in
// the ethernet domain, crosses to the pcie domain after the wire latency,
// triggers DMA-shaped local work there, crosses to one of two NVMe
// controller domains after the link latency, pays command processing, and
// completes back through the pcie domain. Lookaheads are the real model
// latencies (wire 500 ns, NVMe link 150 ns with stock configs).
func kernelChainRun(workers, frames int) (digest uint64, p KernelPoint) {
	plan := streamer.DomainPlan(ethernet.DefaultConfig(),
		nvme.DefaultConfig("nvme0", 0), nvme.DefaultConfig("nvme1", 0))
	s := sim.NewShard(workers)
	domains, edges, err := plan.Build(s)
	if err != nil {
		panic(err)
	}
	eth := domains["ethernet"]
	pci := domains["pcie"]
	nvm := []*sim.Domain{domains["nvme0"], domains["nvme1"]}
	toPCI := edges["ethernet->pcie"]
	toNVMe := []*sim.Edge{edges["pcie->nvme0"], edges["pcie->nvme1"]}
	toHost := []*sim.Edge{edges["nvme0->pcie"], edges["nvme1->pcie"]}

	state := make([]*chainState, len(plan.Domains))
	for i, name := range plan.Domains {
		d := domains[name]
		state[i] = &chainState{h: 14695981039346656037, now: d.Kernel().Now}
	}
	ethSt, pciSt := state[0], state[1]

	// NVMe domains: command processing — a few spaced firmware events,
	// then the completion crosses back.
	complete := func(idx int, id uint64) {
		st := state[2+idx]
		k := nvm[idx].Kernel()
		for j := sim.Time(1); j <= 4; j++ {
			k.At(k.Now()+80*j, func() { st.fold(id) })
		}
		k.At(k.Now()+400, func() {
			st.fold(id)
			toHost[idx].After(150*sim.Nanosecond, func() { pciSt.fold(id) })
		})
	}
	// PCIe domain: DMA-shaped local work, then forward to a controller.
	ingest := func(id uint64) {
		pciSt.fold(id)
		k := pci.Kernel()
		k.At(k.Now()+100, func() { pciSt.fold(id) })
		k.At(k.Now()+200, func() {
			pciSt.fold(id)
			idx := int(id % 2)
			toNVMe[idx].After(150*sim.Nanosecond, func() { complete(idx, id) })
		})
	}
	// Ethernet domain: frame arrivals every 720 ns (9000 B at 12.5 GB/s),
	// each with MAC/FIFO-shaped local events and a cross into the fabric.
	ek := eth.Kernel()
	var arrival func()
	var frame uint64
	arrival = func() {
		id := frame
		frame++
		ethSt.fold(id)
		ek.At(ek.Now()+120, func() { ethSt.fold(id) })
		ek.At(ek.Now()+240, func() { ethSt.fold(id) })
		toPCI.After(500*sim.Nanosecond, func() { ingest(id) })
		if int(frame) < frames {
			ek.At(ek.Now()+720, arrival)
		}
	}
	ek.At(0, arrival)

	start := time.Now()
	s.Run(0)
	elapsed := time.Since(start)

	digest = 14695981039346656037
	for _, st := range state {
		digest ^= st.h
		digest *= 1099511628211
		digest ^= st.n
		digest *= 1099511628211
	}
	eff := workers
	if g := runtime.GOMAXPROCS(0); eff > g {
		eff = g
	}
	if eff > len(plan.Domains) {
		eff = len(plan.Domains)
	}
	return digest, KernelPoint{
		Workers:          workers,
		EffectiveWorkers: eff,
		Seconds:          elapsed.Seconds(),
		Events:           s.EventsExecuted(),
		EventsPerSec:     float64(s.EventsExecuted()) / elapsed.Seconds(),
		CrossEvents:      s.CrossEvents(),
		Rounds:           s.Rounds(),
		Digest:           fmt.Sprintf("%016x", digest),
	}
}

// KernelSweep measures the sharded kernel at each worker count (default
// 1, 2, 4) over the DomainPlan chain rig, checking digest identity across
// counts. frames <= 0 selects 20000 arrivals (~360k events).
func KernelSweep(workerCounts []int, frames int) KernelReport {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4}
	}
	if frames <= 0 {
		frames = 20000
	}
	plan := streamer.DomainPlan(ethernet.DefaultConfig(),
		nvme.DefaultConfig("nvme0", 0), nvme.DefaultConfig("nvme1", 0))
	r := KernelReport{
		CPUs:           runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Domains:        plan.Domains,
		MinLookaheadNs: int64(plan.MinLookahead()),
		Deterministic:  true,
	}
	kernelChainRun(1, frames/10+1) // warm-up: page in code, prime pools

	var baseDigest uint64
	var baseEvents uint64
	var baseRate float64
	for i, w := range workerCounts {
		digest, p := kernelChainRun(w, frames)
		if i == 0 {
			baseDigest, baseEvents, baseRate = digest, p.Events, p.EventsPerSec
		} else if digest != baseDigest || p.Events != baseEvents {
			r.Deterministic = false
		}
		if baseRate > 0 {
			p.Speedup = p.EventsPerSec / baseRate
		}
		if w > r.GOMAXPROCS {
			r.CoreBound = true
		}
		r.Points = append(r.Points, p)
	}
	if r.CoreBound {
		r.Note = fmt.Sprintf("core-bound: GOMAXPROCS=%d limits concurrency below the requested worker counts; flat speedup here reflects the machine, not the scheduler",
			r.GOMAXPROCS)
	}
	return r
}

// RenderKernelSweep formats the report as a table for the CLI.
func RenderKernelSweep(r KernelReport) Table {
	t := Table{
		Title:   "Sharded kernel sweep (conservative-parallel DES)",
		Columns: []string{"effective", "events", "cross", "rounds", "Mev/s", "speedup", "digest"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("workers=%d", p.Workers),
			Cells: []string{
				fmt.Sprintf("%d", p.EffectiveWorkers),
				fmt.Sprintf("%d", p.Events),
				fmt.Sprintf("%d", p.CrossEvents),
				fmt.Sprintf("%d", p.Rounds),
				fmt.Sprintf("%.2f", p.EventsPerSec/1e6),
				fmt.Sprintf("%.2fx", p.Speedup),
				p.Digest,
			},
		})
	}
	if !r.Deterministic {
		t.Notes = append(t.Notes, "DIGEST MISMATCH: worker counts diverged — determinism violation")
	}
	if r.Note != "" {
		t.Notes = append(t.Notes, r.Note)
	}
	return t
}

package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"snacc/internal/ethernet"
	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// KernelPoint is one worker count of the sharded-kernel sweep.
type KernelPoint struct {
	Workers int `json:"workers"`
	// EffectiveWorkers caps Workers by GOMAXPROCS and the domain count —
	// what can actually run concurrently.
	EffectiveWorkers int     `json:"effective_workers"`
	Seconds          float64 `json:"seconds"`
	Events           uint64  `json:"events"`
	EventsPerSec     float64 `json:"events_per_sec"`
	// CrossEvents counts inter-domain handoffs; Rounds counts
	// synchronization windows and EventsPerRound is the useful work each
	// carried — the sync-overhead headline (sim.SyncStats).
	CrossEvents    uint64  `json:"cross_events"`
	Rounds         uint64  `json:"rounds"`
	EventsPerRound float64 `json:"events_per_round"`
	// ElidedDomainRounds counts domain-round slots skipped outright because
	// the domain had no work below its window; UnboundedWindows counts
	// executed domain-rounds free to run to their queue tail; Widest/
	// NarrowestWindowNs bound the finite per-domain window widths the
	// safe-time computation produced.
	ElidedDomainRounds uint64 `json:"elided_domain_rounds"`
	UnboundedWindows   uint64 `json:"unbounded_windows"`
	WidestWindowNs     int64  `json:"widest_window_ns"`
	NarrowestWindowNs  int64  `json:"narrowest_window_ns"`
	// Speedup is events/s relative to the workers=1 point.
	Speedup float64 `json:"speedup"`
	// Digest is the FNV-1a fold of every executed event's (domain, time,
	// sequence) — the byte-identity witness across worker counts.
	Digest string `json:"digest"`
}

// KernelReport is the -kernelworkers sweep the snaccbench CLI emits as
// BENCH_kernel.json: event throughput of the sharded conservative-parallel
// kernel on the ethernet → pcie → nvme-per-controller chain, at several
// worker counts, with the determinism digests and the machine's concurrency
// limits alongside — so a flat speedup curve on a core-bound machine reads
// as the machine's limit, not a scheduler regression.
type KernelReport struct {
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// CoreBound flags that some requested worker count exceeds GOMAXPROCS:
	// wall-clock scaling beyond that is impossible on this machine and the
	// speedup column must not be read as a regression.
	CoreBound bool     `json:"core_bound"`
	Domains   []string `json:"domains"`
	// MinLookaheadNs is the smallest edge lookahead — the conservative
	// window increment the topology sustains per round.
	MinLookaheadNs int64 `json:"min_lookahead_ns"`
	// Deterministic is true when every point produced the same digest and
	// event count (the tentpole guarantee, checked on every sweep).
	Deterministic bool          `json:"deterministic"`
	Points        []KernelPoint `json:"points"`
	Note          string        `json:"note,omitempty"`
}

// JSON renders the report.
func (r KernelReport) JSON() string {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return string(out)
}

// chainState is one domain's workload state; everything here is owned by
// exactly one domain and touched only by its events.
type chainState struct {
	h   uint64 // FNV-1a digest
	n   uint64 // events folded
	cur uint64 // id of the protocol unit this domain is working on
	seq uint64 // ids consumed from this domain's (in-order) ingress stream
	mat uint64 // completions matured (NVMe) / posted back (PCIe)
	now func() sim.Time
}

func (c *chainState) fold(v uint64) {
	c.n++
	h := c.h
	h ^= v
	h *= 1099511628211
	h ^= uint64(c.now())
	h *= 1099511628211
	c.h = h
}

// nvmeService is the rig's modeled NVMe command service time — command
// arrival to completion-data ready. Flash media reads are microseconds
// (NAND array access plus data DMA), an order of magnitude above the
// 150 ns PCIe link hop, which is exactly why the per-domain safe-time math
// can batch many in-flight frames per synchronization round.
const nvmeService = 3200 * sim.Nanosecond

// cqCoalesce is the rig's CQ interrupt-coalescing aggregation window: a
// controller batches matured completions and posts them together once the
// oldest has waited this long (the NVMe coalescing feature; real
// aggregation timers run from microseconds to 100 us). Batched posting
// clusters the controller's cross-domain sends, so between posts its
// earliest-output time jumps a whole aggregation window and the fabric
// domain's window can cover several frames per round.
const cqCoalesce = 8 * sim.Microsecond

// cqEntry is one matured completion waiting for the next coalesced post.
type cqEntry struct {
	ready sim.Time
	id    uint64
}

// cqState is one controller's completion-coalescing buffer; owned entirely
// by that controller's domain.
type cqState struct {
	ready   []cqEntry
	posting bool
}

// kernelChainRun drives `frames` Ethernet arrivals through the full
// streamer.DomainPlan chain: each frame fans out local protocol events in
// the ethernet domain, crosses to the pcie domain after the wire latency,
// triggers DMA-shaped local work there, crosses to one of two NVMe
// controller domains after the link latency, pays command processing, and
// completes back through the pcie domain. Lookaheads are the real model
// latencies (wire 500 ns, NVMe link 150 ns with stock configs).
func kernelChainRun(workers, frames int) (digest uint64, p KernelPoint) {
	plan := streamer.DomainPlan(ethernet.DefaultConfig(),
		nvme.DefaultConfig("nvme0", 0), nvme.DefaultConfig("nvme1", 0))
	// The rig's own firmware closures below never answer an arrival with a
	// cross-domain send faster than these delays: a controller posts its
	// completion 3.2 us after command arrival (the NAND array read plus
	// data DMA — flash media is microseconds, not the link's nanoseconds),
	// and the fabric forwards an ingested frame to a controller 200 ns
	// after the ingest event. Declared as domain turnarounds, they stretch
	// earliest-output times — and so every downstream window — far past the
	// raw link lookahead (sim.SetTurnaround).
	plan.Turnarounds = map[string]sim.Time{
		"nvme0": nvmeService,
		"nvme1": nvmeService,
		"pcie":  200 * sim.Nanosecond,
	}
	s := sim.NewShard(workers)
	domains, edges, err := plan.Build(s)
	if err != nil {
		panic(err)
	}
	eth := domains["ethernet"]
	pci := domains["pcie"]
	nvm := []*sim.Domain{domains["nvme0"], domains["nvme1"]}
	toPCI := edges["ethernet->pcie"]
	toNVMe := []*sim.Edge{edges["pcie->nvme0"], edges["pcie->nvme1"]}
	toHost := []*sim.Edge{edges["nvme0->pcie"], edges["nvme1->pcie"]}
	// This workload carries no pause frames, so the fabric->MAC backchannel
	// is declared mute (enforced): without it the ethernet domain has no
	// live inbound edge and runs its whole arrival schedule unthrottled,
	// instead of feeding the eth<->pcie window cycle.
	edges["pcie->ethernet"].Mute()

	state := make([]*chainState, len(plan.Domains))
	for i, name := range plan.Domains {
		d := domains[name]
		state[i] = &chainState{h: 14695981039346656037, now: d.Kernel().Now}
	}
	ethSt, pciSt := state[0], state[1]

	// Every closure below is bound once, before the run: each edge carries
	// an in-order stream (frames arrive in id order, the fabric forwards in
	// id order, each controller completes in command order), so a handler
	// derives the id it is working on from a per-domain sequence counter
	// instead of capturing it — keeping the steady state allocation-free,
	// which is what lets the sweep measure synchronization cost rather than
	// garbage-collector pressure.

	// NVMe domains: command processing — a few spaced silent firmware
	// events (fetch, LBA translation, NAND issue, DMA setup), the media
	// read maturing after the full service time, and coalesced completion
	// posting: the first matured completion arms a post event one
	// aggregation window out, which flushes everything matured by then and
	// re-arms while work remains. Only the post events send cross-domain,
	// so the controller's pending queue advertises its true next output.
	cqs := make([]cqState, len(nvm))
	// hostDone runs in the pcie domain for each posted completion.
	hostDone := func() {
		pciSt.mat++
		pciSt.fold(pciSt.mat)
	}
	postFn := make([]func(), len(nvm))
	nvmeTick := make([]func(), len(nvm))
	nvmeMature := make([]func(), len(nvm))
	for i := range nvm {
		idx := i
		st := state[2+idx]
		k := nvm[idx].Kernel()
		cq := &cqs[idx]
		// tick folds the in-flight command; it only fires within the
		// firmware pipeline window, before the next command arrives.
		nvmeTick[idx] = func() { st.fold(st.cur) }
		// mature folds the media-read completion; by then newer commands
		// own st.cur, so it folds the matured count instead.
		nvmeMature[idx] = func() { st.mat++; st.fold(st.mat) }
		postFn[idx] = func() {
			now := k.Now()
			next := sim.Time(0)
			keep := cq.ready[:0]
			for _, en := range cq.ready {
				if en.ready <= now {
					toHost[idx].After(150*sim.Nanosecond, hostDone)
					continue
				}
				if len(keep) == 0 || en.ready < next {
					next = en.ready
				}
				keep = append(keep, en)
			}
			cq.ready = keep
			if len(keep) > 0 {
				k.At(next+cqCoalesce, postFn[idx])
			} else {
				cq.posting = false
			}
			st.fold(uint64(len(keep)))
		}
	}
	// complete handles one command arrival on controller idx. Commands
	// reach controller idx in order id = idx, idx+2, idx+4, ...
	completeFn := make([]func(), len(nvm))
	for i := range nvm {
		idx := i
		st := state[2+idx]
		k := nvm[idx].Kernel()
		cq := &cqs[idx]
		st.seq = uint64(idx)
		completeFn[idx] = func() {
			id := st.seq
			st.seq += 2
			st.cur = id
			for j := sim.Time(1); j <= 4; j++ {
				k.AtSilent(k.Now()+80*j, nvmeTick[idx])
			}
			ready := k.Now() + nvmeService
			k.AtSilent(ready, nvmeMature[idx])
			cq.ready = append(cq.ready, cqEntry{ready: ready, id: id})
			if !cq.posting {
				cq.posting = true
				k.At(ready+cqCoalesce, postFn[idx])
			}
		}
	}
	// PCIe domain: DMA-shaped local work, then forward to a controller.
	// Only the forwarding event can send, so the folds stay silent.
	pk := pci.Kernel()
	pciTick := func() { pciSt.fold(pciSt.cur) }
	forward := func() {
		id := pciSt.cur
		pciSt.fold(id)
		toNVMe[int(id%2)].After(150*sim.Nanosecond, completeFn[int(id%2)])
	}
	ingest := func() {
		id := pciSt.seq
		pciSt.seq++
		pciSt.cur = id
		pciSt.fold(id)
		pk.AtSilent(pk.Now()+100, pciTick)
		pk.At(pk.Now()+200, forward)
	}
	// Ethernet domain: frame arrivals every 720 ns (9000 B at 12.5 GB/s),
	// each with silent MAC/FIFO-shaped local events and a cross into the
	// fabric.
	ek := eth.Kernel()
	ethTick := func() { ethSt.fold(ethSt.cur) }
	var arrival func()
	var frame uint64
	arrival = func() {
		id := frame
		frame++
		ethSt.cur = id
		ethSt.fold(id)
		ek.AtSilent(ek.Now()+120, ethTick)
		ek.AtSilent(ek.Now()+240, ethTick)
		toPCI.After(500*sim.Nanosecond, ingest)
		if int(frame) < frames {
			ek.At(ek.Now()+720, arrival)
		}
	}
	ek.At(0, arrival)

	start := time.Now()
	s.Run(0)
	elapsed := time.Since(start)

	digest = 14695981039346656037
	for _, st := range state {
		digest ^= st.h
		digest *= 1099511628211
		digest ^= st.n
		digest *= 1099511628211
	}
	eff := workers
	if g := runtime.GOMAXPROCS(0); eff > g {
		eff = g
	}
	if eff > len(plan.Domains) {
		eff = len(plan.Domains)
	}
	sync := s.SyncStats()
	return digest, KernelPoint{
		Workers:            workers,
		EffectiveWorkers:   eff,
		Seconds:            elapsed.Seconds(),
		Events:             s.EventsExecuted(),
		EventsPerSec:       float64(s.EventsExecuted()) / elapsed.Seconds(),
		CrossEvents:        s.CrossEvents(),
		Rounds:             sync.Rounds,
		EventsPerRound:     sync.EventsPerRound,
		ElidedDomainRounds: sync.ElidedDomainRounds,
		UnboundedWindows:   sync.UnboundedWindows,
		WidestWindowNs:     int64(sync.WidestWindow),
		NarrowestWindowNs:  int64(sync.NarrowestWindow),
		Digest:             fmt.Sprintf("%016x", digest),
	}
}

// KernelSweep measures the sharded kernel at each worker count (default
// 1, 2, 4) over the DomainPlan chain rig, checking digest identity across
// counts. frames <= 0 selects 20000 arrivals (~360k events).
func KernelSweep(workerCounts []int, frames int) KernelReport {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4}
	}
	if frames <= 0 {
		frames = 20000
	}
	plan := streamer.DomainPlan(ethernet.DefaultConfig(),
		nvme.DefaultConfig("nvme0", 0), nvme.DefaultConfig("nvme1", 0))
	r := KernelReport{
		CPUs:           runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Domains:        plan.Domains,
		MinLookaheadNs: int64(plan.MinLookahead()),
		Deterministic:  true,
	}
	kernelChainRun(1, frames/10+1) // warm-up: page in code, prime pools

	var baseDigest uint64
	var baseEvents uint64
	var baseRate float64
	for i, w := range workerCounts {
		digest, p := kernelChainRun(w, frames)
		if i == 0 {
			baseDigest, baseEvents, baseRate = digest, p.Events, p.EventsPerSec
		} else if digest != baseDigest || p.Events != baseEvents {
			r.Deterministic = false
		}
		if baseRate > 0 {
			p.Speedup = p.EventsPerSec / baseRate
		}
		if w > r.GOMAXPROCS {
			r.CoreBound = true
		}
		r.Points = append(r.Points, p)
	}
	if r.CoreBound {
		r.Note = fmt.Sprintf("core-bound: GOMAXPROCS=%d limits concurrency below the requested worker counts; flat speedup here reflects the machine, not the scheduler",
			r.GOMAXPROCS)
	}
	return r
}

// RenderKernelSweep formats the report as a table for the CLI.
func RenderKernelSweep(r KernelReport) Table {
	t := Table{
		Title:   "Sharded kernel sweep (conservative-parallel DES)",
		Columns: []string{"effective", "events", "cross", "rounds", "ev/round", "elided", "widest", "Mev/s", "speedup", "digest"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("workers=%d", p.Workers),
			Cells: []string{
				fmt.Sprintf("%d", p.EffectiveWorkers),
				fmt.Sprintf("%d", p.Events),
				fmt.Sprintf("%d", p.CrossEvents),
				fmt.Sprintf("%d", p.Rounds),
				fmt.Sprintf("%.1f", p.EventsPerRound),
				fmt.Sprintf("%d", p.ElidedDomainRounds),
				sim.Time(p.WidestWindowNs).String(),
				fmt.Sprintf("%.2f", p.EventsPerSec/1e6),
				fmt.Sprintf("%.2fx", p.Speedup),
				p.Digest,
			},
		})
	}
	if !r.Deterministic {
		t.Notes = append(t.Notes, "DIGEST MISMATCH: worker counts diverged — determinism violation")
	}
	if r.Note != "" {
		t.Notes = append(t.Notes, r.Note)
	}
	return t
}

package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"snacc/internal/casestudy"
	"snacc/internal/cluster"
	"snacc/internal/fpga"
	"snacc/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// checkGolden compares got against testdata/<name>.golden; -update rewrites.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run TestRenderGolden -update ./internal/bench): %v", err)
	}
	if got != string(want) {
		t.Errorf("rendered output diverged from %s\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
	}
}

// TestRenderGolden pins the exact rendered text of every table renderer
// against synthetic rows. The fixtures are hand-picked to hit the formatting
// branches (missing cells, unit scaling, the "-" placeholders), so renderer
// regressions show up as a readable text diff instead of a downstream
// determinism failure.
func TestRenderGolden(t *testing.T) {
	imgLat := &sim.Histogram{}
	for _, s := range []sim.Time{100 * sim.Microsecond, 200 * sim.Microsecond, 600 * sim.Microsecond} {
		imgLat.Add(s)
	}
	caseRows := []casestudy.Result{
		{Variant: "URAM", Images: 16, Bytes: 3 << 30, Elapsed: sim.Time(600 * sim.Millisecond),
			PCIe: map[string]int64{"card": 3 << 30, "ssd": 3 << 30}, PCIeTotal: 6 << 30,
			ImageLatency: imgLat, EthernetPauses: 2},
		{Variant: "SPDK", Images: 16, Bytes: 3 << 30, Elapsed: sim.Time(500 * sim.Millisecond),
			PCIe: map[string]int64{"host": 3 << 30, "ssd": 3 << 30}, PCIeTotal: 9 << 30,
			BusyPolling: true},
	}
	uramRes := fpga.Resources{LUT: 12000, FF: 24000, BRAM: 32.5, URAMBlocks: 64}
	dramRes := fpga.Resources{LUT: 15000, FF: 30000, BRAM: 40, DRAMBytes: 64 * sim.MiB}
	hostRes := fpga.Resources{LUT: 9000, FF: 18000, BRAM: 24, HostDRAMBytes: 4 * sim.MiB}
	dev := fpga.AlveoU280()

	cases := []struct {
		name string
		out  string
	}{
		{"fig4a", RenderFig4a([]Fig4aRow{
			{Label: "URAM", SeqReadGB: 6.91, SeqWriteGB: 5.45, WriteHiGB: 5.6, WriteLoGB: 5.32},
			{Label: "SPDK", SeqReadGB: 6.88, SeqWriteGB: 6.07, WriteHiGB: 6.24, WriteLoGB: 5.9},
		}).String()},
		{"fig4b", RenderFig4b([]Fig4bRow{
			{Label: "URAM", RandReadGB: 1.62, RandWriteGB: 4.55},
			{Label: "SPDK", RandReadGB: 4.5, RandWriteGB: 5.25},
		}).String()},
		{"fig4c", RenderFig4c([]Fig4cRow{
			{Label: "URAM", ReadLatency: 34 * sim.Microsecond, ReadP99: 41 * sim.Microsecond,
				WriteLatency: 8200, WriteP99: 8900},
		}).String()},
		{"table1", RenderTable1([]Table1Row{
			{Label: "URAM", Resources: uramRes, Util: uramRes.Utilization(dev)},
			{Label: "On-board DRAM", Resources: dramRes, Util: dramRes.Utilization(dev)},
			{Label: "Host DRAM", Resources: hostRes, Util: hostRes.Utilization(dev)},
		}).String()},
		{"fig6", RenderFig6(caseRows).String()},
		{"fig7", RenderFig7(caseRows).String()},
		{"fig6_striped", RenderFig6Striped(caseRows).String()},
		{"ablation_qd", RenderAblationQD([]AblationQDRow{
			{QueueDepth: 4, SPDKGB: 2.1, SNAccGB: 1.6},
			{QueueDepth: 64, SPDKGB: 4.5, SNAccGB: 1.62},
		}).String()},
		{"ablation_ooo", RenderAblationOOO([]AblationOOORow{
			{Label: "in-order (paper)", RandReadGB: 1.6, SeqReadGB: 6.9},
			{Label: "out-of-order (§7)", RandReadGB: 4.4, SeqReadGB: 6.9},
		}).String()},
		{"ablation_multissd", RenderAblationMultiSSD([]AblationMultiSSDRow{
			{SSDs: 1, SeqWriteGB: 5.4, PerSSDWrite: 5.4},
			{SSDs: 4, SeqWriteGB: 12.1, PerSSDWrite: 3.03},
		}).String()},
		{"ablation_gen5", RenderAblationGen5([]AblationGen5Row{
			{Label: "Gen4 x4 (paper)", SeqReadGB: 6.9, SeqWriteGB: 5.45},
			{Label: "Gen5 x4", SeqReadGB: 12.3, SeqWriteGB: 11.1},
		}).String()},
		{"ablation_dram", RenderAblationDRAM([]AblationDRAMRow{
			{Label: "single controller (paper)", SeqWriteGB: 4.7},
			{Label: "dual controller / HBM (§7)", SeqWriteGB: 5.5},
		}).String()},
		{"ablation_hbm", RenderAblationHBM([]AblationHBMRow{
			{Label: "DDR4, single controller (paper)", SeqWriteGB: 4.7, SeqReadGB: 6.8},
			{Label: "HBM (§7)", SeqWriteGB: 5.6, SeqReadGB: 6.9},
		}).String()},
		{"ablation_mtu", RenderAblationMTU([]AblationMTURow{
			{MTU: 1500, CeilingGB: 12.19, CaseGB: 11.8, FPS: 1290},
			{MTU: 9000, CeilingGB: 12.45, CaseGB: 12.2, FPS: 1345},
		}).String()},
		{"ablation_qp", RenderAblationQP([]AblationQPRow{
			{Streamers: 1, SeqWriteGB: 5.4, RandReadGB: 1.6},
			{Streamers: 4, SeqWriteGB: 5.4, RandReadGB: 6.1},
		}).String()},
		{"sweep", RenderSweep("URAM", []SweepRow{
			{TransferBytes: 64 * sim.MiB, SeqWriteGB: 5.41, SeqReadGB: 6.9},
			{TransferBytes: 256 * sim.MiB, SeqWriteGB: 5.45, SeqReadGB: 6.91},
		}).String()},
		{"faultsweep", RenderFaultSweep([]FaultSweepRow{
			{RatePct: 0, GoodputGB: 6.9, Amplification: 1},
			{RatePct: 5, GoodputGB: 6.2, Injected: 13, Errors: 13, Retries: 12,
				Timeouts: 1, Aborts: 1, Amplification: 1.05},
		}).String()},
		{"queuesweep", RenderQueueSweep([]QueueSweepRow{
			{Queues: 1, DoorbellBatch: 1, KIOPS: 398.4, P99Us: 157.5, DoorbellRatio: 2, Speedup: 1},
			{Queues: 4, DoorbellBatch: 8, KIOPS: 700.0, P99Us: 144.9, DoorbellRatio: 0.315, Speedup: 1.76},
		}).String()},
		{"crashsweep", RenderCrashSweep([]CrashSweepRow{
			{CrashEveryN: 0, GoodputGB: 6.9},
			{CrashEveryN: 16, GoodputGB: 4.8, Crashes: 4, Trips: 4, Resets: 4,
				Replayed: 210, MTTRUs: 1250.4},
		}).String()},
		{"tenantsweep", RenderTenantSweep([]TenantSweepRow{
			{Sched: "solo", Tenant: "victim", Reads: 400, KIOPS: 16.8, P50Us: 34.8, P99Us: 39.5, VsSolo: 1},
			{Sched: "drr", Tenant: "victim", Reads: 400, KIOPS: 8.6, P50Us: 34.8, P99Us: 39.9, VsSolo: 1.01},
			{Sched: "drr", Tenant: "noisy", Reads: 2400, KIOPS: 105.0, P50Us: 368.6, P99Us: 450.6},
			{Sched: "fifo", Tenant: "victim", Reads: 400, KIOPS: 9.2, P50Us: 34.8, P99Us: 442.4, VsSolo: 11.19},
			{Sched: "fifo", Tenant: "noisy", Reads: 2400, KIOPS: 105.0, P50Us: 368.6, P99Us: 442.4},
		}).String()},
		{"striped_degraded", RenderStripedDegraded(StripedDegradedRow{
			Members: 2, DeadMember: 1, WriteGB: 4.1, DegradedWrites: 7,
			DegradedReads: 8, SurvivorBytes: 8 * sim.MiB,
		}).String()},
		{"clustersweep", RenderClusterSweep([]ClusterSweepRow{
			{Nodes: 3, Replication: 2, Quorum: 1, WriteGB: 4.8, NodeDeaths: 1,
				Failovers: 3, ReRepMiB: 1.25, DegradedUs: 2140.5, Timeouts: 2},
			{Nodes: 4, Replication: 3, Quorum: 3, WriteGB: 3.9, NodeDeaths: 1,
				Failovers: 5, ReRepMiB: 2.5, DegradedUs: 3377.1, Timeouts: 4,
				FailedWr: 2, UnderRep: 0},
		}).String()},
		{"clusterrecovery", RenderClusterRecovery(cluster.Stats{
			NodeDeaths: 1, Rejoins: 1, Probes: 6, RequestTimeouts: 3,
			LinkFramesDropped: 42, ReReplicatedBytes: 2 * sim.MiB,
		}).String()},
		{"latency", RenderLatencyBreakdown([]LatencyRow{
			{Variant: "URAM", Op: "write", Stage: "fetched", Count: 256,
				P50: 3484, P90: 3600, P99: 3700, P999: 3701, Max: 3702},
			{Variant: "URAM", Op: "read", Stage: "cqe", Count: 256,
				P50: 500 * sim.Microsecond, P90: 700 * sim.Microsecond,
				P99: 900 * sim.Microsecond, P999: sim.Millisecond, Max: 2 * sim.Millisecond},
		}).String()},
		{"kernelsweep", RenderKernelSweep(KernelReport{
			Deterministic: true,
			Points: []KernelPoint{
				{Workers: 1, EffectiveWorkers: 1, Events: 263334, CrossEvents: 60003,
					Rounds: 13337, EventsPerRound: 19.7, ElidedDomainRounds: 21804,
					UnboundedWindows: 3, WidestWindowNs: int64(8 * sim.Microsecond),
					NarrowestWindowNs: 150, EventsPerSec: 7.24e6, Speedup: 1,
					Digest: "0123456789abcdef"},
				{Workers: 4, EffectiveWorkers: 1, Events: 263334, CrossEvents: 60003,
					Rounds: 13337, EventsPerRound: 19.7, ElidedDomainRounds: 21804,
					UnboundedWindows: 3, WidestWindowNs: int64(8 * sim.Microsecond),
					NarrowestWindowNs: 150, EventsPerSec: 7.01e6, Speedup: 0.97,
					Digest: "0123456789abcdef"},
			},
		}).String()},
		{"timeline", RenderTimeline("URAM", []TimelinePoint{
			{At: 2 * sim.Millisecond, GBps: 7.9},
			{At: 4 * sim.Millisecond, GBps: 5.6},
			{At: 6 * sim.Millisecond, GBps: 5.3},
			{At: 8 * sim.Millisecond, GBps: -1},  // clamps to zero bars
			{At: 10 * sim.Millisecond, GBps: 99}, // clamps to full scale
		}, 8)},
	}
	// The non-text encodings ride on one representative fixture each.
	cases = append(cases,
		struct {
			name string
			out  string
		}{"fig4a_csv", RenderFig4a([]Fig4aRow{
			{Label: "URAM", SeqReadGB: 6.91, SeqWriteGB: 5.45, WriteHiGB: 5.6, WriteLoGB: 5.32},
		}).CSV()},
		struct {
			name string
			out  string
		}{"fig4a_json", RenderFig4a([]Fig4aRow{
			{Label: "URAM", SeqReadGB: 6.91, SeqWriteGB: 5.45, WriteHiGB: 5.6, WriteLoGB: 5.32},
		}).JSON() + "\n"},
	)

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkGolden(t, c.name, c.out) })
	}
}

package bench

import (
	"snacc/internal/casestudy"
	"snacc/internal/fpga"
	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/spdk"
	"snacc/internal/streamer"
)

// Fig4aRow is one bar group of Figure 4a (sequential bandwidth, GB/s).
type Fig4aRow struct {
	Label      string
	SeqReadGB  float64
	SeqWriteGB float64
	// WriteHi/WriteLo expose the alternating write band the paper plots
	// as stacked bar tops (§5.2).
	WriteHiGB, WriteLoGB float64
}

// fig4aWarmup fills the SSD's write buffer before measuring, so the first
// transfer is not inflated by the initially empty staging buffer.
const fig4aWarmup = 64 * sim.MiB

// Fig4a measures sequential read/write bandwidth of the three Streamer
// variants and the SPDK reference. totalBytes per transfer (the paper uses
// 1 GB). The SSD's banding epoch is aligned to totalBytes so consecutive
// transfers land in alternating epochs, exposing the paper's bimodal write
// bandwidth at any scale.
func Fig4a(totalBytes int64) []Fig4aRow {
	epoch := func(c *nvme.Config) { c.NAND.EpochBytes = totalBytes }
	variants := Variants()
	return mapRows(len(variants)+1, func(i int) Fig4aRow {
		if i == len(variants) {
			k, _, drvC := buildSPDK(64, epoch)
			var rd float64
			var writes []float64
			k.Spawn("bench", func(p *sim.Proc) {
				d := awaitDriver(p, drvC)
				rd = spdkSeq(p, d, nvme.OpRead, totalBytes)
				spdkSeq(p, d, nvme.OpWrite, fig4aWarmup)
				for i := 0; i < 2; i++ {
					writes = append(writes, spdkSeq(p, d, nvme.OpWrite, totalBytes))
				}
			})
			k.Run(0)
			return fig4aRow("SPDK", rd, writes)
		}
		rig := buildSNAcc(variants[i], nil, epoch)
		var rd float64
		var writes []float64
		rig.measure(func(p *sim.Proc) {
			rd = streamer.SeqRead(p, rig.c, 0, totalBytes).GBps()
			streamer.SeqWrite(p, rig.c, 0, fig4aWarmup)
			for i := 0; i < 2; i++ {
				writes = append(writes, streamer.SeqWrite(p, rig.c, 0, totalBytes).GBps())
			}
		})
		return fig4aRow(variants[i].String(), rd, writes)
	})
}

func fig4aRow(label string, rd float64, writes []float64) Fig4aRow {
	hi, lo := writes[0], writes[0]
	var sum float64
	for _, w := range writes {
		if w > hi {
			hi = w
		}
		if w < lo {
			lo = w
		}
		sum += w
	}
	return Fig4aRow{
		Label:      label,
		SeqReadGB:  rd,
		SeqWriteGB: sum / float64(len(writes)),
		WriteHiGB:  hi,
		WriteLoGB:  lo,
	}
}

// Fig4bRow is one bar group of Figure 4b (random 4 KiB bandwidth, GB/s).
type Fig4bRow struct {
	Label       string
	RandReadGB  float64
	RandWriteGB float64
}

// Fig4b measures random 4 KiB read/write bandwidth at queue depth 64.
func Fig4b(totalBytes int64) []Fig4bRow {
	const span = 64 * sim.GiB
	variants := Variants()
	return mapRows(len(variants)+1, func(i int) Fig4bRow {
		if i == len(variants) {
			k, _, drvC := buildSPDK(64, nil)
			var rr, rw float64
			k.Spawn("bench", func(p *sim.Proc) {
				d := awaitDriver(p, drvC)
				rr = spdkRand(p, d, nvme.OpRead, totalBytes)
				rw = spdkRand(p, d, nvme.OpWrite, totalBytes)
			})
			k.Run(0)
			return Fig4bRow{Label: "SPDK", RandReadGB: rr, RandWriteGB: rw}
		}
		rig := buildSNAcc(variants[i], nil, nil)
		var rr, rw float64
		rig.measure(func(p *sim.Proc) {
			rr = streamer.RandRead(p, rig.c, span, totalBytes, 4096, 41).GBps()
			rw = streamer.RandWrite(p, rig.c, span, totalBytes, 4096, 42).GBps()
		})
		return Fig4bRow{Label: variants[i].String(), RandReadGB: rr, RandWriteGB: rw}
	})
}

// Fig4cRow is one bar group of Figure 4c (4 KiB access latency). The paper
// plots means; the P99 columns expose the tail the in-order design must
// absorb.
type Fig4cRow struct {
	Label        string
	ReadLatency  sim.Time
	ReadP99      sim.Time
	WriteLatency sim.Time
	WriteP99     sim.Time
}

// Fig4c measures queue-depth-1 random 4 KiB latency.
func Fig4c(samples int) []Fig4cRow {
	const span = 64 * sim.GiB
	variants := Variants()
	return mapRows(len(variants)+1, func(i int) Fig4cRow {
		var label string
		var rd, wr *sim.Histogram
		if i == len(variants) {
			label = "SPDK"
			k, _, drvC := buildSPDK(64, nil)
			k.Spawn("bench", func(p *sim.Proc) {
				d := awaitDriver(p, drvC)
				rd = spdk.Latency(p, d, nvme.OpRead, 4096, samples, 31)
				wr = spdk.Latency(p, d, nvme.OpWrite, 4096, samples, 31)
			})
			k.Run(0)
		} else {
			label = variants[i].String()
			rig := buildSNAcc(variants[i], nil, nil)
			rig.measure(func(p *sim.Proc) {
				rd = streamer.LatencyRead(p, rig.c, span, 4096, samples, 5)
				wr = streamer.LatencyWrite(p, rig.c, span, 4096, samples, 6)
			})
		}
		return Fig4cRow{
			Label:       label,
			ReadLatency: rd.Mean(), ReadP99: rd.Percentile(99),
			WriteLatency: wr.Mean(), WriteP99: wr.Percentile(99),
		}
	})
}

// Table1Row is one column of the paper's Table 1.
type Table1Row struct {
	Label     string
	Resources fpga.Resources
	Util      fpga.Utilization
}

// Table1 estimates the Streamer variants' FPGA resource utilization.
func Table1() []Table1Row {
	dev := fpga.AlveoU280()
	var rows []Table1Row
	for _, v := range Variants() {
		cfg := streamer.DefaultConfig("t", 0, v)
		r := fpga.EstimateStreamer(cfg)
		rows = append(rows, Table1Row{Label: v.String(), Resources: r, Util: r.Utilization(dev)})
	}
	return rows
}

// Fig6 runs the case study for all five implementations.
func Fig6(images int) []casestudy.Result {
	cfg := casestudy.DefaultConfig()
	if images > 0 {
		cfg.Images = images
		cfg.Source.Count = images
	}
	cfg.KernelWorkers = kernelWorkers
	variants := Variants()
	return mapRows(len(variants)+2, func(i int) casestudy.Result {
		switch {
		case i < len(variants):
			return casestudy.RunSNAcc(variants[i], cfg)
		case i == len(variants):
			return casestudy.RunSPDK(cfg)
		default:
			return casestudy.RunGPU(cfg)
		}
	})
}

// Fig7 reports the PCIe traffic of each case-study configuration. It reuses
// the Fig6 runs (traffic accounting is collected on the same pass).
func Fig7(images int) []casestudy.Result { return Fig6(images) }

// ---- SPDK measurement helpers (thin wrappers over internal/spdk) ----

func spdkSeq(p *sim.Proc, d *spdk.Driver, op uint8, total int64) float64 {
	return spdk.Sequential(p, d, op, total, sim.MiB, 0).GBps()
}

func spdkRand(p *sim.Proc, d *spdk.Driver, op uint8, total int64) float64 {
	return spdk.RandomIO(p, d, op, total, 4096, 97).GBps()
}

// awaitDriver waits (in simulated time) for the attach process to publish
// the driver handle. A raw Go channel receive would block the cooperative
// scheduler.
func awaitDriver(p *sim.Proc, c chan *spdk.Driver) *spdk.Driver {
	for len(c) == 0 {
		p.Sleep(10 * sim.Microsecond)
	}
	return <-c
}

// SweepRow is one point of the transfer-size convergence sweep.
type SweepRow struct {
	TransferBytes int64
	SeqWriteGB    float64
	SeqReadGB     float64
}

// SweepTransferSize validates the workload-scaling claim in EXPERIMENTS.md:
// bandwidth as a function of transfer volume, demonstrating that the
// reduced default sizes sit in the same steady state as the paper's 1 GB
// transfers.
func SweepTransferSize(v streamer.Variant, sizes []int64) []SweepRow {
	return mapRows(len(sizes), func(i int) SweepRow {
		size := sizes[i]
		rig := buildSNAcc(v, nil, nil)
		var wr, rd float64
		rig.measure(func(p *sim.Proc) {
			wr = streamer.SeqWrite(p, rig.c, 0, size).GBps()
			rd = streamer.SeqRead(p, rig.c, 0, size).GBps()
		})
		return SweepRow{TransferBytes: size, SeqWriteGB: wr, SeqReadGB: rd}
	})
}

// Fig6Striped runs the case study with the §7 multi-SSD extension: the
// paper closes on "our single NVMe cannot keep-up with the 100G network
// rate"; striping the database across SSDs resolves it, with three drives
// saturating the link itself.
func Fig6Striped(counts []int, images int) []casestudy.Result {
	cfg := casestudy.DefaultConfig()
	if images > 0 {
		cfg.Images = images
		cfg.Source.Count = images
	}
	return mapRows(len(counts), func(i int) casestudy.Result {
		return casestudy.RunSNAccStriped(counts[i], cfg)
	})
}

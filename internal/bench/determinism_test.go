package bench

import (
	"runtime"
	"strings"
	"testing"

	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// renderSample regenerates a cross-section of the experiment suite — figure
// runners, ablations with sub-rigs, and a case-study pass — and returns the
// rendered tables as one string, so byte-level comparison covers everything
// the CLI would print.
func renderSample() string {
	var b strings.Builder
	b.WriteString(RenderFig4a(Fig4a(64 * sim.MiB)).String())
	b.WriteString(RenderFig4b(Fig4b(16 * sim.MiB)).String())
	b.WriteString(RenderFig4c(Fig4c(60)).String())
	b.WriteString(RenderAblationQD(AblationQD([]int{4, 64}, 8*sim.MiB)).String())
	b.WriteString(RenderAblationGen5(AblationGen5(48 * sim.MiB)).String())
	b.WriteString(RenderFig6(Fig6(48)).String())
	b.WriteString(RenderSweep("URAM", SweepTransferSize(streamer.URAM, []int64{32 * sim.MiB, 64 * sim.MiB})).String())
	b.WriteString(RenderFaultSweep(FaultSweep([]float64{0, 2}, 16*sim.MiB)).String())
	b.WriteString(RenderCrashSweep(CrashSweep([]int64{0, 6}, 16*sim.MiB)).String())
	b.WriteString(RenderQueueSweep(QueueSweep([]int{1, 4}, []int{1, 8}, 8*sim.MiB)).String())
	b.WriteString(RenderTenantSweep(TenantSweep(100, 600)).String())
	b.WriteString(RenderServeSweep(ServeSweep([]int{10_000, 100_000}, 600, nil)).String())
	b.WriteString(RenderLatencyBreakdown(LatencyBreakdown(8 * sim.MiB)).String())
	return b.String()
}

// TestParallelDeterminism pins the engine's core guarantee: the rendered
// tables are byte-identical whether the rigs run serially, on four workers,
// or on one worker per CPU. (Also exercised under -race by the Makefile's
// race target.)
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the sample suite three times")
	}
	defer SetParallelism(1)

	SetParallelism(1)
	serial := renderSample()

	for _, j := range []int{4, runtime.NumCPU()} {
		SetParallelism(j)
		if got := renderSample(); got != serial {
			t.Fatalf("-j %d output diverged from serial:\n--- serial ---\n%s\n--- j=%d ---\n%s",
				j, serial, j, got)
		}
	}
}

// TestKernelWorkersDeterminism extends the guarantee to the second axis:
// domain-level kernel sharding inside each rig must also leave the rendered
// tables byte-identical, alone and composed with rig-level parallelism.
func TestKernelWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the case-study figures three times")
	}
	defer SetKernelWorkers(1)
	defer SetParallelism(1)

	sample := func() string {
		return RenderFig6(Fig6(48)).String() +
			RenderTenantSweep(TenantSweep(60, 360)).String() +
			RenderServeSweep(ServeSweep([]int{10_000}, 400, nil)).String()
	}
	SetParallelism(1)
	SetKernelWorkers(1)
	serial := sample()

	for _, w := range []int{2, 4} {
		SetKernelWorkers(w)
		SetParallelism(1)
		if got := sample(); got != serial {
			t.Fatalf("kernelworkers=%d output diverged from serial:\n--- serial ---\n%s\n--- w=%d ---\n%s",
				w, serial, w, got)
		}
		SetParallelism(4)
		if got := sample(); got != serial {
			t.Fatalf("kernelworkers=%d -j 4 output diverged from serial:\n--- serial ---\n%s\n--- w=%d ---\n%s",
				w, serial, w, got)
		}
	}
}

func TestSetParallelism(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(4)
	if got := Parallelism(); got != 4 {
		t.Fatalf("Parallelism() = %d, want 4", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Parallelism() = %d, want GOMAXPROCS", got)
	}
}

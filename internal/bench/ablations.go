package bench

import (
	"fmt"

	"snacc/internal/casestudy"
	"snacc/internal/ethernet"
	"snacc/internal/memmodel"
	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

// AblationQDRow compares random-read bandwidth across submission queue
// depths — §5.2 observes that SPDK keeps scaling with queue size while the
// Streamer's in-order retirement stays flat, and §7 proposes increasing the
// queue as one mitigation.
type AblationQDRow struct {
	QueueDepth int
	SPDKGB     float64
	SNAccGB    float64
}

// AblationQD sweeps the queue depth for 4 KiB random reads.
func AblationQD(depths []int, totalBytes int64) []AblationQDRow {
	const span = 64 * sim.GiB
	return mapRows(len(depths), func(i int) AblationQDRow {
		qd := depths[i]
		k, _, drvC := buildSPDK(qd, nil)
		var spdkGB float64
		k.Spawn("bench", func(p *sim.Proc) {
			d := awaitDriver(p, drvC)
			spdkGB = spdkRand(p, d, nvme.OpRead, totalBytes)
		})
		k.Run(0)

		rig := buildSNAcc(streamer.URAM, func(c *streamer.Config) { c.QueueDepth = qd }, nil)
		var snGB float64
		rig.measure(func(p *sim.Proc) {
			snGB = streamer.RandRead(p, rig.c, span, totalBytes, 4096, 13).GBps()
		})
		return AblationQDRow{QueueDepth: qd, SPDKGB: spdkGB, SNAccGB: snGB}
	})
}

// AblationOOORow compares in-order vs out-of-order retirement (§7).
type AblationOOORow struct {
	Label      string
	RandReadGB float64
	SeqReadGB  float64
}

// AblationOOO measures the §7 out-of-order retirement extension against the
// paper's in-order baseline on the on-board DRAM variant.
func AblationOOO(totalBytes int64) []AblationOOORow {
	const span = 64 * sim.GiB
	return mapRows(2, func(i int) AblationOOORow {
		ooo := i == 1
		label := "in-order (paper)"
		if ooo {
			label = "out-of-order (§7)"
		}
		rig := buildSNAcc(streamer.OnboardDRAM, func(c *streamer.Config) {
			c.OutOfOrder = ooo
			if ooo {
				// The slot pool sizes by MaxCmdBytes; random 4 KiB reads
				// need many small slots.
				c.MaxCmdBytes = 64 * sim.KiB
			}
		}, nil)
		var rr, sr float64
		rig.measure(func(p *sim.Proc) {
			rr = streamer.RandRead(p, rig.c, span, totalBytes, 4096, 13).GBps()
			sr = streamer.SeqRead(p, rig.c, 0, totalBytes).GBps()
		})
		return AblationOOORow{Label: label, RandReadGB: rr, SeqReadGB: sr}
	})
}

// AblationMultiSSDRow is the §7 multi-SSD scaling experiment.
type AblationMultiSSDRow struct {
	SSDs        int
	SeqWriteGB  float64
	PerSSDWrite float64
}

// AblationMultiSSD attaches n Streamer+SSD pairs to one card and measures
// aggregate sequential write bandwidth — §7: "Our design can easily be
// extended to access multiple SSDs concurrently ... separate submission and
// completion queues for each SSD".
func AblationMultiSSD(counts []int, perSSDBytes int64) []AblationMultiSSDRow {
	return mapRows(len(counts), func(ci int) AblationMultiSSDRow {
		n := counts[ci]
		k := sim.NewKernel()
		pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
		var clients []*streamer.Client
		var drvs []*tapasco.Driver
		var sts []*streamer.Streamer
		for i := 0; i < n; i++ {
			bar := uint64(ssdBAR) + uint64(i)*0x1000_0000
			name := fmt.Sprintf("ssd%d", i)
			nvme.New(k, pl.Fabric, nvme.DefaultConfig(name, bar))
			// URAM windows are cheap; one per SSD keeps queues separate.
			st := pl.AddStreamer(streamer.DefaultConfig(fmt.Sprintf("snacc%d", i), 0, streamer.URAM))
			sts = append(sts, st)
			clients = append(clients, streamer.NewClient(st))
			drvs = append(drvs, tapasco.NewDriver(pl, name, bar))
		}
		var start, end sim.Time
		done := 0
		k.Spawn("main", func(p *sim.Proc) {
			for i := range drvs {
				if err := drvs[i].InitController(p); err != nil {
					panic(err)
				}
				if err := drvs[i].AttachStreamer(p, sts[i], 1); err != nil {
					panic(err)
				}
			}
			start = p.Now()
			fin := sim.NewChan[struct{}](k, n)
			for i := 0; i < n; i++ {
				c := clients[i]
				k.Spawn(fmt.Sprintf("w%d", i), func(wp *sim.Proc) {
					streamer.SeqWrite(wp, c, 0, perSSDBytes)
					fin.TryPut(struct{}{})
				})
			}
			for done < n {
				fin.Get(p)
				done++
			}
			end = p.Now()
		})
		k.Run(0)
		agg := float64(perSSDBytes*int64(n)) / (end - start).Seconds() / 1e9
		return AblationMultiSSDRow{SSDs: n, SeqWriteGB: agg, PerSSDWrite: agg / float64(n)}
	})
}

// AblationGen5Row is the §7 PCIe 5.0 projection.
type AblationGen5Row struct {
	Label      string
	SeqReadGB  float64
	SeqWriteGB float64
}

// AblationGen5 swaps in a Gen5 x4 SSD profile ("Current NVMe SSDs support
// PCIe Gen5 x4, doubling the bandwidth") and re-measures the URAM variant.
// The Streamer needs no modification, exactly as §7 claims.
func AblationGen5(totalBytes int64) []AblationGen5Row {
	gen5 := func(c *nvme.Config) {
		c.Link.Gen = 5
		c.NAND.SeqReadBW = sim.GBps(12.4)
		c.NAND.ProgramBWFast = sim.GBps(11.8)
		c.NAND.ProgramBWSlow = sim.GBps(11.2)
		// Faster links also sharpened P2P handling on newer platforms;
		// give the data-fetch engine a deeper window.
		c.Link.ReadCredits = 8
	}
	muts := []func(*nvme.Config){nil, gen5}
	return mapRows(len(muts), func(i int) AblationGen5Row {
		mut := muts[i]
		label := "Gen4 x4 (990 PRO)"
		if mut != nil {
			label = "Gen5 x4 (projected)"
		}
		rig := buildSNAcc(streamer.URAM, nil, mut)
		var rd, wr float64
		rig.measure(func(p *sim.Proc) {
			rd = streamer.SeqRead(p, rig.c, 0, totalBytes).GBps()
			wr = streamer.SeqWrite(p, rig.c, 0, totalBytes).GBps()
		})
		return AblationGen5Row{Label: label, SeqReadGB: rd, SeqWriteGB: wr}
	})
}

// AblationDRAMRow quantifies the on-board DRAM turnaround penalty.
type AblationDRAMRow struct {
	Label      string
	SeqWriteGB float64
}

// AblationDRAM compares the paper's single DRAM controller against the §5.2
// remedy ("utilizing two DRAM controllers or distinct HBM memory banks"),
// modeled as a controller without read/write turnaround and row-miss
// penalties between the competing streams.
func AblationDRAM(totalBytes int64) []AblationDRAMRow {
	return mapRows(2, func(i int) AblationDRAMRow {
		dual := i == 1
		label := "single controller (paper)"
		if dual {
			label = "dual controller / HBM (§7)"
		}
		k := sim.NewKernel()
		plCfg := tapasco.DefaultU280()
		if dual {
			plCfg.DRAM.Turnaround = 0
			plCfg.DRAM.RowMissPenalty = 0
		}
		pl := tapasco.NewPlatform(k, plCfg)
		nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssd0", ssdBAR))
		st := pl.AddStreamer(streamer.DefaultConfig("snacc0", 0, streamer.OnboardDRAM))
		drv := tapasco.NewDriver(pl, "ssd0", ssdBAR)
		var wr float64
		k.Spawn("main", func(p *sim.Proc) {
			if err := drv.InitController(p); err != nil {
				panic(err)
			}
			if err := drv.AttachStreamer(p, st, 1); err != nil {
				panic(err)
			}
			wr = streamer.SeqWrite(p, streamer.NewClient(st), 0, totalBytes).GBps()
		})
		k.Run(0)
		return AblationDRAMRow{Label: label, SeqWriteGB: wr}
	})
}

// AblationHBMRow compares the staging memory for the on-card variant.
type AblationHBMRow struct {
	Label      string
	SeqWriteGB float64
	SeqReadGB  float64
}

// AblationHBM stages the on-card buffers in the U280's HBM stack instead of
// the single DDR4 controller — §7: "we can leverage HBM and distribute data
// buffers across different HBM controllers to maximize parallelism and
// bandwidth".
func AblationHBM(totalBytes int64) []AblationHBMRow {
	return mapRows(2, func(i int) AblationHBMRow {
		hbm := i == 1
		label := "DDR4, single controller (paper)"
		if hbm {
			label = "HBM2, 32 channels (§7)"
		}
		k := sim.NewKernel()
		pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
		nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssd0", ssdBAR))
		cfg := streamer.DefaultConfig("snacc0", 0, streamer.OnboardDRAM)
		var st *streamer.Streamer
		if hbm {
			// HBM's channel parallelism also shortens the drain path.
			cfg.DrainLatency = 1500 * sim.Nanosecond
			st = pl.AddStreamerHBM(cfg, memmodel.NewHBM(k, memmodel.DefaultHBMConfig()))
		} else {
			st = pl.AddStreamer(cfg)
		}
		drv := tapasco.NewDriver(pl, "ssd0", ssdBAR)
		var wr, rd float64
		k.Spawn("main", func(p *sim.Proc) {
			if err := drv.InitController(p); err != nil {
				panic(err)
			}
			if err := drv.AttachStreamer(p, st, 1); err != nil {
				panic(err)
			}
			c := streamer.NewClient(st)
			wr = streamer.SeqWrite(p, c, 0, totalBytes).GBps()
			rd = streamer.SeqRead(p, c, 0, totalBytes).GBps()
		})
		k.Run(0)
		return AblationHBMRow{Label: label, SeqWriteGB: wr, SeqReadGB: rd}
	})
}

// AblationMTURow compares the network-bound §7 striped configuration across
// Ethernet frame payloads: per-frame overhead (preamble, header, FCS, IFG)
// is fixed, so smaller MTUs lower the 100 G link's payload ceiling — and the
// 3-SSD pipeline, which A7 shows is network-limited, tracks that ceiling.
type AblationMTURow struct {
	MTU int64
	// CeilingGB is the analytic payload ceiling: 12.5 GB/s × MTU/(MTU+38).
	CeilingGB float64
	// CaseGB is the measured striped-3 case-study bandwidth.
	CaseGB float64
	FPS    float64
}

// AblationMTU sweeps the Ethernet MTU for the 3-SSD striped case study.
func AblationMTU(mtus []int64, images int) []AblationMTURow {
	return mapRows(len(mtus), func(i int) AblationMTURow {
		mtu := mtus[i]
		cfg := casestudy.DefaultConfig()
		if images > 0 {
			cfg.Images = images
			cfg.Source.Count = images
		}
		cfg.EthernetMTU = mtu
		res := casestudy.RunSNAccStriped(3, cfg)
		ecfg := ethernet.DefaultConfig()
		ceiling := ecfg.BytesPerSec() * float64(mtu) / float64(mtu+ecfg.FrameOverheadBytes) / 1e9
		return AblationMTURow{MTU: mtu, CeilingGB: ceiling, CaseGB: res.GBps(), FPS: res.FPS()}
	})
}

// AblationQPRow is one point of the queue-pair scaling sweep: n Streamers
// sharing one SSD over n I/O queue pairs.
type AblationQPRow struct {
	Streamers  int
	SeqWriteGB float64
	RandReadGB float64
}

// AblationQP attaches n Streamers to ONE controller (queue pairs 1..n) —
// §7's observation that "each additional NVMe Streamer only requires one
// additional queue pair". Contrast with AblationMultiSSD: sequential writes
// stay at the single-SSD NAND ceiling no matter how many queues feed it,
// while 4 KiB random reads scale with the streamer count because each
// streamer's in-order retirement FSM is a per-queue bottleneck, not a
// device limit.
func AblationQP(counts []int, totalBytes int64) []AblationQPRow {
	const span = 64 * sim.GiB
	return mapRows(len(counts), func(ci int) AblationQPRow {
		n := counts[ci]
		row := AblationQPRow{Streamers: n}
		for _, random := range []bool{false, true} {
			k := sim.NewKernel()
			pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
			nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssd0", ssdBAR))
			var clients []*streamer.Client
			var sts []*streamer.Streamer
			for i := 0; i < n; i++ {
				st := pl.AddStreamer(streamer.DefaultConfig(fmt.Sprintf("snacc%d", i), 0, streamer.URAM))
				sts = append(sts, st)
				clients = append(clients, streamer.NewClient(st))
			}
			drv := tapasco.NewDriver(pl, "ssd0", ssdBAR)
			per := totalBytes / int64(n)
			var start, end sim.Time
			random := random
			k.Spawn("main", func(p *sim.Proc) {
				if err := drv.InitController(p); err != nil {
					panic(err)
				}
				for i := range sts {
					if err := drv.AttachStreamer(p, sts[i], uint16(i+1)); err != nil {
						panic(err)
					}
				}
				start = p.Now()
				fin := sim.NewChan[struct{}](k, n)
				for i := 0; i < n; i++ {
					c := clients[i]
					base := uint64(i) * uint64(span/int64(n))
					k.Spawn(fmt.Sprintf("w%d", i), func(wp *sim.Proc) {
						if random {
							streamer.RandRead(wp, c, span/int64(n), per, 4096, uint64(31+i))
						} else {
							streamer.SeqWrite(wp, c, base, per)
						}
						fin.TryPut(struct{}{})
					})
				}
				for done := 0; done < n; done++ {
					fin.Get(p)
				}
				end = p.Now()
			})
			k.Run(0)
			gb := float64(totalBytes) / (end - start).Seconds() / 1e9
			if random {
				row.RandReadGB = gb
			} else {
				row.SeqWriteGB = gb
			}
		}
		return row
	})
}

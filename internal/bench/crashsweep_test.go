package bench

import (
	"testing"

	"snacc/internal/sim"
)

// TestCrashSweepBaselineRow pins the zero-rate row: no crash rule means a
// cold recovery ladder and an ordinary sequential-read measurement.
func TestCrashSweepBaselineRow(t *testing.T) {
	r := CrashSweep([]int64{0}, 8*sim.MiB)[0]
	if r.Crashes != 0 || r.Trips != 0 || r.Resets != 0 || r.Replayed != 0 || r.Aborts != 0 {
		t.Errorf("baseline row has recovery activity: %+v", r)
	}
	if r.GoodputGB <= 0 {
		t.Errorf("baseline goodput = %.3f GB/s, want > 0", r.GoodputGB)
	}
}

// TestCrashSweepRecoversEveryWindow: with a working reset path, every
// injected crash must resolve through reset-and-replay — full delivery, no
// aborts — and cost measurable recovery time.
func TestCrashSweepRecoversEveryWindow(t *testing.T) {
	baseline := CrashSweep([]int64{0}, 32*sim.MiB)[0]
	r := CrashSweep([]int64{8}, 32*sim.MiB)[0]
	if r.Crashes == 0 || r.Trips == 0 {
		t.Fatalf("crash-every-8 row crashed nothing: %+v", r)
	}
	if r.Resets != r.Trips {
		t.Errorf("resets = %d for %d trips; a healthy reset path succeeds first try", r.Resets, r.Trips)
	}
	if r.Replayed == 0 {
		t.Error("no in-flight commands replayed across crashes")
	}
	if r.Aborts != 0 {
		t.Errorf("aborts = %d; recovery must replay every crashed window", r.Aborts)
	}
	if r.MTTRUs <= 0 {
		t.Error("MTTR not accounted")
	}
	if r.GoodputGB <= 0 || r.GoodputGB >= baseline.GoodputGB {
		t.Errorf("crash goodput = %.3f GB/s vs baseline %.3f; recovery episodes must cost bandwidth",
			r.GoodputGB, baseline.GoodputGB)
	}
}

// TestCrashTimelineShowsOutage: the sampled bandwidth must dip during
// recovery episodes and run near full rate outside them. Recovery lasts
// about one sample window, so an episode can straddle two windows — the
// dip is pronounced but need not reach zero.
func TestCrashTimelineShowsOutage(t *testing.T) {
	pts := CrashTimeline(16, 32*sim.MiB, sim.Millisecond)
	if len(pts) == 0 {
		t.Fatal("timeline produced no samples")
	}
	min, max := pts[0].GBps, pts[0].GBps
	for _, p := range pts {
		if p.GBps < min {
			min = p.GBps
		}
		if p.GBps > max {
			max = p.GBps
		}
	}
	if max <= 0 {
		t.Fatal("timeline never saw traffic")
	}
	if min > max*0.85 {
		t.Errorf("no outage dip visible: min %.2f GB/s vs max %.2f", min, max)
	}
}

// TestStripedDegradedDemo pins the degraded-striping demo: member 1 dies,
// its stripes fail, and exactly the survivors' bytes read back.
func TestStripedDegradedDemo(t *testing.T) {
	// 48 MiB across 3 members = 16 stripes each; member 1 is removed at its
	// 8th completion, so some of its writes land but none of its reads do.
	r := StripedDegraded(3, 48*sim.MiB)
	if r.DeadMember != 1 {
		t.Fatalf("dead member = %d, want 1", r.DeadMember)
	}
	if r.DegradedWrites == 0 || r.DegradedReads == 0 {
		t.Errorf("degraded ops = %d wr / %d rd, want both > 0", r.DegradedWrites, r.DegradedReads)
	}
	if r.SurvivorBytes != 32*sim.MiB {
		t.Errorf("survivor bytes = %d, want the two live members' 32 MiB", r.SurvivorBytes)
	}
	if r.WriteGB <= 0 {
		t.Error("no write goodput recorded")
	}
}

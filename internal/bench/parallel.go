package bench

import (
	"snacc/internal/parallel"
	"snacc/internal/sim"
)

// The experiment runners below are embarrassingly parallel: every row of
// every figure and ablation builds its own simulated system around a private
// sim.Kernel with fixed PRNG seeds, so rows can execute on any worker in any
// real-time order without affecting their simulated-time results. The engine
// collects rows by index, which keeps the emitted tables bit-identical to a
// serial run at every parallelism level (the determinism test pins this).
var engine = parallel.New(1)

// SetParallelism selects how many OS worker goroutines the experiment
// runners shard independent simulation rigs across. n <= 0 selects
// runtime.GOMAXPROCS(0). The default is 1 (serial). Not safe to call
// concurrently with a running experiment; set it once up front.
func SetParallelism(n int) { engine = parallel.New(n) }

// Parallelism reports the configured worker count.
func Parallelism() int { return engine.Workers() }

// kernelWorkers is the per-rig domain-level worker count applied to runners
// whose rigs have a partitionable topology (the case-study figures). It
// composes with SetParallelism: the engine shards *across* rigs, and each
// rig's shard runs its domains on up to this many workers. Results are
// identical at any setting (the determinism test sweeps both axes).
var kernelWorkers = 1

// SetKernelWorkers selects the domain-level worker count; n <= 1 keeps
// every rig on its plain serial kernel. Same concurrency caveat as
// SetParallelism.
func SetKernelWorkers(n int) {
	if n < 1 {
		n = 1
	}
	kernelWorkers = n
}

// KernelWorkers reports the configured domain-level worker count.
func KernelWorkers() int { return kernelWorkers }

// mapRows runs job(0..n-1) on the experiment engine and returns the results
// in index order.
func mapRows[T any](n int, job func(i int) T) []T {
	return parallel.Map(engine, n, job)
}

// SuiteConfig scales the full-suite runner.
type SuiteConfig struct {
	// Size is the transfer volume per bandwidth measurement; 0 selects
	// 256 MiB (the CLI default).
	Size int64
	// Images is the case-study stream length; 0 selects 192.
	Images int
	// Samples is the figure-4c latency sample count; 0 selects 200.
	Samples int
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if c.Size <= 0 {
		c.Size = 256 * sim.MiB
	}
	if c.Images <= 0 {
		c.Images = 192
	}
	if c.Samples <= 0 {
		c.Samples = 200
	}
	return c
}

// RunSuite regenerates every figure, table and ablation at the configured
// scale and returns the rendered tables in the CLI's -all order. Each group
// shards its rigs across the experiment engine; the output is identical at
// any parallelism level.
func RunSuite(cfg SuiteConfig) []Table {
	cfg = cfg.withDefaults()
	size := cfg.Size
	rows := Fig6(cfg.Images)
	return []Table{
		RenderFig4a(Fig4a(size)),
		RenderFig4b(Fig4b(size / 4)),
		RenderFig4c(Fig4c(cfg.Samples)),
		RenderTable1(Table1()),
		RenderFig6(rows),
		RenderFig7(rows),
		RenderAblationQD(AblationQD([]int{4, 16, 64, 256}, size/8)),
		RenderAblationOOO(AblationOOO(size / 8)),
		RenderAblationMultiSSD(AblationMultiSSD([]int{1, 2, 4}, size/2)),
		RenderAblationGen5(AblationGen5(size)),
		RenderAblationHBM(AblationHBM(size)),
		RenderFig6Striped(Fig6Striped([]int{1, 2, 3}, cfg.Images)),
		RenderAblationDRAM(AblationDRAM(size)),
		RenderAblationQP(AblationQP([]int{1, 2, 4}, size/8)),
		RenderAblationMTU(AblationMTU([]int64{1500, 4096, 9000}, cfg.Images)),
	}
}

package bench

import (
	"fmt"

	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// QueueSweepRow is one point of the multi-queue submission sweep: 4 KiB
// random-read throughput and latency for one (I/O queue pairs, doorbell
// batch) configuration of the URAM streamer.
type QueueSweepRow struct {
	Queues        int     // I/O queue pairs the submission path shards over
	DoorbellBatch int     // commands coalesced per doorbell write (1 = paper)
	KIOPS         float64 // 4 KiB random-read throughput, thousands of IOPS
	P99Us         float64 // p99 submit→retire read-command latency, µs
	DoorbellRatio float64 // doorbell writes per submitted command (2.0 uncoalesced)
	Speedup       float64 // KIOPS relative to the 1-queue, batch-1 baseline
}

// queueSweepIO is the sweep's fixed I/O size — the 4 KiB random reads whose
// per-command overheads (retirement FSM serialization, doorbell round trips)
// the multi-queue path amortizes. Large transfers are bandwidth-bound and do
// not move.
const queueSweepIO = 4096

// QueueSweep measures URAM 4 KiB random-read IOPS and p99 command latency
// over the cross product of queue counts and doorbell batches. The (1, 1)
// cell is the paper's single-SQ model; sharding the CQ bookkeeping across
// queues and amortizing doorbell posts over batches lifts the flat
// random-read ceiling of Figure 4b. Rows are independent and deterministic,
// so the sweep replays byte-identically at any parallelism level.
func QueueSweep(queues, batches []int, totalBytes int64) []QueueSweepRow {
	type cell struct{ q, b int }
	var cells []cell
	for _, q := range queues {
		for _, b := range batches {
			cells = append(cells, cell{q, b})
		}
	}
	rows := mapRows(len(cells), func(i int) QueueSweepRow {
		c := cells[i]
		rig := buildSNAcc(streamer.URAM, func(cfg *streamer.Config) {
			cfg.IOQueues = c.q
			cfg.DoorbellBatch = c.b
		}, nil)
		var res streamer.PerfResult
		rig.measure(func(p *sim.Proc) {
			res = streamer.RandRead(p, rig.c, 64*sim.GiB, totalBytes, queueSweepIO, 42)
		})
		readLat, _ := rig.st.CommandLatencies()
		row := QueueSweepRow{
			Queues:        c.q,
			DoorbellBatch: c.b,
			P99Us:         float64(readLat.Percentile(99)) / 1e3,
		}
		if res.Elapsed > 0 {
			row.KIOPS = float64(res.Bytes/queueSweepIO) / res.Elapsed.Seconds() / 1e3
		}
		if submitted := rig.st.CommandsSubmitted(); submitted > 0 {
			row.DoorbellRatio = float64(rig.st.DoorbellWrites()) / float64(submitted)
		}
		return row
	})
	var base float64
	for _, r := range rows {
		if r.Queues <= 1 && r.DoorbellBatch <= 1 {
			base = r.KIOPS
			break
		}
	}
	for i := range rows {
		if base > 0 {
			rows[i].Speedup = rows[i].KIOPS / base
		}
	}
	return rows
}

// RenderQueueSweep formats the multi-queue submission sweep.
func RenderQueueSweep(rows []QueueSweepRow) Table {
	t := Table{
		Title:   "Queue sweep — URAM 4 KiB random-read IOPS vs I/O queues × doorbell batch",
		Columns: []string{"kIOPS", "p99 µs", "db/cmd", "speedup"},
		Notes: []string{
			"db/cmd = doorbell writes per command: 2.0 uncoalesced (tail ring + head update), approaching 2/batch with coalescing",
			"1q b1 is the paper's single-SQ model; the reorder buffer keeps retirement in order at every point",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("%dq b%d", r.Queues, r.DoorbellBatch),
			Cells: []string{
				fmt.Sprintf("%.1f", r.KIOPS),
				fmt.Sprintf("%.1f", r.P99Us),
				fmt.Sprintf("%.3f", r.DoorbellRatio),
				fmt.Sprintf("%.2fx", r.Speedup),
			},
		})
	}
	return t
}

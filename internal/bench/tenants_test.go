package bench

import "testing"

// TestTenantIsolationBound pins the tentpole QoS guarantee from both sides:
// under the DRR scheduler a bursty noisy neighbor offering several times its
// weight's fair share leaves the victim's p99 read latency within
// IsolationBound of its solo run, while the FIFO baseline — identical rig,
// arrival-order dispatch — blows through the same bound. If a scheduler
// change weakens isolation (or accidentally cripples the baseline into
// passing), this fails with the measured ratios.
func TestTenantIsolationBound(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the three-rig tenant sweep")
	}
	rows := TenantSweep(0, 0)
	byKey := map[string]TenantSweepRow{}
	for _, r := range rows {
		byKey[r.Sched+"/"+r.Tenant] = r
	}
	solo, ok := byKey["solo/victim"]
	if !ok || solo.P99Us <= 0 {
		t.Fatalf("missing solo victim baseline: %+v", rows)
	}
	drr := byKey["drr/victim"]
	fifo := byKey["fifo/victim"]
	if drr.VsSolo <= 0 || drr.VsSolo > IsolationBound {
		t.Errorf("drr victim p99 = %.1f µs, %.2fx solo — want within %.1fx",
			drr.P99Us, drr.VsSolo, IsolationBound)
	}
	if fifo.VsSolo <= IsolationBound {
		t.Errorf("fifo victim p99 = %.1f µs, %.2fx solo — expected the baseline to exceed %.1fx (is the neighbor still saturating?)",
			fifo.P99Us, fifo.VsSolo, IsolationBound)
	}
	// The neighbor is the aggressor, not a victim: it must have kept the
	// device busy for the whole victim run under both schedulers.
	for _, sched := range []string{"drr", "fifo"} {
		n := byKey[sched+"/noisy"]
		if n.Reads == 0 || n.KIOPS == 0 {
			t.Errorf("%s noisy neighbor idle: %+v", sched, n)
		}
	}
	// Weighted sharing still serves the neighbor: DRR must not starve it
	// relative to the FIFO baseline by more than half.
	if d, f := byKey["drr/noisy"], byKey["fifo/noisy"]; d.KIOPS < f.KIOPS/2 {
		t.Errorf("drr starves the noisy tenant: %.1f kIOPS vs fifo %.1f", d.KIOPS, f.KIOPS)
	}
}

package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// TraceOp is one operation of a recorded I/O trace.
type TraceOp struct {
	Read bool
	// Addr is the byte offset on the device (512-aligned).
	Addr uint64
	// N is the transfer length in bytes (512-aligned).
	N int64
	// Gap is the think time inserted before issuing this operation,
	// modeling the inter-arrival spacing of the captured workload. Zero
	// means issue back-to-back (closed loop).
	Gap sim.Time
}

// Trace file format — one operation per line:
//
//	R <offset-bytes> <length-bytes> [gap-us]
//	W <offset-bytes> <length-bytes> [gap-us]
//
// Blank lines and lines starting with '#' are ignored. Offsets and lengths
// accept the suffixes K, M, G (binary). This is the minimal common
// denominator of block-trace formats (blktrace / SNIA-style), chosen so
// captured traces convert with a one-line awk script.

// maxGapMicros caps a trace op's think time at 1e9 µs (~17 simulated
// minutes). Beyond roughly 2^53 ns the float µs→int64 ns conversion loses
// integer precision (and far beyond it overflows); a cap keeps every
// accepted gap exactly representable and round-trippable.
const maxGapMicros = 1e9

// ParseTrace reads a trace from r.
func ParseTrace(r io.Reader) ([]TraceOp, error) {
	var ops []TraceOp
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("trace line %d: want \"R|W offset length [gap-us]\", got %q", line, text)
		}
		var op TraceOp
		switch strings.ToUpper(fields[0]) {
		case "R":
			op.Read = true
		case "W":
			op.Read = false
		default:
			return nil, fmt.Errorf("trace line %d: op %q is not R or W", line, fields[0])
		}
		addr, err := parseSize(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace line %d: offset: %v", line, err)
		}
		n, err := parseSize(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace line %d: length: %v", line, err)
		}
		op.Addr, op.N = addr, int64(n)
		if len(fields) == 4 {
			us, err := strconv.ParseFloat(fields[3], 64)
			if err != nil || us < 0 || us > maxGapMicros || math.IsInf(us, 0) || math.IsNaN(us) {
				return nil, fmt.Errorf("trace line %d: gap %q is not a duration in µs within [0, %g]", line, fields[3], float64(maxGapMicros))
			}
			// Round, don't truncate: FormatTrace prints gaps as µs floats, and
			// the nearest float64 to gap/1000 can sit just below the integer
			// (3 ns → "0.003" → 2.999…); rounding makes the round trip exact.
			op.Gap = sim.Time(math.Round(us * float64(sim.Microsecond)))
		}
		if err := validateOp(op); err != nil {
			return nil, fmt.Errorf("trace line %d: %v", line, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

func validateOp(op TraceOp) error {
	switch {
	case op.N <= 0 || op.N%512 != 0:
		return fmt.Errorf("length %d is not a positive multiple of 512", op.N)
	case op.Addr%512 != 0:
		return fmt.Errorf("offset %d is not 512-aligned", op.Addr)
	}
	return nil
}

// parseSize parses a non-negative integer with an optional K/M/G binary
// suffix.
func parseSize(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint64/mult {
		return 0, fmt.Errorf("size %q overflows 64 bits", s)
	}
	return v * mult, nil
}

// FormatTrace writes ops in the trace file format; ParseTrace inverts it.
func FormatTrace(w io.Writer, ops []TraceOp) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		c := "W"
		if op.Read {
			c = "R"
		}
		if op.Gap > 0 {
			fmt.Fprintf(bw, "%s %d %d %g\n", c, op.Addr, op.N,
				float64(op.Gap)/float64(sim.Microsecond))
		} else {
			fmt.Fprintf(bw, "%s %d %d\n", c, op.Addr, op.N)
		}
	}
	return bw.Flush()
}

// RecordTrace materializes a generated workload as a trace, so synthetic
// specs and captured traces flow through the same replay path.
func RecordTrace(spec Spec) ([]TraceOp, error) {
	gen, err := NewGenerator(spec)
	if err != nil {
		return nil, err
	}
	var ops []TraceOp
	for {
		op, ok := gen.Next()
		if !ok {
			return ops, nil
		}
		ops = append(ops, TraceOp{Read: op.Read, Addr: op.Addr, N: op.N})
	}
}

// Replay drives the streamer with a recorded trace through the same
// pipelined harness as Run. Gap fields throttle issue (open-loop arrival
// spacing); with all gaps zero the replay is closed-loop at full queue
// pressure.
func Replay(p *sim.Proc, c *streamer.Client, name string, ops []TraceOp) (Result, error) {
	for i, op := range ops {
		if err := validateOp(op); err != nil {
			return Result{}, fmt.Errorf("trace op %d: %v", i, err)
		}
	}
	i := 0
	res := drive(p, c, name, func() (TraceOp, bool) {
		if i >= len(ops) {
			return TraceOp{}, false
		}
		op := ops[i]
		i++
		return op, true
	})
	return res, nil
}

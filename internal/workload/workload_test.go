package workload

import (
	"math"
	"testing"
	"testing/quick"

	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

func baseSpec(p Pattern, readFrac float64) Spec {
	return Spec{
		Name:         "t",
		Pattern:      p,
		ReadFraction: readFrac,
		IOBytes:      4096,
		SpanBytes:    sim.GiB,
		TotalBytes:   4 * sim.MiB,
		ZipfTheta:    0.99,
		ZipfBuckets:  64,
		Seed:         42,
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	for _, pat := range []Pattern{Sequential, Random, Zipfian} {
		g1, _ := NewGenerator(baseSpec(pat, 0.5))
		g2, _ := NewGenerator(baseSpec(pat, 0.5))
		for {
			a, ok1 := g1.Next()
			b, ok2 := g2.Next()
			if ok1 != ok2 {
				t.Fatalf("%v: generators diverged in length", pat)
			}
			if !ok1 {
				break
			}
			if a != b {
				t.Fatalf("%v: generators diverged: %+v vs %+v", pat, a, b)
			}
		}
	}
}

func TestGeneratorBoundsProperty(t *testing.T) {
	f := func(seed uint64, patRaw, frac uint8) bool {
		spec := baseSpec(Pattern(patRaw%3), float64(frac%101)/100)
		spec.Seed = seed
		g, err := NewGenerator(spec)
		if err != nil {
			return false
		}
		var total int64
		for {
			op, ok := g.Next()
			if !ok {
				break
			}
			total += op.N
			if op.Addr%uint64(spec.IOBytes) != 0 {
				return false
			}
			if op.Addr+uint64(op.N) > uint64(spec.SpanBytes) {
				return false
			}
		}
		return total == spec.TotalBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadFractionConverges(t *testing.T) {
	spec := baseSpec(Random, 0.7)
	spec.TotalBytes = 32 * sim.MiB
	g, _ := NewGenerator(spec)
	reads, total := 0, 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		total++
		if op.Read {
			reads++
		}
	}
	got := float64(reads) / float64(total)
	if math.Abs(got-0.7) > 0.03 {
		t.Fatalf("read fraction = %.3f, want ~0.7", got)
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	spec := baseSpec(Zipfian, 0)
	spec.TotalBytes = 32 * sim.MiB
	g, _ := NewGenerator(spec)
	bucketBytes := spec.SpanBytes / int64(spec.ZipfBuckets)
	counts := make([]int, spec.ZipfBuckets)
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		counts[int(op.Addr/uint64(bucketBytes))]++
	}
	// The hottest bucket must dominate a cold one decisively.
	if counts[0] < 5*counts[spec.ZipfBuckets/2] {
		t.Fatalf("zipfian not skewed: hot=%d mid=%d", counts[0], counts[spec.ZipfBuckets/2])
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{IOBytes: 100, SpanBytes: sim.GiB, TotalBytes: sim.MiB},                                  // misaligned
		{IOBytes: 4096, SpanBytes: 1024, TotalBytes: sim.MiB},                                    // tiny span
		{IOBytes: 4096, SpanBytes: sim.GiB, TotalBytes: 512},                                     // tiny total
		{IOBytes: 4096, SpanBytes: sim.GiB, TotalBytes: sim.MiB, ReadFraction: 1.5},              // bad frac
		{IOBytes: 4096, SpanBytes: sim.GiB, TotalBytes: sim.MiB, Pattern: Zipfian, ZipfTheta: 2}, // bad zipf
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
}

// runOn builds a full system and executes the workload on it.
func runOn(t *testing.T, spec Spec) Result {
	t.Helper()
	k := sim.NewKernel()
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssd0", 0x10_0000_0000))
	st := pl.AddStreamer(streamer.DefaultConfig("snacc0", 0, streamer.URAM))
	drv := tapasco.NewDriver(pl, "ssd0", 0x10_0000_0000)
	var res Result
	var err error
	k.Spawn("main", func(p *sim.Proc) {
		if e := drv.InitController(p); e != nil {
			t.Errorf("%v", e)
			return
		}
		if e := drv.AttachStreamer(p, st, 1); e != nil {
			t.Errorf("%v", e)
			return
		}
		res, err = Run(p, streamer.NewClient(st), spec)
	})
	k.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestRunMixedWorkload(t *testing.T) {
	spec := baseSpec(Random, 0.5)
	spec.TotalBytes = 8 * sim.MiB
	res := runOn(t, spec)
	if res.BytesRead+res.BytesWritten != spec.TotalBytes {
		t.Fatalf("moved %d of %d bytes", res.BytesRead+res.BytesWritten, spec.TotalBytes)
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Fatalf("mix degenerate: %d reads, %d writes", res.Reads, res.Writes)
	}
	if res.GBps() <= 0 || res.IOPS() <= 0 {
		t.Fatal("throughput not measured")
	}
}

func TestRunSequentialFasterThanRandom(t *testing.T) {
	// §5.2's central contrast, via the workload harness: large sequential
	// reads fly, 4 KiB random reads collapse under in-order retirement.
	seq := baseSpec(Sequential, 1)
	seq.IOBytes = sim.MiB
	seq.TotalBytes = 64 * sim.MiB
	rnd := baseSpec(Random, 1)
	rnd.TotalBytes = 16 * sim.MiB
	s := runOn(t, seq)
	r := runOn(t, rnd)
	if s.GBps() < 3*r.GBps() {
		t.Fatalf("1 MiB sequential reads (%.2f) should beat 4 KiB random (%.2f) decisively",
			s.GBps(), r.GBps())
	}
}

func TestRunZipfianReads(t *testing.T) {
	spec := baseSpec(Zipfian, 1)
	spec.TotalBytes = 8 * sim.MiB
	res := runOn(t, spec)
	if res.Writes != 0 || res.BytesRead != spec.TotalBytes {
		t.Fatalf("pure-read zipfian mis-ran: %+v", res)
	}
}

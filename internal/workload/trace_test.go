package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

func TestParseTraceBasic(t *testing.T) {
	in := `# comment
R 0 4096
W 4096 8192 2.5

r 1M 64K
W 2G 512 0
`
	ops, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceOp{
		{Read: true, Addr: 0, N: 4096},
		{Read: false, Addr: 4096, N: 8192, Gap: sim.Time(2.5 * float64(sim.Microsecond))},
		{Read: true, Addr: 1 << 20, N: 64 << 10},
		{Read: false, Addr: 2 << 30, N: 512},
	}
	if len(ops) != len(want) {
		t.Fatalf("parsed %d ops, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %+v, want %+v", i, ops[i], want[i])
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"X 0 4096",                  // bad op
		"R 0",                       // too few fields
		"R 0 4096 1 2",              // too many fields
		"R zz 4096",                 // bad offset
		"R 0 4095",                  // misaligned length
		"R 100 4096",                // misaligned offset
		"R 0 0",                     // zero length
		"W 0 4096 -3",               // negative gap
		"W 0 4096 hello",            // non-numeric gap
		"W 0 4096 Inf",              // non-finite gap
		"W 0 4096 NaN",              // non-finite gap
		"R 18014398509481984K 4096", // offset overflows 64 bits
	}
	for _, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c)); err == nil {
			t.Errorf("accepted malformed line %q", c)
		}
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	f := func(raw []struct {
		Read  bool
		Addr  uint16
		Sects uint8
		GapUS uint8
	}) bool {
		var ops []TraceOp
		for _, r := range raw {
			ops = append(ops, TraceOp{
				Read: r.Read,
				Addr: uint64(r.Addr) * 512,
				N:    (int64(r.Sects%64) + 1) * 512,
				Gap:  sim.Time(r.GapUS) * sim.Microsecond,
			})
		}
		var buf bytes.Buffer
		if err := FormatTrace(&buf, ops); err != nil {
			return false
		}
		back, err := ParseTrace(&buf)
		if err != nil {
			return false
		}
		if len(back) != len(ops) {
			return false
		}
		for i := range ops {
			if back[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRecordTraceMatchesGenerator(t *testing.T) {
	spec := baseSpec(Zipfian, 0.5)
	ops, err := RecordTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := NewGenerator(spec)
	for i := 0; ; i++ {
		op, ok := g.Next()
		if !ok {
			if i != len(ops) {
				t.Fatalf("trace has %d ops, generator yields %d", len(ops), i)
			}
			return
		}
		want := TraceOp{Read: op.Read, Addr: op.Addr, N: op.N}
		if ops[i] != want {
			t.Fatalf("op %d = %+v, want %+v", i, ops[i], want)
		}
	}
}

// replayOn builds a full system and replays the trace on it.
func replayOn(t *testing.T, ops []TraceOp) Result {
	t.Helper()
	k := sim.NewKernel()
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssd0", 0x10_0000_0000))
	st := pl.AddStreamer(streamer.DefaultConfig("snacc0", 0, streamer.URAM))
	drv := tapasco.NewDriver(pl, "ssd0", 0x10_0000_0000)
	var res Result
	var err error
	k.Spawn("main", func(p *sim.Proc) {
		if e := drv.InitController(p); e != nil {
			t.Errorf("%v", e)
			return
		}
		if e := drv.AttachStreamer(p, st, 1); e != nil {
			t.Errorf("%v", e)
			return
		}
		res, err = Replay(p, streamer.NewClient(st), "trace", ops)
	})
	k.Run(0)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return res
}

func TestReplayConservesBytes(t *testing.T) {
	spec := baseSpec(Random, 0.5)
	spec.TotalBytes = 4 * sim.MiB
	ops, err := RecordTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := replayOn(t, ops)
	if res.BytesRead+res.BytesWritten != spec.TotalBytes {
		t.Fatalf("replayed %d of %d bytes", res.BytesRead+res.BytesWritten, spec.TotalBytes)
	}
	if res.Reads+res.Writes != int64(len(ops)) {
		t.Fatalf("replayed %d of %d ops", res.Reads+res.Writes, len(ops))
	}
}

func TestReplayMatchesGeneratedRun(t *testing.T) {
	// Replaying a recorded workload must behave like generating it live:
	// same op mix, same bytes, and closely matching elapsed time.
	spec := baseSpec(Random, 1)
	spec.TotalBytes = 4 * sim.MiB
	ops, _ := RecordTrace(spec)
	rec := replayOn(t, ops)
	live := runOn(t, spec)
	if rec.Reads != live.Reads || rec.BytesRead != live.BytesRead {
		t.Fatalf("replay diverged: %+v vs %+v", rec, live)
	}
	ratio := rec.Elapsed.Seconds() / live.Elapsed.Seconds()
	if ratio < 0.98 || ratio > 1.02 {
		t.Fatalf("replay elapsed %v vs live %v", rec.Elapsed, live.Elapsed)
	}
}

func TestReplayOpenLoopGapsThrottle(t *testing.T) {
	// With large inter-arrival gaps the replay is arrival-limited, not
	// device-limited: elapsed time is dominated by the sum of gaps.
	var ops []TraceOp
	const n = 64
	for i := 0; i < n; i++ {
		ops = append(ops, TraceOp{Read: true, Addr: uint64(i) * 4096, N: 4096,
			Gap: 100 * sim.Microsecond})
	}
	res := replayOn(t, ops)
	minElapsed := sim.Time(n) * 100 * sim.Microsecond
	if res.Elapsed < minElapsed {
		t.Fatalf("elapsed %v under the %v arrival floor", res.Elapsed, minElapsed)
	}
	if res.Elapsed > minElapsed+10*sim.Millisecond {
		t.Fatalf("elapsed %v far above the arrival floor %v", res.Elapsed, minElapsed)
	}
}

func TestReplayRejectsMalformedOp(t *testing.T) {
	k := sim.NewKernel()
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssd0", 0x10_0000_0000))
	st := pl.AddStreamer(streamer.DefaultConfig("snacc0", 0, streamer.URAM))
	drv := tapasco.NewDriver(pl, "ssd0", 0x10_0000_0000)
	k.Spawn("main", func(p *sim.Proc) {
		if e := drv.InitController(p); e != nil {
			t.Errorf("%v", e)
			return
		}
		if e := drv.AttachStreamer(p, st, 1); e != nil {
			t.Errorf("%v", e)
			return
		}
		_, err := Replay(p, streamer.NewClient(st), "bad", []TraceOp{{Read: true, Addr: 7, N: 4096}})
		if err == nil {
			t.Error("misaligned trace op accepted")
		}
	})
	k.Run(0)
}

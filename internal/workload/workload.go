// Package workload provides deterministic storage workload generators and
// a runner that drives an NVMe Streamer with them: sequential and random
// streams (the paper's §5 microbenchmarks), Zipfian hotspots, and mixed
// read/write ratios — the access patterns a database built on SNAcc (§1's
// motivating use case) actually produces.
package workload

import (
	"fmt"
	"math"

	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// Pattern selects the address sequence.
type Pattern int

// Supported patterns.
const (
	Sequential Pattern = iota
	Random
	Zipfian
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Random:
		return "random"
	case Zipfian:
		return "zipfian"
	default:
		return "unknown"
	}
}

// Spec describes a workload.
type Spec struct {
	Name    string
	Pattern Pattern
	// ReadFraction in [0,1]: the probability each operation is a read.
	ReadFraction float64
	// IOBytes is the per-operation transfer size (512-aligned).
	IOBytes int64
	// SpanBytes bounds the addressed region.
	SpanBytes int64
	// TotalBytes ends the workload.
	TotalBytes int64
	// ZipfTheta skews the Zipfian distribution (0.99 is the YCSB default);
	// ZipfBuckets is the hot-set granularity.
	ZipfTheta   float64
	ZipfBuckets int
	Seed        uint64
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	switch {
	case s.IOBytes <= 0 || s.IOBytes%512 != 0:
		return fmt.Errorf("workload: IOBytes must be a positive multiple of 512")
	case s.SpanBytes < s.IOBytes:
		return fmt.Errorf("workload: span smaller than one operation")
	case s.TotalBytes < s.IOBytes:
		return fmt.Errorf("workload: total smaller than one operation")
	case s.ReadFraction < 0 || s.ReadFraction > 1:
		return fmt.Errorf("workload: read fraction outside [0,1]")
	case s.Pattern == Zipfian && (s.ZipfTheta <= 0 || s.ZipfTheta >= 1 || s.ZipfBuckets <= 0):
		return fmt.Errorf("workload: zipfian needs theta in (0,1) and positive buckets")
	}
	return nil
}

// Op is one generated operation.
type Op struct {
	Read bool
	Addr uint64
	N    int64
}

// Generator yields the deterministic operation sequence for a Spec.
type Generator struct {
	spec   Spec
	rng    *sim.Rand
	issued int64
	cursor uint64
	// zipfCDF holds the cumulative bucket weights.
	zipfCDF []float64
}

// NewGenerator validates the spec and builds a generator.
func NewGenerator(spec Spec) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{spec: spec, rng: sim.NewRand(spec.Seed)}
	if spec.Pattern == Zipfian {
		g.zipfCDF = buildZipfCDF(spec.ZipfTheta, spec.ZipfBuckets)
	}
	return g, nil
}

// buildZipfCDF precomputes the cumulative bucket weights of a Zipfian
// distribution with the given skew over buckets ranks.
func buildZipfCDF(theta float64, buckets int) []float64 {
	cdf := make([]float64, buckets)
	sum := 0.0
	for i := 0; i < buckets; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// zipfAddr draws one Zipfian-skewed address: a hot bucket by inverse CDF,
// then a uniform slot within it. It consumes exactly two rng draws.
func zipfAddr(rng *sim.Rand, cdf []float64, slots, ioBytes int64) uint64 {
	u := rng.Float64()
	lo, hi := 0, len(cdf)
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	bucketSlots := slots / int64(len(cdf))
	if bucketSlots == 0 {
		bucketSlots = 1
	}
	slot := int64(lo)*bucketSlots + rng.Int63n(bucketSlots)
	if slot >= slots {
		slot = slots - 1
	}
	return uint64(slot) * uint64(ioBytes)
}

// Next returns the next operation, or false when the workload is done.
func (g *Generator) Next() (Op, bool) {
	if g.issued >= g.spec.TotalBytes {
		return Op{}, false
	}
	g.issued += g.spec.IOBytes
	op := Op{N: g.spec.IOBytes}
	op.Read = g.rng.Float64() < g.spec.ReadFraction
	slots := g.spec.SpanBytes / g.spec.IOBytes
	switch g.spec.Pattern {
	case Sequential:
		op.Addr = g.cursor
		g.cursor += uint64(g.spec.IOBytes)
		if g.cursor+uint64(g.spec.IOBytes) > uint64(g.spec.SpanBytes) {
			g.cursor = 0
		}
	case Random:
		op.Addr = uint64(g.rng.Int63n(slots)) * uint64(g.spec.IOBytes)
	case Zipfian:
		op.Addr = zipfAddr(g.rng, g.zipfCDF, slots, g.spec.IOBytes)
	}
	return op, true
}

// Result summarizes a run.
type Result struct {
	Spec         Spec
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	Elapsed      sim.Time
}

// GBps is the combined throughput.
func (r Result) GBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.BytesRead+r.BytesWritten) / r.Elapsed.Seconds() / 1e9
}

// IOPS is the combined operation rate.
func (r Result) IOPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Reads+r.Writes) / r.Elapsed.Seconds()
}

// Run drives the streamer with the workload, pipelining operations against
// the Streamer's in-order window: reads and writes issue from one command
// process (preserving the shared-queue ordering of §4.2) while two
// consumer processes drain data and tokens.
func Run(p *sim.Proc, c *streamer.Client, spec Spec) (Result, error) {
	gen, err := NewGenerator(spec)
	if err != nil {
		return Result{}, err
	}
	res := drive(p, c, spec.Name, func() (TraceOp, bool) {
		op, ok := gen.Next()
		return TraceOp{Read: op.Read, Addr: op.Addr, N: op.N}, ok
	})
	res.Spec = spec
	return res, nil
}

// drive is the shared pipelined-issue harness behind Run and Replay: one
// command process issues the stream in order (preserving the shared-queue
// ordering of §4.2) while two consumer processes drain read data and write
// tokens, so issue never blocks on completion. Gap fields throttle issue.
func drive(p *sim.Proc, c *streamer.Client, name string, next func() (TraceOp, bool)) Result {
	k := p.Kernel()
	res := Result{Spec: Spec{Name: name}}
	start := p.Now()

	done := sim.NewChan[struct{}](k, 2)
	readsIssued := sim.NewChan[int64](k, 1<<20)
	writesIssued := sim.NewChan[int64](k, 1<<20)

	k.Spawn(name+".rdrain", func(rp *sim.Proc) {
		for {
			n := readsIssued.Get(rp)
			if n < 0 {
				done.TryPut(struct{}{})
				return
			}
			c.ConsumeRead(rp)
			res.BytesRead += n
		}
	})
	k.Spawn(name+".wdrain", func(wp *sim.Proc) {
		for {
			n := writesIssued.Get(wp)
			if n < 0 {
				done.TryPut(struct{}{})
				return
			}
			c.WaitWrite(wp)
			res.BytesWritten += n
		}
	})

	for {
		op, ok := next()
		if !ok {
			break
		}
		if op.Gap > 0 {
			p.Sleep(op.Gap)
		}
		if op.Read {
			res.Reads++
			c.ReadAsync(p, op.Addr, op.N)
			readsIssued.Put(p, op.N)
		} else {
			res.Writes++
			c.WriteAsync(p, op.Addr, op.N, nil)
			writesIssued.Put(p, op.N)
		}
	}
	// Sentinels terminate the drains.
	readsIssued.Put(p, -1)
	writesIssued.Put(p, -1)
	done.Get(p)
	done.Get(p)
	res.Elapsed = p.Now() - start
	return res
}

package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseTrace throws arbitrary bytes at the trace parser. Two properties:
// the parser never panics, and any trace it accepts survives a
// FormatTrace → ParseTrace round trip unchanged — the format is the
// interchange surface for captured workloads, so "what you replay is what
// you archived" has to hold bit-for-bit (including the float µs gap field).
func FuzzParseTrace(f *testing.F) {
	seeds := []string{
		"",
		"\n\n\n",
		"# comment only\n",
		"R 0 512\n",
		"W 512 1024 2.5\n",
		"r 4K 1M\nw 1G 512 0.003\n",
		"R 0 512   \n",                 // trailing whitespace
		"\tW 512 512\n",                // leading whitespace
		"R 0 0\n",                      // zero-length op
		"W 1 512\n",                    // unaligned offset
		"R 0 513\n",                    // unaligned length
		"W 18446744073709551615 512\n", // max uint64 offset
		"R 99999999999999999999 512\n", // overflowing offset
		"W 18014398509481984K 512\n",   // suffix-multiplied overflow
		"W 0 4096 1e9\n",               // gap at the cap
		"W 0 4096 1e300\n",             // gap far past the cap
		"W 0 4096 -3\n",
		"W 0 4096 NaN\n",
		"X 0 512\n",
		"R 0\n",
		"R 0 512 1 extra\n",
		"R 0x200 512\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		ops, err := ParseTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := FormatTrace(&buf, ops); err != nil {
			t.Fatalf("FormatTrace(%#v) failed: %v", ops, err)
		}
		again, err := ParseTrace(&buf)
		if err != nil {
			t.Fatalf("re-parse of formatted trace failed: %v\ntrace:\n%s", err, buf.String())
		}
		if len(ops) == 0 && len(again) == 0 {
			return // nil vs empty slice
		}
		if !reflect.DeepEqual(ops, again) {
			t.Fatalf("round trip changed the trace:\nfirst:  %#v\nsecond: %#v\nformatted:\n%s",
				ops, again, buf.String())
		}
	})
}

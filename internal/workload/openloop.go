package workload

import (
	"fmt"
	"math"

	"snacc/internal/sim"
)

// This file is the open-loop half of the package: instead of a closed loop
// that issues the next operation when the previous one completes (Run /
// Replay), an OpenLoop engine produces a timed arrival stream the way a
// serving fleet loads a front end — requests arrive when clients send them,
// whether or not the system has finished the ones before. Slow service does
// not slow arrivals; it grows queues, and whatever admission policy the
// serving tier applies (backpressure, load shedding) becomes visible instead
// of being hidden by the generator.

// PhaseSpec is one segment of an open-loop rate schedule: the baseline
// arrival rate is multiplied by RateScale for Duration of generated time.
// Phases cycle, so a two-entry schedule of a long calm phase and a short
// high-scale phase models recurring bursts; longer schedules approximate a
// diurnal curve.
type PhaseSpec struct {
	RateScale float64
	Duration  sim.Time
}

// OpenLoopSpec describes an open-loop arrival stream.
type OpenLoopSpec struct {
	// Clients is the simulated client population; every arrival is drawn
	// from it uniformly. The serving tier sizes its connection table to
	// this count.
	Clients int
	// RatePerSec is the aggregate baseline arrival rate across all
	// clients, in requests per second. Inter-arrival gaps are exponential
	// (Poisson arrivals), the standard open-loop model.
	RatePerSec float64
	// Ops is the total number of arrivals to generate.
	Ops int64
	// ReadFraction in [0,1] is the probability each request is a read.
	ReadFraction float64
	// IOBytes is the per-request transfer size (positive multiple of 512).
	IOBytes int64
	// SpanBytes bounds the addressed region (per tenant when Tenants > 0).
	SpanBytes int64
	// ZipfTheta in (0,1) skews the key distribution (0.99 is the YCSB
	// default); ZipfBuckets is the hot-set granularity.
	ZipfTheta   float64
	ZipfBuckets int
	// Phases is the burst/diurnal rate schedule; empty means a steady
	// baseline rate.
	Phases []PhaseSpec
	// CloseProb in [0,1) is the per-arrival probability that the request
	// also ends its client's connection (session churn); the client's next
	// request reopens it.
	CloseProb float64
	// Tenants, when positive, stamps each arrival with a uniform tenant
	// index in [0, Tenants) and makes addresses tenant-relative.
	Tenants int
	Seed    uint64
}

// Validate reports configuration errors.
func (s OpenLoopSpec) Validate() error {
	switch {
	case s.Clients < 1:
		return fmt.Errorf("workload: open loop needs at least one client")
	case s.Clients > math.MaxUint32:
		return fmt.Errorf("workload: client count %d does not fit a 32-bit connection id", s.Clients)
	case s.RatePerSec <= 0 || math.IsInf(s.RatePerSec, 0) || math.IsNaN(s.RatePerSec):
		return fmt.Errorf("workload: arrival rate must be a positive finite rate")
	case s.Ops < 1:
		return fmt.Errorf("workload: open loop needs at least one arrival")
	case s.ReadFraction < 0 || s.ReadFraction > 1:
		return fmt.Errorf("workload: read fraction outside [0,1]")
	case s.IOBytes <= 0 || s.IOBytes%512 != 0:
		return fmt.Errorf("workload: IOBytes must be a positive multiple of 512")
	case s.SpanBytes < s.IOBytes:
		return fmt.Errorf("workload: span smaller than one operation")
	case s.ZipfTheta <= 0 || s.ZipfTheta >= 1 || s.ZipfBuckets <= 0:
		return fmt.Errorf("workload: open loop needs zipf theta in (0,1) and positive buckets")
	case s.CloseProb < 0 || s.CloseProb >= 1:
		return fmt.Errorf("workload: close probability outside [0,1)")
	case s.Tenants < 0 || s.Tenants > math.MaxUint16:
		return fmt.Errorf("workload: tenant count %d does not fit a 16-bit tenant id", s.Tenants)
	}
	for i, ph := range s.Phases {
		if ph.RateScale <= 0 || math.IsInf(ph.RateScale, 0) || math.IsNaN(ph.RateScale) {
			return fmt.Errorf("workload: phase %d: rate scale must be a positive finite factor", i)
		}
		if ph.Duration <= 0 {
			return fmt.Errorf("workload: phase %d: duration must be positive", i)
		}
	}
	return nil
}

// Arrival is one open-loop request: when it arrives, who sent it, and what
// it asks the storage tier to do.
type Arrival struct {
	// Due is the arrival time relative to the start of the stream.
	Due sim.Time
	// ID is the request id, unique and monotone across the stream.
	ID uint64
	// Conn is the issuing client's connection id in [0, Clients).
	Conn uint32
	// Tenant is the target tenant (0 when untenanted).
	Tenant uint16
	Read   bool
	// Addr is the (tenant-relative) device byte address; N the length.
	Addr uint64
	N    int64
	// Fin marks the client's last request on this connection.
	Fin bool
}

// OpenLoop generates the deterministic arrival stream for a spec.
type OpenLoop struct {
	spec    OpenLoopSpec
	rng     *sim.Rand
	zipfCDF []float64
	issued  int64
	now     sim.Time
	phase   int
	// phaseLeft is the generated time remaining in the current phase.
	phaseLeft sim.Time
}

// NewOpenLoop validates the spec and builds the engine.
func NewOpenLoop(spec OpenLoopSpec) (*OpenLoop, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	o := &OpenLoop{
		spec:    spec,
		rng:     sim.NewRand(spec.Seed),
		zipfCDF: buildZipfCDF(spec.ZipfTheta, spec.ZipfBuckets),
	}
	if len(spec.Phases) > 0 {
		o.phaseLeft = spec.Phases[0].Duration
	}
	return o, nil
}

// rate returns the current arrival rate in requests per second.
func (o *OpenLoop) rate() float64 {
	if len(o.spec.Phases) == 0 {
		return o.spec.RatePerSec
	}
	return o.spec.RatePerSec * o.spec.Phases[o.phase].RateScale
}

// advancePhase consumes dt of generated time from the phase schedule. A gap
// longer than the remaining phase carries into the next phase without
// resampling — the rate change applies from the next arrival on.
func (o *OpenLoop) advancePhase(dt sim.Time) {
	if len(o.spec.Phases) == 0 {
		return
	}
	o.phaseLeft -= dt
	for o.phaseLeft <= 0 {
		o.phase = (o.phase + 1) % len(o.spec.Phases)
		o.phaseLeft += o.spec.Phases[o.phase].Duration
	}
}

// Next returns the next arrival, or false when the stream is exhausted. The
// rng draw order per arrival is fixed (gap, conn, tenant, direction, two
// address draws, churn), so the stream is byte-identical for a given seed
// regardless of how the consumer schedules it.
func (o *OpenLoop) Next() (Arrival, bool) {
	if o.issued >= o.spec.Ops {
		return Arrival{}, false
	}
	// Exponential inter-arrival at the current phase's rate. 1-Float64()
	// is in (0,1], so the log is finite.
	gapSec := -math.Log(1-o.rng.Float64()) / o.rate()
	gap := sim.Time(gapSec*float64(sim.Second) + 0.5)
	o.now += gap
	o.advancePhase(gap)

	a := Arrival{
		Due:  o.now,
		ID:   uint64(o.issued),
		Conn: uint32(o.rng.Int63n(int64(o.spec.Clients))),
		N:    o.spec.IOBytes,
	}
	if o.spec.Tenants > 1 {
		a.Tenant = uint16(o.rng.Int63n(int64(o.spec.Tenants)))
	}
	a.Read = o.rng.Float64() < o.spec.ReadFraction
	a.Addr = zipfAddr(o.rng, o.zipfCDF, o.spec.SpanBytes/o.spec.IOBytes, o.spec.IOBytes)
	if o.spec.CloseProb > 0 {
		a.Fin = o.rng.Float64() < o.spec.CloseProb
	}
	o.issued++
	return a, true
}

// Generated reports how many arrivals have been produced so far.
func (o *OpenLoop) Generated() int64 { return o.issued }

package workload

import (
	"strings"
	"testing"

	"snacc/internal/sim"
)

func validOpenLoop() OpenLoopSpec {
	return OpenLoopSpec{
		Clients:      1000,
		RatePerSec:   1e6,
		Ops:          500,
		ReadFraction: 0.7,
		IOBytes:      4096,
		SpanBytes:    64 * sim.MiB,
		ZipfTheta:    0.9,
		ZipfBuckets:  32,
		CloseProb:    0.1,
		Seed:         42,
	}
}

func TestOpenLoopSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*OpenLoopSpec)
		want string
	}{
		{"no clients", func(s *OpenLoopSpec) { s.Clients = 0 }, "at least one client"},
		{"too many clients", func(s *OpenLoopSpec) { s.Clients = 1 << 33 }, "32-bit"},
		{"zero rate", func(s *OpenLoopSpec) { s.RatePerSec = 0 }, "rate"},
		{"negative rate", func(s *OpenLoopSpec) { s.RatePerSec = -5 }, "rate"},
		{"nan rate", func(s *OpenLoopSpec) { s.RatePerSec = nan() }, "rate"},
		{"no ops", func(s *OpenLoopSpec) { s.Ops = 0 }, "at least one arrival"},
		{"bad read fraction", func(s *OpenLoopSpec) { s.ReadFraction = 1.5 }, "read fraction"},
		{"unaligned io", func(s *OpenLoopSpec) { s.IOBytes = 1000 }, "multiple of 512"},
		{"zero io", func(s *OpenLoopSpec) { s.IOBytes = 0 }, "multiple of 512"},
		{"tiny span", func(s *OpenLoopSpec) { s.SpanBytes = 512 }, "span"},
		{"bad theta", func(s *OpenLoopSpec) { s.ZipfTheta = 1.5 }, "zipf"},
		{"no buckets", func(s *OpenLoopSpec) { s.ZipfBuckets = 0 }, "zipf"},
		{"close prob one", func(s *OpenLoopSpec) { s.CloseProb = 1 }, "close probability"},
		{"negative close prob", func(s *OpenLoopSpec) { s.CloseProb = -0.1 }, "close probability"},
		{"too many tenants", func(s *OpenLoopSpec) { s.Tenants = 1 << 17 }, "tenant"},
		{"bad phase scale", func(s *OpenLoopSpec) {
			s.Phases = []PhaseSpec{{RateScale: 0, Duration: sim.Microsecond}}
		}, "phase 0"},
		{"bad phase duration", func(s *OpenLoopSpec) {
			s.Phases = []PhaseSpec{{RateScale: 1, Duration: 0}}
		}, "phase 0"},
	}
	for _, tc := range cases {
		spec := validOpenLoop()
		tc.mut(&spec)
		err := spec.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, err := NewOpenLoop(spec); err == nil {
			t.Errorf("%s: NewOpenLoop accepted invalid spec", tc.name)
		}
	}
	if err := validOpenLoop().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestOpenLoopStream(t *testing.T) {
	spec := validOpenLoop()
	o, err := NewOpenLoop(spec)
	if err != nil {
		t.Fatal(err)
	}
	var (
		last  sim.Time
		reads int64
		fins  int64
	)
	seen := make(map[uint64]bool)
	for i := int64(0); ; i++ {
		a, ok := o.Next()
		if !ok {
			if i != spec.Ops {
				t.Fatalf("stream ended after %d of %d arrivals", i, spec.Ops)
			}
			break
		}
		if a.Due < last {
			t.Fatalf("arrival %d due %v before predecessor %v", i, a.Due, last)
		}
		last = a.Due
		if a.ID != uint64(i) {
			t.Fatalf("arrival %d has id %d", i, a.ID)
		}
		if seen[a.ID] {
			t.Fatalf("duplicate id %d", a.ID)
		}
		seen[a.ID] = true
		if int(a.Conn) >= spec.Clients {
			t.Fatalf("conn %d outside population %d", a.Conn, spec.Clients)
		}
		if a.Tenant != 0 {
			t.Fatalf("untenanted stream stamped tenant %d", a.Tenant)
		}
		if a.N != spec.IOBytes || a.Addr%uint64(spec.IOBytes) != 0 ||
			a.Addr+uint64(a.N) > uint64(spec.SpanBytes) {
			t.Fatalf("arrival %d shape addr=%d n=%d", i, a.Addr, a.N)
		}
		if a.Read {
			reads++
		}
		if a.Fin {
			fins++
		}
	}
	if o.Generated() != spec.Ops {
		t.Fatalf("Generated() = %d, want %d", o.Generated(), spec.Ops)
	}
	frac := float64(reads) / float64(spec.Ops)
	if frac < 0.55 || frac > 0.85 {
		t.Fatalf("read fraction %.2f far from 0.7", frac)
	}
	if fins == 0 {
		t.Fatalf("close probability 0.1 produced no FINs in %d arrivals", spec.Ops)
	}
	// The mean inter-arrival gap should approximate 1/rate.
	meanGap := float64(last) / float64(spec.Ops)
	wantGap := float64(sim.Second) / spec.RatePerSec
	if meanGap < wantGap*0.7 || meanGap > wantGap*1.3 {
		t.Fatalf("mean gap %.0f ns, want about %.0f ns", meanGap, wantGap)
	}
}

// TestOpenLoopDeterminism pins the generator contract the serving tier's
// byte-identical reports rest on: the same seed replays the same stream.
func TestOpenLoopDeterminism(t *testing.T) {
	gen := func() []Arrival {
		o, err := NewOpenLoop(validOpenLoop())
		if err != nil {
			t.Fatal(err)
		}
		var out []Arrival
		for {
			a, ok := o.Next()
			if !ok {
				return out
			}
			out = append(out, a)
		}
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	other, err := NewOpenLoop(func() OpenLoopSpec { s := validOpenLoop(); s.Seed++; return s }())
	if err != nil {
		t.Fatal(err)
	}
	first, _ := other.Next()
	if first == a[0] {
		t.Fatalf("different seeds produced the same first arrival")
	}
}

// TestOpenLoopPhases checks the burst schedule: a 10x phase compresses
// inter-arrival gaps by about 10x relative to the baseline phase.
func TestOpenLoopPhases(t *testing.T) {
	spec := validOpenLoop()
	spec.Ops = 20000
	spec.CloseProb = 0
	spec.Phases = []PhaseSpec{
		{RateScale: 1, Duration: 100 * sim.Microsecond},
		{RateScale: 10, Duration: 100 * sim.Microsecond},
	}
	o, err := NewOpenLoop(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket arrivals by which phase their due time falls in.
	var counts [2]int64
	cycle := 200 * sim.Microsecond
	for {
		a, ok := o.Next()
		if !ok {
			break
		}
		if a.Due%cycle < 100*sim.Microsecond {
			counts[0]++
		} else {
			counts[1]++
		}
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("phase counts %v", counts)
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 6 || ratio > 14 {
		t.Fatalf("burst/baseline arrival ratio %.1f, want about 10", ratio)
	}
}

// TestOpenLoopTenants checks tenant stamping covers the configured range.
func TestOpenLoopTenants(t *testing.T) {
	spec := validOpenLoop()
	spec.Tenants = 4
	spec.Ops = 2000
	o, err := NewOpenLoop(spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint16]int64)
	for {
		a, ok := o.Next()
		if !ok {
			break
		}
		if int(a.Tenant) >= spec.Tenants {
			t.Fatalf("tenant %d outside range %d", a.Tenant, spec.Tenants)
		}
		seen[a.Tenant]++
	}
	if len(seen) != spec.Tenants {
		t.Fatalf("only %d of %d tenants drawn", len(seen), spec.Tenants)
	}
}

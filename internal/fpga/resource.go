// Package fpga models the FPGA device resources relevant to SNAcc: the
// Alveo U280's LUT/FF/BRAM/URAM totals and a per-component cost book from
// which the NVMe Streamer variants' utilization (the paper's Table 1) is
// estimated. The cost book is calibrated once against the paper's
// synthesis results; the estimator composes per-variant component
// inventories rather than returning table literals, so configuration
// changes (queue depth, buffer sizes) shift the estimate plausibly.
package fpga

import (
	"fmt"

	"snacc/internal/sim"
)

// Resources is a bill of FPGA resources.
type Resources struct {
	LUT  int
	FF   int
	BRAM float64 // BRAM36 equivalents (halves occur via BRAM18)
	// URAMBlocks counts UltraRAM blocks (32 KiB of data each as used by
	// the Streamer's buffer).
	URAMBlocks int
	// DRAMBytes is reserved card DRAM; HostDRAMBytes is pinned host
	// memory. Neither consumes fabric resources but both are reported in
	// Table 1.
	DRAMBytes     int64
	HostDRAMBytes int64
}

// Add accumulates r2 into r.
func (r *Resources) Add(r2 Resources) {
	r.LUT += r2.LUT
	r.FF += r2.FF
	r.BRAM += r2.BRAM
	r.URAMBlocks += r2.URAMBlocks
	r.DRAMBytes += r2.DRAMBytes
	r.HostDRAMBytes += r2.HostDRAMBytes
}

// Device is an FPGA part's resource totals.
type Device struct {
	Name       string
	LUT        int
	FF         int
	BRAM       float64
	URAMBlocks int
}

// URAMBlockBytes is the data capacity of one UltraRAM block as provisioned
// by the Streamer (4 KiB × 8 of the 288 Kb array).
const URAMBlockBytes = 32 * sim.KiB

// AlveoU280 returns the paper's evaluation device.
func AlveoU280() Device {
	return Device{
		Name:       "Alveo U280",
		LUT:        1303680,
		FF:         2607360,
		BRAM:       2016,
		URAMBlocks: 960,
	}
}

// BittwareXUPVVH returns the second platform the TaPaSCo plugin supports
// (§4.5), a VU37P-based card.
func BittwareXUPVVH() Device {
	return Device{
		Name:       "Bittware XUP-VVH",
		LUT:        1303680,
		FF:         2607360,
		BRAM:       2016,
		URAMBlocks: 960,
	}
}

// Utilization reports r as fractions of the device, matching Table 1's
// percentage columns.
type Utilization struct {
	LUT, FF, BRAM, URAM float64
}

// Utilization computes fractional usage on dev.
func (r Resources) Utilization(dev Device) Utilization {
	return Utilization{
		LUT:  float64(r.LUT) / float64(dev.LUT),
		FF:   float64(r.FF) / float64(dev.FF),
		BRAM: r.BRAM / dev.BRAM,
		URAM: float64(r.URAMBlocks) / float64(dev.URAMBlocks),
	}
}

// String formats like a Table 1 row.
func (r Resources) String() string {
	return fmt.Sprintf("LUT %d, FF %d, BRAM %.1f, URAM %d blocks, DRAM %d MiB, host %d MiB",
		r.LUT, r.FF, r.BRAM, r.URAMBlocks, r.DRAMBytes/sim.MiB, r.HostDRAMBytes/sim.MiB)
}

package fpga

import (
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// Component cost book, calibrated against the paper's Table 1 synthesis
// results for queue depth 64. Entries that scale with configuration carry
// explicit per-unit terms.
//
// Shared components (every variant):
//   - coreFSM: submission + retirement state machines, command split logic
//   - axisPort ×4: the PE-facing stream interfaces
//   - sqFIFO: the in-IP submission queue (distributed RAM)
//   - cqROB: the reorder-buffer completion queue
//
// Variant-specific:
//   - URAM: shadow-address PRP computation + URAM buffer controller
//   - On-board DRAM: PRP register file, DRAM AXI master, 4 KiB burst
//     coalescing logic (extra BRAM FIFOs, §5.4)
//   - Host DRAM: PRP register file with chunk stitching, PCIe-side AXI
//     master, smaller burst buffering
var (
	costCoreFSM = Resources{LUT: 3200, FF: 3600}
	costAXISx4  = Resources{LUT: 1000, FF: 1200}

	// sqFIFO scales with queue depth (64 × 64 B at depth 64).
	costSQPerEntry = Resources{LUT: 9, FF: 11}
	costSQBase     = Resources{LUT: 24, FF: -4}

	// cqROB scales with queue depth too.
	costCQPerEntry = Resources{LUT: 12, FF: 15}
	costCQBase     = Resources{LUT: 32, FF: 40}

	costPRPShadow = Resources{LUT: 360, FF: 488}
	costURAMCtrl  = Resources{LUT: 1300, FF: 1400}

	costPRPRegfilePerEntry = Resources{LUT: 24, FF: 28}
	costPRPRegfileBase     = Resources{LUT: 264, FF: 308}
	costDRAMAXI            = Resources{LUT: 3200, FF: 3800, BRAM: 10}
	costDRAMBurst          = Resources{LUT: 3463, FF: 4087, BRAM: 14}

	costChunkStitch = Resources{LUT: 300, FF: 200}
	costPCIeAXI     = Resources{LUT: 2800, FF: 3100, BRAM: 10}
	costHostBurst   = Resources{LUT: 1728, FF: 1473, BRAM: 7.5}
)

func scaled(per Resources, n int, base Resources) Resources {
	return Resources{
		LUT:  per.LUT*n + base.LUT,
		FF:   per.FF*n + base.FF,
		BRAM: per.BRAM*float64(n) + base.BRAM,
	}
}

// EstimateStreamer produces the Table 1 resource bill for one Streamer
// configuration.
func EstimateStreamer(cfg streamer.Config) Resources {
	var r Resources
	r.Add(costCoreFSM)
	r.Add(costAXISx4)
	r.Add(scaled(costSQPerEntry, cfg.QueueDepth, costSQBase))
	r.Add(scaled(costCQPerEntry, cfg.QueueDepth, costCQBase))
	switch cfg.Variant {
	case streamer.URAM:
		r.Add(costPRPShadow)
		r.Add(costURAMCtrl)
		r.URAMBlocks += int((cfg.ReadBufBytes + URAMBlockBytes - 1) / URAMBlockBytes)
	case streamer.OnboardDRAM:
		r.Add(scaled(costPRPRegfilePerEntry, cfg.QueueDepth, costPRPRegfileBase))
		r.Add(costDRAMAXI)
		r.Add(costDRAMBurst)
		r.DRAMBytes += cfg.ReadBufBytes + cfg.WriteBufBytes
	case streamer.HostDRAM:
		r.Add(scaled(costPRPRegfilePerEntry, cfg.QueueDepth, costPRPRegfileBase))
		r.Add(costChunkStitch)
		r.Add(costPCIeAXI)
		r.Add(costHostBurst)
		r.HostDRAMBytes += cfg.ReadBufBytes + cfg.WriteBufBytes
	}
	return r
}

// EstimateEthernet returns the rough cost of the 100 G Ethernet subsystem
// with the flow-control extension (§4.7); used by the case-study resource
// summaries, not by Table 1.
func EstimateEthernet(bufferBytes int64) Resources {
	return Resources{
		LUT:  10400,
		FF:   18800,
		BRAM: float64(bufferBytes) / float64(4*sim.KiB),
	}
}

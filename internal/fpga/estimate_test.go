package fpga

import (
	"math"
	"testing"

	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// TestTable1Exact pins the estimator to the paper's Table 1 synthesis
// numbers at the default configuration (queue depth 64).
func TestTable1Exact(t *testing.T) {
	cases := []struct {
		v    streamer.Variant
		lut  int
		ff   int
		bram float64
		uram int64 // buffer bytes
		dram int64
		host int64
	}{
		{streamer.URAM, 7260, 8388, 0, 4 * sim.MiB, 0, 0},
		{streamer.OnboardDRAM, 14063, 16487, 24, 0, 128 * sim.MiB, 0},
		{streamer.HostDRAM, 12228, 13373, 17.5, 0, 0, 128 * sim.MiB},
	}
	for _, c := range cases {
		cfg := streamer.DefaultConfig("t", 0, c.v)
		r := EstimateStreamer(cfg)
		if r.LUT != c.lut {
			t.Errorf("%s LUT = %d, Table 1: %d", c.v, r.LUT, c.lut)
		}
		if r.FF != c.ff {
			t.Errorf("%s FF = %d, Table 1: %d", c.v, r.FF, c.ff)
		}
		if math.Abs(r.BRAM-c.bram) > 1e-9 {
			t.Errorf("%s BRAM = %.1f, Table 1: %.1f", c.v, r.BRAM, c.bram)
		}
		if got := int64(r.URAMBlocks) * URAMBlockBytes; got != c.uram {
			t.Errorf("%s URAM bytes = %d, Table 1: %d", c.v, got, c.uram)
		}
		if r.DRAMBytes != c.dram {
			t.Errorf("%s DRAM = %d, Table 1: %d", c.v, r.DRAMBytes, c.dram)
		}
		if r.HostDRAMBytes != c.host {
			t.Errorf("%s host DRAM = %d, Table 1: %d", c.v, r.HostDRAMBytes, c.host)
		}
	}
}

// TestTable1Percentages checks the percentage columns against the paper
// (LUT 0.6/1.1/0.9 %, FF 0.3/0.6/0.5 %, BRAM –/1.2/0.9 %, URAM 13.3 %).
func TestTable1Percentages(t *testing.T) {
	dev := AlveoU280()
	type pct struct{ lut, ff, bram, uram float64 }
	want := map[streamer.Variant]pct{
		streamer.URAM:        {0.6, 0.3, 0, 13.3},
		streamer.OnboardDRAM: {1.1, 0.6, 1.2, 0},
		streamer.HostDRAM:    {0.9, 0.5, 0.9, 0},
	}
	for v, w := range want {
		u := EstimateStreamer(streamer.DefaultConfig("t", 0, v)).Utilization(dev)
		check := func(name string, got, wantPct float64) {
			if math.Abs(got*100-wantPct) > 0.07 {
				t.Errorf("%s %s = %.2f%%, Table 1: %.1f%%", v, name, got*100, wantPct)
			}
		}
		check("LUT", u.LUT, w.lut)
		check("FF", u.FF, w.ff)
		check("BRAM", u.BRAM, w.bram)
		check("URAM", u.URAM, w.uram)
	}
}

// TestEstimateScalesWithQueueDepth: doubling the queue depth must grow the
// FIFO/ROB/register-file contributions, never shrink anything.
func TestEstimateScalesWithQueueDepth(t *testing.T) {
	for _, v := range []streamer.Variant{streamer.URAM, streamer.OnboardDRAM, streamer.HostDRAM} {
		base := streamer.DefaultConfig("t", 0, v)
		big := base
		big.QueueDepth = 128
		r1, r2 := EstimateStreamer(base), EstimateStreamer(big)
		if !(r2.LUT > r1.LUT && r2.FF > r1.FF) {
			t.Errorf("%s: depth 128 estimate (%v) not larger than depth 64 (%v)", v, r2, r1)
		}
	}
}

func TestURAMBlocksRoundUp(t *testing.T) {
	cfg := streamer.DefaultConfig("t", 0, streamer.URAM)
	r := EstimateStreamer(cfg)
	if r.URAMBlocks != 128 {
		t.Errorf("4 MiB buffer = %d URAM blocks, want 128", r.URAMBlocks)
	}
}

func TestResourcesAddAndString(t *testing.T) {
	var r Resources
	r.Add(Resources{LUT: 10, FF: 20, BRAM: 1.5, URAMBlocks: 2, DRAMBytes: sim.MiB})
	r.Add(Resources{LUT: 5, FF: 5, BRAM: 0.5, HostDRAMBytes: 2 * sim.MiB})
	if r.LUT != 15 || r.FF != 25 || r.BRAM != 2 || r.URAMBlocks != 2 {
		t.Errorf("Add accumulated wrong: %+v", r)
	}
	if r.String() == "" {
		t.Error("String empty")
	}
}

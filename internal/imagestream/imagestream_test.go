package imagestream

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesPaperVolume(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	// §6.2: 16384 images totalling 147 GB.
	if g.Config().Count != 16384 {
		t.Fatalf("count = %d", g.Config().Count)
	}
	total := g.TotalBytes()
	if total < 146e9 || total > 148e9 {
		t.Fatalf("total stream = %.1f GB, paper: 147 GB", float64(total)/1e9)
	}
	per := g.ImageBytes()
	if per < 8.9e6 || per > 9.1e6 {
		t.Fatalf("per-image = %.2f MB, want ~9", float64(per)/1e6)
	}
}

func TestGeneratorSequence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Count = 5
	g := NewGenerator(cfg)
	for i := 0; i < 5; i++ {
		im, ok := g.Next()
		if !ok || im.ID != i {
			t.Fatalf("image %d: ok=%v id=%d", i, ok, im.ID)
		}
	}
	if _, ok := g.Next(); ok {
		t.Fatal("generator did not terminate")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	im := Image{ID: 3, Width: 64, Height: 64, Channels: 3}
	a := make([]byte, im.Bytes())
	b := make([]byte, im.Bytes())
	Synthesize(im, 7, a)
	Synthesize(im, 7, b)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different pixels")
	}
	c := make([]byte, im.Bytes())
	Synthesize(im, 8, c)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical pixels")
	}
}

func TestSynthesizeDiffersPerImage(t *testing.T) {
	a := make([]byte, 1024)
	b := make([]byte, 1024)
	Synthesize(Image{ID: 1, Width: 16, Height: 16, Channels: 4}, 7, a)
	Synthesize(Image{ID: 2, Width: 16, Height: 16, Channels: 4}, 7, b)
	if bytes.Equal(a, b) {
		t.Fatal("different images produced identical pixels")
	}
}

func TestBytesProperty(t *testing.T) {
	f := func(w, h, c uint8) bool {
		im := Image{Width: int(w) + 1, Height: int(h) + 1, Channels: int(c)%4 + 1}
		return im.Bytes() == int64(im.Width)*int64(im.Height)*int64(im.Channels)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-size generator accepted")
		}
	}()
	NewGenerator(Config{})
}

// Package imagestream provides the synthetic image source for the §6 case
// study: a deterministic stream standing in for the paper's second FPGA
// transmitting camera frames ("We assume that images are captured at a
// higher resolution than our classification accelerator can handle").
//
// The paper streams 16384 images totalling 147 GB — just under 9 MB per
// frame; the default geometry reproduces that size.
package imagestream

import "snacc/internal/sim"

// Image describes one frame in flight.
type Image struct {
	ID       int
	Width    int
	Height   int
	Channels int
}

// Bytes returns the raw frame size.
func (im Image) Bytes() int64 {
	return int64(im.Width) * int64(im.Height) * int64(im.Channels)
}

// Config describes the source.
type Config struct {
	Width, Height, Channels int
	Count                   int
	// Seed drives any content synthesis (functional runs).
	Seed uint64
}

// DefaultConfig reproduces the paper's geometry: 16384 frames of
// 2048×1461×3 ≈ 8.98 MB each ≈ 147 GB total.
func DefaultConfig() Config {
	return Config{Width: 2048, Height: 1461, Channels: 3, Count: 16384, Seed: 0x51ACC}
}

// Generator yields the image sequence.
type Generator struct {
	cfg  Config
	next int
}

// NewGenerator builds a source.
func NewGenerator(cfg Config) *Generator {
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.Channels <= 0 || cfg.Count <= 0 {
		panic("imagestream: invalid generator config")
	}
	return &Generator{cfg: cfg}
}

// Config returns the generator configuration.
func (g *Generator) Config() Config { return g.cfg }

// ImageBytes returns the per-frame size.
func (g *Generator) ImageBytes() int64 {
	return Image{Width: g.cfg.Width, Height: g.cfg.Height, Channels: g.cfg.Channels}.Bytes()
}

// TotalBytes returns the whole stream's payload volume.
func (g *Generator) TotalBytes() int64 { return g.ImageBytes() * int64(g.cfg.Count) }

// Next returns the next image, or false when the stream ends.
func (g *Generator) Next() (Image, bool) {
	if g.next >= g.cfg.Count {
		return Image{}, false
	}
	im := Image{
		ID:       g.next,
		Width:    g.cfg.Width,
		Height:   g.cfg.Height,
		Channels: g.cfg.Channels,
	}
	g.next++
	return im, true
}

// Synthesize fills buf with deterministic pixel data for functional runs.
func Synthesize(im Image, seed uint64, buf []byte) {
	r := sim.NewRand(seed ^ uint64(im.ID)*0x9E37)
	for i := range buf {
		if i%64 == 0 {
			v := r.Uint64()
			for j := 0; j < 8 && i+j < len(buf); j++ {
				buf[i+j] = byte(v >> (8 * j))
			}
			continue
		}
		if i%64 < 8 {
			continue
		}
		buf[i] = byte(i * im.ID)
	}
}

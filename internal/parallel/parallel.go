// Package parallel is the deterministic experiment engine behind the
// repository's sweep grids: a fork-join worker pool that shards independent
// jobs across GOMAXPROCS goroutines while guaranteeing bit-identical output
// ordering versus a serial run.
//
// Every figure, ablation and case-study runner in internal/bench builds a
// private *sim.Kernel per measurement, so the rigs of one sweep share no
// mutable state and are safe to run concurrently. The engine exploits that:
// jobs are indexed, results are collected by index, and all per-rig
// randomness flows through explicitly seeded PRNGs inside the rig itself —
// so the assembled result slice is byte-identical whether the grid ran on
// one worker or sixteen. The determinism tests in internal/bench assert
// exactly that.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Engine is a fork-join scheduler with a fixed worker budget. The zero
// value is not usable; create one with New. Engines are stateless between
// calls and safe for concurrent use.
type Engine struct {
	workers int
}

// New returns an engine running at most workers jobs concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0) — "as many as the hardware
// allows".
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers}
}

// Workers returns the engine's concurrency budget.
func (e *Engine) Workers() int { return e.workers }

// Run executes job(0) … job(n-1), returning when all have completed. With
// one worker (or one job) it runs inline on the caller's goroutine — the
// exact serial code path, with no goroutines involved — so `-j 1` is a true
// serial baseline. Otherwise min(workers, n) goroutines pull indices from a
// shared counter. If any job panics, Run re-panics the first panic value on
// the calling goroutine after the remaining workers drain, mirroring the
// serial failure mode.
func (e *Engine) Run(n int, job func(i int)) {
	if n <= 0 {
		return
	}
	if e.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	w := e.workers
	if w > n {
		w = n
	}
	var (
		next     int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Keep the first panic; later ones lose the race.
					panicked.CompareAndSwap(nil, fmt.Sprintf("parallel: job panicked: %v", r))
				}
			}()
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(n) {
					return
				}
				job(int(i))
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
}

// Map runs job for every index and returns the results in index order —
// the parallel equivalent of an append loop, with identical ordering.
func Map[T any](e *Engine, n int, job func(i int) T) []T {
	out := make([]T, n)
	e.Run(n, func(i int) { out[i] = job(i) })
	return out
}

// MapSlice maps job over the elements of in, preserving order.
func MapSlice[S, T any](e *Engine, in []S, job func(S) T) []T {
	return Map(e, len(in), func(i int) T { return job(in[i]) })
}

// Do runs a heterogeneous list of jobs to completion.
func Do(e *Engine, jobs ...func()) {
	e.Run(len(jobs), func(i int) { jobs[i]() })
}

package parallel

import (
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"snacc/internal/sim"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		e := New(workers)
		got := Map(e, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: index %d holds %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapMatchesSerial(t *testing.T) {
	// A Map over simulation rigs must produce byte-identical results at any
	// worker count: each job owns a private kernel and a private PRNG.
	run := func(workers int) []sim.Time {
		e := New(workers)
		return Map(e, 16, func(i int) sim.Time {
			k := sim.NewKernel()
			rng := sim.NewRand(uint64(i + 1))
			var last sim.Time
			for j := 0; j < 100; j++ {
				k.After(sim.Time(rng.Int63n(1000)+1), func() { last = k.Now() })
			}
			k.Run(0)
			return last
		})
	}
	serial := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d diverged from serial: %v vs %v", w, got, serial)
		}
	}
}

func TestRunCountsEveryJobOnce(t *testing.T) {
	e := New(8)
	var hits [1000]int32
	e.Run(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("job %d ran %d times", i, h)
		}
	}
}

func TestWorkerBudget(t *testing.T) {
	e := New(3)
	var live, peak int32
	e.Run(64, func(i int) {
		n := atomic.AddInt32(&live, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		atomic.AddInt32(&live, -1)
	})
	if peak > 3 {
		t.Fatalf("observed %d concurrent jobs, budget is 3", peak)
	}
}

func TestPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := New(workers)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if workers > 1 && !strings.Contains(r.(string), "boom") {
					t.Fatalf("workers=%d: panic lost its message: %v", workers, r)
				}
			}()
			e.Run(8, func(i int) {
				if i == 5 {
					panic("boom")
				}
			})
		}()
	}
}

func TestDefaults(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3).Workers() = %d", got)
	}
	New(2).Run(0, func(int) { t.Fatal("job ran for n=0") })
	Do(New(4)) // empty job list is a no-op
}

func TestMapSliceAndDo(t *testing.T) {
	e := New(4)
	got := MapSlice(e, []string{"a", "bb", "ccc"}, func(s string) int { return len(s) })
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("MapSlice = %v", got)
	}
	var a, b int32
	Do(e,
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
	)
	if a != 1 || b != 2 {
		t.Fatalf("Do did not run all jobs: a=%d b=%d", a, b)
	}
}

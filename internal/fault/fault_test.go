package fault

import (
	"testing"

	"snacc/internal/nvme"
	"snacc/internal/sim"
)

func ioCmd(op uint8, slba uint64) nvme.Command {
	c := nvme.Command{Opcode: op, NSID: 1}
	c.SetSLBA(slba)
	return c
}

func TestNthRuleFiresEveryNth(t *testing.T) {
	in := NewInjector(1)
	r := in.Add(Rule{Name: "every-3rd", Kind: StatusError, Opcode: nvme.OpRead,
		Nth: 3, Status: nvme.StatusInternalError})
	for i := 1; i <= 12; i++ {
		st := in.ExecStatus(ioCmd(nvme.OpRead, uint64(i)))
		want := uint16(nvme.StatusSuccess)
		if i%3 == 0 {
			want = nvme.StatusInternalError
		}
		if st != want {
			t.Errorf("command %d: status %#x, want %#x", i, st, want)
		}
	}
	if r.Seen() != 12 || r.Fired() != 4 {
		t.Errorf("seen/fired = %d/%d, want 12/4", r.Seen(), r.Fired())
	}
	if in.Injected() != 4 || in.InjectedByKind(StatusError) != 4 {
		t.Errorf("injected = %d (by kind %d), want 4", in.Injected(), in.InjectedByKind(StatusError))
	}
}

func TestOpcodeAndLBAFilters(t *testing.T) {
	in := NewInjector(1)
	in.Add(Rule{Name: "reads-100-199", Kind: StatusError, Opcode: nvme.OpRead,
		LBAFirst: 100, LBALast: 199, Nth: 1, Status: nvme.StatusLBAOutOfRange})
	cases := []struct {
		cmd  nvme.Command
		want uint16
	}{
		{ioCmd(nvme.OpRead, 150), nvme.StatusLBAOutOfRange},
		{ioCmd(nvme.OpRead, 100), nvme.StatusLBAOutOfRange},
		{ioCmd(nvme.OpRead, 199), nvme.StatusLBAOutOfRange},
		{ioCmd(nvme.OpRead, 99), nvme.StatusSuccess},
		{ioCmd(nvme.OpRead, 200), nvme.StatusSuccess},
		{ioCmd(nvme.OpWrite, 150), nvme.StatusSuccess},
	}
	for i, tc := range cases {
		if got := in.ExecStatus(tc.cmd); got != tc.want {
			t.Errorf("case %d: status %#x, want %#x", i, got, tc.want)
		}
	}
}

func TestOpAnyMatchesAllOpcodes(t *testing.T) {
	in := NewInjector(1)
	in.Add(Rule{Name: "everything", Kind: StatusError, Opcode: OpAny,
		Nth: 1, Status: nvme.StatusInternalError})
	for _, op := range []uint8{nvme.OpRead, nvme.OpWrite, nvme.OpFlush} {
		if got := in.ExecStatus(ioCmd(op, 0)); got != nvme.StatusInternalError {
			t.Errorf("opcode %#x: status %#x, want injected error", op, got)
		}
	}
}

func TestCountCapsFires(t *testing.T) {
	in := NewInjector(1)
	r := in.Add(Rule{Name: "twice-only", Kind: StatusError, Opcode: nvme.OpRead,
		Nth: 1, Count: 2, Status: nvme.StatusInternalError})
	fired := 0
	for i := 0; i < 10; i++ {
		if in.ExecStatus(ioCmd(nvme.OpRead, uint64(i))) != nvme.StatusSuccess {
			fired++
		}
	}
	if fired != 2 || r.Fired() != 2 {
		t.Errorf("fired %d times (rule says %d), want 2", fired, r.Fired())
	}
}

// TestProbabilityReplaysWithSeed pins determinism: the same seed must yield
// the same per-command decisions, and the empirical rate must track the
// configured probability.
func TestProbabilityReplaysWithSeed(t *testing.T) {
	const n = 4000
	decisions := func(seed uint64) []bool {
		in := NewInjector(seed)
		in.Add(Rule{Name: "p10", Kind: StatusError, Opcode: nvme.OpRead,
			Probability: 0.1, Status: nvme.StatusInternalError})
		out := make([]bool, n)
		for i := range out {
			out[i] = in.ExecStatus(ioCmd(nvme.OpRead, uint64(i))) != nvme.StatusSuccess
		}
		return out
	}
	a, b := decisions(42), decisions(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged across identical seeds", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired < n/20 || fired > n/5 {
		t.Errorf("p=0.1 fired %d/%d times, far from expectation", fired, n)
	}
	c := decisions(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical decision streams")
	}
}

func TestCQEFateRules(t *testing.T) {
	in := NewInjector(1)
	in.Add(Rule{Name: "drop-2nd", Kind: DropCQE, Opcode: nvme.OpRead, Nth: 2})
	in.Add(Rule{Name: "late-writes", Kind: DelayCQE, Opcode: nvme.OpWrite,
		Nth: 1, Delay: 3 * sim.Microsecond})
	if f := in.CQEFate(ioCmd(nvme.OpRead, 0), nvme.StatusSuccess); f.Drop || f.Delay != 0 {
		t.Errorf("1st read fate = %+v, want pass-through", f)
	}
	if f := in.CQEFate(ioCmd(nvme.OpRead, 1), nvme.StatusSuccess); !f.Drop {
		t.Errorf("2nd read fate = %+v, want drop", f)
	}
	if f := in.CQEFate(ioCmd(nvme.OpWrite, 0), nvme.StatusSuccess); f.Drop || f.Delay != 3*sim.Microsecond {
		t.Errorf("write fate = %+v, want 3µs delay", f)
	}
	if in.InjectedByKind(DropCQE) != 1 || in.InjectedByKind(DelayCQE) != 1 {
		t.Errorf("by-kind counts = %d/%d, want 1/1",
			in.InjectedByKind(DropCQE), in.InjectedByKind(DelayCQE))
	}
}

func TestCtrlFateRules(t *testing.T) {
	in := NewInjector(1)
	in.Add(Rule{Name: "crash-3rd", Kind: CrashCtrl, Opcode: OpAny, Nth: 3, Count: 1})
	in.Add(Rule{Name: "hang-5th", Kind: HangCtrl, Opcode: OpAny, Nth: 5, Count: 1,
		Delay: 2 * sim.Millisecond})
	var got []nvme.CtrlFault
	for i := 0; i < 6; i++ {
		got = append(got, in.CtrlFate(ioCmd(nvme.OpRead, uint64(i))))
	}
	for i, f := range got {
		wantCrash := i == 2
		// The crash firing at command 2 short-circuits the hook, so the
		// hang rule never sees that command: its 5th match is command 5.
		wantHang := sim.Time(0)
		if i == 5 {
			wantHang = 2 * sim.Millisecond
		}
		if f.Crash != wantCrash || f.Hang != wantHang || f.Remove {
			t.Errorf("command %d fate = %+v", i, f)
		}
	}
	if in.InjectedByKind(CrashCtrl) != 1 || in.InjectedByKind(HangCtrl) != 1 {
		t.Errorf("by-kind = %d/%d, want 1/1",
			in.InjectedByKind(CrashCtrl), in.InjectedByKind(HangCtrl))
	}
}

func TestCtrlFateRemoveOutranksCrash(t *testing.T) {
	in := NewInjector(1)
	in.Add(Rule{Name: "crash", Kind: CrashCtrl, Opcode: OpAny, Nth: 1})
	in.Add(Rule{Name: "remove", Kind: RemoveCtrl, Opcode: OpAny, Nth: 1})
	if f := in.CtrlFate(ioCmd(nvme.OpRead, 0)); !f.Remove || f.Crash {
		t.Errorf("fate = %+v, want remove to outrank crash", f)
	}
}

// TestFirstFiringRuleWins: rules are evaluated in registration order and at
// most one fault fires per command per hook.
func TestFirstFiringRuleWins(t *testing.T) {
	in := NewInjector(1)
	first := in.Add(Rule{Name: "first", Kind: StatusError, Opcode: nvme.OpRead,
		Nth: 1, Status: nvme.StatusInternalError})
	second := in.Add(Rule{Name: "second", Kind: StatusError, Opcode: nvme.OpRead,
		Nth: 1, Status: nvme.StatusLBAOutOfRange})
	if got := in.ExecStatus(ioCmd(nvme.OpRead, 0)); got != nvme.StatusInternalError {
		t.Errorf("status %#x, want the first rule's %#x", got, nvme.StatusInternalError)
	}
	if first.Fired() != 1 || second.Fired() != 0 {
		t.Errorf("fired = %d/%d, want 1/0", first.Fired(), second.Fired())
	}
	if in.Injected() != 1 {
		t.Errorf("injected = %d, want 1", in.Injected())
	}
}

package fault

import (
	"testing"

	"snacc/internal/sim"
)

func TestLinkInjectorWindow(t *testing.T) {
	li := NewLinkInjector(1)
	r := li.Add(LinkRule{Name: "partition", Drop: true,
		From: 1000, Until: 2000})

	if f := li.FrameFate(999); f.Drop || f.Delay != 0 {
		t.Fatalf("frame before window affected: %+v", f)
	}
	if f := li.FrameFate(1000); !f.Drop {
		t.Fatalf("frame at window start passed")
	}
	if f := li.FrameFate(1999); !f.Drop {
		t.Fatalf("frame inside window passed")
	}
	if f := li.FrameFate(2000); f.Drop {
		t.Fatalf("frame at window end dropped")
	}
	if r.Seen() != 2 || r.Fired() != 2 {
		t.Fatalf("rule counters = seen %d fired %d, want 2/2", r.Seen(), r.Fired())
	}
	if li.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", li.Dropped())
	}
}

func TestLinkInjectorDelayNthCount(t *testing.T) {
	li := NewLinkInjector(1)
	li.Add(LinkRule{Name: "congestion", Delay: 5 * sim.Microsecond,
		Nth: 2, Count: 2})

	var delays []sim.Time
	for i := 0; i < 8; i++ {
		delays = append(delays, li.FrameFate(sim.Time(i)).Delay)
	}
	want := []sim.Time{0, 5 * sim.Microsecond, 0, 5 * sim.Microsecond, 0, 0, 0, 0}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("frame %d delay = %v, want %v (all: %v)", i, delays[i], want[i], delays)
		}
	}
	if li.Delayed() != 2 {
		t.Fatalf("Delayed() = %d, want 2", li.Delayed())
	}
}

func TestLinkInjectorProbabilityDeterministic(t *testing.T) {
	fates := func() []bool {
		li := NewLinkInjector(42)
		li.Add(LinkRule{Name: "lossy", Drop: true, Probability: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, li.FrameFate(sim.Time(i)).Drop)
		}
		return out
	}
	a, b := fates(), fates()
	var hits int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d fate diverged across identical seeds", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("p=0.5 rule fired %d/%d times — PRNG not exercised", hits, len(a))
	}
}

func TestLinkInjectorNilSafe(t *testing.T) {
	var li *LinkInjector
	if f := li.FrameFate(0); f.Drop || f.Delay != 0 {
		t.Fatalf("nil injector affected a frame: %+v", f)
	}
	if li.Dropped() != 0 || li.Delayed() != 0 {
		t.Fatalf("nil injector counters non-zero")
	}
}

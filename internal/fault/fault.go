// Package fault is a deterministic, seed-driven fault injector for the
// simulated NVMe device. Rules match commands by opcode and LBA range and
// fire either probabilistically (driven by a seeded PRNG consumed in
// simulation order, so runs replay exactly) or on every Nth match. Three
// fault kinds cover the recovery paths the Streamer must survive: error
// completions, lost completion entries, and late completion entries.
//
// The injector attaches to a device through two hooks: the pre-execution
// fault injector (status faults) and the completion interceptor (CQE
// faults). Everything downstream — the Streamer's watchdog, retry, and
// abort machinery — sees only ordinary NVMe protocol traffic.
package fault

import (
	"fmt"

	"snacc/internal/nvme"
	"snacc/internal/sim"
)

// OpAny matches every opcode in a Rule.
const OpAny uint8 = 0xFF

// Kind selects what a firing rule does to the matched command.
type Kind uint8

const (
	// StatusError completes the command with Rule.Status instead of
	// executing it; the media is never touched.
	StatusError Kind = iota
	// DropCQE executes the command but loses its completion entry — the
	// reorder-buffer-head hang only a command-deadline watchdog can break.
	DropCQE
	// DelayCQE posts the completion entry Rule.Delay late. Delays longer
	// than the host's command deadline race the watchdog and provoke
	// stale completions for already-resubmitted commands.
	DelayCQE
	// CrashCtrl latches the controller fatal status (CSTS.CFS) at the
	// matched command: the device stops fetching SQEs and posting CQEs
	// until the host issues a controller reset.
	CrashCtrl
	// HangCtrl freezes the command engine for Rule.Delay at the matched
	// command, then revives it — completions park rather than vanish.
	HangCtrl
	// RemoveCtrl surprise-removes the controller at the matched command:
	// register reads float all-1s and no reset brings it back.
	RemoveCtrl
	numKinds
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case StatusError:
		return "status-error"
	case DropCQE:
		return "drop-cqe"
	case DelayCQE:
		return "delay-cqe"
	case CrashCtrl:
		return "crash-ctrl"
	case HangCtrl:
		return "hang-ctrl"
	case RemoveCtrl:
		return "remove-ctrl"
	default:
		return fmt.Sprintf("fault.Kind(%d)", uint8(k))
	}
}

// Rule describes one fault source. A command matches when its opcode and
// starting LBA fall inside the rule's filters; a matching rule fires every
// Nth match (Nth > 0) or with probability Probability per match, bounded by
// Count total fires.
type Rule struct {
	// Name labels the rule in stats and logs.
	Name string
	Kind Kind
	// Opcode restricts matching to one I/O opcode; OpAny matches all.
	Opcode uint8
	// LBAFirst/LBALast bound the matched starting-LBA range, inclusive.
	// Leaving both zero matches every address.
	LBAFirst, LBALast uint64
	// Nth fires on every Nth matching command (1 = every match). When 0,
	// Probability decides.
	Nth int64
	// Probability fires each matching command with this chance, drawn
	// from the injector's seeded PRNG.
	Probability float64
	// Count caps total fires; 0 is unbounded.
	Count int64
	// Status is the completion status a StatusError rule injects.
	Status uint16
	// Delay is the extra completion latency a DelayCQE rule injects.
	Delay sim.Time

	seen, fired int64
}

// Seen returns how many commands matched the rule's filters.
func (r *Rule) Seen() int64 { return r.seen }

// Fired returns how many faults the rule injected.
func (r *Rule) Fired() int64 { return r.fired }

// Injector evaluates rules against the device's command stream.
type Injector struct {
	rng      *sim.Rand
	rules    []*Rule
	injected int64
	byKind   [numKinds]int64
}

// NewInjector builds an injector whose probabilistic decisions replay
// exactly for a given seed.
func NewInjector(seed uint64) *Injector {
	return &Injector{rng: sim.NewRand(seed)}
}

// Add registers a rule — rules are evaluated in registration order and the
// first rule that fires wins — and returns the stored copy for stats
// inspection.
func (in *Injector) Add(r Rule) *Rule {
	if r.Kind >= numKinds {
		panic(fmt.Sprintf("fault: unknown kind %d", r.Kind))
	}
	if r.LBAFirst == 0 && r.LBALast == 0 {
		r.LBALast = ^uint64(0)
	}
	rp := &r
	in.rules = append(in.rules, rp)
	return rp
}

// Injected returns the total faults fired across all rules.
func (in *Injector) Injected() int64 { return in.injected }

// InjectedByKind returns the faults fired of one kind.
func (in *Injector) InjectedByKind(k Kind) int64 { return in.byKind[k] }

// Attach wires the injector into a device: status faults intercept commands
// before execution, CQE faults intercept completions before posting, and
// controller faults crash/hang/remove the whole device at a chosen command.
func (in *Injector) Attach(dev *nvme.Device) {
	dev.SetFaultInjector(in.ExecStatus)
	dev.SetCQEInterceptor(in.CQEFate)
	dev.SetCtrlFaultInjector(in.CtrlFate)
}

// ExecStatus is the pre-execution hook: the first firing StatusError rule
// decides the command's completion status.
func (in *Injector) ExecStatus(cmd nvme.Command) uint16 {
	if r := in.fire(cmd, StatusError); r != nil {
		return r.Status
	}
	return nvme.StatusSuccess
}

// CQEFate is the completion hook: DropCQE and DelayCQE rules decide whether
// the completion entry is posted, lost, or posted late.
func (in *Injector) CQEFate(cmd nvme.Command, status uint16) nvme.CQEFate {
	if in.fire(cmd, DropCQE) != nil {
		return nvme.CQEFate{Drop: true}
	}
	if r := in.fire(cmd, DelayCQE); r != nil {
		return nvme.CQEFate{Delay: r.Delay}
	}
	return nvme.CQEFate{}
}

// CtrlFate is the controller-level hook, consulted once per I/O command as
// it reaches completion (the device counts completions, not execution
// starts, so a recurring crash rule always lets N-1 commands retire per
// episode): RemoveCtrl outranks CrashCtrl outranks HangCtrl, since a
// removed controller can do nothing else.
func (in *Injector) CtrlFate(cmd nvme.Command) nvme.CtrlFault {
	if in.fire(cmd, RemoveCtrl) != nil {
		return nvme.CtrlFault{Remove: true}
	}
	if in.fire(cmd, CrashCtrl) != nil {
		return nvme.CtrlFault{Crash: true}
	}
	if r := in.fire(cmd, HangCtrl); r != nil {
		return nvme.CtrlFault{Hang: r.Delay}
	}
	return nvme.CtrlFault{}
}

// fire returns the first rule of kind k that matches cmd and fires on it.
func (in *Injector) fire(cmd nvme.Command, k Kind) *Rule {
	for _, r := range in.rules {
		if r.Kind != k || !r.matches(cmd) {
			continue
		}
		r.seen++
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		hit := false
		switch {
		case r.Nth > 0:
			hit = r.seen%r.Nth == 0
		case r.Probability > 0:
			hit = in.rng.Float64() < r.Probability
		}
		if !hit {
			continue
		}
		r.fired++
		in.injected++
		in.byKind[k]++
		return r
	}
	return nil
}

func (r *Rule) matches(cmd nvme.Command) bool {
	if r.Opcode != OpAny && cmd.Opcode != r.Opcode {
		return false
	}
	slba := cmd.SLBA()
	return slba >= r.LBAFirst && slba <= r.LBALast
}

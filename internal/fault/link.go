package fault

import "snacc/internal/sim"

// LinkRule describes one network-level fault source on a simulated link: a
// partition window that drops frames, or a degradation window that delays
// them. Rules are consulted per received frame at one receive site; a rule
// matches while the simulation clock is inside [From, Until) (Until 0 =
// forever) and then fires every Nth match, with probability Probability per
// match, or — when neither is set — on every match, bounded by Count total
// fires.
type LinkRule struct {
	// Name labels the rule in stats and logs.
	Name string
	// Drop discards the matched frame; otherwise the frame is delivered
	// Delay late.
	Drop bool
	// Delay is the extra delivery latency for a non-drop rule.
	Delay sim.Time
	// From/Until bound the active window on the simulation clock,
	// inclusive-exclusive. Until 0 leaves the rule active forever.
	From, Until sim.Time
	// Nth fires on every Nth matching frame (1 = every match). When 0,
	// Probability decides; when both are 0 the rule fires on every match.
	Nth int64
	// Probability fires each matching frame with this chance, drawn from
	// the injector's seeded PRNG.
	Probability float64
	// Count caps total fires; 0 is unbounded.
	Count int64

	seen, fired int64
}

// Seen returns how many frames fell inside the rule's window.
func (r *LinkRule) Seen() int64 { return r.seen }

// Fired returns how many frames the rule dropped or delayed.
func (r *LinkRule) Fired() int64 { return r.fired }

// LinkFate is the verdict for one received frame.
type LinkFate struct {
	// Drop discards the frame as if the cable ate it.
	Drop bool
	// Delay postpones processing of the frame (0 when the frame passed).
	Delay sim.Time
}

// LinkInjector evaluates LinkRules against one receive site of a simulated
// link. Each instance must be consulted from exactly one shard domain — its
// PRNG and counters are consumed in that domain's event order, which keeps
// sharded runs byte-identical; model a bidirectional partition with one
// injector per direction, each owned by the receiving side.
type LinkInjector struct {
	rng     *sim.Rand
	rules   []*LinkRule
	dropped int64
	delayed int64
}

// NewLinkInjector builds an injector whose probabilistic decisions replay
// exactly for a given seed.
func NewLinkInjector(seed uint64) *LinkInjector {
	if seed == 0 {
		seed = 1
	}
	return &LinkInjector{rng: sim.NewRand(seed)}
}

// Add registers a rule — rules are evaluated in registration order and the
// first rule that fires wins — and returns the stored copy for stats
// inspection.
func (li *LinkInjector) Add(r LinkRule) *LinkRule {
	rp := &r
	li.rules = append(li.rules, rp)
	return rp
}

// FrameFate decides what happens to one frame received at simulation time
// now. A nil injector passes everything.
func (li *LinkInjector) FrameFate(now sim.Time) LinkFate {
	if li == nil {
		return LinkFate{}
	}
	for _, r := range li.rules {
		if now < r.From || (r.Until > 0 && now >= r.Until) {
			continue
		}
		r.seen++
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		hit := false
		switch {
		case r.Nth > 0:
			hit = r.seen%r.Nth == 0
		case r.Probability > 0:
			hit = li.rng.Float64() < r.Probability
		default:
			hit = true
		}
		if !hit {
			continue
		}
		r.fired++
		if r.Drop {
			li.dropped++
			return LinkFate{Drop: true}
		}
		li.delayed++
		return LinkFate{Delay: r.Delay}
	}
	return LinkFate{}
}

// Dropped returns the total frames discarded.
func (li *LinkInjector) Dropped() int64 {
	if li == nil {
		return 0
	}
	return li.dropped
}

// Delayed returns the total frames delivered late.
func (li *LinkInjector) Delayed() int64 {
	if li == nil {
		return 0
	}
	return li.delayed
}

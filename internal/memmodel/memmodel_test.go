package memmodel

import (
	"bytes"
	"testing"
	"testing/quick"

	"snacc/internal/sim"
)

func TestURAMBandwidthPerPort(t *testing.T) {
	k := sim.NewKernel()
	u := NewURAM(k, DefaultURAMConfig())
	const total = 2 * sim.MiB
	var done sim.Time
	k.Spawn("reader", func(p *sim.Proc) {
		ReadB(p, u, 0, total, nil)
		done = p.Now()
	})
	k.Run(0)
	bw := float64(total) / done.Seconds()
	if bw < 18e9 || bw > 19.5e9 {
		t.Fatalf("URAM read BW = %.2f GB/s, want ~19.2", bw/1e9)
	}
}

func TestURAMDualPortIndependence(t *testing.T) {
	// Reads and writes on separate ports must not serialize against each
	// other: concurrent 1 MiB in each direction should take about one
	// port-time, not two.
	k := sim.NewKernel()
	u := NewURAM(k, DefaultURAMConfig())
	const n = sim.MiB
	var readDone, writeDone sim.Time
	k.Spawn("reader", func(p *sim.Proc) { ReadB(p, u, 0, n, nil); readDone = p.Now() })
	k.Spawn("writer", func(p *sim.Proc) { WriteB(p, u, uint64(2*sim.MiB), n, nil); writeDone = p.Now() })
	k.Run(0)
	onePort := sim.TransferTime(n, 19.2e9)
	if readDone > onePort*5/4 || writeDone > onePort*5/4 {
		t.Fatalf("dual-port ops serialized: read %v write %v, one-port time %v", readDone, writeDone, onePort)
	}
}

func TestURAMOutOfBoundsPanics(t *testing.T) {
	k := sim.NewKernel()
	u := NewURAM(k, DefaultURAMConfig())
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds URAM access did not panic")
		}
	}()
	u.ReadAccess(uint64(u.Size())-100, 200, nil, func() {})
}

func TestURAMContentRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	u := NewURAM(k, DefaultURAMConfig())
	want := []byte("streaming network to storage")
	got := make([]byte, len(want))
	k.Spawn("p", func(p *sim.Proc) {
		WriteB(p, u, 4096, int64(len(want)), want)
		ReadB(p, u, 4096, int64(len(got)), got)
	})
	k.Run(0)
	if !bytes.Equal(got, want) {
		t.Fatal("URAM content round trip failed")
	}
}

func TestDRAMTurnaroundPenalty(t *testing.T) {
	// Alternating read/write bursts must be slower than the same volume in
	// a single direction.
	run := func(alternate bool) sim.Time {
		k := sim.NewKernel()
		d := NewDRAM(k, DefaultDRAMConfig())
		var done sim.Time
		k.Spawn("p", func(p *sim.Proc) {
			for i := 0; i < 256; i++ {
				addr := uint64(i) * 4096
				if alternate && i%2 == 1 {
					WriteB(p, d, addr, 4096, nil)
				} else {
					ReadB(p, d, addr, 4096, nil)
				}
			}
			done = p.Now()
		})
		k.Run(0)
		return done
	}
	same, mixed := run(false), run(true)
	if mixed <= same {
		t.Fatalf("mixed-direction DRAM traffic (%v) should be slower than single-direction (%v)", mixed, same)
	}
}

func TestDRAMSequentialFasterThanRandom(t *testing.T) {
	run := func(sequential bool) sim.Time {
		k := sim.NewKernel()
		d := NewDRAM(k, DefaultDRAMConfig())
		r := sim.NewRand(3)
		var done sim.Time
		k.Spawn("p", func(p *sim.Proc) {
			for i := 0; i < 512; i++ {
				var addr uint64
				if sequential {
					addr = uint64(i) * 512
				} else {
					addr = uint64(r.Int63n(d.Size()/512)) * 512
				}
				ReadB(p, d, addr, 512, nil)
			}
			done = p.Now()
		})
		k.Run(0)
		return done
	}
	seq, rnd := run(true), run(false)
	if rnd <= seq {
		t.Fatalf("random DRAM reads (%v) should be slower than sequential (%v)", rnd, seq)
	}
}

func TestDRAMStatsCount(t *testing.T) {
	k := sim.NewKernel()
	d := NewDRAM(k, DefaultDRAMConfig())
	k.Spawn("p", func(p *sim.Proc) {
		ReadB(p, d, 0, 4096, nil)
		WriteB(p, d, 4096, 4096, nil)
		ReadB(p, d, 8192, 4096, nil)
	})
	k.Run(0)
	if d.Accesses() != 3 {
		t.Fatalf("Accesses = %d, want 3", d.Accesses())
	}
	if d.Turnarounds() != 2 {
		t.Fatalf("Turnarounds = %d, want 2 (R→W, W→R)", d.Turnarounds())
	}
}

func TestCoalescerMergesSequentialReads(t *testing.T) {
	k := sim.NewKernel()
	d := NewDRAM(k, DefaultDRAMConfig())
	c := NewBurstCoalescer(k, d, 4096, 20*sim.Nanosecond)
	k.Spawn("p", func(p *sim.Proc) {
		// Eight sequential 512 B reads: one underlying 4 KiB fill.
		for i := 0; i < 8; i++ {
			ReadB(p, c, uint64(i*512), 512, nil)
		}
	})
	k.Run(0)
	if c.Fills() != 1 {
		t.Fatalf("Fills = %d, want 1 (sequential 512B reads coalesce)", c.Fills())
	}
	if c.Hits() != 7 {
		t.Fatalf("Hits = %d, want 7", c.Hits())
	}
	if d.Accesses() != 1 {
		t.Fatalf("underlying DRAM accesses = %d, want 1", d.Accesses())
	}
}

func TestCoalescerNonSequentialMisses(t *testing.T) {
	k := sim.NewKernel()
	d := NewDRAM(k, DefaultDRAMConfig())
	c := NewBurstCoalescer(k, d, 4096, 20*sim.Nanosecond)
	k.Spawn("p", func(p *sim.Proc) {
		ReadB(p, c, 0, 512, nil)
		ReadB(p, c, 1<<20, 512, nil) // jump: new burst
		ReadB(p, c, 1<<20+512, 512, nil)
	})
	k.Run(0)
	if c.Fills() != 2 || c.Hits() != 1 {
		t.Fatalf("Fills/Hits = %d/%d, want 2/1", c.Fills(), c.Hits())
	}
}

func TestCoalescerWriteInvalidatesBurst(t *testing.T) {
	k := sim.NewKernel()
	d := NewDRAM(k, DefaultDRAMConfig())
	c := NewBurstCoalescer(k, d, 4096, 20*sim.Nanosecond)
	k.Spawn("p", func(p *sim.Proc) {
		ReadB(p, c, 0, 512, nil)    // opens burst [0,4096)
		WriteB(p, c, 256, 512, nil) // overlaps: invalidates
		ReadB(p, c, 512, 512, nil)  // must refill, not serve stale
	})
	k.Run(0)
	if c.Fills() != 2 {
		t.Fatalf("Fills = %d, want 2 (write must invalidate open burst)", c.Fills())
	}
}

func TestCoalescerContentCorrect(t *testing.T) {
	k := sim.NewKernel()
	d := NewDRAM(k, DefaultDRAMConfig())
	c := NewBurstCoalescer(k, d, 4096, 20*sim.Nanosecond)
	want := make([]byte, 2048)
	for i := range want {
		want[i] = byte(i * 3)
	}
	got := make([]byte, len(want))
	k.Spawn("p", func(p *sim.Proc) {
		WriteB(p, c, 0, int64(len(want)), want)
		for i := 0; i < 4; i++ {
			ReadB(p, c, uint64(i*512), 512, got[i*512:(i+1)*512])
		}
	})
	k.Run(0)
	if !bytes.Equal(got, want) {
		t.Fatal("coalesced reads returned wrong content")
	}
}

func TestCoalescerEndOfMemory(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultDRAMConfig()
	cfg.Size = 8192
	d := NewDRAM(k, cfg)
	c := NewBurstCoalescer(k, d, 4096, 20*sim.Nanosecond)
	ok := false
	k.Spawn("p", func(p *sim.Proc) {
		ReadB(p, c, 6144, 2048, nil) // burst clipped at memory end
		ok = true
	})
	k.Run(0)
	if !ok {
		t.Fatal("read near end of memory did not complete")
	}
}

func TestChunkedBufferTranslate(t *testing.T) {
	b := NewChunkedBuffer(4*sim.MiB, []uint64{0x10_0000_0000, 0x20_0000_0000, 0x30_0000_0000})
	if b.Size() != 12*sim.MiB {
		t.Fatalf("Size = %d, want 12 MiB", b.Size())
	}
	phys, contig := b.Translate(0)
	if phys != 0x10_0000_0000 || contig != 4*sim.MiB {
		t.Fatalf("Translate(0) = %#x,%d", phys, contig)
	}
	phys, contig = b.Translate(4*sim.MiB + 100)
	if phys != 0x20_0000_0064 || contig != 4*sim.MiB-100 {
		t.Fatalf("Translate(chunk1+100) = %#x,%d", phys, contig)
	}
}

func TestChunkedBufferRunsSplitAtChunkBoundaries(t *testing.T) {
	b := NewChunkedBuffer(4*sim.MiB, []uint64{0x1000_0000, 0x9000_0000})
	runs := b.Runs(4*sim.MiB-1024, 2048)
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(runs))
	}
	if runs[0].Phys != 0x1000_0000+uint64(4*sim.MiB-1024) || runs[0].Len != 1024 {
		t.Fatalf("run0 = %+v", runs[0])
	}
	if runs[1].Phys != 0x9000_0000 || runs[1].Len != 1024 {
		t.Fatalf("run1 = %+v", runs[1])
	}
}

func TestChunkedBufferMergesAdjacentChunks(t *testing.T) {
	// Physically adjacent chunks must merge into one run.
	b := NewChunkedBuffer(4*sim.MiB, []uint64{0x1000_0000, 0x1000_0000 + uint64(4*sim.MiB)})
	runs := b.Runs(0, 8*sim.MiB)
	if len(runs) != 1 || runs[0].Len != 8*sim.MiB {
		t.Fatalf("adjacent chunks should merge: %+v", runs)
	}
}

func TestChunkedBufferRunsProperty(t *testing.T) {
	// Runs must cover exactly the requested range, in order, without gaps.
	f := func(offRaw, lenRaw uint32) bool {
		b := NewChunkedBuffer(1<<20, []uint64{1 << 32, 5 << 32, 3 << 32, 9 << 32})
		off := int64(offRaw) % b.Size()
		n := int64(lenRaw) % (b.Size() - off)
		runs := b.Runs(off, n)
		var total int64
		for _, r := range runs {
			if r.Len <= 0 {
				return false
			}
			total += r.Len
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChunkedBufferOutOfRangePanics(t *testing.T) {
	b := NewChunkedBuffer(1<<20, []uint64{0})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Runs did not panic")
		}
	}()
	b.Runs(1<<20-10, 20)
}

func TestHBMAggregateBandwidth(t *testing.T) {
	// Concurrent streams across channels must far exceed one channel.
	k := sim.NewKernel()
	h := NewHBM(k, DefaultHBMConfig())
	const streams = 8
	const per = 4 * sim.MiB
	var done sim.Time
	remaining := streams
	for i := 0; i < streams; i++ {
		base := uint64(int64(i) * 256 * sim.MiB)
		k.Spawn("s", func(p *sim.Proc) {
			ReadB(p, h, base, per, nil)
			remaining--
			if remaining == 0 {
				done = p.Now()
			}
		})
	}
	k.Run(0)
	bw := float64(streams*per) / done.Seconds()
	if bw < 80e9 {
		t.Fatalf("HBM aggregate = %.1f GB/s, want well above one channel's 14.4", bw/1e9)
	}
}

func TestHBMReadWriteIsolation(t *testing.T) {
	// A read stream and a write stream on disjoint regions should barely
	// slow each other — unlike the single DDR4 controller.
	measure := func(concurrent bool) sim.Time {
		k := sim.NewKernel()
		h := NewHBM(k, DefaultHBMConfig())
		var readDone sim.Time
		k.Spawn("r", func(p *sim.Proc) {
			ReadB(p, h, 0, 8*sim.MiB, nil)
			readDone = p.Now()
		})
		if concurrent {
			k.Spawn("w", func(p *sim.Proc) {
				WriteB(p, h, uint64(1*sim.GiB), 8*sim.MiB, nil)
			})
		}
		k.Run(0)
		return readDone
	}
	alone, shared := measure(false), measure(true)
	if shared > alone*5/4 {
		t.Fatalf("read slowed from %v to %v under a concurrent write; HBM channels should isolate", alone, shared)
	}
}

func TestHBMContentRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	h := NewHBM(k, DefaultHBMConfig())
	want := make([]byte, 64*1024)
	for i := range want {
		want[i] = byte(i * 13)
	}
	got := make([]byte, len(want))
	k.Spawn("p", func(p *sim.Proc) {
		WriteB(p, h, 12345, int64(len(want)), want)
		ReadB(p, h, 12345, int64(len(got)), got)
	})
	k.Run(0)
	if !bytes.Equal(got, want) {
		t.Fatal("HBM content round trip failed")
	}
}

func TestHBMRouteCoversAllChannels(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultHBMConfig()
	h := NewHBM(k, cfg)
	seen := map[int]bool{}
	for i := 0; i < cfg.Channels*2; i++ {
		ch, _ := h.route(uint64(int64(i) * cfg.InterleaveBytes))
		seen[ch] = true
	}
	if len(seen) != cfg.Channels {
		t.Fatalf("interleaving touched %d of %d channels", len(seen), cfg.Channels)
	}
}

func TestHBMOutOfRangePanics(t *testing.T) {
	k := sim.NewKernel()
	h := NewHBM(k, DefaultHBMConfig())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range HBM access accepted")
		}
	}()
	h.ReadAccess(uint64(h.Size())-100, 200, nil, func() {})
}

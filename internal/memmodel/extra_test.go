package memmodel

import (
	"testing"
	"testing/quick"

	"snacc/internal/sim"
)

func TestChunkedBufferAccessors(t *testing.T) {
	b := NewChunkedBuffer(4<<20, []uint64{0x1000_0000, 0x5000_0000})
	if b.Size() != 8<<20 || b.ChunkSize() != 4<<20 || b.Chunks() != 2 {
		t.Fatalf("accessors wrong: size=%d chunk=%d n=%d", b.Size(), b.ChunkSize(), b.Chunks())
	}
}

func TestChunkedBufferValidation(t *testing.T) {
	for _, build := range []func(){
		func() { NewChunkedBuffer(0, []uint64{0x1000}) },
		func() { NewChunkedBuffer(4096, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid chunked buffer accepted")
				}
			}()
			build()
		}()
	}
	b := NewChunkedBuffer(4096, []uint64{0x1000})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range translate accepted")
		}
	}()
	b.Translate(4096)
}

func TestChunkedBufferRunsTileProperty(t *testing.T) {
	// Runs must tile the requested range exactly: lengths sum to n, each
	// run physically matches per-offset Translate, runs stay in order.
	b := NewChunkedBuffer(8192, []uint64{0x10000, 0x40000, 0x20000})
	f := func(offRaw, nRaw uint16) bool {
		off := int64(offRaw) % b.Size()
		n := int64(nRaw) % (b.Size() - off)
		runs := b.Runs(off, n)
		var total int64
		pos := off
		for _, r := range runs {
			phys, _ := b.Translate(pos)
			if r.Phys != phys || r.Len <= 0 {
				return false
			}
			pos += r.Len
			total += r.Len
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDRAMRowMissAccounting(t *testing.T) {
	k := sim.NewKernel()
	d := NewDRAM(k, DefaultDRAMConfig())
	done := func() {}
	// Same row twice: at most one miss. Distant rows: misses accumulate.
	d.ReadAccess(0, 64, nil, done)
	d.ReadAccess(64, 64, nil, done)
	sameRow := d.RowMisses()
	d.ReadAccess(uint64(d.Size()/2), 64, nil, done)
	d.ReadAccess(0, 64, nil, done)
	k.Run(0)
	if d.RowMisses() < sameRow+2 {
		t.Fatalf("row misses %d after two far jumps (was %d)", d.RowMisses(), sameRow)
	}
	if d.Accesses() != 4 {
		t.Fatalf("accesses = %d, want 4", d.Accesses())
	}
}

func TestDRAMTurnaroundAccounting(t *testing.T) {
	k := sim.NewKernel()
	d := NewDRAM(k, DefaultDRAMConfig())
	d.ReadAccess(0, 4096, nil, func() {})
	d.WriteAccess(0, 4096, nil, func() {})
	d.ReadAccess(0, 4096, nil, func() {})
	k.Run(0)
	if d.Turnarounds() < 2 {
		t.Fatalf("turnarounds = %d, want >= 2 (R->W->R)", d.Turnarounds())
	}
}

func TestDRAMBoundsPanic(t *testing.T) {
	k := sim.NewKernel()
	d := NewDRAM(k, DefaultDRAMConfig())
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds DRAM access accepted")
		}
	}()
	d.ReadAccess(uint64(d.Size()), 64, nil, func() {})
}

func TestCoalescerStoreAndSize(t *testing.T) {
	k := sim.NewKernel()
	d := NewDRAM(k, DefaultDRAMConfig())
	c := NewBurstCoalescer(k, d, 4096, 10)
	if c.Size() != d.Size() {
		t.Fatal("coalescer size must delegate")
	}
	if c.Store() != d.Store() {
		t.Fatal("coalescer store must delegate")
	}
}

func TestHBMAccessors(t *testing.T) {
	k := sim.NewKernel()
	h := NewHBM(k, DefaultHBMConfig())
	if h.Channels() != 32 {
		t.Fatalf("channels = %d, want 32", h.Channels())
	}
	if h.Store() == nil {
		t.Fatal("nil store")
	}
}

func TestURAMStore(t *testing.T) {
	k := sim.NewKernel()
	u := NewURAM(k, DefaultURAMConfig())
	if u.Store() == nil {
		t.Fatal("nil URAM store")
	}
}

package memmodel

import (
	"fmt"

	"snacc/internal/pcie"
	"snacc/internal/sim"
)

// DRAM models off-chip DRAM behind a single memory controller, the
// configuration TaPaSCo limits the U280 design to (§5.2). Both directions
// share one data bus, and switching the bus between reads and writes costs a
// turnaround penalty. When the NVMe controller's read stream (fetching write
// payloads over PCIe) interleaves with the Streamer filling the buffer for
// the next commands, the controller pays that penalty continuously — the
// mechanism behind the on-board-DRAM variant's reduced 4.6–4.8 GB/s write
// bandwidth in Figure 4a.
type DRAM struct {
	k     *sim.Kernel
	cfg   DRAMConfig
	store *pcie.SparseMem

	busyUntil sim.Time
	lastDir   dramDir
	lastEnd   uint64

	turnarounds int64
	rowMisses   int64
	accesses    int64
}

type dramDir uint8

const (
	dirNone dramDir = iota
	dirRead
	dirWrite
)

// DRAMConfig parameterizes the controller.
type DRAMConfig struct {
	Size int64
	// BytesPerSec is the peak data-bus bandwidth.
	BytesPerSec float64
	// AccessLatency is the pipeline latency of a row-hit access.
	AccessLatency sim.Time
	// Turnaround is charged when the bus switches between read and write.
	Turnaround sim.Time
	// RowMissPenalty is charged when an access does not continue
	// sequentially from the previous one (precharge + activate).
	RowMissPenalty sim.Time
	// RowBytes is the open-row window within which sequential accesses
	// count as row hits.
	RowBytes int64
}

// DefaultDRAMConfig returns one DDR4-2400 channel as on the Alveo U280.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Size:           16 * sim.GiB,
		BytesPerSec:    19.2e9,
		AccessLatency:  200 * sim.Nanosecond,
		Turnaround:     30 * sim.Nanosecond,
		RowMissPenalty: 45 * sim.Nanosecond,
		RowBytes:       8 * sim.KiB,
	}
}

// NewDRAM builds a DRAM controller model.
func NewDRAM(k *sim.Kernel, cfg DRAMConfig) *DRAM {
	if cfg.Size <= 0 {
		panic("memmodel: DRAM size must be positive")
	}
	return &DRAM{k: k, cfg: cfg, store: pcie.NewSparseMem()}
}

// Size implements Memory.
func (d *DRAM) Size() int64 { return d.cfg.Size }

// Store implements Memory.
func (d *DRAM) Store() *pcie.SparseMem { return d.store }

// Turnarounds reports how many read/write bus switches occurred.
func (d *DRAM) Turnarounds() int64 { return d.turnarounds }

// RowMisses reports non-sequential access count.
func (d *DRAM) RowMisses() int64 { return d.rowMisses }

// Accesses reports the total access count.
func (d *DRAM) Accesses() int64 { return d.accesses }

func (d *DRAM) check(addr uint64, n int64) {
	if n < 0 || addr+uint64(n) > uint64(d.cfg.Size) {
		panic(fmt.Sprintf("memmodel: DRAM access [%#x,+%#x) outside %d-byte memory", addr, n, d.cfg.Size))
	}
}

// schedule books one access on the shared bus and returns its completion.
func (d *DRAM) schedule(dir dramDir, addr uint64, n int64) sim.Time {
	d.accesses++
	start := d.k.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	var overhead sim.Time
	if d.lastDir != dirNone && d.lastDir != dir {
		overhead += d.cfg.Turnaround
		d.turnarounds++
	}
	sequential := addr >= d.lastEnd && addr < d.lastEnd+uint64(d.cfg.RowBytes) && d.lastDir == dir
	if !sequential {
		overhead += d.cfg.RowMissPenalty
		d.rowMisses++
	}
	d.lastDir = dir
	d.lastEnd = addr + uint64(n)
	d.busyUntil = start + overhead + sim.TransferTime(n, d.cfg.BytesPerSec)
	return d.busyUntil + d.cfg.AccessLatency
}

// arbGranule is the arbitration granularity: a large access books the bus
// one granule at a time in event order, so competing requesters interleave
// at burst granularity the way a real controller schedules — a 1 MiB buffer
// fill must not monopolize the bus against the NVMe controller's reads.
const arbGranule = 4 * sim.KiB

// access books n bytes granule by granule and calls done at completion.
func (d *DRAM) access(dir dramDir, addr uint64, n int64, done func()) {
	var step func(off int64)
	step = func(off int64) {
		m := int64(arbGranule)
		if m > n-off {
			m = n - off
		}
		t := d.schedule(dir, addr+uint64(off), m)
		if off+m >= n {
			d.k.At(t, done)
			return
		}
		// Re-arbitrate for the next granule when this one leaves the bus.
		d.k.At(t-d.cfg.AccessLatency, func() { step(off + m) })
	}
	step(0)
}

// ReadAccess implements Memory.
func (d *DRAM) ReadAccess(addr uint64, n int64, buf []byte, done func()) {
	d.check(addr, n)
	if buf != nil {
		d.store.ReadBytes(addr, buf)
	}
	d.access(dirRead, addr, n, done)
}

// WriteAccess implements Memory.
func (d *DRAM) WriteAccess(addr uint64, n int64, data []byte, done func()) {
	d.check(addr, n)
	if data != nil {
		d.store.WriteBytes(addr, data)
	}
	d.access(dirWrite, addr, n, done)
}

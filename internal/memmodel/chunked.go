package memmodel

import "fmt"

// ChunkedBuffer maps a logically contiguous buffer onto physically
// contiguous chunks at arbitrary bus addresses. The SNAcc host-DRAM variant
// needs it because "the kernel driver is limited to allocating contiguous
// buffers of 4 MB, which introduces some overhead in address calculations,
// because we must combine multiple buffers to reach the same 64 MB as with
// on-board DRAM" (§4.3).
type ChunkedBuffer struct {
	chunkSize int64
	chunks    []uint64 // physical base address of each chunk
}

// NewChunkedBuffer builds a logical buffer from physical chunk bases. All
// chunks have chunkSize bytes.
func NewChunkedBuffer(chunkSize int64, chunkBases []uint64) *ChunkedBuffer {
	if chunkSize <= 0 {
		panic("memmodel: chunk size must be positive")
	}
	if len(chunkBases) == 0 {
		panic("memmodel: chunked buffer needs at least one chunk")
	}
	return &ChunkedBuffer{chunkSize: chunkSize, chunks: append([]uint64(nil), chunkBases...)}
}

// Size returns the logical buffer size.
func (b *ChunkedBuffer) Size() int64 { return b.chunkSize * int64(len(b.chunks)) }

// ChunkSize returns the physical contiguity granule.
func (b *ChunkedBuffer) ChunkSize() int64 { return b.chunkSize }

// Chunks returns the number of chunks.
func (b *ChunkedBuffer) Chunks() int { return len(b.chunks) }

// Translate maps a logical offset to its physical bus address and the
// number of bytes physically contiguous from there.
func (b *ChunkedBuffer) Translate(offset int64) (phys uint64, contig int64) {
	if offset < 0 || offset >= b.Size() {
		panic(fmt.Sprintf("memmodel: chunked-buffer offset %d outside [0,%d)", offset, b.Size()))
	}
	idx := offset / b.chunkSize
	within := offset % b.chunkSize
	return b.chunks[idx] + uint64(within), b.chunkSize - within
}

// Runs splits the logical range [offset, offset+n) into physically
// contiguous (phys, len) runs, in order.
func (b *ChunkedBuffer) Runs(offset, n int64) []Run {
	if n < 0 || offset < 0 || offset+n > b.Size() {
		panic(fmt.Sprintf("memmodel: chunked-buffer range [%d,+%d) outside [0,%d)", offset, n, b.Size()))
	}
	var runs []Run
	for n > 0 {
		phys, contig := b.Translate(offset)
		if contig > n {
			contig = n
		}
		// Merge with the previous run when physically adjacent (chunks that
		// happen to be allocated back to back).
		if len(runs) > 0 && runs[len(runs)-1].Phys+uint64(runs[len(runs)-1].Len) == phys {
			runs[len(runs)-1].Len += contig
		} else {
			runs = append(runs, Run{Phys: phys, Len: contig})
		}
		offset += contig
		n -= contig
	}
	return runs
}

// Run is one physically contiguous extent.
type Run struct {
	Phys uint64
	Len  int64
}

package memmodel

import (
	"fmt"

	"snacc/internal/pcie"
	"snacc/internal/sim"
)

// URAM models a block of on-die UltraRAM assembled into a buffer: dual
// ported (reads and writes proceed independently), one access per cycle per
// port at the fabric width, and a short pipeline latency. On the Alveo U280
// the Streamer clocks it at the 300 MHz memory-controller frequency with a
// 64-byte AXI width, giving 19.2 GB/s per port — comfortably above both the
// PCIe x16 link and the SSD, which is why the paper finds the 4 MB URAM
// buffer "poses no limitation on bandwidth" (§5.2).
type URAM struct {
	k         *sim.Kernel
	size      int64
	latency   sim.Time
	readPort  *sim.Pipe
	writePort *sim.Pipe
	store     *pcie.SparseMem
}

// URAMConfig parameterizes a URAM buffer.
type URAMConfig struct {
	Size       int64    // bytes
	WidthBytes int64    // AXI data width
	ClockHz    float64  // fabric clock
	Latency    sim.Time // pipeline/arbiter latency per access
}

// DefaultURAMConfig returns the paper's 4 MB buffer at 300 MHz × 64 B.
func DefaultURAMConfig() URAMConfig {
	return URAMConfig{
		Size:       4 * sim.MiB,
		WidthBytes: 64,
		ClockHz:    300e6,
		Latency:    100 * sim.Nanosecond,
	}
}

// NewURAM builds a URAM buffer.
func NewURAM(k *sim.Kernel, cfg URAMConfig) *URAM {
	if cfg.Size <= 0 {
		panic("memmodel: URAM size must be positive")
	}
	bw := float64(cfg.WidthBytes) * cfg.ClockHz
	return &URAM{
		k:         k,
		size:      cfg.Size,
		latency:   cfg.Latency,
		readPort:  sim.NewPipe(k, bw, 0),
		writePort: sim.NewPipe(k, bw, 0),
		store:     pcie.NewSparseMem(),
	}
}

// Size implements Memory.
func (u *URAM) Size() int64 { return u.size }

// Store implements Memory.
func (u *URAM) Store() *pcie.SparseMem { return u.store }

func (u *URAM) check(addr uint64, n int64) {
	if n < 0 || addr+uint64(n) > uint64(u.size) {
		panic(fmt.Sprintf("memmodel: URAM access [%#x,+%#x) outside %d-byte buffer", addr, n, u.size))
	}
}

// ReadAccess implements Memory.
func (u *URAM) ReadAccess(addr uint64, n int64, buf []byte, done func()) {
	u.check(addr, n)
	if buf != nil {
		u.store.ReadBytes(addr, buf)
	}
	ready := u.readPort.Reserve(n) + u.latency
	u.k.At(ready, done)
}

// WriteAccess implements Memory.
func (u *URAM) WriteAccess(addr uint64, n int64, data []byte, done func()) {
	u.check(addr, n)
	if data != nil {
		u.store.WriteBytes(addr, data)
	}
	ready := u.writePort.Reserve(n) + u.latency
	u.k.At(ready, done)
}

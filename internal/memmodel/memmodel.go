// Package memmodel provides timing models for the memories an NVMe Streamer
// can stage payload data in: on-die URAM, on-board DRAM behind a single
// memory controller, and pinned host DRAM reachable only in 4 MiB physically
// contiguous chunks. It also provides the 4 KiB burst coalescer the paper's
// on-board-DRAM variant uses to merge the NVMe controller's small PCIe reads
// (§4.3).
//
// All models share the Memory interface: callback-style accesses carrying
// optional content, with timing produced by the model. Content lives in a
// pcie.SparseMem so functional tests can verify data end to end while bulk
// benchmarks run timing-only.
package memmodel

import (
	"snacc/internal/pcie"
	"snacc/internal/sim"
)

// Memory is a byte-addressable staging memory with modeled access timing.
// Addresses are local to the memory (zero-based).
type Memory interface {
	// ReadAccess fetches n bytes at addr, filling buf when non-nil, and
	// calls done when the data is available.
	ReadAccess(addr uint64, n int64, buf []byte, done func())
	// WriteAccess deposits n bytes at addr (content from data when
	// non-nil) and calls done when the memory has absorbed them.
	WriteAccess(addr uint64, n int64, data []byte, done func())
	// Size returns the capacity in bytes.
	Size() int64
	// Store exposes the content backing store.
	Store() *pcie.SparseMem
}

// blockingMemory adds process-model helpers shared by the implementations.
func readB(p *sim.Proc, m Memory, addr uint64, n int64, buf []byte) {
	ch := sim.NewChan[struct{}](p.Kernel(), 1)
	m.ReadAccess(addr, n, buf, func() { ch.TryPut(struct{}{}) })
	ch.Get(p)
}

func writeB(p *sim.Proc, m Memory, addr uint64, n int64, data []byte) {
	ch := sim.NewChan[struct{}](p.Kernel(), 1)
	m.WriteAccess(addr, n, data, func() { ch.TryPut(struct{}{}) })
	ch.Get(p)
}

// ReadB performs a blocking read on any Memory.
func ReadB(p *sim.Proc, m Memory, addr uint64, n int64, buf []byte) { readB(p, m, addr, n, buf) }

// WriteB performs a blocking write on any Memory.
func WriteB(p *sim.Proc, m Memory, addr uint64, n int64, data []byte) { writeB(p, m, addr, n, data) }

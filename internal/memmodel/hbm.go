package memmodel

import (
	"fmt"

	"snacc/internal/pcie"
	"snacc/internal/sim"
)

// HBM models the U280's high-bandwidth memory as independently scheduled
// pseudo-channels with address interleaving — the §7 proposal: "we can
// leverage HBM and distribute data buffers across different HBM controllers
// to maximize parallelism and bandwidth". Because each channel has its own
// controller, a read stream and a write stream landing on different
// channels never pay each other's bus turnaround, unlike the single DDR4
// controller TaPaSCo currently instantiates.
type HBM struct {
	k        *sim.Kernel
	cfg      HBMConfig
	channels []*DRAM
	store    *pcie.SparseMem
}

// HBMConfig parameterizes the stack.
type HBMConfig struct {
	// Channels is the pseudo-channel count (32 on the U280).
	Channels int
	// ChannelBytesPerSec is each channel's bandwidth (~14.4 GB/s).
	ChannelBytesPerSec float64
	// AccessLatency per channel access.
	AccessLatency sim.Time
	// InterleaveBytes is the channel-interleave granule.
	InterleaveBytes int64
	// Size is the total capacity.
	Size int64
}

// DefaultHBMConfig returns the Alveo U280 HBM2 stack profile.
func DefaultHBMConfig() HBMConfig {
	return HBMConfig{
		Channels:           32,
		ChannelBytesPerSec: 14.4e9,
		AccessLatency:      150 * sim.Nanosecond,
		InterleaveBytes:    4 * sim.KiB,
		Size:               8 * sim.GiB,
	}
}

// NewHBM builds the stack.
func NewHBM(k *sim.Kernel, cfg HBMConfig) *HBM {
	if cfg.Channels <= 0 || cfg.InterleaveBytes <= 0 || cfg.Size <= 0 {
		panic("memmodel: invalid HBM config")
	}
	h := &HBM{k: k, cfg: cfg, store: pcie.NewSparseMem()}
	per := cfg.Size / int64(cfg.Channels)
	for i := 0; i < cfg.Channels; i++ {
		h.channels = append(h.channels, NewDRAM(k, DRAMConfig{
			Size:          per,
			BytesPerSec:   cfg.ChannelBytesPerSec,
			AccessLatency: cfg.AccessLatency,
			// Per-channel turnaround exists but, with streams spread
			// across channels, rarely triggers — the point of the design.
			Turnaround:     15 * sim.Nanosecond,
			RowMissPenalty: 20 * sim.Nanosecond,
			RowBytes:       4 * sim.KiB,
		}))
	}
	return h
}

// Size implements Memory.
func (h *HBM) Size() int64 { return h.cfg.Size }

// Store implements Memory.
func (h *HBM) Store() *pcie.SparseMem { return h.store }

// Channels returns the pseudo-channel count.
func (h *HBM) Channels() int { return h.cfg.Channels }

// route maps a global address to (channel, channel-local address).
func (h *HBM) route(addr uint64) (int, uint64) {
	granule := uint64(h.cfg.InterleaveBytes)
	idx := (addr / granule) % uint64(h.cfg.Channels)
	local := (addr/(granule*uint64(h.cfg.Channels)))*granule + addr%granule
	return int(idx), local
}

// access splits [addr, addr+n) at interleave boundaries and dispatches the
// pieces to their channels; done fires when the slowest piece lands.
func (h *HBM) access(write bool, addr uint64, n int64, done func()) {
	if n < 0 || addr+uint64(n) > uint64(h.cfg.Size) {
		panic(fmt.Sprintf("memmodel: HBM access [%#x,+%#x) out of range", addr, n))
	}
	outstanding := 0
	issuedAll := false
	one := func() {
		outstanding--
		if issuedAll && outstanding == 0 {
			done()
		}
	}
	for n > 0 {
		granule := h.cfg.InterleaveBytes - int64(addr%uint64(h.cfg.InterleaveBytes))
		if granule > n {
			granule = n
		}
		ch, local := h.route(addr)
		outstanding++
		if write {
			h.channels[ch].WriteAccess(local, granule, nil, one)
		} else {
			h.channels[ch].ReadAccess(local, granule, nil, one)
		}
		addr += uint64(granule)
		n -= granule
	}
	issuedAll = true
	if outstanding == 0 {
		done()
	}
}

// ReadAccess implements Memory.
func (h *HBM) ReadAccess(addr uint64, n int64, buf []byte, done func()) {
	if buf != nil {
		h.store.ReadBytes(addr, buf)
	}
	h.access(false, addr, n, done)
}

// WriteAccess implements Memory.
func (h *HBM) WriteAccess(addr uint64, n int64, data []byte, done func()) {
	if data != nil {
		h.store.WriteBytes(addr, data)
	}
	h.access(true, addr, n, done)
}

package memmodel

import (
	"snacc/internal/pcie"
	"snacc/internal/sim"
)

// BurstCoalescer merges small sequential reads into page-sized bursts
// against an underlying memory, reproducing §4.3: "To maximize DRAM
// bandwidth, we combine smaller memory accesses made by the NVMe controller
// over PCIe into a joined 4 kB burst access whenever they follow a simple
// incrementing pattern."
//
// A read that continues sequentially from the open burst is served from the
// burst buffer at BRAM speed; any other read opens a new burst of BurstBytes
// (clipped to the memory end) with one underlying access. Writes pass
// through unchanged and invalidate an overlapping open burst.
type BurstCoalescer struct {
	k   *sim.Kernel
	mem Memory

	// BurstBytes is the prefetch window (4 KiB in the paper).
	BurstBytes int64
	// HitLatency is the BRAM buffer access time for coalesced hits.
	HitLatency sim.Time

	burstBase    uint64
	burstEnd     uint64 // exclusive; burstBase == burstEnd means no open burst
	burstReadyAt sim.Time

	hits, fills int64
}

// NewBurstCoalescer wraps mem with a coalescing read buffer.
func NewBurstCoalescer(k *sim.Kernel, mem Memory, burstBytes int64, hitLatency sim.Time) *BurstCoalescer {
	if burstBytes <= 0 {
		panic("memmodel: burst size must be positive")
	}
	return &BurstCoalescer{k: k, mem: mem, BurstBytes: burstBytes, HitLatency: hitLatency}
}

// Size implements Memory.
func (c *BurstCoalescer) Size() int64 { return c.mem.Size() }

// Store implements Memory.
func (c *BurstCoalescer) Store() *pcie.SparseMem { return c.mem.Store() }

// Hits reports reads served from an open burst.
func (c *BurstCoalescer) Hits() int64 { return c.hits }

// Fills reports underlying burst fetches.
func (c *BurstCoalescer) Fills() int64 { return c.fills }

// ReadAccess implements the Memory read side with coalescing.
func (c *BurstCoalescer) ReadAccess(addr uint64, n int64, buf []byte, done func()) {
	end := addr + uint64(n)
	if addr >= c.burstBase && end <= c.burstEnd {
		// Hit in the open burst: serve from the BRAM buffer once the fill
		// that produced it has landed.
		c.hits++
		if buf != nil {
			c.mem.Store().ReadBytes(addr, buf)
		}
		at := c.k.Now() + c.HitLatency
		if c.burstReadyAt > at {
			at = c.burstReadyAt
		}
		c.k.At(at, done)
		return
	}
	// Miss: open a new burst starting at addr.
	c.fills++
	burstLen := c.BurstBytes
	if int64(addr)+burstLen > c.mem.Size() {
		burstLen = c.mem.Size() - int64(addr)
	}
	if burstLen < n {
		burstLen = n
	}
	c.burstBase = addr
	c.burstEnd = addr + uint64(burstLen)
	c.mem.ReadAccess(addr, burstLen, nil, func() {
		c.burstReadyAt = c.k.Now()
		if buf != nil {
			c.mem.Store().ReadBytes(addr, buf)
		}
		c.k.At(c.k.Now()+c.HitLatency, done)
	})
}

// WriteAccess forwards to the underlying memory, invalidating the burst if
// it overlaps.
func (c *BurstCoalescer) WriteAccess(addr uint64, n int64, data []byte, done func()) {
	if addr < c.burstEnd && c.burstBase < addr+uint64(n) {
		c.burstBase, c.burstEnd = 0, 0
	}
	c.mem.WriteAccess(addr, n, data, done)
}

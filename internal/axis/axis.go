// Package axis models AXI4-Stream interfaces at burst granularity: packets
// carry an aggregate byte count (and optionally real content), serialization
// time follows from the stream's width and clock, and bounded FIFO depth
// provides the ready/valid backpressure the protocol gives hardware designs.
//
// The NVMe Streamer exposes exactly four of these to the user PE (§4.1):
// read command, read data, write (command beat + data beats + TLAST), and
// write response.
package axis

import (
	"snacc/internal/sim"
)

// Packet is one transfer unit: a run of beats ending (optionally) in TLAST.
type Packet struct {
	// Bytes is the payload size; a zero-byte packet (a bare token, e.g. a
	// write response) still costs one beat.
	Bytes int64
	// Last mirrors TLAST, delimiting application-level messages.
	Last bool
	// Data optionally carries real content in functional simulations.
	Data []byte
	// Meta carries typed side-band information (TUSER), e.g. a command
	// header.
	Meta any
}

// Stream is one unidirectional AXI4-Stream channel.
type Stream struct {
	name  string
	k     *sim.Kernel
	wire  *sim.Pipe
	fifo  *sim.Chan[Packet]
	space *sim.Resource // byte-granular FIFO occupancy

	bytesMoved int64
	packets    int64
}

// Config describes a stream's physical parameters.
type Config struct {
	WidthBytes int64
	ClockHz    float64
	// DepthBytes is the FIFO capacity providing backpressure slack.
	DepthBytes int64
}

// DefaultConfig is the 64-byte, 300 MHz configuration the Streamer runs at
// on the Alveo U280 (19.2 GB/s per stream).
func DefaultConfig() Config {
	return Config{WidthBytes: 64, ClockHz: 300e6, DepthBytes: 64 * sim.KiB}
}

// New creates a stream.
func New(k *sim.Kernel, name string, cfg Config) *Stream {
	if cfg.WidthBytes <= 0 || cfg.ClockHz <= 0 || cfg.DepthBytes <= 0 {
		panic("axis: invalid stream config")
	}
	return &Stream{
		name:  name,
		k:     k,
		wire:  sim.NewPipe(k, float64(cfg.WidthBytes)*cfg.ClockHz, 0),
		fifo:  sim.NewChan[Packet](k, 1<<20), // ordering only; space bounds occupancy
		space: sim.NewResource(k, cfg.DepthBytes),
	}
}

// Name returns the stream name.
func (s *Stream) Name() string { return s.name }

// cost returns the FIFO bytes a packet occupies. Tokens still take a beat,
// and a packet larger than the FIFO occupies it fully while its beats
// trickle through (hardware never sees whole packets at once).
func (s *Stream) cost(pkt Packet) int64 {
	switch {
	case pkt.Bytes <= 0:
		return 1
	case pkt.Bytes > s.space.Capacity():
		return s.space.Capacity()
	default:
		return pkt.Bytes
	}
}

// Send serializes pkt onto the stream, blocking p on backpressure (FIFO
// full) and for the beat time of the payload.
func (s *Stream) Send(p *sim.Proc, pkt Packet) {
	s.space.Acquire(p, s.cost(pkt))
	// Serialization always charges the full payload; only the FIFO
	// occupancy is capped at the FIFO capacity.
	beats := pkt.Bytes
	if beats <= 0 {
		beats = 1
	}
	s.wire.Transfer(p, beats)
	s.bytesMoved += pkt.Bytes
	s.packets++
	s.fifo.Put(p, pkt)
}

// Recv takes the next packet, blocking p while the stream is empty.
func (s *Stream) Recv(p *sim.Proc) Packet {
	pkt := s.fifo.Get(p)
	s.space.Release(s.cost(pkt))
	return pkt
}

// TryRecv takes the next packet without blocking.
func (s *Stream) TryRecv() (Packet, bool) {
	pkt, ok := s.fifo.TryGet()
	if ok {
		s.space.Release(s.cost(pkt))
	}
	return pkt, ok
}

// Pending returns the number of queued packets.
func (s *Stream) Pending() int { return s.fifo.Len() }

// BytesMoved returns total payload bytes sent.
func (s *Stream) BytesMoved() int64 { return s.bytesMoved }

// Packets returns the packet count.
func (s *Stream) Packets() int64 { return s.packets }

package axis

import (
	"bytes"
	"testing"
	"testing/quick"

	"snacc/internal/sim"
)

func TestStreamBandwidth(t *testing.T) {
	// 64 B × 300 MHz = 19.2 GB/s.
	k := sim.NewKernel()
	s := New(k, "s", DefaultConfig())
	const total = 16 * sim.MiB
	var done sim.Time
	k.Spawn("tx", func(p *sim.Proc) {
		for sent := int64(0); sent < total; sent += 256 * sim.KiB {
			s.Send(p, Packet{Bytes: 256 * sim.KiB})
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		for got := int64(0); got < total; {
			got += s.Recv(p).Bytes
		}
		done = p.Now()
	})
	k.Run(0)
	bw := float64(total) / done.Seconds()
	if bw < 18.5e9 || bw > 19.5e9 {
		t.Fatalf("stream BW = %.2f GB/s, want ~19.2", bw/1e9)
	}
}

func TestStreamBackpressure(t *testing.T) {
	// A slow consumer must throttle the producer through the FIFO depth.
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.DepthBytes = 8 * sim.KiB
	s := New(k, "s", cfg)
	var prodDone sim.Time
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			s.Send(p, Packet{Bytes: 4096})
		}
		prodDone = p.Now()
	})
	k.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			p.Sleep(10 * sim.Microsecond)
			s.Recv(p)
		}
	})
	k.Run(0)
	// 64 packets at the consumer's 10us pace, minus the FIFO's 2-packet slack.
	if prodDone < 500*sim.Microsecond {
		t.Fatalf("producer finished at %v; backpressure not applied", prodDone)
	}
}

func TestStreamTokenCostsOneBeat(t *testing.T) {
	k := sim.NewKernel()
	s := New(k, "s", DefaultConfig())
	var got Packet
	k.Spawn("tx", func(p *sim.Proc) { s.Send(p, Packet{Last: true, Meta: "token"}) })
	k.Spawn("rx", func(p *sim.Proc) { got = s.Recv(p) })
	k.Run(0)
	if !got.Last || got.Meta != "token" {
		t.Fatalf("token packet mangled: %+v", got)
	}
}

func TestStreamDataAndMetaIntegrity(t *testing.T) {
	k := sim.NewKernel()
	s := New(k, "s", DefaultConfig())
	want := []byte("axi stream payload")
	k.Spawn("tx", func(p *sim.Proc) {
		s.Send(p, Packet{Bytes: int64(len(want)), Data: want, Meta: 7})
	})
	var got Packet
	k.Spawn("rx", func(p *sim.Proc) { got = s.Recv(p) })
	k.Run(0)
	if !bytes.Equal(got.Data, want) || got.Meta != 7 {
		t.Fatal("payload or metadata corrupted")
	}
}

func TestStreamOrderingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 64 {
			return true
		}
		k := sim.NewKernel()
		s := New(k, "s", DefaultConfig())
		k.Spawn("tx", func(p *sim.Proc) {
			for i, sz := range sizes {
				s.Send(p, Packet{Bytes: int64(sz) + 1, Meta: i})
			}
		})
		ok := true
		k.Spawn("rx", func(p *sim.Proc) {
			for i := range sizes {
				pkt := s.Recv(p)
				if pkt.Meta != i || pkt.Bytes != int64(sizes[i])+1 {
					ok = false
				}
			}
		})
		k.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStreamTryRecvAndPending(t *testing.T) {
	k := sim.NewKernel()
	s := New(k, "s", DefaultConfig())
	if _, ok := s.TryRecv(); ok {
		t.Fatal("TryRecv on empty stream succeeded")
	}
	k.Spawn("tx", func(p *sim.Proc) {
		s.Send(p, Packet{Bytes: 100})
		s.Send(p, Packet{Bytes: 200})
	})
	k.Run(0)
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	if pkt, ok := s.TryRecv(); !ok || pkt.Bytes != 100 {
		t.Fatalf("TryRecv = %+v,%v", pkt, ok)
	}
	if s.BytesMoved() != 300 || s.Packets() != 2 {
		t.Fatalf("stats: %d bytes, %d packets", s.BytesMoved(), s.Packets())
	}
}

func TestStreamOversizePacketTricklesThrough(t *testing.T) {
	// A packet larger than the FIFO must still pass (beat-wise in hardware).
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.DepthBytes = 4 * sim.KiB
	s := New(k, "s", cfg)
	var got int64
	k.Spawn("tx", func(p *sim.Proc) { s.Send(p, Packet{Bytes: 64 * sim.KiB}) })
	k.Spawn("rx", func(p *sim.Proc) { got = s.Recv(p).Bytes })
	k.Run(0)
	if got != 64*sim.KiB {
		t.Fatalf("got %d bytes", got)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	New(sim.NewKernel(), "bad", Config{WidthBytes: 0, ClockHz: 1, DepthBytes: 1})
}

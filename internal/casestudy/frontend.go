package casestudy

import (
	"fmt"

	"snacc/internal/ethernet"
	"snacc/internal/imagestream"
	"snacc/internal/sim"
)

// dbItem is one image ready for persistence: the original frame (bypassing
// classification, per Figure 5) paired with its classification record.
type dbItem struct {
	img    imagestream.Image
	data   []byte // original pixels (functional runs)
	record []byte
	// sentAt is when the image's last frame entered the transmit queue,
	// carried through the pipeline for end-to-end latency accounting. It
	// rides the frame metadata rather than a shared slice so the
	// transmitter can live in a different shard domain than the consumer.
	sentAt sim.Time
}

// frontEnd is the FPGA-side receive pipeline shared by the SNAcc variants
// and the SPDK reference: transmitter FPGA → 100 G Ethernet with flow
// control → receive PE → downscaler PE → FINN classifier PE. Its output
// channel delivers in-order dbItems; a bounded capacity propagates
// backpressure from the storage path all the way to the Ethernet
// transmitter via pause frames.
type frontEnd struct {
	k   *sim.Kernel
	cfg Config

	tx, rx *ethernet.MAC
	out    *sim.Chan[dbItem]

	scaler     *sim.Server
	classifier *sim.Server
	viaSwitch  bool
}

// imageEnd marks the final frame of an image on the wire, timestamped at
// transmit-queue entry.
type imageEnd struct {
	img    imagestream.Image
	sentAt sim.Time
}

// ethernetConfig applies the case-study overrides to the 100 G defaults.
func ethernetConfig(cfg Config) ethernet.Config {
	ecfg := ethernet.DefaultConfig()
	if cfg.EthernetMTU > 0 {
		ecfg.MTU = cfg.EthernetMTU
	}
	return ecfg
}

// newFrontEnd wires the pipeline and starts its processes.
func newFrontEnd(k *sim.Kernel, cfg Config) *frontEnd {
	ecfg := ethernetConfig(cfg)
	fe := &frontEnd{
		k:          k,
		cfg:        cfg,
		tx:         ethernet.NewMAC(k, "txfpga", ecfg),
		rx:         ethernet.NewMAC(k, "rxfpga", ecfg),
		out:        sim.NewChan[dbItem](k, 4),
		scaler:     sim.NewServer(k),
		classifier: sim.NewServer(k),
	}
	fe.connect(ecfg)
	k.Spawn("sender", fe.senderLoop)
	// Separate processes per PE so reception, scaling and classification
	// pipeline the way distinct hardware stages do (Figure 5).
	toScaler := sim.NewChan[dbItem](k, 2)
	toClassifier := sim.NewChan[dbItem](k, 2)
	k.Spawn("rxpe", func(p *sim.Proc) { fe.rxLoop(p, toScaler) })
	k.Spawn("scaler", func(p *sim.Proc) { fe.scalerLoop(p, toScaler, toClassifier) })
	k.Spawn("classifier", func(p *sim.Proc) { fe.classifierLoop(p, toClassifier) })
	return fe
}

// senderLoop is the transmitter FPGA: it streams every image as a train of
// frames, marking the final frame with the image descriptor.
func (fe *frontEnd) senderLoop(p *sim.Proc) {
	p.SetDaemon(true)
	gen := imagestream.NewGenerator(fe.cfg.Source)
	for {
		img, ok := gen.Next()
		if !ok {
			return
		}
		total := img.Bytes()
		var pixels []byte
		if fe.cfg.Functional {
			pixels = make([]byte, total)
			imagestream.Synthesize(img, fe.cfg.Seed, pixels)
		}
		var off int64
		for off < total {
			n := fe.cfg.EthernetFrameBytes
			if n > total-off {
				n = total - off
			}
			f := ethernet.Frame{Bytes: n, DstPort: 1}
			if pixels != nil {
				f.Data = pixels[off : off+n]
			}
			off += n
			if off == total {
				f.Meta = imageEnd{img: img, sentAt: p.Now()}
			}
			fe.tx.Send(p, f)
		}
	}
}

// rxLoop reassembles images from the Ethernet frame stream.
func (fe *frontEnd) rxLoop(p *sim.Proc, out *sim.Chan[dbItem]) {
	p.SetDaemon(true)
	var buf []byte
	var got int64
	for {
		f := fe.rx.Recv(p)
		got += f.Bytes
		if fe.cfg.Functional {
			buf = append(buf, f.Data...)
		}
		end, ok := f.Meta.(imageEnd)
		if !ok {
			continue
		}
		if got != end.img.Bytes() {
			panic(fmt.Sprintf("casestudy: image %d reassembled %d of %d bytes", end.img.ID, got, end.img.Bytes()))
		}
		out.Put(p, dbItem{img: end.img, data: buf, sentAt: end.sentAt})
		buf = nil
		got = 0
	}
}

// scalerLoop is the downscaler PE: it streams each frame once through the
// fabric datapath.
func (fe *frontEnd) scalerLoop(p *sim.Proc, in, out *sim.Chan[dbItem]) {
	p.SetDaemon(true)
	const scalerBytesPerSec = 19.2e9 // 64 B × 300 MHz streaming datapath
	for {
		it := in.Get(p)
		occupyServer(p, fe.scaler, sim.TransferTime(it.img.Bytes(), scalerBytesPerSec))
		out.Put(p, it)
	}
}

// classifierLoop is the FINN MobileNet-V1 PE: one inference slot per image,
// with the pipeline latency paid once at stream start.
func (fe *frontEnd) classifierLoop(p *sim.Proc, in *sim.Chan[dbItem]) {
	p.SetDaemon(true)
	first := true
	for {
		it := in.Get(p)
		occupyServer(p, fe.classifier, sim.Seconds(1/fe.cfg.ClassifierFPS))
		if first {
			p.Sleep(fe.cfg.ClassifierLatency)
			first = false
		}
		if fe.cfg.Functional {
			it.record = buildRecord(it.img, it.data, fe.cfg.RecordBytes)
		}
		fe.out.Put(p, it)
	}
}

// buildRecord produces a deterministic classification record from the pixel
// content so functional tests can verify end-to-end integrity.
func buildRecord(img imagestream.Image, pixels []byte, size int64) []byte {
	rec := make([]byte, size)
	var h uint64 = 1469598103934665603
	for _, b := range pixels {
		h ^= uint64(b)
		h *= 1099511628211
	}
	copy(rec, []byte(fmt.Sprintf("img=%d class=%d conf=%d", img.ID, h%1000, h%97)))
	return rec
}

func occupyServer(p *sim.Proc, srv *sim.Server, d sim.Time) {
	p.Sleep(srv.Occupy(d) - p.Now())
}

// newFrontEndNICOnly builds the GPU reference's receive path: the FPGA acts
// purely as a NIC, so frames are reassembled into images and handed on with
// no scaling or classification — those move to the host CPU and the GPU.
func newFrontEndNICOnly(k *sim.Kernel, cfg Config) *frontEnd {
	ecfg := ethernetConfig(cfg)
	fe := &frontEnd{
		k:   k,
		cfg: cfg,
		tx:  ethernet.NewMAC(k, "txfpga", ecfg),
		rx:  ethernet.NewMAC(k, "nic", ecfg),
		out: sim.NewChan[dbItem](k, 4),
	}
	fe.connect(ecfg)
	k.Spawn("sender", fe.senderLoop)
	k.Spawn("nicrx", func(p *sim.Proc) {
		p.SetDaemon(true)
		var buf []byte
		var got int64
		for {
			f := fe.rx.Recv(p)
			got += f.Bytes
			if fe.cfg.Functional {
				buf = append(buf, f.Data...)
			}
			if end, ok := f.Meta.(imageEnd); ok {
				if got != end.img.Bytes() {
					panic("casestudy: NIC reassembly mismatch")
				}
				fe.out.Put(p, dbItem{img: end.img, data: buf, sentAt: end.sentAt})
				buf = nil
				got = 0
			}
		}
	})
	return fe
}

// newFrontEndCross is newFrontEnd with the transmitter FPGA in its own
// shard domain: the tx MAC (and the intermediary switch, when configured)
// lives on txk, the receive pipeline on k, and all wire traffic — frames
// one way, 802.3x pause/resume the other — rides the toRx/toTx edges. The
// Ethernet wire is the one boundary in this rig's topology with a declared
// minimum latency (ethernet.Config.EdgeLookahead), which is exactly why the
// cut goes here and not through the synchronously-coupled PCIe complex.
func newFrontEndCross(txk, k *sim.Kernel, toRx, toTx *sim.Edge, cfg Config) *frontEnd {
	ecfg := ethernetConfig(cfg)
	fe := &frontEnd{
		k:          k,
		cfg:        cfg,
		tx:         ethernet.NewMAC(txk, "txfpga", ecfg),
		rx:         ethernet.NewMAC(k, "rxfpga", ecfg),
		out:        sim.NewChan[dbItem](k, 4),
		scaler:     sim.NewServer(k),
		classifier: sim.NewServer(k),
	}
	if cfg.UseSwitch {
		sw := ethernet.NewSwitch(txk, "torswitch", ecfg, 2, sim.MiB)
		sw.Attach(0, fe.tx)
		if err := sw.AttachCross(1, fe.rx, toRx, toTx); err != nil {
			panic(err)
		}
		fe.viaSwitch = true
	} else if err := ethernet.ConnectCross(fe.tx, fe.rx, toRx, toTx); err != nil {
		panic(err)
	}
	txk.Spawn("sender", fe.senderLoop)
	toScaler := sim.NewChan[dbItem](k, 2)
	toClassifier := sim.NewChan[dbItem](k, 2)
	k.Spawn("rxpe", func(p *sim.Proc) { fe.rxLoop(p, toScaler) })
	k.Spawn("scaler", func(p *sim.Proc) { fe.scalerLoop(p, toScaler, toClassifier) })
	k.Spawn("classifier", func(p *sim.Proc) { fe.classifierLoop(p, toClassifier) })
	return fe
}

// imagestreamAt reconstructs the image descriptor for stream position id.
func imagestreamAt(cfg Config, id int) imagestream.Image {
	return imagestream.Image{
		ID:       id,
		Width:    cfg.Source.Width,
		Height:   cfg.Source.Height,
		Channels: cfg.Source.Channels,
	}
}

// connect wires transmitter to receiver, optionally through a switch so
// the §4.7 pause-propagation path is exercised end to end.
func (fe *frontEnd) connect(ecfg ethernet.Config) {
	if !fe.cfg.UseSwitch {
		ethernet.Connect(fe.tx, fe.rx)
		return
	}
	sw := ethernet.NewSwitch(fe.k, "torswitch", ecfg, 2, sim.MiB)
	sw.Attach(0, fe.tx)
	sw.Attach(1, fe.rx)
	fe.viaSwitch = true
}

package casestudy

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"snacc/internal/imagestream"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// smallConfig shrinks the stream for fast tests.
func smallConfig(images int) Config {
	cfg := DefaultConfig()
	cfg.Images = images
	cfg.Source.Count = images
	return cfg
}

func TestFigure6Shape(t *testing.T) {
	// Figure 6: Host DRAM and SPDK lead (~6.1 GB/s, ~676 fps at 9 MB
	// frames), URAM and on-board DRAM track their sequential-write limits,
	// the GPU reference lands below SPDK.
	cfg := smallConfig(192)
	results := map[string]Result{
		"uram": RunSNAcc(streamer.URAM, cfg),
		"ob":   RunSNAcc(streamer.OnboardDRAM, cfg),
		"host": RunSNAcc(streamer.HostDRAM, cfg),
		"spdk": RunSPDK(cfg),
		"gpu":  RunGPU(cfg),
	}
	for name, r := range results {
		t.Logf("%-5s %-16s %.2f GB/s %.0f fps (pauses=%d, pcie=%.1f GB)",
			name, r.Variant, r.GBps(), r.FPS(), r.EthernetPauses, float64(r.PCIeTotal)/1e9)
		if r.Errors != 0 {
			t.Errorf("%s reported %d errors", name, r.Errors)
		}
		if r.FramesDropped != 0 {
			t.Errorf("%s dropped %d Ethernet frames despite flow control", name, r.FramesDropped)
		}
	}
	// Comparative claims.
	if !(results["host"].GBps() > results["uram"].GBps() && results["uram"].GBps() > results["ob"].GBps()) {
		t.Errorf("SNAcc ordering violated: host %.2f, uram %.2f, ob %.2f",
			results["host"].GBps(), results["uram"].GBps(), results["ob"].GBps())
	}
	if results["gpu"].GBps() >= results["spdk"].GBps() {
		t.Errorf("GPU (%.2f) should trail SPDK (%.2f)", results["gpu"].GBps(), results["spdk"].GBps())
	}
	// Absolute bands (generous; EXPERIMENTS.md records exact values).
	check := func(name string, lo, hi float64) {
		if g := results[name].GBps(); g < lo || g > hi {
			t.Errorf("%s = %.2f GB/s, want [%.1f, %.1f]", name, g, lo, hi)
		}
	}
	check("host", 5.8, 6.4)
	check("spdk", 5.9, 6.5)
	check("uram", 5.1, 5.7)
	check("ob", 4.6, 5.3)
	check("gpu", 5.4, 6.0)
}

func TestFigure7Shape(t *testing.T) {
	// Figure 7: URAM and on-board DRAM move each byte over PCIe once
	// (least traffic); host DRAM and SPDK twice; GPU the most.
	cfg := smallConfig(64)
	uram := RunSNAcc(streamer.URAM, cfg)
	ob := RunSNAcc(streamer.OnboardDRAM, cfg)
	host := RunSNAcc(streamer.HostDRAM, cfg)
	spdk := RunSPDK(cfg)
	gpu := RunGPU(cfg)
	payload := cfg.imageWriteBytes() * int64(cfg.Images)

	for _, r := range []Result{uram, ob, host, spdk, gpu} {
		t.Logf("%-16s pcie=%.2f GB (%.2fx payload)", r.Variant,
			float64(r.PCIeTotal)/1e9, float64(r.PCIeTotal)/float64(payload))
	}
	near := func(r Result, factor, tol float64) bool {
		x := float64(r.PCIeTotal) / float64(payload)
		return x > factor-tol && x < factor+tol
	}
	if !near(uram, 1, 0.15) || !near(ob, 1, 0.15) {
		t.Errorf("URAM/on-board traffic should be ~1x payload: %.2fx / %.2fx",
			float64(uram.PCIeTotal)/float64(payload), float64(ob.PCIeTotal)/float64(payload))
	}
	if !near(host, 2, 0.2) || !near(spdk, 2, 0.2) {
		t.Errorf("host-DRAM/SPDK traffic should be ~2x payload: %.2fx / %.2fx",
			float64(host.PCIeTotal)/float64(payload), float64(spdk.PCIeTotal)/float64(payload))
	}
	if gpu.PCIeTotal <= spdk.PCIeTotal || gpu.PCIeTotal <= host.PCIeTotal {
		t.Error("GPU must generate the most PCIe traffic")
	}
	if uram.PCIeTotal >= host.PCIeTotal {
		t.Error("URAM must generate less PCIe traffic than host DRAM")
	}
}

func TestAutonomyCPULoad(t *testing.T) {
	// §6.3: the SNAcc variants leave the CPU idle after setup, while the
	// SPDK and GPU variants burn a polling core.
	cfg := smallConfig(48)
	sn := RunSNAcc(streamer.HostDRAM, cfg)
	sp := RunSPDK(cfg)
	if sn.BusyPolling {
		t.Error("SNAcc must not busy-poll a host core")
	}
	if !sp.BusyPolling {
		t.Error("the SPDK variant's data-path thread busy-polls by design")
	}
	if sn.HostCPUBusy != 0 {
		t.Errorf("SNAcc accumulated %v of data-path CPU time", sn.HostCPUBusy)
	}
	if sp.HostCPUBusy == 0 {
		t.Error("SPDK variant accumulated no CPU time")
	}
}

func TestFlowControlEngages(t *testing.T) {
	// The 12.5 GB/s link always outruns the ~6 GB/s storage path, so pause
	// frames must throttle the transmitter in every variant (§4.7).
	cfg := smallConfig(48)
	r := RunSNAcc(streamer.URAM, cfg)
	if r.EthernetPauses == 0 {
		t.Error("Ethernet flow control never engaged")
	}
}

func TestFunctionalEndToEnd(t *testing.T) {
	// With real payloads, every image and its classification record must
	// land on the SSD intact. Uses tiny images to keep it fast.
	cfg := smallConfig(6)
	cfg.Functional = true
	cfg.Source.Width = 512
	cfg.Source.Height = 256
	cfg.Source.Channels = 3
	verifySNAccContent(t, cfg, streamer.URAM)
}

func TestFunctionalAllVariants(t *testing.T) {
	for _, v := range []streamer.Variant{streamer.OnboardDRAM, streamer.HostDRAM} {
		cfg := smallConfig(4)
		cfg.Functional = true
		cfg.Source.Width = 256
		cfg.Source.Height = 128
		cfg.Source.Channels = 3
		verifySNAccContent(t, cfg, v)
	}
}

func TestExactFPSRelation(t *testing.T) {
	// fps = bandwidth / bytes-per-image must hold by construction; the
	// paper's 6.1 GB/s ↔ 676 fps uses the same arithmetic.
	cfg := smallConfig(48)
	r := RunSNAcc(streamer.HostDRAM, cfg)
	wantFPS := r.GBps() * 1e9 / float64(cfg.imageWriteBytes())
	if d := r.FPS() - wantFPS; d > 1 || d < -1 {
		t.Errorf("fps %.1f inconsistent with bandwidth-derived %.1f", r.FPS(), wantFPS)
	}
}

var _ = fmt.Sprintf

// verifySNAccContent runs a functional SNAcc case study and checks every
// image and record on the SSD media byte for byte.
func verifySNAccContent(t *testing.T, cfg Config, v streamer.Variant) {
	t.Helper()
	res, dev := runSNAcc(v, cfg)
	if res.Errors != 0 {
		t.Fatalf("%s: %d errors", v, res.Errors)
	}
	perImage := cfg.imageWriteBytes()
	imgBytes := imagestreamAt(cfg, 0).Bytes()
	for i := 0; i < cfg.Images; i++ {
		img := imagestreamAt(cfg, i)
		want := make([]byte, imgBytes)
		imagestream.Synthesize(img, cfg.Seed, want)
		got := make([]byte, imgBytes)
		dev.NAND().Store().ReadBytes(uint64(int64(i)*perImage), got)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: image %d corrupted on media", v, i)
		}
		rec := make([]byte, cfg.RecordBytes)
		dev.NAND().Store().ReadBytes(uint64(int64(i+1)*perImage)-uint64(cfg.RecordBytes), rec)
		wantRec := buildRecord(img, want, cfg.RecordBytes)
		if !bytes.Equal(rec, wantRec) {
			t.Fatalf("%s: record %d corrupted on media (%q vs %q)", v, i, rec[:32], wantRec[:32])
		}
	}
}

func TestCaseStudyThroughSwitch(t *testing.T) {
	// §4.7: flow control "also works with intermediary switches, which will
	// first pause locally before propagating the pause request further".
	// The end-to-end bandwidth must match the direct topology with no
	// frame loss anywhere.
	direct := smallConfig(48)
	viaSwitch := smallConfig(48)
	viaSwitch.UseSwitch = true
	a := RunSNAcc(streamer.HostDRAM, direct)
	b := RunSNAcc(streamer.HostDRAM, viaSwitch)
	if b.FramesDropped != 0 {
		t.Fatalf("%d frames dropped behind the switch", b.FramesDropped)
	}
	rel := (a.GBps() - b.GBps()) / a.GBps()
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.05 {
		t.Fatalf("switch changed bandwidth by %.1f%% (%.2f vs %.2f)", rel*100, a.GBps(), b.GBps())
	}
	if b.EthernetPauses == 0 {
		t.Fatal("pause propagation never reached the transmitter")
	}
}

func TestCaseStudyWithDeviceFaults(t *testing.T) {
	// Injected NVMe failures must surface in the result's error counter
	// while the pipeline still terminates.
	cfg := smallConfig(16)
	res, dev := runSNAccWithFaults(cfg, streamer.URAM, 5)
	if res.Errors == 0 {
		t.Fatal("injected faults not reported")
	}
	if dev.Errors() == 0 {
		t.Fatal("device error counter untouched")
	}
	if res.Images != cfg.Images {
		t.Fatalf("pipeline did not finish: %d of %d images", res.Images, cfg.Images)
	}
}

func TestStripedCaseStudySaturatesNetwork(t *testing.T) {
	// §7's end goal: with multiple SSDs the storage side stops being the
	// bottleneck and the case study pushes toward the 100 G line rate
	// (~12.2 GB/s of payload after framing).
	cfg := smallConfig(96)
	one := RunSNAccStriped(1, cfg)
	two := RunSNAccStriped(2, cfg)
	three := RunSNAccStriped(3, cfg)
	if one.Errors+two.Errors+three.Errors != 0 {
		t.Fatalf("errors: %d/%d/%d", one.Errors, two.Errors, three.Errors)
	}
	if one.GBps() > 6.2 {
		t.Fatalf("single-SSD striped run %.2f GB/s; should be SSD-limited", one.GBps())
	}
	if two.GBps() < 1.8*one.GBps() {
		t.Fatalf("2-SSD striped run %.2f GB/s; should nearly double %.2f", two.GBps(), one.GBps())
	}
	// With three SSDs the storage side exceeds what 100 G delivers: the
	// run becomes network-limited just below the 12.2 GB/s payload rate.
	if three.GBps() < 11.0 || three.GBps() > 12.5 {
		t.Fatalf("3-SSD striped run %.2f GB/s; should be network-limited near 12.2", three.GBps())
	}
	t.Logf("striped case study: %.2f → %.2f → %.2f GB/s (3 SSDs hit the 100G link)",
		one.GBps(), two.GBps(), three.GBps())
}

func TestImageLatencyAccounting(t *testing.T) {
	// End-to-end image latency (transmit → persisted) must be bounded and
	// sensible: at least the storage time of one ~9 MB image, and well
	// under a second even with flow-control stalls.
	cfg := smallConfig(48)
	res, _ := runSNAcc(streamer.HostDRAM, cfg)
	if res.ImageLatency.Count() != cfg.Images {
		t.Fatalf("latency samples = %d, want %d", res.ImageLatency.Count(), cfg.Images)
	}
	mean := res.ImageLatency.Mean()
	if mean < 2*sim.Millisecond {
		t.Fatalf("mean image latency %v implausibly low", mean)
	}
	if res.ImageLatency.Percentile(99) > 500*sim.Millisecond {
		t.Fatalf("p99 image latency %v implausibly high", res.ImageLatency.Percentile(99))
	}
	if res.ImageLatency.Percentile(99) < mean {
		t.Fatal("p99 below mean")
	}
}

// TestSNAccKernelWorkersIdentical pins the tentpole determinism guarantee
// on the real rig: splitting the transmitter FPGA into its own shard
// domain must not change a single observable — end time, image-latency
// histogram, PCIe accounting, pause counts — at any worker count,
// with and without the intermediary switch.
func TestSNAccKernelWorkersIdentical(t *testing.T) {
	for _, useSwitch := range []bool{false, true} {
		name := "direct"
		if useSwitch {
			name = "switch"
		}
		t.Run(name, func(t *testing.T) {
			run := func(workers int) Result {
				cfg := smallConfig(24)
				cfg.UseSwitch = useSwitch
				cfg.KernelWorkers = workers
				return RunSNAcc(streamer.URAM, cfg)
			}
			serial := run(0)
			if serial.Errors != 0 || serial.FramesDropped != 0 {
				t.Fatalf("serial run unhealthy: %+v", serial)
			}
			for _, w := range []int{2, 4} {
				got := run(w)
				if !reflect.DeepEqual(got, serial) {
					t.Errorf("KernelWorkers=%d diverged from serial:\n%+v\nvs\n%+v", w, got, serial)
				}
			}
		})
	}
}

// TestSNAccKernelWorkersFunctional moves real pixel bytes across the
// domain boundary: content integrity must survive the sharded scheduler.
func TestSNAccKernelWorkersFunctional(t *testing.T) {
	cfg := smallConfig(6)
	cfg.Functional = true
	cfg.Source.Width = 512
	cfg.Source.Height = 256
	cfg.Source.Channels = 3
	cfg.KernelWorkers = 2
	verifySNAccContent(t, cfg, streamer.URAM)
}

package casestudy

import (
	"snacc/internal/nvme"
	"snacc/internal/pcie"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

const caseSSDBAR = 0x10_0000_0000

// RunSNAcc executes the case study with one of the three SNAcc Streamer
// variants: the database controller PE forwards the original image stream
// plus the classification record directly into the NVMe Streamer — after
// initialization "the entire application operates autonomously on the FPGA
// without any host interaction" (§6).
func RunSNAcc(v streamer.Variant, cfg Config) Result {
	res, _ := runSNAcc(v, cfg)
	return res
}

func runSNAcc(v streamer.Variant, cfg Config) (Result, *nvme.Device) {
	return runSNAccInner(v, cfg, nil)
}

func runSNAccInner(v streamer.Variant, cfg Config, devHook func(*nvme.Device)) (Result, *nvme.Device) {
	// With KernelWorkers > 1 the rig splits at the Ethernet wire: the
	// transmitter FPGA gets its own shard domain, everything PCIe-coupled
	// (platform, streamer, SSD, receive PEs) stays together, and the two
	// advance concurrently under conservative sync with the wire latency as
	// lookahead. With 0 or 1 everything runs on one serial kernel.
	var (
		shard *sim.Shard
		txd   *sim.Domain
	)
	k := sim.NewKernel()
	if cfg.KernelWorkers > 1 {
		shard = sim.NewShard(cfg.KernelWorkers)
		txd = shard.AddDomain("txfpga")
		k = shard.AddDomain("fpga").Kernel()
	}
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	devCfg := nvme.DefaultConfig("ssd0", caseSSDBAR)
	devCfg.Functional = cfg.Functional
	dev := nvme.New(k, pl.Fabric, devCfg)
	if devHook != nil {
		devHook(dev)
	}
	stCfg := streamer.DefaultConfig("snacc0", 0, v)
	stCfg.Functional = cfg.Functional
	st := pl.AddStreamer(stCfg)
	drv := tapasco.NewDriver(pl, "ssd0", caseSSDBAR)

	var fe *frontEnd
	if shard != nil {
		ecfg := ethernetConfig(cfg)
		look := ecfg.EdgeLookahead()
		fpga := shard.Domains()[1]
		toRx := shard.MustConnect(txd, fpga, look)
		toTx := shard.MustConnect(fpga, txd, look)
		fe = newFrontEndCross(txd.Kernel(), k, toRx, toTx, cfg)
	} else {
		fe = newFrontEnd(k, cfg)
	}
	perImage := cfg.imageWriteBytes()
	var start, end sim.Time
	lat := &sim.Histogram{}
	sentAt := make([]sim.Time, 0, cfg.Images)

	k.Spawn("main", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			panic(err)
		}
		if err := drv.AttachStreamer(p, st, 1); err != nil {
			panic(err)
		}
		c := streamer.NewClient(st)
		start = p.Now()

		// Response-token consumer so writes pipeline. Tokens arrive in
		// image order (in-order retirement), so the i-th token pairs with
		// the i-th transmit timestamp for end-to-end latency. The
		// timestamps ride each dbItem (recorded below as the writes are
		// issued), never a transmitter-owned slice: the i-th write is
		// issued before the i-th token can arrive, so the read is safe, and
		// the transmitter may live in another shard domain.
		doneC := sim.NewChan[struct{}](k, 1)
		k.Spawn("dbtokens", func(tp *sim.Proc) {
			for i := 0; i < cfg.Images; i++ {
				c.WaitWrite(tp)
				if i < len(sentAt) {
					lat.Add(tp.Now() - sentAt[i])
				}
			}
			end = tp.Now()
			doneC.TryPut(struct{}{})
		})

		// Database controller PE: one write per image at a sequential
		// cursor — original frame (padded) followed by the record block.
		var cursor uint64
		for i := 0; i < cfg.Images; i++ {
			it := fe.out.Get(p)
			sentAt = append(sentAt, it.sentAt)
			var payload []byte
			if cfg.Functional {
				payload = make([]byte, perImage)
				copy(payload, it.data)
				copy(payload[perImage-cfg.RecordBytes:], it.record)
			}
			c.WriteAsync(p, cursor, perImage, payload)
			cursor += uint64(perImage)
		}
		doneC.Get(p)
	})
	if shard != nil {
		shard.Run(0)
	} else {
		k.Run(0)
	}

	res := Result{
		Variant:        variantName(v),
		Images:         cfg.Images,
		Bytes:          perImage * int64(cfg.Images),
		Elapsed:        end - start,
		PCIe:           map[string]int64{},
		ImageLatency:   lat,
		EthernetPauses: fe.tx.PausesHonored(),
		FramesDropped:  fe.rx.FramesDropped(),
		Errors:         dev.Errors() + st.CommandErrors(),
	}
	collectPCIe(&res, map[string]*pcie.Port{
		"card": pl.Card,
		"ssd":  dev.Port(),
		"host": pl.Host.Port,
	})
	return res, dev
}

// collectPCIe fills the Figure 7 accounting: payload bytes delivered into
// each port; the sum counts every transfer once at its destination.
func collectPCIe(res *Result, ports map[string]*pcie.Port) {
	for name, pt := range ports {
		res.PCIe[name] = pt.PayloadRx()
		res.PCIeTotal += pt.PayloadRx()
	}
}

// runSNAccWithFaults is a test hook: every Nth NVMe write fails with an
// internal error, exercising error propagation through the Streamer.
func runSNAccWithFaults(cfg Config, v streamer.Variant, everyN int64) (Result, *nvme.Device) {
	res, dev := runSNAccInner(v, cfg, func(d *nvme.Device) {
		n := int64(0)
		d.SetFaultInjector(func(cmd nvme.Command) uint16 {
			if cmd.Opcode != nvme.OpWrite {
				return nvme.StatusSuccess
			}
			n++
			if n%everyN == 0 {
				return nvme.StatusInternalError
			}
			return nvme.StatusSuccess
		})
	})
	return res, dev
}

package casestudy

import (
	"snacc/internal/nvme"
	"snacc/internal/pcie"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

const caseSSDBAR = 0x10_0000_0000

// RunSNAcc executes the case study with one of the three SNAcc Streamer
// variants: the database controller PE forwards the original image stream
// plus the classification record directly into the NVMe Streamer — after
// initialization "the entire application operates autonomously on the FPGA
// without any host interaction" (§6).
func RunSNAcc(v streamer.Variant, cfg Config) Result {
	res, _ := runSNAcc(v, cfg)
	return res
}

func runSNAcc(v streamer.Variant, cfg Config) (Result, *nvme.Device) {
	return runSNAccInner(v, cfg, nil)
}

func runSNAccInner(v streamer.Variant, cfg Config, devHook func(*nvme.Device)) (Result, *nvme.Device) {
	k := sim.NewKernel()
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	devCfg := nvme.DefaultConfig("ssd0", caseSSDBAR)
	devCfg.Functional = cfg.Functional
	dev := nvme.New(k, pl.Fabric, devCfg)
	if devHook != nil {
		devHook(dev)
	}
	stCfg := streamer.DefaultConfig("snacc0", 0, v)
	stCfg.Functional = cfg.Functional
	st := pl.AddStreamer(stCfg)
	drv := tapasco.NewDriver(pl, "ssd0", caseSSDBAR)

	fe := newFrontEnd(k, cfg)
	perImage := cfg.imageWriteBytes()
	var start, end sim.Time
	lat := &sim.Histogram{}

	k.Spawn("main", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			panic(err)
		}
		if err := drv.AttachStreamer(p, st, 1); err != nil {
			panic(err)
		}
		c := streamer.NewClient(st)
		start = p.Now()

		// Response-token consumer so writes pipeline. Tokens arrive in
		// image order (in-order retirement), so the i-th token pairs with
		// the i-th transmit timestamp for end-to-end latency.
		doneC := sim.NewChan[struct{}](k, 1)
		k.Spawn("dbtokens", func(tp *sim.Proc) {
			for i := 0; i < cfg.Images; i++ {
				c.WaitWrite(tp)
				if i < len(fe.sentAt) {
					lat.Add(tp.Now() - fe.sentAt[i])
				}
			}
			end = tp.Now()
			doneC.TryPut(struct{}{})
		})

		// Database controller PE: one write per image at a sequential
		// cursor — original frame (padded) followed by the record block.
		var cursor uint64
		for i := 0; i < cfg.Images; i++ {
			it := fe.out.Get(p)
			var payload []byte
			if cfg.Functional {
				payload = make([]byte, perImage)
				copy(payload, it.data)
				copy(payload[perImage-cfg.RecordBytes:], it.record)
			}
			c.WriteAsync(p, cursor, perImage, payload)
			cursor += uint64(perImage)
		}
		doneC.Get(p)
	})
	k.Run(0)

	res := Result{
		Variant:        variantName(v),
		Images:         cfg.Images,
		Bytes:          perImage * int64(cfg.Images),
		Elapsed:        end - start,
		PCIe:           map[string]int64{},
		ImageLatency:   lat,
		EthernetPauses: fe.tx.PausesHonored(),
		FramesDropped:  fe.rx.FramesDropped(),
		Errors:         dev.Errors() + st.CommandErrors(),
	}
	collectPCIe(&res, map[string]*pcie.Port{
		"card": pl.Card,
		"ssd":  dev.Port(),
		"host": pl.Host.Port,
	})
	return res, dev
}

// collectPCIe fills the Figure 7 accounting: payload bytes delivered into
// each port; the sum counts every transfer once at its destination.
func collectPCIe(res *Result, ports map[string]*pcie.Port) {
	for name, pt := range ports {
		res.PCIe[name] = pt.PayloadRx()
		res.PCIeTotal += pt.PayloadRx()
	}
}

// runSNAccWithFaults is a test hook: every Nth NVMe write fails with an
// internal error, exercising error propagation through the Streamer.
func runSNAccWithFaults(cfg Config, v streamer.Variant, everyN int64) (Result, *nvme.Device) {
	res, dev := runSNAccInner(v, cfg, func(d *nvme.Device) {
		n := int64(0)
		d.SetFaultInjector(func(cmd nvme.Command) uint16 {
			if cmd.Opcode != nvme.OpWrite {
				return nvme.StatusSuccess
			}
			n++
			if n%everyN == 0 {
				return nvme.StatusInternalError
			}
			return nvme.StatusSuccess
		})
	})
	return res, dev
}

// Package casestudy reproduces the paper's §6 evaluation: an image stream
// arrives over 100 G Ethernet, is downscaled to 224×224, classified by a
// streaming MobileNet-V1 accelerator (FINN-generated in the paper), and
// both the original image and its classification are persisted to an NVMe
// SSD — autonomously on the FPGA for the three SNAcc variants, through host
// software for the SPDK reference, and through host+GPU for the A100
// reference. Figure 6 (bandwidth) and Figure 7 (PCIe traffic) come from
// these runs.
package casestudy

import (
	"snacc/internal/imagestream"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// Config parameterizes a case-study run.
type Config struct {
	// Images is the stream length. The paper uses 16384 (147 GB); the
	// default here is smaller so tests and benches finish quickly —
	// bandwidth reaches steady state within a few dozen frames.
	Images int
	// Source geometry (defaults reproduce the paper's ~9 MB frames).
	Source imagestream.Config
	// ScaledBytes is the classifier input size (224×224×3).
	ScaledBytes int64
	// RecordBytes is the classification record stored with each image,
	// padded to one LBA.
	RecordBytes int64
	// ClassifierFPS is the streaming accelerator's throughput; MobileNet-V1
	// via FINN is chosen "due to its high throughput, with the aim to truly
	// stress our infrastructure" — it must not be the bottleneck.
	ClassifierFPS float64
	// ClassifierLatency is the pipeline latency per image.
	ClassifierLatency sim.Time
	// EthernetFrameBytes is the aggregate frame size used on the wire.
	EthernetFrameBytes int64
	// EthernetMTU overrides the MAC's maximum frame payload (0 keeps the
	// default 9000-byte jumbo frames; 1500 models a standard-MTU fabric).
	// Smaller frames raise the per-frame overhead share and lower the
	// 100 G link's payload ceiling.
	EthernetMTU int64
	// UseSwitch inserts an intermediary Ethernet switch between the
	// transmitter and the receiving FPGA (§4.7: the pause protocol "also
	// works with intermediary switches").
	UseSwitch bool
	// BatchSize is the double-buffered batch for the SPDK and GPU
	// references ("we process the incoming data in batches – e.g., 32
	// images", §6.1).
	BatchSize int
	// GPU reference parameters.
	GPUScaleCPUPerImage sim.Time // CPU downscale cost per image
	GPUKernelPerBatch   sim.Time // A100 inference latency per batch
	// KernelWorkers runs the SNAcc variants under the sharded
	// conservative-parallel scheduler (sim.Shard): the transmitter FPGA
	// (and the switch, when UseSwitch is set) becomes its own domain,
	// linked to the receive-side FPGA+SSD domain across the 100 G wire —
	// the one boundary in this topology with a declared minimum latency.
	// Each domain advances by its own safe time (per-inbound-edge earliest
	// output times, not a global lockstep window; see sim.Shard and
	// Shard.SyncStats for the overhead counters). 0 or 1 keeps the single
	// serial kernel. Results are identical either way (pinned by
	// TestSNAccKernelWorkersIdentical).
	KernelWorkers int
	// Functional moves real pixel bytes end to end (slow; tests only).
	Functional bool
	// Seed for deterministic content.
	Seed uint64
}

// DefaultConfig returns the paper's parameters with a shortened stream.
func DefaultConfig() Config {
	src := imagestream.DefaultConfig()
	src.Count = 192
	return Config{
		Images:              src.Count,
		Source:              src,
		ScaledBytes:         224 * 224 * 3,
		RecordBytes:         512,
		ClassifierFPS:       4000,
		ClassifierLatency:   800 * sim.Microsecond,
		EthernetFrameBytes:  64 * sim.KiB,
		BatchSize:           32,
		GPUScaleCPUPerImage: 95 * sim.Microsecond,
		GPUKernelPerBatch:   3600 * sim.Microsecond,
		Seed:                7,
	}
}

// Result summarizes one run.
type Result struct {
	Variant string
	Images  int
	// Bytes is the payload persisted to the SSD (images + records).
	Bytes   int64
	Elapsed sim.Time
	// PCIe accounts payload bytes delivered into each port (Figure 7) and
	// their total.
	PCIe      map[string]int64
	PCIeTotal int64
	// HostCPUBusy is accumulated data-path CPU time; BusyPolling marks
	// variants whose data-path thread spins at 100% regardless (§6.3).
	HostCPUBusy sim.Time
	BusyPolling bool
	// ImageLatency holds per-image end-to-end latency (last frame queued
	// at the transmitter → persistence acknowledged); SNAcc runs only.
	ImageLatency *sim.Histogram
	// EthernetPauses counts flow-control events at the transmitter.
	EthernetPauses int64
	FramesDropped  int64
	Errors         int64
}

// GBps returns persisted decimal gigabytes per second (Figure 6's y-axis).
func (r Result) GBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / 1e9
}

// FPS returns classified-and-stored frames per second.
func (r Result) FPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Images) / r.Elapsed.Seconds()
}

// imageWriteBytes is the per-image persisted payload: the raw frame padded
// to the LBA size plus one record block.
func (c Config) imageWriteBytes() int64 {
	img := imagestream.Image{Width: c.Source.Width, Height: c.Source.Height, Channels: c.Source.Channels}.Bytes()
	padded := (img + 511) &^ 511
	return padded + c.RecordBytes
}

// variantName labels SNAcc runs.
func variantName(v streamer.Variant) string { return "SNAcc/" + v.String() }

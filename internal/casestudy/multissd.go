package casestudy

import (
	"fmt"

	"snacc/internal/nvme"
	"snacc/internal/pcie"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

// RunSNAccStriped executes the case study with the §7 multi-SSD extension:
// the database controller persists through a striped set of n Streamer+SSD
// pairs consolidated into one address space. The paper's closing
// observation — "our single NVMe cannot keep-up with the 100G network
// rate, even though the PCIe bus is not fully loaded" — resolves here:
// with two or more SSDs the pipeline runs into the 100 G link itself.
func RunSNAccStriped(n int, cfg Config) Result {
	k := sim.NewKernel()
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	var sts []*streamer.Streamer
	var devs []*nvme.Device
	var drvs []*tapasco.Driver
	for i := 0; i < n; i++ {
		bar := uint64(caseSSDBAR) + uint64(i)*0x100000
		name := fmt.Sprintf("ssd%d", i)
		devCfg := nvme.DefaultConfig(name, bar)
		devCfg.Functional = cfg.Functional
		devs = append(devs, nvme.New(k, pl.Fabric, devCfg))
		// URAM members: their P2P fetch paths are fully independent, so
		// aggregate bandwidth scales with the SSD count until the network
		// or the card link caps it.
		stCfg := streamer.DefaultConfig(fmt.Sprintf("snacc%d", i), 0, streamer.URAM)
		stCfg.Functional = cfg.Functional
		sts = append(sts, pl.AddStreamer(stCfg))
		drvs = append(drvs, tapasco.NewDriver(pl, name, bar))
	}

	fe := newFrontEnd(k, cfg)
	perImage := cfg.imageWriteBytes()
	// Stripe-aligned cursor: each image starts on a stripe boundary.
	stride := (perImage + sim.MiB - 1) &^ (sim.MiB - 1)
	var start, end sim.Time

	k.Spawn("main", func(p *sim.Proc) {
		for i := range drvs {
			if err := drvs[i].InitController(p); err != nil {
				panic(err)
			}
			if err := drvs[i].AttachStreamer(p, sts[i], 1); err != nil {
				panic(err)
			}
		}
		striped := streamer.NewStriped(k, sts, sim.MiB)
		start = p.Now()
		done := sim.NewChan[struct{}](k, 1)
		k.Spawn("dbtokens", func(tp *sim.Proc) {
			for i := 0; i < cfg.Images; i++ {
				striped.WaitWrite(tp)
			}
			end = tp.Now()
			done.TryPut(struct{}{})
		})
		k.Spawn("db", func(dp *sim.Proc) {
			var cursor uint64
			for i := 0; i < cfg.Images; i++ {
				it := fe.out.Get(dp)
				var payload []byte
				if cfg.Functional {
					payload = make([]byte, perImage)
					copy(payload, it.data)
					copy(payload[perImage-cfg.RecordBytes:], it.record)
				}
				striped.WriteAsync(dp, cursor, perImage, payload)
				cursor += uint64(stride)
			}
		})
		done.Get(p)
	})
	k.Run(0)

	res := Result{
		Variant:        fmt.Sprintf("SNAcc/Striped-%d", n),
		Images:         cfg.Images,
		Bytes:          perImage * int64(cfg.Images),
		Elapsed:        end - start,
		PCIe:           map[string]int64{},
		EthernetPauses: fe.tx.PausesHonored(),
		FramesDropped:  fe.rx.FramesDropped(),
	}
	ports := map[string]*pcie.Port{"card": pl.Card, "host": pl.Host.Port}
	for i, d := range devs {
		ports[fmt.Sprintf("ssd%d", i)] = d.Port()
		res.Errors += d.Errors()
	}
	for _, st := range sts {
		res.Errors += st.CommandErrors()
	}
	collectPCIe(&res, ports)
	return res
}

package casestudy

import (
	"snacc/internal/nvme"
	"snacc/internal/pcie"
	"snacc/internal/sim"
	"snacc/internal/spdk"
)

// RunSPDK executes the §6.1 SPDK reference: the FPGA still receives,
// scales and classifies, but "the host will need to manage saving the
// resulting data" — the card DMAs image+classification batches into host
// memory, and a host thread writes them to the SSD with SPDK, double
// buffered so classification overlaps both transfer legs.
func RunSPDK(cfg Config) Result {
	k := sim.NewKernel()
	f := pcie.NewFabric(k, pcie.DefaultConfig())
	hostCfg := pcie.DefaultHostConfig()
	hostCfg.MemSize = 24 * sim.GiB
	host := pcie.NewHost(f, hostCfg)
	devCfg := nvme.DefaultConfig("ssd0", caseSSDBAR)
	devCfg.Functional = cfg.Functional
	dev := nvme.New(k, f, devCfg)
	f.IOMMU().Grant("ssd0", hostCfg.MemBase, hostCfg.MemSize)

	// The FPGA card acts as the accelerator front end plus a DMA engine
	// toward host memory.
	card := f.AttachPort("card", pcie.LinkConfig{
		Gen: pcie.Gen3, Lanes: 16, MaxReadRequest: 4096, ReadCredits: 8,
	}, nil)
	f.IOMMU().Grant("card", hostCfg.MemBase, hostCfg.MemSize)

	fe := newFrontEnd(k, cfg)
	perImage := cfg.imageWriteBytes()
	batchBytes := perImage * int64(cfg.BatchSize)

	// Double-buffered batch ring in pinned host memory.
	bufs := []uint64{
		host.Alloc(batchBytes, nvme.PageSize),
		host.Alloc(batchBytes, nvme.PageSize),
	}
	bufFree := sim.NewChan[int](k, 2)
	bufReady := sim.NewChan[batchDesc](k, 2)
	bufFree.TryPut(0)
	bufFree.TryPut(1)

	var start, end sim.Time
	var cpuBusy sim.Time

	// FPGA-side DMA: fill the current batch buffer image by image.
	k.Spawn("dma", func(p *sim.Proc) {
		p.SetDaemon(true)
		count := 0
		for count < cfg.Images {
			idx := bufFree.Get(p)
			n := cfg.BatchSize
			if rem := cfg.Images - count; n > rem {
				n = rem
			}
			for i := 0; i < n; i++ {
				it := fe.out.Get(p)
				var payload []byte
				if cfg.Functional {
					payload = make([]byte, perImage)
					copy(payload, it.data)
					copy(payload[perImage-cfg.RecordBytes:], it.record)
				}
				card.WriteB(p, bufs[idx]+uint64(int64(i)*perImage), perImage, payload)
				count++
			}
			bufReady.Put(p, batchDesc{idx: idx, images: n})
		}
	})

	// Host thread: SPDK writes each ready batch, then recycles the buffer.
	k.Spawn("host", func(p *sim.Proc) {
		drvCfg := spdk.DefaultDriverConfig()
		drvCfg.Functional = cfg.Functional
		d, err := spdk.Attach(p, host, caseSSDBAR, drvCfg)
		if err != nil {
			panic(err)
		}
		var cursor uint64
		written := 0
		for written < cfg.Images {
			b := bufReady.Get(p)
			if written == 0 {
				// Steady-state measurement starts once the pipeline has
				// filled; the paper's 16384-image stream amortizes this
				// ramp to nothing.
				start = p.Now()
			}
			tGet := p.Now()
			n := int64(b.images) * perImage
			// One CPU-managed write per batch; SPDK splits into 1 MiB
			// commands internally. The data-path core also pays a per-image
			// management cost (batch bookkeeping, §6.3's "doing nothing but
			// moving data around").
			d.CPU().Occupy(sim.Time(b.images) * 2 * sim.Microsecond)
			if err := d.Write(p, cursor/512, uint32(n/512), bufs[b.idx], nil); err != nil {
				panic(err)
			}
			cursor += uint64(n)
			written += b.images
			if debugBatch != nil {
				debugBatch(tGet, p.Now())
			}
			bufFree.Put(p, b.idx)
		}
		end = p.Now()
		cpuBusy = d.CPU().BusyTime()
	})
	k.Run(0)

	res := Result{
		Variant:        "SPDK",
		Images:         cfg.Images,
		Bytes:          perImage * int64(cfg.Images),
		Elapsed:        end - start,
		PCIe:           map[string]int64{},
		HostCPUBusy:    cpuBusy,
		BusyPolling:    true,
		EthernetPauses: fe.tx.PausesHonored(),
		FramesDropped:  fe.rx.FramesDropped(),
		Errors:         dev.Errors(),
	}
	collectPCIe(&res, map[string]*pcie.Port{
		"card": card,
		"ssd":  dev.Port(),
		"host": host.Port,
	})
	return res
}

type batchDesc struct {
	idx    int
	images int
}

// debugBatch is a test-only probe of the host write leg.
var debugBatch func(start, end sim.Time)

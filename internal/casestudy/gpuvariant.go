package casestudy

import (
	"snacc/internal/nvme"
	"snacc/internal/pcie"
	"snacc/internal/sim"
	"snacc/internal/spdk"
)

const gpuBAR = 0x40_0000_0000

// RunGPU executes the §6.1 GPU reference: the FPGA serves only as the NIC,
// raw images land in host memory, CPU threads downscale and shuttle batches
// to an A100 for classification (PyTorch in the paper, with the transfer
// plumbing in C++), and SPDK persists originals plus classifications.
// "This solution incurs more PCIe traffic since the downscaled images must
// be transferred to the GPU, and the classifications must be retrieved
// from it" — with only double buffering, the host-side classify leg
// serializes against the SSD write for the same buffer, which is what
// keeps this variant below the SPDK reference in Figure 6.
func RunGPU(cfg Config) Result {
	k := sim.NewKernel()
	f := pcie.NewFabric(k, pcie.DefaultConfig())
	hostCfg := pcie.DefaultHostConfig()
	hostCfg.MemSize = 24 * sim.GiB
	host := pcie.NewHost(f, hostCfg)
	devCfg := nvme.DefaultConfig("ssd0", caseSSDBAR)
	devCfg.Functional = cfg.Functional
	dev := nvme.New(k, f, devCfg)
	f.IOMMU().Grant("ssd0", hostCfg.MemBase, hostCfg.MemSize)

	// NIC (the FPGA, used only for its 100 G interface here).
	nic := f.AttachPort("nic", pcie.LinkConfig{
		Gen: pcie.Gen3, Lanes: 16, MaxReadRequest: 4096, ReadCredits: 8,
	}, nil)
	f.IOMMU().Grant("nic", hostCfg.MemBase, hostCfg.MemSize)

	// A100: Gen4 x16 with fast device memory.
	gpuMem := pcie.NewMemCompleter(k, 600e9, 500*sim.Nanosecond)
	gpu := f.AttachPort("gpu", pcie.LinkConfig{Gen: pcie.Gen4, Lanes: 16}, gpuMem)
	f.MapRange(gpu, gpuBAR, 32*sim.GiB)
	f.IOMMU().Grant("gpu", hostCfg.MemBase, hostCfg.MemSize)

	fe := newFrontEndNICOnly(k, cfg)
	perImage := cfg.imageWriteBytes()
	batchBytes := perImage * int64(cfg.BatchSize)

	bufs := []uint64{
		host.Alloc(batchBytes, nvme.PageSize),
		host.Alloc(batchBytes, nvme.PageSize),
	}
	scaledBuf := host.Alloc(cfg.ScaledBytes*int64(cfg.BatchSize), nvme.PageSize)
	bufFree := sim.NewChan[int](k, 2)
	bufReady := sim.NewChan[batchDesc](k, 2)
	bufFree.TryPut(0)
	bufFree.TryPut(1)

	var start, end sim.Time
	var cpuBusy sim.Time

	// NIC DMA: raw frames into the current batch buffer.
	k.Spawn("nicdma", func(p *sim.Proc) {
		p.SetDaemon(true)
		count := 0
		for count < cfg.Images {
			idx := bufFree.Get(p)
			n := cfg.BatchSize
			if rem := cfg.Images - count; n > rem {
				n = rem
			}
			for i := 0; i < n; i++ {
				it := fe.out.Get(p)
				var payload []byte
				if cfg.Functional {
					payload = make([]byte, perImage)
					copy(payload, it.data)
				}
				nic.WriteB(p, bufs[idx]+uint64(int64(i)*perImage), perImage, payload)
				count++
			}
			bufReady.Put(p, batchDesc{idx: idx, images: n})
		}
	})

	// Host thread: per batch — CPU downscale, H2D, kernel, D2H, SPDK write.
	k.Spawn("host", func(p *sim.Proc) {
		drvCfg := spdk.DefaultDriverConfig()
		drvCfg.Functional = cfg.Functional
		d, err := spdk.Attach(p, host, caseSSDBAR, drvCfg)
		if err != nil {
			panic(err)
		}
		cpu := d.CPU()
		var cursor uint64
		written := 0
		for written < cfg.Images {
			b := bufReady.Get(p)
			if debugBatch != nil {
				debugBatch(p.Now(), 0)
			}
			if written == 0 {
				// Steady-state measurement starts once the pipeline has
				// filled; the paper's 16384-image stream amortizes this
				// ramp to nothing.
				start = p.Now()
			}
			// CPU downscale of every image in the batch.
			occupyServer(p, cpu, sim.Time(b.images)*cfg.GPUScaleCPUPerImage)
			// Scaled batch to the GPU, classifications back.
			host.Port.WriteB(p, gpuBAR, cfg.ScaledBytes*int64(b.images), nil)
			p.Sleep(cfg.GPUKernelPerBatch)
			host.Port.ReadB(p, gpuBAR, cfg.RecordBytes*int64(b.images), nil)
			// Stamp records into the batch buffer (host memory, no bus
			// cost beyond what the record DMA above already paid).
			if cfg.Functional {
				for i := 0; i < b.images; i++ {
					rec := buildRecord(imagestreamAt(cfg, written+i), nil, cfg.RecordBytes)
					host.Mem.Store().WriteBytes(bufs[b.idx]-hostCfg.MemBase+uint64(int64(i+1)*perImage)-uint64(cfg.RecordBytes), rec)
				}
			}
			_ = scaledBuf
			// Persist originals + classifications.
			n := int64(b.images) * perImage
			occupyServer(p, cpu, sim.Time(b.images)*2*sim.Microsecond)
			if err := d.Write(p, cursor/512, uint32(n/512), bufs[b.idx], nil); err != nil {
				panic(err)
			}
			cursor += uint64(n)
			written += b.images
			bufFree.Put(p, b.idx)
		}
		end = p.Now()
		cpuBusy = cpu.BusyTime()
	})
	k.Run(0)

	res := Result{
		Variant:        "GPU",
		Images:         cfg.Images,
		Bytes:          perImage * int64(cfg.Images),
		Elapsed:        end - start,
		PCIe:           map[string]int64{},
		HostCPUBusy:    cpuBusy,
		BusyPolling:    true,
		EthernetPauses: fe.tx.PausesHonored(),
		FramesDropped:  fe.rx.FramesDropped(),
		Errors:         dev.Errors(),
	}
	collectPCIe(&res, map[string]*pcie.Port{
		"card": nic,
		"ssd":  dev.Port(),
		"host": host.Port,
		"gpu":  gpu,
	})
	return res
}

package nvme

import "encoding/binary"

// Get Log Page support (admin opcode 0x02): the error-information log and
// the SMART/health log, the two pages every NVMe tool reads first. The
// device records failed commands and lifetime data-movement counters and
// serves them through the standard page layouts.

// OpGetLogPage is the admin opcode.
const OpGetLogPage uint8 = 0x02

// Log page identifiers.
const (
	LogPageError uint8 = 0x01
	LogPageSMART uint8 = 0x02
)

// ErrorLogEntry mirrors the 64-byte error-information entry.
type ErrorLogEntry struct {
	ErrorCount uint64
	SQID       uint16
	CID        uint16
	Status     uint16
	LBA        uint64
}

// marshalErrorEntry encodes the entry at the spec offsets.
func marshalErrorEntry(e ErrorLogEntry, b []byte) {
	binary.LittleEndian.PutUint64(b[0:], e.ErrorCount)
	binary.LittleEndian.PutUint16(b[8:], e.SQID)
	binary.LittleEndian.PutUint16(b[10:], e.CID)
	binary.LittleEndian.PutUint16(b[12:], e.Status<<1) // status field is shifted per spec
	binary.LittleEndian.PutUint64(b[16:], e.LBA)
}

// UnmarshalErrorEntry decodes one 64-byte error-information entry; the
// inverse of the device's page encoding.
func UnmarshalErrorEntry(b []byte) ErrorLogEntry {
	return ErrorLogEntry{
		ErrorCount: binary.LittleEndian.Uint64(b[0:]),
		SQID:       binary.LittleEndian.Uint16(b[8:]),
		CID:        binary.LittleEndian.Uint16(b[10:]),
		Status:     binary.LittleEndian.Uint16(b[12:]) >> 1,
		LBA:        binary.LittleEndian.Uint64(b[16:]),
	}
}

const errorLogEntries = 64

// recordError appends to the error log ring (called from complete()).
func (d *Device) recordError(q *queuePair, cmd Command, status uint16) {
	d.errorCount++
	e := ErrorLogEntry{
		ErrorCount: d.errorCount,
		SQID:       q.id,
		CID:        cmd.CID,
		Status:     status,
		LBA:        cmd.SLBA(),
	}
	if len(d.errorLog) < errorLogEntries {
		d.errorLog = append(d.errorLog, e)
		return
	}
	copy(d.errorLog, d.errorLog[1:])
	d.errorLog[len(d.errorLog)-1] = e
}

// ErrorLog returns a copy of the recorded entries, newest last.
func (d *Device) ErrorLog() []ErrorLogEntry {
	return append([]ErrorLogEntry(nil), d.errorLog...)
}

// adminGetLogPage serves the error and SMART pages.
func (d *Device) adminGetLogPage(q *queuePair, cmd Command) {
	lid := uint8(cmd.CDW10 & 0xFF)
	// NUMD (number of dwords, 0-based) spans CDW10 31:16 (+ CDW11 low in
	// NVMe 1.3+; the model supports one-page reads).
	numd := int64(cmd.CDW10>>16) + 1
	n := numd * 4
	if n > PageSize {
		d.complete(q, cmd, StatusInvalidField, 0)
		return
	}
	page := make([]byte, PageSize)
	switch lid {
	case LogPageError:
		for i, e := range d.errorLog {
			if (i+1)*64 > len(page) {
				break
			}
			// Newest entry first, per spec.
			marshalErrorEntry(d.errorLog[len(d.errorLog)-1-i], page[i*64:])
			_ = e
		}
	case LogPageSMART:
		// Composite temperature in Kelvin at byte 1 (16-bit).
		binary.LittleEndian.PutUint16(page[1:], 273+40)
		// Data Units Read/Written: 16-byte little-endian counters of
		// thousand-512-byte units, at offsets 32 and 48.
		putUint128(page[32:], uint64(d.dataUnitsRead))
		putUint128(page[48:], uint64(d.dataUnitsWritten))
		// Host read/write commands at offsets 64 and 80.
		putUint128(page[64:], uint64(d.hostReads))
		putUint128(page[80:], uint64(d.hostWrites))
		// Number of error log entries at offset 176.
		putUint128(page[176:], d.errorCount)
	default:
		d.complete(q, cmd, StatusInvalidField, 0)
		return
	}
	d.port.Write(cmd.PRP1, n, page[:n], func() {
		d.complete(q, cmd, StatusSuccess, 0)
	})
}

func putUint128(b []byte, v uint64) {
	binary.LittleEndian.PutUint64(b, v)
	for i := 8; i < 16; i++ {
		b[i] = 0
	}
}

// accountIO updates SMART counters (spec: one data unit = 1000 units of
// 512 bytes, rounded up).
func (d *Device) accountIO(op uint8, bytes int64) {
	units := (bytes/512 + 999) / 1000
	if units == 0 {
		units = 1
	}
	if op == OpRead {
		d.hostReads++
		d.dataUnitsRead += units
	} else {
		d.hostWrites++
		d.dataUnitsWritten += units
	}
}

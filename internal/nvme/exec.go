package nvme

import (
	"encoding/binary"

	"snacc/internal/bufpool"
	"snacc/internal/obs"
	"snacc/internal/sim"
)

// MaxTransferBytes is the device's MDTS (2 MiB with 4 KiB pages).
const MaxTransferBytes = 2 * sim.MiB

// extent is one physically contiguous data run on the bus.
type extent struct {
	addr uint64
	len  int64
}

// executeIO runs one I/O command to completion. Controller-level faults
// (crash/hang/removal) are evaluated in complete(), not here: the device
// overlaps up to ExecContexts executions, so an execution-start counter
// could fire before ANY command of a replayed window retires and a
// recurring crash rule would livelock the recovery ladder. Counting
// completions guarantees N-1 commands survive each crash-every-N episode.
func (d *Device) executeIO(q *queuePair, cmd Command) {
	if d.cmdObserver != nil {
		d.cmdObserver(q.id, cmd.CID, obs.StageTransfer, d.k.Now())
	}
	if cmd.PSDT != 0 {
		// SGL data pointers are not implemented (nor used by SNAcc).
		d.complete(q, cmd, StatusInvalidField, 0)
		return
	}
	if d.faultInjector != nil {
		if status := d.faultInjector(cmd); status != StatusSuccess {
			d.complete(q, cmd, status, 0)
			return
		}
	}
	switch cmd.Opcode {
	case OpFlush:
		d.nand.Flush(func() { d.complete(q, cmd, StatusSuccess, 0) })
	case OpRead:
		d.executeRead(q, cmd)
	case OpWrite:
		d.executeWrite(q, cmd)
	case OpWriteZeroes:
		d.executeWriteZeroes(q, cmd)
	case OpDatasetMgmt:
		d.executeDatasetMgmt(q, cmd)
	default:
		d.complete(q, cmd, StatusInvalidOpcode, 0)
	}
}

// validateRange checks namespace and LBA bounds, returning the transfer size
// in bytes, the media byte offset, and a status.
func (d *Device) validateRange(cmd Command) (total int64, off uint64, status uint16) {
	if cmd.NSID != 1 {
		return 0, 0, StatusInvalidNSID
	}
	total = int64(cmd.NLB()+1) * d.cfg.LBASize
	if total > MaxTransferBytes {
		return 0, 0, StatusInvalidField
	}
	// Bounds-check in LBA space: a huge SLBA must not overflow the byte
	// arithmetic and slip past the check.
	maxLBA := uint64(d.cfg.NamespaceBytes / d.cfg.LBASize)
	slba := cmd.SLBA()
	if slba >= maxLBA || uint64(cmd.NLB())+1 > maxLBA-slba {
		return 0, 0, StatusLBAOutOfRange
	}
	return total, slba * uint64(d.cfg.LBASize), StatusSuccess
}

// resolvePRPs produces the bus extents for a transfer of total bytes
// described by PRP1/PRP2, fetching the PRP list over the fabric when the
// transfer spans more than two pages. This fetch is the transaction the
// SNAcc Streamer answers with on-the-fly computed entries (paper Figs. 2/3).
func (d *Device) resolvePRPs(cmd Command, total int64, fn func(runs []extent, status uint16)) {
	first := extent{addr: cmd.PRP1, len: PageSize - int64(cmd.PRP1%PageSize)}
	if first.len >= total {
		first.len = total
		fn(coalesce([]extent{first}), StatusSuccess)
		return
	}
	remaining := total - first.len
	if remaining <= PageSize {
		// PRP2 points directly at the second (final) page.
		if cmd.PRP2%PageSize != 0 {
			fn(nil, StatusInvalidField)
			return
		}
		fn(coalesce([]extent{first, {addr: cmd.PRP2, len: remaining}}), StatusSuccess)
		return
	}
	// PRP2 is a pointer to a PRP list. Entry count is bounded by MDTS
	// (2 MiB / 4 KiB = 512 entries), which fits one page when the list
	// starts page-aligned — both our Streamer and the SPDK driver model
	// build page-aligned lists, matching the paper's 1 MiB commands with
	// one 255-entry list.
	entries := int((remaining + PageSize - 1) / PageSize)
	if cmd.PRP2%8 != 0 || int64(cmd.PRP2%PageSize)+int64(entries*8) > PageSize {
		fn(nil, StatusInvalidField)
		return
	}
	// The list buffer recycles through the pool: the completer fills it
	// before the callback runs, and the extents below copy the addresses out.
	listBuf := bufpool.Get(entries * 8)
	d.port.ReadCtrl(cmd.PRP2, int64(len(listBuf)), listBuf, func() {
		defer bufpool.Put(listBuf)
		runs := make([]extent, 0, entries+1)
		runs = append(runs, first)
		left := remaining
		for i := 0; i < entries; i++ {
			addr := binary.LittleEndian.Uint64(listBuf[i*8:])
			if addr%PageSize != 0 {
				fn(nil, StatusInvalidField)
				return
			}
			n := int64(PageSize)
			if n > left {
				n = left
			}
			runs = append(runs, extent{addr: addr, len: n})
			left -= n
		}
		fn(coalesce(runs), StatusSuccess)
	})
}

// coalesce merges bus-adjacent extents so the DMA engine issues long
// transfers when PRPs are contiguous — which they always are for the
// Streamer's buffers and usually are for SPDK's.
func coalesce(runs []extent) []extent {
	out := runs[:0]
	for _, r := range runs {
		if len(out) > 0 && out[len(out)-1].addr+uint64(out[len(out)-1].len) == r.addr {
			out[len(out)-1].len += r.len
			continue
		}
		out = append(out, r)
	}
	return out
}

// executeRead services an NVMe read: NAND array read, then posted writes of
// the data into the PRP extents. Posted writes stream at link rate, which is
// why every SNAcc buffer variant reaches the full 6.9 GB/s sequential read
// bandwidth (§5.2).
func (d *Device) executeRead(q *queuePair, cmd Command) {
	total, off, status := d.validateRange(cmd)
	if status != StatusSuccess {
		d.complete(q, cmd, status, 0)
		return
	}
	d.accountIO(OpRead, total)
	d.resolvePRPs(cmd, total, func(runs []extent, status uint16) {
		if status != StatusSuccess {
			d.complete(q, cmd, status, 0)
			return
		}
		var media []byte
		if d.cfg.Functional {
			media = make([]byte, total)
		}
		d.nand.Read(off, total, media, func() {
			outstanding := len(runs)
			var pos int64
			for _, r := range runs {
				var data []byte
				if media != nil {
					data = media[pos : pos+r.len]
				}
				pos += r.len
				d.port.Write(r.addr, r.len, data, func() {
					outstanding--
					if outstanding == 0 {
						d.complete(q, cmd, StatusSuccess, 0)
					}
				})
			}
		})
	})
}

// executeWrite services an NVMe write: reserve write-buffer space, pull the
// payload from the PRP extents with credit-limited reads (the P2P-sensitive
// path), then complete once buffered while the NAND array programs in the
// background.
func (d *Device) executeWrite(q *queuePair, cmd Command) {
	total, off, status := d.validateRange(cmd)
	if status != StatusSuccess {
		d.complete(q, cmd, status, 0)
		return
	}
	d.accountIO(OpWrite, total)
	d.resolvePRPs(cmd, total, func(runs []extent, status uint16) {
		if status != StatusSuccess {
			d.complete(q, cmd, status, 0)
			return
		}
		d.nand.ReserveBuffer(total, func() {
			var media []byte
			if d.cfg.Functional {
				media = make([]byte, total)
			}
			outstanding := len(runs)
			var pos int64
			for _, r := range runs {
				var buf []byte
				if media != nil {
					buf = media[pos : pos+r.len]
				}
				pos += r.len
				d.port.Read(r.addr, r.len, buf, func() {
					outstanding--
					if outstanding == 0 {
						d.nand.Program(off, total, media)
						d.complete(q, cmd, StatusSuccess, 0)
					}
				})
			}
		})
	})
}

package nvme

import (
	"testing"

	"snacc/internal/sim"
)

// Controller-failure-model tests: every modeled fault path must surface as
// host-visible status (CSTS.CFS, all-1s reads, missing completions) and
// never as a panic out of sim.Kernel.Run.

// csts reads the controller status register.
func (tb *testbench) csts() uint32 {
	buf := make([]byte, 4)
	tb.host.Port.Read(tb.bar+RegCSTS, 4, buf, nil)
	tb.k.Run(0)
	return le32(buf)
}

// ioNoWait submits one I/O SQE and returns how many completions arrived —
// unlike io it tolerates a dead controller posting nothing.
func (tb *testbench) ioNoWait(cmd Command) int {
	tb.host.Mem.Store().WriteBytes(tb.ioSQ-tb.host.Mem.Base+uint64(tb.ioTail*SQESize), cmd.Marshal())
	tb.ioTail = (tb.ioTail + 1) % tbDepth
	before := len(tb.completions)
	tb.host.Port.Write(tb.bar+RegDoorbellBase+8, 4, le32b(uint32(tb.ioTail)), nil)
	tb.k.Run(0)
	return len(tb.completions) - before
}

// rebuild re-runs bring-up after a controller reset.
func (tb *testbench) rebuild() {
	tb.aTail, tb.aHead, tb.aPhase = 0, 0, true
	tb.ioTail, tb.ioHead, tb.ioPhase = 0, 0, true
	tb.enable()
	tb.createIOQueues()
}

func TestCrashUnmodeledRegisterWriteLatchesCFS(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.host.Port.Write(tb.bar+0xF0, 4, le32b(0xDEAD), nil)
	tb.k.Run(0)
	if tb.csts()&CSTSFatal == 0 {
		t.Fatal("unmodeled register write did not latch CSTS.CFS")
	}
	if tb.dev.Mode() != ModeCrashed {
		t.Fatalf("mode = %d, want crashed", tb.dev.Mode())
	}
	// A controller reset clears the fatal status and revives the device.
	tb.host.Port.Write(tb.bar+RegCC, 4, le32b(0), nil)
	tb.k.Run(0)
	if tb.csts()&CSTSFatal != 0 {
		t.Fatal("CSTS.CFS survived a controller reset")
	}
	tb.rebuild()
	cmd := Command{Opcode: OpRead, CID: 50, NSID: 1, PRP1: tb.host.Alloc(PageSize, PageSize)}
	cmd.SetNLB(7)
	if c := tb.io(cmd); c.Status != StatusSuccess {
		t.Fatalf("I/O after reset: %#x", c.Status)
	}
}

func TestCrashUnmodeledRegisterReadLatchesCFS(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	buf := []byte{0xAA, 0xAA, 0xAA, 0xAA}
	tb.host.Port.Read(tb.bar+0xF0, 4, buf, nil)
	tb.k.Run(0)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("unmodeled register read byte %d = %#x, want 0", i, b)
		}
	}
	if tb.csts()&CSTSFatal == 0 {
		t.Fatal("unmodeled register read did not latch CSTS.CFS")
	}
}

func TestCrashUnknownQueueDoorbellLatchesCFS(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	// SQ tail doorbell for queue 5, which was never created.
	tb.host.Port.Write(tb.bar+RegDoorbellBase+uint64(2*5*4), 4, le32b(1), nil)
	tb.k.Run(0)
	if tb.csts()&CSTSFatal == 0 {
		t.Fatal("unknown-queue doorbell did not latch CSTS.CFS")
	}
}

func TestCrashDoorbellOutOfRangeLatchesCFS(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.host.Port.Write(tb.bar+RegDoorbellBase, 4, le32b(uint32(tbDepth+5)), nil)
	tb.k.Run(0)
	if tb.csts()&CSTSFatal == 0 {
		t.Fatal("out-of-range doorbell did not latch CSTS.CFS")
	}
}

func TestCrashInjectedAtCommandStopsCompletions(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	tb.dev.SetCtrlFaultInjector(func(cmd Command) CtrlFault {
		return CtrlFault{Crash: true}
	})
	cmd := Command{Opcode: OpRead, CID: 60, NSID: 1, PRP1: tb.host.Alloc(PageSize, PageSize)}
	cmd.SetNLB(7)
	if n := tb.ioNoWait(cmd); n != 0 {
		t.Fatalf("crashed controller posted %d completions", n)
	}
	if tb.csts()&CSTSFatal == 0 {
		t.Fatal("injected crash did not latch CSTS.CFS")
	}
	if tb.dev.ControllerCrashes() != 1 {
		t.Fatalf("crashes = %d, want 1", tb.dev.ControllerCrashes())
	}
	// Recover: reset, rebuild, clear the injector, run a command.
	tb.dev.SetCtrlFaultInjector(nil)
	tb.host.Port.Write(tb.bar+RegCC, 4, le32b(0), nil)
	tb.k.Run(0)
	tb.rebuild()
	cmd.CID = 61
	if c := tb.io(cmd); c.Status != StatusSuccess {
		t.Fatalf("I/O after crash recovery: %#x", c.Status)
	}
	if tb.dev.CQEsLost() == 0 {
		t.Fatal("the crashed command's completion was not counted as lost")
	}
}

func TestCrashHangParksThenRevives(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	fired := false
	tb.dev.SetCtrlFaultInjector(func(cmd Command) CtrlFault {
		if fired {
			return CtrlFault{}
		}
		fired = true
		return CtrlFault{Hang: 2 * sim.Millisecond}
	})
	start := tb.k.Now()
	cmd := Command{Opcode: OpRead, CID: 70, NSID: 1, PRP1: tb.host.Alloc(PageSize, PageSize)}
	cmd.SetNLB(7)
	c := tb.io(cmd) // k.Run drains through the revive timer
	if c.Status != StatusSuccess {
		t.Fatalf("post-revive status %#x", c.Status)
	}
	if el := tb.k.Now() - start; el < 2*sim.Millisecond {
		t.Fatalf("completion after %v, inside the 2 ms hang window", el)
	}
	if tb.dev.ControllerHangs() != 1 {
		t.Fatalf("hangs = %d, want 1", tb.dev.ControllerHangs())
	}
	if tb.dev.Mode() != ModeHealthy {
		t.Fatalf("mode = %d after revive, want healthy", tb.dev.Mode())
	}
}

func TestCrashSurpriseRemovalFloatsAllOnes(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	tb.dev.Remove()
	if v := tb.csts(); v != ^uint32(0) {
		t.Fatalf("CSTS after removal = %#x, want all-1s", v)
	}
	cmd := Command{Opcode: OpRead, CID: 80, NSID: 1, PRP1: tb.host.Alloc(PageSize, PageSize)}
	cmd.SetNLB(7)
	if n := tb.ioNoWait(cmd); n != 0 {
		t.Fatalf("removed controller posted %d completions", n)
	}
	// No reset can bring it back.
	tb.host.Port.Write(tb.bar+RegCC, 4, le32b(0), nil)
	tb.host.Port.Write(tb.bar+RegCC, 4, le32b(CCEnable), nil)
	tb.k.Run(0)
	if v := tb.csts(); v != ^uint32(0) {
		t.Fatalf("removed controller answered a reset: CSTS = %#x", v)
	}
}

func TestCrashShutdownHandshake(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	// CC.SHN = normal shutdown; keep EN set per spec.
	tb.host.Port.Write(tb.bar+RegCC, 4, le32b(CCEnable|CCShutdownNormal), nil)
	// Poll without draining the event queue: processing must be visible
	// before the ShutdownDelay elapses.
	var seen uint32
	tb.k.Spawn("poll", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		buf := make([]byte, 4)
		tb.host.Port.ReadB(p, tb.bar+RegCSTS, 4, buf)
		seen = le32(buf)
	})
	tb.k.Run(0)
	if seen&CSTSShutdownMask != CSTSShutdownProcessing {
		t.Fatalf("CSTS.SHST during shutdown = %#x, want processing", seen&CSTSShutdownMask)
	}
	if tb.csts()&CSTSShutdownMask != CSTSShutdownComplete {
		t.Fatal("shutdown never reported complete")
	}
	// A shut-down controller fetches nothing.
	cmd := Command{Opcode: OpRead, CID: 90, NSID: 1, PRP1: tb.host.Alloc(PageSize, PageSize)}
	cmd.SetNLB(7)
	if n := tb.ioNoWait(cmd); n != 0 {
		t.Fatalf("shut-down controller posted %d completions", n)
	}
	// Reset + rebuild restarts it.
	tb.host.Port.Write(tb.bar+RegCC, 4, le32b(0), nil)
	tb.k.Run(0)
	tb.rebuild()
	cmd.CID = 91
	if c := tb.io(cmd); c.Status != StatusSuccess {
		t.Fatalf("I/O after shutdown+reset: %#x", c.Status)
	}
}

// TestCrashNoModeledFaultPanics drives every host-reachable abuse path in
// one run: nothing may escape sim.Kernel.Run as a panic.
func TestCrashNoModeledFaultPanics(t *testing.T) {
	abuses := []func(tb *testbench){
		func(tb *testbench) { tb.host.Port.Write(tb.bar+0x48, 4, le32b(1), nil) },
		func(tb *testbench) { tb.host.Port.Read(tb.bar+0x48, 4, make([]byte, 4), nil) },
		func(tb *testbench) { tb.host.Port.Write(tb.bar+RegDoorbellBase+uint64(2*7*4), 4, le32b(1), nil) },
		func(tb *testbench) { tb.host.Port.Write(tb.bar+RegDoorbellBase+4, 4, le32b(1<<20), nil) },
		func(tb *testbench) { tb.dev.Crash() },
		func(tb *testbench) { tb.dev.Remove() },
		func(tb *testbench) { tb.dev.Hang(sim.Millisecond) },
	}
	for i, abuse := range abuses {
		tb := newTestbench(t, nil)
		tb.enable()
		tb.createIOQueues()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("abuse %d panicked out of Kernel.Run: %v", i, r)
				}
			}()
			abuse(tb)
			cmd := Command{Opcode: OpRead, CID: uint16(100 + i), NSID: 1,
				PRP1: tb.host.Alloc(PageSize, PageSize)}
			cmd.SetNLB(7)
			tb.ioNoWait(cmd)
		}()
	}
}

package nvme

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// prpCmd builds a read command of n bytes with explicit PRPs.
func prpCmd(cid uint16, blocks uint32, prp1, prp2 uint64) Command {
	cmd := Command{Opcode: OpRead, CID: cid, NSID: 1, PRP1: prp1, PRP2: prp2}
	cmd.SetNLB(blocks - 1)
	return cmd
}

func TestPRPSinglePageWithOffset(t *testing.T) {
	// PRP1 may carry a byte offset; a transfer that fits the rest of the
	// page needs no PRP2.
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	buf := tb.host.Alloc(2*PageSize, PageSize)
	if c := tb.io(prpCmd(10, 4, buf+512, 0)); c.Status != StatusSuccess {
		t.Fatalf("offset PRP1 read status %#x", c.Status)
	}
}

func TestPRPUnalignedPRP2Rejected(t *testing.T) {
	// Direct PRP2 (two-page transfer) must be page aligned per spec.
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	buf := tb.host.Alloc(4*PageSize, PageSize)
	if c := tb.io(prpCmd(11, 16, buf, buf+PageSize+512)); c.Status != StatusInvalidField {
		t.Fatalf("unaligned PRP2 status %#x, want invalid field", c.Status)
	}
}

func TestPRPListUnalignedEntryRejected(t *testing.T) {
	// A list entry that is not page aligned must fail the command.
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	data := tb.host.Alloc(8*PageSize, PageSize)
	list := tb.host.Alloc(PageSize, PageSize)
	entries := make([]byte, 16)
	binary.LittleEndian.PutUint64(entries[0:], data+PageSize)     // fine
	binary.LittleEndian.PutUint64(entries[8:], data+2*PageSize+8) // unaligned
	tb.host.Mem.Store().WriteBytes(list-tb.host.Mem.Base, entries)
	if c := tb.io(prpCmd(12, 24, data, list)); c.Status != StatusInvalidField {
		t.Fatalf("unaligned list entry status %#x, want invalid field", c.Status)
	}
}

func TestPRPListCrossingPageRejected(t *testing.T) {
	// The model supports one-page lists (512 entries = 2 MiB = MDTS); a
	// list pointer placed so the entries would cross its page must be
	// rejected rather than mis-read.
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	data := tb.host.Alloc(8*PageSize, PageSize)
	list := tb.host.Alloc(2*PageSize, PageSize)
	// 4 entries needed, pointer placed 16 bytes before the page end.
	ptr := list + PageSize - 16
	if c := tb.io(prpCmd(13, 40, data, ptr)); c.Status != StatusInvalidField {
		t.Fatalf("page-crossing list status %#x, want invalid field", c.Status)
	}
}

func TestPRPListMisalignedPointerRejected(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	data := tb.host.Alloc(8*PageSize, PageSize)
	list := tb.host.Alloc(PageSize, PageSize)
	if c := tb.io(prpCmd(14, 24, data, list+3)); c.Status != StatusInvalidField {
		t.Fatalf("misaligned list pointer status %#x, want invalid field", c.Status)
	}
}

func TestPRPListScatteredPagesFunctional(t *testing.T) {
	// A write through a deliberately scattered PRP list followed by a
	// contiguous read-back: the device must gather the pages in list
	// order.
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	// Three source pages, physically out of order.
	pages := []uint64{
		tb.host.Alloc(PageSize, PageSize),
		tb.host.Alloc(PageSize, PageSize),
		tb.host.Alloc(PageSize, PageSize),
	}
	content := make([]byte, 3*PageSize)
	for i := range content {
		content[i] = byte(i*11 + 5)
	}
	// Scatter: PRP1 = page A, list -> {page C, page B reversed physical
	// order is irrelevant; logical order is list order}.
	tb.host.Mem.Store().WriteBytes(pages[0]-tb.host.Mem.Base, content[:PageSize])
	tb.host.Mem.Store().WriteBytes(pages[2]-tb.host.Mem.Base, content[PageSize:2*PageSize])
	tb.host.Mem.Store().WriteBytes(pages[1]-tb.host.Mem.Base, content[2*PageSize:])
	list := tb.host.Alloc(PageSize, PageSize)
	entries := make([]byte, 16)
	binary.LittleEndian.PutUint64(entries[0:], pages[2])
	binary.LittleEndian.PutUint64(entries[8:], pages[1])
	tb.host.Mem.Store().WriteBytes(list-tb.host.Mem.Base, entries)

	wr := Command{Opcode: OpWrite, CID: 15, NSID: 1, PRP1: pages[0], PRP2: list}
	wr.SetNLB(uint32(3*PageSize/512) - 1)
	if c := tb.io(wr); c.Status != StatusSuccess {
		t.Fatalf("scattered write status %#x", c.Status)
	}

	dst := tb.host.Alloc(4 * PageSize, PageSize)
	dlist := tb.host.Alloc(PageSize, PageSize)
	dentries := make([]byte, 16)
	binary.LittleEndian.PutUint64(dentries[0:], dst+PageSize)
	binary.LittleEndian.PutUint64(dentries[8:], dst+2*PageSize)
	tb.host.Mem.Store().WriteBytes(dlist-tb.host.Mem.Base, dentries)
	rd := prpCmd(16, uint32(3*PageSize/512), dst, dlist)
	if c := tb.io(rd); c.Status != StatusSuccess {
		t.Fatalf("read-back status %#x", c.Status)
	}
	got := make([]byte, 3*PageSize)
	tb.host.Mem.Store().ReadBytes(dst-tb.host.Mem.Base, got)
	for i := range got {
		if got[i] != content[i] {
			t.Fatalf("gather order broken at byte %d: got %#x want %#x", i, got[i], content[i])
		}
	}
}

func TestRegisterReads(t *testing.T) {
	tb := newTestbench(t, nil)
	// CAP before enable: MQES, doorbell stride, CSS.
	cap8 := make([]byte, 8)
	tb.host.Port.ReadCtrl(tb.bar+RegCAP, 8, cap8, nil)
	tb.k.Run(0)
	capv := binary.LittleEndian.Uint64(cap8)
	if mqes := capv&0xFFFF + 1; mqes < 16 {
		t.Errorf("CAP.MQES+1 = %d, want >= 16", mqes)
	}
	// VS: NVMe 1.4.
	vs := make([]byte, 4)
	tb.host.Port.ReadCtrl(tb.bar+RegVS, 4, vs, nil)
	tb.k.Run(0)
	if v := binary.LittleEndian.Uint32(vs); v>>16 != 1 {
		t.Errorf("VS major = %d, want 1", v>>16)
	}
	// CSTS.RDY flips with enable.
	csts := make([]byte, 4)
	tb.host.Port.ReadCtrl(tb.bar+RegCSTS, 4, csts, nil)
	tb.k.Run(0)
	if csts[0]&1 != 0 {
		t.Error("CSTS.RDY set before enable")
	}
	tb.enable()
	tb.host.Port.ReadCtrl(tb.bar+RegCSTS, 4, csts, nil)
	tb.k.Run(0)
	if csts[0]&1 != 1 {
		t.Error("CSTS.RDY clear after enable")
	}
}

func TestErrorEntryRoundTripProperty(t *testing.T) {
	f := func(count uint64, sqid, cid uint16, status uint16, lba uint64) bool {
		e := ErrorLogEntry{ErrorCount: count, SQID: sqid, CID: cid,
			Status: status & 0x7FFF, LBA: lba}
		b := make([]byte, 64)
		marshalErrorEntry(e, b)
		return UnmarshalErrorEntry(b) == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Package nvme models an NVMe SSD at protocol level: memory-mapped
// controller registers, admin and I/O submission/completion queues living in
// remote memory and fetched over the PCIe fabric, doorbells, PRP and
// PRP-list data pointers, and a multi-die NAND backend with a write buffer
// and firmware banding epochs.
//
// The model executes real wire encodings — 64-byte submission entries and
// 16-byte completion entries marshaled per the NVMe 1.4 layout — so the host
// driver (internal/spdk, internal/tapasco) and the FPGA NVMe Streamer
// (internal/streamer) interact with it exactly the way the paper's hardware
// does, including the Streamer's on-the-fly PRP-list synthesis.
package nvme

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the memory page size PRPs operate on.
const PageSize = 4096

// SQESize and CQESize are the wire sizes of queue entries.
const (
	SQESize = 64
	CQESize = 16
)

// Admin opcodes.
const (
	OpDeleteIOSQ  uint8 = 0x00
	OpCreateIOSQ  uint8 = 0x01
	OpDeleteIOCQ  uint8 = 0x04
	OpCreateIOCQ  uint8 = 0x05
	OpIdentify    uint8 = 0x06
	OpSetFeatures uint8 = 0x09
	OpGetFeatures uint8 = 0x0A
)

// I/O opcodes.
const (
	OpFlush uint8 = 0x00
	OpWrite uint8 = 0x01
	OpRead  uint8 = 0x02
)

// Status codes (generic status, SCT 0).
const (
	StatusSuccess           uint16 = 0x00
	StatusInvalidOpcode     uint16 = 0x01
	StatusInvalidField      uint16 = 0x02
	StatusDataTransferError uint16 = 0x04
	StatusInternalError     uint16 = 0x06
	StatusAbortRequested    uint16 = 0x07
	StatusInvalidNSID       uint16 = 0x0B
	StatusLBAOutOfRange     uint16 = 0x80
	StatusCapacityExceeded  uint16 = 0x81
)

// RetryableStatus reports whether a command completed with this status may
// be resubmitted: internal and data-transfer errors are transient
// controller-side conditions worth retrying, while protocol violations and
// range errors are deterministic — the retry would fail identically.
func RetryableStatus(s uint16) bool {
	return s == StatusInternalError || s == StatusDataTransferError
}

// Feature identifiers.
const (
	FeatureNumQueues uint8 = 0x07
)

// Identify CNS values.
const (
	CNSNamespace  uint32 = 0x00
	CNSController uint32 = 0x01
)

// Command is a decoded 64-byte submission queue entry.
type Command struct {
	Opcode uint8
	// PSDT selects PRPs (0) or SGLs (1/2). The model, like the paper,
	// only implements PRPs ("SGLs are not supported by many NVMe drives
	// and therefore are not employed by this work", §2.2); SGL commands
	// complete with an Invalid Field status.
	PSDT  uint8
	CID   uint16
	NSID  uint32
	PRP1  uint64
	PRP2  uint64
	CDW10 uint32
	CDW11 uint32
	CDW12 uint32
	CDW13 uint32
	CDW14 uint32
	CDW15 uint32
}

// Marshal encodes the command into a 64-byte SQE.
func (c *Command) Marshal() []byte {
	b := make([]byte, SQESize)
	c.MarshalInto(b)
	return b
}

// MarshalInto encodes the command into b, which must hold SQESize bytes.
// The buffer may be reused: every byte of the entry is written.
func (c *Command) MarshalInto(b []byte) {
	b = b[:SQESize]
	for i := range b {
		b[i] = 0
	}
	binary.LittleEndian.PutUint32(b[0:], uint32(c.Opcode)|uint32(c.PSDT&0x3)<<14|uint32(c.CID)<<16)
	binary.LittleEndian.PutUint32(b[4:], c.NSID)
	binary.LittleEndian.PutUint64(b[24:], c.PRP1)
	binary.LittleEndian.PutUint64(b[32:], c.PRP2)
	binary.LittleEndian.PutUint32(b[40:], c.CDW10)
	binary.LittleEndian.PutUint32(b[44:], c.CDW11)
	binary.LittleEndian.PutUint32(b[48:], c.CDW12)
	binary.LittleEndian.PutUint32(b[52:], c.CDW13)
	binary.LittleEndian.PutUint32(b[56:], c.CDW14)
	binary.LittleEndian.PutUint32(b[60:], c.CDW15)
}

// UnmarshalCommand decodes a 64-byte SQE.
func UnmarshalCommand(b []byte) (Command, error) {
	if len(b) < SQESize {
		return Command{}, fmt.Errorf("nvme: SQE needs %d bytes, have %d", SQESize, len(b))
	}
	dw0 := binary.LittleEndian.Uint32(b[0:])
	return Command{
		Opcode: uint8(dw0),
		PSDT:   uint8(dw0>>14) & 0x3,
		CID:    uint16(dw0 >> 16),
		NSID:   binary.LittleEndian.Uint32(b[4:]),
		PRP1:   binary.LittleEndian.Uint64(b[24:]),
		PRP2:   binary.LittleEndian.Uint64(b[32:]),
		CDW10:  binary.LittleEndian.Uint32(b[40:]),
		CDW11:  binary.LittleEndian.Uint32(b[44:]),
		CDW12:  binary.LittleEndian.Uint32(b[48:]),
		CDW13:  binary.LittleEndian.Uint32(b[52:]),
		CDW14:  binary.LittleEndian.Uint32(b[56:]),
		CDW15:  binary.LittleEndian.Uint32(b[60:]),
	}, nil
}

// SLBA returns the starting LBA of a read/write command (CDW10/11).
func (c *Command) SLBA() uint64 {
	return uint64(c.CDW10) | uint64(c.CDW11)<<32
}

// SetSLBA stores the starting LBA into CDW10/11.
func (c *Command) SetSLBA(slba uint64) {
	c.CDW10 = uint32(slba)
	c.CDW11 = uint32(slba >> 32)
}

// NLB returns the zero-based number of logical blocks (CDW12 bits 15:0).
func (c *Command) NLB() uint32 { return c.CDW12 & 0xFFFF }

// SetNLB stores the zero-based block count.
func (c *Command) SetNLB(nlb uint32) {
	c.CDW12 = (c.CDW12 &^ 0xFFFF) | (nlb & 0xFFFF)
}

// Completion is a decoded 16-byte completion queue entry.
type Completion struct {
	DW0    uint32 // command specific
	SQHead uint16
	SQID   uint16
	CID    uint16
	Phase  bool
	Status uint16
}

// Marshal encodes the completion into a 16-byte CQE.
func (c *Completion) Marshal() []byte {
	b := make([]byte, CQESize)
	c.MarshalInto(b)
	return b
}

// MarshalInto encodes the completion into b, which must hold CQESize bytes.
// The buffer may be reused: every byte of the entry is written.
func (c *Completion) MarshalInto(b []byte) {
	b = b[:CQESize]
	binary.LittleEndian.PutUint32(b[0:], c.DW0)
	binary.LittleEndian.PutUint32(b[4:], 0)
	binary.LittleEndian.PutUint32(b[8:], uint32(c.SQHead)|uint32(c.SQID)<<16)
	dw3 := uint32(c.CID)
	if c.Phase {
		dw3 |= 1 << 16
	}
	dw3 |= uint32(c.Status&0x7FFF) << 17
	binary.LittleEndian.PutUint32(b[12:], dw3)
}

// UnmarshalCompletion decodes a 16-byte CQE.
func UnmarshalCompletion(b []byte) (Completion, error) {
	if len(b) < CQESize {
		return Completion{}, fmt.Errorf("nvme: CQE needs %d bytes, have %d", CQESize, len(b))
	}
	dw2 := binary.LittleEndian.Uint32(b[8:])
	dw3 := binary.LittleEndian.Uint32(b[12:])
	return Completion{
		DW0:    binary.LittleEndian.Uint32(b[0:]),
		SQHead: uint16(dw2),
		SQID:   uint16(dw2 >> 16),
		CID:    uint16(dw3),
		Phase:  dw3&(1<<16) != 0,
		Status: uint16(dw3 >> 17),
	}, nil
}

// StatusError wraps a non-success completion status as a Go error.
type StatusError struct {
	Op     uint8
	CID    uint16
	Status uint16
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("nvme: opcode %#x cid %d failed with status %#x", e.Op, e.CID, e.Status)
}

// Controller register offsets within BAR0.
const (
	RegCAP  = 0x00 // capabilities, 8 bytes
	RegVS   = 0x08 // controller version
	RegCC   = 0x14 // controller configuration
	RegCSTS = 0x1C // controller status
	RegAQA  = 0x24 // admin queue attributes
	RegASQ  = 0x28 // admin SQ base, 8 bytes
	RegACQ  = 0x30 // admin CQ base, 8 bytes
	// RegDoorbellBase is the start of the doorbell region. Stride is 4
	// bytes with no spacing (CAP.DSTRD = 0): SQ y tail at base + (2y)*4,
	// CQ y head at base + (2y+1)*4.
	RegDoorbellBase = 0x1000
)

// CC bits.
const (
	CCEnable uint32 = 1 << 0
	// CC.SHN (bits 15:14): host-requested shutdown notification.
	CCShutdownNormal uint32 = 1 << 14
	CCShutdownAbrupt uint32 = 2 << 14
	CCShutdownMask   uint32 = 3 << 14
)

// CSTS bits.
const (
	CSTSReady uint32 = 1 << 0
	// CSTSFatal is CSTS.CFS, the controller fatal status: latched when the
	// controller hits an unrecoverable internal error (including protocol
	// violations on registers and doorbells). Only a controller reset
	// (CC.EN 1→0) clears it.
	CSTSFatal uint32 = 1 << 1
	// CSTS.SHST (bits 3:2): shutdown handshake status.
	CSTSShutdownProcessing uint32 = 1 << 2
	CSTSShutdownComplete   uint32 = 2 << 2
	CSTSShutdownMask       uint32 = 3 << 2
)

// StatusControllerUnavailable is a vendor-specific status the host-side
// recovery synthesizes for commands it fails because the controller died
// and could not be revived within the reset budget. It never appears on the
// wire; like StatusAbortRequested it is terminal, not retryable.
const StatusControllerUnavailable uint16 = 0xC0

// BARSize is the register BAR size exposed by the model.
const BARSize = 16 * 1024

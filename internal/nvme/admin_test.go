package nvme

import "testing"

func TestAdminDuplicateCQRejected(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues() // creates pair 1
	c := tb.admin(Command{Opcode: OpCreateIOCQ, CID: 9, PRP1: tb.ioCQ,
		CDW10: 1 | uint32(tbDepth-1)<<16, CDW11: 1})
	if c.Status != StatusInvalidField {
		t.Fatalf("duplicate CQ create status %#x", c.Status)
	}
}

func TestAdminQIDBeyondMaxRejected(t *testing.T) {
	tb := newTestbench(t, func(c *Config) { c.MaxIOQueuePairs = 2 })
	tb.enable()
	c := tb.admin(Command{Opcode: OpCreateIOCQ, CID: 9, PRP1: tb.ioCQ,
		CDW10: 7 | uint32(tbDepth-1)<<16, CDW11: 1})
	if c.Status != StatusInvalidField {
		t.Fatalf("over-max QID status %#x", c.Status)
	}
}

func TestAdminDeleteAdminQueueRejected(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	c := tb.admin(Command{Opcode: OpDeleteIOSQ, CID: 9, CDW10: 0})
	if c.Status != StatusInvalidField {
		t.Fatalf("delete of admin queue status %#x", c.Status)
	}
}

func TestAdminNonContiguousQueueRejected(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	// PC bit clear: the model (like most controllers) requires physically
	// contiguous queues.
	c := tb.admin(Command{Opcode: OpCreateIOCQ, CID: 9, PRP1: tb.ioCQ,
		CDW10: 1 | uint32(tbDepth-1)<<16, CDW11: 0})
	if c.Status != StatusInvalidField {
		t.Fatalf("non-contiguous CQ status %#x", c.Status)
	}
}

func TestAdminMismatchedSQSizeRejected(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	if c := tb.admin(Command{Opcode: OpCreateIOCQ, CID: 1, PRP1: tb.ioCQ,
		CDW10: 1 | uint32(tbDepth-1)<<16, CDW11: 1}); c.Status != StatusSuccess {
		t.Fatalf("CQ create: %#x", c.Status)
	}
	// SQ depth differs from its CQ: rejected by the paired-queue model.
	c := tb.admin(Command{Opcode: OpCreateIOSQ, CID: 2, PRP1: tb.ioSQ,
		CDW10: 1 | uint32(tbDepth/2-1)<<16, CDW11: 1 | 1<<16})
	if c.Status != StatusInvalidField {
		t.Fatalf("mismatched SQ size status %#x", c.Status)
	}
}

func TestAdminUnknownOpcode(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	if c := tb.admin(Command{Opcode: 0x7E, CID: 3}); c.Status != StatusInvalidOpcode {
		t.Fatalf("unknown admin opcode status %#x", c.Status)
	}
}

func TestAdminSetFeaturesUnknownFID(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	if c := tb.admin(Command{Opcode: OpSetFeatures, CID: 4, CDW10: 0x55}); c.Status != StatusInvalidField {
		t.Fatalf("unknown FID status %#x", c.Status)
	}
}

func TestAdminSetFeaturesClampsQueueCount(t *testing.T) {
	tb := newTestbench(t, func(c *Config) { c.MaxIOQueuePairs = 3 })
	tb.enable()
	c := tb.admin(Command{Opcode: OpSetFeatures, CID: 5,
		CDW10: uint32(FeatureNumQueues), CDW11: 63 | 63<<16})
	if c.Status != StatusSuccess {
		t.Fatalf("set features: %#x", c.Status)
	}
	if got := int(c.DW0&0xFFFF) + 1; got != 3 {
		t.Fatalf("granted SQs = %d, want clamp to 3", got)
	}
}

func TestIdentifyBadNSID(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	buf := tb.host.Alloc(PageSize, PageSize)
	c := tb.admin(Command{Opcode: OpIdentify, CID: 6, NSID: 2, PRP1: buf, CDW10: CNSNamespace})
	if c.Status != StatusInvalidNSID {
		t.Fatalf("identify ns 2 status %#x", c.Status)
	}
}

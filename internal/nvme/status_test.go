package nvme

import (
	"strings"
	"testing"
)

// definedStatuses lists every status code the model defines, plus the
// 15-bit boundary value — the widest status a CQE can carry (DW3 holds CID,
// the phase bit, and 15 status bits).
var definedStatuses = []struct {
	name   string
	status uint16
}{
	{"success", StatusSuccess},
	{"invalid-opcode", StatusInvalidOpcode},
	{"invalid-field", StatusInvalidField},
	{"data-transfer-error", StatusDataTransferError},
	{"internal-error", StatusInternalError},
	{"abort-requested", StatusAbortRequested},
	{"invalid-nsid", StatusInvalidNSID},
	{"lba-out-of-range", StatusLBAOutOfRange},
	{"capacity-exceeded", StatusCapacityExceeded},
	{"max-15-bit", 0x7FFF},
}

func TestCompletionStatusRoundTrip(t *testing.T) {
	for _, tc := range definedStatuses {
		for _, phase := range []bool{false, true} {
			in := Completion{
				DW0:    0xDEADBEEF,
				SQHead: 12,
				SQID:   3,
				CID:    0xABCD,
				Phase:  phase,
				Status: tc.status,
			}
			out, err := UnmarshalCompletion(in.Marshal())
			if err != nil {
				t.Fatalf("%s: UnmarshalCompletion: %v", tc.name, err)
			}
			if out != in {
				t.Errorf("%s (phase=%v): round trip %+v -> %+v", tc.name, phase, in, out)
			}
		}
	}
}

// TestCompletionStatusTruncation pins the wire format boundary: bit 15 of
// the status does not fit in the CQE and must be masked, never smeared into
// the neighboring fields.
func TestCompletionStatusTruncation(t *testing.T) {
	in := Completion{CID: 0x1234, Phase: true, Status: 0x8000}
	out, err := UnmarshalCompletion(in.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalCompletion: %v", err)
	}
	if out.Status != 0 {
		t.Errorf("status 0x8000 round-tripped to %#x, want 0 (masked)", out.Status)
	}
	if out.CID != in.CID || out.Phase != in.Phase {
		t.Errorf("status overflow corrupted CID/phase: %+v", out)
	}
}

func TestStatusErrorMessage(t *testing.T) {
	for _, tc := range definedStatuses {
		if tc.status == StatusSuccess {
			continue
		}
		err := &StatusError{Op: OpRead, CID: 7, Status: tc.status}
		msg := err.Error()
		if !strings.Contains(msg, "cid 7") {
			t.Errorf("%s: error message %q lacks the CID", tc.name, msg)
		}
	}
}

func TestRetryableStatus(t *testing.T) {
	retryable := map[uint16]bool{
		StatusInternalError:     true,
		StatusDataTransferError: true,
	}
	for _, tc := range definedStatuses {
		if got := RetryableStatus(tc.status); got != retryable[tc.status] {
			t.Errorf("RetryableStatus(%s %#x) = %v, want %v", tc.name, tc.status, got, retryable[tc.status])
		}
	}
}

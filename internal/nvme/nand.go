package nvme

import (
	"snacc/internal/pcie"
	"snacc/internal/sim"
)

// NANDConfig parameterizes the flash backend. The defaults are calibrated
// against the Samsung 990 PRO (2 TB) measurements in the paper: 6.9 GB/s
// sequential reads, sequential writes alternating between 6.24 and
// 5.90 GB/s per firmware banding epoch, and random 4 KiB reads limited by
// die-level parallelism (see EXPERIMENTS.md for the calibration notes).
type NANDConfig struct {
	// Dies is the number of independently addressable flash units
	// (channels × dies per channel contributing to random-read
	// parallelism).
	Dies int
	// ReadLatency is the array read time tR for one page-sized access.
	ReadLatency sim.Time
	// ReadJitterFrac is the uniform ±fraction applied to tR, modeling
	// die-to-die and state-dependent variation.
	ReadJitterFrac float64
	// StripeBytes: accesses at or below this size hit a single die;
	// larger accesses stripe across the array and stream through the
	// aggregate sequential path.
	StripeBytes int64
	// DieReadBW is the per-die streaming rate for small accesses.
	DieReadBW float64
	// SeqReadBW is the aggregate array read bandwidth for striped access.
	SeqReadBW float64
	// ProgramBWFast and ProgramBWSlow are the array program rates in the
	// two firmware banding epochs; EpochBytes of programming flips the
	// epoch. This reproduces the paper's observation that sequential write
	// bandwidth "alternates between 5.90 GB/s and 6.24 GB/s without any
	// intermediate values" (§5.2).
	ProgramBWFast float64
	ProgramBWSlow float64
	EpochBytes    int64
	// WriteBufferBytes is the controller-side staging buffer; writes
	// complete once buffered, and the buffer drains at the program rate.
	WriteBufferBytes int64
	// Seed feeds the deterministic jitter PRNG.
	Seed uint64
}

// DefaultNANDConfig returns the calibrated 990 PRO profile.
func DefaultNANDConfig() NANDConfig {
	return NANDConfig{
		Dies:             40,
		ReadLatency:      21 * sim.Microsecond,
		ReadJitterFrac:   0.25,
		StripeBytes:      16 * sim.KiB,
		DieReadBW:        1.2e9,
		SeqReadBW:        sim.GBps(6.9),
		ProgramBWFast:    sim.GBps(6.24),
		ProgramBWSlow:    sim.GBps(5.90),
		EpochBytes:       sim.GiB,
		WriteBufferBytes: 64 * sim.MiB,
		Seed:             0x990990,
	}
}

// NAND is the flash array plus controller-side write buffer.
type NAND struct {
	k   *sim.Kernel
	cfg NANDConfig
	rng *sim.Rand

	dieBusy []sim.Time
	seqRead *sim.Pipe

	// Write buffer admission (bytes) with FIFO waiters.
	bufAvail int64
	bufQ     []nandBufWaiter

	// Program pipeline.
	programBusyUntil sim.Time
	bytesProgrammed  int64
	outstandingProg  int
	flushWaiters     []func()

	// OnEpochChange fires when the banding epoch flips; the device uses it
	// to adjust its PCIe fetch pacing (§5.2's alternating bandwidth).
	OnEpochChange func(slow bool)
	epochSlow     bool

	store *pcie.SparseMem

	// Stats.
	dieReads, stripedReads, programs int64
}

// NewNAND builds a flash backend.
func NewNAND(k *sim.Kernel, cfg NANDConfig) *NAND {
	if cfg.Dies <= 0 {
		panic("nvme: NAND needs at least one die")
	}
	return &NAND{
		k:        k,
		cfg:      cfg,
		rng:      sim.NewRand(cfg.Seed),
		dieBusy:  make([]sim.Time, cfg.Dies),
		seqRead:  sim.NewPipe(k, cfg.SeqReadBW, 0),
		bufAvail: cfg.WriteBufferBytes,
		store:    pcie.NewSparseMem(),
	}
}

type nandBufWaiter struct {
	n  int64
	fn func()
}

// Config returns the NAND configuration.
func (nd *NAND) Config() NANDConfig { return nd.cfg }

// Store exposes the media content store (byte offset = LBA × LBA size).
func (nd *NAND) Store() *pcie.SparseMem { return nd.store }

// EpochSlow reports whether the current banding epoch is the slow one.
func (nd *NAND) EpochSlow() bool { return nd.epochSlow }

// DieReads, StripedReads and Programs report operation counts.
func (nd *NAND) DieReads() int64     { return nd.dieReads }
func (nd *NAND) StripedReads() int64 { return nd.stripedReads }
func (nd *NAND) Programs() int64     { return nd.programs }

// Read retrieves n media bytes starting at byte offset off, calling done
// when the data has left the array. Small accesses occupy a single die
// (queueing behind other accesses to the same die — the source of the
// out-of-order completion the paper's random-read experiment exercises);
// large accesses stripe across the array.
func (nd *NAND) Read(off uint64, n int64, buf []byte, done func()) {
	if buf != nil {
		nd.store.ReadBytes(off, buf)
	}
	if n <= nd.cfg.StripeBytes {
		nd.dieReads++
		die := int((off / uint64(nd.cfg.StripeBytes))) % nd.cfg.Dies
		start := nd.k.Now()
		if nd.dieBusy[die] > start {
			start = nd.dieBusy[die]
		}
		svc := nd.rng.Jitter(nd.cfg.ReadLatency, nd.cfg.ReadJitterFrac) +
			sim.TransferTime(n, nd.cfg.DieReadBW)
		nd.dieBusy[die] = start + svc
		nd.k.At(nd.dieBusy[die], done)
		return
	}
	nd.stripedReads++
	// Striped: pay tR once, then stream through the aggregate read path.
	tr := nd.rng.Jitter(nd.cfg.ReadLatency, nd.cfg.ReadJitterFrac)
	ready := nd.seqRead.Reserve(n) + tr
	nd.k.At(ready, done)
}

// ReserveBuffer admits n bytes into the write buffer, calling fn once space
// is available. Admission is FIFO.
func (nd *NAND) ReserveBuffer(n int64, fn func()) {
	if n > nd.cfg.WriteBufferBytes {
		panic("nvme: write larger than the entire write buffer")
	}
	if len(nd.bufQ) == 0 && nd.bufAvail >= n {
		nd.bufAvail -= n
		fn()
		return
	}
	nd.bufQ = append(nd.bufQ, nandBufWaiter{n: n, fn: fn})
}

func (nd *NAND) releaseBuffer(n int64) {
	nd.bufAvail += n
	for len(nd.bufQ) > 0 && nd.bufAvail >= nd.bufQ[0].n {
		w := nd.bufQ[0]
		nd.bufQ = nd.bufQ[1:]
		nd.bufAvail -= w.n
		w.fn()
	}
}

// Program schedules n buffered bytes (content data, may be nil) at media
// offset off for programming. The reserved buffer space is released when the
// array absorbs the data. Call after ReserveBuffer granted the space.
func (nd *NAND) Program(off uint64, n int64, data []byte) {
	if data != nil {
		nd.store.WriteBytes(off, data)
	}
	nd.programs++
	rate := nd.cfg.ProgramBWFast
	if nd.epochSlow {
		rate = nd.cfg.ProgramBWSlow
	}
	start := nd.k.Now()
	if nd.programBusyUntil > start {
		start = nd.programBusyUntil
	}
	nd.programBusyUntil = start + sim.TransferTime(n, rate)
	nd.outstandingProg++
	nd.bytesProgrammed += n
	if nd.cfg.EpochBytes > 0 {
		slow := (nd.bytesProgrammed/nd.cfg.EpochBytes)%2 == 1
		if slow != nd.epochSlow {
			nd.epochSlow = slow
			if nd.OnEpochChange != nil {
				nd.OnEpochChange(slow)
			}
		}
	}
	nd.k.At(nd.programBusyUntil, func() {
		nd.releaseBuffer(n)
		nd.outstandingProg--
		if nd.outstandingProg == 0 {
			ws := nd.flushWaiters
			nd.flushWaiters = nil
			for _, w := range ws {
				w()
			}
		}
	})
}

// Flush calls fn once every scheduled program operation has completed.
func (nd *NAND) Flush(fn func()) {
	if nd.outstandingProg == 0 {
		fn()
		return
	}
	nd.flushWaiters = append(nd.flushWaiters, fn)
}

package nvme

import (
	"testing"
	"testing/quick"

	"snacc/internal/sim"
)

func TestCommandRoundTrip(t *testing.T) {
	f := func(op uint8, cid uint16, nsid uint32, prp1, prp2 uint64, d10, d11, d12 uint32) bool {
		in := Command{
			Opcode: op, CID: cid, NSID: nsid,
			PRP1: prp1, PRP2: prp2,
			CDW10: d10, CDW11: d11, CDW12: d12,
		}
		out, err := UnmarshalCommand(in.Marshal())
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommandSLBANLBHelpers(t *testing.T) {
	var c Command
	c.SetSLBA(0x1_2345_6789)
	if c.SLBA() != 0x1_2345_6789 {
		t.Fatalf("SLBA round trip = %#x", c.SLBA())
	}
	c.SetNLB(2047)
	if c.NLB() != 2047 {
		t.Fatalf("NLB round trip = %d", c.NLB())
	}
	// NLB must not clobber upper CDW12 bits.
	c.CDW12 |= 0x8000_0000
	c.SetNLB(7)
	if c.CDW12>>16 != 0x8000 || c.NLB() != 7 {
		t.Fatalf("SetNLB clobbered CDW12: %#x", c.CDW12)
	}
}

func TestCompletionRoundTrip(t *testing.T) {
	f := func(dw0 uint32, sqh, sqid, cid uint16, phase bool, status uint16) bool {
		in := Completion{
			DW0: dw0, SQHead: sqh, SQID: sqid, CID: cid,
			Phase: phase, Status: status & 0x7FFF,
		}
		out, err := UnmarshalCompletion(in.Marshal())
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalShortBuffers(t *testing.T) {
	if _, err := UnmarshalCommand(make([]byte, 63)); err == nil {
		t.Error("short SQE accepted")
	}
	if _, err := UnmarshalCompletion(make([]byte, 15)); err == nil {
		t.Error("short CQE accepted")
	}
}

func TestCoalesceExtents(t *testing.T) {
	in := []extent{
		{addr: 0x1000, len: 4096},
		{addr: 0x2000, len: 4096}, // adjacent
		{addr: 0x9000, len: 4096}, // gap
		{addr: 0xA000, len: 1024}, // adjacent
	}
	out := coalesce(in)
	if len(out) != 2 {
		t.Fatalf("coalesced to %d runs, want 2: %+v", len(out), out)
	}
	if out[0].addr != 0x1000 || out[0].len != 8192 {
		t.Fatalf("run0 = %+v", out[0])
	}
	if out[1].addr != 0x9000 || out[1].len != 5120 {
		t.Fatalf("run1 = %+v", out[1])
	}
}

func TestNANDSeqReadBandwidth(t *testing.T) {
	k := sim.NewKernel()
	nd := NewNAND(k, DefaultNANDConfig())
	// Issue all commands up front (queue depth > 1, as every real consumer
	// of the device does) so the tR latency pipelines with streaming.
	const total = 256 * sim.MiB
	var done sim.Time
	outstanding := int(total / sim.MiB)
	for i := 0; i < int(total/sim.MiB); i++ {
		nd.Read(uint64(int64(i)*sim.MiB), sim.MiB, nil, func() {
			outstanding--
			if outstanding == 0 {
				done = k.Now()
			}
		})
	}
	k.Run(0)
	bw := float64(total) / done.Seconds()
	if bw < 6.5e9 || bw > 7.0e9 {
		t.Fatalf("NAND seq read BW = %.2f GB/s, want ~6.9", bw/1e9)
	}
}

func TestNANDDieConflictsQueue(t *testing.T) {
	// Two reads hitting the same die must serialize; different dies overlap.
	k := sim.NewKernel()
	cfg := DefaultNANDConfig()
	cfg.ReadJitterFrac = 0
	nd := NewNAND(k, cfg)
	var sameDone, diffDone sim.Time
	n := 0
	for i := 0; i < 2; i++ {
		nd.Read(0, 4096, nil, func() {
			n++
			if n == 2 {
				sameDone = k.Now()
			}
		})
	}
	k.Run(0)

	k2 := sim.NewKernel()
	nd2 := NewNAND(k2, cfg)
	m := 0
	nd2.Read(0, 4096, nil, func() { m++ })
	nd2.Read(uint64(cfg.StripeBytes), 4096, nil, func() {
		m++
		diffDone = k2.Now()
	})
	k2.Run(0)
	if sameDone <= diffDone {
		t.Fatalf("same-die reads (%v) must serialize vs different dies (%v)", sameDone, diffDone)
	}
}

func TestNANDProgramEpochAlternates(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultNANDConfig()
	cfg.EpochBytes = 4 * sim.MiB
	cfg.WriteBufferBytes = 64 * sim.MiB
	nd := NewNAND(k, cfg)
	var flips int
	nd.OnEpochChange = func(slow bool) { flips++ }
	for i := 0; i < 16; i++ {
		off := uint64(int64(i) * sim.MiB)
		nd.ReserveBuffer(sim.MiB, func() { nd.Program(off, sim.MiB, nil) })
	}
	k.Run(0)
	// 16 MiB programmed with 4 MiB epochs: epoch flips at 4, 8, 12, 16 MiB.
	if flips < 3 {
		t.Fatalf("epoch flips = %d, want >= 3", flips)
	}
}

func TestNANDProgramRatesDiffer(t *testing.T) {
	measure := func(slowFirst bool) sim.Time {
		k := sim.NewKernel()
		cfg := DefaultNANDConfig()
		cfg.EpochBytes = 0 // no flipping
		nd := NewNAND(k, cfg)
		nd.epochSlow = slowFirst
		var done sim.Time
		nd.ReserveBuffer(32*sim.MiB, func() { nd.Program(0, 32*sim.MiB, nil) })
		nd.Flush(func() { done = k.Now() })
		k.Run(0)
		return done
	}
	fast, slow := measure(false), measure(true)
	if slow <= fast {
		t.Fatalf("slow epoch program (%v) must be slower than fast (%v)", slow, fast)
	}
}

func TestNANDWriteBufferBackpressure(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultNANDConfig()
	cfg.WriteBufferBytes = 2 * sim.MiB
	nd := NewNAND(k, cfg)
	var order []int
	// First two reservations fill the buffer; the third waits for program
	// completion to release space.
	for i := 0; i < 3; i++ {
		i := i
		nd.ReserveBuffer(sim.MiB, func() {
			order = append(order, i)
			nd.Program(uint64(int64(i)*sim.MiB), sim.MiB, nil)
		})
	}
	if len(order) != 2 {
		t.Fatalf("immediately granted = %d, want 2", len(order))
	}
	k.Run(0)
	if len(order) != 3 || order[2] != 2 {
		t.Fatalf("order = %v, want third grant after drain", order)
	}
}

func TestNANDFlushWaits(t *testing.T) {
	k := sim.NewKernel()
	nd := NewNAND(k, DefaultNANDConfig())
	var flushedAt sim.Time
	nd.ReserveBuffer(16*sim.MiB, func() { nd.Program(0, 16*sim.MiB, nil) })
	nd.Flush(func() { flushedAt = k.Now() })
	k.Run(0)
	want := sim.TransferTime(16*sim.MiB, sim.GBps(6.24))
	if flushedAt < want {
		t.Fatalf("flush at %v, want >= %v (program time)", flushedAt, want)
	}
}

func TestNANDContentPersists(t *testing.T) {
	k := sim.NewKernel()
	nd := NewNAND(k, DefaultNANDConfig())
	data := []byte("hello flash")
	nd.ReserveBuffer(int64(len(data)), func() { nd.Program(12345, int64(len(data)), data) })
	got := make([]byte, len(data))
	done := false
	nd.Read(12345, int64(len(got)), got, func() { done = true })
	k.Run(0)
	if !done || string(got) != string(data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

package nvme

import "encoding/binary"

// Write Zeroes (0x08) and Dataset Management / deallocate (0x09): the
// remaining I/O commands a block stack issues against a real 990 PRO.
// Deallocated ranges read back as zeros, which the model implements by
// clearing the media store; both complete quickly (metadata-only on the
// device side) with a small firmware cost.

// I/O opcodes (extension of the core set in spec.go).
const (
	OpWriteZeroes uint8 = 0x08
	OpDatasetMgmt uint8 = 0x09
)

// DSM range descriptor: 16 bytes — context attributes, length in LBAs,
// starting LBA.
const dsmRangeBytes = 16

// DSMRange is one deallocation extent.
type DSMRange struct {
	SLBA uint64
	NLB  uint32
}

// MarshalDSMRanges encodes descriptors for the command's PRP buffer.
func MarshalDSMRanges(ranges []DSMRange) []byte {
	b := make([]byte, len(ranges)*dsmRangeBytes)
	for i, r := range ranges {
		binary.LittleEndian.PutUint32(b[i*dsmRangeBytes+4:], r.NLB)
		binary.LittleEndian.PutUint64(b[i*dsmRangeBytes+8:], r.SLBA)
	}
	return b
}

// executeWriteZeroes clears [SLBA, SLBA+NLB] without a data transfer.
func (d *Device) executeWriteZeroes(q *queuePair, cmd Command) {
	total, off, status := d.validateRange(cmd)
	if status != StatusSuccess {
		d.complete(q, cmd, status, 0)
		return
	}
	if d.cfg.Functional {
		d.nand.Store().WriteBytes(off, make([]byte, total))
	}
	// Metadata-only on the device: a mapping-table update.
	d.k.After(2*d.cfg.FrontEndWriteCost, func() {
		d.complete(q, cmd, StatusSuccess, 0)
	})
}

// executeDatasetMgmt handles deallocate: CDW10 holds the 0-based range
// count; CDW11 bit 2 (AD) requests deallocation; the range list arrives via
// PRP1.
func (d *Device) executeDatasetMgmt(q *queuePair, cmd Command) {
	if cmd.NSID != 1 {
		d.complete(q, cmd, StatusInvalidNSID, 0)
		return
	}
	nr := int(cmd.CDW10&0xFF) + 1
	if cmd.CDW11&(1<<2) == 0 {
		// Only the deallocate attribute is modeled; hints are accepted and
		// ignored, as real firmware does.
		d.complete(q, cmd, StatusSuccess, 0)
		return
	}
	buf := make([]byte, nr*dsmRangeBytes)
	d.port.ReadCtrl(cmd.PRP1, int64(len(buf)), buf, func() {
		maxLBA := uint64(d.cfg.NamespaceBytes / d.cfg.LBASize)
		for i := 0; i < nr; i++ {
			nlb := binary.LittleEndian.Uint32(buf[i*dsmRangeBytes+4:])
			slba := binary.LittleEndian.Uint64(buf[i*dsmRangeBytes+8:])
			// Compare in LBA space so huge SLBAs cannot overflow the byte
			// arithmetic.
			if slba >= maxLBA || uint64(nlb) > maxLBA-slba {
				d.complete(q, cmd, StatusLBAOutOfRange, 0)
				return
			}
			bytes := int64(nlb) * d.cfg.LBASize
			off := slba * uint64(d.cfg.LBASize)
			if d.cfg.Functional {
				d.nand.Store().WriteBytes(off, make([]byte, bytes))
			}
			d.deallocated += bytes
		}
		d.k.After(d.cfg.FrontEndWriteCost, func() {
			d.complete(q, cmd, StatusSuccess, 0)
		})
	})
}

// DeallocatedBytes reports the total trimmed volume.
func (d *Device) DeallocatedBytes() int64 { return d.deallocated }

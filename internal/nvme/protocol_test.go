package nvme

import (
	"testing"

	"snacc/internal/pcie"
	"snacc/internal/sim"
)

// testbench is a minimal hand-rolled host for protocol-level device tests:
// it writes SQEs straight into host memory and rings doorbells from kernel
// context, bypassing the driver packages so the device's protocol handling
// is exercised in isolation.
type testbench struct {
	t    *testing.T
	k    *sim.Kernel
	host *pcie.Host
	dev  *Device
	bar  uint64

	asq, acq uint64
	aTail    int
	aHead    int
	aPhase   bool

	ioSQ, ioCQ uint64
	ioTail     int
	ioHead     int
	ioPhase    bool

	completions []Completion
}

const tbDepth = 16

func newTestbench(t *testing.T, mut func(*Config)) *testbench {
	t.Helper()
	k := sim.NewKernel()
	f := pcie.NewFabric(k, pcie.DefaultConfig())
	host := pcie.NewHost(f, pcie.DefaultHostConfig())
	cfg := DefaultConfig("ssd0", 0x10_0000_0000)
	cfg.Functional = true
	if mut != nil {
		mut(&cfg)
	}
	dev := New(k, f, cfg)
	f.IOMMU().Grant("ssd0", pcie.DefaultHostConfig().MemBase, pcie.DefaultHostConfig().MemSize)
	tb := &testbench{
		t: t, k: k, host: host, dev: dev, bar: cfg.BARBase,
		asq: host.Alloc(tbDepth*SQESize, PageSize), acq: host.Alloc(tbDepth*CQESize, PageSize),
		ioSQ: host.Alloc(tbDepth*SQESize, PageSize), ioCQ: host.Alloc(tbDepth*CQESize, PageSize),
		aPhase: true, ioPhase: true,
	}
	host.Mem.Watch(tb.acq, tbDepth*CQESize, func(uint64, int64, []byte) { tb.reap(&tb.aHead, &tb.aPhase, tb.acq) })
	host.Mem.Watch(tb.ioCQ, tbDepth*CQESize, func(uint64, int64, []byte) { tb.reap(&tb.ioHead, &tb.ioPhase, tb.ioCQ) })
	return tb
}

func (tb *testbench) reap(head *int, phase *bool, cq uint64) {
	for {
		raw := make([]byte, CQESize)
		tb.host.Mem.Store().ReadBytes(cq-tb.host.Mem.Base+uint64(*head*CQESize), raw)
		cqe, err := UnmarshalCompletion(raw)
		if err != nil || cqe.Phase != *phase {
			return
		}
		*head++
		if *head == tbDepth {
			*head = 0
			*phase = !*phase
		}
		tb.completions = append(tb.completions, cqe)
	}
}

func le32b(v uint32) []byte { return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)} }
func le64b(v uint64) []byte {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

// enable runs the register-level bring-up. Queue memory is zeroed first,
// as a real driver must: stale completion entries from a previous life
// would alias the fresh phase.
func (tb *testbench) enable() {
	h := tb.host
	zero := make([]byte, tbDepth*CQESize)
	h.Mem.Store().WriteBytes(tb.acq-h.Mem.Base, zero)
	h.Mem.Store().WriteBytes(tb.ioCQ-h.Mem.Base, zero)
	h.Port.Write(tb.bar+RegAQA, 4, le32b(uint32(tbDepth-1)|uint32(tbDepth-1)<<16), nil)
	h.Port.Write(tb.bar+RegASQ, 8, le64b(tb.asq), nil)
	h.Port.Write(tb.bar+RegACQ, 8, le64b(tb.acq), nil)
	h.Port.Write(tb.bar+RegCC, 4, le32b(CCEnable), nil)
	tb.k.Run(0)
}

// admin submits one admin SQE and runs the simulation until idle.
func (tb *testbench) admin(cmd Command) Completion {
	tb.host.Mem.Store().WriteBytes(tb.asq-tb.host.Mem.Base+uint64(tb.aTail*SQESize), cmd.Marshal())
	tb.aTail = (tb.aTail + 1) % tbDepth
	before := len(tb.completions)
	tb.host.Port.Write(tb.bar+RegDoorbellBase, 4, le32b(uint32(tb.aTail)), nil)
	tb.k.Run(0)
	if len(tb.completions) <= before {
		tb.t.Fatalf("admin command %#x produced no completion", cmd.Opcode)
	}
	return tb.completions[len(tb.completions)-1]
}

// createIOQueues builds the standard qid-1 pair.
func (tb *testbench) createIOQueues() {
	if c := tb.admin(Command{Opcode: OpCreateIOCQ, CID: 1, PRP1: tb.ioCQ,
		CDW10: 1 | uint32(tbDepth-1)<<16, CDW11: 1}); c.Status != StatusSuccess {
		tb.t.Fatalf("CreateIOCQ status %#x", c.Status)
	}
	if c := tb.admin(Command{Opcode: OpCreateIOSQ, CID: 2, PRP1: tb.ioSQ,
		CDW10: 1 | uint32(tbDepth-1)<<16, CDW11: 1 | 1<<16}); c.Status != StatusSuccess {
		tb.t.Fatalf("CreateIOSQ status %#x", c.Status)
	}
}

// io submits one I/O SQE and returns its completion.
func (tb *testbench) io(cmd Command) Completion {
	tb.host.Mem.Store().WriteBytes(tb.ioSQ-tb.host.Mem.Base+uint64(tb.ioTail*SQESize), cmd.Marshal())
	tb.ioTail = (tb.ioTail + 1) % tbDepth
	before := len(tb.completions)
	tb.host.Port.Write(tb.bar+RegDoorbellBase+8, 4, le32b(uint32(tb.ioTail)), nil)
	tb.k.Run(0)
	if len(tb.completions) <= before {
		tb.t.Fatalf("I/O command %#x produced no completion", cmd.Opcode)
	}
	return tb.completions[len(tb.completions)-1]
}

func TestProtocolBringUpAndIdentify(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	idBuf := tb.host.Alloc(PageSize, PageSize)
	if c := tb.admin(Command{Opcode: OpIdentify, CID: 7, PRP1: idBuf, CDW10: CNSController}); c.Status != StatusSuccess || c.CID != 7 {
		t.Fatalf("identify: %+v", c)
	}
	ctrl := make([]byte, PageSize)
	tb.host.Mem.Store().ReadBytes(idBuf-tb.host.Mem.Base, ctrl)
	if ctrl[0] != 0x4D || ctrl[1] != 0x14 {
		t.Errorf("VID = %x%x, want Samsung 144d", ctrl[1], ctrl[0])
	}
	if ctrl[77] != 9 {
		t.Errorf("MDTS = %d, want 9 (2 MiB)", ctrl[77])
	}
}

func TestProtocolSGLRejected(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	buf := tb.host.Alloc(PageSize, PageSize)
	cmd := Command{Opcode: OpRead, CID: 3, NSID: 1, PSDT: 1, PRP1: buf}
	cmd.SetNLB(7)
	if c := tb.io(cmd); c.Status != StatusInvalidField {
		t.Fatalf("SGL command status %#x, want invalid field", c.Status)
	}
}

func TestProtocolInvalidOpcode(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	if c := tb.io(Command{Opcode: 0x7F, CID: 4, NSID: 1}); c.Status != StatusInvalidOpcode {
		t.Fatalf("status %#x, want invalid opcode", c.Status)
	}
}

func TestProtocolBadNSID(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	buf := tb.host.Alloc(PageSize, PageSize)
	cmd := Command{Opcode: OpWrite, CID: 5, NSID: 9, PRP1: buf}
	cmd.SetNLB(0)
	if c := tb.io(cmd); c.Status != StatusInvalidNSID {
		t.Fatalf("status %#x, want invalid NSID", c.Status)
	}
}

func TestProtocolMisalignedPRP2(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	buf := tb.host.Alloc(2*PageSize, PageSize)
	cmd := Command{Opcode: OpRead, CID: 6, NSID: 1, PRP1: buf, PRP2: buf + 100}
	cmd.SetNLB(uint32(2*PageSize/512) - 1)
	if c := tb.io(cmd); c.Status != StatusInvalidField {
		t.Fatalf("status %#x, want invalid field for misaligned PRP2", c.Status)
	}
}

func TestProtocolQueueDeletion(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	// Delete SQ then CQ (spec order).
	if c := tb.admin(Command{Opcode: OpDeleteIOSQ, CID: 8, CDW10: 1}); c.Status != StatusSuccess {
		t.Fatalf("delete SQ: %#x", c.Status)
	}
	// The pair is gone; re-creating it must work.
	tb.createIOQueues()
	buf := tb.host.Alloc(PageSize, PageSize)
	cmd := Command{Opcode: OpRead, CID: 9, NSID: 1, PRP1: buf}
	cmd.SetNLB(7)
	if c := tb.io(cmd); c.Status != StatusSuccess {
		t.Fatalf("I/O after re-create: %#x", c.Status)
	}
}

func TestProtocolCreateSQWithoutCQFails(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	c := tb.admin(Command{Opcode: OpCreateIOSQ, CID: 2, PRP1: tb.ioSQ,
		CDW10: 2 | uint32(tbDepth-1)<<16, CDW11: 1 | 2<<16})
	if c.Status != StatusInvalidField {
		t.Fatalf("SQ without CQ: status %#x", c.Status)
	}
}

func TestProtocolGetFeaturesNumQueues(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	c := tb.admin(Command{Opcode: OpGetFeatures, CID: 3, CDW10: uint32(FeatureNumQueues)})
	if c.Status != StatusSuccess {
		t.Fatalf("get features: %#x", c.Status)
	}
	if c.DW0&0xFFFF == 0 && c.DW0>>16 == 0 {
		t.Fatal("feature response reports zero queues")
	}
}

func TestProtocolFaultInjection(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	n := 0
	tb.dev.SetFaultInjector(func(cmd Command) uint16 {
		n++
		if n%2 == 1 {
			return StatusInternalError
		}
		return StatusSuccess
	})
	buf := tb.host.Alloc(PageSize, PageSize)
	cmd := Command{Opcode: OpWrite, CID: 10, NSID: 1, PRP1: buf}
	cmd.SetNLB(7)
	if c := tb.io(cmd); c.Status != StatusInternalError {
		t.Fatalf("first command status %#x, want injected error", c.Status)
	}
	cmd.CID = 11
	if c := tb.io(cmd); c.Status != StatusSuccess {
		t.Fatalf("second command status %#x, want success", c.Status)
	}
	if tb.dev.Errors() != 1 {
		t.Fatalf("device error counter = %d", tb.dev.Errors())
	}
}

func TestProtocolControllerReset(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	// CC.EN = 0 tears down all queues.
	tb.host.Port.Write(tb.bar+RegCC, 4, le32b(0), nil)
	tb.k.Run(0)
	csts := make([]byte, 4)
	tb.host.Port.Read(tb.bar+RegCSTS, 4, csts, nil)
	tb.k.Run(0)
	if csts[0]&1 != 0 {
		t.Fatal("CSTS.RDY still set after disable")
	}
	// Re-enable and rebuild; the device must come back cleanly.
	tb.aTail, tb.aHead, tb.aPhase = 0, 0, true
	tb.ioTail, tb.ioHead, tb.ioPhase = 0, 0, true
	tb.enable()
	tb.createIOQueues()
	buf := tb.host.Alloc(PageSize, PageSize)
	cmd := Command{Opcode: OpRead, CID: 12, NSID: 1, PRP1: buf}
	cmd.SetNLB(7)
	if c := tb.io(cmd); c.Status != StatusSuccess {
		t.Fatalf("I/O after reset: %#x", c.Status)
	}
}

func TestProtocolMDTSExceeded(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	buf := tb.host.Alloc(PageSize, PageSize)
	cmd := Command{Opcode: OpRead, CID: 13, NSID: 1, PRP1: buf}
	cmd.SetNLB(uint32(MaxTransferBytes / 512)) // one block over MDTS
	if c := tb.io(cmd); c.Status != StatusInvalidField {
		t.Fatalf("over-MDTS status %#x, want invalid field", c.Status)
	}
}

func TestProtocolSMARTLogPage(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	buf := tb.host.Alloc(PageSize, PageSize)
	wcmd := Command{Opcode: OpWrite, CID: 20, NSID: 1, PRP1: buf}
	wcmd.SetNLB(7) // 4 KiB
	if c := tb.io(wcmd); c.Status != StatusSuccess {
		t.Fatalf("write: %#x", c.Status)
	}
	logBuf := tb.host.Alloc(PageSize, PageSize)
	lcmd := Command{Opcode: OpGetLogPage, CID: 21, PRP1: logBuf,
		CDW10: uint32(LogPageSMART) | uint32(512/4-1)<<16}
	if c := tb.admin(lcmd); c.Status != StatusSuccess {
		t.Fatalf("get log page: %#x", c.Status)
	}
	page := make([]byte, 512)
	tb.host.Mem.Store().ReadBytes(logBuf-tb.host.Mem.Base, page)
	writes := le64(page[80:88])
	if writes != 1 {
		t.Fatalf("SMART host writes = %d, want 1", writes)
	}
	units := le64(page[48:56])
	if units != 1 {
		t.Fatalf("SMART data units written = %d, want 1", units)
	}
}

func TestProtocolErrorLogPage(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	// Provoke two errors: bad NSID and out-of-range LBA.
	bad := Command{Opcode: OpRead, CID: 22, NSID: 7, PRP1: tb.host.Alloc(PageSize, PageSize)}
	bad.SetNLB(7)
	tb.io(bad)
	oob := Command{Opcode: OpRead, CID: 23, NSID: 1, PRP1: tb.host.Alloc(PageSize, PageSize)}
	oob.SetSLBA(1 << 40)
	oob.SetNLB(7)
	tb.io(oob)

	entries := tb.dev.ErrorLog()
	if len(entries) != 2 {
		t.Fatalf("error log entries = %d, want 2", len(entries))
	}
	if entries[1].CID != 23 || entries[1].Status != StatusLBAOutOfRange {
		t.Fatalf("latest error = %+v", entries[1])
	}

	logBuf := tb.host.Alloc(PageSize, PageSize)
	lcmd := Command{Opcode: OpGetLogPage, CID: 24, PRP1: logBuf,
		CDW10: uint32(LogPageError) | uint32(128/4-1)<<16}
	if c := tb.admin(lcmd); c.Status != StatusSuccess {
		t.Fatalf("get log page: %#x", c.Status)
	}
	page := make([]byte, 128)
	tb.host.Mem.Store().ReadBytes(logBuf-tb.host.Mem.Base, page)
	// Newest first: entry 0 is the CID-23 error.
	if cid := le32(page[10:14]) & 0xFFFF; cid != 23 {
		t.Fatalf("newest log entry CID = %d, want 23", cid)
	}
	if cnt := le64(page[0:8]); cnt != 2 {
		t.Fatalf("newest error count = %d, want 2", cnt)
	}
}

func TestProtocolUnknownLogPage(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	buf := tb.host.Alloc(PageSize, PageSize)
	c := tb.admin(Command{Opcode: OpGetLogPage, CID: 25, PRP1: buf, CDW10: 0x7F})
	if c.Status != StatusInvalidField {
		t.Fatalf("unknown LID status %#x", c.Status)
	}
}

func TestProtocolWriteZeroes(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	buf := tb.host.Alloc(PageSize, PageSize)
	want := make([]byte, PageSize)
	for i := range want {
		want[i] = 0xAB
	}
	tb.host.Mem.Store().WriteBytes(buf-tb.host.Mem.Base, want)
	w := Command{Opcode: OpWrite, CID: 30, NSID: 1, PRP1: buf}
	w.SetNLB(7)
	if c := tb.io(w); c.Status != StatusSuccess {
		t.Fatalf("write: %#x", c.Status)
	}
	z := Command{Opcode: OpWriteZeroes, CID: 31, NSID: 1}
	z.SetNLB(3) // first 2 KiB
	if c := tb.io(z); c.Status != StatusSuccess {
		t.Fatalf("write zeroes: %#x", c.Status)
	}
	got := make([]byte, PageSize)
	tb.dev.NAND().Store().ReadBytes(0, got)
	for i := 0; i < 2048; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
	for i := 2048; i < PageSize; i++ {
		if got[i] != 0xAB {
			t.Fatalf("byte %d clobbered beyond the zeroed range", i)
		}
	}
}

func TestProtocolDatasetManagementTrim(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	// Write two sectors far apart, trim both with one DSM command.
	buf := tb.host.Alloc(PageSize, PageSize)
	tb.host.Mem.Store().WriteBytes(buf-tb.host.Mem.Base, []byte{1, 2, 3, 4})
	for _, lba := range []uint64{100, 5000} {
		w := Command{Opcode: OpWrite, CID: uint16(32 + lba%10), NSID: 1, PRP1: buf}
		w.SetSLBA(lba)
		w.SetNLB(0)
		if c := tb.io(w); c.Status != StatusSuccess {
			t.Fatalf("write: %#x", c.Status)
		}
	}
	ranges := MarshalDSMRanges([]DSMRange{{SLBA: 100, NLB: 1}, {SLBA: 5000, NLB: 1}})
	dsmBuf := tb.host.Alloc(PageSize, PageSize)
	tb.host.Mem.Store().WriteBytes(dsmBuf-tb.host.Mem.Base, ranges)
	dsm := Command{Opcode: OpDatasetMgmt, CID: 34, NSID: 1, PRP1: dsmBuf,
		CDW10: 1 /* 2 ranges, 0-based */, CDW11: 1 << 2 /* AD */}
	if c := tb.io(dsm); c.Status != StatusSuccess {
		t.Fatalf("dsm: %#x", c.Status)
	}
	if tb.dev.DeallocatedBytes() != 2*512 {
		t.Fatalf("deallocated = %d, want 1024", tb.dev.DeallocatedBytes())
	}
	got := make([]byte, 4)
	tb.dev.NAND().Store().ReadBytes(100*512, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("trimmed LBA not zeroed")
		}
	}
}

func TestProtocolDSMOutOfRange(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	ranges := MarshalDSMRanges([]DSMRange{{SLBA: 1 << 60, NLB: 1}})
	dsmBuf := tb.host.Alloc(PageSize, PageSize)
	tb.host.Mem.Store().WriteBytes(dsmBuf-tb.host.Mem.Base, ranges)
	dsm := Command{Opcode: OpDatasetMgmt, CID: 35, NSID: 1, PRP1: dsmBuf,
		CDW10: 0, CDW11: 1 << 2}
	if c := tb.io(dsm); c.Status != StatusLBAOutOfRange {
		t.Fatalf("dsm status %#x, want LBA out of range", c.Status)
	}
}

func TestProtocolDSMHintIgnored(t *testing.T) {
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	dsm := Command{Opcode: OpDatasetMgmt, CID: 36, NSID: 1, CDW10: 0, CDW11: 0}
	if c := tb.io(dsm); c.Status != StatusSuccess {
		t.Fatalf("hint-only dsm status %#x", c.Status)
	}
	if tb.dev.DeallocatedBytes() != 0 {
		t.Fatal("hint-only DSM deallocated data")
	}
}

func TestProtocolHugeSLBANoOverflow(t *testing.T) {
	// An SLBA large enough to overflow byte arithmetic must still be
	// rejected, not wrap into a valid offset.
	tb := newTestbench(t, nil)
	tb.enable()
	tb.createIOQueues()
	buf := tb.host.Alloc(PageSize, PageSize)
	cmd := Command{Opcode: OpRead, CID: 40, NSID: 1, PRP1: buf}
	cmd.SetSLBA(1 << 62)
	cmd.SetNLB(7)
	if c := tb.io(cmd); c.Status != StatusLBAOutOfRange {
		t.Fatalf("huge-SLBA status %#x, want LBA out of range", c.Status)
	}
}

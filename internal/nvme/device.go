package nvme

import (
	"fmt"

	"snacc/internal/bufpool"
	"snacc/internal/obs"
	"snacc/internal/pcie"
	"snacc/internal/sim"
)

// Config parameterizes one SSD.
type Config struct {
	// Name identifies the device on the fabric and in the IOMMU.
	Name string
	// BARBase is the bus address of the register BAR.
	BARBase uint64
	// LBASize is the logical block size (512 for the 990 PRO default
	// format).
	LBASize int64
	// NamespaceBytes is the capacity of namespace 1.
	NamespaceBytes int64
	// Link is the device's PCIe attachment. The default models the
	// 990 PRO's Gen4 x4 link with a data-fetch engine that keeps 4
	// outstanding page-sized reads in flight — the credit window whose
	// round-trip sensitivity produces the paper's P2P write ceiling.
	Link pcie.LinkConfig
	// NAND is the flash backend profile.
	NAND NANDConfig
	// MaxIOQueuePairs bounds CreateIOSQ/CreateIOCQ.
	MaxIOQueuePairs int
	// FrontEndReadCost / FrontEndWriteCost serialize command processing in
	// the controller's firmware front end; they bound small-command IOPS
	// (SPDK's 4.5 / 5.25 GB/s random ceilings in Figure 4b).
	FrontEndReadCost  sim.Time
	FrontEndWriteCost sim.Time
	// FetchBatch is the max SQEs fetched per read; MaxFetchReads bounds
	// concurrent fetch reads in flight.
	FetchBatch    int
	MaxFetchReads int
	// ExecContexts bounds concurrently executing commands inside the
	// controller.
	ExecContexts int
	// SlowEpochReadPadding is added to the data-fetch path during slow
	// banding epochs (see NANDConfig.EpochBytes).
	SlowEpochReadPadding sim.Time
	// ReadyDelay is the time between CC.EN and CSTS.RDY.
	ReadyDelay sim.Time
	// ShutdownDelay is the time between CC.SHN and CSTS.SHST reporting
	// shutdown complete.
	ShutdownDelay sim.Time
	// Functional enables content movement (real bytes on the media); when
	// false the device is timing-only for data payloads. Queue entries and
	// PRP lists always carry real bytes.
	Functional bool
}

// DefaultConfig returns the calibrated Samsung 990 PRO 2 TB profile.
func DefaultConfig(name string, barBase uint64) Config {
	return Config{
		Name:           name,
		BARBase:        barBase,
		LBASize:        512,
		NamespaceBytes: 2 * 1000 * 1000 * sim.MiB, // 2 TB (decimal)
		Link: pcie.LinkConfig{
			Gen:                pcie.Gen4,
			Lanes:              4,
			MaxPayload:         512,
			MaxReadRequest:     PageSize,
			ReadCredits:        4,
			PropagationLatency: 150 * sim.Nanosecond,
		},
		NAND:                 DefaultNANDConfig(),
		MaxIOQueuePairs:      8,
		FrontEndReadCost:     650 * sim.Nanosecond,
		FrontEndWriteCost:    780 * sim.Nanosecond,
		FetchBatch:           8,
		MaxFetchReads:        4,
		ExecContexts:         128,
		SlowEpochReadPadding: 150 * sim.Nanosecond,
		ReadyDelay:           50 * sim.Microsecond,
		ShutdownDelay:        20 * sim.Microsecond,
	}
}

// EdgeLookahead returns the conservative-sync lookahead a domain boundary
// at this controller's PCIe attachment sustains: the link's one-way
// propagation latency. No observable effect of a host doorbell or a device
// DMA crosses the link faster than one traversal, so a shard edge between
// the fabric-side domain and a per-controller domain may declare this
// value. (With the stock pcie.Fabric the coupling is synchronous and the
// controller stays in the fabric's domain; this declaration serves rigs
// that model the attachment as an explicit latency edge, as the bench
// kernel sweep does.)
func (c Config) EdgeLookahead() sim.Time {
	link := c.Link
	if link.PropagationLatency == 0 {
		link.PropagationLatency = 150 * sim.Nanosecond
	}
	return link.PropagationLatency
}

// EdgeTurnaround returns the arrival-to-send floor a per-controller domain
// may declare (sim.Domain.SetTurnaround) when its cross-domain traffic is
// command-level — an inbound command cannot produce a completion before the
// firmware front end has serialized it, so the smaller of the two front-end
// costs bounds the controller's earliest response. Zero (promise nothing)
// when either cost is unset, or for rigs whose boundary also carries
// sub-command traffic (doorbell-triggered fetch DMA), where no such floor
// exists.
func (c Config) EdgeTurnaround() sim.Time {
	min := c.FrontEndReadCost
	if c.FrontEndWriteCost < min {
		min = c.FrontEndWriteCost
	}
	if min < 0 {
		return 0
	}
	return min
}

// queuePair tracks one SQ/CQ pair from the controller's perspective.
type queuePair struct {
	id      uint16
	sqBase  uint64
	cqBase  uint64
	entries int // SQ and CQ sized identically in this model

	sqTailDB  int // last doorbell value written by the host
	issueHead int // next SQE slot to issue a fetch for
	sqHead    int // fetch-completed position (reported in CQEs)
	cqTail    int // controller post position
	cqHeadDB  int // last CQ head doorbell from the host
	cqPhase   bool

	// cqWait holds completions stalled on CQ space; they drain when the
	// host advances the CQ head doorbell.
	cqWait []func()

	// debugOutstanding tracks fetched-but-not-completed CIDs to catch
	// protocol violations (duplicate fetch / double completion).
	debugOutstanding map[uint16]bool
}

// cqFull reports whether posting another CQE would overwrite an entry the
// host has not acknowledged via the CQ head doorbell.
func (q *queuePair) cqFull() bool {
	return (q.cqTail+1)%q.entries == q.cqHeadDB
}

func (q *queuePair) pending() int {
	d := q.sqTailDB - q.issueHead
	if d < 0 {
		d += q.entries
	}
	return d
}

// CtrlMode is the controller's failure-model state.
type CtrlMode uint8

const (
	// ModeHealthy is normal operation.
	ModeHealthy CtrlMode = iota
	// ModeCrashed means a fatal internal error latched CSTS.CFS: the
	// controller stops fetching SQEs and posting CQEs until the host
	// performs a controller reset (CC.EN 1→0→1).
	ModeCrashed
	// ModeHung means the command engine froze: fetches and completions
	// park, but register accesses still work (so a reset can rescue a hung
	// controller). Hangs revive on their own after a deadline.
	ModeHung
	// ModeRemoved is surprise removal: register reads float all-1s like a
	// real PCIe master abort, writes vanish, and no reset can bring the
	// device back.
	ModeRemoved
)

// CtrlFault is a controller-level fault verdict for one command (see
// SetCtrlFaultInjector).
type CtrlFault struct {
	// Crash latches CSTS.CFS at this command: a recoverable fatal error.
	Crash bool
	// Remove surprise-removes the controller at this command: permanent.
	Remove bool
	// Hang, when positive, freezes the command engine for this duration,
	// then revives it.
	Hang sim.Time
}

// Device is one simulated NVMe SSD attached to a PCIe fabric.
type Device struct {
	k    *sim.Kernel
	cfg  Config
	port *pcie.Port
	nand *NAND

	// Registers.
	cc   uint32
	csts uint32
	aqa  uint32
	asq  uint64
	acq  uint64

	queues       map[uint16]*queuePair // includes admin as qid 0 once enabled
	cqPendingMap map[uint16]cqPending  // CQs awaiting their paired SQ

	execGate     *callbackGate
	frontEndBusy sim.Time

	// Fetch scheduler state: the MaxFetchReads budget is device-global (not
	// per queue), and fetchRR is the round-robin scan pointer that hands the
	// next credit to the next qid with pending entries — one hot queue
	// cannot monopolize the fetch engine.
	fetchReads int
	fetchRR    int

	// Failure model.
	mode        CtrlMode
	fatalReason string
	resetGen    uint64 // invalidates ready/shutdown timers across resets
	hangGen     uint64 // invalidates stale revive timers
	hungWait    []func() // completions parked while hung

	// faultInjector, when set, can force a failure status for an I/O
	// command before execution (tests and failure-injection experiments).
	faultInjector func(Command) uint16
	// cqeInterceptor, when set, decides the fate of each I/O completion
	// entry before it is posted (lost/late-CQE fault injection).
	cqeInterceptor func(Command, uint16) CQEFate
	// ctrlInjector, when set, can crash, hang or remove the whole
	// controller at a chosen I/O command.
	ctrlInjector func(Command) CtrlFault
	// cmdObserver, when set, receives per-command pipeline events (SQE
	// fetched, execution started) for span tracing. Nil by default; the
	// untraced path pays one nil compare per site.
	cmdObserver CmdObserver

	// Stats and SMART accounting.
	cmdsExecuted     int64
	cqesDropped      int64
	cqesDelayed      int64
	cqesLost         int64
	ctrlCrashes      int64
	ctrlHangs        int64
	ctrlRemovals     int64
	errs             int64
	errorCount       uint64
	errorLog         []ErrorLogEntry
	dataUnitsRead    int64
	dataUnitsWritten int64
	hostReads        int64
	hostWrites       int64
	deallocated      int64
}

// SetFaultInjector installs fn; fn returning a non-success status fails the
// command without touching media. Pass nil to clear.
func (d *Device) SetFaultInjector(fn func(Command) uint16) { d.faultInjector = fn }

// CmdObserver receives device-side pipeline events for span tracing: the
// qid/cid pair names the command, stage is obs.StageFetched when the fetch
// engine decoded its SQE and obs.StageTransfer when execution began. The
// admin queue (qid 0) reports too; host glue typically filters on the I/O
// queue it owns.
type CmdObserver func(qid, cid uint16, stage obs.Stage, at sim.Time)

// SetCmdObserver installs the per-command event observer (nil to remove).
func (d *Device) SetCmdObserver(fn CmdObserver) { d.cmdObserver = fn }

// CQEFate is a completion interceptor's verdict on one completion entry.
type CQEFate struct {
	// Drop loses the completion: the command executes and is accounted,
	// but its CQE is never posted — the host-side recovery (timeout
	// watchdog) is the only way forward.
	Drop bool
	// Delay, when positive, postpones posting the CQE. Long delays race
	// the host's command deadline and provoke stale completions for
	// already-resubmitted commands.
	Delay sim.Time
}

// SetCQEInterceptor installs fn, consulted once per I/O-queue completion
// before the CQE is posted; admin completions are never intercepted. Pass
// nil to clear. internal/fault uses this to model lost and delayed
// completions.
func (d *Device) SetCQEInterceptor(fn func(Command, uint16) CQEFate) { d.cqeInterceptor = fn }

// SetCtrlFaultInjector installs fn, consulted once per I/O command before
// execution; a non-zero CtrlFault crashes, hangs or removes the whole
// controller at that command. Pass nil to clear. internal/fault uses this
// for controller-level fault rules.
func (d *Device) SetCtrlFaultInjector(fn func(Command) CtrlFault) { d.ctrlInjector = fn }

// CQEsDropped returns completions lost by the interceptor.
func (d *Device) CQEsDropped() int64 { return d.cqesDropped }

// CQEsDelayed returns completions posted late by the interceptor.
func (d *Device) CQEsDelayed() int64 { return d.cqesDelayed }

// CQEsLost returns completions discarded because the controller crashed,
// hung without reviving, was removed, or was reset while they were in
// flight.
func (d *Device) CQEsLost() int64 { return d.cqesLost }

// Mode returns the controller's failure-model state.
func (d *Device) Mode() CtrlMode { return d.mode }

// FatalReason describes the most recent fatal-status latch ("" if none).
func (d *Device) FatalReason() string { return d.fatalReason }

// ControllerCrashes counts CSTS.CFS latches (injected or protocol-driven).
func (d *Device) ControllerCrashes() int64 { return d.ctrlCrashes }

// ControllerHangs counts injected command-engine hangs.
func (d *Device) ControllerHangs() int64 { return d.ctrlHangs }

// Crash latches the controller fatal status (CSTS.CFS): the device stops
// fetching SQEs and posting CQEs until the host resets it.
func (d *Device) Crash() { d.fatal("host-injected controller crash") }

// Hang freezes the command engine for dur: fetched commands park their
// completions and no new SQEs are fetched. The controller revives on its
// own when dur elapses, unless it crashes or resets first.
func (d *Device) Hang(dur sim.Time) {
	if d.mode != ModeHealthy || dur <= 0 {
		return
	}
	d.ctrlHangs++
	d.mode = ModeHung
	d.hangGen++
	gen := d.hangGen
	d.k.After(dur, func() { d.revive(gen) })
}

// Remove surprise-removes the device from the fabric: register reads float
// all-1s, writes vanish, and the controller never comes back.
func (d *Device) Remove() {
	if d.mode == ModeRemoved {
		return
	}
	d.ctrlRemovals++
	d.mode = ModeRemoved
	d.resetGen++
	d.flushParked(d.queues)
}

// fatal latches CSTS.CFS and enters the crashed mode. Completions parked
// during a hang are flushed through the discard path so their execution
// contexts recycle.
func (d *Device) fatal(reason string) {
	if d.mode == ModeRemoved || d.mode == ModeCrashed {
		return
	}
	d.ctrlCrashes++
	d.fatalReason = reason
	d.mode = ModeCrashed
	d.csts |= CSTSFatal
	d.resetGen++
	d.flushParked(d.queues)
}

// revive ends a hang: parked completions flush and fetching resumes.
func (d *Device) revive(gen uint64) {
	if d.mode != ModeHung || gen != d.hangGen {
		return
	}
	d.mode = ModeHealthy
	w := d.hungWait
	d.hungWait = nil
	for _, fn := range w {
		fn()
	}
	// The scheduler scans qids numerically — deterministic, unlike ranging
	// over the queue map would be.
	d.kickAll()
}

// flushParked re-invokes every parked completion closure after a mode or
// queue-generation change. Each re-entry hits the discard path (the mode or
// the stale-queue check), which releases the execution context the command
// still holds — without this, repeated crashes leak exec contexts until the
// controller wedges.
func (d *Device) flushParked(old map[uint16]*queuePair) {
	w := d.hungWait
	d.hungWait = nil
	for _, fn := range w {
		fn()
	}
	for _, q := range old {
		cw := q.cqWait
		q.cqWait = nil
		for _, fn := range cw {
			fn()
		}
	}
}

// stale reports whether q belongs to a previous controller generation
// (replaced or dropped by a reset). Completions for stale queues are
// discarded — they must never land in a rebuilt queue's memory.
func (d *Device) stale(q *queuePair) bool { return d.queues[q.id] != q }

// fetchAllowed reports whether the controller currently fetches SQEs.
func (d *Device) fetchAllowed() bool {
	return d.mode == ModeHealthy && d.csts&CSTSShutdownMask == 0
}

// New attaches a device to the fabric and maps its register BAR.
func New(k *sim.Kernel, f *pcie.Fabric, cfg Config) *Device {
	if cfg.LBASize <= 0 || PageSize%cfg.LBASize != 0 {
		panic("nvme: LBA size must divide the page size")
	}
	d := &Device{
		k:        k,
		cfg:      cfg,
		nand:     NewNAND(k, cfg.NAND),
		queues:   make(map[uint16]*queuePair),
		execGate: newCallbackGate(cfg.ExecContexts),
	}
	d.port = f.AttachPort(cfg.Name, cfg.Link, (*deviceBAR)(d))
	d.port.DeclareIdentity(pcie.Identity{
		Vendor:   0x144D, // Samsung
		Device:   0xA80C, // 990 PRO
		Class:    pcie.ClassNVMe,
		BARBytes: BARSize,
		OnAssign: func(base uint64) { d.cfg.BARBase = base },
	})
	if cfg.BARBase != 0 {
		// Statically placed (tests, simple rigs); enumeration assigns the
		// window otherwise.
		f.MapRange(d.port, cfg.BARBase, BARSize)
	}
	d.nand.OnEpochChange = func(slow bool) {
		if slow {
			d.port.SetReadPadding(cfg.SlowEpochReadPadding)
		} else {
			d.port.SetReadPadding(0)
		}
	}
	return d
}

// Port returns the device's fabric port (for IOMMU grants and stats).
func (d *Device) Port() *pcie.Port { return d.port }

// NAND exposes the flash backend (for stats and media content).
func (d *Device) NAND() *NAND { return d.nand }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// CommandsExecuted returns the number of completed commands.
func (d *Device) CommandsExecuted() int64 { return d.cmdsExecuted }

// Errors returns the number of commands completed with non-success status.
func (d *Device) Errors() int64 { return d.errs }

// deviceBAR implements pcie.Completer for the register BAR without
// polluting Device's method set with transport callbacks.
type deviceBAR Device

// CompleteWrite decodes register and doorbell writes.
func (b *deviceBAR) CompleteWrite(addr uint64, n int64, data []byte) {
	d := (*Device)(b)
	off := addr - d.cfg.BARBase
	if off >= RegDoorbellBase {
		d.doorbell(off, data)
		return
	}
	if data == nil {
		panic("nvme: register write requires data")
	}
	d.regWrite(off, data)
}

// CompleteRead serves register reads.
func (b *deviceBAR) CompleteRead(addr uint64, n int64, buf []byte, done func()) {
	d := (*Device)(b)
	if buf != nil {
		d.regRead(addr-d.cfg.BARBase, buf)
	}
	// Register access latency across the device's internal bus.
	d.k.After(100*sim.Nanosecond, done)
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func put64(b []byte, v uint64) {
	put32(b, uint32(v))
	put32(b[4:], uint32(v>>32))
}

func (d *Device) regWrite(off uint64, data []byte) {
	if d.mode == ModeRemoved {
		return // writes to a removed device vanish (master abort)
	}
	switch off {
	case RegCC:
		d.cc = le32(data)
		if d.cc&CCShutdownMask != 0 && d.csts&CSTSShutdownMask == 0 {
			d.beginShutdown()
		}
		if d.cc&CCEnable != 0 && d.csts&CSTSReady == 0 && d.mode == ModeHealthy {
			d.enable()
		}
		if d.cc&CCEnable == 0 {
			d.reset()
		}
	case RegAQA:
		d.aqa = le32(data)
	case RegASQ:
		d.asq = le64(data)
	case RegACQ:
		d.acq = le64(data)
	default:
		// Unmodeled register: a real controller treats this as an
		// unrecoverable protocol violation — latch the fatal status the
		// host can observe instead of killing the simulation.
		d.fatal(fmt.Sprintf("write to unmodeled register %#x", off))
	}
}

func (d *Device) regRead(off uint64, buf []byte) {
	if d.mode == ModeRemoved {
		// A removed device aborts the read; the root complex returns
		// all-1s, which is how hosts detect surprise removal.
		for i := range buf {
			buf[i] = 0xFF
		}
		return
	}
	switch off {
	case RegCAP:
		// MQES (max queue entries, 0-based) in bits 15:0; DSTRD 0; TO in
		// bits 31:24 (units of 500 ms — report 1).
		var cap64 uint64 = 1023 | 1<<24
		tmp := make([]byte, 8)
		put64(tmp, cap64)
		copy(buf, tmp)
	case RegVS:
		// NVMe 1.4.0: major 1, minor 4.
		tmp := make([]byte, 4)
		put32(tmp, 1<<16|4<<8)
		copy(buf, tmp)
	case RegCC:
		tmp := make([]byte, 4)
		put32(tmp, d.cc)
		copy(buf, tmp)
	case RegCSTS:
		tmp := make([]byte, 4)
		put32(tmp, d.csts)
		copy(buf, tmp)
	default:
		// Unmodeled register: return zeros and latch the fatal status.
		for i := range buf {
			buf[i] = 0
		}
		d.fatal(fmt.Sprintf("read of unmodeled register %#x", off))
	}
}

// enable brings the controller up: materialize the admin queue pair.
func (d *Device) enable() {
	entries := int(d.aqa&0xFFF) + 1 // ASQS, 0-based
	d.queues[0] = &queuePair{
		id:      0,
		sqBase:  d.asq,
		cqBase:  d.acq,
		entries: entries,
		cqPhase: true,
	}
	gen := d.resetGen
	d.k.After(d.cfg.ReadyDelay, func() {
		// A reset or crash between CC.EN and the ready deadline cancels
		// the transition — ready must not reappear on a torn-down
		// controller.
		if gen == d.resetGen && d.mode == ModeHealthy {
			d.csts |= CSTSReady
		}
	})
}

// reset is a controller reset (CC.EN 1→0): queues are torn down, the ready,
// fatal and shutdown status bits clear, and a crashed or hung controller
// returns to healthy. Completions still in flight against the old queues
// flush through the stale-queue discard path.
func (d *Device) reset() {
	d.csts &^= CSTSReady | CSTSFatal | CSTSShutdownMask
	d.resetGen++
	old := d.queues
	d.queues = make(map[uint16]*queuePair)
	d.cqPendingMap = nil
	if d.mode == ModeCrashed || d.mode == ModeHung {
		d.mode = ModeHealthy
		d.hangGen++ // cancel a pending revive
	}
	d.flushParked(old)
}

// beginShutdown runs the CC.SHN → CSTS.SHST handshake: the controller
// reports shutdown-processing, stops fetching new commands, and reports
// shutdown-complete after ShutdownDelay.
func (d *Device) beginShutdown() {
	d.csts = (d.csts &^ CSTSShutdownMask) | CSTSShutdownProcessing
	gen := d.resetGen
	d.k.After(d.cfg.ShutdownDelay, func() {
		if gen != d.resetGen || d.csts&CSTSShutdownMask != CSTSShutdownProcessing {
			return
		}
		d.csts = (d.csts &^ CSTSShutdownMask) | CSTSShutdownComplete
	})
}

// doorbell decodes a doorbell write and kicks the affected queue.
func (d *Device) doorbell(off uint64, data []byte) {
	if data == nil {
		panic("nvme: doorbell write requires data")
	}
	if d.mode == ModeCrashed || d.mode == ModeRemoved {
		return // dead ears: a crashed/removed controller ignores doorbells
	}
	if d.csts&CSTSReady == 0 {
		// Rings racing a controller reset or bring-up (e.g. the host-side
		// recovery retiring pre-crash completions mid-reset) are ignored,
		// matching hardware: doorbells are undefined while disabled.
		return
	}
	idx := (off - RegDoorbellBase) / 4
	qid := uint16(idx / 2)
	isCQ := idx%2 == 1
	q, ok := d.queues[qid]
	if !ok {
		// Protocol violation by the host: latch the fatal status the host
		// can observe rather than killing the simulation.
		d.fatal(fmt.Sprintf("doorbell for unknown queue %d", qid))
		return
	}
	val := int(le32(data))
	if val < 0 || val >= q.entries {
		d.fatal(fmt.Sprintf("doorbell value %d out of range for %d-entry queue", val, q.entries))
		return
	}
	if isCQ {
		q.cqHeadDB = val
		for len(q.cqWait) > 0 && !q.cqFull() {
			fn := q.cqWait[0]
			q.cqWait = q.cqWait[1:]
			fn()
		}
		return
	}
	q.sqTailDB = val
	d.kickAll()
}

// debugTrace, when set, receives fetch trace events (tests only).
var debugTrace func(what string, qid uint16, head, batch, tail int)

// kickAll runs the fetch scheduler: while the device-global fetch-read
// budget has credit, scan the queue IDs round-robin from the persistent
// pointer — numeric qid order, deterministic, never Go map iteration order —
// and issue one batched SQE fetch per queue with pending entries. Because
// the budget is shared and each grant moves the pointer past the granted
// queue, a hot queue gets at most one fetch read per full scan while others
// wait — the per-queue fairness the multi-queue streamer relies on. With a
// single active queue every credit lands on it back to back, reproducing the
// old per-queue loop exactly.
func (d *Device) kickAll() {
	if !d.fetchAllowed() {
		return
	}
	n := d.cfg.MaxIOQueuePairs + 1 // qid 0 (admin) .. MaxIOQueuePairs
	scanned := 0
	for d.fetchReads < d.cfg.MaxFetchReads && scanned < n {
		qid := uint16(d.fetchRR % n)
		d.fetchRR = (d.fetchRR + 1) % n
		q, ok := d.queues[qid]
		if !ok || q.pending() == 0 {
			scanned++
			continue
		}
		d.fetchOne(q)
		scanned = 0
	}
}

// fetchOne issues one batched SQE fetch for q (up to FetchBatch entries,
// bounded by the ring-wrap boundary) and dispatches the entries when the
// read returns. Fetch reads travel the same fabric path, so they complete in
// issue order and q.sqHead — the value reported back to the host in CQEs —
// advances in order too.
func (d *Device) fetchOne(q *queuePair) {
	pending := q.pending()
	batch := pending
	if batch > d.cfg.FetchBatch {
		batch = d.cfg.FetchBatch
	}
	if untilWrap := q.entries - q.issueHead; batch > untilWrap {
		batch = untilWrap
	}
	fetchHead := q.issueHead
	q.issueHead = (fetchHead + batch) % q.entries
	d.fetchReads++
	if debugTrace != nil {
		debugTrace("fetch", q.id, fetchHead, batch, q.sqTailDB)
	}
	// Fetch buffers recycle through the pool: the completer fills buf
	// before the callback runs, and every SQE is decoded into a value
	// before the buffer is released.
	buf := bufpool.Get(batch * SQESize)
	d.port.ReadCtrl(q.sqBase+uint64(fetchHead*SQESize), int64(len(buf)), buf, func() {
		q.sqHead = (fetchHead + batch) % q.entries
		d.fetchReads--
		if d.mode == ModeCrashed || d.mode == ModeRemoved || d.stale(q) {
			// The controller died (or was reset) while the fetch was
			// on the wire: the entries are never dispatched.
			bufpool.Put(buf)
			return
		}
		for i := 0; i < batch; i++ {
			cmd, err := UnmarshalCommand(buf[i*SQESize:])
			if err != nil {
				panic(err) // 64-byte slices by construction
			}
			if q.debugOutstanding == nil {
				q.debugOutstanding = make(map[uint16]bool)
			}
			if q.debugOutstanding[cmd.CID] {
				panic(fmt.Sprintf("nvme: duplicate fetch of CID %d on q%d (slot %d op %#x)", cmd.CID, q.id, fetchHead+i, cmd.Opcode))
			}
			q.debugOutstanding[cmd.CID] = true
			if d.cmdObserver != nil {
				d.cmdObserver(q.id, cmd.CID, obs.StageFetched, d.k.Now())
			}
			d.dispatch(q, cmd)
		}
		bufpool.Put(buf)
		d.kickAll()
	})
}

// dispatch routes a fetched command through the execution gate and the
// serializing firmware front end.
func (d *Device) dispatch(q *queuePair, cmd Command) {
	d.execGate.acquire(func() {
		cost := d.cfg.FrontEndWriteCost
		if cmd.Opcode == OpRead && q.id != 0 {
			cost = d.cfg.FrontEndReadCost
		}
		start := d.k.Now()
		if d.frontEndBusy > start {
			start = d.frontEndBusy
		}
		d.frontEndBusy = start + cost
		d.k.At(d.frontEndBusy, func() {
			if q.id == 0 {
				d.executeAdmin(q, cmd)
			} else {
				d.executeIO(q, cmd)
			}
		})
	})
}

// complete finishes cmd: consult the CQE interceptor (fault injection),
// then deliver the completion entry and release the execution context.
func (d *Device) complete(q *queuePair, cmd Command, status uint16, dw0 uint32) {
	if d.mode == ModeCrashed || d.mode == ModeRemoved || d.stale(q) {
		d.discard(q, cmd)
		return
	}
	if d.ctrlInjector != nil && q.id != 0 {
		// Controller fates are counted per I/O completion (admin commands —
		// including the recovery ladder's own queue rebuilds — are exempt).
		// The crashed/removed command has already moved its data, so its
		// lost completion is safe to replay; only the CQE is withheld.
		f := d.ctrlInjector(cmd)
		switch {
		case f.Remove:
			d.Remove()
			d.discard(q, cmd)
			return
		case f.Crash:
			d.fatal("injected controller crash")
			d.discard(q, cmd)
			return
		case f.Hang > 0:
			// The command itself executed; its completion (and every other
			// in-flight one) parks until the engine revives.
			d.Hang(f.Hang)
		}
	}
	if d.cqeInterceptor != nil && q.id != 0 {
		fate := d.cqeInterceptor(cmd, status)
		if fate.Drop || fate.Delay > 0 {
			// The command itself executed: finalize its bookkeeping and
			// free the execution context now — only CQE delivery is
			// faulted. A dropped CQE consumes no CQ slot.
			d.account(q, cmd, status)
			d.execGate.release()
			if fate.Drop {
				d.cqesDropped++
				return
			}
			d.cqesDelayed++
			d.k.After(fate.Delay, func() { d.postCQE(q, cmd, status, dw0) })
			return
		}
	}
	d.deliver(q, cmd, status, dw0)
}

// discard drops a completion whose controller died (or whose queue was
// torn down) while the command executed: the host never sees a CQE, but the
// execution context recycles and the outstanding-CID record clears.
func (d *Device) discard(q *queuePair, cmd Command) {
	delete(q.debugOutstanding, cmd.CID)
	d.cqesLost++
	d.execGate.release()
}

// deliver posts a CQE for cmd on q's completion queue and releases the
// execution context.
func (d *Device) deliver(q *queuePair, cmd Command, status uint16, dw0 uint32) {
	if d.mode == ModeCrashed || d.mode == ModeRemoved || d.stale(q) {
		d.discard(q, cmd)
		return
	}
	if d.mode == ModeHung {
		// Frozen command engine: the completion parks (holding its
		// execution context) until the controller revives, crashes or
		// resets.
		d.hungWait = append(d.hungWait, func() { d.deliver(q, cmd, status, dw0) })
		return
	}
	if q.cqFull() {
		// Stall until the host frees CQ space — posting now would
		// overwrite an unacknowledged completion.
		q.cqWait = append(q.cqWait, func() { d.deliver(q, cmd, status, dw0) })
		return
	}
	d.account(q, cmd, status)
	d.postCQE(q, cmd, status, dw0)
	d.execGate.release()
}

// account finalizes a command's bookkeeping at completion-decision time.
func (d *Device) account(q *queuePair, cmd Command, status uint16) {
	if !q.debugOutstanding[cmd.CID] {
		panic(fmt.Sprintf("nvme: double completion of CID %d on q%d", cmd.CID, q.id))
	}
	delete(q.debugOutstanding, cmd.CID)
	d.cmdsExecuted++
	if status != StatusSuccess {
		d.errs++
		d.recordError(q, cmd, status)
	}
}

// postCQE marshals and posts the completion entry (command bookkeeping
// already done). A late-posted CQE that finds the CQ full waits for
// head-doorbell space like any other completion.
func (d *Device) postCQE(q *queuePair, cmd Command, status uint16, dw0 uint32) {
	if d.mode == ModeCrashed || d.mode == ModeRemoved || d.stale(q) {
		d.cqesLost++ // bookkeeping already done; only the entry is lost
		return
	}
	if d.mode == ModeHung {
		d.hungWait = append(d.hungWait, func() { d.postCQE(q, cmd, status, dw0) })
		return
	}
	if q.cqFull() {
		q.cqWait = append(q.cqWait, func() { d.postCQE(q, cmd, status, dw0) })
		return
	}
	cqe := Completion{
		DW0:    dw0,
		SQHead: uint16(q.sqHead),
		SQID:   q.id,
		CID:    cmd.CID,
		Phase:  q.cqPhase,
		Status: status,
	}
	addr := q.cqBase + uint64(q.cqTail*CQESize)
	q.cqTail++
	if q.cqTail == q.entries {
		q.cqTail = 0
		q.cqPhase = !q.cqPhase
	}
	// The CQ completer (streamer reorder buffer or host memory) consumes
	// the entry synchronously at delivery, so the buffer recycles then.
	cqeBuf := bufpool.Get(CQESize)
	cqe.MarshalInto(cqeBuf)
	d.port.Write(addr, CQESize, cqeBuf, func() { bufpool.Put(cqeBuf) })
}

// callbackGate is a callback-style counting semaphore (same shape as the
// PCIe credit gate, duplicated to keep the packages independent).
type callbackGate struct {
	avail int
	q     []func()
}

func newCallbackGate(n int) *callbackGate { return &callbackGate{avail: n} }

func (g *callbackGate) acquire(fn func()) {
	if g.avail > 0 {
		g.avail--
		fn()
		return
	}
	g.q = append(g.q, fn)
}

func (g *callbackGate) release() {
	if len(g.q) > 0 {
		fn := g.q[0]
		g.q = g.q[1:]
		fn()
		return
	}
	g.avail++
}

// SetDebugTrace installs a fetch-trace hook (tests only).
func SetDebugTrace(fn func(what string, qid uint16, head, batch, tail int)) { debugTrace = fn }

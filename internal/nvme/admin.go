package nvme

import "encoding/binary"

// pendingCQs tracks CQs created before their paired SQ arrives. The model
// pairs SQ y with CQ y (the layout both our drivers use); mismatched
// pairings are rejected as invalid.
//
// executeAdmin runs one admin command to completion.
func (d *Device) executeAdmin(q *queuePair, cmd Command) {
	switch cmd.Opcode {
	case OpIdentify:
		d.adminIdentify(q, cmd)
	case OpGetLogPage:
		d.adminGetLogPage(q, cmd)
	case OpCreateIOCQ:
		d.adminCreateIOCQ(q, cmd)
	case OpCreateIOSQ:
		d.adminCreateIOSQ(q, cmd)
	case OpDeleteIOSQ, OpDeleteIOCQ:
		d.adminDeleteQueue(q, cmd)
	case OpSetFeatures:
		d.adminSetFeatures(q, cmd)
	case OpGetFeatures:
		d.adminGetFeatures(q, cmd)
	default:
		d.complete(q, cmd, StatusInvalidOpcode, 0)
	}
}

// adminIdentify writes a 4 KiB identify structure to PRP1.
func (d *Device) adminIdentify(q *queuePair, cmd Command) {
	cns := cmd.CDW10 & 0xFF
	data := make([]byte, PageSize)
	switch uint32(cns) {
	case CNSController:
		binary.LittleEndian.PutUint16(data[0:], 0x144D) // VID: Samsung
		copy(data[4:24], []byte("SNACCSIM-990PRO-2TB "))
		copy(data[24:64], []byte("Simulated Samsung SSD 990 PRO 2TB       "))
		// MDTS: max transfer = 4 KiB << MDTS; 2 MiB → 9.
		data[77] = 9
		// SQES/CQES: required and maximum entry sizes, log2 (64 / 16 B).
		data[512] = 0x66
		data[513] = 0x44
		binary.LittleEndian.PutUint32(data[516:], 1) // NN: one namespace
	case CNSNamespace:
		if cmd.NSID != 1 {
			d.complete(q, cmd, StatusInvalidNSID, 0)
			return
		}
		blocks := uint64(d.cfg.NamespaceBytes / d.cfg.LBASize)
		binary.LittleEndian.PutUint64(data[0:], blocks)  // NSZE
		binary.LittleEndian.PutUint64(data[8:], blocks)  // NCAP
		binary.LittleEndian.PutUint64(data[16:], blocks) // NUSE
		data[25] = 0                                     // NLBAF: one format
		data[26] = 0                                     // FLBAS: format 0
		// LBAF0 at byte 128: LBADS in bits 23:16.
		lbads := uint32(0)
		for s := d.cfg.LBASize; s > 1; s >>= 1 {
			lbads++
		}
		binary.LittleEndian.PutUint32(data[128:], lbads<<16)
	default:
		d.complete(q, cmd, StatusInvalidField, 0)
		return
	}
	d.port.Write(cmd.PRP1, PageSize, data, func() {
		d.complete(q, cmd, StatusSuccess, 0)
	})
}

// cqPending holds CQ parameters until the matching SQ is created.
type cqPending struct {
	base    uint64
	entries int
}

var _ = cqPending{} // referenced via the device map below

func (d *Device) pendingCQs() map[uint16]cqPending {
	if d.cqPendingMap == nil {
		d.cqPendingMap = make(map[uint16]cqPending)
	}
	return d.cqPendingMap
}

// adminCreateIOCQ records a completion queue (CDW10: QID | QSIZE<<16,
// CDW11 bit 0: physically contiguous).
func (d *Device) adminCreateIOCQ(q *queuePair, cmd Command) {
	qid := uint16(cmd.CDW10 & 0xFFFF)
	size := int(cmd.CDW10>>16) + 1
	if qid == 0 || int(qid) > d.cfg.MaxIOQueuePairs || cmd.CDW11&1 == 0 {
		d.complete(q, cmd, StatusInvalidField, 0)
		return
	}
	if _, exists := d.queues[qid]; exists {
		d.complete(q, cmd, StatusInvalidField, 0)
		return
	}
	d.pendingCQs()[qid] = cqPending{base: cmd.PRP1, entries: size}
	d.complete(q, cmd, StatusSuccess, 0)
}

// adminCreateIOSQ pairs a submission queue with its CQ (CDW11 bits 31:16).
// The model requires SQ y ↔ CQ y with equal depths.
func (d *Device) adminCreateIOSQ(q *queuePair, cmd Command) {
	qid := uint16(cmd.CDW10 & 0xFFFF)
	size := int(cmd.CDW10>>16) + 1
	cqid := uint16(cmd.CDW11 >> 16)
	pend, ok := d.pendingCQs()[qid]
	if !ok || cqid != qid || pend.entries != size || cmd.CDW11&1 == 0 {
		d.complete(q, cmd, StatusInvalidField, 0)
		return
	}
	delete(d.cqPendingMap, qid)
	d.queues[qid] = &queuePair{
		id:      qid,
		sqBase:  cmd.PRP1,
		cqBase:  pend.base,
		entries: size,
		cqPhase: true,
	}
	d.complete(q, cmd, StatusSuccess, 0)
}

// adminDeleteQueue tears down an I/O queue pair (either half removes both;
// the model keeps them paired).
func (d *Device) adminDeleteQueue(q *queuePair, cmd Command) {
	qid := uint16(cmd.CDW10 & 0xFFFF)
	if qid == 0 {
		d.complete(q, cmd, StatusInvalidField, 0)
		return
	}
	delete(d.queues, qid)
	delete(d.pendingCQs(), qid)
	d.complete(q, cmd, StatusSuccess, 0)
}

// adminSetFeatures handles Number of Queues (FID 0x07); the grant is echoed
// in DW0 as (NCQA<<16)|NSQA, both zero-based.
func (d *Device) adminSetFeatures(q *queuePair, cmd Command) {
	fid := uint8(cmd.CDW10 & 0xFF)
	if fid != FeatureNumQueues {
		d.complete(q, cmd, StatusInvalidField, 0)
		return
	}
	reqSQ := int(cmd.CDW11&0xFFFF) + 1
	reqCQ := int(cmd.CDW11>>16) + 1
	grant := func(n int) int {
		if n > d.cfg.MaxIOQueuePairs {
			return d.cfg.MaxIOQueuePairs
		}
		return n
	}
	dw0 := uint32(grant(reqCQ)-1)<<16 | uint32(grant(reqSQ)-1)
	d.complete(q, cmd, StatusSuccess, dw0)
}

// adminGetFeatures mirrors SetFeatures for Number of Queues.
func (d *Device) adminGetFeatures(q *queuePair, cmd Command) {
	fid := uint8(cmd.CDW10 & 0xFF)
	if fid != FeatureNumQueues {
		d.complete(q, cmd, StatusInvalidField, 0)
		return
	}
	n := uint32(d.cfg.MaxIOQueuePairs - 1)
	d.complete(q, cmd, StatusSuccess, n<<16|n)
}

package ethernet

import (
	"strings"
	"testing"

	"snacc/internal/sim"
)

// linkResult captures everything observable about a flow-controlled
// transfer; two runs are byte-identical iff these match.
type linkResult struct {
	done                      sim.Time
	framesSent, framesDropped int64
	bytesReceived             int64
	pausesSent, pausesHonored int64
}

// runCrossLink drives the TestFlowControlPreventsDrops traffic pattern
// (slow consumer, pause/resume in flight) over a MAC pair. workers == 0
// runs both MACs on one kernel (the plain serial model); workers >= 1
// splits them into two shard domains linked by ConnectCross.
func runCrossLink(t *testing.T, workers int) linkResult {
	t.Helper()
	cfg := DefaultConfig()
	const frames = 500
	var a, b *MAC
	var ka, kb *sim.Kernel
	var run func()
	if workers == 0 {
		k := sim.NewKernel()
		a, b = NewMAC(k, "a", cfg), NewMAC(k, "b", cfg)
		Connect(a, b)
		ka, kb = k, k
		run = func() { k.Run(0) }
	} else {
		s := sim.NewShard(workers)
		left, right := s.AddDomain("left"), s.AddDomain("right")
		look := cfg.EdgeLookahead()
		ab := s.MustConnect(left, right, look)
		ba := s.MustConnect(right, left, look)
		a, b = NewMAC(left.Kernel(), "a", cfg), NewMAC(right.Kernel(), "b", cfg)
		if err := ConnectCross(a, b, ab, ba); err != nil {
			t.Fatalf("ConnectCross: %v", err)
		}
		ka, kb = left.Kernel(), right.Kernel()
		run = func() { s.Run(0) }
	}
	ka.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < frames; i++ {
			a.Send(p, Frame{Bytes: 8192})
		}
	})
	var res linkResult
	kb.Spawn("rx", func(p *sim.Proc) {
		for got := 0; got < frames; got++ {
			b.Recv(p)
			p.Sleep(2 * sim.Microsecond) // slower than line rate
		}
		res.done = p.Now()
	})
	run()
	res.framesSent = a.FramesSent()
	res.framesDropped = b.FramesDropped()
	res.bytesReceived = b.BytesReceived()
	res.pausesSent = b.PausesSent()
	res.pausesHonored = a.PausesHonored()
	return res
}

func TestCrossDomainLinkMatchesSerial(t *testing.T) {
	serial := runCrossLink(t, 0)
	if serial.pausesSent == 0 || serial.pausesHonored == 0 {
		t.Fatal("traffic pattern did not exercise flow control")
	}
	for _, w := range []int{1, 2, 4} {
		if got := runCrossLink(t, w); got != serial {
			t.Errorf("workers=%d result %+v differs from serial %+v", w, got, serial)
		}
	}
}

func TestCrossDomainSwitchMatchesSerial(t *testing.T) {
	// Slow consumer behind a switch, with the destination MAC in its own
	// domain: propagated pause must throttle the source identically to the
	// single-kernel run.
	type result struct {
		done                sim.Time
		honored, dropped    int64
		received, swDropped int64
	}
	run := func(workers int) result {
		cfg := DefaultConfig()
		const frames = 300
		var src, dst *MAC
		var sw *Switch
		var kSrc, kDst *sim.Kernel
		var drive func()
		if workers == 0 {
			k := sim.NewKernel()
			sw = NewSwitch(k, "sw", cfg, 2, 512*sim.KiB)
			src, dst = NewMAC(k, "src", cfg), NewMAC(k, "dst", cfg)
			sw.Attach(0, src)
			sw.Attach(1, dst)
			kSrc, kDst = k, k
			drive = func() { k.Run(0) }
		} else {
			s := sim.NewShard(workers)
			fabric, sink := s.AddDomain("fabric"), s.AddDomain("sink")
			look := cfg.EdgeLookahead()
			toMAC := s.MustConnect(fabric, sink, look)
			fromMAC := s.MustConnect(sink, fabric, look)
			sw = NewSwitch(fabric.Kernel(), "sw", cfg, 2, 512*sim.KiB)
			src = NewMAC(fabric.Kernel(), "src", cfg)
			dst = NewMAC(sink.Kernel(), "dst", cfg)
			sw.Attach(0, src)
			if err := sw.AttachCross(1, dst, toMAC, fromMAC); err != nil {
				t.Fatalf("AttachCross: %v", err)
			}
			kSrc, kDst = fabric.Kernel(), sink.Kernel()
			drive = func() { s.Run(0) }
		}
		kSrc.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < frames; i++ {
				src.Send(p, Frame{Bytes: 8192, DstPort: 1})
			}
		})
		var res result
		kDst.Spawn("rx", func(p *sim.Proc) {
			for got := int64(0); got < frames; got++ {
				dst.Recv(p)
				res.received++
			}
			res.done = p.Now()
		})
		drive()
		res.honored = src.PausesHonored()
		res.dropped = dst.FramesDropped()
		res.swDropped = sw.FramesDropped()
		return res
	}
	serial := run(0)
	if serial.dropped != 0 || serial.swDropped != 0 {
		t.Fatalf("serial switch run dropped frames: %+v", serial)
	}
	for _, w := range []int{1, 2} {
		if got := run(w); got != serial {
			t.Errorf("workers=%d result %+v differs from serial %+v", w, got, serial)
		}
	}
}

func TestConnectCrossValidation(t *testing.T) {
	cfg := DefaultConfig()
	s := sim.NewShard(1)
	left, right, other := s.AddDomain("left"), s.AddDomain("right"), s.AddDomain("other")
	a := NewMAC(left.Kernel(), "a", cfg)
	b := NewMAC(right.Kernel(), "b", cfg)
	ab := s.MustConnect(left, right, cfg.EdgeLookahead())
	ba := s.MustConnect(right, left, cfg.EdgeLookahead())

	if err := ConnectCross(a, b, nil, ba); err == nil {
		t.Error("nil edge accepted")
	}
	// Edge endpoints must match the MACs' kernels.
	wrong := s.MustConnect(left, other, cfg.EdgeLookahead())
	if err := ConnectCross(a, b, wrong, ba); err == nil {
		t.Error("edge into the wrong domain accepted")
	}
	if err := ConnectCross(a, b, ab, wrong); err == nil {
		t.Error("reverse edge from the wrong domain accepted")
	}
	// Lookahead beyond the wire latency would let the shard window overrun
	// deliveries the MAC schedules exactly WireLatency out.
	tooFar := s.MustConnect(left, right, cfg.EdgeLookahead()+1)
	if err := ConnectCross(a, b, tooFar, ba); err == nil ||
		!strings.Contains(err.Error(), "lookahead") {
		t.Errorf("oversized lookahead: err = %v, want lookahead error", err)
	}
	if err := ConnectCross(a, b, ab, ba); err != nil {
		t.Errorf("valid ConnectCross failed: %v", err)
	}

	sw := NewSwitch(left.Kernel(), "sw", cfg, 2, sim.MiB)
	if err := sw.AttachCross(5, b, ab, ba); err == nil {
		t.Error("out-of-range port accepted")
	}
	if err := sw.AttachCross(0, b, nil, ba); err == nil {
		t.Error("nil edge accepted by AttachCross")
	}
	if err := sw.AttachCross(0, b, wrong, ba); err == nil {
		t.Error("edge into the wrong domain accepted by AttachCross")
	}
	if err := sw.AttachCross(0, b, tooFar, ba); err == nil ||
		!strings.Contains(err.Error(), "lookahead") {
		t.Errorf("oversized lookahead via AttachCross: err = %v", err)
	}
	if err := sw.AttachCross(0, b, ab, ba); err != nil {
		t.Errorf("valid AttachCross failed: %v", err)
	}
	// The reverse-direction edge must also be validated.
	if err := sw.AttachCross(0, b, ab, wrong); err == nil {
		t.Error("reverse edge from the wrong domain accepted by AttachCross")
	}
}

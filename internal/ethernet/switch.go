package ethernet

import (
	"fmt"

	"snacc/internal/sim"
)

// Switch is a store-and-forward Ethernet switch with per-egress buffering
// and 802.3x participation: when an egress buffer fills (because the
// downstream receiver paused us), the switch pauses the corresponding
// ingress links — "intermediary switches ... will first pause locally
// before propagating the pause request further" (§4.7).
type Switch struct {
	k     *sim.Kernel
	name  string
	cfg   Config
	ports []*switchPort
	// BufferBytes bounds each egress queue.
	bufferBytes int64
	// framesDropped counts frames lost to egress-buffer overrun (only
	// possible with flow control disabled).
	framesDropped int64
}

// FramesDropped returns frames lost to egress-buffer overrun across all
// ports.
func (sw *Switch) FramesDropped() int64 { return sw.framesDropped }

// switchPort is one switch port: an ingress receiver plus an egress queue
// with its own transmitter toward the attached MAC.
type switchPort struct {
	sw   *Switch
	idx  int
	peer *MAC
	// crossOut, when set, is the shard edge toward the attached MAC's
	// domain; peer deliveries ride it instead of the switch kernel
	// (AttachCross).
	crossOut *sim.Edge

	egress   *sim.Chan[Frame]
	occupied int64
	wire     *sim.Pipe
	paused   sim.Time
	// renewing marks an active upstream-pause renewal chain for this
	// ingress port (pausing the attached MAC on behalf of a congested
	// egress).
	renewing bool
}

// NewSwitch creates a switch with n ports.
func NewSwitch(k *sim.Kernel, name string, cfg Config, n int, bufferBytes int64) *Switch {
	sw := &Switch{k: k, name: name, cfg: cfg, bufferBytes: bufferBytes}
	for i := 0; i < n; i++ {
		p := &switchPort{
			sw:     sw,
			idx:    i,
			egress: sim.NewChan[Frame](k, 1<<20),
			wire:   sim.NewPipe(k, cfg.BytesPerSec(), cfg.WireLatency),
		}
		sw.ports = append(sw.ports, p)
		k.Spawn(fmt.Sprintf("%s.port%d.tx", name, i), p.txLoop)
	}
	return sw
}

// Attach connects a MAC to switch port idx.
func (sw *Switch) Attach(idx int, m *MAC) {
	p := sw.ports[idx]
	p.peer = m
	m.peer = p
}

// AttachCross connects a MAC in another shard domain to switch port idx.
// toMAC runs from the switch's domain to the MAC's, fromMAC the reverse;
// both lookaheads must fit within the respective sender's WireLatency
// (Config.EdgeLookahead), exactly as in ConnectCross.
func (sw *Switch) AttachCross(idx int, m *MAC, toMAC, fromMAC *sim.Edge) error {
	if idx < 0 || idx >= len(sw.ports) {
		return fmt.Errorf("ethernet: switch %s has no port %d", sw.name, idx)
	}
	if toMAC == nil || fromMAC == nil {
		return fmt.Errorf("ethernet: AttachCross %s.port%d<->%s with nil edge", sw.name, idx, m.name)
	}
	if toMAC.From().Kernel() != sw.k || toMAC.To().Kernel() != m.k {
		return fmt.Errorf("ethernet: AttachCross %s.port%d->%s: edge does not run from the switch's domain to the MAC's",
			sw.name, idx, m.name)
	}
	if fromMAC.From().Kernel() != m.k || fromMAC.To().Kernel() != sw.k {
		return fmt.Errorf("ethernet: AttachCross %s->%s.port%d: edge does not run from the MAC's domain to the switch's",
			m.name, sw.name, idx)
	}
	if toMAC.Lookahead() > sw.cfg.EdgeLookahead() {
		return fmt.Errorf("ethernet: AttachCross %s.port%d->%s: edge lookahead %v exceeds wire latency %v",
			sw.name, idx, m.name, toMAC.Lookahead(), sw.cfg.EdgeLookahead())
	}
	if fromMAC.Lookahead() > m.cfg.EdgeLookahead() {
		return fmt.Errorf("ethernet: AttachCross %s->%s.port%d: edge lookahead %v exceeds wire latency %v",
			m.name, sw.name, idx, fromMAC.Lookahead(), m.cfg.EdgeLookahead())
	}
	p := sw.ports[idx]
	p.peer = m
	p.crossOut = toMAC
	m.peer = p
	m.crossOut = fromMAC
	return nil
}

// schedDeliver schedules a delivery toward the attached MAC at absolute
// time t, routing over the cross-domain edge when one is attached.
func (p *switchPort) schedDeliver(t sim.Time, fn func()) {
	if p.crossOut != nil {
		p.crossOut.At(t, fn)
		return
	}
	p.sw.k.At(t, fn)
}

// deliver implements receiver for ingress traffic arriving at any port: the
// MAC's peer pointer references the port, so pause frames from the attached
// MAC land here and pause this port's egress.
func (p *switchPort) deliver(f Frame) {
	if f.pause {
		if f.quanta == 0 {
			p.paused = p.sw.k.Now()
		} else {
			p.paused = p.sw.k.Now() + f.quanta
		}
		return
	}
	dst := f.DstPort
	if dst < 0 || dst >= len(p.sw.ports) {
		panic(fmt.Sprintf("ethernet: switch %s has no port %d", p.sw.name, dst))
	}
	out := p.sw.ports[dst]
	if out.occupied+f.Bytes > p.sw.bufferBytes && !p.sw.cfg.PauseEnabled {
		p.sw.framesDropped++
		return // no flow control and truly out of space
	}
	// With flow control on, the frame is retained even past the bound — a
	// real switch would have paused earlier via thresholds; a small elastic
	// margin keeps the frame-level model simple.
	out.occupied += f.Bytes
	if !out.egress.TryPut(f) {
		panic("ethernet: switch egress queue overflow")
	}
	// Threshold-based upstream pause, renewed on a timer while the egress
	// stays congested (new arrivals stop once upstream is paused, so
	// arrival-driven renewal alone would let the sender free-run whenever a
	// quanta lapses — the same reasoning as MAC.renewPause).
	if p.sw.cfg.PauseEnabled && float64(out.occupied) >= p.sw.cfg.HiWater*float64(p.sw.bufferBytes) {
		p.propagatePause(out)
	}
}

// propagatePause pauses the upstream MAC attached to this ingress port on
// behalf of the congested egress port out, renewing until out drains below
// the high watermark. Like MAC.renewPause, the renewal chain schedules
// events as long as congestion persists — a permanently stalled consumer
// therefore keeps the kernel's event queue non-empty, so simulations with
// such consumers must bound Kernel.Run with a horizon.
func (p *switchPort) propagatePause(out *switchPort) {
	if p.renewing {
		return
	}
	p.renewing = true
	p.renewUpstream(out)
}

func (p *switchPort) renewUpstream(out *switchPort) {
	if float64(out.occupied) < p.sw.cfg.HiWater*float64(p.sw.bufferBytes) {
		// Congestion cleared; let the last quanta lapse naturally.
		p.renewing = false
		return
	}
	quanta := p.sw.cfg.PauseQuanta
	peer := p.peer
	p.schedDeliver(p.sw.k.Now()+p.sw.cfg.WireLatency, func() {
		if peer != nil {
			peer.deliver(Frame{pause: true, quanta: quanta})
		}
	})
	p.sw.k.After(quanta/2, func() { p.renewUpstream(out) })
}

// txLoop drains the egress queue toward the attached MAC, honoring pause
// frames received from it. Like MAC.txLoop, the port blocks only for wire
// serialization; store-and-forward buffering and propagation add delivery
// *latency* while back-to-back frames pipeline.
func (p *switchPort) txLoop(proc *sim.Proc) {
	proc.SetDaemon(true)
	for {
		f := p.egress.Get(proc)
		for {
			if wait := p.paused - proc.Now(); wait > 0 && p.sw.cfg.PauseEnabled {
				proc.Sleep(wait)
				continue
			}
			break
		}
		if p.peer == nil {
			panic("ethernet: switch port transmitting with no attached MAC")
		}
		storeDelay := sim.TransferTime(minI64(f.Bytes, p.sw.cfg.MTU), p.sw.cfg.BytesPerSec())
		delivered := p.wire.Reserve(p.sw.cfg.WireBytes(f.Bytes))
		frame, peer := f, p.peer
		if p.crossOut == nil {
			p.sw.k.At(delivered+storeDelay, func() {
				p.occupied -= frame.Bytes
				peer.deliver(frame)
			})
		} else {
			// Split the delivery: egress accounting stays in the switch's
			// domain, the frame itself rides the edge into the MAC's.
			p.sw.k.At(delivered+storeDelay, func() { p.occupied -= frame.Bytes })
			p.crossOut.At(delivered+storeDelay, func() { peer.deliver(frame) })
		}
		proc.Sleep(delivered - p.sw.cfg.WireLatency - proc.Now())
	}
}

package ethernet

import (
	"bytes"
	"testing"

	"snacc/internal/sim"
)

func pair(cfg Config) (*sim.Kernel, *MAC, *MAC) {
	k := sim.NewKernel()
	a := NewMAC(k, "a", cfg)
	b := NewMAC(k, "b", cfg)
	Connect(a, b)
	return k, a, b
}

func TestLineRate(t *testing.T) {
	// A fast consumer must see close to 100 Gb/s of payload.
	k, a, b := pair(DefaultConfig())
	const total = 128 * sim.MiB
	const frame = 8192
	k.Spawn("tx", func(p *sim.Proc) {
		for sent := int64(0); sent < total; sent += frame {
			a.Send(p, Frame{Bytes: frame})
		}
	})
	var done sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		for got := int64(0); got < total; {
			got += b.Recv(p).Bytes
		}
		done = p.Now()
	})
	k.Run(0)
	bw := float64(total) / done.Seconds()
	if bw < 11.5e9 || bw > 12.5e9 {
		t.Fatalf("payload rate = %.2f GB/s, want ~12.2 (100G minus framing)", bw/1e9)
	}
}

func TestContentDelivery(t *testing.T) {
	k, a, b := pair(DefaultConfig())
	want := []byte("snacc over ethernet")
	var got []byte
	k.Spawn("tx", func(p *sim.Proc) {
		a.Send(p, Frame{Bytes: int64(len(want)), Data: want, Meta: "tag"})
	})
	k.Spawn("rx", func(p *sim.Proc) {
		f := b.Recv(p)
		got = f.Data
		if f.Meta != "tag" {
			t.Error("metadata lost in transit")
		}
	})
	k.Run(0)
	if !bytes.Equal(got, want) {
		t.Fatal("frame data corrupted")
	}
}

func TestSlowConsumerDropsWithoutFlowControl(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PauseEnabled = false
	k, a, b := pair(cfg)
	const frames = 2000
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < frames; i++ {
			a.Send(p, Frame{Bytes: 8192})
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			b.Recv(p)
			p.Sleep(10 * sim.Microsecond) // much slower than line rate
		}
	})
	k.Run(20 * sim.Millisecond)
	if b.FramesDropped() == 0 {
		t.Fatal("slow consumer without flow control must drop frames")
	}
}

func TestFlowControlPreventsDrops(t *testing.T) {
	k, a, b := pair(DefaultConfig())
	const frames = 2000
	received := 0
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < frames; i++ {
			a.Send(p, Frame{Bytes: 8192})
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		for received < frames {
			b.Recv(p)
			received++
			p.Sleep(2 * sim.Microsecond) // slower than line rate
		}
	})
	k.Run(0)
	if b.FramesDropped() != 0 {
		t.Fatalf("flow control enabled but %d frames dropped", b.FramesDropped())
	}
	if received != frames {
		t.Fatalf("received %d of %d frames", received, frames)
	}
	if b.PausesSent() == 0 {
		t.Fatal("slow consumer never paused the sender")
	}
	if a.PausesHonored() == 0 {
		t.Fatal("sender never honored a pause")
	}
}

func TestBackpressureThrottlesSenderRate(t *testing.T) {
	// With a consumer draining at ~3 GB/s, the sender's effective rate must
	// match the consumer, not the 12.5 GB/s line rate.
	k, a, b := pair(DefaultConfig())
	const total = 8 * sim.MiB
	const frame = 8192
	k.Spawn("tx", func(p *sim.Proc) {
		for sent := int64(0); sent < total; sent += frame {
			a.Send(p, Frame{Bytes: frame})
		}
	})
	var done sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		for got := int64(0); got < total; {
			got += b.Recv(p).Bytes
			p.Sleep(sim.TransferTime(frame, 3e9))
		}
		done = p.Now()
	})
	k.Run(0)
	bw := float64(total) / done.Seconds()
	if bw > 3.3e9 || bw < 2.5e9 {
		t.Fatalf("throughput with 3 GB/s consumer = %.2f GB/s", bw/1e9)
	}
	if b.FramesDropped() != 0 {
		t.Fatalf("%d drops under flow control", b.FramesDropped())
	}
}

func TestStoreAndForwardLatency(t *testing.T) {
	// §4.7: full buffering adds one frame time before transmission.
	cfg := DefaultConfig()
	k, a, b := pair(cfg)
	var arrival sim.Time
	k.Spawn("tx", func(p *sim.Proc) {
		a.Send(p, Frame{Bytes: 8192})
	})
	k.Spawn("rx", func(p *sim.Proc) {
		b.Recv(p)
		arrival = p.Now()
	})
	k.Run(0)
	frameTime := sim.TransferTime(8192, cfg.BytesPerSec())
	// Buffer (1 frame) + serialize (1 frame + overhead) + wire latency.
	min := 2*frameTime + cfg.WireLatency
	if arrival < min {
		t.Fatalf("arrival %v earlier than store-and-forward minimum %v", arrival, min)
	}
}

func TestSwitchForwardsBetweenPorts(t *testing.T) {
	cfg := DefaultConfig()
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", cfg, 3, sim.MiB)
	macs := make([]*MAC, 3)
	for i := range macs {
		macs[i] = NewMAC(k, "m", cfg)
		sw.Attach(i, macs[i])
	}
	var got Frame
	k.Spawn("tx", func(p *sim.Proc) {
		macs[0].Send(p, Frame{Bytes: 4096, DstPort: 2, Meta: 42})
	})
	k.Spawn("rx", func(p *sim.Proc) {
		got = macs[2].Recv(p)
	})
	k.Run(0)
	if got.Meta != 42 || got.Bytes != 4096 {
		t.Fatalf("switch delivered %+v", got)
	}
}

func TestSwitchPropagatesPause(t *testing.T) {
	// Slow consumer behind a switch must throttle the original sender via
	// propagated pause frames, with no drops anywhere.
	cfg := DefaultConfig()
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", cfg, 2, 512*sim.KiB)
	src := NewMAC(k, "src", cfg)
	dst := NewMAC(k, "dst", cfg)
	sw.Attach(0, src)
	sw.Attach(1, dst)
	const frames = 1000
	received := 0
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < frames; i++ {
			src.Send(p, Frame{Bytes: 8192, DstPort: 1})
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		for received < frames {
			dst.Recv(p)
			received++
			p.Sleep(3 * sim.Microsecond)
		}
	})
	k.Run(0)
	if received != frames {
		t.Fatalf("received %d of %d", received, frames)
	}
	if dst.FramesDropped() != 0 {
		t.Fatalf("%d drops at destination", dst.FramesDropped())
	}
	if src.PausesHonored() == 0 {
		t.Fatal("pause never propagated back to the source")
	}
}

func TestOversizeFrameDrops(t *testing.T) {
	// A frame that can never fit the receive FIFO is dropped and counted.
	cfg := DefaultConfig()
	cfg.RxFIFOBytes = 16 * sim.KiB
	k, a, b := pair(cfg)
	k.Spawn("tx", func(p *sim.Proc) { a.Send(p, Frame{Bytes: 32 * sim.KiB}) })
	k.Run(0)
	if b.FramesDropped() != 1 {
		t.Fatalf("dropped = %d, want 1", b.FramesDropped())
	}
}

func TestFullDuplexLineRate(t *testing.T) {
	// Both directions must sustain line rate simultaneously: TX and RX are
	// independent paths.
	k, a, b := pair(DefaultConfig())
	const total = 32 * sim.MiB
	var doneAB, doneBA sim.Time
	k.Spawn("a2b", func(p *sim.Proc) {
		for sent := int64(0); sent < total; sent += 8192 {
			a.Send(p, Frame{Bytes: 8192})
		}
	})
	k.Spawn("b2a", func(p *sim.Proc) {
		for sent := int64(0); sent < total; sent += 8192 {
			b.Send(p, Frame{Bytes: 8192})
		}
	})
	k.Spawn("rxb", func(p *sim.Proc) {
		for got := int64(0); got < total; {
			got += b.Recv(p).Bytes
		}
		doneAB = p.Now()
	})
	k.Spawn("rxa", func(p *sim.Proc) {
		for got := int64(0); got < total; {
			got += a.Recv(p).Bytes
		}
		doneBA = p.Now()
	})
	k.Run(0)
	for dir, done := range map[string]sim.Time{"a→b": doneAB, "b→a": doneBA} {
		bw := float64(total) / done.Seconds()
		if bw < 11.5e9 {
			t.Errorf("%s under full-duplex load = %.2f GB/s; directions must not share the wire", dir, bw/1e9)
		}
	}
}

// TestTrySendShedsAtTheBound pins the open-loop hook: TrySend accepts
// frames until the TX queue's bound and then refuses instead of blocking,
// so a load source that must not stall can shed at the cap and retry after
// the transmitter drains.
func TestTrySendShedsAtTheBound(t *testing.T) {
	k, a, b := pair(DefaultConfig())
	accepted := 0
	for TrySendOK := a.TrySend(Frame{Bytes: 64}); TrySendOK; TrySendOK = a.TrySend(Frame{Bytes: 64}) {
		accepted++
		if accepted > 1<<20 {
			t.Fatal("TrySend never refused")
		}
	}
	if accepted == 0 {
		t.Fatal("TrySend refused an empty queue")
	}
	if got := a.TxQueueLen(); got != accepted {
		t.Fatalf("TxQueueLen() = %d, want %d queued", got, accepted)
	}
	got := 0
	k.Spawn("rx", func(p *sim.Proc) {
		for got < accepted {
			b.Recv(p)
			got++
		}
	})
	k.Run(0)
	if got != accepted {
		t.Fatalf("received %d of %d shed-tested frames", got, accepted)
	}
	if a.TxQueueLen() != 0 {
		t.Fatalf("TxQueueLen() = %d after drain", a.TxQueueLen())
	}
	if !a.TrySend(Frame{Bytes: 64}) {
		t.Fatal("TrySend refused after the queue drained")
	}
}

package ethernet

import (
	"testing"

	"snacc/internal/sim"
)

// star builds a switch with n MACs attached to ports 0..n-1.
func star(cfg Config, n int, bufferBytes int64) (*sim.Kernel, *Switch, []*MAC) {
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", cfg, n, bufferBytes)
	macs := make([]*MAC, n)
	for i := range macs {
		macs[i] = NewMAC(k, "m", cfg)
		sw.Attach(i, macs[i])
	}
	return k, sw, macs
}

func TestSwitchParallelFlowsDoNotInterfere(t *testing.T) {
	// Two disjoint flows (0→2, 1→3) must each sustain full payload rate:
	// per-egress queues give the switch a non-blocking fabric.
	k, _, m := star(DefaultConfig(), 4, 4*sim.MiB)
	const total = 32 * sim.MiB
	finish := make([]sim.Time, 4)
	for _, flow := range []struct{ src, dst int }{{0, 2}, {1, 3}} {
		flow := flow
		k.Spawn("tx", func(p *sim.Proc) {
			for sent := int64(0); sent < total; sent += 8192 {
				m[flow.src].Send(p, Frame{Bytes: 8192, DstPort: flow.dst})
			}
		})
		k.Spawn("rx", func(p *sim.Proc) {
			for got := int64(0); got < total; {
				got += m[flow.dst].Recv(p).Bytes
			}
			finish[flow.dst] = p.Now()
		})
	}
	k.Run(0)
	for _, dst := range []int{2, 3} {
		bw := float64(total) / finish[dst].Seconds()
		if bw < 11.5e9 {
			t.Errorf("flow to port %d ran at %.2f GB/s; disjoint flows must not share a bottleneck", dst, bw/1e9)
		}
	}
}

func TestSwitchConvergingFlowsShareEgress(t *testing.T) {
	// Ports 0 and 1 both target port 2: the egress link is the bottleneck,
	// so the combined goodput is one line rate and flow control keeps every
	// frame alive.
	k, _, m := star(DefaultConfig(), 3, sim.MiB)
	const perFlow = 16 * sim.MiB
	var done sim.Time
	for src := 0; src < 2; src++ {
		src := src
		k.Spawn("tx", func(p *sim.Proc) {
			for sent := int64(0); sent < perFlow; sent += 8192 {
				m[src].Send(p, Frame{Bytes: 8192, DstPort: 2})
			}
		})
	}
	k.Spawn("rx", func(p *sim.Proc) {
		for got := int64(0); got < 2*perFlow; {
			got += m[2].Recv(p).Bytes
		}
		done = p.Now()
	})
	k.Run(0)
	if m[2].FramesDropped() != 0 {
		t.Fatalf("%d frames dropped despite flow control", m[2].FramesDropped())
	}
	bw := float64(2*perFlow) / done.Seconds()
	if bw > 12.5e9 {
		t.Fatalf("combined goodput %.2f GB/s exceeds one egress line", bw/1e9)
	}
	if bw < 10e9 {
		t.Fatalf("combined goodput %.2f GB/s far below the egress line", bw/1e9)
	}
	// Backpressure must have reached at least one upstream transmitter.
	if m[0].PausesHonored()+m[1].PausesHonored() == 0 {
		t.Fatal("no upstream transmitter was ever paused")
	}
}

func TestSwitchPropagatesPauseFromStalledReceiver(t *testing.T) {
	// §4.7: "intermediary switches ... will first pause locally before
	// propagating the pause request further". A receiver that never drains
	// must stall the *sender* through the switch without drops.
	k, _, m := star(DefaultConfig(), 2, sim.MiB)
	sent := int64(0)
	k.Spawn("tx", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			m[0].Send(p, Frame{Bytes: 8192, DstPort: 1})
			sent += 8192
		}
	})
	// No receiver process: m[1]'s FIFO fills, pauses the switch egress,
	// the switch buffer fills, and the pause propagates to m[0].
	k.Run(50 * sim.Millisecond)
	if m[1].FramesDropped() != 0 {
		t.Fatalf("%d frames dropped at the stalled receiver", m[1].FramesDropped())
	}
	// Bounded in-flight data: receiver FIFO + switch buffer + tx queue.
	// Without propagation the sender would free-run at 12.5 GB/s for 50 ms
	// (625 MB); with it only the buffering chain fills.
	if sent > 32*sim.MiB {
		t.Fatalf("sender pushed %d MiB into a stalled path; pause did not propagate", sent/sim.MiB)
	}
	if m[0].PausesHonored() == 0 {
		t.Fatal("sender never honored a propagated pause")
	}
}

func TestSwitchDropsWithoutFlowControl(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PauseEnabled = false
	k, sw, m := star(cfg, 2, 256*sim.KiB)
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 4000; i++ {
			m[0].Send(p, Frame{Bytes: 8192, DstPort: 1})
		}
	})
	got := int64(0)
	k.Spawn("rx", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			got += m[1].Recv(p).Bytes
			p.Sleep(10 * sim.Microsecond)
		}
	})
	k.Run(40 * sim.Millisecond)
	if got >= 4000*8192 {
		t.Fatal("everything delivered; congestion never happened")
	}
	// Loss shows up either at the switch egress buffer or the receiver FIFO.
	if sw.FramesDropped()+m[1].FramesDropped() == 0 {
		t.Fatal("no loss anywhere despite disabled flow control")
	}
}

func TestSwitchInvalidPortPanics(t *testing.T) {
	k, _, m := star(DefaultConfig(), 2, sim.MiB)
	defer func() {
		if recover() == nil {
			t.Error("frame to nonexistent port accepted")
		}
	}()
	k.Spawn("tx", func(p *sim.Proc) {
		m[0].Send(p, Frame{Bytes: 512, DstPort: 9})
	})
	k.Run(0)
}

func TestSwitchPreservesPerFlowOrder(t *testing.T) {
	k, _, m := star(DefaultConfig(), 2, sim.MiB)
	const frames = 200
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < frames; i++ {
			m[0].Send(p, Frame{Bytes: 4096, DstPort: 1, Meta: i})
		}
	})
	var order []int
	k.Spawn("rx", func(p *sim.Proc) {
		for len(order) < frames {
			order = append(order, m[1].Recv(p).Meta.(int))
		}
	})
	k.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("frame %d arrived in position %d; switch reordered a flow", v, i)
		}
	}
}

func TestSwitchAddsStoreAndForwardLatency(t *testing.T) {
	// One hop through the switch doubles the store-and-forward stages: the
	// first-frame delivery time grows versus a direct link, while line rate
	// is unaffected (checked by TestSwitchParallelFlowsDoNotInterfere).
	cfg := DefaultConfig()
	direct := func() sim.Time {
		k, a, b := pair(cfg)
		var at sim.Time
		k.Spawn("tx", func(p *sim.Proc) { a.Send(p, Frame{Bytes: 8192}) })
		k.Spawn("rx", func(p *sim.Proc) { b.Recv(p); at = p.Now() })
		k.Run(0)
		return at
	}()
	switched := func() sim.Time {
		k, _, m := star(cfg, 2, sim.MiB)
		var at sim.Time
		k.Spawn("tx", func(p *sim.Proc) { m[0].Send(p, Frame{Bytes: 8192, DstPort: 1}) })
		k.Spawn("rx", func(p *sim.Proc) { m[1].Recv(p); at = p.Now() })
		k.Run(0)
		return at
	}()
	if switched <= direct {
		t.Fatalf("switched path (%v) not slower than direct (%v)", switched, direct)
	}
	if switched > 3*direct {
		t.Fatalf("switched path (%v) absurdly slower than direct (%v)", switched, direct)
	}
}

// Package ethernet models the 100 G Ethernet path SNAcc extends in TaPaSCo
// (§4.7): frame-level MACs with store-and-forward transmission, bounded
// receive FIFOs, and IEEE 802.3x pause-frame flow control — "an overrun
// receiver [sends] a pause packet to the sender", including propagation
// through an intermediary switch that "will first pause locally before
// propagating the pause request further".
//
// Without flow control a slow consumer overruns its FIFO and frames drop;
// with it, backpressure reaches the transmitter. Both behaviours are
// modeled so the tests can demonstrate why the extension exists.
package ethernet

import (
	"fmt"

	"snacc/internal/sim"
)

// Frame is one Ethernet frame (or, for efficiency, an aggregate of
// back-to-back frames totalling Bytes of payload — the wire overhead is
// charged per MTU-sized frame either way).
type Frame struct {
	Bytes int64
	Data  []byte
	Meta  any
	// DstPort selects the egress port when traversing a Switch.
	DstPort int
	// pause marks an 802.3x PAUSE control frame; Quanta is the requested
	// pause duration (zero resumes).
	pause  bool
	quanta sim.Time
}

// Config parameterizes a MAC.
type Config struct {
	// BitsPerSec is the line rate (100e9).
	BitsPerSec float64
	// MTU is the maximum frame payload; larger Frames are charged
	// per-frame overhead once per MTU.
	MTU int64
	// FrameOverheadBytes covers preamble, header, FCS and IFG per frame.
	FrameOverheadBytes int64
	// RxFIFOBytes bounds the receive buffer.
	RxFIFOBytes int64
	// PauseEnabled turns on 802.3x flow control.
	PauseEnabled bool
	// HiWater/LoWater are the FIFO thresholds for pause/resume, as
	// fractions of RxFIFOBytes.
	HiWater, LoWater float64
	// PauseQuanta is the pause duration requested by each pause frame.
	PauseQuanta sim.Time
	// WireLatency is the cable propagation delay.
	WireLatency sim.Time
}

// DefaultConfig returns the 100 G configuration with flow control enabled.
func DefaultConfig() Config {
	return Config{
		BitsPerSec:         100e9,
		MTU:                9000,
		FrameOverheadBytes: 38,
		// The FIFO is sized for the pause reaction time: at 12.5 GB/s a
		// pause needs headroom for the frames already committed to the
		// wire when the threshold trips.
		RxFIFOBytes:  512 * sim.KiB,
		PauseEnabled: true,
		HiWater:      0.5,
		LoWater:      0.2,
		PauseQuanta:  40 * sim.Microsecond,
		WireLatency:  500 * sim.Nanosecond,
	}
}

// BytesPerSec returns the payload-agnostic line rate in bytes.
func (c Config) BytesPerSec() float64 { return c.BitsPerSec / 8 }

// EdgeLookahead returns the conservative-sync lookahead a link with this
// config sustains: the wire propagation delay. Every delivery a MAC (or
// switch port) schedules toward its peer — data after store-and-forward,
// 802.3x pause/resume control frames — is at least WireLatency in the
// future, so a cross-domain edge declared with this lookahead is safe.
func (c Config) EdgeLookahead() sim.Time { return c.WireLatency }

// WireBytes returns the on-wire cost of n payload bytes, charging per-frame
// overhead once per MTU.
func (c Config) WireBytes(n int64) int64 {
	if n <= 0 {
		return c.FrameOverheadBytes + 64
	}
	frames := (n + c.MTU - 1) / c.MTU
	return n + frames*c.FrameOverheadBytes
}

// MAC is one Ethernet endpoint.
type MAC struct {
	k    *sim.Kernel
	name string
	cfg  Config

	// peer receives what we transmit.
	peer receiver
	// crossOut, when set, is the shard edge toward the peer's domain; all
	// peer deliveries ride it instead of the local kernel (ConnectCross).
	crossOut *sim.Edge

	// txq holds frames awaiting transmission; the transmitter process
	// fully buffers each frame before serialization (§4.7 store-and-
	// forward), pausing between frames when flow-controlled.
	txq    *sim.Chan[Frame]
	wire   *sim.Pipe
	txProc *sim.Proc

	// pausedUntil implements received PAUSE state.
	pausedUntil sim.Time

	// Receive side.
	rxq         *sim.Chan[Frame]
	rxOccupied  int64
	pauseSent   bool
	pauseActive bool

	// Stats.
	framesSent, framesDropped int64
	bytesSent, bytesReceived  int64
	pausesSent, pausesHonored int64
}

// receiver is the far end of a link: another MAC or a switch port.
type receiver interface {
	deliver(f Frame)
}

// NewMAC creates an endpoint. Connect it before use.
func NewMAC(k *sim.Kernel, name string, cfg Config) *MAC {
	m := &MAC{
		k:    k,
		name: name,
		cfg:  cfg,
		txq:  sim.NewChan[Frame](k, 1024),
		wire: sim.NewPipe(k, cfg.BytesPerSec(), cfg.WireLatency),
		rxq:  sim.NewChan[Frame](k, 1<<20),
	}
	m.txProc = k.Spawn(name+".tx", m.txLoop)
	return m
}

// Name returns the MAC name.
func (m *MAC) Name() string { return m.name }

// wireBytes charges per-frame overhead once per MTU.
func (m *MAC) wireBytes(n int64) int64 { return m.cfg.WireBytes(n) }

// Connect links two MACs full duplex.
func Connect(a, b *MAC) {
	a.peer = b
	b.peer = a
}

// ConnectCross links two MACs full duplex across shard domains: frames a
// transmits ride edge ab into b's domain and vice versa. Each edge must run
// from the sender's domain kernel to the receiver's, and its lookahead must
// not exceed the sender's WireLatency — the minimum lead time of every
// delivery the MAC schedules (see Config.EdgeLookahead).
func ConnectCross(a, b *MAC, ab, ba *sim.Edge) error {
	if ab == nil || ba == nil {
		return fmt.Errorf("ethernet: ConnectCross %s<->%s with nil edge", a.name, b.name)
	}
	if ab.From().Kernel() != a.k || ab.To().Kernel() != b.k {
		return fmt.Errorf("ethernet: ConnectCross %s->%s: edge does not run from %s's domain to %s's",
			a.name, b.name, a.name, b.name)
	}
	if ba.From().Kernel() != b.k || ba.To().Kernel() != a.k {
		return fmt.Errorf("ethernet: ConnectCross %s->%s: edge does not run from %s's domain to %s's",
			b.name, a.name, b.name, a.name)
	}
	if ab.Lookahead() > a.cfg.EdgeLookahead() {
		return fmt.Errorf("ethernet: ConnectCross %s->%s: edge lookahead %v exceeds wire latency %v",
			a.name, b.name, ab.Lookahead(), a.cfg.EdgeLookahead())
	}
	if ba.Lookahead() > b.cfg.EdgeLookahead() {
		return fmt.Errorf("ethernet: ConnectCross %s->%s: edge lookahead %v exceeds wire latency %v",
			b.name, a.name, ba.Lookahead(), b.cfg.EdgeLookahead())
	}
	a.peer, b.peer = b, a
	a.crossOut, b.crossOut = ab, ba
	return nil
}

// schedDeliver schedules a peer delivery at absolute time t, routing over
// the cross-domain edge when the peer lives in another domain. The closure
// must touch only the peer's state (it executes in the peer's kernel).
func (m *MAC) schedDeliver(t sim.Time, fn func()) {
	if m.crossOut != nil {
		m.crossOut.At(t, fn)
		return
	}
	m.k.At(t, fn)
}

// Send queues a frame for transmission, blocking p when the TX queue is
// full.
func (m *MAC) Send(p *sim.Proc, f Frame) {
	m.txq.Put(p, f)
}

// TrySend queues a frame for transmission without blocking, reporting false
// when the TX queue is full. An open-loop load source uses this to shed load
// at the bound instead of buffering arrivals without limit: when received
// pause frames stall the transmitter, the TX queue fills, TrySend starts
// failing, and the caller decides what to drop.
func (m *MAC) TrySend(f Frame) bool {
	return m.txq.TryPut(f)
}

// TxQueueLen reports the frames waiting in the TX queue (not yet begun
// transmission).
func (m *MAC) TxQueueLen() int { return m.txq.Len() }

// Recv takes the next received frame, blocking p while none is pending.
// Consuming a frame frees FIFO space and may trigger a resume.
func (m *MAC) Recv(p *sim.Proc) Frame {
	f := m.rxq.Get(p)
	m.rxOccupied -= f.Bytes
	if m.cfg.PauseEnabled && m.pauseSent && float64(m.rxOccupied) <= m.cfg.LoWater*float64(m.cfg.RxFIFOBytes) {
		m.pauseSent = false
		m.sendPause(0) // quanta 0: resume
	}
	return f
}

// txLoop transmits queued frames, honoring pause state. The sender blocks
// only for wire serialization; store-and-forward buffering and propagation
// add *latency* to delivery while back-to-back frames pipeline (§4.7 —
// full buffering "increases latency", not throughput).
func (m *MAC) txLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		f := m.txq.Get(p)
		for {
			if wait := m.pausedUntil - p.Now(); wait > 0 && m.cfg.PauseEnabled {
				m.pausesHonored++
				p.Sleep(wait)
				continue
			}
			break
		}
		storeDelay := sim.TransferTime(minI64(f.Bytes, m.cfg.MTU), m.cfg.BytesPerSec())
		delivered := m.wire.Reserve(m.wireBytes(f.Bytes))
		m.framesSent++
		m.bytesSent += f.Bytes
		if m.peer == nil {
			panic("ethernet: MAC " + m.name + " transmitting with no peer")
		}
		frame := f
		m.schedDeliver(delivered+storeDelay, func() { m.peer.deliver(frame) })
		// Block for serialization only; latency and buffering pipeline.
		p.Sleep(delivered - m.cfg.WireLatency - p.Now())
	}
}

// sendPause emits an 802.3x control frame ahead of the data queue (control
// frames bypass the data path in real MACs; the model delivers them with
// wire latency only).
func (m *MAC) sendPause(quanta sim.Time) {
	m.pausesSent++
	f := Frame{pause: true, quanta: quanta}
	m.schedDeliver(m.k.Now()+m.cfg.WireLatency, func() {
		if m.peer != nil {
			m.peer.deliver(f)
		}
	})
}

// deliver implements receiver.
func (m *MAC) deliver(f Frame) {
	if f.pause {
		if f.quanta == 0 {
			m.pausedUntil = m.k.Now()
		} else {
			m.pausedUntil = m.k.Now() + f.quanta
		}
		// Wake the transmitter in case it idles past the new state; the
		// txLoop re-checks pausedUntil around each frame.
		return
	}
	if m.rxOccupied+f.Bytes > m.cfg.RxFIFOBytes {
		// Overrun: without flow control this is where frames die. The
		// congestion pause must still be renewed, or a stalled consumer
		// would let the sender free-run once the first quanta lapses.
		m.framesDropped++
		m.maybePause()
		return
	}
	m.rxOccupied += f.Bytes
	m.bytesReceived += f.Bytes
	if !m.rxq.TryPut(f) {
		panic("ethernet: rx queue overflow despite FIFO accounting")
	}
	m.maybePause()
}

// maybePause starts the congestion-pause machinery. While congestion
// persists, pause frames are re-sent on a timer at half the quanta — a
// fully stalled consumer must keep the sender stopped even though no new
// arrivals trigger receive-side events (real 802.3x receivers refresh
// pause state periodically for exactly this reason).
func (m *MAC) maybePause() {
	if !m.cfg.PauseEnabled || m.pauseActive ||
		float64(m.rxOccupied) < m.cfg.HiWater*float64(m.cfg.RxFIFOBytes) {
		return
	}
	m.pauseActive = true
	m.renewPause()
}

func (m *MAC) renewPause() {
	if float64(m.rxOccupied) < m.cfg.HiWater*float64(m.cfg.RxFIFOBytes) {
		// Congestion cleared; the Recv path emits the resume frame when
		// the low watermark is crossed.
		m.pauseActive = false
		return
	}
	m.pauseSent = true
	m.sendPause(m.cfg.PauseQuanta)
	m.k.After(m.cfg.PauseQuanta/2, m.renewPause)
}

// Stats accessors.

// FramesSent returns transmitted data frames.
func (m *MAC) FramesSent() int64 { return m.framesSent }

// FramesDropped returns frames lost to receive-FIFO overrun.
func (m *MAC) FramesDropped() int64 { return m.framesDropped }

// BytesSent returns transmitted payload bytes.
func (m *MAC) BytesSent() int64 { return m.bytesSent }

// BytesReceived returns accepted payload bytes.
func (m *MAC) BytesReceived() int64 { return m.bytesReceived }

// PausesSent returns emitted pause/resume control frames.
func (m *MAC) PausesSent() int64 { return m.pausesSent }

// PausesHonored counts transmissions delayed by received pause frames.
func (m *MAC) PausesHonored() int64 { return m.pausesHonored }

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

package sim

import (
	"testing"
)

// TestEventQueueOrdering drives the 4-ary heap with a deterministic pseudo-
// random workload, interleaving bursts of pushes with partial drains, and
// checks every pop against a naive reference queue: the minimum pending
// (at, seq) pair must come out each time.
func TestEventQueueOrdering(t *testing.T) {
	type key struct {
		at  Time
		seq uint64
	}
	less := func(a, b key) bool {
		if a.at != b.at {
			return a.at < b.at
		}
		return a.seq < b.seq
	}
	rng := NewRand(99)
	var q eventQueue
	var ref []key // unsorted reference of pending events
	seq := uint64(0)
	pops := 0
	popOne := func() {
		e := q.pop()
		min := 0
		for i := range ref {
			if less(ref[i], ref[min]) {
				min = i
			}
		}
		if e.at != ref[min].at || e.seq != ref[min].seq {
			t.Fatalf("pop %d returned (%v,%d), want (%v,%d)",
				pops, e.at, e.seq, ref[min].at, ref[min].seq)
		}
		ref = append(ref[:min], ref[min+1:]...)
		pops++
	}
	for round := 0; round < 200; round++ {
		for i := 0; i < rng.Intn(20)+1; i++ {
			seq++
			at := Time(rng.Int63n(50)) // heavy timestamp collisions
			q.push(event{at: at, seq: seq, fn: func() {}})
			ref = append(ref, key{at, seq})
		}
		for i := 0; i < rng.Intn(10) && q.len() > 0; i++ {
			popOne()
		}
	}
	for q.len() > 0 {
		popOne()
	}
	if len(ref) != 0 {
		t.Fatalf("%d reference events never popped", len(ref))
	}
}

// TestRunHorizonLeavesQueueIntact checks the peek-before-pop horizon path:
// an over-horizon event must fire on a later unbounded Run, exactly once.
func TestRunHorizonLeavesQueueIntact(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(100, func() { fired++ })
	k.At(300, func() { fired++ })
	if now := k.Run(200); now != 200 {
		t.Fatalf("Run(200) returned %v, want 200", now)
	}
	if fired != 1 {
		t.Fatalf("fired %d events before horizon, want 1", fired)
	}
	if now := k.Run(0); now != 300 {
		t.Fatalf("second Run returned %v, want 300", now)
	}
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
	// Repeated horizon hits with nothing runnable must be cheap no-ops that
	// still advance the clock.
	k.At(1000, func() { fired++ })
	for h := Time(400); h < 900; h += 100 {
		if now := k.Run(h); now != h {
			t.Fatalf("Run(%v) returned %v", h, now)
		}
	}
	if fired != 2 {
		t.Fatalf("over-horizon event fired early")
	}
	k.Run(0)
	if fired != 3 {
		t.Fatalf("final event did not fire")
	}
}

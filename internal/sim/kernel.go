// Package sim implements the deterministic discrete-event simulation kernel
// that underpins every hardware model in this repository: the PCIe fabric,
// the NVMe device, the FPGA memory systems, the Ethernet MAC and the NVMe
// Streamer itself.
//
// The kernel is cooperative and single-threaded in simulated time: exactly
// one process runs at any instant, events at equal timestamps fire in the
// order they were scheduled, and all randomness flows through an explicitly
// seeded PRNG. The same seed therefore yields a bit-identical simulation,
// which the test suite relies on throughout.
package sim

import (
	"fmt"
)

// Time is a point in simulated time, measured in nanoseconds from the start
// of the simulation. It doubles as a duration; arithmetic on Time values is
// plain integer arithmetic.
type Time int64

// Common durations, for readable literals such as 3*sim.Microsecond.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a floating-point second count to a Time.
func Seconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// TransferTime returns the serialization delay of n bytes over a link moving
// bytesPerSec, rounded half-up to a whole nanosecond.
func TransferTime(n int64, bytesPerSec float64) Time {
	if n <= 0 || bytesPerSec <= 0 {
		return 0
	}
	return Time(float64(n)/bytesPerSec*float64(Second) + 0.5)
}

// event is one scheduled callback. seq breaks timestamp ties so scheduling
// order is execution order. arrival marks events delivered from another
// domain at a shard barrier; the conservative scheduler bounds their
// earliest possible cross-send by the domain's turnaround. silent marks
// locally scheduled events that promise to perform no cross-domain send,
// so they never constrain the earliest-output-time bound; an unmarked
// local event may send the moment it runs (see Kernel.earliestSend).
type event struct {
	at      Time
	seq     uint64
	arrival bool
	silent  bool
	fn      func()
}

// eventLess orders events by timestamp, then by scheduling sequence.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is an inlined 4-ary min-heap over concrete event values. It is
// the kernel's hottest data structure: every scheduled callback passes
// through one push and one pop. Compared to container/heap it avoids the
// interface{} boxing allocation on every Push/Pop (the event struct does not
// fit an interface word) and the virtual Less/Swap calls; the 4-ary shape
// halves the tree depth, trading slightly wider sibling scans — which stay
// inside one cache line of events — for fewer memory levels per sift.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// push inserts e, sifting a hole up from the tail. Amortized zero
// allocations: the backing array only grows when the queue reaches a new
// high-water mark.
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	ev := q.ev
	i := len(ev) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(&e, &ev[parent]) {
			break
		}
		ev[i] = ev[parent]
		i = parent
	}
	ev[i] = e
}

// pop removes and returns the minimum event.
func (q *eventQueue) pop() event {
	ev := q.ev
	root := ev[0]
	n := len(ev) - 1
	last := ev[n]
	ev[n] = event{} // drop the fn reference so the closure can be collected
	q.ev = ev[:n]
	if n > 0 {
		q.siftDown(last)
	}
	return root
}

// siftDown places e into the hole at the root, walking the smallest child
// down each level.
func (q *eventQueue) siftDown(e event) {
	ev := q.ev
	n := len(ev)
	i := 0
	for {
		child := i<<2 + 1
		if child >= n {
			break
		}
		min := child
		end := child + 4
		if end > n {
			end = n
		}
		for j := child + 1; j < end; j++ {
			if eventLess(&ev[j], &ev[min]) {
				min = j
			}
		}
		if !eventLess(&ev[min], &e) {
			break
		}
		ev[i] = ev[min]
		i = min
	}
	ev[i] = e
}

// Kernel is the simulation scheduler. The zero value is not usable; create
// one with NewKernel.
type Kernel struct {
	now      Time
	seq      uint64
	queue    eventQueue
	stopped  bool
	executed uint64
	// nprocs counts live processes so Run can detect a deadlock: events
	// exhausted while non-daemon processes are still parked. Daemons are
	// service loops expected to idle forever.
	nprocs        int
	parked        int
	daemons       int
	parkedDaemons int
	// localPending counts pending events that were scheduled locally (not
	// barrier-delivered arrivals), and minLocal is a monotone lower bound on
	// the earliest such event (maxTime when none are pending). Together they
	// let a shard bound the kernel's next possible cross-domain send by
	// head+turnaround whenever everything pending is an inbound arrival —
	// the common state right after a barrier (see earliestSend).
	localPending int
	minLocal     Time
	// inArrival flags that the event currently executing is a cross-domain
	// arrival, so Edge.At can reject a direct send that would break the
	// domain's declared turnaround; inSilent does the same for events
	// scheduled with AtSilent, which promise no cross-domain sends at all.
	inArrival bool
	inSilent  bool
}

// NewKernel returns a kernel with simulated time at zero.
func NewKernel() *Kernel { return &Kernel{minLocal: maxTime} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// EventsExecuted returns the number of events the kernel has run — the
// simulator's work metric.
func (k *Kernel) EventsExecuted() uint64 { return k.executed }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	k.localPending++
	if t < k.minLocal {
		k.minLocal = t
	}
	k.queue.push(event{at: t, seq: k.seq, fn: fn})
}

// AtSilent schedules fn at absolute time t with the promise that fn performs
// no cross-domain send (Edge.At/After panic if it tries; scheduling further
// local events is fine). Models mark computation-only work — statistics
// folds, firmware pipeline stages, counter updates — so the conservative
// scheduler's earliest-output-time bound skips them entirely: a domain whose
// only pending locals are silent advertises its next send as far out as its
// turnaround allows, instead of pessimistically assuming every queued event
// might transmit. On a flat kernel AtSilent behaves exactly like At.
func (k *Kernel) AtSilent(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	k.queue.push(event{at: t, seq: k.seq, silent: true, fn: fn})
}

// AfterSilent schedules fn d after the current time with AtSilent's
// no-cross-send promise.
func (k *Kernel) AfterSilent(d Time, fn func()) { k.AtSilent(k.now+d, fn) }

// atArrival schedules a barrier-delivered cross-domain event. It shares At's
// ordering semantics (seq assignment order is delivery order) but is exempt
// from the local-event accounting: an arrival's earliest transitive send is
// bounded by the domain's turnaround, not by its timestamp alone.
func (k *Kernel) atArrival(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	k.queue.push(event{at: t, seq: k.seq, arrival: true, fn: fn})
}

// finishPop maintains the local-event accounting after an event is popped
// for execution. Only plain local events participate: arrivals are bounded
// by the turnaround contract and silent events by their no-send promise.
func (k *Kernel) finishPop(e *event) {
	if !e.arrival && !e.silent {
		k.localPending--
		if k.localPending == 0 {
			k.minLocal = maxTime
		}
	}
}

// earliestSend returns a lower bound on the kernel clock value at which the
// domain could next perform a cross-domain send, given its declared
// turnaround. With no turnaround (or any locally scheduled event pending at
// the head) that is just the queue head: the head event may send the moment
// it runs. When everything pending up to the head is a barrier-delivered
// arrival, the turnaround contract pushes the bound to head+turnaround —
// the earliest-output-time refinement that keeps tightly coupled domains
// from throttling each other's windows to the raw link lookahead.
func (k *Kernel) earliestSend(turn Time) Time {
	if k.queue.len() == 0 {
		return maxTime
	}
	head := k.queue.ev[0].at
	if turn == 0 {
		return head
	}
	bound := head + turn
	if bound < head { // saturate on overflow
		bound = maxTime
	}
	if k.localPending > 0 {
		if k.minLocal <= head {
			return head
		}
		if k.minLocal < bound {
			return k.minLocal
		}
	}
	return bound
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Stop makes Run return after the event being processed completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains, Stop is called, or the
// optional horizon is reached (horizon <= 0 means no horizon). It returns
// the time of the last executed event.
//
// Run panics if the event queue drains while processes remain parked — that
// is a deadlock in the modeled hardware and always a bug.
func (k *Kernel) Run(horizon Time) Time {
	k.stopped = false
	for k.queue.len() > 0 && !k.stopped {
		// Peek before popping: an over-horizon event stays where it is, so
		// hitting the horizon costs no pop/re-push re-heapification.
		if horizon > 0 && k.queue.ev[0].at > horizon {
			k.now = horizon
			return k.now
		}
		e := k.queue.pop()
		k.finishPop(&e)
		k.now = e.at
		k.executed++
		e.fn()
	}
	if !k.stopped && k.queue.len() == 0 && k.parked-k.parkedDaemons > 0 && k.parked == k.nprocs {
		panic(fmt.Sprintf("sim: deadlock at %v: %d non-daemon processes parked with no pending events",
			k.now, k.parked-k.parkedDaemons))
	}
	return k.now
}

package sim

// Pipe models a serializing, bandwidth-limited, fixed-latency link such as a
// PCIe lane bundle, a DRAM data bus, or an Ethernet wire. Transfers are
// serialized FIFO onto the link: a transfer occupies the link for
// size/bandwidth seconds starting no earlier than the previous transfer
// finished serializing, and is delivered Latency after its serialization
// completes (cut-through is deliberately not modeled; the hardware this
// repository reproduces is store-and-forward at every hop that matters).
type Pipe struct {
	k *Kernel

	// BytesPerSec is the serialization bandwidth of the link.
	BytesPerSec float64
	// Latency is the propagation delay added after serialization.
	Latency Time

	busyUntil Time

	// Stats.
	bytesMoved int64
	transfers  int64
}

// NewPipe creates a link with the given bandwidth and propagation latency.
func NewPipe(k *Kernel, bytesPerSec float64, latency Time) *Pipe {
	if bytesPerSec <= 0 {
		panic("sim: pipe bandwidth must be positive")
	}
	return &Pipe{k: k, BytesPerSec: bytesPerSec, Latency: latency}
}

// Reserve books n bytes onto the link and returns the simulated time at
// which they are delivered at the far end. It never blocks; callers that
// model blocking senders should Sleep until the returned time.
func (pp *Pipe) Reserve(n int64) (delivered Time) {
	_, delivered = pp.ReserveFrom(pp.k.now, n)
	return delivered
}

// ReserveFrom books n bytes onto the link starting no earlier than
// `earliest`, returning when serialization begins and when the last byte is
// delivered. It lets callers model cut-through pipelines: a downstream link
// reserves starting at the moment the first bytes could arrive from the
// upstream link rather than after the whole burst has been serialized.
func (pp *Pipe) ReserveFrom(earliest Time, n int64) (start, delivered Time) {
	start = pp.k.now
	if earliest > start {
		start = earliest
	}
	if pp.busyUntil > start {
		start = pp.busyUntil
	}
	ser := TransferTime(n, pp.BytesPerSec)
	pp.busyUntil = start + ser
	pp.bytesMoved += n
	pp.transfers++
	return start, pp.busyUntil + pp.Latency
}

// Transfer moves n bytes across the link, blocking p until delivery.
func (pp *Pipe) Transfer(p *Proc, n int64) {
	done := pp.Reserve(n)
	p.Sleep(done - p.Now())
}

// TransferAsync moves n bytes and runs fn at delivery time, without
// involving a process. fn may be nil.
func (pp *Pipe) TransferAsync(n int64, fn func()) (delivered Time) {
	done := pp.Reserve(n)
	if fn != nil {
		pp.k.At(done, fn)
	}
	return done
}

// BusyUntil returns the time the link finishes serializing queued traffic.
func (pp *Pipe) BusyUntil() Time { return pp.busyUntil }

// BytesMoved returns the total payload bytes booked onto the link.
func (pp *Pipe) BytesMoved() int64 { return pp.bytesMoved }

// Transfers returns the number of transfers booked onto the link.
func (pp *Pipe) Transfers() int64 { return pp.transfers }

// ResetStats zeroes the byte and transfer counters.
func (pp *Pipe) ResetStats() { pp.bytesMoved, pp.transfers = 0, 0 }

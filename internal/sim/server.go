package sim

// Server is a serializing work chain: each Occupy books d of exclusive time
// after all previously booked work. It models a single CPU core (the "one
// CPU thread running at 100%" the paper attributes to SPDK and the GPU
// variant in §6.3) or any other one-at-a-time execution resource, and
// tracks cumulative busy time so callers can report utilization.
type Server struct {
	k         *Kernel
	busyUntil Time
	busyAccum Time
}

// NewServer returns an idle server.
func NewServer(k *Kernel) *Server { return &Server{k: k} }

// Occupy books d of exclusive time and returns when it completes.
func (s *Server) Occupy(d Time) (done Time) {
	if d < 0 {
		d = 0
	}
	start := s.k.now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + d
	s.busyAccum += d
	return s.busyUntil
}

// OccupyAnd books d and runs fn when the booked slot completes.
func (s *Server) OccupyAnd(d Time, fn func()) {
	s.k.At(s.Occupy(d), fn)
}

// BusyUntil returns the end of currently booked work.
func (s *Server) BusyUntil() Time { return s.busyUntil }

// BusyTime returns cumulative booked time.
func (s *Server) BusyTime() Time { return s.busyAccum }

// Utilization returns busy time divided by the window since `since`.
func (s *Server) Utilization(since Time) float64 {
	window := s.k.now - since
	if window <= 0 {
		return 0
	}
	u := float64(s.busyAccum) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}

// ResetBusyTime zeroes the cumulative busy counter (for measurement
// windows).
func (s *Server) ResetBusyTime() { s.busyAccum = 0 }

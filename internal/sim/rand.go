package sim

// Rand is a small, fast, deterministic PRNG (splitmix64) used by every
// stochastic model in the repository. math/rand would also be deterministic
// under a fixed seed, but a self-contained generator keeps the simulation
// immune to stdlib algorithm changes across Go releases and makes the state
// trivially snapshottable.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Seed zero is remapped so the
// zero value still produces a usable stream.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63n returns a uniform value in [0, n). n must be positive.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Jitter returns base scaled by a uniform factor in [1-frac, 1+frac],
// rounded to whole nanoseconds. It models service-time variance.
func (r *Rand) Jitter(base Time, frac float64) Time {
	if frac <= 0 {
		return base
	}
	f := 1 - frac + 2*frac*r.Float64()
	return Time(float64(base)*f + 0.5)
}

// Perm fills out with a permutation of [0, len(out)).
func (r *Rand) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

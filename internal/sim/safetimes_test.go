package sim

import (
	"strings"
	"testing"
)

// TestEarliestSend exercises the kernel's earliest-output-time bound across
// its queue states: empty, local-headed, arrival-headed, mixed, and the
// overflow saturation path.
func TestEarliestSend(t *testing.T) {
	nop := func() {}

	k := NewKernel()
	if got := k.earliestSend(5); got != maxTime {
		t.Fatalf("empty queue: earliestSend = %v, want maxTime", got)
	}

	// A locally scheduled head may send the moment it runs, regardless of
	// turnaround.
	k = NewKernel()
	k.At(10, nop)
	if got := k.earliestSend(0); got != 10 {
		t.Fatalf("local head, no turnaround: %v, want 10", got)
	}
	if got := k.earliestSend(5); got != 10 {
		t.Fatalf("local head, turnaround 5: %v, want 10", got)
	}

	// All-arrival queues are bounded by head+turnaround.
	k = NewKernel()
	k.atArrival(10, nop)
	if got := k.earliestSend(0); got != 10 {
		t.Fatalf("arrival head, no turnaround: %v, want 10", got)
	}
	if got := k.earliestSend(5); got != 15 {
		t.Fatalf("arrival head, turnaround 5: %v, want 15", got)
	}

	// A local event inside the (head, head+turn) gap lowers the bound to its
	// own time; one at or beyond the gap leaves head+turn in force.
	k = NewKernel()
	k.atArrival(10, nop)
	k.At(12, nop)
	if got := k.earliestSend(5); got != 12 {
		t.Fatalf("local at 12 inside gap: %v, want 12", got)
	}
	k = NewKernel()
	k.atArrival(10, nop)
	k.At(20, nop)
	if got := k.earliestSend(5); got != 15 {
		t.Fatalf("local at 20 beyond gap: %v, want 15", got)
	}

	// Silent events neither pin the bound to the head nor count as locals.
	k = NewKernel()
	k.atArrival(10, nop)
	k.AtSilent(11, nop)
	if got := k.earliestSend(5); got != 15 {
		t.Fatalf("silent at 11: %v, want 15", got)
	}

	// head+turn overflow saturates to maxTime instead of wrapping negative.
	k = NewKernel()
	k.atArrival(maxTime-1, nop)
	if got := k.earliestSend(10); got != maxTime {
		t.Fatalf("overflow: %v, want maxTime", got)
	}

	// Draining the queue resets the local-event accounting.
	k = NewKernel()
	k.At(10, nop)
	k.Run(0)
	if k.localPending != 0 || k.minLocal != maxTime {
		t.Fatalf("after drain: localPending=%d minLocal=%v, want 0/maxTime", k.localPending, k.minLocal)
	}
}

// TestAtSilentFlatEquivalence pins AtSilent's serial semantics: on a flat
// kernel it is At with the no-send promise — same time, same tie-breaking
// order, counted in EventsExecuted.
func TestAtSilentFlatEquivalence(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(10, func() { order = append(order, 1) })
	k.AtSilent(10, func() { order = append(order, 2) })
	k.At(10, func() { order = append(order, 3) })
	k.At(5, func() {
		k.AfterSilent(5, func() { order = append(order, 4) })
	})
	k.Run(0)
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("executed %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
	if k.EventsExecuted() != 5 {
		t.Fatalf("EventsExecuted = %d, want 5", k.EventsExecuted())
	}
}

// mustPanic runs fn and returns the recovered panic message, failing the
// test if fn returns normally.
func mustPanic(t *testing.T, fn func()) (msg string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic")
		}
		msg = r.(string)
	}()
	fn()
	return ""
}

// TestSilentSendPanics verifies the AtSilent promise is enforced: a silent
// event attempting a cross-domain send fails loudly at the call site.
func TestSilentSendPanics(t *testing.T) {
	s := NewShard(1)
	a := s.AddDomain("a")
	b := s.AddDomain("b")
	ab := s.MustConnect(a, b, 10)
	s.MustConnect(b, a, 10)
	a.Kernel().AtSilent(5, func() { ab.After(10, func() {}) })
	msg := mustPanic(t, func() { s.Run(0) })
	if !strings.Contains(msg, "silent event") || !strings.Contains(msg, "a->b") {
		t.Fatalf("unexpected panic message: %s", msg)
	}
}

// TestMutedEdge verifies both halves of Mute: sending on a muted edge
// panics, and dropping the idle backchannel from the safe-time graph lets
// the destination take wider windows (fewer rounds) with identical results.
func TestMutedEdge(t *testing.T) {
	// Enforcement: the muted send fails at the call site.
	s := NewShard(1)
	a := s.AddDomain("a")
	b := s.AddDomain("b")
	ab := s.MustConnect(a, b, 10)
	ab.Mute()
	if !ab.Muted() {
		t.Fatal("Muted() = false after Mute")
	}
	a.Kernel().At(0, func() { ab.After(10, func() {}) })
	msg := mustPanic(t, func() { s.Run(0) })
	if !strings.Contains(msg, "muted edge") {
		t.Fatalf("unexpected panic message: %s", msg)
	}

	// Window widening: a one-way stream over a topology that also declares
	// an unused backchannel. Muting the backchannel must cut rounds without
	// changing the execution.
	run := func(mute bool) (trace []Time, rounds uint64) {
		s := NewShard(1)
		src := s.AddDomain("src")
		dst := s.AddDomain("dst")
		fwd := s.MustConnect(src, dst, 10)
		back := s.MustConnect(dst, src, 10)
		if mute {
			back.Mute()
		}
		for i := Time(0); i < 50; i++ {
			at := i * 7
			src.Kernel().At(at, func() {
				fwd.After(10, func() { trace = append(trace, dst.Kernel().Now()) })
			})
		}
		s.Run(0)
		return trace, s.Rounds()
	}
	open, openRounds := run(false)
	muted, mutedRounds := run(true)
	if len(open) != len(muted) {
		t.Fatalf("muted run delivered %d events, open run %d", len(muted), len(open))
	}
	for i := range open {
		if open[i] != muted[i] {
			t.Fatalf("delivery %d at %v muted vs %v open", i, muted[i], open[i])
		}
	}
	if mutedRounds >= openRounds {
		t.Fatalf("muting the backchannel did not cut rounds: %d muted vs %d open", mutedRounds, openRounds)
	}
}

// TestSetTurnaround covers the accessor and validation.
func TestSetTurnaround(t *testing.T) {
	s := NewShard(1)
	d := s.AddDomain("d")
	if d.Turnaround() != 0 {
		t.Fatalf("default turnaround %v, want 0", d.Turnaround())
	}
	d.SetTurnaround(25)
	if d.Turnaround() != 25 {
		t.Fatalf("turnaround %v, want 25", d.Turnaround())
	}
	msg := mustPanic(t, func() { d.SetTurnaround(-1) })
	if !strings.Contains(msg, "negative turnaround") {
		t.Fatalf("unexpected panic message: %s", msg)
	}
}

// TestTurnaroundArrivalSendChecked verifies the enforced half of the
// turnaround contract: a cross-domain arrival sending directly, earlier than
// arrival+turnaround+lookahead, panics; a sufficiently delayed direct send
// passes.
func TestTurnaroundArrivalSendChecked(t *testing.T) {
	build := func(respDelay Time) *Shard {
		s := NewShard(1)
		a := s.AddDomain("a")
		b := s.AddDomain("b")
		ab := s.MustConnect(a, b, 10)
		ba := s.MustConnect(b, a, 10)
		b.SetTurnaround(100)
		a.Kernel().At(0, func() {
			ab.After(10, func() { ba.After(respDelay, func() {}) })
		})
		return s
	}
	// Delivery at arrival+10 < arrival+100+10: breach.
	msg := mustPanic(t, func() { build(10).Run(0) })
	if !strings.Contains(msg, "turnaround") {
		t.Fatalf("unexpected panic message: %s", msg)
	}
	// Delivery at arrival+110 honors the declaration.
	build(110).Run(0)
}

// TestTurnaroundWidensWindows pins the earliest-output-time payoff: a
// request/response pair whose server declares its service time as turnaround
// synchronizes in fewer rounds than one that promises nothing, with the
// response stream identical.
func TestTurnaroundWidensWindows(t *testing.T) {
	run := func(turn Time) (trace []Time, rounds uint64) {
		const service = 500
		s := NewShard(1)
		cl := s.AddDomain("client")
		sv := s.AddDomain("server")
		req := s.MustConnect(cl, sv, 10)
		resp := s.MustConnect(sv, cl, 10)
		if turn > 0 {
			sv.SetTurnaround(turn)
		}
		for i := Time(0); i < 40; i++ {
			at := i * 25
			cl.Kernel().At(at, func() {
				req.After(10, func() {
					// The server "processes" for its service time before
					// responding — honoring any declared turnaround.
					resp.After(service+10, func() { trace = append(trace, cl.Kernel().Now()) })
				})
			})
		}
		s.Run(0)
		return trace, s.Rounds()
	}
	bare, bareRounds := run(0)
	declared, declaredRounds := run(500)
	if len(bare) != len(declared) {
		t.Fatalf("declared run delivered %d responses, bare run %d", len(declared), len(bare))
	}
	for i := range bare {
		if bare[i] != declared[i] {
			t.Fatalf("response %d at %v declared vs %v bare", i, declared[i], bare[i])
		}
	}
	if declaredRounds >= bareRounds {
		t.Fatalf("turnaround declaration did not cut rounds: %d declared vs %d bare", declaredRounds, bareRounds)
	}
}

// TestShardSyncStats checks the overhead counters on a rig with one busy
// chain and one idle domain: consistent totals, a positive elision count for
// the idle domain, and coherent window extremes.
func TestShardSyncStats(t *testing.T) {
	s := NewShard(1)
	a := s.AddDomain("a")
	b := s.AddDomain("b")
	idle := s.AddDomain("idle")
	ab := s.MustConnect(a, b, 10)
	s.MustConnect(b, idle, 10)
	for i := Time(0); i < 20; i++ {
		at := i * 5
		a.Kernel().At(at, func() { ab.After(10, func() {}) })
	}
	s.Run(0)
	st := s.SyncStats()
	if st.Rounds == 0 || st.Rounds != s.Rounds() {
		t.Fatalf("Rounds = %d (shard says %d)", st.Rounds, s.Rounds())
	}
	if st.Events != s.EventsExecuted() || st.CrossEvents != s.CrossEvents() {
		t.Fatalf("Events/CrossEvents = %d/%d, shard says %d/%d",
			st.Events, st.CrossEvents, s.EventsExecuted(), s.CrossEvents())
	}
	if want := float64(st.Events) / float64(st.Rounds); st.EventsPerRound != want {
		t.Fatalf("EventsPerRound = %v, want %v", st.EventsPerRound, want)
	}
	// The idle domain never has work, so it must be elided every round.
	if st.ElidedDomainRounds < st.Rounds {
		t.Fatalf("ElidedDomainRounds = %d, want >= %d (idle domain skipped each round)",
			st.ElidedDomainRounds, st.Rounds)
	}
	if st.NarrowestWindow < 0 || st.WidestWindow < st.NarrowestWindow {
		t.Fatalf("window extremes incoherent: widest %v narrowest %v", st.WidestWindow, st.NarrowestWindow)
	}
}

// TestShardRingRoundsCeiling is the regression guard for the per-domain
// safe-time sync (wired into `make kernel`): the 4-domain ring rig must keep
// its rounds-per-event overhead far below the global-lookahead scheduler's.
// The rig currently runs ~520 events/round; the global-window loop managed
// ~3. The 200 floor leaves headroom for workload tweaks while catching any
// return to lockstep synchronization.
func TestShardRingRoundsCeiling(t *testing.T) {
	_, events, rounds := ringRig(1)
	if rounds == 0 {
		t.Fatal("ring rig executed no rounds")
	}
	if perRound := events / rounds; perRound < 200 {
		t.Fatalf("ring rig sync overhead regressed: %d events in %d rounds (%d events/round, floor 200)",
			events, rounds, perRound)
	}
}

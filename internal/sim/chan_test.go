package sim

import (
	"testing"
	"testing/quick"
)

func TestChanBufferedFIFO(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 4)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 8; i++ {
			c.Put(p, i)
		}
	})
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 8; i++ {
			p.Sleep(1)
			got = append(got, c.Get(p))
		}
	})
	k.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want 0..7 in order", got)
		}
	}
}

func TestChanProducerBlocksWhenFull(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 2)
	var thirdPutAt Time
	k.Spawn("producer", func(p *Proc) {
		c.Put(p, 0)
		c.Put(p, 1)
		c.Put(p, 2) // blocks until consumer takes one at t=50
		thirdPutAt = p.Now()
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Sleep(50)
		c.Get(p)
	})
	k.Run(0)
	if thirdPutAt != 50 {
		t.Fatalf("third Put unblocked at %v, want 50", thirdPutAt)
	}
}

func TestChanConsumerBlocksWhenEmpty(t *testing.T) {
	k := NewKernel()
	c := NewChan[string](k, 1)
	var got string
	var gotAt Time
	k.Spawn("consumer", func(p *Proc) {
		got = c.Get(p)
		gotAt = p.Now()
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(30)
		c.Put(p, "x")
	})
	k.Run(0)
	if got != "x" || gotAt != 30 {
		t.Fatalf("Get = %q at %v, want \"x\" at 30", got, gotAt)
	}
}

func TestChanRendezvous(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 0)
	var putDone, getDone Time
	k.Spawn("producer", func(p *Proc) {
		c.Put(p, 7)
		putDone = p.Now()
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Sleep(20)
		if v := c.Get(p); v != 7 {
			t.Errorf("Get = %d, want 7", v)
		}
		getDone = p.Now()
	})
	k.Run(0)
	if putDone != 20 || getDone != 20 {
		t.Fatalf("put done %v get done %v, want both 20", putDone, getDone)
	}
}

func TestChanTryOps(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 1)
	if _, ok := c.TryGet(); ok {
		t.Fatal("TryGet on empty channel succeeded")
	}
	if !c.TryPut(1) {
		t.Fatal("TryPut into empty channel failed")
	}
	if c.TryPut(2) {
		t.Fatal("TryPut into full channel succeeded")
	}
	if v, ok := c.Peek(); !ok || v != 1 {
		t.Fatalf("Peek = %d,%v want 1,true", v, ok)
	}
	if v, ok := c.TryGet(); !ok || v != 1 {
		t.Fatalf("TryGet = %d,%v want 1,true", v, ok)
	}
}

// Property: any interleaving of puts and gets preserves ordering — the
// channel never reorders or drops values.
func TestChanPreservesOrderProperty(t *testing.T) {
	f := func(capRaw uint8, nRaw uint8, gaps []uint8) bool {
		capacity := int(capRaw%8) + 1
		n := int(nRaw%64) + 1
		k := NewKernel()
		c := NewChan[int](k, capacity)
		var got []int
		k.Spawn("producer", func(p *Proc) {
			for i := 0; i < n; i++ {
				c.Put(p, i)
			}
		})
		k.Spawn("consumer", func(p *Proc) {
			for i := 0; i < n; i++ {
				d := Time(1)
				if len(gaps) > 0 {
					d = Time(gaps[i%len(gaps)]%5) + 1
				}
				p.Sleep(d)
				got = append(got, c.Get(p))
			}
		})
		k.Run(0)
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestResourceFIFO(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 10)
	var order []string
	k.Spawn("big", func(p *Proc) {
		r.Acquire(p, 8)
		p.Sleep(100)
		r.Release(8)
	})
	k.Spawn("blockedBig", func(p *Proc) {
		p.Sleep(1)
		r.Acquire(p, 8) // must wait for first release
		order = append(order, "big2")
		r.Release(8)
	})
	k.Spawn("small", func(p *Proc) {
		p.Sleep(2)
		// 2 units are free, but FIFO ordering holds this behind blockedBig.
		r.Acquire(p, 2)
		order = append(order, "small")
		r.Release(2)
	})
	k.Run(0)
	if len(order) != 2 || order[0] != "big2" || order[1] != "small" {
		t.Fatalf("order = %v, want [big2 small]", order)
	}
}

func TestResourceAccounting(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 5)
	k.Spawn("p", func(p *Proc) {
		r.Acquire(p, 3)
		if r.InUse() != 3 || r.Available() != 2 {
			t.Errorf("InUse=%d Available=%d, want 3/2", r.InUse(), r.Available())
		}
		if r.TryAcquire(3) {
			t.Error("TryAcquire beyond capacity succeeded")
		}
		if !r.TryAcquire(2) {
			t.Error("TryAcquire within capacity failed")
		}
		r.Release(5)
		if r.InUse() != 0 {
			t.Errorf("InUse=%d after full release", r.InUse())
		}
	})
	k.Run(0)
}

func TestResourceOverRelease(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 1)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	r.Release(1)
}

func TestPipeSerialization(t *testing.T) {
	k := NewKernel()
	// 1 GB/s, 10ns latency: 1000 bytes serialize in 1us.
	pp := NewPipe(k, 1e9, 10)
	d1 := pp.Reserve(1000)
	d2 := pp.Reserve(1000)
	if d1 != 1010 {
		t.Fatalf("first delivery %v, want 1010", d1)
	}
	if d2 != 2010 {
		t.Fatalf("second delivery %v, want 2010 (serialized after first)", d2)
	}
	if pp.BytesMoved() != 2000 || pp.Transfers() != 2 {
		t.Fatalf("stats = %d bytes / %d transfers", pp.BytesMoved(), pp.Transfers())
	}
}

func TestPipeIdleGap(t *testing.T) {
	k := NewKernel()
	pp := NewPipe(k, 1e9, 0)
	k.Spawn("p", func(p *Proc) {
		pp.Transfer(p, 1000) // done at 1us
		p.Sleep(5000)        // idle gap
		pp.Transfer(p, 1000) // starts fresh at 6us, done 7us
		if p.Now() != 7000 {
			t.Errorf("second transfer done at %v, want 7000", p.Now())
		}
	})
	k.Run(0)
}

func TestPipeAsyncCallback(t *testing.T) {
	k := NewKernel()
	pp := NewPipe(k, 1e9, 100)
	var at Time
	pp.TransferAsync(1000, func() { at = k.Now() })
	k.Run(0)
	if at != 1100 {
		t.Fatalf("callback at %v, want 1100", at)
	}
}

func TestMeterBandwidth(t *testing.T) {
	k := NewKernel()
	m := NewMeter(k)
	k.Spawn("p", func(p *Proc) {
		m.Start()
		p.Sleep(Second)
		m.Add(2e9)
	})
	k.Run(0)
	if got := m.GBps(); got < 1.999 || got > 2.001 {
		t.Fatalf("GBps = %v, want 2", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(Time(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 50 { // (5050/100) truncated
		t.Fatalf("Mean = %v, want 50", h.Mean())
	}
	if p := h.Percentile(50); p != 50 {
		t.Fatalf("p50 = %v, want 50", p)
	}
	if p := h.Percentile(99); p != 99 {
		t.Fatalf("p99 = %v, want 99", p)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		if v := r.Int63n(100); v < 0 || v >= 100 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestRandJitterBounds(t *testing.T) {
	r := NewRand(9)
	base := Time(1000)
	for i := 0; i < 10000; i++ {
		j := r.Jitter(base, 0.25)
		if j < 749 || j > 1251 {
			t.Fatalf("Jitter out of bounds: %v", j)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("zero-fraction jitter must return base")
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(11)
	out := make([]int, 32)
	r.Perm(out)
	seen := make([]bool, 32)
	for _, v := range out {
		if v < 0 || v >= 32 || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestServerSerializesWork(t *testing.T) {
	k := NewKernel()
	s := NewServer(k)
	d1 := s.Occupy(100)
	d2 := s.Occupy(50)
	if d1 != 100 || d2 != 150 {
		t.Fatalf("occupancy chain = %v, %v; want 100, 150", d1, d2)
	}
	if s.BusyTime() != 150 {
		t.Fatalf("BusyTime = %v", s.BusyTime())
	}
}

func TestServerIdleGap(t *testing.T) {
	k := NewKernel()
	s := NewServer(k)
	fired := Time(0)
	s.OccupyAnd(10, func() { fired = k.Now() })
	k.Run(0)
	if fired != 10 {
		t.Fatalf("callback at %v", fired)
	}
	// After idling to t=10, a new booking starts from now, not from zero.
	k.At(10, func() {})
	k.Run(0)
	if done := s.Occupy(5); done != 15 {
		t.Fatalf("post-idle occupancy ends at %v, want 15", done)
	}
}

func TestServerUtilization(t *testing.T) {
	k := NewKernel()
	s := NewServer(k)
	k.Spawn("p", func(p *Proc) {
		p.Sleep(s.Occupy(250) - p.Now())
		p.Sleep(750)
	})
	k.Run(0)
	u := s.Utilization(0)
	if u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %.3f, want 0.25", u)
	}
	s.ResetBusyTime()
	if s.BusyTime() != 0 {
		t.Fatal("ResetBusyTime did not clear")
	}
}

func TestServerNegativeDuration(t *testing.T) {
	k := NewKernel()
	s := NewServer(k)
	if done := s.Occupy(-5); done != 0 {
		t.Fatalf("negative occupancy ended at %v", done)
	}
}

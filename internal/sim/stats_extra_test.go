package sim

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramPercentileProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		vals := make([]Time, len(raw))
		for i, v := range raw {
			vals[i] = Time(v)
			h.Add(Time(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		// Order-statistic invariants: monotone in p, bounded by min/max,
		// p100 == max, p50 is the nearest-rank median.
		if h.Percentile(100) != vals[len(vals)-1] {
			return false
		}
		prev := Time(0)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(p)
			if v < prev || v < vals[0] || v > vals[len(vals)-1] {
				return false
			}
			prev = v
		}
		rank := int(math.Ceil(50.0/100*float64(len(vals)))) - 1
		return h.Percentile(50) == vals[rank]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramStddevAndString(t *testing.T) {
	var h Histogram
	for _, v := range []Time{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(v)
	}
	// Classic example: population stddev is exactly 2.
	if sd := h.Stddev(); math.Abs(sd-2) > 1e-9 {
		t.Errorf("stddev = %v, want 2", sd)
	}
	s := h.String()
	if !strings.Contains(s, "n=8") || !strings.Contains(s, "p99") {
		t.Errorf("summary %q missing fields", s)
	}
	var empty Histogram
	if empty.Stddev() != 0 || empty.Percentile(99) != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestMeterBytesAndUnits(t *testing.T) {
	k := NewKernel()
	m := NewMeter(k)
	m.Add(999) // before Start: ignored
	m.Start()
	k.Spawn("p", func(p *Proc) {
		p.Sleep(Second)
		m.Add(3e9)
	})
	k.Run(0)
	if m.Bytes() != 3e9 {
		t.Fatalf("Bytes = %d (pre-Start adds must not count)", m.Bytes())
	}
	if g := m.GBps(); math.Abs(g-3) > 1e-9 {
		t.Fatalf("GBps = %v, want 3", g)
	}
	if g := ToGBps(5e9); math.Abs(g-5) > 1e-9 {
		t.Fatalf("ToGBps = %v", g)
	}
}

func TestTimeSeconds(t *testing.T) {
	if s := (2500 * Millisecond).Seconds(); math.Abs(s-2.5) > 1e-12 {
		t.Fatalf("Seconds = %v, want 2.5", s)
	}
}

func TestChanLenCapPeek(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 4)
	if c.Cap() != 4 || c.Len() != 0 {
		t.Fatalf("fresh chan Len/Cap = %d/%d", c.Len(), c.Cap())
	}
	if _, ok := c.Peek(); ok {
		t.Fatal("Peek on empty chan returned a value")
	}
	if !c.TryPut(7) || !c.TryPut(8) {
		t.Fatal("TryPut into empty chan failed")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if v, ok := c.Peek(); !ok || v != 7 {
		t.Fatalf("Peek = %d/%v, want 7/true", v, ok)
	}
	if c.Len() != 2 {
		t.Fatal("Peek consumed a value")
	}
	c.TryPut(9)
	c.TryPut(10)
	if c.TryPut(11) {
		t.Fatal("TryPut into full chan succeeded")
	}
}

func TestPipeBusyUntilAndReset(t *testing.T) {
	k := NewKernel()
	p := NewPipe(k, 1e9, 0)
	if p.BusyUntil() != 0 {
		t.Fatal("fresh pipe busy")
	}
	end := p.Reserve(1e6) // 1 ms at 1 GB/s
	if p.BusyUntil() != end || end != Time(Millisecond) {
		t.Fatalf("BusyUntil = %v, want %v", p.BusyUntil(), Millisecond)
	}
	if p.BytesMoved() != 1e6 {
		t.Fatalf("BytesMoved = %d", p.BytesMoved())
	}
	p.ResetStats()
	if p.BytesMoved() != 0 {
		t.Fatal("ResetStats kept byte counter")
	}
}

func TestResourceCapacity(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 3)
	if r.Capacity() != 3 {
		t.Fatalf("Capacity = %d", r.Capacity())
	}
}

func TestServerBusyUntil(t *testing.T) {
	k := NewKernel()
	s := NewServer(k)
	if s.BusyUntil() != 0 {
		t.Fatal("fresh server busy")
	}
	if done := s.Occupy(100); done != 100 || s.BusyUntil() != 100 {
		t.Fatalf("BusyUntil after occupy = %v, want 100", s.BusyUntil())
	}
}

func TestRandRejectsZeroAndBounds(t *testing.T) {
	r := NewRand(0) // zero seed must still produce a usable stream
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Int63n(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d of 10 values seen", len(seen))
	}
}

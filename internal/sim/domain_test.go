package sim

import (
	"fmt"
	"strings"
	"testing"
)

// ringRig builds a 4-domain ring exercising everything the conservative
// scheduler must keep deterministic: staggered intra-domain event bursts,
// cross-domain sends with per-edge lookahead, and same-timestamp collisions.
// It returns one FNV-1a digest per domain over (event time, tag) — combined
// in domain order, the digests pin the execution byte-for-byte.
func ringRig(workers int) (digests []uint64, events uint64, rounds uint64) {
	const (
		domains  = 4
		look     = 50 * Nanosecond
		messages = 200
	)
	s := NewShard(workers)
	ds := make([]*Domain, domains)
	for i := range ds {
		ds[i] = s.AddDomain(fmt.Sprintf("d%d", i))
	}
	edges := make([]*Edge, domains)
	for i := range ds {
		edges[i] = s.MustConnect(ds[i], ds[(i+1)%domains], look)
	}
	dig := make([]uint64, domains)
	for i := range dig {
		dig[i] = 14695981039346656037
	}
	fold := func(d int, v uint64) {
		h := dig[d]
		h ^= v
		h *= 1099511628211
		dig[d] = h
	}
	rngs := make([]*Rand, domains)
	for i := range rngs {
		rngs[i] = NewRand(uint64(i + 1))
	}
	var hop func(d, remaining int)
	hop = func(d, remaining int) {
		k := ds[d].k
		fold(d, uint64(k.Now()))
		// A burst of local work, deliberately overlapping other messages'
		// timestamps so tie-breaking matters.
		for j := 0; j < 8; j++ {
			tag := uint64(remaining*100 + j)
			k.After(Time(rngs[d].Int63n(40)), func() { fold(d, uint64(k.Now())^tag) })
		}
		if remaining > 0 {
			next := (d + 1) % domains
			edges[d].At(k.Now()+look+Time(rngs[d].Int63n(30)), func() { hop(next, remaining-1) })
		}
	}
	for m := 0; m < messages; m++ {
		d0 := m % domains
		at := Time(m * 7)
		ds[d0].k.At(at, func() { hop(d0, 12) })
	}
	s.Run(0)
	return dig, s.EventsExecuted(), s.Rounds()
}

// TestShardDeterminismAcrossWorkers pins the core guarantee: the ring rig's
// per-domain digests, total event count and round count are identical at
// every worker count.
func TestShardDeterminismAcrossWorkers(t *testing.T) {
	refDig, refEvents, refRounds := ringRig(1)
	if refEvents == 0 {
		t.Fatal("ring rig executed no events")
	}
	for _, w := range []int{2, 4, 8} {
		dig, events, rounds := ringRig(w)
		if events != refEvents || rounds != refRounds {
			t.Fatalf("workers=%d: events/rounds = %d/%d, want %d/%d", w, events, rounds, refEvents, refRounds)
		}
		for i := range dig {
			if dig[i] != refDig[i] {
				t.Fatalf("workers=%d: domain %d digest %#x diverged from serial %#x", w, i, dig[i], refDig[i])
			}
		}
	}
}

// TestShardSingleDomainMatchesKernel pins graceful degradation: one domain,
// no edges, and the shard executes the exact same event sequence as a bare
// kernel — same times, same order, same executed count.
func TestShardSingleDomainMatchesKernel(t *testing.T) {
	build := func(k *Kernel) *[]Time {
		var trace []Time
		rng := NewRand(7)
		for i := 0; i < 500; i++ {
			k.At(Time(rng.Int63n(1000)), func() { trace = append(trace, k.Now()) })
		}
		return &trace
	}
	plain := NewKernel()
	wantTrace := build(plain)
	plainEnd := plain.Run(0)

	s := NewShard(4)
	d := s.AddDomain("sys")
	gotTrace := build(d.Kernel())
	end := s.Run(0)

	if end != plainEnd {
		t.Fatalf("shard end time %v, kernel end time %v", end, plainEnd)
	}
	if s.EventsExecuted() != plain.EventsExecuted() {
		t.Fatalf("shard executed %d events, kernel %d", s.EventsExecuted(), plain.EventsExecuted())
	}
	if len(*gotTrace) != len(*wantTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(*gotTrace), len(*wantTrace))
	}
	for i := range *gotTrace {
		if (*gotTrace)[i] != (*wantTrace)[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, (*gotTrace)[i], (*wantTrace)[i])
		}
	}
}

// TestShardCrossDomainTieBreak pins the barrier merge order: same-timestamp
// deliveries from different source domains execute in (domain id, sequence)
// order at every worker count.
func TestShardCrossDomainTieBreak(t *testing.T) {
	run := func(workers int) []string {
		s := NewShard(workers)
		sink := s.AddDomain("sink")
		srcA := s.AddDomain("a")
		srcB := s.AddDomain("b")
		ea := s.MustConnect(srcA, sink, 10)
		eb := s.MustConnect(srcB, sink, 10)
		var order []string
		// Both sources schedule deliveries for the same destination
		// timestamp, from events at the same source timestamp. srcB's
		// kernel event is scheduled before srcA's, so kernel scheduling
		// order must not leak into the merge order.
		srcB.Kernel().At(5, func() {
			eb.At(20, func() { order = append(order, "b1") })
			eb.At(20, func() { order = append(order, "b2") })
		})
		srcA.Kernel().At(5, func() {
			ea.At(20, func() { order = append(order, "a1") })
		})
		s.Run(0)
		return order
	}
	want := "a1,b1,b2" // domain a (id 1) merges before b (id 2); b's sends keep their sequence order
	for _, w := range []int{1, 2, 4} {
		if got := strings.Join(run(w), ","); got != want {
			t.Fatalf("workers=%d: delivery order %q, want %q", w, got, want)
		}
	}
}

// TestConnectValidation pins the build-time rejection of partitions that
// could never synchronize.
func TestConnectValidation(t *testing.T) {
	s := NewShard(2)
	a := s.AddDomain("a")
	b := s.AddDomain("b")
	if _, err := s.Connect(a, b, 0); err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("zero lookahead: got err %v, want lookahead error", err)
	}
	if _, err := s.Connect(a, b, -5); err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("negative lookahead: got err %v, want lookahead error", err)
	}
	if _, err := s.Connect(a, a, 10); err == nil {
		t.Fatal("self edge accepted")
	}
	if _, err := s.Connect(nil, b, 10); err == nil {
		t.Fatal("nil domain accepted")
	}
	other := NewShard(2)
	c := other.AddDomain("c")
	if _, err := s.Connect(a, c, 10); err == nil {
		t.Fatal("cross-shard edge accepted")
	}
	e, err := s.Connect(a, b, 10)
	if err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if e.Lookahead() != 10 || e.From() != a || e.To() != b {
		t.Fatalf("edge accessors wrong: look=%v from=%s to=%s", e.Lookahead(), e.From().Name(), e.To().Name())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustConnect did not panic on invalid edge")
			}
		}()
		s.MustConnect(a, a, 10)
	}()
}

// TestEdgeLookaheadViolationPanics pins the runtime guard: scheduling a
// cross-domain event closer than the declared lookahead is a model bug and
// must fail loudly, not corrupt the horizon.
func TestEdgeLookaheadViolationPanics(t *testing.T) {
	s := NewShard(1)
	a := s.AddDomain("a")
	b := s.AddDomain("b")
	e := s.MustConnect(a, b, 100)
	a.Kernel().At(50, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("lookahead violation did not panic")
			} else if !strings.Contains(fmt.Sprint(r), "lookahead") {
				t.Errorf("panic %v does not mention lookahead", r)
			}
			panicOK := fmt.Errorf("rethrow")
			_ = panicOK
		}()
		e.At(a.Kernel().Now()+99, func() {})
	})
	s.Run(0)
}

// TestShardDeadlockPanics pins shard-wide deadlock detection, including the
// offending domain's name in the message.
func TestShardDeadlockPanics(t *testing.T) {
	s := NewShard(2)
	a := s.AddDomain("alpha")
	b := s.AddDomain("beta")
	s.MustConnect(a, b, 10)
	a.Kernel().Spawn("stuck", func(p *Proc) { p.Park() })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("deadlocked shard did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "alpha") {
			t.Fatalf("panic %q does not identify the deadlock and domain", msg)
		}
	}()
	s.Run(0)
}

// TestShardDaemonsIdleCleanly pins the daemon exemption: parked daemon
// service loops are not a deadlock.
func TestShardDaemonsIdleCleanly(t *testing.T) {
	s := NewShard(2)
	a := s.AddDomain("a")
	b := s.AddDomain("b")
	e := s.MustConnect(a, b, 10)
	got := 0
	var svc *Proc
	svc = b.Kernel().Spawn("svc", func(p *Proc) {
		p.SetDaemon(true)
		for {
			p.Park()
			got++
		}
	})
	a.Kernel().At(5, func() { e.At(20, func() { svc.Wake() }) })
	s.Run(0)
	if got != 1 {
		t.Fatalf("daemon woken %d times, want 1", got)
	}
}

// TestShardHorizon pins horizon semantics across domains: events at or
// before the horizon run, later events stay pending, and a subsequent Run
// resumes them.
func TestShardHorizon(t *testing.T) {
	s := NewShard(2)
	a := s.AddDomain("a")
	b := s.AddDomain("b")
	e := s.MustConnect(a, b, 5)
	var fired []Time
	a.Kernel().At(10, func() {
		fired = append(fired, 10)
		e.At(30, func() { fired = append(fired, 30) })
	})
	a.Kernel().At(15, func() { fired = append(fired, 15) })
	if end := s.Run(15); end != 15 {
		t.Fatalf("Run(15) = %v, want 15", end)
	}
	if want := []Time{10, 15}; fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired %v before horizon, want %v", fired, want)
	}
	if s.Now() != 15 {
		t.Fatalf("Now() = %v after horizon, want 15", s.Now())
	}
	if end := s.Run(0); end != 30 {
		t.Fatalf("resumed Run = %v, want 30", end)
	}
	if len(fired) != 3 || fired[2] != 30 {
		t.Fatalf("pending cross event did not resume: %v", fired)
	}
}

// TestShardStop pins Stop: the run returns after the current round and a
// later Run picks the remaining events back up.
func TestShardStop(t *testing.T) {
	s := NewShard(1)
	a := s.AddDomain("a")
	b := s.AddDomain("b")
	s.MustConnect(a, b, 1000)
	ran := 0
	a.Kernel().At(10, func() { ran++; s.Stop() })
	a.Kernel().At(5000, func() { ran++ })
	s.Run(0)
	if ran != 1 {
		t.Fatalf("ran %d events before Stop, want 1", ran)
	}
	s.Run(0)
	if ran != 2 {
		t.Fatalf("ran %d events after resume, want 2", ran)
	}
}

// TestEdgeAfter pins the relative-time helper.
func TestEdgeAfter(t *testing.T) {
	s := NewShard(1)
	a := s.AddDomain("a")
	b := s.AddDomain("b")
	e := s.MustConnect(a, b, 7)
	var at Time = -1
	a.Kernel().At(100, func() { e.After(7, func() { at = b.Kernel().Now() }) })
	s.Run(0)
	if at != 107 {
		t.Fatalf("After(7) delivered at %v, want 107", at)
	}
}

// TestShardZeroAllocIntraDomain extends the kernel's 0 allocs/op guarantee
// to sharded execution: steady-state intra-domain scheduling under the
// conservative loop allocates nothing, even with edges declared.
func TestShardZeroAllocIntraDomain(t *testing.T) {
	s := NewShard(1)
	a := s.AddDomain("a")
	b := s.AddDomain("b")
	s.MustConnect(a, b, 100)
	k := a.Kernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n%256 != 0 {
			k.After(10, tick)
		}
	}
	// Warm: grow the queue backing array and the run bookkeeping.
	k.After(1, tick)
	s.Run(0)
	allocs := testing.AllocsPerRun(16, func() {
		k.After(10, tick)
		s.Run(0)
	})
	if allocs > 0 {
		t.Fatalf("intra-domain sharded hot path allocates %.1f/run, want 0", allocs)
	}
}

// TestPlanValidateBuild pins the declarative partition helper.
func TestPlanValidateBuild(t *testing.T) {
	bad := []Plan{
		{},
		{Domains: []string{""}},
		{Domains: []string{"a", "a"}},
		{Domains: []string{"a"}, Edges: []EdgeSpec{{Src: "a", Dst: "ghost", Lookahead: 5}}},
		{Domains: []string{"a", "b"}, Edges: []EdgeSpec{{Src: "a", Dst: "b", Lookahead: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated", i)
		}
		if _, _, err := p.Build(NewShard(1)); err == nil {
			t.Errorf("bad plan %d built", i)
		}
	}
	p := Plan{
		Domains: []string{"eth", "pcie", "nvme0"},
		Edges: []EdgeSpec{
			{Src: "eth", Dst: "pcie", Lookahead: 500},
			{Src: "pcie", Dst: "eth", Lookahead: 500},
			{Src: "pcie", Dst: "nvme0", Lookahead: 450},
			{Src: "nvme0", Dst: "pcie", Lookahead: 450},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	if got := p.MinLookahead(); got != 450 {
		t.Fatalf("MinLookahead = %v, want 450", got)
	}
	if (Plan{Domains: []string{"x"}}).MinLookahead() != 0 {
		t.Fatal("edgeless plan MinLookahead != 0")
	}
	s := NewShard(2)
	domains, edges, err := p.Build(s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(domains) != 3 || len(edges) != 4 {
		t.Fatalf("Build returned %d domains, %d edges", len(domains), len(edges))
	}
	if e := edges["pcie->nvme0"]; e == nil || e.From() != domains["pcie"] || e.To() != domains["nvme0"] || e.Lookahead() != 450 {
		t.Fatalf("edge map wrong: %+v", edges)
	}
	if len(s.Domains()) != 3 || s.Workers() != 2 {
		t.Fatalf("shard state wrong: %d domains, %d workers", len(s.Domains()), s.Workers())
	}
}

// TestShardProcsAndChansWithinDomains pins that the cooperative process
// model (Chan rendezvous, Sleep) works unchanged inside domains while cross
// effects ride the edges.
func TestShardProcsAndChansWithinDomains(t *testing.T) {
	run := func(workers int) []int64 {
		s := NewShard(workers)
		prod := s.AddDomain("prod")
		cons := s.AddDomain("cons")
		e := s.MustConnect(prod, cons, 25)
		outK := cons.Kernel()
		inbox := NewChan[int64](outK, 4)
		var got []int64
		outK.Spawn("consumer", func(p *Proc) {
			for i := 0; i < 20; i++ {
				v := inbox.Get(p)
				got = append(got, v+int64(p.Now()))
			}
		})
		prod.Kernel().Spawn("producer", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Sleep(Time(10 + i%3))
				v := int64(i * 100)
				e.After(25, func() {
					if !inbox.TryPut(v) {
						panic("inbox overflow")
					}
				})
			}
		})
		s.Run(0)
		return got
	}
	ref := run(1)
	if len(ref) != 20 {
		t.Fatalf("consumed %d values, want 20", len(ref))
	}
	for _, w := range []int{2, 4} {
		if got := run(w); fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Fatalf("workers=%d diverged:\n%v\nwant\n%v", w, got, ref)
		}
	}
}

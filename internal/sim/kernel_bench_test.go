package sim

import (
	"fmt"
	"testing"
)

// BenchmarkKernelSchedule measures the push/pop hot path: schedule a batch
// of events at staggered timestamps and drain them. The inlined 4-ary heap
// must run at 0 allocs/op in steady state (container/heap boxed every event
// through interface{}, costing one allocation per Push).
func BenchmarkKernelSchedule(b *testing.B) {
	k := NewKernel()
	nop := func() {}
	const batch = 256
	// Warm the queue's backing array to its high-water mark so growth
	// allocations do not pollute the steady-state measurement.
	for j := 0; j < batch; j++ {
		k.At(k.Now()+Time(j%17), nop)
	}
	k.Run(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := k.Now()
		for j := 0; j < batch; j++ {
			k.At(base+Time(j%17), nop)
		}
		k.Run(0)
	}
	b.StopTimer()
	if k.EventsExecuted() == 0 {
		b.Fatal("no events executed")
	}
}

// BenchmarkKernelScheduleDeep exercises the heap at a sustained depth of
// 4096 pending events, the regime of a busy multi-rig simulation.
func BenchmarkKernelScheduleDeep(b *testing.B) {
	k := NewKernel()
	nop := func() {}
	const depth = 4096
	for j := 0; j < depth; j++ {
		k.At(k.Now()+Time(j%61)+1, nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Pop one event, push a replacement: constant-depth churn.
		e := k.queue.pop()
		k.finishPop(&e)
		k.now = e.at
		k.executed++
		k.At(k.now+Time(i%61)+1, nop)
	}
	b.StopTimer()
	k.queue.ev = nil // drop pending events; this kernel is not reused
}

// BenchmarkKernelHorizon measures repeated Run calls that hit the horizon:
// the peek-before-pop path must not re-heapify the over-horizon event.
func BenchmarkKernelHorizon(b *testing.B) {
	k := NewKernel()
	nop := func() {}
	k.At(1<<50, nop) // far-future event keeps the queue non-empty
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Run(k.Now() + 10)
	}
}

// BenchmarkKernelCrossDomain measures the inter-domain handoff: one event
// sent over an edge, merged at the barrier, and executed in the destination
// kernel. The reported allocs/op are the cross-domain send cost (the
// closure plus outbox bookkeeping); the intra-domain path stays at 0 (see
// BenchmarkKernelSchedule and BenchmarkShardedIntraDomain).
func BenchmarkKernelCrossDomain(b *testing.B) {
	s := NewShard(1)
	a := s.AddDomain("a")
	c := s.AddDomain("b")
	ab := s.MustConnect(a, c, 10)
	ba := s.MustConnect(c, a, 10)
	const (
		batch = 256
		hops  = 4
	)
	n := 0
	left := 0
	var ping, pong func()
	start := func() { left = hops; ping() }
	ping = func() {
		n++
		if left--; left > 0 {
			ab.After(10, pong)
		}
	}
	pong = func() { n++; ba.After(10, ping) }
	// Warm the outboxes, inbox and queues to their high-water marks.
	for j := 0; j < batch; j++ {
		a.Kernel().At(Time(j), start)
	}
	s.Run(0)
	warmCross := s.CrossEvents()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := a.Kernel().Now()
		for j := 0; j < batch; j++ {
			a.Kernel().At(base+Time(j), start)
		}
		s.Run(0)
	}
	b.StopTimer()
	if n == 0 {
		b.Fatal("no cross-domain events executed")
	}
	crossed := s.CrossEvents() - warmCross
	if crossed == 0 {
		b.Fatal("no cross-domain handoffs during timed region")
	}
	b.ReportMetric(float64(crossed)/b.Elapsed().Seconds(), "crossevents/s")
}

// BenchmarkShardedIntraDomain extends the 0 allocs/op guarantee to the
// sharded scheduler: steady-state local scheduling inside a domain, with
// edges declared and the conservative window loop active.
func BenchmarkShardedIntraDomain(b *testing.B) {
	s := NewShard(1)
	a := s.AddDomain("a")
	c := s.AddDomain("b")
	s.MustConnect(a, c, 1000)
	k := a.Kernel()
	nop := func() {}
	const batch = 256
	for j := 0; j < batch; j++ {
		k.At(k.Now()+Time(j%17), nop)
	}
	s.Run(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := k.Now()
		for j := 0; j < batch; j++ {
			k.At(base+Time(j%17), nop)
		}
		s.Run(0)
	}
}

// BenchmarkShardedRing drives the 4-domain determinism rig shape at each
// worker count so `go test -bench ShardedRing` shows the raw conservative-
// sync scaling on the host (see bench.KernelSweep for the calibrated chain).
// Every iteration's per-domain digests are cross-checked against a serial
// reference run, so the race-detector smoke pass (`make bench-smoke`) doubles
// as a determinism check on the concurrent round loop.
func BenchmarkShardedRing(b *testing.B) {
	want, _, _ := ringRig(1)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				digests, n, _ := ringRig(w)
				events += n
				for d, got := range digests {
					if got != want[d] {
						b.Fatalf("workers=%d domain %d digest %016x != serial %016x (determinism violation)",
							w, d, got, want[d])
					}
				}
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

package sim

import (
	"testing"
)

// BenchmarkKernelSchedule measures the push/pop hot path: schedule a batch
// of events at staggered timestamps and drain them. The inlined 4-ary heap
// must run at 0 allocs/op in steady state (container/heap boxed every event
// through interface{}, costing one allocation per Push).
func BenchmarkKernelSchedule(b *testing.B) {
	k := NewKernel()
	nop := func() {}
	const batch = 256
	// Warm the queue's backing array to its high-water mark so growth
	// allocations do not pollute the steady-state measurement.
	for j := 0; j < batch; j++ {
		k.At(k.Now()+Time(j%17), nop)
	}
	k.Run(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := k.Now()
		for j := 0; j < batch; j++ {
			k.At(base+Time(j%17), nop)
		}
		k.Run(0)
	}
	b.StopTimer()
	if k.EventsExecuted() == 0 {
		b.Fatal("no events executed")
	}
}

// BenchmarkKernelScheduleDeep exercises the heap at a sustained depth of
// 4096 pending events, the regime of a busy multi-rig simulation.
func BenchmarkKernelScheduleDeep(b *testing.B) {
	k := NewKernel()
	nop := func() {}
	const depth = 4096
	for j := 0; j < depth; j++ {
		k.At(k.Now()+Time(j%61)+1, nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Pop one event, push a replacement: constant-depth churn.
		e := k.queue.pop()
		k.now = e.at
		k.executed++
		k.At(k.now+Time(i%61)+1, nop)
	}
	b.StopTimer()
	k.queue.ev = nil // drop pending events; this kernel is not reused
}

// BenchmarkKernelHorizon measures repeated Run calls that hit the horizon:
// the peek-before-pop path must not re-heapify the over-horizon event.
func BenchmarkKernelHorizon(b *testing.B) {
	k := NewKernel()
	nop := func() {}
	k.At(1<<50, nop) // far-future event keeps the queue non-empty
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Run(k.Now() + 10)
	}
}

package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// maxTime is the +infinity sentinel for horizon arithmetic.
const maxTime = Time(1<<63 - 1)

// This file implements conservative-parallel discrete-event simulation over
// multiple Kernels ("domains"). The partition follows the modeled hardware:
// components that exchange events only across links with a known minimum
// latency (an Ethernet wire, a PCIe hop) can live in separate domains, and
// that latency becomes the edge's *lookahead* — the guarantee that a domain
// executing at time t cannot receive a new event before t+lookahead.
//
// Synchronization is barrier-based with *per-domain safe times*. Every
// round the shard computes, for each domain u, a lower bound est(u) on the
// time of u's next cross-domain send (null-message style earliest output
// time):
//
//	est(u) = min( queueEst(u),
//	              min over inbound edges (w,u) of
//	                  est(w) + lookahead(w,u) + turnaround(u) )
//
// where turnaround(u) is the domain's declared minimum arrival-to-send
// delay (0 unless the model promises more — see SetTurnaround) and
// queueEst(u) bounds the next send u's pending queue could produce: its
// earliest pending event head(u) in general (+inf when the queue is empty),
// but head(u)+turnaround(u) when everything pending up to the head is a
// barrier-delivered arrival — a locally scheduled event may send the moment
// it runs, while an arrival's transitive sends are covered by the
// turnaround contract (Kernel.earliestSend tracks which case holds in
// O(1)). The fixpoint is a Bellman-Ford relaxation over the edge list;
// positive lookaheads make it converge in at most |domains| passes.
// A domain's execution window is then
//
//	window(d) = min over inbound edges (w,d) of est(w) + lookahead(w,d)
//
// so a domain fed only through slow links (an Ethernet wire) takes windows
// as wide as those links allow, and a domain whose upstream senders are all
// drained runs clear to its own queue tail — instead of every domain
// marching in lockstep by the single global minimum lookahead. A domain
// whose queue head is at or beyond its window is elided from the round
// entirely: no runWindow call, no slot in the worker hand-off.
//
// Each round, every non-elided domain executes events strictly below its
// window in parallel on a persistent worker pool (spawned once per Run,
// released on a reusable channel barrier each round — not re-created per
// round). Cross-domain events produced during the round are buffered per
// source domain and merged at the barrier in (timestamp, source-domain id,
// source sequence) order, so the destination kernel assigns its
// tie-breaking sequence numbers identically at any worker count — results
// are byte-identical whether the round ran on one worker or sixteen. The
// windows themselves are pure functions of barrier-time queue state, so the
// round structure — and therefore every delivery point — is also identical
// at any worker count.

// Domain is one sub-kernel of a Shard: a private Kernel plus the outbox for
// cross-domain events it produces. All model state built on the domain's
// Kernel is owned by the domain and must never be touched from another
// domain except through Edge deliveries.
type Domain struct {
	s    *Shard
	id   int
	name string
	k    *Kernel

	// out buffers cross-domain events produced during the current round;
	// only this domain's worker appends, so no locking. The backing array
	// is recycled across rounds.
	out []xevent
	// xseq orders this domain's cross-domain sends for deterministic
	// barrier merging.
	xseq uint64
	// turnaround is the declared minimum delay between an inbound
	// cross-domain arrival and any cross-domain send it transitively
	// causes (see SetTurnaround). Zero promises nothing.
	turnaround Time
	// window is the current round's execution bound, written at the
	// barrier and read by whichever pool worker runs the domain.
	window Time
}

// SetTurnaround declares the domain's minimum arrival-to-send delay: a
// promise that any cross-domain send transitively caused by an inbound
// cross-domain arrival at time t is delivered at or after t+min+lookahead —
// equivalently, issued no earlier than a local event t+min could issue it.
// It models the node's service time (NVMe command processing, flash media
// latency, switch store-and-forward) the same way an edge's lookahead
// models the link, and it widens every downstream window by stretching the
// earliest-output-time bound whenever the domain's pending work is all
// inbound arrivals. Sends issued directly from an arrival event are checked
// against the promise at the Edge.At call; sends issued from later local
// events are the model's to keep honest — like a lookahead violation, a
// breach that would actually reorder events is caught by the destination
// kernel's scheduling-in-the-past panic, not silently absorbed. Zero (the
// default) promises nothing and must be used when in doubt.
func (d *Domain) SetTurnaround(min Time) {
	if min < 0 {
		panic(fmt.Sprintf("sim: negative turnaround %v for domain %s", min, d.name))
	}
	d.turnaround = min
}

// Turnaround returns the declared minimum arrival-to-send delay.
func (d *Domain) Turnaround() Time { return d.turnaround }

// Kernel returns the domain's private simulation kernel.
func (d *Domain) Kernel() *Kernel { return d.k }

// Name returns the name given at AddDomain.
func (d *Domain) Name() string { return d.name }

// ID returns the domain's index in its shard, the tie-breaking key for
// same-timestamp cross-domain deliveries.
func (d *Domain) ID() int { return d.id }

// xevent is one cross-domain event in flight: scheduled by a source domain,
// delivered into the destination kernel at the next barrier.
type xevent struct {
	at  Time
	src int
	seq uint64
	dst int
	fn  func()
}

// Edge is a declared communication channel from one domain to another with
// a positive lookahead: every event sent over the edge must be scheduled at
// least lookahead after the sender's current time. The lookahead is the
// modeled link latency (Ethernet wire delay, PCIe hop latency), so model
// code that already defers remote effects by the link latency satisfies the
// constraint naturally.
type Edge struct {
	src, dst  *Domain
	lookahead Time
	muted     bool
}

// Lookahead returns the edge's declared minimum latency.
func (e *Edge) Lookahead() Time { return e.lookahead }

// Mute promises that this workload never sends on the edge: At/After panic,
// and the conservative scheduler drops the edge from the safe-time graph,
// so the destination's window is no longer throttled by a channel that is
// declared in the topology but idle in the scenario (the chain rig's
// pause-frame path, a cluster link with no traffic this run). The promise
// is enforced, not trusted — a muted send fails loudly at the call site.
func (e *Edge) Mute() { e.muted = true }

// Muted reports whether Mute was called.
func (e *Edge) Muted() bool { return e.muted }

// From returns the source domain.
func (e *Edge) From() *Domain { return e.src }

// To returns the destination domain.
func (e *Edge) To() *Domain { return e.dst }

// At schedules fn to run in the destination domain at absolute time t,
// which must honor the edge's lookahead relative to the source domain's
// current time. Must be called from the source domain (during one of its
// events or processes, or before the shard runs).
func (e *Edge) At(t Time, fn func()) {
	src := e.src
	if e.muted {
		panic(fmt.Sprintf("sim: cross-domain event %s->%s at %v on a muted edge", src.name, e.dst.name, t))
	}
	if t < src.k.now+e.lookahead {
		panic(fmt.Sprintf("sim: cross-domain event %s->%s at %v violates lookahead %v (source now %v)",
			src.name, e.dst.name, t, e.lookahead, src.k.now))
	}
	if src.k.inSilent {
		panic(fmt.Sprintf("sim: silent event in domain %s performs a cross-domain send %s->%s at %v (AtSilent promises no sends)",
			src.name, src.name, e.dst.name, t))
	}
	if src.k.inArrival && t < src.k.now+src.turnaround+e.lookahead {
		panic(fmt.Sprintf("sim: domain %s declares turnaround %v but a cross-domain arrival at %v sends %s->%s for delivery at %v (need >= arrival+turnaround+lookahead)",
			src.name, src.turnaround, src.k.now, src.name, e.dst.name, t))
	}
	src.xseq++
	src.out = append(src.out, xevent{at: t, src: src.id, seq: src.xseq, dst: e.dst.id, fn: fn})
}

// After schedules fn in the destination domain d after the source domain's
// current time; d must be at least the edge's lookahead.
func (e *Edge) After(d Time, fn func()) { e.At(e.src.k.now+d, fn) }

// Shard is a conservative-parallel scheduler over communicating domains.
// Create one with NewShard, partition the model with AddDomain, declare
// every cross-domain link with Connect, then Run. With a single domain and
// no edges, Run degenerates to the domain kernel's ordinary serial drain.
type Shard struct {
	workers int
	domains []*Domain
	edges   []*Edge

	// inbox is the recycled barrier merge buffer; sorter wraps it for a
	// zero-allocation sort.Sort at the barrier (sort.Slice would allocate
	// its reflect-based swapper on every round).
	inbox  []xevent
	sorter xeventSorter

	// est is the recycled earliest-send-time scratch for the per-round
	// safe-time fixpoint; active is the recycled list of domains that
	// actually execute this round (elided domains never enter it).
	est    []Time
	active []*Domain

	// Persistent round pool: poolHelpers goroutines spawned lazily on the
	// first multi-domain round of a Run, parked on poolStart between
	// rounds, and released by closing the channel when Run returns. next
	// is the atomic work-steal cursor into active.
	poolStart   chan struct{}
	poolHelpers int
	poolDone    sync.WaitGroup
	next        int64

	// Stats (see SyncStats).
	rounds           uint64
	crossDelivered   uint64
	elided           uint64
	unboundedWindows uint64
	widest           Time
	narrowest        Time // 0 until the first finite window is observed
}

// NewShard returns an empty shard. workers <= 0 selects GOMAXPROCS; the
// per-round concurrency is additionally capped by the domain count.
// workers == 1 executes every round inline on the caller's goroutine in
// domain order — the exact serial code path, with no pool involved.
func NewShard(workers int) *Shard {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Shard{workers: workers}
}

// Workers returns the configured worker budget.
func (s *Shard) Workers() int { return s.workers }

// AddDomain creates a new domain with its own kernel.
func (s *Shard) AddDomain(name string) *Domain {
	d := &Domain{s: s, id: len(s.domains), name: name, k: NewKernel()}
	s.domains = append(s.domains, d)
	return d
}

// Domains returns the shard's domains in id order.
func (s *Shard) Domains() []*Domain { return s.domains }

// Connect declares a directed edge from src to dst with the given
// lookahead. A non-positive lookahead is rejected: conservative
// synchronization advances the global window by the minimum lookahead each
// round, so a zero or negative value could never make progress — the error
// surfaces at build time instead of as a runtime deadlock.
func (s *Shard) Connect(src, dst *Domain, lookahead Time) (*Edge, error) {
	if src == nil || dst == nil {
		return nil, fmt.Errorf("sim: Connect with nil domain")
	}
	if src.s != s || dst.s != s {
		return nil, fmt.Errorf("sim: Connect %s->%s across different shards", src.name, dst.name)
	}
	if src == dst {
		return nil, fmt.Errorf("sim: Connect %s->%s: a domain cannot have an edge to itself (use Kernel.At)", src.name, dst.name)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: Connect %s->%s: lookahead %v must be positive (conservative sync cannot advance past a zero-lookahead edge)",
			src.name, dst.name, lookahead)
	}
	e := &Edge{src: src, dst: dst, lookahead: lookahead}
	s.edges = append(s.edges, e)
	return e, nil
}

// MustConnect is Connect, panicking on error (rig builders with static
// topologies).
func (s *Shard) MustConnect(src, dst *Domain, lookahead Time) *Edge {
	e, err := s.Connect(src, dst, lookahead)
	if err != nil {
		panic(err)
	}
	return e
}

// EventsExecuted sums event executions across all domains — the same work
// metric as Kernel.EventsExecuted.
func (s *Shard) EventsExecuted() uint64 {
	var n uint64
	for _, d := range s.domains {
		n += d.k.executed
	}
	return n
}

// Rounds returns the number of synchronization windows executed.
func (s *Shard) Rounds() uint64 { return s.rounds }

// CrossEvents returns the number of cross-domain events delivered.
func (s *Shard) CrossEvents() uint64 { return s.crossDelivered }

// SyncStats summarizes the conservative scheduler's overhead: how many
// barrier rounds the run took, how much useful work each round carried, how
// often idle domains were elided from rounds entirely, and the spread of
// per-domain window widths the safe-time computation produced. Every field
// is a pure function of barrier-time queue state, so the numbers are
// identical at any worker count.
type SyncStats struct {
	// Rounds is the number of synchronization windows executed; Events and
	// CrossEvents are the work they carried. EventsPerRound is their ratio
	// — the sync-overhead headline (higher is better).
	Rounds         uint64
	Events         uint64
	CrossEvents    uint64
	EventsPerRound float64
	// ElidedDomainRounds counts domain×round slots skipped because the
	// domain's queue head was at or beyond its window (including drained
	// domains) — rounds that cost neither a runWindow call nor a worker
	// hand-off.
	ElidedDomainRounds uint64
	// UnboundedWindows counts executed domain-rounds whose safe time was
	// unbounded (no inbound edge could ever constrain them), letting the
	// domain run clear to its queue tail.
	UnboundedWindows uint64
	// WidestWindow and NarrowestWindow are the extreme finite window
	// widths (window minus the domain's queue head) over all executed
	// domain-rounds; both are 0 when no finite window was observed.
	WidestWindow    Time
	NarrowestWindow Time
}

// SyncStats returns the synchronization-overhead counters accumulated so
// far (across Run calls, like Rounds and EventsExecuted).
func (s *Shard) SyncStats() SyncStats {
	st := SyncStats{
		Rounds:             s.rounds,
		Events:             s.EventsExecuted(),
		CrossEvents:        s.crossDelivered,
		ElidedDomainRounds: s.elided,
		UnboundedWindows:   s.unboundedWindows,
		WidestWindow:       s.widest,
		NarrowestWindow:    s.narrowest,
	}
	if st.Rounds > 0 {
		st.EventsPerRound = float64(st.Events) / float64(st.Rounds)
	}
	return st
}

// Now returns the maximum current time across domains — the shard-level
// analogue of Kernel.Now after a Run.
func (s *Shard) Now() Time {
	var t Time
	for _, d := range s.domains {
		if d.k.now > t {
			t = d.k.now
		}
	}
	return t
}

// Stop makes Run return after the current synchronization round.
func (s *Shard) Stop() {
	for _, d := range s.domains {
		d.k.Stop()
	}
}

// deliver drains every domain's outbox into the destination kernels in
// (timestamp, source domain, source sequence) order. Scheduling order
// determines the destination kernel's tie-breaking sequence numbers, so the
// deterministic merge keeps results independent of the worker count.
func (s *Shard) deliver() {
	buf := s.inbox[:0]
	for _, d := range s.domains {
		buf = append(buf, d.out...)
		for i := range d.out {
			d.out[i] = xevent{} // drop fn references for the collector
		}
		d.out = d.out[:0]
	}
	if len(buf) > 1 {
		s.sorter.ev = buf
		sort.Sort(&s.sorter)
		s.sorter.ev = nil
	}
	for i := range buf {
		e := &buf[i]
		s.domains[e.dst].k.atArrival(e.at, e.fn)
		buf[i] = xevent{}
	}
	s.crossDelivered += uint64(len(buf))
	s.inbox = buf[:0]
}

// xeventSorter orders the barrier merge buffer by (timestamp, source
// domain id, source sequence) — the deterministic cross-domain delivery
// order. It exists (instead of sort.Slice) so the barrier stays
// allocation-free.
type xeventSorter struct{ ev []xevent }

func (x *xeventSorter) Len() int      { return len(x.ev) }
func (x *xeventSorter) Swap(i, j int) { x.ev[i], x.ev[j] = x.ev[j], x.ev[i] }
func (x *xeventSorter) Less(i, j int) bool {
	a, b := &x.ev[i], &x.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// lbts returns the earliest pending event timestamp across all domains, or
// maxTime when every queue is empty. Outboxes must have been delivered.
func (s *Shard) lbts() Time {
	t := maxTime
	for _, d := range s.domains {
		if q := &d.k.queue; q.len() > 0 && q.ev[0].at < t {
			t = q.ev[0].at
		}
	}
	return t
}

// Run executes the conservative synchronization loop until every domain
// drains, Stop is called, or the optional horizon is reached (horizon <= 0
// means none). It returns the time of the last executed event (or the
// horizon when it was hit), mirroring Kernel.Run.
//
// Like Kernel.Run, it panics when the simulation deadlocks: every queue
// empty, nothing in flight, and non-daemon processes still parked.
func (s *Shard) Run(horizon Time) Time {
	for _, d := range s.domains {
		d.k.stopped = false
	}
	defer s.releasePool()
	for {
		s.deliver()
		lbts := s.lbts()
		if lbts == maxTime {
			s.checkDeadlock()
			return s.Now()
		}
		if horizon > 0 && lbts > horizon {
			// Mirror the serial kernel: advance to the horizon and leave
			// over-horizon events pending.
			for _, d := range s.domains {
				if d.k.now < horizon {
					d.k.now = horizon
				}
			}
			return horizon
		}
		s.computeRound(horizon)
		s.runRound()
		s.rounds++
		for _, d := range s.domains {
			if d.k.stopped {
				return s.Now()
			}
		}
	}
}

// computeRound derives every domain's execution window for this round from
// barrier-time queue state (see the file header for the math) and fills
// s.active with the domains that have work below their window. Purely
// deterministic: no worker-count or timing dependence.
func (s *Shard) computeRound(horizon Time) {
	n := len(s.domains)
	if cap(s.est) < n {
		s.est = make([]Time, n)
	}
	est := s.est[:n]
	for i, d := range s.domains {
		est[i] = d.k.earliestSend(d.turnaround)
	}
	// Earliest-send-time fixpoint. Positive lookaheads mean any improving
	// path is simple, so n passes suffice; in practice it settles in one
	// or two.
	for pass := 0; pass < n; pass++ {
		changed := false
		for _, e := range s.edges {
			su := est[e.src.id]
			if su == maxTime || e.muted {
				continue
			}
			if t := su + e.lookahead + e.dst.turnaround; t < est[e.dst.id] {
				est[e.dst.id] = t
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	limit := maxTime
	if horizon > 0 {
		limit = horizon + 1
	}
	for _, d := range s.domains {
		d.window = limit
	}
	for _, e := range s.edges {
		if est[e.src.id] == maxTime || e.muted {
			continue
		}
		if t := est[e.src.id] + e.lookahead; t < e.dst.window {
			e.dst.window = t
		}
	}
	s.active = s.active[:0]
	for _, d := range s.domains {
		head := maxTime
		if q := &d.k.queue; q.len() > 0 {
			head = q.ev[0].at
		}
		if head >= d.window {
			s.elided++
			continue
		}
		if d.window == maxTime {
			s.unboundedWindows++
		} else {
			width := d.window - head
			if width > s.widest {
				s.widest = width
			}
			if s.narrowest == 0 || width < s.narrowest {
				s.narrowest = width
			}
		}
		s.active = append(s.active, d)
	}
}

// runRound executes one synchronization round: every active domain runs
// its events strictly below its own window. Domains share no mutable state
// (cross effects ride the outboxes), so they execute concurrently; with one
// effective worker the loop below is the exact serial path.
func (s *Shard) runRound() {
	n := len(s.active)
	if n == 0 {
		// Unreachable: the LBTS domain's window strictly exceeds its own
		// head (positive lookaheads), so every round makes progress. Guard
		// against an infinite Run loop if the invariant is ever broken.
		panic("sim: shard round elided every domain (safe-time bug)")
	}
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for _, d := range s.active {
			d.k.runWindow(d.window)
		}
		return
	}
	if s.poolStart == nil {
		s.spawnPool()
	}
	atomic.StoreInt64(&s.next, 0)
	s.poolDone.Add(s.poolHelpers)
	for i := 0; i < s.poolHelpers; i++ {
		s.poolStart <- struct{}{}
	}
	s.drainActive() // the caller is the pool's first worker
	s.poolDone.Wait()
}

// spawnPool starts the persistent helper goroutines for this Run: one per
// worker beyond the caller, capped by the domain count. Helpers park on
// poolStart between rounds (each round's token send publishes that round's
// active list and windows) and exit when releasePool closes the channel.
func (s *Shard) spawnPool() {
	helpers := s.workers
	if helpers > len(s.domains) {
		helpers = len(s.domains)
	}
	helpers--
	s.poolHelpers = helpers
	s.poolStart = make(chan struct{})
	// Helpers hold the channel by value: releasePool nils the struct field
	// for the next Run while they are still draining out of the closed
	// channel, so they must never re-read it.
	start := s.poolStart
	for i := 0; i < helpers; i++ {
		go func() {
			for range start {
				s.drainActive()
				s.poolDone.Done()
			}
		}()
	}
}

// drainActive work-steals domains off the active list until it is empty.
// The steal order does not matter: domains are mutually independent within
// a round, and the barrier merge restores the deterministic global order.
func (s *Shard) drainActive() {
	for {
		i := atomic.AddInt64(&s.next, 1) - 1
		if i >= int64(len(s.active)) {
			return
		}
		d := s.active[i]
		d.k.runWindow(d.window)
	}
}

// releasePool shuts the persistent pool down at the end of a Run; parked
// helpers wake on the closed channel and exit without touching shard state.
// The next Run spawns a fresh pool on its first multi-domain round.
func (s *Shard) releasePool() {
	if s.poolStart != nil {
		close(s.poolStart)
		s.poolStart = nil
		s.poolHelpers = 0
	}
}

// checkDeadlock applies the serial kernel's deadlock rule across the whole
// shard: all queues drained and outboxes empty, yet non-daemon processes
// remain parked.
func (s *Shard) checkDeadlock() {
	stuck := 0
	detail := ""
	for _, d := range s.domains {
		k := d.k
		if k.stopped || k.parked != k.nprocs {
			return // a stop or a mid-dispatch state; not a deadlock verdict
		}
		if n := k.parked - k.parkedDaemons; n > 0 {
			stuck += n
			detail += fmt.Sprintf(" [%s: %d]", d.name, n)
		}
	}
	if stuck > 0 {
		panic(fmt.Sprintf("sim: shard deadlock at %v: %d non-daemon processes parked with no pending events%s",
			s.Now(), stuck, detail))
	}
}

// runWindow executes this kernel's events strictly before limit, without
// the serial deadlock check (the shard applies it globally once every
// domain and outbox is drained). The kernel's clock stays at the last
// executed event, exactly as in Run, so model-visible time is identical to
// a serial execution of the same event sequence.
func (k *Kernel) runWindow(limit Time) {
	for k.queue.len() > 0 && !k.stopped {
		if k.queue.ev[0].at >= limit {
			return
		}
		e := k.queue.pop()
		k.finishPop(&e)
		k.now = e.at
		k.executed++
		k.inArrival, k.inSilent = e.arrival, e.silent
		e.fn()
		k.inArrival, k.inSilent = false, false
	}
}

// EdgeSpec names one directed cross-domain link of a Plan.
type EdgeSpec struct {
	Src, Dst  string
	Lookahead Time
}

// Plan is a declarative domain partition: named domains plus the lookahead
// edges between them. Model packages publish plans (streamer.DomainPlan
// maps the paper's ethernet -> pcie -> nvme-per-controller chain) and rig
// builders materialize them onto a Shard.
type Plan struct {
	Domains []string
	Edges   []EdgeSpec
	// Turnarounds optionally declares per-domain minimum arrival-to-send
	// delays, keyed by domain name (Domain.SetTurnaround). Only list a
	// domain when the model genuinely never responds to an inbound
	// cross-domain event with a cross-domain send faster than the stated
	// delay; omitted domains promise nothing.
	Turnarounds map[string]Time
}

// MinLookahead returns the smallest edge lookahead — the per-round horizon
// increment the plan sustains — or 0 for a plan with no edges.
func (p Plan) MinLookahead() Time {
	min := Time(0)
	for i, e := range p.Edges {
		if i == 0 || e.Lookahead < min {
			min = e.Lookahead
		}
	}
	return min
}

// Validate checks the plan: non-empty unique domain names, edge endpoints
// that exist, and positive lookaheads.
func (p Plan) Validate() error {
	if len(p.Domains) == 0 {
		return fmt.Errorf("sim: plan has no domains")
	}
	seen := make(map[string]bool, len(p.Domains))
	for _, name := range p.Domains {
		if name == "" {
			return fmt.Errorf("sim: plan has an unnamed domain")
		}
		if seen[name] {
			return fmt.Errorf("sim: plan declares domain %q twice", name)
		}
		seen[name] = true
	}
	for _, e := range p.Edges {
		if !seen[e.Src] || !seen[e.Dst] {
			return fmt.Errorf("sim: plan edge %s->%s references an undeclared domain", e.Src, e.Dst)
		}
		if e.Lookahead <= 0 {
			return fmt.Errorf("sim: plan edge %s->%s has non-positive lookahead %v", e.Src, e.Dst, e.Lookahead)
		}
	}
	for name, turn := range p.Turnarounds {
		if !seen[name] {
			return fmt.Errorf("sim: plan turnaround for undeclared domain %q", name)
		}
		if turn < 0 {
			return fmt.Errorf("sim: plan turnaround for %s is negative (%v)", name, turn)
		}
	}
	return nil
}

// Build materializes the plan onto s, returning the domains by name and the
// edges keyed "src->dst".
func (p Plan) Build(s *Shard) (map[string]*Domain, map[string]*Edge, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	domains := make(map[string]*Domain, len(p.Domains))
	for _, name := range p.Domains {
		domains[name] = s.AddDomain(name)
		if turn := p.Turnarounds[name]; turn > 0 {
			domains[name].SetTurnaround(turn)
		}
	}
	edges := make(map[string]*Edge, len(p.Edges))
	for _, e := range p.Edges {
		edge, err := s.Connect(domains[e.Src], domains[e.Dst], e.Lookahead)
		if err != nil {
			return nil, nil, err
		}
		edges[e.Src+"->"+e.Dst] = edge
	}
	return domains, edges, nil
}

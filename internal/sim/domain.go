package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// maxTime is the +infinity sentinel for horizon arithmetic.
const maxTime = Time(1<<63 - 1)

// This file implements conservative-parallel discrete-event simulation over
// multiple Kernels ("domains"). The partition follows the modeled hardware:
// components that exchange events only across links with a known minimum
// latency (an Ethernet wire, a PCIe hop) can live in separate domains, and
// that latency becomes the edge's *lookahead* — the guarantee that a domain
// executing at time t cannot receive a new event before t+lookahead.
//
// Synchronization is barrier-based: every round the shard computes the
// global lower bound on timestamp (LBTS, the earliest pending event in any
// domain), then lets every domain execute events strictly below
// LBTS+minLookahead in parallel. Cross-domain events produced during the
// round are buffered per source domain and merged at the barrier in
// (timestamp, source-domain id, source sequence) order, so the destination
// kernel assigns its tie-breaking sequence numbers identically at any
// worker count — results are byte-identical whether the round ran on one
// worker or sixteen.

// Domain is one sub-kernel of a Shard: a private Kernel plus the outbox for
// cross-domain events it produces. All model state built on the domain's
// Kernel is owned by the domain and must never be touched from another
// domain except through Edge deliveries.
type Domain struct {
	s    *Shard
	id   int
	name string
	k    *Kernel

	// out buffers cross-domain events produced during the current round;
	// only this domain's worker appends, so no locking. The backing array
	// is recycled across rounds.
	out []xevent
	// xseq orders this domain's cross-domain sends for deterministic
	// barrier merging.
	xseq uint64
}

// Kernel returns the domain's private simulation kernel.
func (d *Domain) Kernel() *Kernel { return d.k }

// Name returns the name given at AddDomain.
func (d *Domain) Name() string { return d.name }

// ID returns the domain's index in its shard, the tie-breaking key for
// same-timestamp cross-domain deliveries.
func (d *Domain) ID() int { return d.id }

// xevent is one cross-domain event in flight: scheduled by a source domain,
// delivered into the destination kernel at the next barrier.
type xevent struct {
	at  Time
	src int
	seq uint64
	dst int
	fn  func()
}

// Edge is a declared communication channel from one domain to another with
// a positive lookahead: every event sent over the edge must be scheduled at
// least lookahead after the sender's current time. The lookahead is the
// modeled link latency (Ethernet wire delay, PCIe hop latency), so model
// code that already defers remote effects by the link latency satisfies the
// constraint naturally.
type Edge struct {
	src, dst  *Domain
	lookahead Time
}

// Lookahead returns the edge's declared minimum latency.
func (e *Edge) Lookahead() Time { return e.lookahead }

// From returns the source domain.
func (e *Edge) From() *Domain { return e.src }

// To returns the destination domain.
func (e *Edge) To() *Domain { return e.dst }

// At schedules fn to run in the destination domain at absolute time t,
// which must honor the edge's lookahead relative to the source domain's
// current time. Must be called from the source domain (during one of its
// events or processes, or before the shard runs).
func (e *Edge) At(t Time, fn func()) {
	src := e.src
	if t < src.k.now+e.lookahead {
		panic(fmt.Sprintf("sim: cross-domain event %s->%s at %v violates lookahead %v (source now %v)",
			src.name, e.dst.name, t, e.lookahead, src.k.now))
	}
	src.xseq++
	src.out = append(src.out, xevent{at: t, src: src.id, seq: src.xseq, dst: e.dst.id, fn: fn})
}

// After schedules fn in the destination domain d after the source domain's
// current time; d must be at least the edge's lookahead.
func (e *Edge) After(d Time, fn func()) { e.At(e.src.k.now+d, fn) }

// Shard is a conservative-parallel scheduler over communicating domains.
// Create one with NewShard, partition the model with AddDomain, declare
// every cross-domain link with Connect, then Run. With a single domain and
// no edges, Run degenerates to the domain kernel's ordinary serial drain.
type Shard struct {
	workers int
	domains []*Domain
	edges   []*Edge
	// minLook is the minimum lookahead over all edges (maxTime when no
	// edges exist, making the first window unbounded).
	minLook Time

	// inbox is the recycled barrier merge buffer; sorter wraps it for a
	// zero-allocation sort.Sort at the barrier (sort.Slice would allocate
	// its reflect-based swapper on every round).
	inbox  []xevent
	sorter xeventSorter

	// Stats.
	rounds         uint64
	crossDelivered uint64
}

// NewShard returns an empty shard. workers <= 0 selects GOMAXPROCS; the
// per-round concurrency is additionally capped by the domain count.
// workers == 1 executes every round inline on the caller's goroutine in
// domain order — the exact serial code path, with no pool involved.
func NewShard(workers int) *Shard {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Shard{workers: workers, minLook: maxTime}
}

// Workers returns the configured worker budget.
func (s *Shard) Workers() int { return s.workers }

// AddDomain creates a new domain with its own kernel.
func (s *Shard) AddDomain(name string) *Domain {
	d := &Domain{s: s, id: len(s.domains), name: name, k: NewKernel()}
	s.domains = append(s.domains, d)
	return d
}

// Domains returns the shard's domains in id order.
func (s *Shard) Domains() []*Domain { return s.domains }

// Connect declares a directed edge from src to dst with the given
// lookahead. A non-positive lookahead is rejected: conservative
// synchronization advances the global window by the minimum lookahead each
// round, so a zero or negative value could never make progress — the error
// surfaces at build time instead of as a runtime deadlock.
func (s *Shard) Connect(src, dst *Domain, lookahead Time) (*Edge, error) {
	if src == nil || dst == nil {
		return nil, fmt.Errorf("sim: Connect with nil domain")
	}
	if src.s != s || dst.s != s {
		return nil, fmt.Errorf("sim: Connect %s->%s across different shards", src.name, dst.name)
	}
	if src == dst {
		return nil, fmt.Errorf("sim: Connect %s->%s: a domain cannot have an edge to itself (use Kernel.At)", src.name, dst.name)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: Connect %s->%s: lookahead %v must be positive (conservative sync cannot advance past a zero-lookahead edge)",
			src.name, dst.name, lookahead)
	}
	e := &Edge{src: src, dst: dst, lookahead: lookahead}
	s.edges = append(s.edges, e)
	if lookahead < s.minLook {
		s.minLook = lookahead
	}
	return e, nil
}

// MustConnect is Connect, panicking on error (rig builders with static
// topologies).
func (s *Shard) MustConnect(src, dst *Domain, lookahead Time) *Edge {
	e, err := s.Connect(src, dst, lookahead)
	if err != nil {
		panic(err)
	}
	return e
}

// EventsExecuted sums event executions across all domains — the same work
// metric as Kernel.EventsExecuted.
func (s *Shard) EventsExecuted() uint64 {
	var n uint64
	for _, d := range s.domains {
		n += d.k.executed
	}
	return n
}

// Rounds returns the number of synchronization windows executed.
func (s *Shard) Rounds() uint64 { return s.rounds }

// CrossEvents returns the number of cross-domain events delivered.
func (s *Shard) CrossEvents() uint64 { return s.crossDelivered }

// Now returns the maximum current time across domains — the shard-level
// analogue of Kernel.Now after a Run.
func (s *Shard) Now() Time {
	var t Time
	for _, d := range s.domains {
		if d.k.now > t {
			t = d.k.now
		}
	}
	return t
}

// Stop makes Run return after the current synchronization round.
func (s *Shard) Stop() {
	for _, d := range s.domains {
		d.k.Stop()
	}
}

// deliver drains every domain's outbox into the destination kernels in
// (timestamp, source domain, source sequence) order. Scheduling order
// determines the destination kernel's tie-breaking sequence numbers, so the
// deterministic merge keeps results independent of the worker count.
func (s *Shard) deliver() {
	buf := s.inbox[:0]
	for _, d := range s.domains {
		buf = append(buf, d.out...)
		for i := range d.out {
			d.out[i] = xevent{} // drop fn references for the collector
		}
		d.out = d.out[:0]
	}
	if len(buf) > 1 {
		s.sorter.ev = buf
		sort.Sort(&s.sorter)
		s.sorter.ev = nil
	}
	for i := range buf {
		e := &buf[i]
		s.domains[e.dst].k.At(e.at, e.fn)
		buf[i] = xevent{}
	}
	s.crossDelivered += uint64(len(buf))
	s.inbox = buf[:0]
}

// xeventSorter orders the barrier merge buffer by (timestamp, source
// domain id, source sequence) — the deterministic cross-domain delivery
// order. It exists (instead of sort.Slice) so the barrier stays
// allocation-free.
type xeventSorter struct{ ev []xevent }

func (x *xeventSorter) Len() int      { return len(x.ev) }
func (x *xeventSorter) Swap(i, j int) { x.ev[i], x.ev[j] = x.ev[j], x.ev[i] }
func (x *xeventSorter) Less(i, j int) bool {
	a, b := &x.ev[i], &x.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// lbts returns the earliest pending event timestamp across all domains, or
// maxTime when every queue is empty. Outboxes must have been delivered.
func (s *Shard) lbts() Time {
	t := maxTime
	for _, d := range s.domains {
		if q := &d.k.queue; q.len() > 0 && q.ev[0].at < t {
			t = q.ev[0].at
		}
	}
	return t
}

// Run executes the conservative synchronization loop until every domain
// drains, Stop is called, or the optional horizon is reached (horizon <= 0
// means none). It returns the time of the last executed event (or the
// horizon when it was hit), mirroring Kernel.Run.
//
// Like Kernel.Run, it panics when the simulation deadlocks: every queue
// empty, nothing in flight, and non-daemon processes still parked.
func (s *Shard) Run(horizon Time) Time {
	for _, d := range s.domains {
		d.k.stopped = false
	}
	for {
		s.deliver()
		lbts := s.lbts()
		if lbts == maxTime {
			s.checkDeadlock()
			return s.Now()
		}
		if horizon > 0 && lbts > horizon {
			// Mirror the serial kernel: advance to the horizon and leave
			// over-horizon events pending.
			for _, d := range s.domains {
				if d.k.now < horizon {
					d.k.now = horizon
				}
			}
			return horizon
		}
		window := maxTime
		if s.minLook != maxTime {
			window = lbts + s.minLook
			if horizon > 0 && window > horizon+1 {
				window = horizon + 1
			}
		}
		s.runRound(window)
		s.rounds++
		for _, d := range s.domains {
			if d.k.stopped {
				return s.Now()
			}
		}
	}
}

// runRound executes one synchronization window: every domain runs its
// events strictly below window. Domains share no mutable state (cross
// effects ride the outboxes), so they execute concurrently; with one worker
// the loop below is the exact serial path.
func (s *Shard) runRound(window Time) {
	w := s.workers
	if w > len(s.domains) {
		w = len(s.domains)
	}
	if w <= 1 {
		for _, d := range s.domains {
			d.k.runWindow(window)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(len(s.domains)) {
					return
				}
				s.domains[i].k.runWindow(window)
			}
		}()
	}
	wg.Wait()
}

// checkDeadlock applies the serial kernel's deadlock rule across the whole
// shard: all queues drained and outboxes empty, yet non-daemon processes
// remain parked.
func (s *Shard) checkDeadlock() {
	stuck := 0
	detail := ""
	for _, d := range s.domains {
		k := d.k
		if k.stopped || k.parked != k.nprocs {
			return // a stop or a mid-dispatch state; not a deadlock verdict
		}
		if n := k.parked - k.parkedDaemons; n > 0 {
			stuck += n
			detail += fmt.Sprintf(" [%s: %d]", d.name, n)
		}
	}
	if stuck > 0 {
		panic(fmt.Sprintf("sim: shard deadlock at %v: %d non-daemon processes parked with no pending events%s",
			s.Now(), stuck, detail))
	}
}

// runWindow executes this kernel's events strictly before limit, without
// the serial deadlock check (the shard applies it globally once every
// domain and outbox is drained). The kernel's clock stays at the last
// executed event, exactly as in Run, so model-visible time is identical to
// a serial execution of the same event sequence.
func (k *Kernel) runWindow(limit Time) {
	for k.queue.len() > 0 && !k.stopped {
		if k.queue.ev[0].at >= limit {
			return
		}
		e := k.queue.pop()
		k.now = e.at
		k.executed++
		e.fn()
	}
}

// EdgeSpec names one directed cross-domain link of a Plan.
type EdgeSpec struct {
	Src, Dst  string
	Lookahead Time
}

// Plan is a declarative domain partition: named domains plus the lookahead
// edges between them. Model packages publish plans (streamer.DomainPlan
// maps the paper's ethernet -> pcie -> nvme-per-controller chain) and rig
// builders materialize them onto a Shard.
type Plan struct {
	Domains []string
	Edges   []EdgeSpec
}

// MinLookahead returns the smallest edge lookahead — the per-round horizon
// increment the plan sustains — or 0 for a plan with no edges.
func (p Plan) MinLookahead() Time {
	min := Time(0)
	for i, e := range p.Edges {
		if i == 0 || e.Lookahead < min {
			min = e.Lookahead
		}
	}
	return min
}

// Validate checks the plan: non-empty unique domain names, edge endpoints
// that exist, and positive lookaheads.
func (p Plan) Validate() error {
	if len(p.Domains) == 0 {
		return fmt.Errorf("sim: plan has no domains")
	}
	seen := make(map[string]bool, len(p.Domains))
	for _, name := range p.Domains {
		if name == "" {
			return fmt.Errorf("sim: plan has an unnamed domain")
		}
		if seen[name] {
			return fmt.Errorf("sim: plan declares domain %q twice", name)
		}
		seen[name] = true
	}
	for _, e := range p.Edges {
		if !seen[e.Src] || !seen[e.Dst] {
			return fmt.Errorf("sim: plan edge %s->%s references an undeclared domain", e.Src, e.Dst)
		}
		if e.Lookahead <= 0 {
			return fmt.Errorf("sim: plan edge %s->%s has non-positive lookahead %v", e.Src, e.Dst, e.Lookahead)
		}
	}
	return nil
}

// Build materializes the plan onto s, returning the domains by name and the
// edges keyed "src->dst".
func (p Plan) Build(s *Shard) (map[string]*Domain, map[string]*Edge, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	domains := make(map[string]*Domain, len(p.Domains))
	for _, name := range p.Domains {
		domains[name] = s.AddDomain(name)
	}
	edges := make(map[string]*Edge, len(p.Edges))
	for _, e := range p.Edges {
		edge, err := s.Connect(domains[e.Src], domains[e.Dst], e.Lookahead)
		if err != nil {
			return nil, nil, err
		}
		edges[e.Src+"->"+e.Dst] = edge
	}
	return domains, edges, nil
}

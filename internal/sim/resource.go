package sim

// Resource is a counting semaphore with FIFO admission, used for bounded
// pools such as submission-queue slots, outstanding-read credits, or buffer
// regions. Grants are strictly FIFO: a large request at the head blocks
// smaller requests behind it, matching how hardware credit schemes behave.
type Resource struct {
	k        *Kernel
	capacity int64
	inUse    int64
	q        []resWaiter
}

type resWaiter struct {
	p *Proc
	n int64
}

// NewResource creates a resource with the given total capacity.
func NewResource(k *Kernel, capacity int64) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{k: k, capacity: capacity}
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// InUse returns the currently held amount.
func (r *Resource) InUse() int64 { return r.inUse }

// Available returns the unheld amount.
func (r *Resource) Available() int64 { return r.capacity - r.inUse }

// Acquire obtains n units, blocking p until they are available. Requests
// larger than the capacity can never succeed and panic immediately.
func (r *Resource) Acquire(p *Proc, n int64) {
	if n <= 0 {
		return
	}
	if n > r.capacity {
		panic("sim: Resource.Acquire request exceeds capacity")
	}
	if len(r.q) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	r.q = append(r.q, resWaiter{p: p, n: n})
	p.Park()
}

// TryAcquire obtains n units without blocking and reports success. It
// respects FIFO ordering: it fails while earlier requests wait.
func (r *Resource) TryAcquire(n int64) bool {
	if n <= 0 {
		return true
	}
	if len(r.q) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units and admits queued waiters in FIFO order.
func (r *Resource) Release(n int64) {
	if n <= 0 {
		return
	}
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: Resource.Release below zero")
	}
	for len(r.q) > 0 {
		head := r.q[0]
		if r.inUse+head.n > r.capacity {
			break
		}
		r.inUse += head.n
		r.q = r.q[1:]
		head.p.Wake()
	}
}

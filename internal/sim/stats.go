package sim

import (
	"fmt"
	"math"
	"sort"
)

// Meter accumulates byte counts against simulated time so benchmarks can
// report bandwidth. Start it when the measured transfer begins.
type Meter struct {
	k       *Kernel
	started Time
	bytes   int64
	active  bool
}

// NewMeter returns an unstarted meter on k.
func NewMeter(k *Kernel) *Meter { return &Meter{k: k} }

// Start begins (or restarts) measurement at the current time.
func (m *Meter) Start() {
	m.started = m.k.now
	m.bytes = 0
	m.active = true
}

// Add records n bytes moved.
func (m *Meter) Add(n int64) {
	if m.active {
		m.bytes += n
	}
}

// Bytes returns the bytes recorded since Start.
func (m *Meter) Bytes() int64 { return m.bytes }

// Elapsed returns simulated time since Start.
func (m *Meter) Elapsed() Time { return m.k.now - m.started }

// BytesPerSec returns the measured bandwidth. Zero elapsed time yields 0.
func (m *Meter) BytesPerSec() float64 {
	el := m.Elapsed()
	if el <= 0 {
		return 0
	}
	return float64(m.bytes) / el.Seconds()
}

// GBps returns the measured bandwidth in decimal gigabytes per second, the
// unit the paper reports.
func (m *Meter) GBps() float64 { return m.BytesPerSec() / 1e9 }

// Histogram collects latency samples and reports order statistics. It keeps
// every sample; the experiment sizes in this repository stay small enough
// that exact percentiles are affordable and reproducible.
type Histogram struct {
	samples []Time
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(t Time) {
	h.samples = append(h.samples, t)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() Time {
	if len(h.samples) == 0 {
		return 0
	}
	var sum int64
	for _, s := range h.samples {
		sum += int64(s)
	}
	return Time(sum / int64(len(h.samples)))
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() Time {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() Time {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Percentile returns the p-th percentile (0 < p <= 100) by nearest-rank.
func (h *Histogram) Percentile(p float64) Time {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	rank := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(h.samples) {
		rank = len(h.samples) - 1
	}
	return h.samples[rank]
}

// Stddev returns the population standard deviation in nanoseconds.
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := float64(h.Mean())
	var acc float64
	for _, s := range h.samples {
		d := float64(s) - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// String summarizes the histogram for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

package sim

import (
	"fmt"
	"testing"
)

// FuzzShardSchedule cross-checks the conservative-parallel scheduler against
// the flat serial kernel on randomized scenarios: an arbitrary domain graph
// (1-4 domains, random lookaheads, optional muted edges and turnaround
// declarations) drives a deterministic hash-derived event tree — folds,
// local children, silent leaves, cross-domain sends — and the harness
// asserts:
//
//   - workers ∈ {1, 2, 4} produce identical per-domain execution chains
//     (order-sensitive digests), event counts, and round counts;
//   - the shard's commutative digest and per-domain event counts equal a
//     flat serial Kernel executing the same scenario with edges replaced by
//     plain At scheduling at the same timestamps.
//
// The flat comparison is commutative (a multiset digest) by design: the
// shard delivers same-timestamp cross-domain events in (time, src domain,
// src seq) order while a flat kernel interleaves them in send order, so the
// two executions agree on *what* runs and *when* but may legally disagree on
// tie order between domains. Within one domain — and between worker counts —
// order is pinned exactly.
//
// Event behavior is a pure function of a self-contained event id (hashed
// from the parent id), never of a shared counter, so the executed multiset
// is independent of tie-breaking order and the digests are comparable.
func FuzzShardSchedule(f *testing.F) {
	// Seed corpus: single domain (serial degeneration), a 3-domain chain
	// with turnarounds, and a 3-domain cycle with one muted edge.
	f.Add([]byte{0})
	f.Add([]byte{
		2,                            // 3 domains
		0x29, 0x00, 0x00, 0x45, 0x00, 0x00, // chain 0->1 (11ns), 1->2 (18ns)
		5, 0, 9, // turnarounds
		1, 10, 200, // dom0: 2 roots
		0, 50, // dom1: 1 root
		2, 0, 7, 99, // dom2: 3 roots
	})
	f.Add([]byte{
		2,                            // 3 domains
		0x29, 0x0a, 0x00, 0x45, 0x31, 0x00, // cycle 0->1->2->0, muted 0->2
		0, 4, 0, // turnarounds
		1, 3, 60, // dom0: 2 roots
		0, 128, // dom1: 1 root
		0, 0, // dom2: 1 root
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		topo := parseFuzzTopo(data)
		flat := runFlatScenario(topo)
		base := runShardScenario(topo, 1)
		if base.events != flat.events || base.sum() != flat.sum() {
			t.Fatalf("shard(workers=1) diverged from flat kernel: events %d vs %d, digest %016x vs %016x",
				base.events, flat.events, base.sum(), flat.sum())
		}
		for dom := range base.counts {
			if base.counts[dom] != flat.counts[dom] {
				t.Fatalf("domain %d executed %d events sharded vs %d flat", dom, base.counts[dom], flat.counts[dom])
			}
		}
		for _, w := range []int{2, 4} {
			r := runShardScenario(topo, w)
			if r.events != base.events || r.rounds != base.rounds {
				t.Fatalf("workers=%d ran %d events in %d rounds; workers=1 ran %d in %d",
					w, r.events, r.rounds, base.events, base.rounds)
			}
			for dom := range base.chains {
				if r.chains[dom] != base.chains[dom] {
					t.Fatalf("workers=%d domain %d chain %016x != workers=1 chain %016x (determinism violation)",
						w, dom, r.chains[dom], base.chains[dom])
				}
			}
		}
	})
}

// fuzzEdge is one directed link of a generated topology.
type fuzzEdge struct {
	src, dst int
	look     Time
	muted    bool
}

// fuzzTopo is a parsed fuzz scenario: the domain graph plus per-domain
// turnarounds and root event times.
type fuzzTopo struct {
	nd    int
	edges []fuzzEdge
	turn  []Time
	roots [][]Time
	// outs[dom] indexes the non-muted outgoing edges of dom — the only
	// channels the generated workload sends on (muted edges stay declared
	// but idle, exercising the window-widening path without tripping the
	// muted-send panic).
	outs [][]int
}

// parseFuzzTopo derives a bounded scenario from raw fuzz bytes. Exhausted
// input reads as zero, so every byte string parses.
func parseFuzzTopo(data []byte) fuzzTopo {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	var topo fuzzTopo
	topo.nd = 1 + int(next())%4
	for i := 0; i < topo.nd; i++ {
		for j := 0; j < topo.nd; j++ {
			if i == j {
				continue
			}
			b := next()
			if b&3 == 0 {
				continue
			}
			topo.edges = append(topo.edges, fuzzEdge{
				src: i, dst: j,
				look:  Time(1 + b>>2),
				muted: b&3 == 2,
			})
		}
	}
	topo.turn = make([]Time, topo.nd)
	for i := range topo.turn {
		topo.turn[i] = Time(next() % 32)
	}
	topo.roots = make([][]Time, topo.nd)
	for i := range topo.roots {
		rc := 1 + int(next())%3
		for r := 0; r < rc; r++ {
			topo.roots[i] = append(topo.roots[i], Time(next()))
		}
	}
	topo.outs = make([][]int, topo.nd)
	for ei, e := range topo.edges {
		if !e.muted {
			topo.outs[e.src] = append(topo.outs[e.src], ei)
		}
	}
	return topo
}

// fmix is a 64-bit finalizer (murmur3) used to derive event behavior and
// fold execution digests.
func fmix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// fuzzRig executes a fuzzTopo's event tree on either backend. The backend
// supplies time, scheduling, and send primitives; exec is shared so both
// executions run byte-for-byte the same model code.
type fuzzRig struct {
	topo fuzzTopo
	now  func(dom int) Time
	at   func(dom int, t Time, fn func())
	sil  func(dom int, t Time, fn func())
	send func(dom, out int, t Time, fn func())

	// Per-domain accumulators: in shard mode only the owning domain's
	// worker touches index dom, so no locking. chains is order-sensitive
	// within a domain; sums is commutative across everything.
	counts []uint64
	chains []uint64
	sums   []uint64
	events uint64
	rounds uint64
}

func (r *fuzzRig) sum() uint64 {
	var s uint64
	for _, v := range r.sums {
		s += v
	}
	return s
}

// record folds one executed event into the domain's digests.
func (r *fuzzRig) record(dom int, id uint64) {
	v := fmix(id ^ fmix(uint64(dom+1)*0x9e3779b97f4a7c15) ^ uint64(r.now(dom)))
	r.counts[dom]++
	r.sums[dom] += v
	r.chains[dom] = r.chains[dom]*0x100000001b3 ^ v
}

// exec runs one event: fold, then hash-derived children — up to two local
// events, an optional silent leaf, an optional cross-domain send that
// honors the edge lookahead plus the sender's declared turnaround (so the
// turnaround contract holds for arrival-rooted sends by construction).
func (r *fuzzRig) exec(dom int, id uint64, depth int) {
	r.record(dom, id)
	if depth >= 5 {
		return
	}
	t := r.now(dom)
	h := fmix(id + 0x1234)
	for c := 0; c < int(h%3); c++ {
		cid := fmix(id + uint64(c) + 1)
		cdepth := depth + 1
		r.at(dom, t+Time((h>>(8+4*c))%97), func() { r.exec(dom, cid, cdepth) })
	}
	if (h>>20)%4 == 0 {
		sid := fmix(id ^ 0xfeed)
		r.sil(dom, t+Time((h>>24)%31), func() { r.record(dom, sid) })
	}
	if outs := r.topo.outs[dom]; len(outs) > 0 && (h>>32)%3 == 0 {
		oi := int((h >> 40) % uint64(len(outs)))
		e := r.topo.edges[outs[oi]]
		dt := t + e.look + r.topo.turn[dom] + Time((h>>48)%53)
		xid := fmix(id ^ 0xabcdef0123)
		xdepth := depth + 1
		r.send(dom, oi, dt, func() { r.exec(e.dst, xid, xdepth) })
	}
}

// plant schedules the scenario's root events.
func (r *fuzzRig) plant() {
	for dom, times := range r.topo.roots {
		for ri, at := range times {
			id := fmix(uint64(dom)<<32 + uint64(ri) + 0x5eed)
			d, rt := dom, at
			r.at(dom, rt, func() { r.exec(d, id, 0) })
		}
	}
}

func newFuzzRig(topo fuzzTopo) *fuzzRig {
	return &fuzzRig{
		topo:   topo,
		counts: make([]uint64, topo.nd),
		chains: make([]uint64, topo.nd),
		sums:   make([]uint64, topo.nd),
	}
}

// runShardScenario executes the scenario on a Shard with the given worker
// count and returns the filled rig.
func runShardScenario(topo fuzzTopo, workers int) *fuzzRig {
	s := NewShard(workers)
	doms := make([]*Domain, topo.nd)
	for i := range doms {
		doms[i] = s.AddDomain(fmt.Sprintf("d%d", i))
		if topo.turn[i] > 0 {
			doms[i].SetTurnaround(topo.turn[i])
		}
	}
	edges := make([]*Edge, len(topo.edges))
	for i, ge := range topo.edges {
		edges[i] = s.MustConnect(doms[ge.src], doms[ge.dst], ge.look)
		if ge.muted {
			edges[i].Mute()
		}
	}
	r := newFuzzRig(topo)
	r.now = func(dom int) Time { return doms[dom].Kernel().Now() }
	r.at = func(dom int, t Time, fn func()) { doms[dom].Kernel().At(t, fn) }
	r.sil = func(dom int, t Time, fn func()) { doms[dom].Kernel().AtSilent(t, fn) }
	r.send = func(dom, out int, t Time, fn func()) { edges[topo.outs[dom][out]].At(t, fn) }
	r.plant()
	s.Run(0)
	r.events = s.EventsExecuted()
	r.rounds = s.Rounds()
	return r
}

// runFlatScenario executes the scenario on a single serial Kernel: every
// cross-domain send becomes a plain At at the same timestamp.
func runFlatScenario(topo fuzzTopo) *fuzzRig {
	k := NewKernel()
	r := newFuzzRig(topo)
	r.now = func(int) Time { return k.Now() }
	r.at = func(_ int, t Time, fn func()) { k.At(t, fn) }
	r.sil = func(_ int, t Time, fn func()) { k.AtSilent(t, fn) }
	r.send = func(_, _ int, t Time, fn func()) { k.At(t, fn) }
	r.plant()
	k.Run(0)
	r.events = k.EventsExecuted()
	return r
}

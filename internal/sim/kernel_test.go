package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(10, func() { got = append(got, 1) })
	k.At(5, func() { got = append(got, 0) })
	k.At(10, func() { got = append(got, 2) }) // same time: scheduling order
	k.Run(0)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if k.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", k.Now())
	}
}

func TestKernelSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	k.Run(0)
}

func TestKernelHorizon(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(10, func() { fired++ })
	k.At(1000, func() { fired++ })
	end := k.Run(100)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if end != 100 {
		t.Fatalf("end = %v, want 100", end)
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(1, func() { fired++; k.Stop() })
	k.At(2, func() { fired++ })
	k.Run(0)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (Stop should halt the run)", fired)
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	k := NewKernel()
	var woke Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		woke = p.Now()
	})
	k.Run(0)
	if woke != 5*Microsecond {
		t.Fatalf("woke at %v, want 5us", woke)
	}
}

func TestProcInterleaving(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(10)
		order = append(order, "a1")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(5)
		order = append(order, "b1")
	})
	k.Run(0)
	want := []string{"a0", "b0", "b1", "a1"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcParkWake(t *testing.T) {
	k := NewKernel()
	var waiter *Proc
	var wokeAt Time
	waiter = k.Spawn("waiter", func(p *Proc) {
		p.Park()
		wokeAt = p.Now()
	})
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(42)
		waiter.Wake()
	})
	k.Run(0)
	if wokeAt != 42 {
		t.Fatalf("woke at %v, want 42", wokeAt)
	}
}

func TestProcParkTimeout(t *testing.T) {
	k := NewKernel()
	var timedOut bool
	k.Spawn("waiter", func(p *Proc) {
		timedOut = p.ParkTimeout(100)
	})
	k.Run(0)
	if !timedOut {
		t.Fatal("ParkTimeout with no waker should time out")
	}
	if k.Now() != 100 {
		t.Fatalf("timeout fired at %v, want 100", k.Now())
	}
}

func TestProcParkTimeoutWokenFirst(t *testing.T) {
	k := NewKernel()
	var timedOut bool
	var secondParkOK bool
	var waiter *Proc
	waiter = k.Spawn("waiter", func(p *Proc) {
		timedOut = p.ParkTimeout(100)
		// Re-park; the stale timer at t=100 must not wake this park.
		p.Park()
		secondParkOK = true
	})
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(10)
		waiter.Wake()
		p.Sleep(500)
		waiter.Wake()
	})
	k.Run(0)
	if timedOut {
		t.Fatal("wait was woken at t=10 but reported timeout")
	}
	if !secondParkOK {
		t.Fatal("second park never woke")
	}
	if k.Now() < 510 {
		t.Fatalf("second park woke at %v; stale timeout must not wake it", k.Now())
	}
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("parked process with empty queue should panic as deadlock")
		}
	}()
	k := NewKernel()
	k.Spawn("stuck", func(p *Proc) { p.Park() })
	k.Run(0)
}

func TestTransferTime(t *testing.T) {
	cases := []struct {
		n    int64
		bw   float64
		want Time
	}{
		{0, 1e9, 0},
		{1000, 1e9, 1000},            // 1000 B at 1 GB/s = 1us
		{4096, GBps(6.9), 594},       // one 4k page at SSD read speed
		{1 << 20, GBps(12.5), 83886}, // 1 MiB over 100G Ethernet
	}
	for _, c := range cases {
		if got := TransferTime(c.n, c.bw); got != c.want {
			t.Errorf("TransferTime(%d, %g) = %v, want %v", c.n, c.bw, got, c.want)
		}
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		n1, n2 := int64(a%1<<24), int64(b%1<<24)
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		return TransferTime(n1, 1e9) <= TransferTime(n2, 1e9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:                "5ns",
		3 * Microsecond:  "3.000us",
		42 * Millisecond: "42.000ms",
		2 * Second:       "2.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

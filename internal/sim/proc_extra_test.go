package sim

import "testing"

func TestSpawnFromInsideProc(t *testing.T) {
	k := NewKernel()
	var childRan Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(5)
			childRan = c.Now()
		})
		p.Sleep(100)
	})
	k.Run(0)
	if childRan != 15 {
		t.Fatalf("child ran at %v, want 15", childRan)
	}
}

func TestRunHorizonThenResume(t *testing.T) {
	k := NewKernel()
	var hits []Time
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(100)
			hits = append(hits, p.Now())
		}
	})
	k.Run(250)
	if len(hits) != 2 {
		t.Fatalf("hits before horizon = %d, want 2", len(hits))
	}
	k.Run(0)
	if len(hits) != 4 {
		t.Fatalf("hits after resume = %d, want 4", len(hits))
	}
	if hits[3] != 400 {
		t.Fatalf("final hit at %v, want 400", hits[3])
	}
}

func TestWakeOrderIsFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	procs := make([]*Proc, 3)
	for i := 0; i < 3; i++ {
		i := i
		procs[i] = k.Spawn("w", func(p *Proc) {
			p.Sleep(Time(i)) // deterministic park order 0,1,2
			p.Park()
			order = append(order, i)
		})
	}
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(100)
		// Wake in reverse; resumption order follows wake order.
		procs[2].Wake()
		procs[0].Wake()
		procs[1].Wake()
	})
	k.Run(0)
	if len(order) != 3 || order[0] != 2 || order[1] != 0 || order[2] != 1 {
		t.Fatalf("wake order = %v, want [2 0 1]", order)
	}
}

func TestDoubleWakeIsBenign(t *testing.T) {
	k := NewKernel()
	var wokeAt Time
	target := k.Spawn("t", func(p *Proc) {
		p.Park()
		wokeAt = p.Now()
	})
	k.Spawn("w", func(p *Proc) {
		p.Sleep(10)
		target.Wake()
		target.Wake() // second wake must be a no-op
	})
	k.Run(0)
	if wokeAt != 10 {
		t.Fatalf("woke at %v", wokeAt)
	}
}

func TestEventsExecutedCounts(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 10; i++ {
		k.After(Time(i), func() {})
	}
	k.Run(0)
	if k.EventsExecuted() != 10 {
		t.Fatalf("EventsExecuted = %d, want 10", k.EventsExecuted())
	}
}

func TestProcNameAndKernelAccessors(t *testing.T) {
	k := NewKernel()
	k.Spawn("named", func(p *Proc) {
		if p.Name() != "named" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Kernel() != k {
			t.Error("Kernel accessor wrong")
		}
	})
	k.Run(0)
}

func TestSetDaemonIdempotent(t *testing.T) {
	k := NewKernel()
	k.Spawn("d", func(p *Proc) {
		p.SetDaemon(true)
		p.SetDaemon(true) // no double count
		p.SetDaemon(false)
		p.SetDaemon(true)
	})
	k.Run(0)
	if k.daemons != 1 {
		t.Fatalf("daemons = %d, want 1", k.daemons)
	}
}

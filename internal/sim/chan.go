package sim

// Chan is a simulated bounded channel carrying values of type T between
// processes. It models a hardware FIFO: Put blocks while the FIFO is full,
// Get blocks while it is empty, and handoffs consume zero simulated time
// (data-path delay is modeled separately by Pipe or by the memory models).
//
// A capacity of zero gives rendezvous semantics: Put blocks until a Get
// arrives and vice versa, like an unregistered AXI handshake.
type Chan[T any] struct {
	k        *Kernel
	capacity int
	buf      []T

	// putq holds blocked producers together with the value each carries;
	// getq holds blocked consumers together with the slot the value is
	// delivered into.
	putq []*putWaiter[T]
	getq []*getWaiter[T]
}

type putWaiter[T any] struct {
	p *Proc
	v T
}

type getWaiter[T any] struct {
	p     *Proc
	v     T
	valid bool
}

// NewChan creates a channel with the given capacity (>= 0).
func NewChan[T any](k *Kernel, capacity int) *Chan[T] {
	if capacity < 0 {
		panic("sim: negative channel capacity")
	}
	return &Chan[T]{k: k, capacity: capacity}
}

// Len reports the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Cap reports the channel capacity.
func (c *Chan[T]) Cap() int { return c.capacity }

// Put delivers v into the channel, blocking p while the channel is full.
func (c *Chan[T]) Put(p *Proc, v T) {
	// Fast path: a consumer is already waiting and nothing is buffered
	// ahead of us, so hand the value over directly.
	if len(c.getq) > 0 && len(c.buf) == 0 {
		g := c.getq[0]
		c.getq = c.getq[1:]
		g.v, g.valid = v, true
		g.p.Wake()
		return
	}
	if len(c.buf) < c.capacity {
		c.buf = append(c.buf, v)
		return
	}
	w := &putWaiter[T]{p: p, v: v}
	c.putq = append(c.putq, w)
	p.Park()
}

// TryPut delivers v without blocking and reports whether it succeeded.
func (c *Chan[T]) TryPut(v T) bool {
	if len(c.getq) > 0 && len(c.buf) == 0 {
		g := c.getq[0]
		c.getq = c.getq[1:]
		g.v, g.valid = v, true
		g.p.Wake()
		return true
	}
	if len(c.buf) < c.capacity {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Get removes and returns the oldest value, blocking p while the channel is
// empty.
func (c *Chan[T]) Get(p *Proc) T {
	if v, ok := c.TryGet(); ok {
		return v
	}
	w := &getWaiter[T]{p: p}
	c.getq = append(c.getq, w)
	p.Park()
	if !w.valid {
		panic("sim: Chan.Get woken without a value")
	}
	return w.v
}

// TryGet removes and returns the oldest value without blocking.
func (c *Chan[T]) TryGet() (T, bool) {
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		// A freed slot admits the oldest blocked producer.
		if len(c.putq) > 0 {
			w := c.putq[0]
			c.putq = c.putq[1:]
			c.buf = append(c.buf, w.v)
			w.p.Wake()
		}
		return v, true
	}
	// Rendezvous: take directly from a blocked producer.
	if len(c.putq) > 0 {
		w := c.putq[0]
		c.putq = c.putq[1:]
		w.p.Wake()
		return w.v, true
	}
	var zero T
	return zero, false
}

// Peek returns the oldest value without removing it.
func (c *Chan[T]) Peek() (T, bool) {
	if len(c.buf) > 0 {
		return c.buf[0], true
	}
	if len(c.putq) > 0 {
		return c.putq[0].v, true
	}
	var zero T
	return zero, false
}

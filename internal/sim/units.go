package sim

// Size constants. Storage capacities and buffer sizes in this repository use
// binary units (the paper's 4 kB pages are 4096 bytes); reported bandwidths
// use decimal GB/s to match the paper's figures.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// GBps converts a decimal-gigabyte-per-second figure (the unit used
// throughout the paper) to bytes per second.
func GBps(v float64) float64 { return v * 1e9 }

// ToGBps converts bytes per second to decimal gigabytes per second.
func ToGBps(bytesPerSec float64) float64 { return bytesPerSec / 1e9 }

package sim

// Proc is a cooperative simulation process: a goroutine that runs only while
// the kernel has handed it control, and hands control back whenever it
// blocks on simulated time (Sleep) or on a synchronization object (Chan,
// Resource, Pipe). At most one Proc executes at any real instant, so models
// need no locking and the simulation is deterministic.
type Proc struct {
	k    *Kernel
	name string

	resume   chan struct{}
	toKernel chan struct{}
	done     bool

	// parked is true while the process waits for an explicit wake rather
	// than a timer. parkSeq distinguishes successive parks so a stale
	// timeout cannot wake a later, unrelated park.
	parked  bool
	parkSeq uint64
	// daemon marks a service loop that legitimately idles forever; parked
	// daemons do not count toward deadlock detection.
	daemon bool
}

// SetDaemon marks the process as a daemon service loop. Call it from inside
// the process before its first Park.
func (p *Proc) SetDaemon(on bool) {
	if p.daemon == on {
		return
	}
	p.daemon = on
	if on {
		p.k.daemons++
	} else {
		p.k.daemons--
	}
}

// Spawn starts fn as a new process. fn begins executing at the current
// simulated time, after the caller yields back to the kernel.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:        k,
		name:     name,
		resume:   make(chan struct{}),
		toKernel: make(chan struct{}),
	}
	k.nprocs++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		p.k.nprocs--
		p.toKernel <- struct{}{}
	}()
	k.At(k.now, func() { k.dispatch(p) })
	return p
}

// dispatch transfers control to p and blocks (in real time) until p yields
// or finishes. Must only be called from kernel context.
func (k *Kernel) dispatch(p *Proc) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.toKernel
}

// yield returns control to the kernel and blocks until redispached.
func (p *Proc) yield() {
	p.toKernel <- struct{}{}
	<-p.resume
}

// Name returns the name given at Spawn, for traces and panics.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Sleep suspends the process for d. A non-positive d still yields, letting
// already-scheduled same-time events run first.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	k := p.k
	k.At(k.now+d, func() { k.dispatch(p) })
	p.yield()
}

// Park suspends the process until another component calls Wake. Every Park
// must be paired with exactly one Wake; the synchronization objects in this
// package maintain that pairing.
func (p *Proc) Park() {
	p.parkSeq++
	p.parked = true
	p.k.parked++
	if p.daemon {
		p.k.parkedDaemons++
	}
	p.yield()
}

// Wake schedules a parked process to resume at the current simulated time.
// It is a no-op if the process is not parked, so wakers may race benignly.
func (p *Proc) Wake() {
	if !p.parked {
		return
	}
	p.parked = false
	p.k.parked--
	if p.daemon {
		p.k.parkedDaemons--
	}
	k := p.k
	k.At(k.now, func() { k.dispatch(p) })
}

// ParkTimeout parks for at most d and reports whether the wait timed out
// rather than being woken. On timeout the caller is responsible for removing
// itself from whatever wait queue it joined.
func (p *Proc) ParkTimeout(d Time) (timedOut bool) {
	seq := p.parkSeq + 1
	out := false
	p.k.After(d, func() {
		if p.parked && p.parkSeq == seq {
			out = true
			p.Wake()
		}
	})
	p.Park()
	return out
}

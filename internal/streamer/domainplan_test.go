package streamer

import (
	"testing"

	"snacc/internal/ethernet"
	"snacc/internal/nvme"
	"snacc/internal/pcie"
	"snacc/internal/sim"
)

func TestDomainPlanShape(t *testing.T) {
	eth := ethernet.DefaultConfig()
	c0 := nvme.DefaultConfig("nvme0", 0xF000_0000)
	c1 := nvme.DefaultConfig("nvme1", 0xF100_0000)
	p := DomainPlan(eth, c0, c1)
	if err := p.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	wantDomains := []string{"ethernet", "pcie", "nvme0", "nvme1"}
	if len(p.Domains) != len(wantDomains) {
		t.Fatalf("domains = %v, want %v", p.Domains, wantDomains)
	}
	for i, d := range wantDomains {
		if p.Domains[i] != d {
			t.Fatalf("domains = %v, want %v", p.Domains, wantDomains)
		}
	}
	// 2 edges per boundary: eth<->pcie plus pcie<->nvmeN.
	if want := 2 + 2*2; len(p.Edges) != want {
		t.Fatalf("edges = %d, want %d", len(p.Edges), want)
	}
	byKey := map[string]sim.Time{}
	for _, e := range p.Edges {
		byKey[e.Src+"->"+e.Dst] = e.Lookahead
	}
	if got := byKey["ethernet->pcie"]; got != eth.EdgeLookahead() {
		t.Errorf("ethernet->pcie lookahead %v, want wire latency %v", got, eth.EdgeLookahead())
	}
	if got := byKey["pcie->nvme1"]; got != c1.EdgeLookahead() {
		t.Errorf("pcie->nvme1 lookahead %v, want link propagation %v", got, c1.EdgeLookahead())
	}
	if got := byKey["nvme0->pcie"]; got != c0.EdgeLookahead() {
		t.Errorf("nvme0->pcie lookahead %v, want link propagation %v", got, c0.EdgeLookahead())
	}
	// The plan's window increment is the smallest link latency — the NVMe
	// link propagation with stock configs.
	if got := p.MinLookahead(); got != c0.EdgeLookahead() {
		t.Errorf("MinLookahead = %v, want %v", got, c0.EdgeLookahead())
	}
	// Each controller declares its firmware front-end floor as turnaround;
	// the fabric and MAC domains promise nothing.
	if got := p.Turnarounds["nvme0"]; got != c0.EdgeTurnaround() {
		t.Errorf("nvme0 turnaround %v, want front-end floor %v", got, c0.EdgeTurnaround())
	}
	if c0.EdgeTurnaround() <= 0 {
		t.Error("stock config declares no front-end turnaround floor")
	}
	if _, ok := p.Turnarounds["pcie"]; ok {
		t.Error("pcie domain must not declare a turnaround")
	}
	// And it must materialize onto a shard.
	s := sim.NewShard(1)
	domains, edges, err := p.Build(s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(domains) != 4 || len(edges) != 6 {
		t.Fatalf("Build returned %d domains, %d edges", len(domains), len(edges))
	}
}

func TestDomainPlanNoControllers(t *testing.T) {
	p := DomainPlan(ethernet.DefaultConfig())
	if err := p.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if len(p.Domains) != 2 || len(p.Edges) != 2 {
		t.Fatalf("plan = %+v, want ethernet<->pcie only", p)
	}
}

func TestDomainHopLookahead(t *testing.T) {
	fc := pcie.DefaultConfig()
	c := nvme.DefaultConfig("nvme0", 0xF000_0000)
	// Defaults: 150 ns propagation each end + 150 ns root complex.
	if got, want := DomainHopLookahead(fc, c), 450*sim.Nanosecond; got != want {
		t.Fatalf("hop lookahead = %v, want %v", got, want)
	}
}

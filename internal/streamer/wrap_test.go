package streamer_test

import (
	"bytes"
	"testing"

	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// wrapPattern builds a deterministic payload whose every 64 KiB piece is
// distinguishable, so a command landing in the wrong ring slot (or a stale
// SQE replayed from a wrapped-over slot) shows up as a byte mismatch.
func wrapPattern(n int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>16)
	}
	return b
}

// TestSQRingWrapAtDepthBoundary pins the SQ ring wrap discipline at the
// QueueDepth-1 in-flight ceiling. With a 4-deep ring and a transfer worth 32
// commands, the tail wraps the ring many times while the reorder-buffer gate
// (robLive < QueueDepth-1) is saturated, and injected retryable errors force
// resubmissions to re-enter the ring across wrap boundaries. The controller
// panics if it ever fetches a slot the streamer did not fill, so a wrap-
// discipline violation fails loudly; the remaining assertions pin that the
// boundary is actually reached (the test means something) and never
// exceeded, and that the data survives byte-exact.
func TestSQRingWrapAtDepthBoundary(t *testing.T) {
	seen := 0
	k, c, dev := rig(t, streamer.URAM, true, func(cfg *streamer.Config) {
		cfg.QueueDepth = 4
		cfg.MaxCmdBytes = 64 * sim.KiB
		recovery(cfg)
	})
	dev.SetFaultInjector(func(cmd nvme.Command) uint16 {
		if cmd.Opcode != nvme.OpRead {
			return nvme.StatusSuccess
		}
		seen++
		if seen%5 == 0 {
			return nvme.StatusInternalError
		}
		return nvme.StatusSuccess
	})
	c.PktBytes = 64 * sim.KiB // tile the shrunken MaxCmdBytes pieces
	want := wrapPattern(2 * sim.MiB)
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		if err := c.WriteErr(p, 0, int64(len(want)), want); err != nil {
			t.Errorf("write failed: %v", err)
		}
		got, err := c.ReadErr(p, 0, int64(len(want)))
		if err != nil {
			t.Fatalf("read failed: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Error("data corrupted across SQ ring wraps")
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	if st.CommandRetries() == 0 {
		t.Error("no retries: resubmission never re-entered the wrapped ring")
	}
	hw := st.QueueDepthHighWater()
	if len(hw) != 1 {
		t.Fatalf("QueueDepthHighWater() returned %d queues, want 1", len(hw))
	}
	if hw[0] != 3 {
		t.Errorf("in-flight high water = %d, want QueueDepth-1 = 3 (boundary reached, never exceeded)", hw[0])
	}
}

// TestSQRingWrapMultiQueue is the sharded variant: three 4-deep rings with
// doorbell coalescing, so chunked round-robin placement, deferred tail
// flushes, and retries all cross wrap boundaries on every queue while the
// global reorder-buffer gate still caps total in-flight at QueueDepth-1.
func TestSQRingWrapMultiQueue(t *testing.T) {
	seen := 0
	k, c, dev := rig(t, streamer.URAM, true, func(cfg *streamer.Config) {
		cfg.QueueDepth = 4
		cfg.MaxCmdBytes = 64 * sim.KiB
		cfg.IOQueues = 3
		cfg.DoorbellBatch = 2
		recovery(cfg)
	})
	dev.SetFaultInjector(func(cmd nvme.Command) uint16 {
		if cmd.Opcode != nvme.OpRead {
			return nvme.StatusSuccess
		}
		seen++
		if seen%7 == 0 {
			return nvme.StatusInternalError
		}
		return nvme.StatusSuccess
	})
	c.PktBytes = 64 * sim.KiB // tile the shrunken MaxCmdBytes pieces
	want := wrapPattern(2 * sim.MiB)
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		if err := c.WriteErr(p, 0, int64(len(want)), want); err != nil {
			t.Errorf("write failed: %v", err)
		}
		got, err := c.ReadErr(p, 0, int64(len(want)))
		if err != nil {
			t.Fatalf("read failed: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Error("data corrupted across multi-queue SQ ring wraps")
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	if st.CommandRetries() == 0 {
		t.Error("no retries: resubmission never re-entered a wrapped ring")
	}
	hw := st.QueueDepthHighWater()
	if len(hw) != 3 {
		t.Fatalf("QueueDepthHighWater() returned %d queues, want 3", len(hw))
	}
	for qi, v := range hw {
		if v == 0 {
			t.Errorf("queue %d never carried a command: placement is not spreading", qi)
		}
		if v > 3 {
			t.Errorf("queue %d in-flight high water = %d, exceeds QueueDepth-1 = 3", qi, v)
		}
	}
}

package streamer_test

// Span-lifecycle property tests: every NVMe command's span closes exactly
// once with monotone stage timestamps — under clean operation and under
// every failure mode the fault and crash machinery can produce. These are
// correctness oracles for the whole recovery ladder, not just the tracer:
// a span that never closes is a command the Streamer lost, and a
// non-monotone span is an attempt-mixing bug in resubmission.

import (
	"testing"

	"snacc/internal/fault"
	"snacc/internal/nvme"
	"snacc/internal/obs"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// attachSpanTracer wires a tracer onto a rig's streamer, including the
// device-side fetch/execute events, the way snacc.NewSystem does.
func attachSpanTracer(st *streamer.Streamer, dev *nvme.Device) *obs.Tracer {
	tr := obs.NewTracer(1 << 16)
	st.SetTracer(tr)
	dev.SetCmdObserver(func(qid, cid uint16, stage obs.Stage, at sim.Time) {
		if qid == 1 {
			st.OnDeviceEvent(cid, stage, at)
		}
	})
	return tr
}

// checkSpanInvariants asserts the core properties over a drained workload.
func checkSpanInvariants(t *testing.T, tr *obs.Tracer) {
	t.Helper()
	if tr.Opened() == 0 {
		t.Fatal("no spans traced")
	}
	if tr.Opened() != tr.Closed() {
		t.Errorf("span leak: opened %d, closed %d", tr.Opened(), tr.Closed())
	}
	if tr.DoubleCloses() != 0 {
		t.Errorf("%d spans closed twice (a slot retired twice)", tr.DoubleCloses())
	}
	for _, sp := range tr.Spans() {
		if !sp.Monotone() {
			t.Errorf("span %d (%s %#x+%d): non-monotone stages %v (annots %v)",
				sp.ID, opName(sp), sp.Addr, sp.Len, sp.Stages, sp.Annots)
		}
		if sp.Stages[obs.StageAccepted] < 0 || sp.Stages[obs.StageRetired] < 0 {
			t.Errorf("span %d missing accepted/retired timestamps: %v", sp.ID, sp.Stages)
		}
	}
}

func opName(sp obs.Span) string {
	if sp.Write {
		return "write"
	}
	return "read"
}

// TestSpanCleanPathCoversAllStages pins the happy path: with no faults,
// every span of every variant (in-order and out-of-order) records all eight
// pipeline stages.
func TestSpanCleanPathCoversAllStages(t *testing.T) {
	for _, v := range variants() {
		for _, ooo := range []bool{false, true} {
			name := v.String()
			if ooo {
				name += "/ooo"
			}
			t.Run(name, func(t *testing.T) {
				k, c, dev := rig(t, v, false, func(cfg *streamer.Config) { cfg.OutOfOrder = ooo })
				tr := attachSpanTracer(c.Streamer(), dev)
				k.Spawn("pe", func(p *sim.Proc) {
					c.Write(p, 0, 2*sim.MiB+8192, nil)
					c.Read(p, 0, 2*sim.MiB+8192)
				})
				k.Run(0)
				checkSpanInvariants(t, tr)
				spans := tr.Spans()
				if len(spans) != 6 { // 3 write pieces + 3 read pieces
					t.Fatalf("retained %d spans, want 6", len(spans))
				}
				for _, sp := range spans {
					for st := obs.Stage(0); st < obs.NumStages; st++ {
						if sp.Stages[st] < 0 {
							t.Errorf("span %d (%s): stage %v unmarked on the clean path", sp.ID, opName(sp), st)
						}
					}
					if sp.Status != nvme.StatusSuccess || len(sp.Annots) != 0 {
						t.Errorf("span %d: status %#x annots %v on the clean path", sp.ID, sp.Status, sp.Annots)
					}
				}
				if tr.LateEvents() != 0 {
					t.Errorf("late events on the clean path: %d", tr.LateEvents())
				}
			})
		}
	}
}

// TestSpanInvariantsFaultSweep covers the per-command recovery machinery:
// retryable error statuses and dropped CQEs at aggressive rates, with the
// watchdog and the retry stage resolving every command.
func TestSpanInvariantsFaultSweep(t *testing.T) {
	for _, rate := range []float64{0.05, 0.25} {
		t.Run(sim.Time(int64(rate*100)).String(), func(t *testing.T) {
			k, c, dev := rig(t, streamer.URAM, false, func(cfg *streamer.Config) {
				recovery(cfg)
			})
			tr := attachSpanTracer(c.Streamer(), dev)
			in := fault.NewInjector(7)
			in.Add(fault.Rule{Name: "rd-err", Kind: fault.StatusError, Opcode: nvme.OpRead,
				Probability: rate, Status: nvme.StatusDataTransferError})
			in.Add(fault.Rule{Name: "wr-err", Kind: fault.StatusError, Opcode: nvme.OpWrite,
				Probability: rate, Status: nvme.StatusDataTransferError})
			in.Add(fault.Rule{Name: "cqe-loss", Kind: fault.DropCQE, Opcode: fault.OpAny,
				Probability: rate / 2})
			in.Attach(dev)
			k.Spawn("pe", func(p *sim.Proc) {
				for i := 0; i < 4; i++ {
					addr := uint64(i) * uint64(4*sim.MiB)
					c.WriteErr(p, addr, 4*sim.MiB, nil)
					c.ReadErr(p, addr, 4*sim.MiB)
				}
			})
			k.Run(0)
			checkSpanInvariants(t, tr)
			if in.Injected() == 0 {
				t.Fatal("sweep injected nothing; rates too low to exercise recovery")
			}
			// Retried spans must carry their annotations.
			if c.Streamer().CommandRetries() > 0 {
				var annotated int
				for _, sp := range tr.Spans() {
					if len(sp.Annots) > 0 {
						annotated++
					}
				}
				if annotated == 0 {
					t.Error("retries happened but no span carries an annotation")
				}
			}
		})
	}
}

// TestSpanInvariantsCrashLadder drives the full trip→reset→replay ladder
// with a recurring controller crash and checks that replayed spans stay
// monotone (the resubmission must clear the pre-crash device-path marks).
func TestSpanInvariantsCrashLadder(t *testing.T) {
	k, c, dev := rig(t, streamer.OnboardDRAM, false, crashRecovery)
	tr := attachSpanTracer(c.Streamer(), dev)
	in := fault.NewInjector(7)
	in.Add(fault.Rule{Name: "crash", Kind: fault.CrashCtrl, Opcode: fault.OpAny, Nth: 8})
	in.Attach(dev)
	k.Spawn("pe", func(p *sim.Proc) {
		c.WriteErr(p, 0, 12*sim.MiB, nil)
		c.ReadErr(p, 0, 12*sim.MiB)
	})
	k.Run(0)
	checkSpanInvariants(t, tr)
	st := c.Streamer()
	if st.BreakerTrips() == 0 || st.CommandsReplayed() == 0 {
		t.Fatalf("ladder did not run: trips=%d replayed=%d", st.BreakerTrips(), st.CommandsReplayed())
	}
	var replayed int
	for _, sp := range tr.Spans() {
		for _, a := range sp.Annots {
			if a.Kind == obs.AnnotReplay {
				replayed++
				break
			}
		}
	}
	if replayed == 0 {
		t.Error("commands were replayed but no span carries AnnotReplay")
	}
	var trips, resets int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case obs.AnnotBreakerTrip:
			trips++
		case obs.AnnotReset:
			resets++
		}
	}
	if int64(trips) != st.BreakerTrips() || int64(resets) != st.ControllerResets() {
		t.Errorf("event timeline: %d trips / %d resets, streamer says %d / %d",
			trips, resets, st.BreakerTrips(), st.ControllerResets())
	}
}

// TestSpanInvariantsControllerDeath surprise-removes the controller: every
// in-flight and subsequent span must still close, terminally, with the
// death and fail-fast annotations in place.
func TestSpanInvariantsControllerDeath(t *testing.T) {
	k, c, dev := rig(t, streamer.URAM, false, crashRecovery)
	tr := attachSpanTracer(c.Streamer(), dev)
	in := fault.NewInjector(7)
	in.Add(fault.Rule{Name: "remove", Kind: fault.RemoveCtrl, Opcode: fault.OpAny, Nth: 6, Count: 1})
	in.Attach(dev)
	k.Spawn("pe", func(p *sim.Proc) {
		c.WriteErr(p, 0, 16*sim.MiB, nil)
	})
	k.Run(0)
	checkSpanInvariants(t, tr)
	if !c.Streamer().Dead() {
		t.Fatal("controller should be dead")
	}
	var terminal, annotated int
	for _, sp := range tr.Spans() {
		if sp.Status == nvme.StatusControllerUnavailable {
			terminal++
		}
		for _, a := range sp.Annots {
			if a.Kind == obs.AnnotDead || a.Kind == obs.AnnotFailFast {
				annotated++
				break
			}
		}
	}
	if terminal == 0 || annotated == 0 {
		t.Errorf("death left no trace: %d terminal statuses, %d annotated spans", terminal, annotated)
	}
	var death int
	for _, ev := range tr.Events() {
		if ev.Kind == obs.AnnotDead {
			death++
		}
	}
	if death != 1 {
		t.Errorf("death events = %d, want 1", death)
	}
}

// TestSpanInvariantsHangRecovery freezes the command engine mid-workload;
// the hang resolves (revive or breaker), and every span must still close.
func TestSpanInvariantsHangRecovery(t *testing.T) {
	k, c, dev := rig(t, streamer.URAM, false, crashRecovery)
	tr := attachSpanTracer(c.Streamer(), dev)
	in := fault.NewInjector(7)
	in.Add(fault.Rule{Name: "hang", Kind: fault.HangCtrl, Opcode: fault.OpAny,
		Nth: 4, Count: 1, Delay: 2 * sim.Millisecond})
	in.Attach(dev)
	k.Spawn("pe", func(p *sim.Proc) {
		c.WriteErr(p, 0, 8*sim.MiB, nil)
		c.ReadErr(p, 0, 8*sim.MiB)
	})
	k.Run(0)
	checkSpanInvariants(t, tr)
	if in.Injected() == 0 {
		t.Fatal("hang never fired")
	}
}

// TestSpanInvariantsDegradedStriping removes one member of a 2-wide array
// mid-workload. Both members share one tracer (one kernel, so the
// single-threaded discipline holds) and the invariants must hold across the
// healthy member's traffic and the dead member's fail-fast spans alike.
func TestSpanInvariantsDegradedStriping(t *testing.T) {
	k, s, devs := stripedRig(t, 2, false, crashRecovery)
	tr := obs.NewTracer(1 << 16)
	for i := 0; i < s.Width(); i++ {
		st := s.Member(i).Streamer()
		st.SetTracer(tr)
		dev := devs[i]
		stm := st
		dev.SetCmdObserver(func(qid, cid uint16, stage obs.Stage, at sim.Time) {
			if qid == 1 {
				stm.OnDeviceEvent(cid, stage, at)
			}
		})
	}
	in := fault.NewInjector(7)
	in.Add(fault.Rule{Name: "remove", Kind: fault.RemoveCtrl, Opcode: fault.OpAny, Nth: 4, Count: 1})
	in.Attach(devs[1])
	k.Spawn("pe", func(p *sim.Proc) {
		s.WriteErr(p, 0, 16*sim.MiB, nil)
		s.ReadErr(p, 0, 16*sim.MiB)
	})
	k.Run(0)
	checkSpanInvariants(t, tr)
	if !s.Member(1).Streamer().Dead() {
		t.Fatal("member 1 should be dead")
	}
	if s.DegradedReads() == 0 && s.DegradedWrites() == 0 {
		t.Error("no degraded operations recorded despite a dead member")
	}
}

package streamer_test

import (
	"encoding/binary"
	"testing"

	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

// prpRig assembles a system and returns handles plus a probe port able to
// read the streamer's PRP window the way the NVMe controller does.
func prpProbe(t *testing.T, v streamer.Variant) (*tapasco.Platform, *streamer.Streamer, func(addr uint64, entries int) []uint64) {
	t.Helper()
	k := sim.NewKernel()
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssd0", ssdBAR))
	stCfg := streamer.DefaultConfig("snacc0", 0, v)
	st := pl.AddStreamer(stCfg)
	drv := tapasco.NewDriver(pl, "ssd0", ssdBAR)
	k.Spawn("init", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			t.Errorf("%v", err)
			return
		}
		if err := drv.AttachStreamer(p, st, 1); err != nil {
			t.Errorf("%v", err)
		}
	})
	k.Run(0)
	// Probe from the SSD's perspective: a raw read of the PRP region.
	probe := func(addr uint64, entries int) []uint64 {
		buf := make([]byte, entries*8)
		donech := false
		k.Spawn("probe", func(p *sim.Proc) {
			// Use the host port (always granted) to issue the read.
			pl.Host.Port.ReadB(p, addr, int64(len(buf)), buf)
			donech = true
		})
		k.Run(0)
		if !donech {
			t.Fatal("probe read stalled")
		}
		out := make([]uint64, entries)
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(buf[i*8:])
		}
		return out
	}
	return pl, st, probe
}

// TestPRPShadowBitComputation verifies the URAM variant's Figure 2 trick:
// reading the shadow half (bit 22 set) returns entries base+n×4096 computed
// on the fly from the read address, with no stored list anywhere.
func TestPRPShadowBitComputation(t *testing.T) {
	_, st, probe := prpProbe(t, streamer.URAM)
	base := st.Config().WindowBase
	// Simulate the controller reading a PRP list for a command whose first
	// payload page sits at buffer offset 64 KiB: PRP2 = (off+4096) | bit22.
	secondPage := uint64(64*1024 + 4096)
	listAddr := base + (secondPage | streamer.PRPShadowBit)
	entries := probe(listAddr, 8)
	for i, e := range entries {
		want := base + secondPage + uint64(i)*4096
		if e != want {
			t.Fatalf("shadow entry %d = %#x, want %#x", i, e, want)
		}
	}
	// Reads at an offset within the list page must see later entries:
	// entry j of the list read at listAddr+j*8.
	tail := probe(listAddr+5*8, 3)
	for i, e := range tail {
		want := base + secondPage + uint64(5+i)*4096
		if e != want {
			t.Fatalf("offset shadow entry %d = %#x, want %#x", i, e, want)
		}
	}
}

// TestPRPWindowBounds: addresses inside the BAR but outside any configured
// sub-window must fault in the decode rather than silently aliasing.
func TestPRPWindowBounds(t *testing.T) {
	pl, st, _ := prpProbe(t, streamer.URAM)
	defer func() {
		if recover() == nil {
			t.Error("out-of-window access did not panic")
		}
	}()
	addr := st.Config().WindowBase + uint64(st.WindowSize())
	buf := make([]byte, 8)
	// Issue from kernel context so the panic is recoverable here.
	pl.Host.Port.Read(addr, 8, buf, nil)
	pl.K.Run(0)
}

// TestPRPRegfileComputation verifies the DRAM variants' Figure 3 mechanism:
// PRP2 encodes the command slot into a small window; reads there return
// entries computed from the register file. Exercised end to end through a
// functional transfer, then checked by direct window reads against the
// known buffer layout.
func TestPRPRegfileComputation(t *testing.T) {
	pl, st, probe := prpProbe(t, streamer.OnboardDRAM)
	base := st.Config().WindowBase
	// Drive one >8 KiB write so command slot 0 loads the register file;
	// the mapping remains observable afterwards.
	c := streamer.NewClient(st)
	done := false
	pl.K.Spawn("drive", func(p *sim.Proc) {
		c.Write(p, 0, 64*1024, nil)
		done = true
	})
	pl.K.Run(0)
	if !done {
		t.Fatal("priming write stalled")
	}
	// Slot 0 carried the 64 KiB write from buffer offset 0 (write buffer):
	// its second page is offset 4096 of the write region, which lives at
	// windowBase + ReadBufBytes.
	prpWindow := base + uint64(st.Config().ReadBufBytes+st.Config().WriteBufBytes)
	entries := probe(prpWindow, 4)
	wantBase := base + uint64(st.Config().ReadBufBytes) + 4096
	for i, e := range entries {
		want := wantBase + uint64(i)*4096
		if e != want {
			t.Fatalf("regfile entry %d = %#x, want %#x", i, e, want)
		}
	}
}

package streamer_test

import (
	"testing"

	"snacc/internal/nvme"
	"snacc/internal/pcie"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

// TestILADiagnosisOfP2PWriteLimit reproduces the paper's §5.2 Integrated
// Logic Analyzer analysis of the URAM write ceiling: tracing the Streamer's
// DMA interface shows that "the read accesses employed by the NVMe
// controller to retrieve the data to be written do not occur frequently
// enough to sustain a higher bandwidth, even though our end responds
// immediately".
func TestILADiagnosisOfP2PWriteLimit(t *testing.T) {
	k := sim.NewKernel()
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	dev := nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssd0", ssdBAR))
	st := pl.AddStreamer(streamer.DefaultConfig("snacc0", 0, streamer.URAM))
	drv := tapasco.NewDriver(pl, "ssd0", ssdBAR)

	tr := pcie.NewTracer(k)
	// Capture only the data-buffer window (skip SQ fetches, PRP reads).
	base := st.Config().WindowBase
	tr.Filter = func(addr uint64, n int64) bool {
		return addr >= base && addr < base+uint64(4*sim.MiB) && n >= 4096
	}
	pl.Card.AttachTracer(tr)

	k.Spawn("main", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			t.Errorf("%v", err)
			return
		}
		if err := drv.AttachStreamer(p, st, 1); err != nil {
			t.Errorf("%v", err)
			return
		}
		streamer.SeqWrite(p, streamer.NewClient(st), 0, 64*sim.MiB)
	})
	k.Run(0)

	reqs := tr.OfKind(pcie.TraceReadReq)
	if len(reqs) < 1000 {
		t.Fatalf("captured only %d data-fetch requests", len(reqs))
	}
	// Observation 1: the controller's request arrival rate caps the
	// bandwidth below the NAND program rate.
	gap := tr.MeanGap(pcie.TraceReadReq)
	impliedBW := 4096.0 / gap.Seconds()
	if impliedBW > 6.0e9 {
		t.Errorf("implied fetch bandwidth %.2f GB/s; the ILA should show the P2P cap (<6)", impliedBW/1e9)
	}
	if impliedBW < 4.8e9 {
		t.Errorf("implied fetch bandwidth %.2f GB/s implausibly low", impliedBW/1e9)
	}
	// Observation 2: "our end responds immediately" — the URAM completer's
	// service latency is a tiny fraction of the request gap.
	svc := tr.ServiceLatency().Mean()
	if svc > gap {
		t.Errorf("streamer-side service latency %v exceeds request gap %v; the limit would be ours, not P2P", svc, gap)
	}
	if svc > 2*sim.Microsecond {
		t.Errorf("URAM service latency %v; should respond in well under 2us", svc)
	}
	_ = dev
}

// TestIOMMUDisabledHasNoEffect reproduces §5.2's control experiment:
// "disabling the IOMMU had no [e]ffect" on the URAM write ceiling.
func TestIOMMUDisabledHasNoEffect(t *testing.T) {
	measure := func(iommu bool) float64 {
		k := sim.NewKernel()
		pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
		pl.Fabric.IOMMU().SetEnabled(iommu)
		nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssd0", ssdBAR))
		st := pl.AddStreamer(streamer.DefaultConfig("snacc0", 0, streamer.URAM))
		drv := tapasco.NewDriver(pl, "ssd0", ssdBAR)
		var bw float64
		k.Spawn("main", func(p *sim.Proc) {
			if err := drv.InitController(p); err != nil {
				t.Errorf("%v", err)
				return
			}
			if err := drv.AttachStreamer(p, st, 1); err != nil {
				t.Errorf("%v", err)
				return
			}
			bw = streamer.SeqWrite(p, streamer.NewClient(st), 0, 128*sim.MiB).GBps()
		})
		k.Run(0)
		return bw
	}
	on, off := measure(true), measure(false)
	rel := (off - on) / on
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.03 {
		t.Errorf("disabling the IOMMU changed write BW by %.1f%% (%.2f vs %.2f); the paper found no effect",
			rel*100, on, off)
	}
}

package streamer

import (
	"snacc/internal/bufpool"
	"snacc/internal/sim"
)

// PerfResult is one bandwidth measurement.
type PerfResult struct {
	Bytes   int64
	Elapsed sim.Time
}

// GBps returns decimal gigabytes per second, the paper's unit.
func (r PerfResult) GBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / 1e9
}

// SeqRead measures one large sequential read (the paper benchmarks "a
// single large NVMe transfer of 1 GB", split into 1 MiB commands by the
// Streamer). The caller's proc consumes the data stream.
func SeqRead(p *sim.Proc, c *Client, startAddr uint64, total int64) PerfResult {
	start := p.Now()
	c.ReadAsync(p, startAddr, total)
	var got int64
	for got < total {
		pkt := c.Streamer().ReadData.Recv(p)
		got += pkt.Bytes
		bufpool.Put(pkt.Data) // benchmark drops the payload; recycle it
		if pkt.Last && got < total {
			panic("streamer: early TLAST in sequential read")
		}
	}
	return PerfResult{Bytes: total, Elapsed: p.Now() - start}
}

// SeqWrite measures one large sequential write.
func SeqWrite(p *sim.Proc, c *Client, startAddr uint64, total int64) PerfResult {
	start := p.Now()
	c.Write(p, startAddr, total, nil)
	return PerfResult{Bytes: total, Elapsed: p.Now() - start}
}

// RandRead measures total bytes moved in ioBytes-sized reads at random
// aligned addresses, pipelined against the in-order window: commands are
// issued as fast as the Streamer accepts them while a consumer drains the
// data stream.
func RandRead(p *sim.Proc, c *Client, spanBytes, total, ioBytes int64, seed uint64) PerfResult {
	k := p.Kernel()
	rng := sim.NewRand(seed)
	count := total / ioBytes
	start := p.Now()
	done := sim.NewChan[struct{}](k, 1)
	k.Spawn("randread.consumer", func(cp *sim.Proc) {
		var got int64
		for got < total {
			pkt := c.Streamer().ReadData.Recv(cp)
			got += pkt.Bytes
			bufpool.Put(pkt.Data)
		}
		done.TryPut(struct{}{})
	})
	for i := int64(0); i < count; i++ {
		addr := uint64(rng.Int63n(spanBytes/ioBytes)) * uint64(ioBytes)
		c.ReadAsync(p, addr, ioBytes)
	}
	done.Get(p)
	return PerfResult{Bytes: total, Elapsed: p.Now() - start}
}

// RandWrite measures total bytes moved in ioBytes-sized writes at random
// aligned addresses. Responses are consumed concurrently.
func RandWrite(p *sim.Proc, c *Client, spanBytes, total, ioBytes int64, seed uint64) PerfResult {
	k := p.Kernel()
	rng := sim.NewRand(seed)
	count := total / ioBytes
	start := p.Now()
	done := sim.NewChan[struct{}](k, 1)
	k.Spawn("randwrite.consumer", func(cp *sim.Proc) {
		for i := int64(0); i < count; i++ {
			c.WaitWrite(cp)
		}
		done.TryPut(struct{}{})
	})
	for i := int64(0); i < count; i++ {
		addr := uint64(rng.Int63n(spanBytes/ioBytes)) * uint64(ioBytes)
		c.WriteAsync(p, addr, ioBytes, nil)
	}
	done.Get(p)
	return PerfResult{Bytes: total, Elapsed: p.Now() - start}
}

// LatencyRead measures queue-depth-1 read latency over `samples` random
// ioBytes accesses: from the command entering the read-command stream to
// the final data beat received (§5.3's measurement points).
func LatencyRead(p *sim.Proc, c *Client, spanBytes, ioBytes int64, samples int, seed uint64) *sim.Histogram {
	rng := sim.NewRand(seed)
	h := &sim.Histogram{}
	for i := 0; i < samples; i++ {
		addr := uint64(rng.Int63n(spanBytes/ioBytes)) * uint64(ioBytes)
		start := p.Now()
		c.ReadAsync(p, addr, ioBytes)
		c.ConsumeRead(p)
		h.Add(p.Now() - start)
	}
	return h
}

// LatencyWrite measures queue-depth-1 write latency: command+data in,
// response token out.
func LatencyWrite(p *sim.Proc, c *Client, spanBytes, ioBytes int64, samples int, seed uint64) *sim.Histogram {
	rng := sim.NewRand(seed)
	h := &sim.Histogram{}
	for i := 0; i < samples; i++ {
		addr := uint64(rng.Int63n(spanBytes/ioBytes)) * uint64(ioBytes)
		start := p.Now()
		c.Write(p, addr, ioBytes, nil)
		h.Add(p.Now() - start)
	}
	return h
}

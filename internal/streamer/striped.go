package streamer

import (
	"fmt"

	"snacc/internal/sim"
)

// Striped consolidates several NVMe Streamers (each with its own SSD and
// its own submission/completion queues) behind one address space — the
// first of §7's two multi-SSD interface options ("either consolidating
// them into a single address space or providing distinct stream
// interfaces"). Data is striped RAID-0 style: stripe i of a transfer goes
// to streamer (addr/stripe + i) mod N, so large sequential transfers engage
// every SSD concurrently and aggregate bandwidth approaches N × one SSD
// (until the card's PCIe link saturates — ablation A3).
type Striped struct {
	k           *sim.Kernel
	clients     []*Client
	stripeBytes int64

	// Per-member worker queues keep each member's write stream framed
	// while independent Write calls pipeline across the set.
	jobs []*sim.Chan[stripeJob]
	// completions delivers one token per finished WriteAsync call, in
	// issue order, carrying the worst member error (nil on clean writes).
	completions *sim.Chan[error]

	// Degraded-operation counters: stripes that failed terminally on a
	// member while the rest of the set kept streaming.
	degradedReads  int64
	degradedWrites int64
}

// stripeJob is one member-run of a striped write.
type stripeJob struct {
	devAddr uint64
	n       int64
	data    []byte
	tracker *stripeTracker
	tenant  int
}

// stripeTracker counts a write call's outstanding runs and keeps the first
// member error.
type stripeTracker struct {
	remaining int
	err       error
	s         *Striped
}

// NewStriped builds the consolidated view. stripeBytes must be a positive
// multiple of 4 KiB; 1 MiB (one NVMe command per stripe) is the natural
// choice.
func NewStriped(k *sim.Kernel, streamers []*Streamer, stripeBytes int64) *Striped {
	if len(streamers) == 0 {
		panic("streamer: striped set needs at least one streamer")
	}
	if stripeBytes <= 0 || stripeBytes%4096 != 0 {
		panic("streamer: stripe size must be a positive multiple of 4 KiB")
	}
	s := &Striped{
		k:           k,
		stripeBytes: stripeBytes,
		completions: sim.NewChan[error](k, 1<<20),
	}
	for i, st := range streamers {
		c := NewClient(st)
		s.clients = append(s.clients, c)
		jobs := sim.NewChan[stripeJob](k, 64)
		s.jobs = append(s.jobs, jobs)
		// Issue worker: pushes runs through the member's write stream in
		// job order. Ack worker: pairs response tokens FIFO.
		acks := sim.NewChan[*stripeTracker](k, 1<<20)
		member := i
		k.Spawn(fmt.Sprintf("stripe%d.issue", i), func(p *sim.Proc) {
			p.SetDaemon(true)
			for {
				j := jobs.Get(p)
				c.writeAsyncT(p, j.tenant, j.devAddr, j.n, j.data)
				acks.Put(p, j.tracker)
			}
		})
		k.Spawn(fmt.Sprintf("stripe%d.ack", i), func(p *sim.Proc) {
			p.SetDaemon(true)
			for {
				tr := acks.Get(p)
				// A dead member resolves its stripes with terminal errors
				// rather than stalling the set: record, count, keep going.
				if err := c.WaitWriteErr(p); err != nil {
					s.degradedWrites++
					if tr.err == nil {
						tr.err = fmt.Errorf("striped member %d: %w", member, err)
					}
				}
				tr.remaining--
				if tr.remaining == 0 {
					tr.s.completions.TryPut(tr.err)
				}
			}
		})
	}
	return s
}

// Width returns the number of member streamers.
func (s *Striped) Width() int { return len(s.clients) }

// StripeBytes returns the striping granule.
func (s *Striped) StripeBytes() int64 { return s.stripeBytes }

// stripeRun describes one contiguous piece on one member device.
type stripeRun struct {
	member  int
	devAddr uint64
	off     int64 // offset within the logical transfer
	n       int64
}

// mapRange splits logical [addr, addr+n) into per-member runs. The logical
// address space interleaves stripes across members; each member's device
// address advances one stripe per logical round. Transfers need not be
// stripe aligned — a partial first or last stripe simply becomes a shorter
// run at the matching offset within the member's stripe.
func (s *Striped) mapRange(addr uint64, n int64) []stripeRun {
	if addr%512 != 0 || n%512 != 0 {
		panic(fmt.Sprintf("streamer: striped transfer %d@%#x not 512-aligned", n, addr))
	}
	var runs []stripeRun
	var off int64
	for n > 0 {
		pos := addr + uint64(off)
		stripeIdx := pos / uint64(s.stripeBytes)
		within := int64(pos % uint64(s.stripeBytes))
		member := int(stripeIdx % uint64(len(s.clients)))
		devStripe := stripeIdx / uint64(len(s.clients))
		m := s.stripeBytes - within
		if m > n {
			m = n
		}
		runs = append(runs, stripeRun{
			member:  member,
			devAddr: devStripe*uint64(s.stripeBytes) + uint64(within),
			off:     off,
			n:       m,
		})
		off += m
		n -= m
	}
	return runs
}

// byMember groups runs per member so each member's AXI write stream sees
// one framed request at a time (interleaving packets from two requests on
// one stream would corrupt the TLAST framing).
func (s *Striped) byMember(runs []stripeRun) [][]stripeRun {
	grouped := make([][]stripeRun, len(s.clients))
	for _, r := range runs {
		grouped[r.member] = append(grouped[r.member], r)
	}
	return grouped
}

// WriteAsync stores n bytes at the consolidated address, striping across
// the members, without waiting for completion; pair each call with one
// WaitWrite. Independent calls pipeline across images/requests while each
// member's stream stays correctly framed.
func (s *Striped) WriteAsync(p *sim.Proc, addr uint64, n int64, data []byte) {
	s.WriteAsyncT(p, 0, addr, n, data)
}

// WriteAsyncT is WriteAsync with the command's spans attributed to a tenant,
// so per-tenant attribution survives striping across members.
func (s *Striped) WriteAsyncT(p *sim.Proc, tenant int, addr uint64, n int64, data []byte) {
	runs := s.mapRange(addr, n)
	tr := &stripeTracker{remaining: len(runs), s: s}
	for _, r := range runs {
		var d []byte
		if data != nil {
			d = data[r.off : r.off+r.n]
		}
		s.jobs[r.member].Put(p, stripeJob{devAddr: r.devAddr, n: r.n, data: d, tracker: tr, tenant: tenant})
	}
}

// WaitWrite blocks until one earlier WriteAsync call completes (tokens
// arrive in issue order), discarding any degraded-member error.
func (s *Striped) WaitWrite(p *sim.Proc) {
	s.completions.Get(p)
}

// WaitWriteErr blocks until one earlier WriteAsync call completes and
// returns the first member error, nil when every stripe landed.
func (s *Striped) WaitWriteErr(p *sim.Proc) error {
	return s.completions.Get(p)
}

// Write is the blocking form: stripe, then wait for every member.
func (s *Striped) Write(p *sim.Proc, addr uint64, n int64, data []byte) {
	s.WriteAsync(p, addr, n, data)
	s.WaitWrite(p)
}

// WriteErr is the blocking form with degraded-member errors surfaced.
func (s *Striped) WriteErr(p *sim.Proc, addr uint64, n int64, data []byte) error {
	s.WriteAsync(p, addr, n, data)
	return s.WaitWriteErr(p)
}

// stripeReadResult is one member worker's outcome.
type stripeReadResult struct {
	functional bool
	err        error
}

// Read returns n bytes from the consolidated address. Reads are not safe
// to issue concurrently with each other (the data streams would demux
// ambiguously); interleave them between Write/WaitWrite pairs instead.
// Degraded-member errors are discarded; use ReadErr to observe them.
func (s *Striped) Read(p *sim.Proc, addr uint64, n int64) []byte {
	data, _ := s.ReadErr(p, addr, n)
	return data
}

// ReadErr reads n bytes and surfaces degraded operation: a dead member
// fails its stripes with a terminal error while the surviving members keep
// streaming theirs. On error the returned buffer still holds the survivors'
// bytes (the dead member's runs read as zero).
func (s *Striped) ReadErr(p *sim.Proc, addr uint64, n int64) ([]byte, error) {
	return s.ReadErrT(p, 0, addr, n)
}

// ReadErrT is ReadErr with the command's spans attributed to a tenant.
func (s *Striped) ReadErrT(p *sim.Proc, tenant int, addr uint64, n int64) ([]byte, error) {
	grouped := s.byMember(s.mapRange(addr, n))
	out := make([]byte, n)
	done := sim.NewChan[stripeReadResult](s.k, len(s.clients))
	active := 0
	for member, runs := range grouped {
		if len(runs) == 0 {
			continue
		}
		active++
		c := s.clients[member]
		member, runs := member, runs
		s.k.Spawn("stripe.r", func(rp *sim.Proc) {
			res := stripeReadResult{}
			for _, r := range runs {
				d, err := c.readErrT(rp, tenant, r.devAddr, r.n)
				if err != nil {
					s.degradedReads++
					if res.err == nil {
						res.err = fmt.Errorf("striped member %d: %w", member, err)
					}
					continue
				}
				if d != nil {
					res.functional = true
					copy(out[r.off:r.off+r.n], d)
				}
			}
			done.TryPut(res)
		})
	}
	functional := false
	var err error
	for i := 0; i < active; i++ {
		res := done.Get(p)
		functional = functional || res.functional
		if err == nil {
			err = res.err
		}
	}
	if !functional {
		return nil, err
	}
	return out, err
}

// DegradedReads returns stripes whose member failed them terminally while
// the rest of the set kept serving reads.
func (s *Striped) DegradedReads() int64 { return s.degradedReads }

// DegradedWrites returns stripes whose member failed them terminally while
// the rest of the set kept serving writes.
func (s *Striped) DegradedWrites() int64 { return s.degradedWrites }

// DeadMembers lists the member indices whose controllers were declared
// dead by the recovery ladder.
func (s *Striped) DeadMembers() []int {
	var dead []int
	for i, c := range s.clients {
		if c.Streamer().Dead() {
			dead = append(dead, i)
		}
	}
	return dead
}

// Member returns the client for one member streamer.
func (s *Striped) Member(i int) *Client { return s.clients[i] }

package streamer

import (
	"fmt"

	"snacc/internal/nvme"
	"snacc/internal/pcie"
	"snacc/internal/sim"
)

// Window layout. Each streamer decodes one aligned window of the FPGA BAR:
//
//	URAM variant (Figure 2):
//	  [0, 4 MiB)        payload buffer (URAM)
//	  [4 MiB, 8 MiB)    PRP shadow — bit 22 selects this half; reads return
//	                    on-the-fly computed PRP entries
//	  [8 MiB, ...)      SQ FIFO window, CQ (reorder buffer) window
//	  window size 16 MiB
//
//	On-board DRAM variant (Figure 3):
//	  [0, 128 MiB)      payload buffers in card DRAM (64 MiB read+write)
//	  [128 MiB, +256 KiB) PRP window — one page per command ID, reads
//	                    return entries computed from the register file
//	  [129 MiB, ...)    SQ window, CQ window; window size 256 MiB
//
//	Host DRAM variant: no data region (payload lives in pinned host
//	memory); PRP window + SQ + CQ only; window size 2 MiB.
const ctrlRegionGap = 64 * sim.KiB

type windowLayout struct {
	dataOff, dataSize int64
	prpOff, prpSize   int64
	sqOff, cqOff      int64
	size              int64
}

func (s *Streamer) layout() windowLayout { return layoutFor(s.cfg) }

// WindowSizeFor computes the BAR window span a configuration will decode,
// so the platform can allocate the window before building the streamer.
func WindowSizeFor(cfg Config) int64 { return layoutFor(cfg).size }

func layoutFor(cfg Config) windowLayout {
	qd := int64(cfg.QueueDepth)
	switch cfg.Variant {
	case URAM:
		if cfg.ReadBufBytes != 4*sim.MiB || cfg.WriteBufBytes != 0 {
			panic("streamer: URAM variant uses one shared 4 MiB buffer")
		}
		return windowLayout{
			dataOff: 0, dataSize: 4 * sim.MiB,
			prpOff: 4 * sim.MiB, prpSize: 4 * sim.MiB,
			sqOff: 8 * sim.MiB, cqOff: 8*sim.MiB + ctrlRegionGap,
			size: 16 * sim.MiB,
		}
	case OnboardDRAM:
		data := cfg.ReadBufBytes + cfg.WriteBufBytes
		return windowLayout{
			dataOff: 0, dataSize: data,
			prpOff: data, prpSize: qd * nvme.PageSize,
			sqOff: data + sim.MiB, cqOff: data + sim.MiB + ctrlRegionGap,
			size: nextPow2(data + 2*sim.MiB),
		}
	case HostDRAM:
		return windowLayout{
			prpOff: 0, prpSize: qd * nvme.PageSize,
			sqOff: sim.MiB, cqOff: sim.MiB + ctrlRegionGap,
			size: 2 * sim.MiB,
		}
	default:
		panic("streamer: unknown variant")
	}
}

func nextPow2(n int64) int64 {
	p := int64(1)
	for p < n {
		p <<= 1
	}
	return p
}

func (s *Streamer) windowSize() int64 { return s.layout().size }

// sqOffFor / cqOffFor place I/O queue pair i's control regions: each pair
// occupies 2*ctrlRegionGap after the layout's base SQ offset. Every variant
// reserves at least MaxIOQueues*2*ctrlRegionGap of control space (the host
// DRAM window has exactly that — the source of the MaxIOQueues bound), and a
// QueueDepth-1024 SQ of 64-byte entries fills one gap exactly.
func (lo windowLayout) sqOffFor(i int) int64 { return lo.sqOff + int64(i)*2*ctrlRegionGap }
func (lo windowLayout) cqOffFor(i int) int64 { return lo.sqOffFor(i) + ctrlRegionGap }

// installWindows wires the streamer's sub-regions into the FPGA BAR router.
func (s *Streamer) installWindows(router *pcie.RangeRouter) {
	lo := s.layout()
	if s.cfg.WindowBase%uint64(lo.size) != 0 {
		panic(fmt.Sprintf("streamer: window base %#x not aligned to window size %#x", s.cfg.WindowBase, lo.size))
	}
	if lo.dataSize > 0 {
		if s.res.Local == nil {
			panic("streamer: local-buffer variant needs Resources.Local")
		}
		router.AddRange(s.cfg.WindowBase+uint64(lo.dataOff), lo.dataSize, &dataWindow{s: s})
	} else if s.res.HostRead == nil || s.res.HostWrite == nil {
		panic("streamer: host-DRAM variant needs pinned host chunk buffers")
	}
	router.AddRange(s.cfg.WindowBase+uint64(lo.prpOff), lo.prpSize, &prpWindow{s: s})
	for qi := range s.queues {
		router.AddRange(s.cfg.WindowBase+uint64(lo.sqOffFor(qi)), int64(s.cfg.QueueDepth*nvme.SQESize), &sqWindow{s: s, qi: qi})
		router.AddRange(s.cfg.WindowBase+uint64(lo.cqOffFor(qi)), int64(s.cfg.QueueDepth*nvme.CQESize), &cqWindow{s: s, qi: qi})
	}
}

// SQBusAddr and CQBusAddr are the queue base addresses the host driver
// passes to CreateIOSQ/CreateIOCQ for I/O queue pair i (0-based streamer
// index).
func (s *Streamer) SQBusAddr(i int) uint64 {
	return s.cfg.WindowBase + uint64(s.layout().sqOffFor(i))
}

// CQBusAddr returns queue pair i's completion-queue (reorder buffer window)
// bus address.
func (s *Streamer) CQBusAddr(i int) uint64 {
	return s.cfg.WindowBase + uint64(s.layout().cqOffFor(i))
}

// ---- payload buffer plumbing ----

// bufPhys returns the bus address of a payload-buffer page.
func (s *Streamer) bufPhys(isWrite bool, off int64) uint64 {
	switch s.cfg.Variant {
	case URAM:
		return s.cfg.WindowBase + uint64(off)
	case OnboardDRAM:
		base := int64(0)
		if isWrite {
			base = s.cfg.ReadBufBytes
		}
		return s.cfg.WindowBase + uint64(base+off)
	case HostDRAM:
		buf := s.res.HostRead
		if isWrite {
			buf = s.res.HostWrite
		}
		phys, _ := buf.Translate(off)
		return phys
	default:
		panic("streamer: unknown variant")
	}
}

// bufWrite stores n bytes of PE data into the payload buffer at off. The
// write is posted — the FSM moves on once the data has left its pipeline;
// PCIe posted-write ordering guarantees the payload lands in host memory
// before the doorbell (also a posted write on the same path) triggers the
// controller's fetch. consumed (optional) fires once data has been copied
// out of the caller's slice and the slice may be recycled: immediately for
// the local variants (WriteAccess copies at call time), and after the last
// PCIe delivery for the host-DRAM variant (the port retains the payload
// until its completer has consumed it).
func (s *Streamer) bufWrite(p *sim.Proc, isWrite bool, off, n int64, data []byte, consumed func()) {
	if s.cfg.Variant == HostDRAM {
		buf := s.res.HostRead
		if isWrite {
			buf = s.res.HostWrite
		}
		runs := buf.Runs(off, n)
		pending := len(runs)
		var pos int64
		for _, run := range runs {
			var d []byte
			if data != nil {
				d = data[pos : pos+run.Len]
			}
			pos += run.Len
			s.port.Write(run.Phys, run.Len, d, func() {
				pending--
				if pending == 0 && consumed != nil {
					consumed()
				}
			})
		}
		return
	}
	local := s.localOff(isWrite, off)
	s.res.Local.WriteAccess(local, n, data, func() {})
	if consumed != nil {
		consumed()
	}
}

// bufReadAsync drains n bytes from the payload buffer at off, invoking done
// when the data is available.
func (s *Streamer) bufReadAsync(isWrite bool, off, n int64, buf []byte, done func()) {
	if s.cfg.Variant == HostDRAM {
		cb := s.res.HostRead
		if isWrite {
			cb = s.res.HostWrite
		}
		runs := cb.Runs(off, n)
		remaining := len(runs)
		var pos int64
		for _, run := range runs {
			var d []byte
			if buf != nil {
				d = buf[pos : pos+run.Len]
			}
			pos += run.Len
			s.port.Read(run.Phys, run.Len, d, func() {
				remaining--
				if remaining == 0 {
					done()
				}
			})
		}
		return
	}
	local := s.localOff(isWrite, off)
	s.res.Local.ReadAccess(local, n, buf, done)
}

// localOff maps a buffer offset to the local memory address space.
func (s *Streamer) localOff(isWrite bool, off int64) uint64 {
	base := int64(0)
	if isWrite && s.cfg.Variant == OnboardDRAM {
		base = s.cfg.ReadBufBytes
	}
	return s.res.LocalBase + uint64(base+off)
}

// ---- BAR window completers ----

// dataWindow exposes the local payload buffer to the NVMe controller's DMA
// (arrows ③/④ in Figure 1).
type dataWindow struct{ s *Streamer }

func (w *dataWindow) CompleteRead(addr uint64, n int64, buf []byte, done func()) {
	rel := addr - w.s.cfg.WindowBase
	w.s.res.Local.ReadAccess(w.s.res.LocalBase+rel, n, buf, done)
}

func (w *dataWindow) CompleteWrite(addr uint64, n int64, data []byte) {
	rel := addr - w.s.cfg.WindowBase
	w.s.res.Local.WriteAccess(w.s.res.LocalBase+rel, n, data, func() {})
}

// sqWindow serves the controller's SQE fetches from queue pair qi's in-IP
// FIFO (arrow ②).
type sqWindow struct {
	s  *Streamer
	qi int
}

const fifoReadLatency = 50 * sim.Nanosecond

func (w *sqWindow) CompleteRead(addr uint64, n int64, buf []byte, done func()) {
	s := w.s
	q := s.queues[w.qi]
	rel := int64(addr - s.cfg.WindowBase - uint64(s.layout().sqOffFor(w.qi)))
	if rel%nvme.SQESize != 0 || n%nvme.SQESize != 0 {
		panic("streamer: partial SQE fetch")
	}
	if buf != nil {
		for off := int64(0); off < n; off += nvme.SQESize {
			idx := int((rel + off) / nvme.SQESize)
			if !q.sqFilled[idx] {
				panic(fmt.Sprintf("streamer: controller fetched empty SQ slot %d", idx))
			}
			copy(buf[off:off+nvme.SQESize], q.sqRing[idx])
		}
	}
	s.k.After(fifoReadLatency, done)
}

func (w *sqWindow) CompleteWrite(addr uint64, n int64, data []byte) {
	panic("streamer: SQ window is read-only for the device")
}

// cqWindow receives the controller's completion writes for queue pair qi
// into the shared reorder buffer (arrow ⑤).
type cqWindow struct {
	s  *Streamer
	qi int
}

func (w *cqWindow) CompleteRead(addr uint64, n int64, buf []byte, done func()) {
	panic("streamer: CQ window is write-only for the device")
}

func (w *cqWindow) CompleteWrite(addr uint64, n int64, data []byte) {
	if data == nil || n != nvme.CQESize {
		panic("streamer: CQ write must carry one CQE")
	}
	cqe, err := nvme.UnmarshalCompletion(data)
	if err != nil {
		panic(err)
	}
	w.s.onCQE(w.qi, cqe)
}

package streamer

import (
	"fmt"
	"sort"

	"snacc/internal/axis"
	"snacc/internal/bufpool"
	"snacc/internal/nvme"
	"snacc/internal/obs"
	"snacc/internal/sim"
)

// This file virtualizes one streamer (or one striped set) for N tenants —
// the UltraShare-style sharing layer the ROADMAP's serving north-star needs.
// Each tenant gets its own PE-facing command/data stream pair and an
// isolated LBA window; a weighted deficit-round-robin scheduler with
// per-tenant token buckets and admission control multiplexes the tenants
// onto the shared submission path (and from there across the PR 5 I/O queue
// shards). Submissions outside a tenant's window are rejected with a
// per-tenant CmdError instead of silently touching a neighbor's blocks.

// TenantConfig describes one tenant of a virtualized streamer.
type TenantConfig struct {
	// Name labels the tenant in stats and bench output. Defaults to
	// "tenant<i>".
	Name string
	// Weight is the tenant's DRR scheduling weight: with a backlog on
	// every tenant, dispatched bytes are proportional to weight.
	// Defaults to 1; must be >= 0.
	Weight int
	// LBAStart/LBABytes delimit the tenant's namespace window in device
	// bytes. Tenant addresses are window-relative: tenant address a maps
	// to device byte LBAStart+a, and a+len must stay within LBABytes.
	// Both must be 512-aligned and windows must not overlap.
	LBAStart uint64
	LBABytes int64
	// RateBytesPerSec is the tenant's token-bucket rate limit; 0 means
	// unlimited.
	RateBytesPerSec int64
	// BurstBytes is the token-bucket capacity (how far the tenant may get
	// ahead of its rate). Defaults to 4 MiB when a rate is set. A single
	// command larger than the burst still dispatches by borrowing: the
	// bucket goes negative and later dispatches wait for the debt to
	// refill.
	BurstBytes int64
	// MaxInflight is the admission-control cap: commands accepted from
	// this tenant's streams but not yet completed. The tenant's own front
	// blocks at the cap (backpressuring only its streams). Defaults to 64.
	MaxInflight int
}

// HubOptions tunes the scheduler shared by all tenants of a hub.
type HubOptions struct {
	// QuantumBytes is the DRR quantum credited per weight unit each round
	// a tenant is backlogged. Defaults to 256 KiB.
	QuantumBytes int64
	// MaxOutstanding caps commands dispatched to the backend but not yet
	// completed, across all tenants. This is the window the scheduler
	// actually arbitrates: without it the backend's deep FIFOs would
	// absorb every backlog and DRR order would not translate into service
	// order. Defaults to 16.
	MaxOutstanding int
	// FIFO disables the QoS policy: jobs dispatch in global arrival order
	// with no weights, rate limits, or fairness — only the MaxOutstanding
	// window is kept, so the comparison against DRR isolates the policy.
	// The bench uses it as the noisy-neighbor baseline.
	FIFO bool
}

// TenantStats is a snapshot of one tenant's counters. All fields are
// values, so the slice returned by TenantHub.Stats is a true copy.
type TenantStats struct {
	Name string
	// Reads/Writes count completed commands, including rejected ones.
	Reads  int64
	Writes int64
	// BytesRead counts payload bytes delivered to the tenant; BytesWritten
	// counts bytes of writes that reached the backend. Rejected commands
	// contribute to neither, so across tenants these sum to the backend's
	// global byte counters.
	BytesRead    int64
	BytesWritten int64
	// Rejected counts commands refused for leaving the tenant's LBA window
	// (or malformed: zero/unaligned length). They complete on the tenant's
	// streams with CmdError{Status: nvme.StatusLBAOutOfRange}.
	Rejected int64
	// Errors counts commands that reached the backend and completed with
	// an error (fault injection, dead controller, degraded stripes).
	Errors int64
	// Throttled counts scheduler passes that found this tenant's head job
	// token-limited.
	Throttled int64
	// Dispatched counts jobs handed to the shared submission path.
	Dispatched int64
	// MaxQueued is the high-water mark of admitted-but-incomplete
	// commands.
	MaxQueued int64
}

// tenantJob is one accepted command travelling hub-internally.
type tenantJob struct {
	tenant     int
	isWrite    bool
	addr       uint64 // device byte address (window-translated)
	n          int64
	data       []byte
	rejected   bool
	acceptedAt sim.Time
}

// tokenBucket meters dispatched bytes against a refill rate. level may go
// negative (borrowing) so one oversized command cannot starve forever.
type tokenBucket struct {
	rate  int64 // bytes per second; <= 0 disables the bucket
	burst int64 // cap on level
	level int64
	rem   int64 // byte-nanoseconds carried between refills
	last  sim.Time
}

func (b *tokenBucket) refill(now sim.Time) {
	if b.rate <= 0 || now <= b.last {
		b.last = now
		return
	}
	dt := int64(now - b.last)
	b.last = now
	if b.level >= b.burst {
		b.rem = 0
		return
	}
	if dt > (int64(1)<<62)/b.rate {
		b.level = b.burst
		b.rem = 0
		return
	}
	total := b.rate*dt + b.rem
	b.level += total / int64(sim.Second)
	b.rem = total % int64(sim.Second)
	if b.level >= b.burst {
		b.level = b.burst
		b.rem = 0
	}
}

// take charges cost when the bucket is non-negative and returns 0; otherwise
// it returns the time until the debt refills to zero. Charging may overdraw
// the bucket — that is the borrowing that lets a command larger than the
// burst through while throttling everything after it.
func (b *tokenBucket) take(now sim.Time, cost int64) sim.Time {
	if b.rate <= 0 {
		return 0
	}
	b.refill(now)
	if b.level >= 0 {
		b.level -= cost
		return 0
	}
	debt := -b.level
	wait := sim.Time((debt*int64(sim.Second) + b.rate - 1) / b.rate)
	if wait < 1 {
		wait = 1
	}
	return wait
}

// Tenant is the hub-side state of one tenant: its PE-facing streams plus
// scheduler bookkeeping. PEs drive the exported streams (or a TenantClient);
// everything else is the hub's.
type Tenant struct {
	// ReadCmd/ReadData/WriteIn/WriteResp mirror the Streamer's PE-facing
	// stream interface, scoped to this tenant.
	ReadCmd   *axis.Stream
	ReadData  *axis.Stream
	WriteIn   *axis.Stream
	WriteResp *axis.Stream

	cfg     TenantConfig
	idx     int
	quantum int64 // QuantumBytes * Weight, precomputed

	pending    []tenantJob
	deficit    int64
	bucket     tokenBucket
	admitted   int
	admWaiters []*sim.Proc

	stats    TenantStats
	readLat  obs.Hist
	writeLat obs.Hist
	queueLat obs.Hist
}

// release returns one admission slot and wakes blocked fronts.
func (t *Tenant) release() {
	t.admitted--
	if len(t.admWaiters) > 0 {
		waiters := t.admWaiters
		t.admWaiters = nil
		for _, w := range waiters {
			w.Wake()
		}
	}
}

// tenantTarget abstracts the backend under a hub. issueRead/issueWrite run
// on the hub's single issue proc (which keeps the backend's write stream
// framing and per-direction completion order intact); deliverRead and
// completeWrite run on the per-direction completion procs and pair results
// in issue order.
type tenantTarget interface {
	issueRead(p *sim.Proc, tenant int, addr uint64, n int64)
	// deliverRead forwards one read's result packets to out (ending with
	// TLAST) and returns the successfully delivered payload bytes plus the
	// first error flagged on the stream.
	deliverRead(p *sim.Proc, out *axis.Stream) (int64, error)
	issueWrite(p *sim.Proc, tenant int, addr uint64, n int64, data []byte)
	completeWrite(p *sim.Proc) error
}

// streamerTarget multiplexes tenants onto a single Streamer's streams.
type streamerTarget struct {
	s   *Streamer
	pkt int64
}

func (tg *streamerTarget) issueRead(p *sim.Proc, tenant int, addr uint64, n int64) {
	tg.s.ReadCmd.Send(p, axis.Packet{Meta: ReadRequest{Addr: addr, Len: n, Tenant: tenant}})
}

func (tg *streamerTarget) deliverRead(p *sim.Proc, out *axis.Stream) (int64, error) {
	var total int64
	var err error
	for {
		pkt := tg.s.ReadData.Recv(p)
		total += pkt.Bytes
		if ce, ok := pkt.Meta.(CmdError); ok && err == nil {
			err = ce
		}
		out.Send(p, pkt)
		if pkt.Last {
			return total, err
		}
	}
}

func (tg *streamerTarget) issueWrite(p *sim.Proc, tenant int, addr uint64, n int64, data []byte) {
	tg.s.WriteIn.Send(p, axis.Packet{Meta: WriteRequest{Addr: addr, Tenant: tenant}})
	var off int64
	for off < n {
		m := tg.pkt
		if m > n-off {
			m = n - off
		}
		var d []byte
		if data != nil {
			d = data[off : off+m]
		}
		off += m
		tg.s.WriteIn.Send(p, axis.Packet{Bytes: m, Data: d, Last: off == n})
	}
}

func (tg *streamerTarget) completeWrite(p *sim.Proc) error {
	pkt := tg.s.WriteResp.Recv(p)
	if ce, ok := pkt.Meta.(CmdError); ok {
		return ce
	}
	return nil
}

// stripedTarget multiplexes tenants onto a striped set. Writes pipeline via
// WriteAsyncT/WaitWriteErr (issue-order completions); reads execute at
// completion time because Striped reads are blocking and must not overlap.
type stripedTarget struct {
	sp    *Striped
	readQ *sim.Chan[tenantJob]
}

func (tg *stripedTarget) issueRead(p *sim.Proc, tenant int, addr uint64, n int64) {
	tg.readQ.Put(p, tenantJob{tenant: tenant, addr: addr, n: n})
}

func (tg *stripedTarget) deliverRead(p *sim.Proc, out *axis.Stream) (int64, error) {
	j := tg.readQ.Get(p)
	data, err := tg.sp.ReadErrT(p, j.tenant, j.addr, j.n)
	pkt := axis.Packet{Last: true}
	if data != nil {
		pkt.Bytes = j.n
		pkt.Data = data
	} else if err == nil {
		// Timing-only mode delivers no payload but the full byte count.
		pkt.Bytes = j.n
	}
	if err != nil {
		pkt.Meta = CmdError{Status: nvme.StatusInternalError, Addr: j.addr, Len: j.n}
	}
	out.Send(p, pkt)
	return pkt.Bytes, err
}

func (tg *stripedTarget) issueWrite(p *sim.Proc, tenant int, addr uint64, n int64, data []byte) {
	tg.sp.WriteAsyncT(p, tenant, addr, n, data)
}

func (tg *stripedTarget) completeWrite(p *sim.Proc) error {
	return tg.sp.WaitWriteErr(p)
}

// TenantHub virtualizes one backend (a Streamer or a Striped set) for N
// tenants. Create it once after the backend is initialized; drive tenants
// through Client(i) or their exported streams. All hub procs are daemons,
// so an idle hub never keeps the kernel alive.
type TenantHub struct {
	k       *sim.Kernel
	target  tenantTarget
	tenants []*Tenant
	quantum int64
	fifo    bool
	rr      int

	// outstanding counts dispatched-but-incomplete backend commands
	// against maxOutstanding — the submission window DRR arbitrates.
	outstanding    int
	maxOutstanding int
	// fifoPending is the global arrival-order queue of the FIFO baseline.
	fifoPending []tenantJob

	dispatchQ    *sim.Chan[tenantJob]
	readPending  *sim.Chan[tenantJob]
	writePending *sim.Chan[tenantJob]
	workSignal   *sim.Chan[struct{}]
}

// NewTenantHub virtualizes a single streamer for the given tenants.
func NewTenantHub(k *sim.Kernel, st *Streamer, cfgs []TenantConfig, opts HubOptions) (*TenantHub, error) {
	return newTenantHub(k, &streamerTarget{s: st, pkt: 256 * sim.KiB}, st.cfg.StreamCfg, cfgs, opts)
}

// NewStripedTenantHub virtualizes a striped set for the given tenants.
func NewStripedTenantHub(k *sim.Kernel, sp *Striped, cfgs []TenantConfig, opts HubOptions) (*TenantHub, error) {
	tg := &stripedTarget{sp: sp, readQ: sim.NewChan[tenantJob](k, 1<<16)}
	return newTenantHub(k, tg, axis.DefaultConfig(), cfgs, opts)
}

func newTenantHub(k *sim.Kernel, target tenantTarget, streamCfg axis.Config, cfgs []TenantConfig, opts HubOptions) (*TenantHub, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("streamer: tenant hub needs at least one tenant")
	}
	quantum := opts.QuantumBytes
	if quantum == 0 {
		quantum = 256 * sim.KiB
	}
	if quantum < 0 {
		return nil, fmt.Errorf("streamer: QuantumBytes must be positive, got %d", opts.QuantumBytes)
	}
	maxOut := opts.MaxOutstanding
	if maxOut == 0 {
		maxOut = 16
	}
	if maxOut < 0 {
		return nil, fmt.Errorf("streamer: MaxOutstanding must be positive, got %d", opts.MaxOutstanding)
	}
	h := &TenantHub{
		k:              k,
		target:         target,
		quantum:        quantum,
		fifo:           opts.FIFO,
		maxOutstanding: maxOut,
		dispatchQ:      sim.NewChan[tenantJob](k, 256),
		readPending:    sim.NewChan[tenantJob](k, 1<<16),
		writePending:   sim.NewChan[tenantJob](k, 1<<16),
		workSignal:     sim.NewChan[struct{}](k, 1),
	}
	for i, cfg := range cfgs {
		if cfg.Name == "" {
			cfg.Name = fmt.Sprintf("tenant%d", i)
		}
		if cfg.Weight == 0 {
			cfg.Weight = 1
		}
		if cfg.Weight < 0 {
			return nil, fmt.Errorf("streamer: tenant %q: negative weight %d", cfg.Name, cfg.Weight)
		}
		if cfg.LBABytes <= 0 {
			return nil, fmt.Errorf("streamer: tenant %q: LBABytes must be positive, got %d", cfg.Name, cfg.LBABytes)
		}
		if cfg.LBAStart%512 != 0 || cfg.LBABytes%512 != 0 {
			return nil, fmt.Errorf("streamer: tenant %q: LBA window %d@%#x not 512-aligned", cfg.Name, cfg.LBABytes, cfg.LBAStart)
		}
		if cfg.RateBytesPerSec < 0 {
			return nil, fmt.Errorf("streamer: tenant %q: negative rate %d", cfg.Name, cfg.RateBytesPerSec)
		}
		if cfg.RateBytesPerSec > 0 && cfg.BurstBytes == 0 {
			cfg.BurstBytes = 4 * sim.MiB
		}
		if cfg.BurstBytes < 0 {
			return nil, fmt.Errorf("streamer: tenant %q: negative burst %d", cfg.Name, cfg.BurstBytes)
		}
		if cfg.MaxInflight == 0 {
			cfg.MaxInflight = 64
		}
		if cfg.MaxInflight < 0 {
			return nil, fmt.Errorf("streamer: tenant %q: negative MaxInflight %d", cfg.Name, cfg.MaxInflight)
		}
		name := fmt.Sprintf("tenant%d.%s", i, cfg.Name)
		t := &Tenant{
			ReadCmd:   axis.New(k, name+".rdcmd", streamCfg),
			ReadData:  axis.New(k, name+".rddata", streamCfg),
			WriteIn:   axis.New(k, name+".wr", streamCfg),
			WriteResp: axis.New(k, name+".wrresp", streamCfg),
			cfg:       cfg,
			idx:       i,
			quantum:   quantum * int64(cfg.Weight),
			bucket: tokenBucket{
				rate:  cfg.RateBytesPerSec,
				burst: cfg.BurstBytes,
				level: cfg.BurstBytes,
			},
		}
		t.stats.Name = cfg.Name
		h.tenants = append(h.tenants, t)
	}
	if err := h.checkOverlap(); err != nil {
		return nil, err
	}
	for i, t := range h.tenants {
		t := t
		k.Spawn(fmt.Sprintf("hub.t%d.rdfront", i), h.readFront(t))
		k.Spawn(fmt.Sprintf("hub.t%d.wrfront", i), h.writeFront(t))
	}
	k.Spawn("hub.sched", h.schedLoop)
	k.Spawn("hub.issue", h.issueLoop)
	k.Spawn("hub.rdcomplete", h.readCompleteLoop)
	k.Spawn("hub.wrcomplete", h.writeCompleteLoop)
	return h, nil
}

// checkOverlap rejects overlapping tenant LBA windows — the windows are the
// isolation boundary, so an overlap would be silent shared state.
func (h *TenantHub) checkOverlap() error {
	idx := make([]int, len(h.tenants))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return h.tenants[idx[a]].cfg.LBAStart < h.tenants[idx[b]].cfg.LBAStart
	})
	for i := 1; i < len(idx); i++ {
		prev, cur := h.tenants[idx[i-1]].cfg, h.tenants[idx[i]].cfg
		if prev.LBAStart+uint64(prev.LBABytes) > cur.LBAStart {
			return fmt.Errorf("streamer: tenant LBA windows overlap: %q [%#x,%#x) and %q [%#x,%#x)",
				prev.Name, prev.LBAStart, prev.LBAStart+uint64(prev.LBABytes),
				cur.Name, cur.LBAStart, cur.LBAStart+uint64(cur.LBABytes))
		}
	}
	return nil
}

// validate bounds-checks a window-relative request. It must hold BEFORE the
// window translation: addr and addr+n in [0, LBABytes], 512-aligned, n > 0.
func (h *TenantHub) validate(t *Tenant, j *tenantJob) bool {
	if j.n <= 0 || j.addr%512 != 0 || j.n%512 != 0 {
		return false
	}
	end := j.addr + uint64(j.n)
	return end >= j.addr && end <= uint64(t.cfg.LBABytes)
}

// enqueue admits one command from a tenant front: block at the admission
// cap, validate and window-translate, then queue for the scheduler (or
// dispatch directly in FIFO mode).
func (h *TenantHub) enqueue(p *sim.Proc, t *Tenant, j tenantJob) {
	for t.admitted >= t.cfg.MaxInflight {
		t.admWaiters = append(t.admWaiters, p)
		p.Park()
	}
	t.admitted++
	if int64(t.admitted) > t.stats.MaxQueued {
		t.stats.MaxQueued = int64(t.admitted)
	}
	j.acceptedAt = p.Now()
	if h.validate(t, &j) {
		j.addr += t.cfg.LBAStart
	} else {
		j.rejected = true
		j.data = nil
		t.stats.Rejected++
	}
	if h.fifo {
		h.fifoPending = append(h.fifoPending, j)
	} else {
		t.pending = append(t.pending, j)
	}
	h.workSignal.TryPut(struct{}{})
}

func (h *TenantHub) readFront(t *Tenant) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			pkt := t.ReadCmd.Recv(p)
			req, ok := pkt.Meta.(ReadRequest)
			if !ok {
				panic("streamer: tenant read stream must carry ReadRequest metadata")
			}
			h.enqueue(p, t, tenantJob{tenant: t.idx, addr: req.Addr, n: req.Len})
		}
	}
}

func (h *TenantHub) writeFront(t *Tenant) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			head := t.WriteIn.Recv(p)
			req, ok := head.Meta.(WriteRequest)
			if !ok {
				panic("streamer: tenant write stream must start with WriteRequest metadata")
			}
			var n int64
			var data []byte
			done := head.Last
			for !done {
				pkt := t.WriteIn.Recv(p)
				if pkt.Data != nil {
					data = append(data, pkt.Data...)
				}
				n += pkt.Bytes
				done = pkt.Last
			}
			h.enqueue(p, t, tenantJob{tenant: t.idx, isWrite: true, addr: req.Addr, n: n, data: data})
		}
	}
}

// dispatch hands one job to the shared submission path, charging one
// outstanding-window slot for jobs that will reach the backend.
func (h *TenantHub) dispatch(p *sim.Proc, j tenantJob) {
	if !j.rejected {
		h.outstanding++
	}
	t := h.tenants[j.tenant]
	t.stats.Dispatched++
	t.queueLat.Record(p.Now() - j.acceptedAt)
	h.dispatchQ.Put(p, j)
}

// schedLoop is the QoS scheduler: deficit round robin over the tenants with
// per-tenant token buckets (or global arrival order in FIFO mode), gated by
// the shared outstanding-command window. Each pass visits every tenant
// once; a pass that made no progress but left a deficit-limited backlog
// repeats immediately (deficits accumulate at zero simulated cost); a
// token-limited pass arms a wakeup for the earliest refill; otherwise the
// scheduler parks on workSignal until an arrival or a completion.
func (h *TenantHub) schedLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		var progress, again bool
		var wait sim.Time
		if h.fifo {
			progress = h.fifoPass(p)
		} else {
			progress, again, wait = h.schedulePass(p)
		}
		if progress || again {
			continue
		}
		if wait > 0 {
			h.k.After(wait, func() { h.workSignal.TryPut(struct{}{}) })
		}
		h.workSignal.Get(p)
	}
}

// fifoPass dispatches the baseline's global queue in arrival order, only
// honoring the outstanding window.
func (h *TenantHub) fifoPass(p *sim.Proc) (progress bool) {
	for len(h.fifoPending) > 0 {
		j := h.fifoPending[0]
		if !j.rejected && h.outstanding >= h.maxOutstanding {
			break
		}
		h.fifoPending = h.fifoPending[1:]
		h.dispatch(p, j)
		progress = true
	}
	return progress
}

// schedulePass runs one DRR round. It reports whether any job dispatched,
// whether some tenant's head is deficit-limited (caller should loop so the
// deficit keeps accumulating), and the shortest token-refill wait among
// token-limited tenants (0 if none). A full outstanding window aborts the
// pass — the next completion frees a slot and re-signals.
func (h *TenantHub) schedulePass(p *sim.Proc) (progress, again bool, wait sim.Time) {
	n := len(h.tenants)
	for i := 0; i < n; i++ {
		t := h.tenants[(h.rr+i)%n]
		if len(t.pending) == 0 {
			// An idle tenant keeps no credit: deficits only measure
			// rounds spent backlogged, per classic DRR.
			t.deficit = 0
			continue
		}
		t.deficit += t.quantum
		for len(t.pending) > 0 {
			j := t.pending[0]
			if j.rejected {
				// Rejections never reach the device; completing them
				// costs no bandwidth, so they bypass window and meters.
				t.pending = t.pending[1:]
				h.dispatch(p, j)
				progress = true
				continue
			}
			if h.outstanding >= h.maxOutstanding {
				h.rr = (h.rr + 1) % n
				return progress, false, 0
			}
			if j.n > t.deficit {
				again = true
				break
			}
			if w := t.bucket.take(p.Now(), j.n); w > 0 {
				t.stats.Throttled++
				if wait == 0 || w < wait {
					wait = w
				}
				break
			}
			t.deficit -= j.n
			t.pending = t.pending[1:]
			h.dispatch(p, j)
			progress = true
		}
		if len(t.pending) == 0 {
			t.deficit = 0
		}
	}
	h.rr = (h.rr + 1) % n
	return progress, again, wait
}

// issueLoop serializes dispatched jobs into the backend. A single proc
// keeps the backend's write-stream framing intact and makes per-direction
// completion order equal dispatch order.
func (h *TenantHub) issueLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		j := h.dispatchQ.Get(p)
		if !j.rejected {
			if j.isWrite {
				h.target.issueWrite(p, j.tenant, j.addr, j.n, j.data)
			} else {
				h.target.issueRead(p, j.tenant, j.addr, j.n)
			}
		}
		if j.isWrite {
			h.writePending.Put(p, j)
		} else {
			h.readPending.Put(p, j)
		}
	}
}

// rejectError is the per-tenant error a window violation completes with.
func rejectError(j tenantJob) CmdError {
	return CmdError{Status: nvme.StatusLBAOutOfRange, Addr: j.addr, Len: j.n}
}

func (h *TenantHub) readCompleteLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		j := h.readPending.Get(p)
		t := h.tenants[j.tenant]
		if j.rejected {
			t.ReadData.Send(p, axis.Packet{Last: true, Meta: rejectError(j)})
		} else {
			n, err := h.target.deliverRead(p, t.ReadData)
			t.stats.BytesRead += n
			if err != nil {
				t.stats.Errors++
			}
			t.readLat.Record(p.Now() - j.acceptedAt)
		}
		t.stats.Reads++
		h.complete(j, t)
	}
}

// complete releases a finished job's admission slot and outstanding-window
// slot, and nudges the scheduler.
func (h *TenantHub) complete(j tenantJob, t *Tenant) {
	if !j.rejected {
		h.outstanding--
	}
	t.release()
	h.workSignal.TryPut(struct{}{})
}

func (h *TenantHub) writeCompleteLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		j := h.writePending.Get(p)
		t := h.tenants[j.tenant]
		if j.rejected {
			t.WriteResp.Send(p, axis.Packet{Last: true, Meta: rejectError(j)})
		} else {
			err := h.target.completeWrite(p)
			pkt := axis.Packet{Last: true}
			if err != nil {
				t.stats.Errors++
				pkt.Meta = err
			}
			t.stats.BytesWritten += j.n
			t.writeLat.Record(p.Now() - j.acceptedAt)
			t.WriteResp.Send(p, pkt)
		}
		t.stats.Writes++
		h.complete(j, t)
	}
}

// Tenants returns the tenant count.
func (h *TenantHub) Tenants() int { return len(h.tenants) }

// Config returns a copy of tenant i's normalized configuration.
func (h *TenantHub) Config(i int) TenantConfig { return h.tenants[i].cfg }

// Stats returns a snapshot of every tenant's counters, in tenant order.
// The returned slice and its elements are copies — mutating them cannot
// touch hub state.
func (h *TenantHub) Stats() []TenantStats {
	out := make([]TenantStats, len(h.tenants))
	for i, t := range h.tenants {
		out[i] = t.stats
	}
	return out
}

// ReadLatency returns a copy of tenant i's accept→complete read-latency
// histogram.
func (h *TenantHub) ReadLatency(i int) obs.Hist { return h.tenants[i].readLat }

// WriteLatency returns a copy of tenant i's accept→complete write-latency
// histogram.
func (h *TenantHub) WriteLatency(i int) obs.Hist { return h.tenants[i].writeLat }

// QueueWait returns a copy of tenant i's accept→dispatch wait histogram —
// the time commands spent queued behind the scheduler.
func (h *TenantHub) QueueWait(i int) obs.Hist { return h.tenants[i].queueLat }

// TenantClient drives one tenant's stream pair the way Client drives a raw
// streamer's. Addresses are window-relative.
type TenantClient struct {
	t *Tenant
	// PktBytes is the write-stream packet granularity. Defaults to 256 KiB.
	PktBytes int64
}

// Client returns a client for tenant i.
func (h *TenantHub) Client(i int) *TenantClient {
	return &TenantClient{t: h.tenants[i], PktBytes: 256 * sim.KiB}
}

// WriteAsync streams a write without waiting for the response token.
func (c *TenantClient) WriteAsync(p *sim.Proc, addr uint64, n int64, data []byte) {
	if n <= 0 {
		// A bare TLAST header frames the (invalid, length-zero) write so
		// the hub can reject it instead of desynchronizing the stream.
		c.t.WriteIn.Send(p, axis.Packet{Meta: WriteRequest{Addr: addr}, Last: true})
		return
	}
	c.t.WriteIn.Send(p, axis.Packet{Meta: WriteRequest{Addr: addr}})
	var off int64
	for off < n {
		m := c.PktBytes
		if m > n-off {
			m = n - off
		}
		var d []byte
		if data != nil {
			d = data[off : off+m]
		}
		off += m
		c.t.WriteIn.Send(p, axis.Packet{Bytes: m, Data: d, Last: off == n})
	}
}

// WaitWriteErr consumes one write-response token and returns its error flag
// (a rejection or a backend failure), nil on success.
func (c *TenantClient) WaitWriteErr(p *sim.Proc) error {
	pkt := c.t.WriteResp.Recv(p)
	if err, ok := pkt.Meta.(error); ok {
		return err
	}
	return nil
}

// WriteErr is the blocking write with the error flag surfaced.
func (c *TenantClient) WriteErr(p *sim.Proc, addr uint64, n int64, data []byte) error {
	c.WriteAsync(p, addr, n, data)
	return c.WaitWriteErr(p)
}

// Write is the blocking write, discarding the error flag.
func (c *TenantClient) Write(p *sim.Proc, addr uint64, n int64, data []byte) {
	c.WriteAsync(p, addr, n, data)
	c.t.WriteResp.Recv(p)
}

// ReadAsync issues a read command without consuming the data.
func (c *TenantClient) ReadAsync(p *sim.Proc, addr uint64, n int64) {
	c.t.ReadCmd.Send(p, axis.Packet{Meta: ReadRequest{Addr: addr, Len: n}})
}

// ConsumeReadErr drains packets for one read (until TLAST) and returns the
// delivered bytes, concatenated content (functional mode), and the first
// error flagged on the stream.
func (c *TenantClient) ConsumeReadErr(p *sim.Proc) (int64, []byte, error) {
	var total int64
	var data []byte
	var err error
	for {
		pkt := c.t.ReadData.Recv(p)
		if e, ok := pkt.Meta.(error); ok && err == nil {
			err = e
		}
		total += pkt.Bytes
		if pkt.Data != nil {
			data = append(data, pkt.Data...)
			// The chunk was copied out above; recycle it like
			// Client.ConsumeReadErr does.
			bufpool.Put(pkt.Data)
		}
		if pkt.Last {
			return total, data, err
		}
	}
}

// ConsumeRead drains packets for one read, ignoring error flags.
func (c *TenantClient) ConsumeRead(p *sim.Proc) (int64, []byte) {
	total, data, _ := c.ConsumeReadErr(p)
	return total, data
}

// ReadErr is the blocking read with error flags surfaced.
func (c *TenantClient) ReadErr(p *sim.Proc, addr uint64, n int64) ([]byte, error) {
	c.ReadAsync(p, addr, n)
	_, data, err := c.ConsumeReadErr(p)
	return data, err
}

// Read is the blocking read, panicking on short delivery like Client.Read.
func (c *TenantClient) Read(p *sim.Proc, addr uint64, n int64) []byte {
	c.ReadAsync(p, addr, n)
	got, data, err := c.ConsumeReadErr(p)
	if err == nil && got != n {
		panic("streamer: tenant read returned unexpected length")
	}
	return data
}

package streamer_test

import (
	"bytes"
	"errors"
	"testing"

	"snacc/internal/fault"
	"snacc/internal/nvme"
	"snacc/internal/obs"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// tenantHubRig builds a functional single-streamer rig fronted by a hub.
func tenantHubRig(t *testing.T, cfgs []streamer.TenantConfig, opts streamer.HubOptions, mut func(*streamer.Config)) (*sim.Kernel, *streamer.TenantHub, *streamer.Streamer, *nvme.Device) {
	t.Helper()
	k, c, dev := rig(t, streamer.URAM, true, mut)
	hub, err := streamer.NewTenantHub(k, c.Streamer(), cfgs, opts)
	if err != nil {
		t.Fatalf("NewTenantHub: %v", err)
	}
	return k, hub, c.Streamer(), dev
}

func threeTenants(window int64) []streamer.TenantConfig {
	return []streamer.TenantConfig{
		{Name: "alpha", Weight: 1, LBAStart: 0, LBABytes: window},
		{Name: "beta", Weight: 2, LBAStart: uint64(window), LBABytes: window},
		{Name: "gamma", Weight: 3, LBAStart: uint64(2 * window), LBABytes: window},
	}
}

// TestTenantRoundTripAndWindowTranslation: each tenant writes a distinct
// pattern at the SAME tenant-relative address; the windows keep the data
// apart on the device, and each tenant reads back exactly its own bytes.
func TestTenantRoundTripAndWindowTranslation(t *testing.T) {
	const window = 4 * sim.MiB
	k, hub, st, _ := tenantHubRig(t, threeTenants(window), streamer.HubOptions{}, nil)
	const n = 256 * sim.KiB
	finished := 0
	for i := 0; i < hub.Tenants(); i++ {
		i := i
		c := hub.Client(i)
		want := bytes.Repeat([]byte{0xA0 + byte(i)}, int(n))
		k.Spawn("pe", func(p *sim.Proc) {
			if err := c.WriteErr(p, 0, n, want); err != nil {
				t.Errorf("tenant %d write: %v", i, err)
			}
			got, err := c.ReadErr(p, 0, n)
			if err != nil {
				t.Errorf("tenant %d read: %v", i, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("tenant %d read back foreign or corrupt bytes", i)
			}
			finished++
		})
	}
	k.Run(0)
	if finished != hub.Tenants() {
		t.Fatalf("only %d/%d tenants finished", finished, hub.Tenants())
	}
	// All three tenants wrote the same relative address; the device must
	// have seen three disjoint windows' worth of traffic.
	if got, want := st.BytesFromPE(), int64(hub.Tenants())*n; got != want {
		t.Errorf("device saw %d write bytes, want %d", got, want)
	}
}

// TestTenantWindowViolationRejected: submissions outside the window (and
// malformed ones) complete with a per-tenant StatusLBAOutOfRange error and
// never touch the device.
func TestTenantWindowViolationRejected(t *testing.T) {
	const window = sim.MiB
	k, hub, st, _ := tenantHubRig(t, threeTenants(window), streamer.HubOptions{}, nil)
	c := hub.Client(1)
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		cases := []struct {
			addr uint64
			n    int64
		}{
			{uint64(window), 4096},       // starts one past the window end
			{uint64(window) - 512, 4096}, // straddles the boundary
			{0, window + 4096},           // longer than the window
			{100, 4096},                  // misaligned address
			{0, 100},                     // misaligned length
		}
		for _, tc := range cases {
			_, err := c.ReadErr(p, tc.addr, tc.n)
			var ce streamer.CmdError
			if !errors.As(err, &ce) || ce.Status != nvme.StatusLBAOutOfRange {
				t.Errorf("read %d@%#x: err = %v, want CmdError{LBAOutOfRange}", tc.n, tc.addr, err)
			}
			if err := c.WriteErr(p, tc.addr, tc.n, nil); err == nil {
				t.Errorf("write %d@%#x was not rejected", tc.n, tc.addr)
			}
		}
		// In-window traffic still flows after the rejections.
		if err := c.WriteErr(p, 0, 4096, nil); err != nil {
			t.Errorf("in-window write after rejections: %v", err)
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	stats := hub.Stats()[1]
	if stats.Rejected != 10 {
		t.Errorf("Rejected = %d, want 10", stats.Rejected)
	}
	// Rejections never reach the backend: only the one valid write did.
	if st.BytesFromPE() != 4096 {
		t.Errorf("device saw %d write bytes, want 4096", st.BytesFromPE())
	}
	if st.BytesToPE() != 0 {
		t.Errorf("device delivered %d read bytes, want 0", st.BytesToPE())
	}
}

// TestTenantDRRWeightedShares: two saturating tenants with weights 1 and 3
// should see dispatched bytes roughly proportional to their weights while
// both are backlogged.
func TestTenantDRRWeightedShares(t *testing.T) {
	const window = 32 * sim.MiB
	cfgs := []streamer.TenantConfig{
		{Name: "light", Weight: 1, LBAStart: 0, LBABytes: window, MaxInflight: 16},
		{Name: "heavy", Weight: 3, LBAStart: uint64(window), LBABytes: window, MaxInflight: 16},
	}
	k, hub, _, _ := tenantHubRig(t, cfgs, streamer.HubOptions{QuantumBytes: 64 * sim.KiB}, nil)
	const ops, ioBytes = 96, 64 * sim.KiB
	var doneAt [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		c := hub.Client(i)
		k.Spawn("pe", func(p *sim.Proc) {
			for j := 0; j < ops; j++ {
				c.ReadAsync(p, uint64(int64(j)*ioBytes%window), ioBytes)
			}
			for j := 0; j < ops; j++ {
				c.ConsumeRead(p)
			}
			doneAt[i] = p.Now()
		})
	}
	// With equal demand and a shared submission window, the weight-3
	// tenant drains its backlog well before the weight-1 tenant: while
	// both are backlogged it receives ~3 of every 4 dispatch slots.
	k.Run(0)
	if doneAt[1] >= doneAt[0] {
		t.Errorf("weight-3 tenant finished at %v, weight-1 at %v; want heavy first", doneAt[1], doneAt[0])
	}
	stats := hub.Stats()
	for i, s := range stats {
		if s.Reads != ops {
			t.Errorf("tenant %d completed %d reads, want %d", i, s.Reads, ops)
		}
	}
	// And the heavy tenant's mean accept→complete latency must beat the
	// light one's — the weighted share shows up in latency, not only in
	// completion order.
	lightLat, heavyLat := hub.ReadLatency(0), hub.ReadLatency(1)
	if heavyLat.Mean() >= lightLat.Mean() {
		t.Errorf("weight-3 mean latency %v >= weight-1 mean %v", heavyLat.Mean(), lightLat.Mean())
	}
}

// TestTenantRateLimitThrottles: a rate-limited tenant's work is paced at
// its token-bucket rate once the burst is spent.
func TestTenantRateLimitThrottles(t *testing.T) {
	const window = 32 * sim.MiB
	cfgs := []streamer.TenantConfig{{
		Name: "capped", LBAStart: 0, LBABytes: window,
		RateBytesPerSec: 100 * sim.MiB, BurstBytes: sim.MiB,
	}}
	k, hub, _, _ := tenantHubRig(t, cfgs, streamer.HubOptions{}, nil)
	const total = 8 * sim.MiB
	const ioBytes = 512 * sim.KiB
	var finished sim.Time
	c := hub.Client(0)
	k.Spawn("pe", func(p *sim.Proc) {
		for off := int64(0); off < total; off += ioBytes {
			c.ReadAsync(p, uint64(off), ioBytes)
		}
		for off := int64(0); off < total; off += ioBytes {
			c.ConsumeRead(p)
		}
		finished = p.Now()
	})
	k.Run(0)
	// The last dispatch needs the bucket refilled past zero: with a 1 MiB
	// head start (burst) and one borrowed command, 6.5 MiB must refill at
	// 100 MiB/s first, so the run cannot finish before 65 ms.
	minTime := sim.Time(float64(total-sim.MiB-ioBytes) / float64(100*sim.MiB) * float64(sim.Second))
	if finished < minTime {
		t.Errorf("rate-limited run finished at %v, want >= %v", finished, minTime)
	}
	if hub.Stats()[0].Throttled == 0 {
		t.Error("token bucket never throttled")
	}
}

// TestTenantAdmissionCap: MaxInflight bounds the admitted-but-incomplete
// high-water mark no matter how much the tenant floods.
func TestTenantAdmissionCap(t *testing.T) {
	const window = 16 * sim.MiB
	cfgs := []streamer.TenantConfig{{Name: "flood", LBAStart: 0, LBABytes: window, MaxInflight: 4}}
	k, hub, _, _ := tenantHubRig(t, cfgs, streamer.HubOptions{}, nil)
	c := hub.Client(0)
	const ops = 64
	k.Spawn("pe", func(p *sim.Proc) {
		for j := 0; j < ops; j++ {
			c.ReadAsync(p, uint64(j*4096), 4096)
		}
		for j := 0; j < ops; j++ {
			c.ConsumeRead(p)
		}
	})
	k.Run(0)
	s := hub.Stats()[0]
	if s.MaxQueued > 4 {
		t.Errorf("MaxQueued = %d, want <= 4", s.MaxQueued)
	}
	if s.Reads != ops {
		t.Errorf("Reads = %d, want %d", s.Reads, ops)
	}
}

// TestTenantStripedHub: tenants on a striped set round-trip their windows
// and keep attribution when a window spans every member.
func TestTenantStripedHub(t *testing.T) {
	const window = 8 * sim.MiB
	k, sp, _ := stripedRig(t, 3, true)
	hub, err := streamer.NewStripedTenantHub(k, sp, threeTenants(window), streamer.HubOptions{})
	if err != nil {
		t.Fatalf("NewStripedTenantHub: %v", err)
	}
	finished := 0
	for i := 0; i < hub.Tenants(); i++ {
		i := i
		c := hub.Client(i)
		want := bytes.Repeat([]byte{0xB0 + byte(i)}, int(2*sim.MiB+8192))
		k.Spawn("pe", func(p *sim.Proc) {
			if err := c.WriteErr(p, 4096, int64(len(want)), want); err != nil {
				t.Errorf("tenant %d striped write: %v", i, err)
			}
			got, err := c.ReadErr(p, 4096, int64(len(want)))
			if err != nil {
				t.Errorf("tenant %d striped read: %v", i, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("tenant %d striped round trip corrupted data", i)
			}
			finished++
		})
	}
	k.Run(0)
	if finished != hub.Tenants() {
		t.Fatalf("only %d/%d tenants finished", finished, hub.Tenants())
	}
	stats := hub.Stats()
	for i, s := range stats {
		if s.Errors != 0 || s.Rejected != 0 {
			t.Errorf("tenant %d: errors=%d rejected=%d, want 0", i, s.Errors, s.Rejected)
		}
		if s.BytesRead != int64(2*sim.MiB+8192) {
			t.Errorf("tenant %d BytesRead = %d", i, s.BytesRead)
		}
	}
}

// TestTenantHubValidation: bad tenant configurations are rejected with
// errors, not panics or silent sharing.
func TestTenantHubValidation(t *testing.T) {
	k, c, _ := rig(t, streamer.URAM, false, nil)
	bad := [][]streamer.TenantConfig{
		{}, // no tenants
		{{LBABytes: 0}},
		{{LBABytes: -4096}},
		{{LBABytes: 4096, LBAStart: 100}},
		{{LBABytes: 1000}},
		{{LBABytes: 4096, Weight: -1}},
		{{LBABytes: 4096, RateBytesPerSec: -1}},
		{{LBABytes: 4096, MaxInflight: -1}},
		// Overlapping windows.
		{{LBAStart: 0, LBABytes: 8192}, {LBAStart: 4096, LBABytes: 8192}},
		// Identical windows.
		{{LBAStart: 0, LBABytes: 4096}, {LBAStart: 0, LBABytes: 4096}},
	}
	for i, cfgs := range bad {
		if _, err := streamer.NewTenantHub(k, c.Streamer(), cfgs, streamer.HubOptions{}); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

// TestTenantIsolationProperty is the satellite property test: random
// per-tenant workloads under fault injection plus one controller crash.
// Invariants: (a) no tenant ever observes bytes from another tenant's LBA
// range, (b) per-tenant span invariants hold (opened == closed, monotone
// stages), and (c) summed per-tenant stats equal the global stats.
func TestTenantIsolationProperty(t *testing.T) {
	const window = 4 * sim.MiB
	k, hub, st, dev := tenantHubRig(t, threeTenants(window), streamer.HubOptions{QuantumBytes: 64 * sim.KiB},
		func(cfg *streamer.Config) {
			crashRecovery(cfg)
			cfg.IOQueues = 4
			cfg.DoorbellBatch = 4
		})
	tr := obs.NewTracer(4096)
	st.SetTracer(tr)
	inj := fault.NewInjector(1234)
	inj.Add(fault.Rule{Name: "read-err", Kind: fault.StatusError, Opcode: nvme.OpRead,
		Probability: 0.02, Status: nvme.StatusInternalError})
	inj.Add(fault.Rule{Name: "write-err", Kind: fault.StatusError, Opcode: nvme.OpWrite,
		Probability: 0.02, Status: nvme.StatusDataTransferError})
	inj.Add(fault.Rule{Name: "lost-cqe", Kind: fault.DropCQE, Opcode: fault.OpAny,
		Probability: 0.01, Count: 4})
	inj.Add(fault.Rule{Name: "crash-once", Kind: fault.CrashCtrl, Opcode: fault.OpAny,
		Nth: 60, Count: 1})
	inj.Attach(dev)
	tags := []byte{0xA1, 0xB2, 0xC3}
	finished := 0
	for i := 0; i < hub.Tenants(); i++ {
		i := i
		c := hub.Client(i)
		tag := tags[i]
		rng := sim.NewRand(uint64(100 + i))
		k.Spawn("pe", func(p *sim.Proc) {
			const ops = 60
			for op := 0; op < ops; op++ {
				n := int64(1+rng.Intn(32)) * 4096
				addr := uint64(rng.Intn(int((window-n)/4096))) * 4096
				if rng.Intn(2) == 0 {
					c.WriteErr(p, addr, n, bytes.Repeat([]byte{tag}, int(n)))
				} else {
					data, err := c.ReadErr(p, addr, n)
					if err != nil {
						continue // faulted reads deliver no payload
					}
					for _, b := range data {
						if b != 0 && b != tag {
							t.Errorf("tenant %d read foreign byte %#x", i, b)
							return
						}
					}
				}
				// Occasionally poke outside the window to exercise the
				// rejection path under load.
				if op%16 == 5 {
					if _, err := c.ReadErr(p, uint64(window), 4096); err == nil {
						t.Errorf("tenant %d out-of-window read succeeded", i)
					}
				}
			}
			finished++
		})
	}
	k.Run(0)
	if finished != hub.Tenants() {
		t.Fatalf("only %d/%d tenants finished", finished, hub.Tenants())
	}
	if st.BreakerTrips() == 0 {
		t.Error("controller crash never tripped the breaker (property run lost its crash)")
	}
	// (b) Span invariants, globally and per tenant.
	if tr.Opened() != tr.Closed() {
		t.Errorf("spans opened %d != closed %d", tr.Opened(), tr.Closed())
	}
	var openedSum, closedSum int64
	for i := 0; i < hub.Tenants(); i++ {
		if o, c := tr.OpenedByTenant(i), tr.ClosedByTenant(i); o != c {
			t.Errorf("tenant %d spans opened %d != closed %d", i, o, c)
		}
		openedSum += tr.OpenedByTenant(i)
		closedSum += tr.ClosedByTenant(i)
	}
	if openedSum != tr.Opened() || closedSum != tr.Closed() {
		t.Errorf("per-tenant span counts (%d/%d) do not sum to global (%d/%d)",
			openedSum, closedSum, tr.Opened(), tr.Closed())
	}
	for _, sp := range tr.Spans() {
		if !sp.Monotone() {
			t.Errorf("span %d (tenant %d) has non-monotone stages", sp.ID, sp.Tenant)
		}
		if sp.Tenant < 0 || sp.Tenant >= hub.Tenants() {
			t.Errorf("span %d has out-of-range tenant %d", sp.ID, sp.Tenant)
		}
	}
	// (c) Per-tenant stats sum to the global counters.
	var bytesRead, bytesWritten, rejected int64
	for _, s := range hub.Stats() {
		bytesRead += s.BytesRead
		bytesWritten += s.BytesWritten
		rejected += s.Rejected
	}
	if bytesRead != st.BytesToPE() {
		t.Errorf("sum of tenant BytesRead %d != streamer BytesToPE %d", bytesRead, st.BytesToPE())
	}
	if bytesWritten != st.BytesFromPE() {
		t.Errorf("sum of tenant BytesWritten %d != streamer BytesFromPE %d", bytesWritten, st.BytesFromPE())
	}
	if rejected == 0 {
		t.Error("property run never exercised the rejection path")
	}
}

// TestTenantIsolationDegradedStripe extends the isolation property to a
// striped backend that loses a member mid-run: random per-tenant workloads
// keep running while striped member 1 is surprise-removed. Invariants:
// (a) no tenant ever observes another tenant's bytes, even on reads that
// race the member's death, (b) per-tenant byte sums stay consistent with
// the hub's accounting — BytesWritten equals the bytes of every accepted
// write, and BytesRead is bracketed by successful and attempted read
// bytes — and (c) the death is visible as degraded striping, not silence.
func TestTenantIsolationDegradedStripe(t *testing.T) {
	const window = 4 * sim.MiB
	k, sp, devs := stripedRig(t, 3, true, func(cfg *streamer.Config) {
		crashRecovery(cfg)
		cfg.MaxResets = 0 // removal is permanent: die on the first trip
	})
	hub, err := streamer.NewStripedTenantHub(k, sp, threeTenants(window),
		streamer.HubOptions{QuantumBytes: 64 * sim.KiB})
	if err != nil {
		t.Fatalf("NewStripedTenantHub: %v", err)
	}
	inj := fault.NewInjector(7)
	inj.Add(fault.Rule{Name: "remove-m1", Kind: fault.RemoveCtrl, Opcode: fault.OpAny,
		Nth: 30, Count: 1})
	inj.Attach(devs[1])

	tags := []byte{0xA1, 0xB2, 0xC3}
	finished := 0
	wroteBytes := make([]int64, hub.Tenants())   // every accepted write
	readOKBytes := make([]int64, hub.Tenants())  // reads that returned clean
	readTryBytes := make([]int64, hub.Tenants()) // every attempted read
	var tenantErrs int64
	for i := 0; i < hub.Tenants(); i++ {
		i := i
		c := hub.Client(i)
		tag := tags[i]
		rng := sim.NewRand(uint64(200 + i))
		k.Spawn("pe", func(p *sim.Proc) {
			const ops = 50
			for op := 0; op < ops; op++ {
				n := int64(1+rng.Intn(16)) * 4096
				addr := uint64(rng.Intn(int((window-n)/4096))) * 4096
				if rng.Intn(2) == 0 {
					wroteBytes[i] += n
					if err := c.WriteErr(p, addr, n, bytes.Repeat([]byte{tag}, int(n))); err != nil {
						tenantErrs++
					}
				} else {
					readTryBytes[i] += n
					data, err := c.ReadErr(p, addr, n)
					if err != nil {
						tenantErrs++
						continue // degraded reads deliver no trusted payload
					}
					readOKBytes[i] += n
					for _, b := range data {
						if b != 0 && b != tag {
							t.Errorf("tenant %d read foreign byte %#x under degraded striping", i, b)
							return
						}
					}
				}
			}
			finished++
		})
	}
	k.Run(0)
	if finished != hub.Tenants() {
		t.Fatalf("only %d/%d tenants finished", finished, hub.Tenants())
	}
	// (c) The member death must be observable, not silent.
	if dead := sp.DeadMembers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("dead striped members = %v, want [1]", dead)
	}
	if sp.DegradedReads()+sp.DegradedWrites() == 0 {
		t.Error("member death never surfaced as a degraded striped operation")
	}
	if tenantErrs == 0 {
		t.Error("no tenant ever observed an error from the dead member")
	}
	// (b) Per-tenant byte sums.
	for i, s := range hub.Stats() {
		if s.Rejected != 0 {
			t.Errorf("tenant %d: %d rejections for in-window traffic", i, s.Rejected)
		}
		if s.BytesWritten != wroteBytes[i] {
			t.Errorf("tenant %d BytesWritten = %d, want %d (every accepted write)",
				i, s.BytesWritten, wroteBytes[i])
		}
		if s.BytesRead < readOKBytes[i] || s.BytesRead > readTryBytes[i] {
			t.Errorf("tenant %d BytesRead = %d outside [%d successful, %d attempted]",
				i, s.BytesRead, readOKBytes[i], readTryBytes[i])
		}
	}
}

// TestTenantAccessorAliasing is the satellite aliasing audit: every exported
// slice-returning accessor must return a copy — mutating the returned value
// must not change what the next call returns.
func TestTenantAccessorAliasing(t *testing.T) {
	const window = sim.MiB
	k, hub, st, _ := tenantHubRig(t, threeTenants(window), streamer.HubOptions{}, nil)
	k.Spawn("pe", func(p *sim.Proc) {
		c := hub.Client(0)
		c.WriteErr(p, 0, 4096, nil)
		c.ReadErr(p, 0, 4096)
	})
	k.Run(0)

	stats := hub.Stats()
	stats[0].BytesRead = -999
	stats[0].Name = "clobbered"
	if got := hub.Stats()[0]; got.BytesRead == -999 || got.Name == "clobbered" {
		t.Error("TenantHub.Stats returns a view over live state")
	}

	hw := st.QueueDepthHighWater()
	for i := range hw {
		hw[i] = -1
	}
	for _, v := range st.QueueDepthHighWater() {
		if v == -1 {
			t.Error("QueueDepthHighWater returns a view over live state")
		}
	}
}

// TestTenantStripedDeadMembersAliasing covers Striped.DeadMembers, the
// accessor named in the audit: the returned slice must be the caller's own.
func TestTenantStripedDeadMembersAliasing(t *testing.T) {
	k, sp, devs := stripedRig(t, 2, false, crashRecovery)
	inj := fault.NewInjector(9)
	inj.Add(fault.Rule{Name: "remove", Kind: fault.RemoveCtrl, Opcode: fault.OpAny, Nth: 2, Count: 1})
	inj.Attach(devs[0])
	k.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			sp.WriteErr(p, uint64(int64(i)*sim.MiB), sim.MiB, nil)
		}
	})
	k.Run(0)
	dead := sp.DeadMembers()
	if len(dead) == 0 {
		t.Fatal("no member died; rig lost its fault")
	}
	dead[0] = 97
	for _, m := range sp.DeadMembers() {
		if m == 97 {
			t.Error("DeadMembers returns a view over live state")
		}
	}
}

package streamer

import (
	"testing"
	"testing/quick"

	"snacc/internal/sim"
)

func TestByteRingBasicFIFO(t *testing.T) {
	r := newByteRing(64 * 1024)
	offs := make([]int64, 0)
	for i := 0; i < 4; i++ {
		off, ok := r.tryAlloc(16 * 1024)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		offs = append(offs, off)
	}
	if _, ok := r.tryAlloc(1); ok {
		t.Fatal("full ring granted allocation")
	}
	r.free()
	if off, ok := r.tryAlloc(16 * 1024); !ok || off != offs[0] {
		t.Fatalf("after FIFO free, alloc = %d,%v; want reuse of %d", off, ok, offs[0])
	}
}

func TestByteRingAlignment(t *testing.T) {
	r := newByteRing(1 << 20)
	for i := 0; i < 50; i++ {
		off, ok := r.tryAlloc(int64(1 + i*517))
		if !ok {
			break
		}
		if off%4096 != 0 {
			t.Fatalf("allocation %d at %d not 4 KiB aligned", i, off)
		}
		r.free()
	}
}

func TestByteRingWrapPadding(t *testing.T) {
	// A segment must never wrap: allocations that don't fit before the end
	// pad to offset 0.
	r := newByteRing(64 * 1024)
	a, _ := r.tryAlloc(40 * 1024)
	r.free()
	_ = a
	b, ok := r.tryAlloc(40 * 1024) // tail at 40k; 40k doesn't fit before 64k
	if !ok {
		t.Fatal("wrap allocation failed")
	}
	if b != 0 {
		t.Fatalf("wrapped allocation at %d, want 0", b)
	}
	if b+40*1024 > 64*1024 {
		t.Fatal("segment crosses the ring end")
	}
}

func TestByteRingOversizePanics(t *testing.T) {
	r := newByteRing(64 * 1024)
	defer func() {
		if recover() == nil {
			t.Error("oversize allocation did not panic")
		}
	}()
	r.tryAlloc(128 * 1024)
}

func TestByteRingFreeWithoutAllocPanics(t *testing.T) {
	r := newByteRing(64 * 1024)
	defer func() {
		if recover() == nil {
			t.Error("free on empty ring did not panic")
		}
	}()
	r.free()
}

// Property: any sequence of alloc/free (free only when live) keeps every
// live segment contiguous, aligned, inside the ring, and non-overlapping.
func TestByteRingInvariantProperty(t *testing.T) {
	type segment struct{ off, size int64 }
	f := func(ops []uint16) bool {
		r := newByteRing(256 * 1024)
		var live []segment
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				r.free()
				live = live[1:]
				continue
			}
			size := int64(op%(48*1024)) + 1
			off, ok := r.tryAlloc(size)
			if !ok {
				continue
			}
			rounded := roundUp(size)
			if off%4096 != 0 || off+rounded > 256*1024 {
				return false
			}
			for _, s := range live {
				if off < s.off+s.size && s.off < off+rounded {
					return false // overlap
				}
			}
			live = append(live, segment{off: off, size: rounded})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestByteRingBlockingFIFOWaiters(t *testing.T) {
	// Multiple blocked allocators must be admitted strictly in order as
	// space frees — the lost-wakeup regression test.
	k := sim.NewKernel()
	r := newByteRing(64 * 1024)
	// Fill the ring.
	if _, ok := r.tryAlloc(64 * 1024); !ok {
		t.Fatal("initial fill failed")
	}
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("w", func(p *sim.Proc) {
			p.Sleep(sim.Time(i + 1)) // deterministic arrival order
			r.alloc(p, 16*1024)
			order = append(order, i)
		})
	}
	k.Spawn("freer", func(p *sim.Proc) {
		p.Sleep(100)
		r.free() // frees all 64k: admits all three in order
	})
	k.Run(0)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("admission order = %v, want [0 1 2]", order)
	}
}

func TestSlotPoolExhaustionAndReuse(t *testing.T) {
	k := sim.NewKernel()
	sp := newSlotPool(4*64*1024, 64*1024)
	var got []int64
	k.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			got = append(got, sp.alloc(p, 4096))
		}
		// Pool exhausted; the fifth blocks until a release.
		got = append(got, sp.alloc(p, 4096))
	})
	k.Spawn("r", func(p *sim.Proc) {
		p.Sleep(100)
		sp.release(got[2])
	})
	k.Run(0)
	if len(got) != 5 {
		t.Fatalf("allocations = %d, want 5", len(got))
	}
	if got[4] != got[2] {
		t.Fatalf("fifth allocation reused %d, want released slot %d", got[4], got[2])
	}
}

func TestSlotPoolOversizePanics(t *testing.T) {
	sp := newSlotPool(1<<20, 64*1024)
	defer func() {
		if recover() == nil {
			t.Error("oversize slot request did not panic")
		}
	}()
	// The size check fires before any scheduling, so a nil proc is safe
	// here and keeps the panic on the test goroutine.
	sp.alloc(nil, 128*1024)
}

package streamer_test

import (
	"bytes"
	"testing"

	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

const ssdBAR = 0x10_0000_0000

// rig assembles platform + SSD + one streamer and runs the init sequence.
func rig(t *testing.T, v streamer.Variant, functional bool, mut func(*streamer.Config)) (*sim.Kernel, *streamer.Client, *nvme.Device) {
	t.Helper()
	k := sim.NewKernel()
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	devCfg := nvme.DefaultConfig("ssd0", ssdBAR)
	devCfg.Functional = functional
	dev := nvme.New(k, pl.Fabric, devCfg)
	stCfg := streamer.DefaultConfig("snacc0", 0, v)
	stCfg.Functional = functional
	if mut != nil {
		mut(&stCfg)
	}
	st := pl.AddStreamer(stCfg)
	drv := tapasco.NewDriver(pl, "ssd0", ssdBAR)
	initDone := false
	k.Spawn("init", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			t.Errorf("InitController: %v", err)
			return
		}
		if err := drv.AttachStreamer(p, st, 1); err != nil {
			t.Errorf("AttachStreamer: %v", err)
			return
		}
		initDone = true
	})
	k.Run(0)
	if !initDone {
		t.Fatal("initialization did not complete")
	}
	return k, streamer.NewClient(st), dev
}

func variants() []streamer.Variant {
	return []streamer.Variant{streamer.URAM, streamer.OnboardDRAM, streamer.HostDRAM}
}

func TestWriteReadRoundTripAllVariants(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			k, c, dev := rig(t, v, true, nil)
			want := make([]byte, 3*sim.MiB+8192) // spans several 1 MiB pieces
			for i := range want {
				want[i] = byte(i*7 + int(v))
			}
			done := false
			k.Spawn("pe", func(p *sim.Proc) {
				c.Write(p, 4096, int64(len(want)), want)
				got := c.Read(p, 4096, int64(len(want)))
				if !bytes.Equal(got, want) {
					t.Error("streamed data corrupted through NVMe round trip")
				}
				done = true
			})
			k.Run(0)
			if !done {
				t.Fatal("PE never finished")
			}
			if dev.Errors() != 0 {
				t.Fatalf("device errors: %d", dev.Errors())
			}
			// 3 MiB + 8 KiB → 4 write pieces + 4 read pieces.
			if got := c.Streamer().CommandsSubmitted(); got != 8 {
				t.Fatalf("commands submitted = %d, want 8", got)
			}
			if c.Streamer().CommandsRetired() != 8 {
				t.Fatalf("commands retired = %d, want 8", c.Streamer().CommandsRetired())
			}
		})
	}
}

func TestSmallUnalignedLengths(t *testing.T) {
	// 512-byte LBA granularity, sub-page and sub-piece sizes.
	k, c, _ := rig(t, streamer.URAM, true, nil)
	sizes := []int64{512, 4096, 8192, 12288, 65536}
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		addr := uint64(0)
		for _, n := range sizes {
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(int64(i) + n)
			}
			c.Write(p, addr, n, data)
			got := c.Read(p, addr, n)
			if !bytes.Equal(got, data) {
				t.Errorf("size %d round trip failed", n)
			}
			addr += uint64(n)
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
}

func TestReadOfUnwrittenReturnsZeros(t *testing.T) {
	k, c, _ := rig(t, streamer.URAM, true, nil)
	k.Spawn("pe", func(p *sim.Proc) {
		got := c.Read(p, uint64(512*sim.MiB), 8192)
		for _, b := range got {
			if b != 0 {
				t.Fatal("unwritten LBAs must read back as zeros")
				return
			}
		}
	})
	k.Run(0)
}

func TestPipelinedReadsStayOrdered(t *testing.T) {
	// Issue several reads back to back; data must come back in command
	// order with correct TLAST delimiters (in-order retirement).
	k, c, _ := rig(t, streamer.URAM, true, nil)
	const n = 64 * 1024
	k.Spawn("pe", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(i)
			}
			c.Write(p, uint64(i*n), n, data)
		}
		for i := 0; i < 8; i++ {
			c.ReadAsync(p, uint64(i*n), n)
		}
		for i := 0; i < 8; i++ {
			total, data := c.ConsumeRead(p)
			if total != n {
				t.Errorf("read %d returned %d bytes", i, total)
			}
			if data[0] != byte(i) || data[n-1] != byte(i) {
				t.Errorf("read %d returned data for a different command", i)
			}
		}
	})
	k.Run(0)
}

func TestInterleavedReadsAndWrites(t *testing.T) {
	// The command queue is shared between reads and writes (§4.2).
	k, c, _ := rig(t, streamer.OnboardDRAM, true, nil)
	k.Spawn("pe", func(p *sim.Proc) {
		a := []byte("first block of data to persist..xx.............................")
		b := make([]byte, 512)
		copy(b, a)
		c.Write(p, 0, 512, b)
		got := c.Read(p, 0, 512)
		c.Write(p, 512, 512, got)
		got2 := c.Read(p, 512, 512)
		if !bytes.Equal(got2, b) {
			t.Error("interleaved read/write corrupted data")
		}
	})
	k.Run(0)
}

func TestInOrderRetirementWindow(t *testing.T) {
	// With QueueDepth in-flight commands, a new command must wait for the
	// head to retire: total submitted never exceeds retired + depth.
	k, c, _ := rig(t, streamer.URAM, false, func(cfg *streamer.Config) {
		cfg.QueueDepth = 4
	})
	k.Spawn("pe", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			c.ReadAsync(p, uint64(i*4096), 4096)
		}
		for i := 0; i < 16; i++ {
			c.ConsumeRead(p)
		}
		st := c.Streamer()
		if st.CommandsSubmitted() != 16 || st.CommandsRetired() != 16 {
			t.Errorf("submitted/retired = %d/%d, want 16/16",
				st.CommandsSubmitted(), st.CommandsRetired())
		}
	})
	k.Run(0)
}

func TestOutOfOrderVariantCompletes(t *testing.T) {
	k, c, _ := rig(t, streamer.OnboardDRAM, true, func(cfg *streamer.Config) {
		cfg.OutOfOrder = true
	})
	k.Spawn("pe", func(p *sim.Proc) {
		want := make([]byte, 2*sim.MiB)
		for i := range want {
			want[i] = byte(i % 251)
		}
		c.Write(p, 0, int64(len(want)), want)
		got := c.Read(p, 0, int64(len(want)))
		if !bytes.Equal(got, want) {
			t.Error("out-of-order variant corrupted data")
		}
	})
	k.Run(0)
}

func TestPRPListSynthesisExercised(t *testing.T) {
	// A >8 KiB command forces a PRP list; the device must have read the
	// list from the streamer's PRP window (on-the-fly computation).
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			k, c, dev := rig(t, v, true, nil)
			k.Spawn("pe", func(p *sim.Proc) {
				data := make([]byte, sim.MiB)
				for i := range data {
					data[i] = byte(i / 4096)
				}
				c.Write(p, 0, sim.MiB, data)
				got := c.Read(p, 0, sim.MiB)
				if !bytes.Equal(got, data) {
					t.Error("PRP-list transfer corrupted data")
				}
			})
			k.Run(0)
			if dev.Errors() != 0 {
				t.Fatalf("device rejected PRP-list command: %d errors", dev.Errors())
			}
		})
	}
}

func TestMultipleStreamersShareCard(t *testing.T) {
	// Two streamers (e.g. toward two SSDs) must coexist in one BAR.
	k := sim.NewKernel()
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	devA := nvme.DefaultConfig("ssdA", ssdBAR)
	devB := nvme.DefaultConfig("ssdB", ssdBAR+0x1000_0000)
	devA.Functional, devB.Functional = true, true
	nvme.New(k, pl.Fabric, devA)
	nvme.New(k, pl.Fabric, devB)
	cfgA := streamer.DefaultConfig("snaccA", 0, streamer.URAM)
	cfgA.Functional = true
	cfgB := streamer.DefaultConfig("snaccB", 0, streamer.URAM)
	cfgB.Functional = true
	stA := pl.AddStreamer(cfgA)
	stB := pl.AddStreamer(cfgB)
	drvA := tapasco.NewDriver(pl, "ssdA", ssdBAR)
	drvB := tapasco.NewDriver(pl, "ssdB", ssdBAR+0x1000_0000)
	ok := false
	k.Spawn("init", func(p *sim.Proc) {
		if err := drvA.InitController(p); err != nil {
			t.Errorf("A init: %v", err)
			return
		}
		if err := drvB.InitController(p); err != nil {
			t.Errorf("B init: %v", err)
			return
		}
		if err := drvA.AttachStreamer(p, stA, 1); err != nil {
			t.Errorf("A attach: %v", err)
			return
		}
		if err := drvB.AttachStreamer(p, stB, 1); err != nil {
			t.Errorf("B attach: %v", err)
			return
		}
		ca, cb := streamer.NewClient(stA), streamer.NewClient(stB)
		ca.Write(p, 0, 8192, bytes.Repeat([]byte{0xAA}, 8192))
		cb.Write(p, 0, 8192, bytes.Repeat([]byte{0xBB}, 8192))
		gotA := ca.Read(p, 0, 8192)
		gotB := cb.Read(p, 0, 8192)
		if gotA[0] != 0xAA || gotB[0] != 0xBB {
			t.Error("streamers crossed data")
		}
		ok = true
	})
	k.Run(0)
	if !ok {
		t.Fatal("multi-streamer init failed")
	}
}

func TestBufferWaveInvariant(t *testing.T) {
	// §4.2: "We only request as much data as can fit in our available data
	// buffer." A read four times the URAM buffer must proceed in waves with
	// staging occupancy bounded by the 4 MiB capacity — and actually use
	// most of it.
	k, c, _ := rig(t, streamer.URAM, false, nil)
	k.Spawn("pe", func(p *sim.Proc) {
		c.ReadAsync(p, 0, 16*sim.MiB)
		c.ConsumeRead(p)
	})
	k.Run(0)
	hw, _ := c.Streamer().BufferHighWater()
	if hw > 4*sim.MiB {
		t.Fatalf("staging high water %d exceeds the 4 MiB buffer", hw)
	}
	if hw < 2*sim.MiB {
		t.Fatalf("staging high water %d; the Streamer should keep the buffer busy", hw)
	}
	if got := c.Streamer().BytesToPE(); got != 16*sim.MiB {
		t.Fatalf("delivered %d of 16 MiB", got)
	}
}

func TestSeparateBuffersForDRAMVariant(t *testing.T) {
	// §4.3: the DRAM variants separate read and write channels into
	// distinct buffers — concurrent traffic must account independently.
	k, c, _ := rig(t, streamer.OnboardDRAM, false, nil)
	k.Spawn("w", func(p *sim.Proc) { c.Write(p, 0, 8*sim.MiB, nil) })
	k.Spawn("r", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		c.ReadAsync(p, 0, 8*sim.MiB)
		c.ConsumeRead(p)
	})
	k.Run(0)
	rd, wr := c.Streamer().BufferHighWater()
	if rd == 0 || wr == 0 {
		t.Fatalf("high-water marks %d/%d; both buffers should have been used", rd, wr)
	}
	if rd > 64*sim.MiB || wr > 64*sim.MiB {
		t.Fatalf("buffer overrun: read %d write %d", rd, wr)
	}
}

func TestCommandLatencyHistograms(t *testing.T) {
	k, c, _ := rig(t, streamer.URAM, false, nil)
	k.Spawn("pe", func(p *sim.Proc) {
		c.Write(p, 0, 64*1024, nil)
		c.ReadAsync(p, 0, 64*1024)
		c.ConsumeRead(p)
	})
	k.Run(0)
	rd, wr := c.Streamer().CommandLatencies()
	if rd.Count() != 1 || wr.Count() != 1 {
		t.Fatalf("latency samples: %d reads, %d writes", rd.Count(), wr.Count())
	}
	// The NVMe read must include a NAND tR (>15us); the 64 KiB write
	// completes in the SSD buffer after its P2P fetch — faster than the
	// read, but not free.
	if rd.Mean() < 15*sim.Microsecond {
		t.Errorf("read command latency %v below NAND tR", rd.Mean())
	}
	if wr.Mean() >= rd.Mean() {
		t.Errorf("write latency %v should undercut read latency %v (no tR)", wr.Mean(), rd.Mean())
	}
}

func TestConfigValidationPanics(t *testing.T) {
	cases := []func(*streamer.Config){
		func(c *streamer.Config) { c.QueueDepth = 1 },
		func(c *streamer.Config) { c.MaxCmdBytes = 1000 },
		func(c *streamer.Config) { c.ReadBufBytes = 8 * sim.MiB }, // URAM must be 4 MiB shared
	}
	for i, mut := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d accepted", i)
				}
			}()
			k := sim.NewKernel()
			pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
			cfg := streamer.DefaultConfig("bad", 0, streamer.URAM)
			mut(&cfg)
			pl.AddStreamer(cfg)
		}()
	}
}

package streamer_test

import (
	"bytes"
	"errors"
	"testing"

	"snacc/internal/fault"
	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// recovery enables the watchdog/retry machinery with test-friendly values.
// The deadline comfortably exceeds the worst-case command latency of a full
// queue-depth burst of 1 MiB pieces, so only genuinely lost completions
// trip it.
func recovery(cfg *streamer.Config) {
	cfg.CmdTimeout = 20 * sim.Millisecond
	cfg.MaxRetries = 3
	cfg.RetryBackoff = 5 * sim.Microsecond
}

// TestFailedReadDeliversNoData is the regression test for the silent-
// swallow bug: a read that completes with a fatal status must deliver an
// error flag, not the stale staging-buffer bytes.
func TestFailedReadDeliversNoData(t *testing.T) {
	k, c, dev := rig(t, streamer.URAM, true, nil)
	dev.SetFaultInjector(func(cmd nvme.Command) uint16 {
		if cmd.Opcode == nvme.OpRead {
			return nvme.StatusLBAOutOfRange
		}
		return nvme.StatusSuccess
	})
	want := make([]byte, sim.MiB)
	for i := range want {
		want[i] = byte(i * 13)
	}
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		if err := c.WriteErr(p, 0, int64(len(want)), want); err != nil {
			t.Errorf("write failed: %v", err)
		}
		data, err := c.ReadErr(p, 0, int64(len(want)))
		var ce streamer.CmdError
		if !errors.As(err, &ce) {
			t.Fatalf("read error = %v, want CmdError", err)
		}
		if ce.Status != nvme.StatusLBAOutOfRange {
			t.Errorf("error status = %#x, want %#x", ce.Status, nvme.StatusLBAOutOfRange)
		}
		if len(data) != 0 {
			t.Errorf("failed read delivered %d stale bytes", len(data))
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	if st.BytesToPE() != 0 {
		t.Errorf("BytesToPE = %d after failed read, want 0", st.BytesToPE())
	}
	if st.CommandErrors() != 1 || st.CommandAborts() != 1 {
		t.Errorf("errors/aborts = %d/%d, want 1/1", st.CommandErrors(), st.CommandAborts())
	}
}

// TestRetryableErrorRetriedToSuccess: one injected internal error must be
// absorbed by a resubmission; the PE sees intact data and no error.
func TestRetryableErrorRetriedToSuccess(t *testing.T) {
	injected := false
	k, c, dev := rig(t, streamer.URAM, true, recovery)
	dev.SetFaultInjector(func(cmd nvme.Command) uint16 {
		if cmd.Opcode == nvme.OpRead && !injected {
			injected = true
			return nvme.StatusInternalError
		}
		return nvme.StatusSuccess
	})
	want := make([]byte, sim.MiB)
	for i := range want {
		want[i] = byte(i * 31)
	}
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		if err := c.WriteErr(p, 4096, int64(len(want)), want); err != nil {
			t.Errorf("write failed: %v", err)
		}
		got, err := c.ReadErr(p, 4096, int64(len(want)))
		if err != nil {
			t.Fatalf("read after retry failed: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Error("retried read delivered corrupted data")
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	if st.CommandErrors() != 1 || st.CommandRetries() != 1 {
		t.Errorf("errors/retries = %d/%d, want 1/1", st.CommandErrors(), st.CommandRetries())
	}
	if st.CommandAborts() != 0 || st.CommandTimeouts() != 0 {
		t.Errorf("aborts/timeouts = %d/%d, want 0/0", st.CommandAborts(), st.CommandTimeouts())
	}
}

// TestDroppedCQERecoveredByWatchdog: a lost completion previously hung the
// reorder-buffer head forever; the deadline watchdog must resubmit and the
// PE must see intact data.
func TestDroppedCQERecoveredByWatchdog(t *testing.T) {
	k, c, dev := rig(t, streamer.URAM, true, recovery)
	inj := fault.NewInjector(7)
	inj.Add(fault.Rule{Name: "drop-first-read-cqe", Kind: fault.DropCQE, Opcode: nvme.OpRead, Nth: 1, Count: 1})
	inj.Attach(dev)
	want := make([]byte, sim.MiB)
	for i := range want {
		want[i] = byte(i * 3)
	}
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		c.Write(p, 0, int64(len(want)), want)
		got, err := c.ReadErr(p, 0, int64(len(want)))
		if err != nil {
			t.Fatalf("read after lost CQE failed: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Error("recovered read delivered corrupted data")
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	if st.CommandTimeouts() != 1 || st.CommandRetries() != 1 || st.CommandAborts() != 0 {
		t.Errorf("timeouts/retries/aborts = %d/%d/%d, want 1/1/0",
			st.CommandTimeouts(), st.CommandRetries(), st.CommandAborts())
	}
	if dev.CQEsDropped() != 1 || inj.Injected() != 1 {
		t.Errorf("dropped/injected = %d/%d, want 1/1", dev.CQEsDropped(), inj.Injected())
	}
}

// TestExhaustedRetriesAbortToPE: when every completion is lost, recovery
// must give up after MaxRetries resubmissions and flag the read with the
// synthetic abort status instead of hanging.
func TestExhaustedRetriesAbortToPE(t *testing.T) {
	k, c, dev := rig(t, streamer.URAM, true, recovery)
	inj := fault.NewInjector(7)
	inj.Add(fault.Rule{Name: "drop-all-read-cqes", Kind: fault.DropCQE, Opcode: nvme.OpRead, Nth: 1})
	inj.Attach(dev)
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		c.Write(p, 0, sim.MiB, nil)
		data, err := c.ReadErr(p, 0, sim.MiB)
		var ce streamer.CmdError
		if !errors.As(err, &ce) {
			t.Fatalf("read error = %v, want CmdError", err)
		}
		if ce.Status != nvme.StatusAbortRequested {
			t.Errorf("abort status = %#x, want %#x", ce.Status, nvme.StatusAbortRequested)
		}
		if len(data) != 0 {
			t.Errorf("aborted read delivered %d bytes", len(data))
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	// 1 original + 3 resubmissions, each with an expired deadline.
	if st.CommandTimeouts() != 4 || st.CommandRetries() != 3 || st.CommandAborts() != 1 {
		t.Errorf("timeouts/retries/aborts = %d/%d/%d, want 4/3/1",
			st.CommandTimeouts(), st.CommandRetries(), st.CommandAborts())
	}
	if dev.CQEsDropped() != 4 {
		t.Errorf("CQEs dropped = %d, want 4", dev.CQEsDropped())
	}
}

// TestDelayedCQEStaleCompletionTolerated: a completion that arrives long
// after the watchdog resubmitted its command must be dropped as a protocol
// error, not crash the rig or corrupt the retried command.
func TestDelayedCQEStaleCompletionTolerated(t *testing.T) {
	k, c, dev := rig(t, streamer.URAM, true, recovery)
	inj := fault.NewInjector(7)
	inj.Add(fault.Rule{Name: "late-first-read-cqe", Kind: fault.DelayCQE, Opcode: nvme.OpRead,
		Nth: 1, Count: 1, Delay: 100 * sim.Millisecond})
	inj.Attach(dev)
	want := make([]byte, sim.MiB)
	for i := range want {
		want[i] = byte(i * 11)
	}
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		c.Write(p, 0, int64(len(want)), want)
		got, err := c.ReadErr(p, 0, int64(len(want)))
		if err != nil {
			t.Fatalf("read failed: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Error("read delivered corrupted data")
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	if st.CommandTimeouts() != 1 || st.CommandRetries() != 1 {
		t.Errorf("timeouts/retries = %d/%d, want 1/1", st.CommandTimeouts(), st.CommandRetries())
	}
	if st.ProtocolErrors() != 1 {
		t.Errorf("protocol errors = %d, want 1 (stale CQE)", st.ProtocolErrors())
	}
	if dev.CQEsDelayed() != 1 {
		t.Errorf("CQEs delayed = %d, want 1", dev.CQEsDelayed())
	}
}

// TestInvalidCompletionsCountedNotFatal pins the panic-to-counter
// conversion: completions naming an out-of-range or idle CID are dropped
// and counted.
func TestInvalidCompletionsCountedNotFatal(t *testing.T) {
	k, c, _ := rig(t, streamer.URAM, true, nil)
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		c.Write(p, 0, 4096, nil)
		c.ReadAsync(p, 0, 4096)
		c.ConsumeRead(p)
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	st.InjectCQE(nvme.Completion{CID: 9999}) // out of range
	st.InjectCQE(nvme.Completion{CID: 3})    // idle slot: stale/duplicate
	k.Run(0)
	if st.ProtocolErrors() != 2 {
		t.Errorf("protocol errors = %d, want 2", st.ProtocolErrors())
	}
}

// TestWriteErrorPropagatesWorstStatus pins the write-response bugfix: the
// response token must carry the worst status across the write's pieces —
// here the first piece fails with a transient internal error (recovery is
// off, so it retires as-is) but the fatal capacity error on the second
// piece must win.
func TestWriteErrorPropagatesWorstStatus(t *testing.T) {
	k, c, dev := rig(t, streamer.URAM, false, nil)
	writes := 0
	dev.SetFaultInjector(func(cmd nvme.Command) uint16 {
		if cmd.Opcode == nvme.OpWrite {
			writes++
			switch writes {
			case 1:
				return nvme.StatusInternalError
			case 2:
				return nvme.StatusCapacityExceeded
			}
		}
		return nvme.StatusSuccess
	})
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		err := c.WriteErr(p, 0, 3*sim.MiB, nil) // three 1 MiB pieces
		var ce streamer.CmdError
		if !errors.As(err, &ce) {
			t.Fatalf("write error = %v, want CmdError", err)
		}
		if ce.Status != nvme.StatusCapacityExceeded {
			t.Errorf("response status = %#x, want %#x", ce.Status, nvme.StatusCapacityExceeded)
		}
		if ce.Addr != uint64(sim.MiB) || ce.Len != sim.MiB {
			t.Errorf("failed piece = %#x+%d, want %#x+%d", ce.Addr, ce.Len, sim.MiB, sim.MiB)
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	if st.CommandErrors() != 2 || st.CommandAborts() != 2 || st.CommandsRetired() != 3 {
		t.Errorf("errors/aborts/retired = %d/%d/%d, want 2/2/3",
			st.CommandErrors(), st.CommandAborts(), st.CommandsRetired())
	}
}

// TestRecoveryScheduleDeterministic pins the retry/backoff schedule: two
// identically-seeded runs of a lossy workload must agree on every counter
// and on the final simulated timestamp.
func TestRecoveryScheduleDeterministic(t *testing.T) {
	type outcome struct {
		now                          sim.Time
		timeouts, retries, aborts    int64
		errorsSeen, protocolErrors   int64
		submitted, retired, injected int64
	}
	run := func() outcome {
		k, c, dev := rig(t, streamer.OnboardDRAM, false, recovery)
		inj := fault.NewInjector(1234)
		inj.Add(fault.Rule{Name: "flaky-reads", Kind: fault.StatusError, Opcode: nvme.OpRead,
			Probability: 0.2, Status: nvme.StatusInternalError})
		inj.Add(fault.Rule{Name: "lossy-cq", Kind: fault.DropCQE, Opcode: nvme.OpRead, Nth: 9})
		inj.Attach(dev)
		k.Spawn("pe", func(p *sim.Proc) {
			c.Write(p, 0, 16*sim.MiB, nil)
			for i := 0; i < 16; i++ {
				c.ReadAsync(p, uint64(i)*uint64(sim.MiB), sim.MiB)
			}
			for i := 0; i < 16; i++ {
				c.ConsumeReadErr(p)
			}
		})
		k.Run(0)
		st := c.Streamer()
		return outcome{
			now:      k.Now(),
			timeouts: st.CommandTimeouts(), retries: st.CommandRetries(),
			aborts: st.CommandAborts(), errorsSeen: st.CommandErrors(),
			protocolErrors: st.ProtocolErrors(),
			submitted:      st.CommandsSubmitted(), retired: st.CommandsRetired(),
			injected: inj.Injected(),
		}
	}
	first := run()
	if first.injected == 0 {
		t.Fatal("workload injected no faults; test is vacuous")
	}
	if second := run(); second != first {
		t.Errorf("recovery schedule diverged across identical seeds:\n first = %+v\nsecond = %+v", first, second)
	}
}

package streamer

import (
	"fmt"

	"snacc/internal/axis"
	"snacc/internal/bufpool"
	"snacc/internal/nvme"
	"snacc/internal/obs"
	"snacc/internal/pcie"
	"snacc/internal/sim"
)

// ReadRequest is the metadata of a PE read command (§4.1: "the user PE
// issues a read command by sending the read address and length over one
// stream"). Addr and Len are byte quantities on the NVMe namespace, 512
// aligned.
type ReadRequest struct {
	Addr uint64
	Len  int64
	// Tenant attributes the command's spans to a tenant when the streamer
	// is fronted by a TenantHub. Zero for untenanted traffic.
	Tenant int
}

// WriteRequest is the metadata of the first beat on the write stream
// ("the first stream beat on the command interface represents the desired
// write address"); the data beats follow, delimited by TLAST.
type WriteRequest struct {
	Addr uint64
	// Tenant attributes the command's spans to a tenant when the streamer
	// is fronted by a TenantHub. Zero for untenanted traffic.
	Tenant int
}

// CmdError is the side-band (TUSER) metadata flagging a failed command on
// the PE-facing streams: a read piece that failed terminally delivers a
// zero-byte packet carrying CmdError in place of its payload, and a write
// response token carries CmdError when any piece of the write failed. It
// implements error so PE-side helpers can surface the flag directly.
type CmdError struct {
	Status uint16 // final NVMe status (nvme.StatusAbortRequested for a timeout)
	Addr   uint64 // device byte address of the failed piece
	Len    int64  // length of the failed piece
}

func (e CmdError) Error() string {
	return fmt.Sprintf("streamer: command at %#x+%d failed with NVMe status %#x", e.Addr, e.Len, e.Status)
}

// statusSeverity orders terminal statuses for the write-response token: any
// error outranks success, and a fatal status outranks one classified as
// transient. Ties keep the earliest failing piece, so the reported Addr/Len
// stay deterministic.
func statusSeverity(s uint16) int {
	switch {
	case s == nvme.StatusSuccess:
		return 0
	case nvme.RetryableStatus(s):
		return 1
	default:
		return 2
	}
}

// Streamer is one NVMe Streamer instance.
type Streamer struct {
	k    *sim.Kernel
	cfg  Config
	res  Resources
	port *pcie.Port

	// PE-facing AXI4 streams (§4.1).
	ReadCmd   *axis.Stream // PE → Streamer: ReadRequest metadata
	ReadData  *axis.Stream // Streamer → PE: read payload
	WriteIn   *axis.Stream // PE → Streamer: WriteRequest + data + TLAST
	WriteResp *axis.Stream // Streamer → PE: completion tokens

	// Device linkage, programmed by the host driver at initialization
	// (§4.6: "dynamically configuring the NVMe Streamer ... with the
	// global PCIe addresses of their queues and doorbell registers").
	lbaSize    int64
	configured bool

	// queues holds the per-queue-pair submission state. The default
	// configuration has exactly one; Config.IOQueues shards the submission
	// path across more, with round-robin placement below and the global
	// reorder buffer preserving in-order retirement across all of them.
	queues  []*ioQueue
	rrNext  int // next queue for round-robin command placement
	rrChunk int // commands placed on rrNext so far (chunked round-robin)

	// Controller-failure circuit breaker (crash-recovery ladder). The
	// breaker trips on BreakerThreshold consecutive watchdog expiries or a
	// fatal CSTS poll; the breaker proc then quiesces submissions, resets
	// the controller through resetFn, and replays the in-flight window.
	breakerOpen    bool
	dead           bool
	consecTimeouts int
	breakerSignal  *sim.Chan[struct{}]
	breakerWaiters []*sim.Proc
	resetFn        func(p *sim.Proc) error
	cstsAddr       uint64 // controller status register bus address
	cfsPollArmed   bool

	// Completion queue: a reorder buffer (§4.2, arrow ⑤). Entries are
	// indexed by CID.
	rob        []robEntry
	robHead    int
	robTailIdx int
	robLive    int
	robFree    []int // OutOfOrder mode slot freelist
	robWaiters []*sim.Proc

	retireProc *sim.Proc
	cqeSignal  *sim.Chan[struct{}]
	// sendQ decouples retirement from data delivery so the per-variant
	// drain latency pipelines across commands instead of throttling the
	// retire FSM.
	sendQ *sim.Chan[sendItem]
	// retryQ feeds the recovery stage: slots whose command must be
	// resubmitted after a retryable error or a completion timeout.
	retryQ *sim.Chan[retryReq]
	// cmdSeq stamps every (re)submission so stale watchdog timers and
	// stale retry requests can be recognized and discarded.
	cmdSeq uint64

	// Payload buffers.
	readRing  *byteRing
	writeRing *byteRing // nil when the buffer is shared (URAM)
	readPool  *slotPool // OutOfOrder mode
	writePool *slotPool

	// PRP register file for the DRAM variants (Figure 3).
	prpReg []prpRegVal

	submitFSM *sim.Server
	retireFSM *sim.Server

	// Stats.
	cmdsSubmitted  int64
	cmdsRetired    int64
	bytesToPE      int64
	bytesFromPE    int64
	errors         int64
	retries        int64
	timeouts       int64
	aborts         int64
	protocolErrors int64
	breakerTrips   int64
	ctrlResets     int64
	replayedCmds   int64
	recoveryTime   sim.Time
	doorbellWrites int64
	cqBatches      int64
	// Per-command submit→retire latency, by direction.
	readLat  sim.Histogram
	writeLat sim.Histogram

	// tr, when non-nil, traces every NVMe command as an obs.Span. All
	// instrumentation sites go through nil-safe obs methods, so the
	// untraced path costs one nil compare and allocates nothing.
	tr *obs.Tracer
}

// ioQueue is the per-queue-pair half of the submission path: the SQ FIFO
// the NVMe controller reads over PCIe (§4.2, arrow ②), the doorbell
// addresses the host driver programmed, and the CQ-head consumption cursor
// for completions this queue delivered into the shared reorder buffer.
//
// Slots are preallocated out of one backing array and encoded in place —
// the NVMe ring discipline (at most QueueDepth-1 commands in flight, which
// the *global* reorder-buffer gate enforces across all queues) guarantees a
// slot's entry has been fetched before the tail wraps onto it. sqFilled
// tracks which slots have ever held an entry, preserving the empty-slot
// fetch check the old nil-slice representation gave for free.
type ioQueue struct {
	sqRing   [][]byte
	sqFilled []bool
	sqTail   int

	sqDoorbell uint64
	cqDoorbell uint64

	// cqConsumed is the CQ head the device has been (or will be) told
	// about; cqPending counts consumed entries whose head-doorbell update
	// is still coalesced (DoorbellBatch > 1).
	cqConsumed int
	cqPending  int

	// dbPending counts submitted-but-unrung SQ tail advances (dbSlots
	// lists their reorder-buffer slots, for span stamps); the doorbell
	// rings with the final tail once dbPending reaches DoorbellBatch or
	// the debounced flush deadline passes. Each new pending command pushes
	// the deadline out (interrupt-coalescing style), so a steady stream
	// rings at the batch threshold and the timer only pays out when the
	// stream pauses.
	dbPending    int
	dbSlots      []int
	dbDeadline   sim.Time
	cqDeadline   sim.Time
	dbFlushArmed bool
	cqFlushArmed bool
	sqFlushFn    func() // preallocated timer closures (0 allocs/op path)
	cqFlushFn    func()

	// live/maxLive gauge this queue's in-flight depth (submitted, not yet
	// retired) and its high-water mark.
	live    int64
	maxLive int64
}

// robEntry is one in-flight NVMe command.
type robEntry struct {
	used        bool
	isWrite     bool
	bufOff      int64
	length      int64
	last        bool // final piece of the PE-level request
	done        bool
	status      uint16
	submittedAt sim.Time
	// Recovery state: the opcode and device address are kept so the SQE
	// can be rebuilt on resubmission; seq invalidates stale watchdog
	// timers and retry requests; hasCQE distinguishes a received error
	// completion from a synthesized timeout abort (only the former
	// consumed a CQ slot); timedOut marks a watchdog abort.
	op       uint8
	devAddr  uint64
	attempts int
	seq      uint64
	hasCQE   bool
	timedOut bool
	// queue is the I/O queue pair the command was placed on (round-robin
	// at first submission, sticky across retries and replays so recovery
	// stays deterministic); enqueued marks that the command actually went
	// on a queue (a fail-fast against a dead controller never does).
	queue    int
	enqueued bool
	wreq     *writeTracker
	// rreq/piece sequence the split pieces of one PE read so the
	// out-of-order configuration still streams data in order (§7: an
	// out-of-order approach "must appropriately handle large transfers
	// split across multiple commands while maintaining correct processing
	// order").
	rreq  *readTracker
	piece int
	// span follows the command through the pipeline (nil when untraced).
	span *obs.Span
}

// readTracker orders the pieces of one PE read request.
type readTracker struct {
	next int
}

// writeTracker groups the split pieces of one PE write. sawLast matters in
// the out-of-order configuration, where the final piece may retire before
// earlier ones. status accumulates the worst NVMe status across pieces so
// the response token cannot signal success when any piece failed.
type writeTracker struct {
	remaining int
	sawLast   bool
	status    uint16
	failAddr  uint64
	failLen   int64
}

// retryReq is one resubmission order for the recovery stage. seq pins the
// submission generation the order belongs to — a slot that was rescued by a
// late completion or already recycled is recognized and skipped.
type retryReq struct {
	slot int
	seq  uint64
}

// New builds a streamer, wires its window sub-regions into the FPGA BAR
// router, and starts its service processes.
func New(k *sim.Kernel, cfg Config, res Resources, port *pcie.Port, router *pcie.RangeRouter) *Streamer {
	if cfg.QueueDepth < 2 || cfg.QueueDepth > 1024 {
		panic("streamer: queue depth out of range")
	}
	if cfg.MaxCmdBytes%4096 != 0 {
		panic("streamer: command split size must be 4 KiB aligned")
	}
	if cfg.IOQueues > MaxIOQueues {
		panic("streamer: IOQueues exceeds the per-window control-region budget")
	}
	s := &Streamer{
		k:         k,
		cfg:       cfg,
		res:       res,
		port:      port,
		ReadCmd:   axis.New(k, cfg.Name+".rdcmd", cfg.StreamCfg),
		ReadData:  axis.New(k, cfg.Name+".rddata", cfg.StreamCfg),
		WriteIn:   axis.New(k, cfg.Name+".wr", cfg.StreamCfg),
		WriteResp: axis.New(k, cfg.Name+".wrresp", cfg.StreamCfg),
		rob:       make([]robEntry, cfg.QueueDepth),
		prpReg:    make([]prpRegVal, cfg.QueueDepth),
		submitFSM: sim.NewServer(k),
		retireFSM: sim.NewServer(k),
		cqeSignal: sim.NewChan[struct{}](k, 1),
		sendQ:     sim.NewChan[sendItem](k, 8),
		lbaSize:   512,
	}
	// One SQ FIFO (full QueueDepth deep — the global in-flight gate bounds
	// every queue's occupancy) per queue pair, all slots carved from one
	// backing array. The flush closures are built once so arming a doorbell
	// coalescing timer allocates nothing per burst.
	s.queues = make([]*ioQueue, cfg.ioQueues())
	sqeBacking := make([]byte, len(s.queues)*cfg.QueueDepth*nvme.SQESize)
	for qi := range s.queues {
		q := &ioQueue{
			sqRing:   make([][]byte, cfg.QueueDepth),
			sqFilled: make([]bool, cfg.QueueDepth),
			dbSlots:  make([]int, 0, cfg.QueueDepth),
		}
		base := qi * cfg.QueueDepth * nvme.SQESize
		for i := range q.sqRing {
			q.sqRing[i] = sqeBacking[base+i*nvme.SQESize : base+(i+1)*nvme.SQESize]
		}
		qi := qi
		q.sqFlushFn = func() { s.sqFlushTimer(qi) }
		q.cqFlushFn = func() { s.cqFlushTimer(qi) }
		s.queues[qi] = q
	}
	if cfg.OutOfOrder {
		for i := 0; i < cfg.QueueDepth; i++ {
			s.robFree = append(s.robFree, i)
		}
		s.readPool = newSlotPool(cfg.ReadBufBytes, cfg.MaxCmdBytes)
		if cfg.WriteBufBytes > 0 {
			s.writePool = newSlotPool(cfg.WriteBufBytes, cfg.MaxCmdBytes)
		}
	} else {
		s.readRing = newByteRing(cfg.ReadBufBytes)
		if cfg.WriteBufBytes > 0 {
			s.writeRing = newByteRing(cfg.WriteBufBytes)
		}
	}
	s.installWindows(router)
	k.Spawn(cfg.Name+".readcmd", s.readCmdLoop)
	k.Spawn(cfg.Name+".write", s.writeLoop)
	s.retireProc = k.Spawn(cfg.Name+".retire", s.retireLoop)
	k.Spawn(cfg.Name+".send", s.sendLoop)
	if cfg.recoveryEnabled() {
		s.retryQ = sim.NewChan[retryReq](k, cfg.QueueDepth)
		k.Spawn(cfg.Name+".retry", s.retryLoop)
	}
	if cfg.breakerEnabled() {
		s.breakerSignal = sim.NewChan[struct{}](k, 1)
		k.Spawn(cfg.Name+".breaker", s.breakerLoop)
	}
	return s
}

// Configure programs the device doorbell addresses of the first I/O queue
// pair and the namespace LBA size; called by the host driver after it
// created the queue pair on the SSD. Multi-queue configurations program the
// remaining pairs with ConfigureQueue.
func (s *Streamer) Configure(sqDoorbell, cqDoorbell uint64, lbaSize int64) {
	s.queues[0].sqDoorbell = sqDoorbell
	s.queues[0].cqDoorbell = cqDoorbell
	s.lbaSize = lbaSize
	s.configured = true
}

// ConfigureQueue programs the doorbell addresses of I/O queue pair i
// (0-based streamer index; the device-side qid is the driver's business).
func (s *Streamer) ConfigureQueue(i int, sqDoorbell, cqDoorbell uint64) {
	s.queues[i].sqDoorbell = sqDoorbell
	s.queues[i].cqDoorbell = cqDoorbell
}

// IOQueues returns the number of I/O queue pairs this streamer drives.
func (s *Streamer) IOQueues() int { return len(s.queues) }

// ConfigureStatus programs the bus address of the device's controller
// status register (CSTS), enabling the fast crash-detect poll.
func (s *Streamer) ConfigureStatus(cstsAddr uint64) { s.cstsAddr = cstsAddr }

// SetResetHandler installs the controller-reset rung of the recovery
// ladder: fn must reset the controller and rebuild the admin + I/O queues
// (tapasco.Driver.ResetAndReattach), returning an error when the device is
// gone for good. It runs from the breaker's proc context.
func (s *Streamer) SetResetHandler(fn func(p *sim.Proc) error) { s.resetFn = fn }

// SetTracer attaches a span tracer; every NVMe command submitted afterwards
// is followed as one obs.Span from PE acceptance to in-order retirement.
// Striped arrays may share one tracer across members (same kernel, so the
// single-threaded discipline holds). Install it before traffic: commands
// already in flight stay untraced.
func (s *Streamer) SetTracer(tr *obs.Tracer) { s.tr = tr }

// Tracer returns the attached span tracer, or nil.
func (s *Streamer) Tracer() *obs.Tracer { return s.tr }

// OnDeviceEvent routes a device-side pipeline event (SQE fetch, execution
// start) onto the owning command's span. The CID is the reorder-buffer slot
// by construction; events naming an idle or already-done slot — the fetch of
// a zombie attempt after a late completion resolved the command, or a replay
// racing a pre-reset fetch — are counted as late and dropped, mirroring the
// protocol-error discipline of onCQE.
func (s *Streamer) OnDeviceEvent(cid uint16, stage obs.Stage, at sim.Time) {
	if s.tr == nil {
		return
	}
	slot := int(cid)
	if slot < 0 || slot >= len(s.rob) || !s.rob[slot].used || s.rob[slot].done || s.rob[slot].span == nil {
		s.tr.LateEvent()
		return
	}
	s.rob[slot].span.Mark(stage, at)
}

// Config returns the streamer configuration.
func (s *Streamer) Config() Config { return s.cfg }

// WindowSize returns the BAR window span this streamer decodes.
func (s *Streamer) WindowSize() int64 { return s.windowSize() }

// Stats.

// CommandsSubmitted returns the NVMe commands issued.
func (s *Streamer) CommandsSubmitted() int64 { return s.cmdsSubmitted }

// CommandsRetired returns the NVMe commands retired in order.
func (s *Streamer) CommandsRetired() int64 { return s.cmdsRetired }

// BytesToPE returns payload bytes streamed to the PE (reads).
func (s *Streamer) BytesToPE() int64 { return s.bytesToPE }

// BytesFromPE returns payload bytes received from the PE (writes).
func (s *Streamer) BytesFromPE() int64 { return s.bytesFromPE }

// CommandErrors returns non-success completions received from the device,
// before recovery — a retried-to-success command still counts its failed
// attempts here.
func (s *Streamer) CommandErrors() int64 { return s.errors }

// CommandRetries returns resubmissions performed by the recovery stage.
func (s *Streamer) CommandRetries() int64 { return s.retries }

// CommandTimeouts returns watchdog deadline expiries (lost or overdue
// completions).
func (s *Streamer) CommandTimeouts() int64 { return s.timeouts }

// CommandAborts returns commands abandoned after recovery was exhausted and
// propagated to the PE as stream error flags.
func (s *Streamer) CommandAborts() int64 { return s.aborts }

// ProtocolErrors returns completion entries dropped as protocol violations
// (invalid or duplicate CID) instead of crashing the rig — under fault
// injection a resubmitted command's original completion may still arrive.
func (s *Streamer) ProtocolErrors() int64 { return s.protocolErrors }

// BreakerTrips returns how many times the controller-failure circuit
// breaker opened.
func (s *Streamer) BreakerTrips() int64 { return s.breakerTrips }

// ControllerResets returns controller reset attempts issued by the
// recovery ladder.
func (s *Streamer) ControllerResets() int64 { return s.ctrlResets }

// CommandsReplayed returns in-flight commands resubmitted from the
// retained staging buffers after a successful controller reset.
func (s *Streamer) CommandsReplayed() int64 { return s.replayedCmds }

// RecoveryTime returns total simulated time spent inside the recovery
// ladder (breaker trip → replay complete or death); divide by BreakerTrips
// for the mean time to recover.
func (s *Streamer) RecoveryTime() sim.Time { return s.recoveryTime }

// DoorbellWrites returns the total SQ-tail and CQ-head doorbell writes
// posted over PCIe. Without coalescing every command costs two (one tail
// ring, one head update); DoorbellBatch amortizes both sides, and
// DoorbellWrites / CommandsSubmitted is the amortization ratio the -queues
// sweep reports.
func (s *Streamer) DoorbellWrites() int64 { return s.doorbellWrites }

// CQBatches returns how many CQ-head doorbell updates acknowledged a
// coalesced run of drained completions (0 unless DoorbellBatch > 1).
func (s *Streamer) CQBatches() int64 { return s.cqBatches }

// QueueDepthHighWater returns the per-queue in-flight high-water marks
// (submitted, not yet retired), one entry per I/O queue pair.
func (s *Streamer) QueueDepthHighWater() []int64 {
	out := make([]int64, len(s.queues))
	for i, q := range s.queues {
		out[i] = q.maxLive
	}
	return out
}

// Dead reports whether the controller was declared permanently dead: the
// reset budget was exhausted (or no reset handler exists). All in-flight
// and future commands fail fast with nvme.StatusControllerUnavailable.
func (s *Streamer) Dead() bool { return s.dead }

// CommandLatencies returns the submit→retire latency distributions for
// read and write NVMe commands — the device-level view beneath the
// PE-level Figure 4c numbers.
func (s *Streamer) CommandLatencies() (read, write *sim.Histogram) {
	return &s.readLat, &s.writeLat
}

// BufferHighWater reports the peak occupancy of the read and write staging
// buffers — never exceeding their capacities, per §4.2's "We only request
// as much data as can fit in our available data buffer". For the shared
// URAM buffer both values refer to the single ring.
func (s *Streamer) BufferHighWater() (read, write int64) {
	if s.cfg.OutOfOrder {
		return 0, 0 // slot pools are trivially bounded
	}
	read = s.readRing.maxLive
	write = read
	if s.writeRing != nil {
		write = s.writeRing.maxLive
	}
	return read, write
}

// ---- command submission ----

// occupy serializes p on an FSM server for d.
func occupy(p *sim.Proc, srv *sim.Server, d sim.Time) {
	p.Sleep(srv.Occupy(d) - p.Now())
}

// robAlloc reserves a reorder-buffer slot, blocking while the in-flight
// window is full — the in-order issue gate of §7 ("issues new commands only
// after the first previous command is completed").
func (s *Streamer) robAlloc(p *sim.Proc) int {
	// Strict FIFO admission: only the head waiter may claim a slot, so the
	// slot sequence matches the order commands arrived from the PE ("all
	// commands are retired in the order they are received", §4.2).
	s.robWaiters = append(s.robWaiters, p)
	for {
		if s.robWaiters[0] == p && s.robAvailable() {
			s.robWaiters = s.robWaiters[1:]
			slot := s.robClaim()
			if len(s.robWaiters) > 0 && s.robAvailable() {
				s.robWaiters[0].Wake()
			}
			return slot
		}
		p.Park()
	}
}

func (s *Streamer) robAvailable() bool {
	// NVMe ring discipline: at most QueueDepth-1 commands may be in flight,
	// or the SQ tail doorbell wraps onto the unfetched head and the
	// controller sees an empty queue.
	if s.cfg.OutOfOrder {
		return len(s.robFree) > 1
	}
	return s.robLive < s.cfg.QueueDepth-1
}

func (s *Streamer) robClaim() int {
	s.robLive++
	if s.cfg.OutOfOrder {
		slot := s.robFree[0]
		s.robFree = s.robFree[1:]
		return slot
	}
	slot := s.robTailIdx
	s.robTailIdx = (s.robTailIdx + 1) % s.cfg.QueueDepth
	return slot
}

func (s *Streamer) robRelease(slot int) {
	if e := &s.rob[slot]; e.enqueued {
		s.queues[e.queue].live--
	}
	s.rob[slot] = robEntry{}
	s.robLive--
	if s.cfg.OutOfOrder {
		s.robFree = append(s.robFree, slot)
	} else {
		s.robHead = (s.robHead + 1) % s.cfg.QueueDepth
	}
	if len(s.robWaiters) > 0 {
		s.robWaiters[0].Wake()
	}
}

// allocReadBuf / allocWriteBuf block until payload space is available.
func (s *Streamer) allocReadBuf(p *sim.Proc, n int64) int64 {
	if s.cfg.OutOfOrder {
		return s.readPool.alloc(p, n)
	}
	return s.readRing.alloc(p, n)
}

func (s *Streamer) allocWriteBuf(p *sim.Proc, n int64) int64 {
	if s.cfg.OutOfOrder {
		if s.writePool != nil {
			return s.writePool.alloc(p, n)
		}
		return s.readPool.alloc(p, n)
	}
	if s.writeRing != nil {
		return s.writeRing.alloc(p, n)
	}
	return s.readRing.alloc(p, n)
}

func (s *Streamer) freeBuf(isWrite bool, off int64) {
	if s.cfg.OutOfOrder {
		switch {
		case isWrite && s.writePool != nil:
			s.writePool.release(off)
		default:
			s.readPool.release(off)
		}
		return
	}
	if isWrite && s.writeRing != nil {
		s.writeRing.free()
		return
	}
	s.readRing.free()
}

// submit builds the SQE for one ≤MaxCmdBytes piece, stores it in the SQ
// FIFO, and rings the device doorbell.
func (s *Streamer) submit(p *sim.Proc, slot int, op uint8, devAddr uint64, bufOff, n int64, isWrite, last bool, wreq *writeTracker, rreq *readTracker, piece int, span *obs.Span) {
	if !s.configured {
		panic("streamer: command before Configure (host initialization missing)")
	}
	// While the breaker holds the path quiesced the slot stays claimed but
	// unused, so the replay pass (which walks used entries) skips it.
	s.gateSubmit(p)
	e := &s.rob[slot]
	e.used = true
	e.submittedAt = s.k.Now()
	e.isWrite = isWrite
	e.bufOff = bufOff
	e.length = n
	e.last = last
	e.op = op
	e.devAddr = devAddr
	e.attempts = 0
	e.hasCQE = false
	e.timedOut = false
	e.wreq = wreq
	e.rreq = rreq
	e.piece = piece
	e.span = span
	if s.dead {
		// Terminal controller death: fail fast with the synthesized status
		// instead of ringing a dead doorbell — the command never goes on
		// the wire, so no watchdog, no retry, no CQ slot.
		span.Annotate(obs.AnnotFailFast, s.k.Now())
		e.done = true
		e.timedOut = true
		e.status = nvme.StatusControllerUnavailable
		s.cqeSignal.TryPut(struct{}{})
		return
	}
	// Round-robin queue placement, decided once per command: retries and
	// post-reset replays stay on the same queue, so recovery ordering is
	// deterministic and the device-side CID bookkeeping never migrates.
	// Placement advances in chunks of DoorbellBatch so consecutive commands
	// land on the same SQ and a coalesced batch can actually form there; at
	// batch 1 this degenerates to plain per-command round-robin.
	e.queue = s.rrNext
	s.rrChunk++
	if s.rrChunk >= s.cfg.doorbellBatch() {
		s.rrChunk = 0
		s.rrNext = (s.rrNext + 1) % len(s.queues)
	}
	e.enqueued = true
	q := s.queues[e.queue]
	q.live++
	if q.live > q.maxLive {
		q.maxLive = q.live
	}
	s.encodeAndRing(slot)
}

// encodeAndRing rebuilds the slot's SQE from its reorder-buffer entry,
// pushes it into the SQ FIFO at the tail, rings the device doorbell, and
// arms the completion watchdog. First submissions and recovery
// resubmissions both pass through here.
func (s *Streamer) encodeAndRing(slot int) {
	e := &s.rob[slot]
	e.done = false
	e.hasCQE = false
	e.timedOut = false
	e.status = nvme.StatusSuccess
	s.cmdSeq++
	e.seq = s.cmdSeq
	// A resubmission invalidates the previous attempt's device-path
	// timestamps; the span keeps only the attempt that completes.
	e.span.Resubmit()
	e.span.Mark(obs.StageSubmitted, s.k.Now())

	cmd := nvme.Command{Opcode: e.op, CID: uint16(slot), NSID: 1}
	cmd.SetSLBA(e.devAddr / uint64(s.lbaSize))
	cmd.SetNLB(uint32(e.length/s.lbaSize) - 1)
	cmd.PRP1 = s.bufPhys(e.isWrite, e.bufOff)
	switch {
	case e.length <= nvme.PageSize:
	case e.length <= 2*nvme.PageSize:
		cmd.PRP2 = s.bufPhys(e.isWrite, e.bufOff+nvme.PageSize)
	default:
		cmd.PRP2 = s.prpPointer(slot, e.isWrite, e.bufOff)
	}
	q := s.queues[e.queue]
	e.span.SetQueue(e.queue)
	cmd.MarshalInto(q.sqRing[q.sqTail])
	q.sqFilled[q.sqTail] = true
	q.sqTail = (q.sqTail + 1) % s.cfg.QueueDepth
	s.cmdsSubmitted++
	s.tr.CountCommand()
	if s.cfg.CmdTimeout > 0 {
		seq := e.seq
		s.k.After(s.cfg.CmdTimeout, func() { s.onDeadline(slot, seq) })
	}
	s.armCFSPoll()
	if s.cfg.doorbellBatch() <= 1 {
		// Uncoalesced: one tail ring per command, the paper's behavior.
		e.span.Mark(obs.StageDoorbell, s.k.Now())
		s.ringDoorbell(q.sqDoorbell, uint32(q.sqTail))
		return
	}
	// Coalesced: the ring is deferred until DoorbellBatch commands have
	// accumulated or the debounced flush deadline passes, and then carries
	// the final tail — one posted write covers the whole burst. Each new
	// command pushes the deadline out DoorbellFlush, so a steady stream
	// rings at the threshold and the timer only fires when the stream
	// pauses. The span's doorbell stamp records when the command's tail
	// actually went on the wire.
	q.dbPending++
	q.dbSlots = append(q.dbSlots, slot)
	if q.dbPending >= s.cfg.doorbellBatch() {
		s.flushSQ(e.queue)
		return
	}
	q.dbDeadline = s.k.Now() + s.cfg.DoorbellFlush
	if !q.dbFlushArmed {
		q.dbFlushArmed = true
		s.k.After(s.cfg.DoorbellFlush, q.sqFlushFn)
	}
}

// flushSQ rings queue qi's SQ tail doorbell with the final tail, covering
// every command coalesced since the previous ring. Mid-recovery the ring is
// withheld: the breaker's replay resets the queue cursors and re-rings (see
// replay), and a dead controller no longer listens at all.
func (s *Streamer) flushSQ(qi int) {
	q := s.queues[qi]
	if q.dbPending == 0 {
		return
	}
	if s.dead {
		q.dbPending = 0
		q.dbSlots = q.dbSlots[:0]
		return
	}
	if s.breakerOpen {
		return
	}
	q.dbPending = 0
	for _, slot := range q.dbSlots {
		e := &s.rob[slot]
		if e.used && !e.done && e.enqueued && e.queue == qi {
			e.span.Mark(obs.StageDoorbell, s.k.Now())
		}
	}
	q.dbSlots = q.dbSlots[:0]
	s.ringDoorbell(q.sqDoorbell, uint32(q.sqTail))
}

// sqFlushTimer is the deferred flush for a partial doorbell batch. If new
// commands pushed the deadline since the timer was armed, it re-arms for the
// remainder instead of flushing early (debounce).
func (s *Streamer) sqFlushTimer(qi int) {
	q := s.queues[qi]
	q.dbFlushArmed = false
	if q.dbPending == 0 {
		return
	}
	if d := q.dbDeadline - s.k.Now(); d > 0 {
		q.dbFlushArmed = true
		s.k.After(d, q.sqFlushFn)
		return
	}
	s.flushSQ(qi)
}

// ringDoorbell posts a 4-byte doorbell write through a recycled buffer. The
// device's register completer decodes the value synchronously at delivery,
// after which the buffer returns to the pool.
func (s *Streamer) ringDoorbell(addr uint64, val uint32) {
	s.doorbellWrites++
	s.tr.CountDoorbell()
	b := bufpool.Get(4)
	b[0], b[1], b[2], b[3] = byte(val), byte(val>>8), byte(val>>16), byte(val>>24)
	s.port.Write(addr, 4, b, func() { bufpool.Put(b) })
}

// readCmdLoop services the PE's read command stream.
func (s *Streamer) readCmdLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		pkt := s.ReadCmd.Recv(p)
		req, ok := pkt.Meta.(ReadRequest)
		if !ok {
			panic("streamer: read command packet without ReadRequest metadata")
		}
		if req.Len <= 0 || req.Addr%uint64(s.lbaSize) != 0 || req.Len%s.lbaSize != 0 {
			panic(fmt.Sprintf("streamer: misaligned read request %#x+%d", req.Addr, req.Len))
		}
		// Split at the MaxCmdBytes boundary (§4.2) and pipeline pieces.
		tracker := &readTracker{}
		var off int64
		piece := 0
		for off < req.Len {
			n := s.cfg.MaxCmdBytes
			if n > req.Len-off {
				n = req.Len - off
			}
			span := s.tr.BeginTenant(nvme.OpRead, false, req.Addr+uint64(off), n, p.Now(), req.Tenant)
			occupy(p, s.submitFSM, s.cfg.SubmitOverhead)
			slot := s.robAlloc(p)
			bufOff := s.allocReadBuf(p, n)
			span.Mark(obs.StageBufReady, p.Now())
			s.submit(p, slot, nvme.OpRead, req.Addr+uint64(off), bufOff, n, false, off+n == req.Len, nil, tracker, piece, span)
			off += n
			piece++
		}
	}
}

// writeLoop services the PE's write stream: buffer incoming data, issue a
// command at each MaxCmdBytes boundary ("Large write commands are split at
// each 1 MB boundary", §4.2), and let the retire path send the response
// token once every piece finished.
func (s *Streamer) writeLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		head := s.WriteIn.Recv(p)
		req, ok := head.Meta.(WriteRequest)
		if !ok {
			panic("streamer: write stream must start with WriteRequest metadata")
		}
		if req.Addr%uint64(s.lbaSize) != 0 {
			panic(fmt.Sprintf("streamer: misaligned write address %#x", req.Addr))
		}
		tracker := &writeTracker{}
		devAddr := req.Addr
		done := head.Last // a bare header with TLAST is an empty write
		pieces := 0
		for !done {
			// Collect the piece from the stream first — its exact size is
			// known only at the 1 MiB boundary or TLAST — then reserve
			// buffer space of that size and stage the data (posted).
			// The staging slice comes from the buffer pool (up to
			// MaxCmdBytes per in-flight command) and recycles once the
			// payload has been consumed by the staging memory or, for the
			// host-DRAM variant, delivered over PCIe.
			pieceStart := p.Now()
			var filled int64
			var fnData []byte
			if s.cfg.Functional {
				fnData = bufpool.Get(int(s.cfg.MaxCmdBytes))[:0]
			}
			for filled < s.cfg.MaxCmdBytes && !done {
				pkt := s.WriteIn.Recv(p)
				if pkt.Bytes <= 0 || filled+pkt.Bytes > s.cfg.MaxCmdBytes {
					panic("streamer: write data packets must tile the 1 MiB piece")
				}
				if fnData != nil && pkt.Data != nil {
					fnData = append(fnData, pkt.Data...)
				}
				filled += pkt.Bytes
				s.bytesFromPE += pkt.Bytes
				done = pkt.Last
			}
			if filled%s.lbaSize != 0 {
				panic("streamer: write length must be a multiple of the LBA size")
			}
			span := s.tr.BeginTenant(nvme.OpWrite, true, devAddr, filled, pieceStart, req.Tenant)
			occupy(p, s.submitFSM, s.cfg.SubmitOverhead)
			slot := s.robAlloc(p)
			bufOff := s.allocWriteBuf(p, filled)
			var data []byte
			var consumed func()
			if fnData != nil {
				data = fnData
				recycled := fnData
				consumed = func() { bufpool.Put(recycled) }
			}
			s.bufWrite(p, true, bufOff, filled, data, consumed)
			span.Mark(obs.StageBufReady, p.Now())
			tracker.remaining++
			pieces++
			s.submit(p, slot, nvme.OpWrite, devAddr, bufOff, filled, true, done, tracker, nil, 0, span)
			devAddr += uint64(filled)
		}
		if pieces == 0 {
			// Empty write: acknowledge immediately.
			s.WriteResp.Send(p, axis.Packet{Last: true})
		}
	}
}

// ---- completion & retirement ----

// onCQE is invoked by the CQ window completer when the device posts a
// completion (arrow ⑤). Bits may set out of order; retirement stays in
// order unless the OutOfOrder extension is on.
//
// A completion naming an idle or already-done slot is dropped and counted,
// not fatal: NVMe hosts must tolerate spurious completions, and under fault
// injection the original completion of a timed-out, resubmitted command can
// legitimately arrive after the retry already resolved the slot.
func (s *Streamer) onCQE(qi int, cqe nvme.Completion) {
	slot := int(cqe.CID)
	if slot < 0 || slot >= len(s.rob) || !s.rob[slot].used || s.rob[slot].done {
		s.protocolErrors++
		s.tr.LateEvent()
		s.consumeCQE(qi)
		return
	}
	e := &s.rob[slot]
	e.done = true
	e.hasCQE = true
	e.status = cqe.Status
	e.span.Mark(obs.StageCQE, s.k.Now())
	// Any valid completion proves the controller is alive: the breaker's
	// consecutive-timeout count restarts.
	s.consecTimeouts = 0
	if cqe.Status != nvme.StatusSuccess {
		s.errors++
	}
	// Nudge the retire loop; extra signals coalesce in the 1-deep channel.
	s.cqeSignal.TryPut(struct{}{})
}

// InjectCQE delivers a raw completion entry to the first queue's reorder-
// buffer window exactly as the CQ window completer does — a hook for
// protocol-robustness tests.
func (s *Streamer) InjectCQE(cqe nvme.Completion) { s.onCQE(0, cqe) }

// consumeCQE advances queue qi's completion-queue head by one consumed
// entry. Every completion the device actually posted must pass through here
// exactly once — including protocol-error drops and error completions
// absorbed by the retry path — or the device's CQ-occupancy accounting
// drifts and completions stall on a phantom full queue. Timeout aborts
// never had a completion and must not ring.
//
// With DoorbellBatch > 1 the head-doorbell write itself is coalesced: it is
// posted once per drained run of up to DoorbellBatch entries, with a
// debounced timer backstop (each consume pushes the deadline out
// DoorbellFlush) guaranteeing the head never lags a paused pipeline by more
// than the flush window per entry. The device tolerates the lag by
// construction: at most QueueDepth-1 commands are ever in flight, which is
// exactly the CQ occupancy a stale head still leaves room for.
func (s *Streamer) consumeCQE(qi int) {
	q := s.queues[qi]
	q.cqConsumed = (q.cqConsumed + 1) % s.cfg.QueueDepth
	if s.cfg.doorbellBatch() > 1 {
		q.cqPending++
		if q.cqPending >= s.cfg.doorbellBatch() {
			s.flushCQ(qi)
			return
		}
		q.cqDeadline = s.k.Now() + s.cfg.DoorbellFlush
		if !q.cqFlushArmed {
			q.cqFlushArmed = true
			s.k.After(s.cfg.DoorbellFlush, q.cqFlushFn)
		}
		return
	}
	if s.breakerOpen || s.dead {
		// Mid-recovery the doorbell may hit a half-rebuilt (or absent)
		// controller; the CQ head re-syncs to zero at replay, and a dead
		// controller no longer counts occupancy at all.
		return
	}
	s.ringDoorbell(q.cqDoorbell, uint32(q.cqConsumed))
}

// flushCQ posts queue qi's coalesced CQ-head doorbell update, covering
// every entry consumed since the previous one.
func (s *Streamer) flushCQ(qi int) {
	q := s.queues[qi]
	if q.cqPending == 0 {
		return
	}
	q.cqPending = 0
	if s.breakerOpen || s.dead {
		return
	}
	s.cqBatches++
	s.ringDoorbell(q.cqDoorbell, uint32(q.cqConsumed))
}

// cqFlushTimer is the deferred CQ-head flush backstop, debounced the same
// way as sqFlushTimer: fresh consumes push the deadline, so a steady drain
// rings at the batch threshold and the timer pays out only at a pause.
func (s *Streamer) cqFlushTimer(qi int) {
	q := s.queues[qi]
	q.cqFlushArmed = false
	if q.cqPending == 0 {
		return
	}
	if d := q.cqDeadline - s.k.Now(); d > 0 {
		q.cqFlushArmed = true
		s.k.After(d, q.cqFlushFn)
		return
	}
	s.flushCQ(qi)
}

// onDeadline is the watchdog: fired CmdTimeout after the (re)submission
// stamped seq. A slot that was since completed or recycled is recognized by
// the stale seq and ignored.
func (s *Streamer) onDeadline(slot int, seq uint64) {
	e := &s.rob[slot]
	if !e.used || e.seq != seq || e.done {
		return
	}
	if s.dead || s.breakerOpen {
		// The breaker owns recovery: individual watchdogs stand down, which
		// is what bounds the per-command retry storm against a dead
		// controller. Every in-flight slot is resolved by replay or by
		// declareDead.
		return
	}
	s.timeouts++
	s.consecTimeouts++
	e.span.Annotate(obs.AnnotTimeout, s.k.Now())
	if s.cfg.BreakerThreshold > 0 && s.consecTimeouts >= s.cfg.BreakerThreshold {
		s.tripBreaker()
		return
	}
	if e.attempts < s.cfg.MaxRetries {
		e.attempts++
		// Invalidate the expired generation so a straggling completion
		// for it is dropped as a protocol error rather than racing the
		// resubmission.
		s.cmdSeq++
		e.seq = s.cmdSeq
		if !s.retryQ.TryPut(retryReq{slot: slot, seq: e.seq}) {
			panic("streamer: retry queue overflow")
		}
		return
	}
	// Recovery exhausted: synthesize an abort completion so the command
	// retires through the normal path and the error reaches the PE. No
	// CQE was received, so the CQ head doorbell must not advance.
	e.done = true
	e.timedOut = true
	e.status = nvme.StatusAbortRequested
	s.cqeSignal.TryPut(struct{}{})
}

// maybeRetry reschedules a slot whose command completed with a retryable
// error. Reports whether the slot was handed to the recovery stage instead
// of retiring.
func (s *Streamer) maybeRetry(slot int) bool {
	e := &s.rob[slot]
	if e.status == nvme.StatusSuccess || e.timedOut || s.dead {
		return false
	}
	if !nvme.RetryableStatus(e.status) || e.attempts >= s.cfg.MaxRetries {
		return false
	}
	e.attempts++
	// The error completion is absorbed here: consume its CQ slot and
	// clear the completion state before the command goes back out.
	if e.hasCQE {
		e.hasCQE = false
		s.consumeCQE(e.queue)
	}
	e.done = false
	e.status = nvme.StatusSuccess
	s.cmdSeq++
	e.seq = s.cmdSeq
	if !s.retryQ.TryPut(retryReq{slot: slot, seq: e.seq}) {
		panic("streamer: retry queue overflow")
	}
	return true
}

// retryLoop is the recovery stage: it paces resubmissions with exponential
// backoff and re-issues commands through the submission FSM. Orders whose
// generation went stale — a late completion rescued the command while the
// backoff ran — are skipped.
func (s *Streamer) retryLoop(p *sim.Proc) {
	p.SetDaemon(true)
	stale := func(rq retryReq) bool {
		e := &s.rob[rq.slot]
		return !e.used || e.seq != rq.seq || e.done
	}
	for {
		rq := s.retryQ.Get(p)
		if stale(rq) {
			continue
		}
		if d := s.backoff(s.rob[rq.slot].attempts); d > 0 {
			p.Sleep(d)
		}
		s.gateSubmit(p) // breaker quiesce
		if stale(rq) {
			continue
		}
		if s.dead {
			// The controller died while the order waited: resolve the slot
			// terminally instead of ringing a dead doorbell.
			e := &s.rob[rq.slot]
			e.span.Annotate(obs.AnnotFailFast, p.Now())
			e.done = true
			e.timedOut = true
			e.status = nvme.StatusControllerUnavailable
			s.cqeSignal.TryPut(struct{}{})
			continue
		}
		occupy(p, s.submitFSM, s.cfg.SubmitOverhead)
		if stale(rq) {
			continue
		}
		s.retries++
		s.rob[rq.slot].span.Annotate(obs.AnnotRetry, p.Now())
		s.encodeAndRing(rq.slot)
	}
}

// backoff returns the delay before resubmission attempt n (n ≥ 1):
// RetryBackoff doubling per attempt, capped at 256x.
func (s *Streamer) backoff(attempt int) sim.Time {
	if s.cfg.RetryBackoff <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 8 {
		shift = 8
	}
	return s.cfg.RetryBackoff << shift
}

// ---- controller-failure circuit breaker ----

// gateSubmit parks p while the breaker holds the submission path quiesced.
// A dead controller does not park: submissions proceed and fail fast.
func (s *Streamer) gateSubmit(p *sim.Proc) {
	for s.breakerOpen && !s.dead {
		s.breakerWaiters = append(s.breakerWaiters, p)
		p.Park()
	}
}

// tripBreaker opens the breaker and wakes the recovery proc. Idempotent
// while a recovery is already running.
func (s *Streamer) tripBreaker() {
	if s.breakerOpen || s.dead || s.breakerSignal == nil {
		return
	}
	s.breakerOpen = true
	s.breakerTrips++
	s.tr.Event(obs.AnnotBreakerTrip, s.k.Now())
	s.breakerSignal.TryPut(struct{}{})
}

// breakerLoop runs the detect→quiesce→reset→replay ladder. It needs a proc
// context because the reset handler issues blocking admin commands.
func (s *Streamer) breakerLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		s.breakerSignal.Get(p)
		s.recoverCtrl(p)
	}
}

// recoverCtrl is one recovery episode: reset the controller up to MaxResets
// times; on success replay the in-flight window, otherwise declare the
// controller dead. Either way the breaker closes and quiesced submitters
// resume (failing fast when dead).
func (s *Streamer) recoverCtrl(p *sim.Proc) {
	start := p.Now()
	ok := false
	for attempt := 0; attempt < s.cfg.MaxResets && s.resetFn != nil; attempt++ {
		s.ctrlResets++
		s.tr.Event(obs.AnnotReset, p.Now())
		if err := s.resetFn(p); err == nil {
			ok = true
			break
		}
	}
	if ok {
		s.replay(p)
	} else {
		s.declareDead()
	}
	s.recoveryTime += p.Now() - start
	s.consecTimeouts = 0
	s.breakerOpen = false
	w := s.breakerWaiters
	s.breakerWaiters = nil
	for _, wp := range w {
		wp.Wake()
	}
}

// replay resubmits the retained in-flight window after a controller reset:
// the rebuilt queues are empty, so the SQ FIFO restarts at slot 0 and the
// CQ head returns to 0, and every not-yet-completed command is re-encoded
// from its reorder-buffer entry — whose staging buffer is still allocated —
// in original submission order, preserving in-order retirement across the
// reset. Reads are simply reissued; writes reprogram the same LBAs from the
// same staged bytes, which is idempotent. Commands that completed before
// the crash keep their results and retire normally.
func (s *Streamer) replay(p *sim.Proc) {
	// The rebuilt queues start empty on every pair: SQ tails and CQ heads
	// return to zero, and doorbell batches coalesced before the crash are
	// discarded — their commands are in the in-flight window below and
	// re-coalesce as they re-encode.
	for _, q := range s.queues {
		q.sqTail = 0
		q.cqConsumed = 0
		q.cqPending = 0
		q.dbPending = 0
		q.dbSlots = q.dbSlots[:0]
	}
	for _, slot := range s.inflightOrder() {
		occupy(p, s.submitFSM, s.cfg.SubmitOverhead)
		s.replayedCmds++
		s.rob[slot].span.Annotate(obs.AnnotReplay, p.Now())
		s.encodeAndRing(slot)
	}
	// flushSQ withholds coalesced rings while the breaker is open (a stale
	// flush must not hit a half-rebuilt controller), but the replay itself
	// runs under the open breaker — force each queue's final tail out now so
	// the rebuilt controller sees the whole replayed window.
	for qi, q := range s.queues {
		if q.dbPending == 0 {
			continue
		}
		q.dbPending = 0
		for _, slot := range q.dbSlots {
			e := &s.rob[slot]
			if e.used && !e.done && e.enqueued && e.queue == qi {
				e.span.Mark(obs.StageDoorbell, p.Now())
			}
		}
		q.dbSlots = q.dbSlots[:0]
		s.ringDoorbell(q.sqDoorbell, uint32(q.sqTail))
	}
}

// inflightOrder lists the slots awaiting completion in their original
// submission order: ring order from the reorder-buffer head in the in-order
// configuration, slot order (== CID order of claiming) out of order.
func (s *Streamer) inflightOrder() []int {
	var order []int
	if s.cfg.OutOfOrder {
		for i := range s.rob {
			if s.rob[i].used && !s.rob[i].done {
				order = append(order, i)
			}
		}
		return order
	}
	for i, idx := 0, s.robHead; i < s.cfg.QueueDepth; i++ {
		if s.rob[idx].used && !s.rob[idx].done {
			order = append(order, idx)
		}
		idx = (idx + 1) % s.cfg.QueueDepth
	}
	return order
}

// declareDead resolves every in-flight command with the terminal
// controller-unavailable status. No CQE was received for them, so the CQ
// doorbell must not advance; subsequent submissions fail fast in submit.
func (s *Streamer) declareDead() {
	s.dead = true
	s.tr.Event(obs.AnnotDead, s.k.Now())
	for _, q := range s.queues {
		q.dbPending = 0
		q.dbSlots = q.dbSlots[:0]
		q.cqPending = 0
	}
	for i := range s.rob {
		e := &s.rob[i]
		if e.used && !e.done {
			e.span.Annotate(obs.AnnotDead, s.k.Now())
			e.done = true
			e.timedOut = true
			e.status = nvme.StatusControllerUnavailable
		}
	}
	s.cqeSignal.TryPut(struct{}{})
}

// armCFSPoll schedules the next controller-status poll. The poll is armed
// from submission activity and re-arms itself only while commands remain in
// flight, so an idle streamer schedules no recurring events and the kernel
// still drains.
func (s *Streamer) armCFSPoll() {
	if s.cfg.CFSPollInterval <= 0 || s.cfsPollArmed || s.dead || s.cstsAddr == 0 {
		return
	}
	s.cfsPollArmed = true
	s.k.After(s.cfg.CFSPollInterval, s.cfsPoll)
}

// cfsPoll reads CSTS and trips the breaker on a latched fatal status or an
// all-1s read (surprise removal) — crash detection without waiting out
// CmdTimeout.
func (s *Streamer) cfsPoll() {
	s.cfsPollArmed = false
	if s.dead || s.robLive == 0 {
		return
	}
	if s.breakerOpen {
		// Recovery in progress; resume polling afterwards.
		s.armCFSPoll()
		return
	}
	buf := bufpool.Get(4)
	s.port.Read(s.cstsAddr, 4, buf, func() {
		v := uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
		bufpool.Put(buf)
		if v == ^uint32(0) || v&nvme.CSTSFatal != 0 {
			s.tripBreaker()
		}
		s.armCFSPoll()
	})
}

// nextRetirable returns a retirable slot, or -1. The out-of-order
// configuration retires completions as they arrive, except that the pieces
// of one PE read must still stream in order.
func (s *Streamer) nextRetirable() int {
	if s.cfg.OutOfOrder {
		for i := range s.rob {
			e := &s.rob[i]
			if !e.used || !e.done {
				continue
			}
			if e.rreq != nil && e.piece != e.rreq.next {
				continue
			}
			return i
		}
		return -1
	}
	if s.robLive > 0 && s.rob[s.robHead].used && s.rob[s.robHead].done {
		return s.robHead
	}
	return -1
}

// retireLoop processes completions: strictly head-first in the in-order
// configuration ("While the completion bits may be set out-of-order, the
// NVMe Streamer processes them in-order", §4.2). Data draining and buffer
// release are delegated to the send stage so the retire FSM paces command
// turnover while drains pipeline behind it.
func (s *Streamer) retireLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		slot := s.nextRetirable()
		if slot < 0 {
			// Nothing retirable: park. Coalesced CQ-head updates stay armed
			// on their debounced timers and flush on their own.
			s.cqeSignal.Get(p)
			continue
		}
		if s.maybeRetry(slot) {
			continue
		}
		e := s.rob[slot] // copy; robRelease clears the entry
		if e.rreq != nil {
			e.rreq.next++
		}
		cost := s.cfg.RetireWriteCost
		if !e.isWrite {
			cost = s.retireReadCost()
			if s.cfg.OutOfOrder {
				cost = s.cfg.OOORetireReadCost
			}
		}
		occupy(p, s.retireFSM, cost)
		if e.status != nvme.StatusSuccess {
			s.aborts++
		}
		if e.isWrite && e.wreq != nil {
			e.wreq.remaining--
			if e.last {
				e.wreq.sawLast = true
			}
			if statusSeverity(e.status) > statusSeverity(e.wreq.status) {
				// The worst status seen across the write's pieces
				// decides the response.
				e.wreq.status = e.status
				e.wreq.failAddr = e.devAddr
				e.wreq.failLen = e.length
			}
			if e.wreq.remaining == 0 && e.wreq.sawLast {
				// ⑥b: completion token for the whole PE write, carrying
				// the worst status seen across the write's pieces.
				pkt := axis.Packet{Last: true}
				if e.wreq.status != nvme.StatusSuccess {
					pkt.Meta = CmdError{Status: e.wreq.status, Addr: e.wreq.failAddr, Len: e.wreq.failLen}
				}
				s.WriteResp.Send(p, pkt)
			}
		}
		// Buffer release stays strictly FIFO: the send stage frees write
		// buffers immediately and read buffers once drained.
		s.sendQ.Put(p, sendItem{
			isWrite: e.isWrite,
			bufOff:  e.bufOff,
			length:  e.length,
			last:    e.last,
			status:  e.status,
			devAddr: e.devAddr,
			readyAt: p.Now() + s.cfg.DrainLatency,
		})
		if e.isWrite {
			s.writeLat.Add(p.Now() - e.submittedAt)
		} else {
			s.readLat.Add(p.Now() - e.submittedAt)
		}
		s.tr.End(e.span, e.status, p.Now())
		hadCQE := e.hasCQE
		s.robRelease(slot)
		s.cmdsRetired++
		if hadCQE {
			s.consumeCQE(e.queue)
		}
	}
}

// retireReadCost is the per-command in-order read retirement cost under the
// multi-queue decomposition: the serial in-order walk is paid in full, the
// CQ-engine bookkeeping shards across the queue pairs, and the head-doorbell
// update amortizes over the coalescing batch. With one queue and no batching
// it is exactly RetireReadCost, so the default configuration reproduces the
// paper's timeline bit for bit.
func (s *Streamer) retireReadCost() sim.Time {
	n := s.cfg.ioQueues()
	b := s.cfg.doorbellBatch()
	if n == 1 && b == 1 {
		return s.cfg.RetireReadCost
	}
	serial := s.cfg.RetireReadCost - s.cfg.RetireCQCost - s.cfg.RetireDoorbellCost
	if serial < 0 {
		serial = 0
	}
	return serial + s.cfg.RetireCQCost/sim.Time(n) + s.cfg.RetireDoorbellCost/sim.Time(b)
}

// sendItem is one retired command handed to the send stage.
type sendItem struct {
	isWrite bool
	bufOff  int64
	length  int64
	last    bool
	status  uint16
	devAddr uint64
	readyAt sim.Time
}

// drainChunk is the granule the send stage reads from the payload buffer,
// pipelined two deep so reading chunk i+1 overlaps streaming chunk i to the
// PE (⑥a in Figure 1).
const drainChunk = 256 * sim.KiB

// sendLoop is the output stage: it drains retired read data from the buffer
// memory (adding the per-variant drain pipeline latency), streams it to the
// PE in retirement order, and performs all buffer frees in FIFO order.
func (s *Streamer) sendLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		it := s.sendQ.Get(p)
		if it.isWrite {
			s.freeBuf(true, it.bufOff)
			continue
		}
		if it.status != nvme.StatusSuccess {
			// A failed read must not stream stale staging bytes as data:
			// the PE gets a zero-byte packet flagged with CmdError in
			// place of the payload, preserving TLAST framing.
			s.ReadData.Send(p, axis.Packet{
				Last: it.last,
				Meta: CmdError{Status: it.status, Addr: it.devAddr, Len: it.length},
			})
			s.freeBuf(false, it.bufOff)
			continue
		}
		s.drainAndSend(p, it)
		s.freeBuf(false, it.bufOff)
		s.bytesToPE += it.length
	}
}

// drainAndSend reads the command's payload from the staging buffer in
// chunks (two in flight) and serializes it onto the ReadData stream.
// Forwarding is strictly in ISSUE order: each in-flight chunk carries its
// own completion channel and the sender waits for the oldest one, because
// staging reads can complete out of order (a host-DRAM piece that straddles
// a pinned-chunk boundary splits into runs with different latencies) and
// the PE's byte stream must not be reordered.
func (s *Streamer) drainAndSend(p *sim.Proc, it sendItem) {
	type chunk struct {
		m    int64
		buf  []byte
		done *sim.Chan[struct{}]
	}
	var inflight []chunk
	var issued int64
	issue := func() {
		if issued >= it.length {
			return
		}
		m := int64(drainChunk)
		if m > it.length-issued {
			m = it.length - issued
		}
		off := it.bufOff + issued
		issued += m
		var buf []byte
		if s.cfg.Functional {
			// Pooled chunk; ownership passes to the ReadData consumer,
			// which may recycle it (Client.ConsumeRead does) or let it
			// age out to the garbage collector.
			buf = bufpool.Get(int(m))
		}
		c := chunk{m: m, buf: buf, done: sim.NewChan[struct{}](s.k, 1)}
		inflight = append(inflight, c)
		s.bufReadAsync(false, off, m, buf, func() { c.done.TryPut(struct{}{}) })
	}
	issue()
	issue()
	var sent int64
	for sent < it.length {
		c := inflight[0]
		inflight = inflight[1:]
		c.done.Get(p)
		issue()
		if d := it.readyAt - p.Now(); d > 0 {
			p.Sleep(d)
		}
		sent += c.m
		s.ReadData.Send(p, axis.Packet{
			Bytes: c.m,
			Last:  it.last && sent == it.length,
			Data:  c.buf,
		})
	}
}

package streamer_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"snacc/internal/fault"
	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

// stripedRig builds n SSD+streamer pairs consolidated into one address
// space. An optional mutator adjusts every member's streamer config.
func stripedRig(t *testing.T, n int, functional bool, mut ...func(*streamer.Config)) (*sim.Kernel, *streamer.Striped, []*nvme.Device) {
	t.Helper()
	k := sim.NewKernel()
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	var sts []*streamer.Streamer
	var devs []*nvme.Device
	var drvs []*tapasco.Driver
	for i := 0; i < n; i++ {
		bar := uint64(ssdBAR) + uint64(i)*0x100000
		name := fmt.Sprintf("ssd%d", i)
		devCfg := nvme.DefaultConfig(name, bar)
		devCfg.Functional = functional
		devs = append(devs, nvme.New(k, pl.Fabric, devCfg))
		stCfg := streamer.DefaultConfig(fmt.Sprintf("snacc%d", i), 0, streamer.URAM)
		stCfg.Functional = functional
		for _, m := range mut {
			m(&stCfg)
		}
		sts = append(sts, pl.AddStreamer(stCfg))
		drvs = append(drvs, tapasco.NewDriver(pl, name, bar))
	}
	ok := false
	k.Spawn("init", func(p *sim.Proc) {
		for i := range drvs {
			if err := drvs[i].InitController(p); err != nil {
				t.Errorf("%v", err)
				return
			}
			if err := drvs[i].AttachStreamer(p, sts[i], 1); err != nil {
				t.Errorf("%v", err)
				return
			}
		}
		ok = true
	})
	k.Run(0)
	if !ok {
		t.Fatal("striped init failed")
	}
	return k, streamer.NewStriped(k, sts, sim.MiB), devs
}

func TestStripedRoundTrip(t *testing.T) {
	k, s, devs := stripedRig(t, 3, true)
	want := make([]byte, 5*sim.MiB+8192) // spans several stripes, uneven tail
	for i := range want {
		want[i] = byte(i * 11)
	}
	k.Spawn("app", func(p *sim.Proc) {
		s.Write(p, 0, int64(len(want)), want)
		got := s.Read(p, 0, int64(len(want)))
		if !bytes.Equal(got, want) {
			t.Error("striped round trip corrupted data")
		}
	})
	k.Run(0)
	for i, d := range devs {
		if d.Errors() != 0 {
			t.Errorf("ssd%d errors: %d", i, d.Errors())
		}
		if d.Port().PayloadRx() == 0 {
			t.Errorf("ssd%d received no payload; striping skipped a member", i)
		}
	}
}

func TestStripedDistributesEvenly(t *testing.T) {
	k, s, devs := stripedRig(t, 4, false)
	k.Spawn("app", func(p *sim.Proc) {
		s.Write(p, 0, 32*sim.MiB, nil)
	})
	k.Run(0)
	var min, max int64 = 1 << 62, 0
	for _, d := range devs {
		rx := d.Port().PayloadRx()
		if rx < min {
			min = rx
		}
		if rx > max {
			max = rx
		}
	}
	if min == 0 || float64(max-min)/float64(max) > 0.1 {
		t.Fatalf("stripe imbalance: min %d max %d", min, max)
	}
}

func TestStripedAggregatesBandwidth(t *testing.T) {
	measure := func(n int) float64 {
		k, s, _ := stripedRig(t, n, false)
		var el sim.Time
		k.Spawn("app", func(p *sim.Proc) {
			start := p.Now()
			s.Write(p, 0, 96*sim.MiB, nil)
			el = p.Now() - start
		})
		k.Run(0)
		return float64(96*sim.MiB) / el.Seconds() / 1e9
	}
	one, three := measure(1), measure(3)
	if three < one*2.5 {
		t.Fatalf("3-way stripe = %.2f GB/s vs single %.2f; expected near-3x", three, one)
	}
}

func TestStripedUnalignedAddressPanics(t *testing.T) {
	k, s, _ := stripedRig(t, 2, false)
	_ = k
	defer func() {
		if recover() == nil {
			t.Error("unaligned striped address accepted")
		}
	}()
	// mapRange validation fires synchronously on the test goroutine.
	// Sub-sector alignment is the hard floor; stripe alignment is no
	// longer required.
	s.Write(nil, 100, sim.MiB, nil)
}

func TestStripedSubStripeRoundTrip(t *testing.T) {
	// A transfer that starts and ends mid-stripe must land on the right
	// members at the right member offsets.
	k, s, _ := stripedRig(t, 3, true)
	const addr = uint64(sim.MiB/2 + 4096) // mid-stripe start
	const n = 2*sim.MiB + 1024    // mid-stripe end, spans 3+ members
	want := make([]byte, n)
	for i := range want {
		want[i] = byte(i * 7)
	}
	var got []byte
	k.Spawn("main", func(p *sim.Proc) {
		s.Write(p, addr, n, want)
		got = s.Read(p, addr, n)
	})
	k.Run(0)
	if !bytes.Equal(got, want) {
		t.Fatal("sub-stripe round trip corrupted data")
	}
}

// TestStripedRandomizedIntegrity runs randomized overlapping writes and
// reads over the consolidated striped address space against a byte-exact
// shadow model — stripe mapping, per-member queues and cross-image
// pipelining must all preserve bytes and ordering.
func TestStripedRandomizedIntegrity(t *testing.T) {
	k, s, _ := stripedRig(t, 3, true)
	const span = 12 << 20 // spans many 1 MiB stripes across 3 members
	shadow := make([]byte, span)
	rng := sim.NewRand(777)
	var failure string
	k.Spawn("main", func(p *sim.Proc) {
		for op := 0; op < 100; op++ {
			// Sizes up to 3 MiB cross stripe and member boundaries.
			n := (rng.Int63n(6144) + 1) * 512
			addr := uint64(rng.Int63n((span-n)/512)) * 512
			if rng.Float64() < 0.55 {
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(rng.Int63n(256))
				}
				s.Write(p, addr, n, data)
				copy(shadow[addr:], data)
			} else {
				got := s.Read(p, addr, n)
				if !bytes.Equal(got, shadow[addr:addr+uint64(n)]) {
					failure = fmt.Sprintf("op %d: read %d@%#x diverged", op, n, addr)
					return
				}
			}
		}
		got := s.Read(p, 0, span)
		if !bytes.Equal(got, shadow) {
			for i := range got {
				if got[i] != shadow[i] {
					failure = fmt.Sprintf("final readback diverged at byte %d", i)
					return
				}
			}
		}
	})
	k.Run(0)
	if failure != "" {
		t.Fatal(failure)
	}
}

// TestStripedDegradedOperation: when one member's controller dies
// permanently, its stripes must fail with clear errors while the surviving
// members keep streaming theirs — degraded multi-SSD operation, not an
// all-stop.
func TestStripedDegradedOperation(t *testing.T) {
	k, s, devs := stripedRig(t, 3, true, func(cfg *streamer.Config) {
		crashRecovery(cfg)
		cfg.MaxResets = 0 // first trip is terminal: member death, not recovery
	})
	// Kill member 1 at its second command; members 0 and 2 stay healthy.
	inj := fault.NewInjector(7)
	inj.Add(fault.Rule{Name: "crash-m1", Kind: fault.CrashCtrl, Opcode: fault.OpAny,
		Nth: 2, Count: 1})
	inj.Attach(devs[1])
	const span = 6 * sim.MiB // two 1 MiB stripes per member
	want := make([]byte, span)
	for i := range want {
		want[i] = byte(i*13 + 7)
	}
	done := false
	k.Spawn("app", func(p *sim.Proc) {
		if err := s.WriteErr(p, 0, span, want); err == nil {
			t.Error("write across a dying member reported no error")
		}
		got, err := s.ReadErr(p, 0, span)
		if err == nil {
			t.Error("read with a dead member reported no error")
		}
		// Survivors' stripes (members 0 and 2 own logical stripes 0, 2, 3, 5)
		// must come back byte-exact; the dead member's stripes read as zero.
		for _, stripe := range []int64{0, 2, 3, 5} {
			lo, hi := stripe*sim.MiB, (stripe+1)*sim.MiB
			if !bytes.Equal(got[lo:hi], want[lo:hi]) {
				t.Errorf("surviving stripe %d corrupted in degraded read", stripe)
			}
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("app never finished against a degraded set")
	}
	if dead := s.DeadMembers(); len(dead) != 1 || dead[0] != 1 {
		t.Errorf("dead members = %v, want [1]", dead)
	}
	if s.DegradedWrites() == 0 || s.DegradedReads() == 0 {
		t.Errorf("degraded writes/reads = %d/%d, want both > 0",
			s.DegradedWrites(), s.DegradedReads())
	}
	if s.Member(1).Streamer().ControllerResets() != 0 {
		t.Errorf("member 1 resets = %d with MaxResets = 0", s.Member(1).Streamer().ControllerResets())
	}
}

// TestStripedMemberDiesDuringRead is the race-window regression: a member
// that is alive when ReadErr maps the range (mapRange) but dies before its
// stripes finish must fail those stripes with an error attributed to the
// member — never report success over stale or zero payload. The window is
// forced with a hang that fires on the member's first read command, so the
// member passes every liveness check at submission time and dies only
// after the read is committed to it.
func TestStripedMemberDiesDuringRead(t *testing.T) {
	k, s, devs := stripedRig(t, 3, true, func(cfg *streamer.Config) {
		crashRecovery(cfg)
		cfg.MaxResets = 0 // first breaker trip is terminal
	})
	// Member 1 freezes as its first read command completes and stays frozen
	// past the breaker ladder (2 x 20 ms command timeouts), so it dies
	// mid-read; writes are unaffected.
	inj := fault.NewInjector(3)
	inj.Add(fault.Rule{Name: "hang-m1", Kind: fault.HangCtrl, Opcode: nvme.OpRead,
		Nth: 1, Count: 1, Delay: 200 * sim.Millisecond})
	inj.Attach(devs[1])

	const span = 6 * sim.MiB // stripes 0..5; member 1 owns 1 and 4
	want := make([]byte, span)
	for i := range want {
		want[i] = byte(i*3 + 1)
	}
	done := false
	k.Spawn("app", func(p *sim.Proc) {
		if err := s.WriteErr(p, 0, span, want); err != nil {
			t.Errorf("healthy write failed: %v", err)
		}
		got, err := s.ReadErr(p, 0, span)
		if err == nil {
			t.Error("read across a mid-read-dying member reported no error")
		} else if !strings.Contains(err.Error(), "striped member 1") {
			t.Errorf("degraded read error not attributed to the dead member: %v", err)
		}
		// Survivors' stripes stream back byte-exact even while member 1
		// times out alongside them.
		for _, stripe := range []int64{0, 2, 3, 5} {
			lo, hi := stripe*sim.MiB, (stripe+1)*sim.MiB
			if !bytes.Equal(got[lo:hi], want[lo:hi]) {
				t.Errorf("surviving stripe %d corrupted in degraded read", stripe)
			}
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("app never finished against the dying member")
	}
	if dead := s.DeadMembers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("dead members = %v, want [1]", dead)
	}
	if s.DegradedReads() == 0 {
		t.Error("mid-read death not counted as a degraded read")
	}
}

// TestOutOfOrderRandomizedIntegrity checks the §7 out-of-order extension
// preserves data and per-request ordering under a randomized mixed load —
// retirement may reorder commands, but each PE read's pieces must still
// stream in order with intact bytes.
func TestOutOfOrderRandomizedIntegrity(t *testing.T) {
	k, c, _ := rig(t, streamer.URAM, true, func(cfg *streamer.Config) {
		cfg.OutOfOrder = true
	})
	const span = 4 << 20
	shadow := make([]byte, span)
	rng := sim.NewRand(4242)
	var failure string
	k.Spawn("main", func(p *sim.Proc) {
		for op := 0; op < 100; op++ {
			n := (rng.Int63n(96) + 1) * 512
			addr := uint64(rng.Int63n((span-n)/512)) * 512
			if rng.Float64() < 0.55 {
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(rng.Int63n(256))
				}
				c.Write(p, addr, n, data)
				copy(shadow[addr:], data)
			} else {
				got := c.Read(p, addr, n)
				if !bytes.Equal(got, shadow[addr:addr+uint64(n)]) {
					failure = fmt.Sprintf("op %d: read %d@%#x diverged", op, n, addr)
					return
				}
			}
		}
		got := c.Read(p, 0, span)
		if !bytes.Equal(got, shadow) {
			failure = "final readback diverged"
		}
	})
	k.Run(0)
	if failure != "" {
		t.Fatal(failure)
	}
}

package streamer

import (
	"fmt"

	"snacc/internal/ethernet"
	"snacc/internal/nvme"
	"snacc/internal/pcie"
	"snacc/internal/sim"
)

// DomainPlan maps the paper's ethernet → pcie → nvme-per-controller chain
// onto a conservative-parallel shard partition (sim.Plan). The cuts follow
// the modeled hardware links, and each edge's lookahead is that link's
// minimum latency:
//
//	ethernet <-> pcie     Ethernet wire propagation (ethernet.Config.EdgeLookahead)
//	pcie     <-> nvme<i>  controller i's PCIe link propagation (nvme.Config.EdgeLookahead)
//
// The "pcie" domain holds the fabric complex — root complex, host port,
// FPGA streamer — because pcie.Fabric couples its ports synchronously (a
// write books serialization time on the destination link directly). The
// per-controller domains model the device links as explicit latency edges;
// rigs that keep controllers on the stock synchronous fabric simply place
// them in the pcie domain and drop those edges (see bench.KernelSweep for a
// rig materializing the full plan).
func DomainPlan(eth ethernet.Config, controllers ...nvme.Config) sim.Plan {
	p := sim.Plan{Domains: []string{"ethernet", "pcie"}}
	wire := eth.EdgeLookahead()
	p.Edges = append(p.Edges,
		sim.EdgeSpec{Src: "ethernet", Dst: "pcie", Lookahead: wire},
		sim.EdgeSpec{Src: "pcie", Dst: "ethernet", Lookahead: wire},
	)
	for i, c := range controllers {
		name := fmt.Sprintf("nvme%d", i)
		p.Domains = append(p.Domains, name)
		link := c.EdgeLookahead()
		p.Edges = append(p.Edges,
			sim.EdgeSpec{Src: "pcie", Dst: name, Lookahead: link},
			sim.EdgeSpec{Src: name, Dst: "pcie", Lookahead: link},
		)
		// The controllers' firmware front-end serialization is a safe
		// arrival-to-send floor at a command-level boundary; declaring it
		// widens every downstream window past the raw link lookahead
		// (sim.SetTurnaround). Rigs whose firmware honors a larger floor
		// (media latency, coalesced completion posting) override the map.
		if turn := c.EdgeTurnaround(); turn > 0 {
			if p.Turnarounds == nil {
				p.Turnarounds = make(map[string]sim.Time)
			}
			p.Turnarounds[name] = turn
		}
	}
	return p
}

// DomainHopLookahead returns the lookahead of a full minimum-cost fabric
// hop to controller c under fabric config fc — the bound a rig needs when
// it cuts at the root complex rather than at the device link.
func DomainHopLookahead(fc pcie.Config, c nvme.Config) sim.Time {
	return fc.EdgeLookahead(c.Link)
}

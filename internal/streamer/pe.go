package streamer

import (
	"snacc/internal/axis"
	"snacc/internal/bufpool"
	"snacc/internal/sim"
)

// Client is a convenience wrapper for driving a Streamer the way a user PE
// does over the four AXI streams. Tests, benchmarks and examples use it;
// the case study wires its own PEs directly to the streams.
type Client struct {
	s *Streamer
	// PktBytes is the data-beat packet granularity used on the write
	// stream (and expected back on the read stream). Defaults to 256 KiB.
	PktBytes int64
}

// NewClient wraps a streamer.
func NewClient(s *Streamer) *Client {
	return &Client{s: s, PktBytes: 256 * sim.KiB}
}

// Streamer returns the wrapped streamer.
func (c *Client) Streamer() *Streamer { return c.s }

// Write streams n bytes to device byte address addr and waits for the
// response token. data may be nil (timing-only).
func (c *Client) Write(p *sim.Proc, addr uint64, n int64, data []byte) {
	c.WriteAsync(p, addr, n, data)
	c.WaitWrite(p)
}

// WriteAsync streams the write without waiting for the response token.
func (c *Client) WriteAsync(p *sim.Proc, addr uint64, n int64, data []byte) {
	c.s.WriteIn.Send(p, axis.Packet{Meta: WriteRequest{Addr: addr}})
	var off int64
	for off < n {
		m := c.PktBytes
		if m > n-off {
			m = n - off
		}
		var d []byte
		if data != nil {
			d = data[off : off+m]
		}
		off += m
		c.s.WriteIn.Send(p, axis.Packet{Bytes: m, Data: d, Last: off == n})
	}
}

// WaitWrite consumes one write-response token.
func (c *Client) WaitWrite(p *sim.Proc) {
	c.s.WriteResp.Recv(p)
}

// ReadAsync issues a read command without consuming the data.
func (c *Client) ReadAsync(p *sim.Proc, addr uint64, n int64) {
	c.s.ReadCmd.Send(p, axis.Packet{Meta: ReadRequest{Addr: addr, Len: n}})
}

// ConsumeRead drains packets for one read request (until TLAST) and
// returns the total bytes and concatenated content (functional mode).
func (c *Client) ConsumeRead(p *sim.Proc) (int64, []byte) {
	var total int64
	var data []byte
	for {
		pkt := c.s.ReadData.Recv(p)
		total += pkt.Bytes
		if pkt.Data != nil {
			data = append(data, pkt.Data...)
			// The drain chunk was copied out above; hand it back to
			// the pool for the next chunk read.
			bufpool.Put(pkt.Data)
		}
		if pkt.Last {
			return total, data
		}
	}
}

// Read performs a blocking read of n bytes at device byte address addr.
func (c *Client) Read(p *sim.Proc, addr uint64, n int64) []byte {
	c.ReadAsync(p, addr, n)
	got, data := c.ConsumeRead(p)
	if got != n {
		panic("streamer: read returned unexpected length")
	}
	return data
}

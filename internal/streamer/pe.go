package streamer

import (
	"snacc/internal/axis"
	"snacc/internal/bufpool"
	"snacc/internal/sim"
)

// Client is a convenience wrapper for driving a Streamer the way a user PE
// does over the four AXI streams. Tests, benchmarks and examples use it;
// the case study wires its own PEs directly to the streams.
type Client struct {
	s *Streamer
	// PktBytes is the data-beat packet granularity used on the write
	// stream (and expected back on the read stream). Defaults to 256 KiB.
	PktBytes int64
}

// NewClient wraps a streamer.
func NewClient(s *Streamer) *Client {
	return &Client{s: s, PktBytes: 256 * sim.KiB}
}

// Streamer returns the wrapped streamer.
func (c *Client) Streamer() *Streamer { return c.s }

// Write streams n bytes to device byte address addr and waits for the
// response token. data may be nil (timing-only).
func (c *Client) Write(p *sim.Proc, addr uint64, n int64, data []byte) {
	c.WriteAsync(p, addr, n, data)
	c.WaitWrite(p)
}

// WriteAsync streams the write without waiting for the response token.
func (c *Client) WriteAsync(p *sim.Proc, addr uint64, n int64, data []byte) {
	c.writeAsyncT(p, 0, addr, n, data)
}

// writeAsyncT is WriteAsync with the command attributed to a tenant, so a
// TenantHub's issue path keeps span ownership across striping.
func (c *Client) writeAsyncT(p *sim.Proc, tenant int, addr uint64, n int64, data []byte) {
	c.s.WriteIn.Send(p, axis.Packet{Meta: WriteRequest{Addr: addr, Tenant: tenant}})
	var off int64
	for off < n {
		m := c.PktBytes
		if m > n-off {
			m = n - off
		}
		var d []byte
		if data != nil {
			d = data[off : off+m]
		}
		off += m
		c.s.WriteIn.Send(p, axis.Packet{Bytes: m, Data: d, Last: off == n})
	}
}

// WaitWrite consumes one write-response token.
func (c *Client) WaitWrite(p *sim.Proc) {
	c.s.WriteResp.Recv(p)
}

// WaitWriteErr consumes one write-response token and surfaces the error
// flag it carries when any piece of the write failed terminally.
func (c *Client) WaitWriteErr(p *sim.Proc) error {
	pkt := c.s.WriteResp.Recv(p)
	if ce, ok := pkt.Meta.(CmdError); ok {
		return ce
	}
	return nil
}

// WriteErr is Write returning the response token's error flag.
func (c *Client) WriteErr(p *sim.Proc, addr uint64, n int64, data []byte) error {
	c.WriteAsync(p, addr, n, data)
	return c.WaitWriteErr(p)
}

// ReadAsync issues a read command without consuming the data.
func (c *Client) ReadAsync(p *sim.Proc, addr uint64, n int64) {
	c.readAsyncT(p, 0, addr, n)
}

// readAsyncT is ReadAsync with the command attributed to a tenant.
func (c *Client) readAsyncT(p *sim.Proc, tenant int, addr uint64, n int64) {
	c.s.ReadCmd.Send(p, axis.Packet{Meta: ReadRequest{Addr: addr, Len: n, Tenant: tenant}})
}

// ConsumeRead drains packets for one read request (until TLAST) and
// returns the total bytes and concatenated content (functional mode).
// Stream error flags are ignored; use ConsumeReadErr to observe them.
func (c *Client) ConsumeRead(p *sim.Proc) (int64, []byte) {
	total, data, _ := c.ConsumeReadErr(p)
	return total, data
}

// ConsumeReadErr drains packets for one read request (until TLAST) and
// returns the delivered bytes, the concatenated content (functional mode),
// and the first error flagged on the stream. Failed pieces deliver no
// payload, so on error the byte count falls short of the request.
func (c *Client) ConsumeReadErr(p *sim.Proc) (int64, []byte, error) {
	var total int64
	var data []byte
	var err error
	for {
		pkt := c.s.ReadData.Recv(p)
		if ce, ok := pkt.Meta.(CmdError); ok && err == nil {
			err = ce
		}
		total += pkt.Bytes
		if pkt.Data != nil {
			data = append(data, pkt.Data...)
			// The drain chunk was copied out above; hand it back to
			// the pool for the next chunk read.
			bufpool.Put(pkt.Data)
		}
		if pkt.Last {
			return total, data, err
		}
	}
}

// Read performs a blocking read of n bytes at device byte address addr.
func (c *Client) Read(p *sim.Proc, addr uint64, n int64) []byte {
	c.ReadAsync(p, addr, n)
	got, data := c.ConsumeRead(p)
	if got != n {
		panic("streamer: read returned unexpected length")
	}
	return data
}

// ReadErr performs a blocking read of n bytes, surfacing stream error flags
// instead of panicking on a short delivery.
func (c *Client) ReadErr(p *sim.Proc, addr uint64, n int64) ([]byte, error) {
	return c.readErrT(p, 0, addr, n)
}

// readErrT is ReadErr with the command attributed to a tenant.
func (c *Client) readErrT(p *sim.Proc, tenant int, addr uint64, n int64) ([]byte, error) {
	c.readAsyncT(p, tenant, addr, n)
	got, data, err := c.ConsumeReadErr(p)
	if err == nil && got != n {
		panic("streamer: read returned unexpected length")
	}
	return data, err
}

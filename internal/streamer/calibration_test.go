package streamer_test

import (
	"fmt"
	"testing"

	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// Calibration tests pin the three Streamer variants against the paper's
// Figure 4 SNAcc measurements. Tolerances are loose enough to survive
// refactors but catch broken mechanisms; exact paper-vs-model numbers are
// recorded in EXPERIMENTS.md.

const span = 64 * sim.GiB

func measureStreamer(t *testing.T, v streamer.Variant, fn func(p *sim.Proc, c *streamer.Client) float64) float64 {
	t.Helper()
	k, c, _ := rig(t, v, false, nil)
	var out float64
	k.Spawn("bench", func(p *sim.Proc) { out = fn(p, c) })
	k.Run(0)
	return out
}

func TestCalibrationSeqReadAllVariants(t *testing.T) {
	// Paper: "all SNAcc variants reach a maximum bandwidth of approximately
	// 6.9 GB/s" (§5.2).
	for _, v := range variants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			got := measureStreamer(t, v, func(p *sim.Proc, c *streamer.Client) float64 {
				return streamer.SeqRead(p, c, 0, 512*sim.MiB).GBps()
			})
			if got < 6.4 || got > 7.1 {
				t.Errorf("%s seq read = %.2f GB/s, paper: 6.9", v, got)
			}
		})
	}
}

func TestCalibrationSeqWriteURAM(t *testing.T) {
	// Paper: URAM write alternates 5.6 / 5.32 GB/s, P2P-read limited.
	got := measureStreamer(t, streamer.URAM, func(p *sim.Proc, c *streamer.Client) float64 {
		return streamer.SeqWrite(p, c, 0, 512*sim.MiB).GBps()
	})
	if got < 5.1 || got > 5.9 {
		t.Errorf("URAM seq write = %.2f GB/s, paper: 5.32-5.6", got)
	}
}

func TestCalibrationSeqWriteHostDRAM(t *testing.T) {
	// Paper: host DRAM reaches the SPDK-equal 6.24/5.90 GB/s.
	got := measureStreamer(t, streamer.HostDRAM, func(p *sim.Proc, c *streamer.Client) float64 {
		return streamer.SeqWrite(p, c, 0, 512*sim.MiB).GBps()
	})
	if got < 5.7 || got > 6.5 {
		t.Errorf("Host DRAM seq write = %.2f GB/s, paper: 5.90-6.24", got)
	}
}

func TestCalibrationSeqWriteOnboardDRAM(t *testing.T) {
	// Paper: on-board DRAM varies between 4.6 and 4.8 GB/s (turnaround).
	got := measureStreamer(t, streamer.OnboardDRAM, func(p *sim.Proc, c *streamer.Client) float64 {
		return streamer.SeqWrite(p, c, 0, 512*sim.MiB).GBps()
	})
	if got < 4.3 || got > 5.1 {
		t.Errorf("On-board DRAM seq write = %.2f GB/s, paper: 4.6-4.8", got)
	}
}

func TestCalibrationWriteOrdering(t *testing.T) {
	// The three variants must order HostDRAM > URAM > OnboardDRAM, the
	// central comparative claim of Figure 4a.
	bw := map[streamer.Variant]float64{}
	for _, v := range variants() {
		bw[v] = measureStreamer(t, v, func(p *sim.Proc, c *streamer.Client) float64 {
			return streamer.SeqWrite(p, c, 0, 256*sim.MiB).GBps()
		})
	}
	if !(bw[streamer.HostDRAM] > bw[streamer.URAM] && bw[streamer.URAM] > bw[streamer.OnboardDRAM]) {
		t.Errorf("write ordering violated: host=%.2f uram=%.2f ob=%.2f",
			bw[streamer.HostDRAM], bw[streamer.URAM], bw[streamer.OnboardDRAM])
	}
}

func TestCalibrationRandRead(t *testing.T) {
	// Paper: ≈1.6 GB/s for every variant — in-order retirement collapses
	// random-read throughput (vs SPDK's 4.5).
	for _, v := range variants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			got := measureStreamer(t, v, func(p *sim.Proc, c *streamer.Client) float64 {
				return streamer.RandRead(p, c, span, 64*sim.MiB, 4096, 77).GBps()
			})
			if got < 1.2 || got > 2.2 {
				t.Errorf("%s rand read = %.2f GB/s, paper: 1.6", v, got)
			}
		})
	}
}

func TestCalibrationRandWrite(t *testing.T) {
	// Paper: host DRAM 4.8 GB/s, the others slightly lower.
	got := measureStreamer(t, streamer.HostDRAM, func(p *sim.Proc, c *streamer.Client) float64 {
		return streamer.RandWrite(p, c, span, 64*sim.MiB, 4096, 78).GBps()
	})
	if got < 4.3 || got > 5.2 {
		t.Errorf("Host DRAM rand write = %.2f GB/s, paper: 4.8", got)
	}
}

func TestCalibrationReadLatency(t *testing.T) {
	// Paper Fig 4c: URAM 34 µs, on-board DRAM 41 µs, host DRAM 43 µs.
	want := map[streamer.Variant][2]sim.Time{
		streamer.URAM:        {30 * sim.Microsecond, 38 * sim.Microsecond},
		streamer.OnboardDRAM: {37 * sim.Microsecond, 45 * sim.Microsecond},
		streamer.HostDRAM:    {39 * sim.Microsecond, 47 * sim.Microsecond},
	}
	for _, v := range variants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			k, c, _ := rig(t, v, false, nil)
			var mean sim.Time
			k.Spawn("bench", func(p *sim.Proc) {
				mean = streamer.LatencyRead(p, c, span, 4096, 200, 5).Mean()
			})
			k.Run(0)
			lo, hi := want[v][0], want[v][1]
			if mean < lo || mean > hi {
				t.Errorf("%s 4k read latency = %v, want [%v, %v]", v, mean, lo, hi)
			}
		})
	}
}

func TestCalibrationWriteLatency(t *testing.T) {
	// Paper Fig 4c: all variants stay below 9 µs for a 4 KiB write.
	for _, v := range variants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			k, c, _ := rig(t, v, false, nil)
			var mean sim.Time
			k.Spawn("bench", func(p *sim.Proc) {
				mean = streamer.LatencyWrite(p, c, span, 4096, 200, 6).Mean()
			})
			k.Run(0)
			if mean >= 9*sim.Microsecond {
				t.Errorf("%s 4k write latency = %v, paper: < 9us", v, mean)
			}
		})
	}
}

func TestReadLatencyOrdering(t *testing.T) {
	// URAM < on-board DRAM < host DRAM (Figure 4c's comparative claim).
	var means []sim.Time
	for _, v := range variants() {
		k, c, _ := rig(t, v, false, nil)
		var mean sim.Time
		k.Spawn("bench", func(p *sim.Proc) {
			mean = streamer.LatencyRead(p, c, span, 4096, 100, 9).Mean()
		})
		k.Run(0)
		means = append(means, mean)
	}
	if !(means[0] < means[1] && means[1] <= means[2]) {
		t.Errorf("latency ordering violated: %v", means)
	}
}

// TestPrintCalibration logs the full Figure 4 matrix when run with -v, as a
// quick way to eyeball the calibration.
func TestPrintCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, v := range variants() {
		seqR := measureStreamer(t, v, func(p *sim.Proc, c *streamer.Client) float64 {
			return streamer.SeqRead(p, c, 0, 256*sim.MiB).GBps()
		})
		seqW := measureStreamer(t, v, func(p *sim.Proc, c *streamer.Client) float64 {
			return streamer.SeqWrite(p, c, 0, 256*sim.MiB).GBps()
		})
		randR := measureStreamer(t, v, func(p *sim.Proc, c *streamer.Client) float64 {
			return streamer.RandRead(p, c, span, 32*sim.MiB, 4096, 3).GBps()
		})
		randW := measureStreamer(t, v, func(p *sim.Proc, c *streamer.Client) float64 {
			return streamer.RandWrite(p, c, span, 32*sim.MiB, 4096, 4).GBps()
		})
		t.Log(fmt.Sprintf("%-14s seq-r %.2f seq-w %.2f rand-r %.2f rand-w %.2f GB/s",
			v, seqR, seqW, randR, randW))
	}
}

package streamer

import (
	"fmt"

	"snacc/internal/nvme"
	"snacc/internal/sim"
)

// On-the-fly PRP list synthesis (§4.4). Because each command's payload is
// contiguous in the staging buffer, the n-th PRP entry is just
// base + n × 4096 — so instead of materializing PRP lists in memory, the
// Streamer computes entries when the NVMe controller reads them:
//
//   - URAM variant (Figure 2): the 4 MiB address space is doubled and bit 22
//     of the second PRP entry is set, steering the controller's list read
//     into the shadow half. The shadow address encodes the second data page
//     and the offset within the list.
//
//   - DRAM variants (Figure 3): doubling 128 MiB would be wasteful, so the
//     PRP2 pointer encodes the command ID into a small separate window, and
//     a register file indexed by the command ID holds the second data
//     page's position. The host-DRAM flavor additionally walks the 4 MiB
//     chunk table, the "overhead in address calculations" of §4.3.

// prpRegVal is one register-file entry: where the command's second payload
// page lives.
type prpRegVal struct {
	secondPageOff int64
	isWrite       bool
	valid         bool
}

// prpPointer produces the PRP2 value for a > 8 KiB command and, for the
// DRAM variants, loads the register file.
func (s *Streamer) prpPointer(slot int, isWrite bool, bufOff int64) uint64 {
	if s.cfg.Variant == URAM {
		return s.cfg.WindowBase + uint64((bufOff+nvme.PageSize)|PRPShadowBit)
	}
	s.prpReg[slot] = prpRegVal{secondPageOff: bufOff + nvme.PageSize, isWrite: isWrite, valid: true}
	return s.cfg.WindowBase + uint64(s.layout().prpOff) + uint64(slot)*nvme.PageSize
}

// prpWindow answers the controller's PRP-list reads with computed entries.
type prpWindow struct{ s *Streamer }

const prpComputeLatency = 50 * sim.Nanosecond

func (w *prpWindow) CompleteRead(addr uint64, n int64, buf []byte, done func()) {
	s := w.s
	if n%8 != 0 {
		panic("streamer: PRP list read not entry-aligned")
	}
	lat := prpComputeLatency
	if buf != nil {
		rel := int64(addr - s.cfg.WindowBase)
		if s.cfg.Variant == URAM {
			linear := rel &^ PRPShadowBit
			secondPage := linear &^ (nvme.PageSize - 1)
			first := (linear & (nvme.PageSize - 1)) / 8
			for j := int64(0); j < n/8; j++ {
				entry := s.cfg.WindowBase + uint64(secondPage+(first+j)*nvme.PageSize)
				putLE64(buf[j*8:], entry)
			}
		} else {
			winRel := rel - s.layout().prpOff
			slot := int(winRel / nvme.PageSize)
			first := (winRel % nvme.PageSize) / 8
			reg := s.prpReg[slot]
			if !reg.valid {
				panic(fmt.Sprintf("streamer: PRP window read for idle slot %d", slot))
			}
			for j := int64(0); j < n/8; j++ {
				off := reg.secondPageOff + (first+j)*nvme.PageSize
				putLE64(buf[j*8:], s.bufPhys(reg.isWrite, off))
			}
			if s.cfg.Variant == HostDRAM {
				lat += s.cfg.AddressCalcOverhead
			}
		}
	}
	s.k.After(lat, done)
}

func (w *prpWindow) CompleteWrite(addr uint64, n int64, data []byte) {
	panic("streamer: PRP window is read-only")
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

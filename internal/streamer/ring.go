package streamer

import (
	"fmt"

	"snacc/internal/sim"
)

// byteRing allocates 4 KiB-aligned buffer segments in FIFO order and frees
// them in the same order — the natural management for a buffer whose
// commands retire strictly in order (§4.2: "the respective data buffer
// space can be reused for the next NVMe read command"). When the tail
// cannot fit a request contiguously it pads to the wrap point, so segments
// are always physically contiguous (which is what makes the on-the-fly PRP
// computation possible).
type byteRing struct {
	capacity int64
	head     int64 // absolute offset of oldest live byte
	tail     int64 // absolute offset of next free byte
	live     int64 // bytes between head and tail (incl. padding)

	// segments tracks allocation sizes (with padding) for FIFO free.
	segments []ringSeg
	waiters  []ringWaiter
	// maxLive records the occupancy high-water mark.
	maxLive int64
}

type ringSeg struct {
	off  int64 // offset within the buffer (wrapped)
	size int64 // allocation including any wrap padding
}

type ringWaiter struct {
	p *sim.Proc
	n int64
}

const ringAlign = 4096

func newByteRing(capacity int64) *byteRing {
	if capacity <= 0 || capacity%ringAlign != 0 {
		panic("streamer: ring capacity must be a positive multiple of 4 KiB")
	}
	return &byteRing{capacity: capacity}
}

// roundUp aligns n to the ring granularity.
func roundUp(n int64) int64 { return (n + ringAlign - 1) &^ (ringAlign - 1) }

// tryAlloc attempts a contiguous allocation of n (rounded) bytes. Each new
// command starts at a 4 KiB boundary (§4.3).
func (r *byteRing) tryAlloc(n int64) (off int64, ok bool) {
	need := roundUp(n)
	if need > r.capacity {
		panic(fmt.Sprintf("streamer: allocation %d exceeds ring capacity %d", n, r.capacity))
	}
	tailOff := r.tail % r.capacity
	pad := int64(0)
	if tailOff+need > r.capacity {
		// Pad out the tail so the segment stays contiguous.
		pad = r.capacity - tailOff
	}
	if r.live+pad+need > r.capacity {
		return 0, false
	}
	r.live += pad + need
	if r.live > r.maxLive {
		r.maxLive = r.live
	}
	r.tail += pad
	off = r.tail % r.capacity
	r.tail += need
	r.segments = append(r.segments, ringSeg{off: off, size: pad + need})
	return off, true
}

// alloc blocks p until n bytes are available and returns the segment
// offset. Admission is strictly FIFO: a request joins the wait queue and
// only the queue head may allocate, so a large request is never starved by
// smaller ones behind it.
func (r *byteRing) alloc(p *sim.Proc, n int64) int64 {
	r.waiters = append(r.waiters, ringWaiter{p: p, n: n})
	for {
		if r.waiters[0].p == p {
			if off, ok := r.tryAlloc(n); ok {
				r.waiters = r.waiters[1:]
				// The new head may also fit; let it try.
				if len(r.waiters) > 0 {
					r.waiters[0].p.Wake()
				}
				return off
			}
		}
		p.Park()
	}
}

// free releases the oldest segment (FIFO) and lets the head waiter retry.
func (r *byteRing) free() {
	if len(r.segments) == 0 {
		panic("streamer: ring free without live segment")
	}
	seg := r.segments[0]
	r.segments = r.segments[1:]
	r.head += seg.size
	r.live -= seg.size
	if len(r.waiters) > 0 {
		r.waiters[0].p.Wake()
	}
}

// liveBytes reports current occupancy (incl. padding).
func (r *byteRing) liveBytes() int64 { return r.live }

// slotPool is the fixed-slot allocator the out-of-order variant uses:
// buffers free in completion order, so equal-size slots replace the FIFO
// ring.
type slotPool struct {
	slotBytes int64
	free      []int64
	waiters   []*sim.Proc
}

func newSlotPool(capacity, slotBytes int64) *slotPool {
	if slotBytes%ringAlign != 0 {
		panic("streamer: slot size must be 4 KiB aligned")
	}
	p := &slotPool{slotBytes: slotBytes}
	for off := int64(0); off+slotBytes <= capacity; off += slotBytes {
		p.free = append(p.free, off)
	}
	if len(p.free) == 0 {
		panic("streamer: slot pool smaller than one slot")
	}
	return p
}

func (sp *slotPool) alloc(p *sim.Proc, n int64) int64 {
	if n > sp.slotBytes {
		panic(fmt.Sprintf("streamer: request %d exceeds slot size %d", n, sp.slotBytes))
	}
	sp.waiters = append(sp.waiters, p)
	for {
		if sp.waiters[0] == p && len(sp.free) > 0 {
			sp.waiters = sp.waiters[1:]
			off := sp.free[0]
			sp.free = sp.free[1:]
			if len(sp.waiters) > 0 && len(sp.free) > 0 {
				sp.waiters[0].Wake()
			}
			return off
		}
		p.Park()
	}
}

func (sp *slotPool) release(off int64) {
	sp.free = append(sp.free, off)
	if len(sp.waiters) > 0 {
		sp.waiters[0].Wake()
	}
}

// Package streamer implements SNAcc's core contribution: the NVMe Streamer
// IP (paper §4). It exposes four AXI4-Stream interfaces to a user PE (read
// command, read data, write, write response), owns the NVMe submission
// queue as a FIFO inside the IP and the completion queue as a reorder
// buffer, splits transfers into ≤1 MiB NVMe commands, synthesizes PRP-list
// entries on the fly (the bit-22 address trick for URAM, a command-ID
// register file for the DRAM variants), and retires completions strictly in
// order — issuing new commands only as head-of-line commands retire, the
// §7 policy whose random-read cost Figure 4b quantifies.
//
// Three buffer variants exist, exactly as in §4.3: 4 MB of on-die URAM
// shared between directions, 64+64 MB in on-board DRAM behind the single
// TaPaSCo memory controller, and 64+64 MB of pinned host DRAM stitched from
// 4 MiB chunks.
package streamer

import (
	"snacc/internal/axis"
	"snacc/internal/memmodel"
	"snacc/internal/sim"
)

// Variant selects the payload buffer memory (§4.3).
type Variant int

// The three NVMe Streamer variants from the paper.
const (
	URAM Variant = iota
	OnboardDRAM
	HostDRAM
)

// String names the variant as the paper does.
func (v Variant) String() string {
	switch v {
	case URAM:
		return "URAM"
	case OnboardDRAM:
		return "On-board DRAM"
	case HostDRAM:
		return "Host DRAM"
	default:
		return "unknown"
	}
}

// Window layout offsets. The URAM variant doubles its 4 MiB data space and
// uses bit 22 to select the PRP shadow half (Figure 2), so the data region
// must sit at a 8 MiB-aligned window base.
const (
	// PRPShadowBit is the address bit selecting the URAM PRP shadow.
	PRPShadowBit = 1 << 22
)

// Config parameterizes one NVMe Streamer instance.
type Config struct {
	// Name identifies the streamer (and its IOMMU grants).
	Name string
	// WindowBase is the bus address of the streamer's window inside the
	// FPGA BAR. Must be aligned to the window size.
	WindowBase uint64
	Variant    Variant
	// QueueDepth is the SQ depth / reorder-buffer size (64 in the paper).
	QueueDepth int
	// MaxCmdBytes is the per-NVMe-command split size (1 MiB in the paper).
	MaxCmdBytes int64
	// ReadBufBytes / WriteBufBytes size the payload buffers. The URAM
	// variant shares one buffer: set ReadBufBytes and leave WriteBufBytes
	// zero.
	ReadBufBytes  int64
	WriteBufBytes int64
	// StreamCfg parameterizes the four PE-facing AXI streams.
	StreamCfg axis.Config
	// SubmitOverhead is the submission FSM cost per command: stream beat
	// decode, buffer allocation, SQE build, doorbell (≈250 cycles at
	// 300 MHz).
	SubmitOverhead sim.Time
	// RetireReadCost / RetireWriteCost are the retirement FSM costs per
	// command. Reads pay for the in-order reorder-buffer walk plus the
	// shared-ring bookkeeping and drain control; writes only release
	// resources and emit a token. The read cost is the calibrated source
	// of the paper's flat 1.6 GB/s random-read ceiling (Figure 4b).
	RetireReadCost  sim.Time
	RetireWriteCost sim.Time
	// OOORetireReadCost replaces RetireReadCost when OutOfOrder is on: a
	// CID-indexed retirement engine skips the in-order walk and the ring
	// bookkeeping, so the §7 extension projects a leaner per-completion
	// cost.
	OOORetireReadCost sim.Time
	// DrainLatency is added when fetching retired read data from the
	// buffer before streaming it to the PE; it is the calibrated
	// per-variant gap in Figure 4c (URAM fastest, host DRAM slowest).
	DrainLatency sim.Time
	// AddressCalcOverhead is added to PRP window responses in the host
	// DRAM variant, covering the 4 MiB chunk stitching (§4.3).
	AddressCalcOverhead sim.Time
	// IOQueues shards the submission path across this many NVMe I/O queue
	// pairs (1..MaxIOQueues) with round-robin command placement; the
	// reorder buffer stays global, so retirement remains strictly in order
	// across queues. 0 or 1 keeps the paper's single-SQ model and its exact
	// event timeline.
	IOQueues int
	// DoorbellBatch coalesces doorbell writes: the SQ tail doorbell rings
	// once per DoorbellBatch submitted commands (with the final tail), and
	// CQ-head updates are likewise posted once per drained run of up to
	// DoorbellBatch completions. 0 or 1 rings per command, the paper's
	// behavior. A partial batch flushes after DoorbellFlush.
	DoorbellBatch int
	// DoorbellFlush is the debounce window for a partial doorbell batch:
	// each new command (or consumed completion) pushes the flush deadline
	// out by this much, so a steady stream rings at the batch threshold and
	// the timer only pays out when the stream pauses. Only used when
	// DoorbellBatch > 1.
	DoorbellFlush sim.Time
	// RetireCQCost and RetireDoorbellCost decompose RetireReadCost for the
	// multi-queue path: RetireCQCost is the CQ-engine bookkeeping portion,
	// replicated per queue pair and therefore divided by IOQueues when the
	// path is sharded; RetireDoorbellCost is the CQ-head doorbell update,
	// paid once per drained batch when DoorbellBatch > 1. The remainder
	// (RetireReadCost - RetireCQCost - RetireDoorbellCost) is the serial
	// in-order walk that no sharding removes. With IOQueues=1 and
	// DoorbellBatch=1 the sum equals RetireReadCost exactly, so the default
	// configuration reproduces the paper's timeline bit for bit.
	RetireCQCost       sim.Time
	RetireDoorbellCost sim.Time
	// OutOfOrder enables the §7 future-work extension: completions retire
	// as they arrive rather than in order. Buffers then come from a
	// fixed-size slot pool instead of the in-order ring.
	OutOfOrder bool
	// Functional moves real payload bytes end to end.
	Functional bool
	// CmdTimeout is the per-command completion deadline. When a command's
	// completion has not arrived CmdTimeout after (re)submission, the
	// watchdog fires: the command is resubmitted while retries remain,
	// otherwise aborted to the PE with nvme.StatusAbortRequested. Zero
	// disables the watchdog (the default) — a lost completion then hangs
	// the reorder-buffer head forever, so enable it whenever completions
	// can be lost. Must comfortably exceed the worst-case device latency,
	// or a merely slow command is double-submitted.
	CmdTimeout sim.Time
	// MaxRetries bounds resubmissions per command for retryable failures
	// (nvme.RetryableStatus errors and lost completions). Zero aborts on
	// the first failure.
	MaxRetries int
	// RetryBackoff is the delay before the first resubmission, doubling
	// with every further attempt (capped at 256x). Zero resubmits
	// immediately.
	RetryBackoff sim.Time
	// BreakerThreshold trips the controller-failure circuit breaker after
	// this many consecutive watchdog expiries with no intervening valid
	// completion — per-command retries stop and the recovery ladder takes
	// over: quiesce the PE streams, reset the controller (via the handler
	// installed with SetResetHandler), rebuild the queues, and replay the
	// in-flight window from the retained staging buffers. Zero disables the
	// breaker (per-command retries only, PR 2 behavior).
	BreakerThreshold int
	// MaxResets bounds controller reset attempts per breaker trip. When
	// they are exhausted (or no reset handler is installed) the controller
	// is declared dead: every in-flight and future command fails fast with
	// nvme.StatusControllerUnavailable — a terminal error flag on the
	// streams, never a hang.
	MaxResets int
	// CFSPollInterval, when positive, polls the controller status register
	// while commands are in flight and trips the breaker on a latched
	// fatal status (CSTS.CFS) or an all-1s read (surprise removal) without
	// waiting for CmdTimeout — the fast crash-detect path.
	CFSPollInterval sim.Time
}

// MaxIOQueues bounds Config.IOQueues: every variant's window layout
// reserves 2*ctrlRegionGap of control space per queue pair after the PRP
// region, and the tightest variant (host DRAM) has exactly room for 8 —
// matching the device model's MaxIOQueuePairs.
const MaxIOQueues = 8

// ioQueues returns the normalized queue-pair count.
func (c *Config) ioQueues() int {
	if c.IOQueues < 1 {
		return 1
	}
	return c.IOQueues
}

// doorbellBatch returns the normalized doorbell coalescing factor.
func (c *Config) doorbellBatch() int {
	if c.DoorbellBatch < 1 {
		return 1
	}
	return c.DoorbellBatch
}

// recoveryEnabled reports whether the watchdog/retry machinery is active.
func (c *Config) recoveryEnabled() bool {
	return c.CmdTimeout > 0 || c.MaxRetries > 0 || c.breakerEnabled()
}

// breakerEnabled reports whether the controller-failure circuit breaker is
// active.
func (c *Config) breakerEnabled() bool {
	return c.BreakerThreshold > 0 || c.CFSPollInterval > 0
}

// DefaultConfig returns the paper's configuration for a variant.
func DefaultConfig(name string, windowBase uint64, v Variant) Config {
	cfg := Config{
		Name:              name,
		WindowBase:        windowBase,
		Variant:           v,
		QueueDepth:        64,
		MaxCmdBytes:       sim.MiB,
		StreamCfg:         axis.DefaultConfig(),
		SubmitOverhead:    850 * sim.Nanosecond,
		RetireReadCost:    2500 * sim.Nanosecond,
		RetireWriteCost:   200 * sim.Nanosecond,
		OOORetireReadCost: 950 * sim.Nanosecond,
		// CQ bookkeeping + doorbell portions of RetireReadCost (multi-queue
		// decomposition); the serial in-order walk is the 600 ns remainder.
		RetireCQCost:       1400 * sim.Nanosecond,
		RetireDoorbellCost: 500 * sim.Nanosecond,
		DoorbellFlush:      4 * sim.Microsecond,
	}
	switch v {
	case URAM:
		cfg.ReadBufBytes = 4 * sim.MiB
		cfg.DrainLatency = 200 * sim.Nanosecond
	case OnboardDRAM:
		cfg.ReadBufBytes = 64 * sim.MiB
		cfg.WriteBufBytes = 64 * sim.MiB
		cfg.DrainLatency = 6500 * sim.Nanosecond
	case HostDRAM:
		cfg.ReadBufBytes = 64 * sim.MiB
		cfg.WriteBufBytes = 64 * sim.MiB
		cfg.DrainLatency = 11200 * sim.Nanosecond
		cfg.AddressCalcOverhead = 60 * sim.Nanosecond
	}
	return cfg
}

// Resources abstracts the memories and fabric attachments the streamer
// stages data in; the TaPaSCo platform layer provides them.
type Resources struct {
	// Local is the on-card memory backing the data window (URAM model or
	// the DRAM controller). nil for the HostDRAM variant.
	Local memmodel.Memory
	// LocalBase is the window-relative offset of the data region start
	// within Local (the DRAM variant reserves its buffer inside card
	// DRAM).
	LocalBase uint64
	// HostRead / HostWrite are the pinned host chunk sets for the
	// HostDRAM variant. nil otherwise.
	HostRead  *memmodel.ChunkedBuffer
	HostWrite *memmodel.ChunkedBuffer
}

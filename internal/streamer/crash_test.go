package streamer_test

import (
	"bytes"
	"errors"
	"testing"

	"snacc/internal/fault"
	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// crashRecovery layers the controller-failure circuit breaker on top of the
// per-command recovery settings. The 1 ms status poll is the fast-detect
// path; CmdTimeout stays at 20 ms so a full queue-depth burst of 1 MiB
// pieces cannot false-trip the watchdog.
func crashRecovery(cfg *streamer.Config) {
	recovery(cfg)
	cfg.BreakerThreshold = 2
	cfg.MaxResets = 2
	cfg.CFSPollInterval = sim.Millisecond
}

// TestBreakerBoundsRetryStorm pins the PR2 retry-storm fix: against a
// permanently dead controller, the breaker must trip after BreakerThreshold
// consecutive timeouts and stand the per-command watchdogs down, so total
// resubmissions stay bounded instead of every in-flight command burning
// MaxRetries each. Detection goes through the timeout path on purpose
// (status polling off): that is exactly where the storm used to live.
func TestBreakerBoundsRetryStorm(t *testing.T) {
	k, c, dev := rig(t, streamer.URAM, false, func(cfg *streamer.Config) {
		crashRecovery(cfg)
		cfg.CFSPollInterval = 0
	})
	inj := fault.NewInjector(7)
	inj.Add(fault.Rule{Name: "remove-8th", Kind: fault.RemoveCtrl, Opcode: fault.OpAny,
		Nth: 8, Count: 1})
	inj.Attach(dev)
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		err := c.WriteErr(p, 0, 16*sim.MiB, nil)
		var ce streamer.CmdError
		if !errors.As(err, &ce) {
			t.Fatalf("write error = %v, want CmdError", err)
		}
		if ce.Status != nvme.StatusControllerUnavailable {
			t.Errorf("write status = %#x, want %#x", ce.Status, nvme.StatusControllerUnavailable)
		}
		// The dead controller fails further traffic fast, not by hanging.
		if _, err := c.ReadErr(p, 0, sim.MiB); err == nil {
			t.Error("read against a dead controller succeeded")
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished against a dead controller")
	}
	st := c.Streamer()
	if !st.Dead() {
		t.Error("controller not declared dead")
	}
	if st.BreakerTrips() != 1 {
		t.Errorf("breaker trips = %d, want 1", st.BreakerTrips())
	}
	if st.ControllerResets() != 2 {
		t.Errorf("controller resets = %d, want MaxResets = 2", st.ControllerResets())
	}
	// Without the breaker every stranded in-flight command retried
	// MaxRetries times (~27 resubmissions for a 9-deep window); the breaker
	// allows at most the pre-trip stragglers.
	if st.CommandRetries() > 3 {
		t.Errorf("retry storm: %d resubmissions against a dead controller", st.CommandRetries())
	}
	if st.CommandTimeouts() > int64(st.Config().BreakerThreshold)+1 {
		t.Errorf("timeouts = %d, want ~BreakerThreshold", st.CommandTimeouts())
	}
}

// TestCrashBreakerRecoversAndReplays is the end-to-end ladder: a controller
// crash mid-burst is detected, the controller is reset, the in-flight
// window replays from the retained staging buffers, and the PE sees intact
// data with no error.
func TestCrashBreakerRecoversAndReplays(t *testing.T) {
	k, c, dev := rig(t, streamer.URAM, true, crashRecovery)
	inj := fault.NewInjector(7)
	inj.Add(fault.Rule{Name: "crash-8th", Kind: fault.CrashCtrl, Opcode: fault.OpAny,
		Nth: 8, Count: 1})
	inj.Attach(dev)
	want := make([]byte, 16*sim.MiB)
	for i := range want {
		want[i] = byte(i*17 + 5)
	}
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		if err := c.WriteErr(p, 0, int64(len(want)), want); err != nil {
			t.Fatalf("write across crash failed: %v", err)
		}
		got, err := c.ReadErr(p, 0, int64(len(want)))
		if err != nil {
			t.Fatalf("read after recovery failed: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Error("data corrupted across controller crash recovery")
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	if dev.ControllerCrashes() != 1 {
		t.Errorf("device crashes = %d, want 1", dev.ControllerCrashes())
	}
	if st.BreakerTrips() != 1 || st.ControllerResets() != 1 {
		t.Errorf("trips/resets = %d/%d, want 1/1", st.BreakerTrips(), st.ControllerResets())
	}
	if st.CommandsReplayed() == 0 {
		t.Error("no commands replayed despite in-flight window at crash")
	}
	if st.RecoveryTime() <= 0 {
		t.Error("recovery time not accounted")
	}
	if st.Dead() {
		t.Error("recovered controller marked dead")
	}
	if st.CommandAborts() != 0 {
		t.Errorf("aborts = %d after successful recovery, want 0", st.CommandAborts())
	}
}

// TestCrashBreakerRecoversMultiQueue runs the same end-to-end ladder with
// the submission path sharded over four coalescing queue pairs: the crash
// strands an in-flight window spread across all four SQs with doorbell
// batches partially accumulated, and the replay must reset every queue's
// cursors, re-encode the window in global submission order, and force-ring
// each queue's final tail past the open breaker. The PE must see intact data
// and the ladder counters must match the single-queue run exactly.
func TestCrashBreakerRecoversMultiQueue(t *testing.T) {
	k, c, dev := rig(t, streamer.URAM, true, func(cfg *streamer.Config) {
		crashRecovery(cfg)
		cfg.IOQueues = 4
		cfg.DoorbellBatch = 8
	})
	inj := fault.NewInjector(7)
	inj.Add(fault.Rule{Name: "crash-8th", Kind: fault.CrashCtrl, Opcode: fault.OpAny,
		Nth: 8, Count: 1})
	inj.Attach(dev)
	want := make([]byte, 16*sim.MiB)
	for i := range want {
		want[i] = byte(i*17 + 5)
	}
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		if err := c.WriteErr(p, 0, int64(len(want)), want); err != nil {
			t.Fatalf("write across crash failed: %v", err)
		}
		got, err := c.ReadErr(p, 0, int64(len(want)))
		if err != nil {
			t.Fatalf("read after recovery failed: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Error("data corrupted across multi-queue crash recovery")
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	if dev.ControllerCrashes() != 1 {
		t.Errorf("device crashes = %d, want 1", dev.ControllerCrashes())
	}
	if st.BreakerTrips() != 1 || st.ControllerResets() != 1 {
		t.Errorf("trips/resets = %d/%d, want 1/1", st.BreakerTrips(), st.ControllerResets())
	}
	if st.CommandsReplayed() == 0 {
		t.Error("no commands replayed despite in-flight window at crash")
	}
	if st.Dead() {
		t.Error("recovered controller marked dead")
	}
	if st.CommandAborts() != 0 {
		t.Errorf("aborts = %d after successful recovery, want 0", st.CommandAborts())
	}
}

// TestCrashHangRevivesWithoutReset: a hang shorter than the command
// deadline parks completions and revives on its own — neither the watchdog
// nor the breaker may fire.
func TestCrashHangRevivesWithoutReset(t *testing.T) {
	k, c, dev := rig(t, streamer.URAM, true, crashRecovery)
	inj := fault.NewInjector(7)
	inj.Add(fault.Rule{Name: "hang-4th", Kind: fault.HangCtrl, Opcode: fault.OpAny,
		Nth: 4, Count: 1, Delay: 2 * sim.Millisecond})
	inj.Attach(dev)
	want := make([]byte, 8*sim.MiB)
	for i := range want {
		want[i] = byte(i * 29)
	}
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		if err := c.WriteErr(p, 0, int64(len(want)), want); err != nil {
			t.Fatalf("write across hang failed: %v", err)
		}
		got, err := c.ReadErr(p, 0, int64(len(want)))
		if err != nil {
			t.Fatalf("read after revive failed: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Error("data corrupted across controller hang")
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	if dev.ControllerHangs() != 1 {
		t.Errorf("device hangs = %d, want 1", dev.ControllerHangs())
	}
	if st.BreakerTrips() != 0 || st.ControllerResets() != 0 {
		t.Errorf("trips/resets = %d/%d across a self-reviving hang, want 0/0",
			st.BreakerTrips(), st.ControllerResets())
	}
	if st.CommandTimeouts() != 0 {
		t.Errorf("timeouts = %d, want 0 (hang shorter than deadline)", st.CommandTimeouts())
	}
}

// TestPermanentDeathFailsFast: with no reset budget, the first trip
// declares the controller dead and every stranded or future command
// resolves immediately with the terminal status — a flag on the streams,
// never a hang.
func TestPermanentDeathFailsFast(t *testing.T) {
	k, c, dev := rig(t, streamer.URAM, false, func(cfg *streamer.Config) {
		crashRecovery(cfg)
		cfg.MaxResets = 0
	})
	inj := fault.NewInjector(7)
	inj.Add(fault.Rule{Name: "crash-4th", Kind: fault.CrashCtrl, Opcode: fault.OpAny,
		Nth: 4, Count: 1})
	inj.Attach(dev)
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		err := c.WriteErr(p, 0, 8*sim.MiB, nil)
		var ce streamer.CmdError
		if !errors.As(err, &ce) {
			t.Fatalf("write error = %v, want CmdError", err)
		}
		if ce.Status != nvme.StatusControllerUnavailable {
			t.Errorf("write status = %#x, want %#x", ce.Status, nvme.StatusControllerUnavailable)
		}
		data, err := c.ReadErr(p, 0, sim.MiB)
		if !errors.As(err, &ce) || ce.Status != nvme.StatusControllerUnavailable {
			t.Errorf("read error = %v, want terminal CmdError", err)
		}
		if len(data) != 0 {
			t.Errorf("dead controller delivered %d bytes", len(data))
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	if !st.Dead() {
		t.Error("controller not declared dead")
	}
	if st.ControllerResets() != 0 {
		t.Errorf("resets = %d with MaxResets = 0, want 0", st.ControllerResets())
	}
	if dev.ControllerCrashes() != 1 {
		t.Errorf("device crashes = %d, want 1", dev.ControllerCrashes())
	}
}

// TestCFSPollDetectsCrashFast pins the fast-detect path: with an
// intentionally huge command deadline, the status poll alone must spot the
// latched CSTS.CFS and drive recovery orders of magnitude sooner than the
// watchdog would.
func TestCFSPollDetectsCrashFast(t *testing.T) {
	k, c, dev := rig(t, streamer.URAM, false, func(cfg *streamer.Config) {
		crashRecovery(cfg)
		cfg.CmdTimeout = sim.Second
	})
	inj := fault.NewInjector(7)
	inj.Add(fault.Rule{Name: "crash-4th", Kind: fault.CrashCtrl, Opcode: fault.OpAny,
		Nth: 4, Count: 1})
	inj.Attach(dev)
	var finished sim.Time
	done := false
	k.Spawn("pe", func(p *sim.Proc) {
		if err := c.WriteErr(p, 0, 8*sim.MiB, nil); err != nil {
			t.Fatalf("write across crash failed: %v", err)
		}
		finished = p.Now()
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("PE never finished")
	}
	st := c.Streamer()
	if st.ControllerResets() != 1 || st.CommandsReplayed() == 0 {
		t.Errorf("resets/replayed = %d/%d, want 1/>0", st.ControllerResets(), st.CommandsReplayed())
	}
	if st.CommandTimeouts() != 0 {
		t.Errorf("timeouts = %d, want 0 (poll must beat the 1 s watchdog)", st.CommandTimeouts())
	}
	if finished >= 100*sim.Millisecond {
		t.Errorf("recovery took %v, want well under the 1 s command deadline", finished)
	}
}

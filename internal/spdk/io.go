package spdk

import (
	"fmt"

	"snacc/internal/nvme"
	"snacc/internal/sim"
)

// SplitBytes is the maximum payload per NVMe command, matching the paper's
// 1 MiB choice ("sufficient to saturate the available bandwidth", §4.2).
const SplitBytes = sim.MiB

// LBASize returns the namespace block size discovered at attach.
func (d *Driver) LBASize() int64 { return d.lbaSize }

// CapacityBlocks returns the namespace capacity discovered at attach.
func (d *Driver) CapacityBlocks() uint64 { return d.nsBlocks }

// MDTSBytes returns the controller's max data transfer size.
func (d *Driver) MDTSBytes() int64 { return d.mdtsBytes }

// QueueDepth returns the I/O queue depth.
func (d *Driver) QueueDepth() int { return d.cfg.QueueDepth }

// QueuePairs returns the number of I/O queue pairs in use.
func (d *Driver) QueuePairs() int { return len(d.ioQs) }

// CPU returns the data-path core, for utilization reporting (§6.3).
func (d *Driver) CPU() *sim.Server { return d.cpu }

// AllocBuffer reserves a page-aligned pinned buffer and returns its bus
// address.
func (d *Driver) AllocBuffer(n int64) uint64 {
	return d.host.Alloc(n, nvme.PageSize)
}

// prpPage manages a freelist of PRP-list pages.
func (d *Driver) allocPRPPage() uint64 {
	if n := len(d.prpPool); n > 0 {
		addr := d.prpPool[n-1]
		d.prpPool = d.prpPool[:n-1]
		return addr
	}
	return d.host.Alloc(nvme.PageSize, nvme.PageSize)
}

func (d *Driver) freePRPPage(addr uint64) { d.prpPool = append(d.prpPool, addr) }

// buildPRPs fills cmd's PRP entries for a transfer of n bytes at bufAddr
// (page aligned), writing a PRP list into host memory when needed. It
// returns the list page to free on completion (0 if none).
func (d *Driver) buildPRPs(cmd *nvme.Command, bufAddr uint64, n int64) uint64 {
	if bufAddr%nvme.PageSize != 0 {
		panic("spdk: data buffers must be page aligned")
	}
	cmd.PRP1 = bufAddr
	if n <= nvme.PageSize {
		return 0
	}
	if n <= 2*nvme.PageSize {
		cmd.PRP2 = bufAddr + nvme.PageSize
		return 0
	}
	pages := int((n + nvme.PageSize - 1) / nvme.PageSize)
	list := d.allocPRPPage()
	entries := make([]byte, (pages-1)*8)
	for i := 1; i < pages; i++ {
		putLE64(entries[(i-1)*8:], bufAddr+uint64(i)*nvme.PageSize)
	}
	d.host.Mem.Store().WriteBytes(list-hostMemBase(d.host), entries)
	cmd.PRP2 = list
	return list
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// io submits one (possibly split) I/O and invokes cb once every piece has
// completed.
func (d *Driver) io(op uint8, slba uint64, blocks uint32, bufAddr uint64, data []byte, cb func(error)) {
	total := int64(blocks) * d.lbaSize
	if total <= 0 {
		cb(fmt.Errorf("spdk: zero-length I/O"))
		return
	}
	split := int64(SplitBytes)
	if split > d.mdtsBytes {
		split = d.mdtsBytes
	}
	if d.cfg.Functional && data != nil && op == nvme.OpWrite {
		d.host.Mem.Store().WriteBytes(bufAddr-hostMemBase(d.host), data)
	}
	pending := 0
	var firstErr error
	finished := false
	oneDone := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		pending--
		if finished && pending == 0 {
			if d.cfg.Functional && data != nil && op == nvme.OpRead && firstErr == nil {
				d.host.Mem.Store().ReadBytes(bufAddr-hostMemBase(d.host), data)
			}
			cb(firstErr)
		}
	}
	var off int64
	for off < total {
		n := split
		if n > total-off {
			n = total - off
		}
		cmd := nvme.Command{
			Opcode: op,
			NSID:   1,
		}
		cmd.SetSLBA(slba + uint64(off/d.lbaSize))
		cmd.SetNLB(uint32(n/d.lbaSize) - 1)
		list := d.buildPRPs(&cmd, bufAddr+uint64(off), n)
		pending++
		d.io1(cmd, list, oneDone)
		off += n
	}
	finished = true
	if pending == 0 {
		cb(firstErr)
	}
}

func (d *Driver) io1(cmd nvme.Command, list uint64, done func(error)) {
	q := d.ioQs[d.nextQP]
	d.nextQP = (d.nextQP + 1) % len(d.ioQs)
	q.submit(cmd, func(cpl nvme.Completion) {
		if list != 0 {
			d.freePRPPage(list)
		}
		if cpl.Status != nvme.StatusSuccess {
			done(&nvme.StatusError{Op: cmd.Opcode, CID: cpl.CID, Status: cpl.Status})
			return
		}
		done(nil)
	})
}

// ReadAsync reads blocks logical blocks starting at slba into the pinned
// buffer at bufAddr; data (optional) receives content in functional mode.
func (d *Driver) ReadAsync(slba uint64, blocks uint32, bufAddr uint64, data []byte, cb func(error)) {
	d.io(nvme.OpRead, slba, blocks, bufAddr, data, cb)
}

// WriteAsync writes blocks logical blocks starting at slba from the pinned
// buffer at bufAddr; data (optional) provides content in functional mode.
func (d *Driver) WriteAsync(slba uint64, blocks uint32, bufAddr uint64, data []byte, cb func(error)) {
	d.io(nvme.OpWrite, slba, blocks, bufAddr, data, cb)
}

// FlushAsync issues an NVMe flush.
func (d *Driver) FlushAsync(cb func(error)) {
	cmd := nvme.Command{Opcode: nvme.OpFlush, NSID: 1}
	d.io1(cmd, 0, cb)
}

// Read is the blocking form of ReadAsync.
func (d *Driver) Read(p *sim.Proc, slba uint64, blocks uint32, bufAddr uint64, data []byte) error {
	ch := sim.NewChan[error](d.k, 1)
	d.ReadAsync(slba, blocks, bufAddr, data, func(err error) { ch.TryPut(err) })
	return ch.Get(p)
}

// Write is the blocking form of WriteAsync.
func (d *Driver) Write(p *sim.Proc, slba uint64, blocks uint32, bufAddr uint64, data []byte) error {
	ch := sim.NewChan[error](d.k, 1)
	d.WriteAsync(slba, blocks, bufAddr, data, func(err error) { ch.TryPut(err) })
	return ch.Get(p)
}

// Flush is the blocking form of FlushAsync.
func (d *Driver) Flush(p *sim.Proc) error {
	ch := sim.NewChan[error](d.k, 1)
	d.FlushAsync(func(err error) { ch.TryPut(err) })
	return ch.Get(p)
}

// ReadSMART fetches the SMART/health log page and decodes the counters the
// model maintains.
func (d *Driver) ReadSMART(p *sim.Proc) (SMART, error) {
	buf := d.AllocBuffer(nvme.PageSize)
	cmd := nvme.Command{
		Opcode: nvme.OpGetLogPage,
		PRP1:   buf,
		CDW10:  uint32(nvme.LogPageSMART) | uint32(512/4-1)<<16,
	}
	ch := sim.NewChan[nvme.Completion](d.k, 1)
	d.admin.submit(cmd, func(c nvme.Completion) { ch.TryPut(c) })
	cpl := ch.Get(p)
	if cpl.Status != nvme.StatusSuccess {
		return SMART{}, &nvme.StatusError{Op: cmd.Opcode, CID: cpl.CID, Status: cpl.Status}
	}
	page := make([]byte, 512)
	d.host.Mem.Store().ReadBytes(buf-hostMemBase(d.host), page)
	return SMART{
		TemperatureK:     uint16(page[1]) | uint16(page[2])<<8,
		DataUnitsRead:    le64(page[32:40]),
		DataUnitsWritten: le64(page[48:56]),
		HostReads:        le64(page[64:72]),
		HostWrites:       le64(page[80:88]),
		ErrorLogEntries:  le64(page[176:184]),
	}, nil
}

// ReadErrorLog fetches up to max entries of the error-information log page
// (newest first); zero-valued entries mean the log holds fewer errors.
func (d *Driver) ReadErrorLog(p *sim.Proc, max int) ([]nvme.ErrorLogEntry, error) {
	if max <= 0 || max > int(nvme.PageSize/64) {
		return nil, fmt.Errorf("spdk: error log supports 1..%d entries per read", nvme.PageSize/64)
	}
	n := int64(max) * 64
	buf := d.AllocBuffer(nvme.PageSize)
	cmd := nvme.Command{
		Opcode: nvme.OpGetLogPage,
		PRP1:   buf,
		CDW10:  uint32(nvme.LogPageError) | uint32(n/4-1)<<16,
	}
	ch := sim.NewChan[nvme.Completion](d.k, 1)
	d.admin.submit(cmd, func(c nvme.Completion) { ch.TryPut(c) })
	cpl := ch.Get(p)
	if cpl.Status != nvme.StatusSuccess {
		return nil, &nvme.StatusError{Op: cmd.Opcode, CID: cpl.CID, Status: cpl.Status}
	}
	page := make([]byte, n)
	d.host.Mem.Store().ReadBytes(buf-hostMemBase(d.host), page)
	entries := make([]nvme.ErrorLogEntry, max)
	for i := range entries {
		entries[i] = nvme.UnmarshalErrorEntry(page[i*64:])
	}
	return entries, nil
}

// SMART is the decoded subset of the SMART/health log.
type SMART struct {
	TemperatureK     uint16
	DataUnitsRead    uint64
	DataUnitsWritten uint64
	HostReads        uint64
	HostWrites       uint64
	ErrorLogEntries  uint64
}

// WriteZeroes clears blocks logical blocks starting at slba without a data
// transfer.
func (d *Driver) WriteZeroes(p *sim.Proc, slba uint64, blocks uint32) error {
	cmd := nvme.Command{Opcode: nvme.OpWriteZeroes, NSID: 1}
	cmd.SetSLBA(slba)
	cmd.SetNLB(blocks - 1)
	ch := sim.NewChan[error](d.k, 1)
	d.io1(cmd, 0, func(err error) { ch.TryPut(err) })
	return ch.Get(p)
}

// Trim deallocates the given ranges with one Dataset Management command.
func (d *Driver) Trim(p *sim.Proc, ranges []nvme.DSMRange) error {
	if len(ranges) == 0 || len(ranges) > 256 {
		return fmt.Errorf("spdk: trim needs 1..256 ranges")
	}
	buf := d.AllocBuffer(nvme.PageSize)
	d.host.Mem.Store().WriteBytes(buf-hostMemBase(d.host), nvme.MarshalDSMRanges(ranges))
	cmd := nvme.Command{
		Opcode: nvme.OpDatasetMgmt,
		NSID:   1,
		PRP1:   buf,
		CDW10:  uint32(len(ranges) - 1),
		CDW11:  1 << 2, // deallocate
	}
	ch := sim.NewChan[error](d.k, 1)
	d.io1(cmd, 0, func(err error) { ch.TryPut(err) })
	return ch.Get(p)
}

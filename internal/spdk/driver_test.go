package spdk

import (
	"bytes"
	"testing"

	"snacc/internal/nvme"
	"snacc/internal/pcie"
	"snacc/internal/sim"
)

const testBAR = 0x10_0000_0000

// rig builds host + SSD on one fabric.
func rig(functional bool) (*sim.Kernel, *pcie.Host, *nvme.Device) {
	k := sim.NewKernel()
	f := pcie.NewFabric(k, pcie.DefaultConfig())
	host := pcie.NewHost(f, pcie.DefaultHostConfig())
	devCfg := nvme.DefaultConfig("ssd0", testBAR)
	devCfg.Functional = functional
	dev := nvme.New(k, f, devCfg)
	// SSD DMA may touch all of host memory.
	f.IOMMU().Grant("ssd0", pcie.DefaultHostConfig().MemBase, pcie.DefaultHostConfig().MemSize)
	return k, host, dev
}

func attach(t *testing.T, functional bool, qd int) (*sim.Kernel, *pcie.Host, *nvme.Device, chan *Driver) {
	t.Helper()
	k, host, dev := rig(functional)
	out := make(chan *Driver, 1)
	cfg := DefaultDriverConfig()
	cfg.Functional = functional
	if qd > 0 {
		cfg.QueueDepth = qd
	}
	k.Spawn("init", func(p *sim.Proc) {
		d, err := Attach(p, host, testBAR, cfg)
		if err != nil {
			t.Errorf("Attach: %v", err)
			return
		}
		out <- d
	})
	return k, host, dev, out
}

func TestAttachDiscoversGeometry(t *testing.T) {
	k, _, dev, out := attach(t, false, 0)
	k.Run(0)
	d := <-out
	if d.LBASize() != 512 {
		t.Errorf("LBASize = %d, want 512", d.LBASize())
	}
	wantBlocks := uint64(dev.Config().NamespaceBytes / 512)
	if d.CapacityBlocks() != wantBlocks {
		t.Errorf("CapacityBlocks = %d, want %d", d.CapacityBlocks(), wantBlocks)
	}
	if d.MDTSBytes() != 2*sim.MiB {
		t.Errorf("MDTSBytes = %d, want 2 MiB", d.MDTSBytes())
	}
}

func TestFunctionalWriteReadRoundTrip(t *testing.T) {
	k, _, _, out := attach(t, true, 0)
	var d *Driver
	k.Spawn("io", func(p *sim.Proc) {
		// Wait for attach to finish (init proc runs first at same time).
		for len(out) == 0 {
			p.Sleep(sim.Millisecond)
		}
		d = <-out
		buf := d.AllocBuffer(64 * 1024)
		want := make([]byte, 64*1024)
		for i := range want {
			want[i] = byte(i / 512)
		}
		if err := d.Write(p, 1000, 128, buf, want); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		got := make([]byte, len(want))
		buf2 := d.AllocBuffer(int64(len(got)))
		if err := d.Read(p, 1000, 128, buf2, got); err != nil {
			t.Errorf("Read: %v", err)
			return
		}
		if !bytes.Equal(got, want) {
			t.Error("read data differs from written data")
		}
		if err := d.Flush(p); err != nil {
			t.Errorf("Flush: %v", err)
		}
	})
	k.Run(0)
	if d == nil {
		t.Fatal("driver never attached")
	}
}

func TestLargeTransferUsesPRPList(t *testing.T) {
	// A 1 MiB write must split into one NVMe command with a PRP list and
	// round-trip correctly.
	k, _, dev, out := attach(t, true, 0)
	k.Spawn("io", func(p *sim.Proc) {
		for len(out) == 0 {
			p.Sleep(sim.Millisecond)
		}
		d := <-out
		n := int64(sim.MiB)
		buf := d.AllocBuffer(n)
		want := make([]byte, n)
		for i := range want {
			want[i] = byte(i % 253)
		}
		if err := d.Write(p, 0, uint32(n/512), buf, want); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		got := make([]byte, n)
		if err := d.Read(p, 0, uint32(n/512), buf, got); err != nil {
			t.Errorf("Read: %v", err)
			return
		}
		if !bytes.Equal(got, want) {
			t.Error("1 MiB PRP-list round trip corrupted data")
		}
	})
	k.Run(0)
	// One write + one read command plus admin traffic.
	if dev.CommandsExecuted() < 2 {
		t.Fatalf("device executed %d commands", dev.CommandsExecuted())
	}
	if dev.Errors() != 0 {
		t.Fatalf("device reported %d errors", dev.Errors())
	}
}

func TestOutOfRangeReadFails(t *testing.T) {
	k, _, _, out := attach(t, false, 0)
	k.Spawn("io", func(p *sim.Proc) {
		for len(out) == 0 {
			p.Sleep(sim.Millisecond)
		}
		d := <-out
		buf := d.AllocBuffer(4096)
		err := d.Read(p, d.CapacityBlocks(), 8, buf, nil)
		if err == nil {
			t.Error("read past end of namespace succeeded")
		}
		se, ok := err.(*nvme.StatusError)
		if !ok || se.Status != nvme.StatusLBAOutOfRange {
			t.Errorf("error = %v, want LBA out of range", err)
		}
	})
	k.Run(0)
}

func TestQueueDepthBackpressure(t *testing.T) {
	// More async I/Os than queue slots must all complete (submissions queue
	// behind the full SQ).
	k, _, _, out := attach(t, false, 4)
	completed := 0
	k.Spawn("io", func(p *sim.Proc) {
		for len(out) == 0 {
			p.Sleep(sim.Millisecond)
		}
		d := <-out
		buf := d.AllocBuffer(4096)
		for i := 0; i < 32; i++ {
			d.WriteAsync(uint64(i*8), 8, buf, nil, func(err error) {
				if err != nil {
					t.Errorf("WriteAsync: %v", err)
				}
				completed++
			})
		}
	})
	k.Run(0)
	if completed != 32 {
		t.Fatalf("completed = %d, want 32", completed)
	}
}

func TestCPUUtilizationTracked(t *testing.T) {
	k, _, _, out := attach(t, false, 0)
	k.Spawn("io", func(p *sim.Proc) {
		for len(out) == 0 {
			p.Sleep(sim.Millisecond)
		}
		d := <-out
		buf := d.AllocBuffer(sim.MiB)
		for i := 0; i < 64; i++ {
			if err := d.Write(p, uint64(i*2048), 2048, buf, nil); err != nil {
				t.Errorf("Write: %v", err)
			}
		}
		if d.CPU().BusyTime() == 0 {
			t.Error("CPU busy time not accounted")
		}
	})
	k.Run(0)
}

func TestMultipleQueuePairs(t *testing.T) {
	k, host, dev := rig(true)
	cfg := DefaultDriverConfig()
	cfg.QueuePairs = 4
	cfg.Functional = true
	done := false
	k.Spawn("t", func(p *sim.Proc) {
		d, err := Attach(p, host, testBAR, cfg)
		if err != nil {
			t.Errorf("Attach: %v", err)
			return
		}
		if d.QueuePairs() != 4 {
			t.Errorf("QueuePairs = %d", d.QueuePairs())
		}
		// Writes round-robin across pairs; all must land correctly.
		buf := d.AllocBuffer(4096)
		for i := 0; i < 16; i++ {
			data := bytes.Repeat([]byte{byte(i)}, 4096)
			if err := d.Write(p, uint64(i*8), 8, buf, data); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
		for i := 0; i < 16; i++ {
			got := make([]byte, 4096)
			if err := d.Read(p, uint64(i*8), 8, buf, got); err != nil {
				t.Errorf("read %d: %v", i, err)
			}
			if got[0] != byte(i) || got[4095] != byte(i) {
				t.Errorf("slot %d corrupted", i)
			}
		}
		done = true
	})
	k.Run(0)
	if !done {
		t.Fatal("multi-QP test incomplete")
	}
	if dev.Errors() != 0 {
		t.Fatalf("device errors: %d", dev.Errors())
	}
}

func TestReadSMARTThroughDriver(t *testing.T) {
	k, host, _ := rig(false)
	k.Spawn("t", func(p *sim.Proc) {
		d, err := Attach(p, host, testBAR, DefaultDriverConfig())
		if err != nil {
			t.Errorf("Attach: %v", err)
			return
		}
		buf := d.AllocBuffer(sim.MiB)
		if err := d.Write(p, 0, 2048, buf, nil); err != nil {
			t.Errorf("write: %v", err)
		}
		sm, err := d.ReadSMART(p)
		if err != nil {
			t.Errorf("ReadSMART: %v", err)
			return
		}
		if sm.HostWrites != 1 {
			t.Errorf("HostWrites = %d, want 1", sm.HostWrites)
		}
		if sm.DataUnitsWritten == 0 {
			t.Error("DataUnitsWritten = 0")
		}
		if sm.TemperatureK < 280 || sm.TemperatureK > 360 {
			t.Errorf("temperature %d K implausible", sm.TemperatureK)
		}
	})
	k.Run(0)
}

func TestWriteZeroesAndTrim(t *testing.T) {
	k, host, dev := rig(true)
	cfg := DefaultDriverConfig()
	cfg.Functional = true
	k.Spawn("t", func(p *sim.Proc) {
		d, err := Attach(p, host, testBAR, cfg)
		if err != nil {
			t.Errorf("Attach: %v", err)
			return
		}
		buf := d.AllocBuffer(4096)
		data := bytes.Repeat([]byte{0xCD}, 4096)
		if err := d.Write(p, 0, 8, buf, data); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := d.WriteZeroes(p, 0, 4); err != nil {
			t.Errorf("write zeroes: %v", err)
		}
		got := make([]byte, 4096)
		if err := d.Read(p, 0, 8, buf, got); err != nil {
			t.Errorf("read: %v", err)
		}
		if got[0] != 0 || got[2047] != 0 {
			t.Error("zeroed range not zero")
		}
		if got[2048] != 0xCD {
			t.Error("data beyond zeroed range clobbered")
		}
		if err := d.Trim(p, []nvme.DSMRange{{SLBA: 4, NLB: 4}}); err != nil {
			t.Errorf("trim: %v", err)
		}
		if err := d.Read(p, 0, 8, buf, got); err != nil {
			t.Errorf("read: %v", err)
		}
		if got[2048] != 0 {
			t.Error("trimmed range still holds data")
		}
	})
	k.Run(0)
	if dev.Errors() != 0 {
		t.Fatalf("device errors: %d", dev.Errors())
	}
}

func TestDetachAndReattach(t *testing.T) {
	k, host, dev := rig(false)
	k.Spawn("t", func(p *sim.Proc) {
		d, err := Attach(p, host, testBAR, DefaultDriverConfig())
		if err != nil {
			t.Errorf("attach: %v", err)
			return
		}
		buf := d.AllocBuffer(4096)
		if err := d.Write(p, 0, 8, buf, nil); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := d.Detach(p); err != nil {
			t.Errorf("detach: %v", err)
			return
		}
		// A fresh attach must bring the controller back.
		d2, err := Attach(p, host, testBAR, DefaultDriverConfig())
		if err != nil {
			t.Errorf("re-attach: %v", err)
			return
		}
		if err := d2.Write(p, 8, 8, buf, nil); err != nil {
			t.Errorf("write after re-attach: %v", err)
		}
	})
	k.Run(0)
	if dev.Errors() != 0 {
		t.Fatalf("device errors: %d", dev.Errors())
	}
}

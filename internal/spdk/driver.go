// Package spdk models a polled user-space NVMe driver in the style of the
// Storage Performance Development Kit, the paper's host-side reference
// (§5.1): queues and data buffers live in pinned host memory, submissions
// are plain stores plus a doorbell write, and completions are discovered by
// polling the CQ phase bit — no interrupts, no system calls. One CPU core
// executes the entire data path, and its utilization is tracked to
// reproduce the §6.3 observation that the SPDK variant burns a full core.
package spdk

import (
	"fmt"

	"snacc/internal/nvme"
	"snacc/internal/pcie"
	"snacc/internal/sim"
)

// DriverConfig parameterizes the host driver.
type DriverConfig struct {
	// QueueDepth is the I/O queue size (SQ and CQ entries).
	QueueDepth int
	// QueuePairs is the number of I/O queue pairs to create (real SPDK
	// typically runs one per core). I/O is distributed round robin.
	QueuePairs int
	// SubmitCost is CPU time to build one SQE and ring the doorbell.
	SubmitCost sim.Time
	// CompleteCost is CPU time to reap one completion.
	CompleteCost sim.Time
	// PollDelay is the delay between a CQE landing in host memory and the
	// polling loop acting on it.
	PollDelay sim.Time
	// ReadObservationDelay is a calibrated residual added to *measured*
	// read latency (the Latency helper only): the paper reports 57 µs for
	// an SPDK 4 KiB random read (Fig. 4c) while the protocol-level path in
	// this model accounts for ~34 µs; the remainder is host software the
	// paper does not decompose. It never touches the bandwidth paths,
	// matching the paper's Figures 4a/4b.
	ReadObservationDelay sim.Time
	// Functional moves real payload bytes.
	Functional bool
}

// DefaultDriverConfig returns the calibrated configuration.
func DefaultDriverConfig() DriverConfig {
	return DriverConfig{
		QueueDepth:           64,
		QueuePairs:           1,
		SubmitCost:           300 * sim.Nanosecond,
		CompleteCost:         200 * sim.Nanosecond,
		PollDelay:            200 * sim.Nanosecond,
		ReadObservationDelay: 27 * sim.Microsecond,
		Functional:           false,
	}
}

// Driver is an attached controller handle.
type Driver struct {
	k    *sim.Kernel
	cfg  DriverConfig
	host *pcie.Host
	bar  uint64
	cpu  *sim.Server

	lbaSize   int64
	nsBlocks  uint64
	mdtsBytes int64

	admin   *hostQueue
	ioQs    []*hostQueue
	nextQP  int
	prpPool []uint64
}

// hostQueue is the host-side view of one SQ/CQ pair.
type hostQueue struct {
	d       *Driver
	id      uint16
	entries int
	sqBase  uint64
	cqBase  uint64

	sqTail int
	sqHead int // from CQE SQHead, for full detection
	cqHead int
	phase  bool
	// cidFree is a tracker freelist: CIDs identify in-flight trackers the
	// way SPDK's request trackers do, so out-of-order completion can never
	// collide two commands on one CID.
	cidFree []uint16

	inflight map[uint16]func(nvme.Completion)
	// waiters park until a submission slot frees.
	slotWaiters []func()
}

// full reports whether another command may be submitted. Two limits apply:
// the SQ ring itself (tail may not catch the fetch head) and — like real
// SPDK's request trackers — the count of *uncompleted* commands, which must
// stay below the queue depth so the device can never overrun the CQ.
func (q *hostQueue) full() bool {
	next := (q.sqTail + 1) % q.entries
	return next == q.sqHead || len(q.inflight) >= q.entries-1
}

// Attach initializes the controller exactly the way a real driver does:
// disable, program admin queue registers, enable, wait for ready, identify
// controller and namespace, then create one I/O queue pair.
func Attach(p *sim.Proc, host *pcie.Host, barBase uint64, cfg DriverConfig) (*Driver, error) {
	if cfg.QueueDepth < 2 {
		return nil, fmt.Errorf("spdk: queue depth must be at least 2")
	}
	d := &Driver{
		k:    p.Kernel(),
		cfg:  cfg,
		host: host,
		bar:  barBase,
		cpu:  sim.NewServer(p.Kernel()),
	}
	// Reset, then program the admin queue (depth 32).
	const adminDepth = 32
	d.admin = d.newQueue(0, adminDepth)
	d.regWrite32(p, nvme.RegCC, 0)
	d.regWrite32(p, nvme.RegAQA, uint32(adminDepth-1)|uint32(adminDepth-1)<<16)
	d.regWrite64(p, nvme.RegASQ, d.admin.sqBase)
	d.regWrite64(p, nvme.RegACQ, d.admin.cqBase)
	d.regWrite32(p, nvme.RegCC, nvme.CCEnable)
	if err := d.waitReady(p); err != nil {
		return nil, err
	}

	// Identify controller: MDTS and sanity.
	idBuf := host.Alloc(nvme.PageSize, nvme.PageSize)
	cpl, err := d.adminCmd(p, nvme.Command{
		Opcode: nvme.OpIdentify,
		NSID:   0,
		PRP1:   idBuf,
		CDW10:  nvme.CNSController,
	})
	_ = cpl
	if err != nil {
		return nil, err
	}
	ctrl := make([]byte, nvme.PageSize)
	d.host.Mem.Store().ReadBytes(idBuf-hostMemBase(host), ctrl)
	mdts := ctrl[77]
	d.mdtsBytes = int64(nvme.PageSize) << mdts

	// Identify namespace 1: capacity and LBA format.
	if _, err := d.adminCmd(p, nvme.Command{
		Opcode: nvme.OpIdentify,
		NSID:   1,
		PRP1:   idBuf,
		CDW10:  nvme.CNSNamespace,
	}); err != nil {
		return nil, err
	}
	ns := make([]byte, nvme.PageSize)
	d.host.Mem.Store().ReadBytes(idBuf-hostMemBase(host), ns)
	d.nsBlocks = le64(ns[0:])
	lbads := ns[130]
	d.lbaSize = 1 << lbads

	// Request queue count, then create the I/O pairs.
	pairs := cfg.QueuePairs
	if pairs <= 0 {
		pairs = 1
	}
	if _, err := d.adminCmd(p, nvme.Command{
		Opcode: nvme.OpSetFeatures,
		CDW10:  uint32(nvme.FeatureNumQueues),
		CDW11:  uint32(pairs-1) | uint32(pairs-1)<<16,
	}); err != nil {
		return nil, err
	}
	for qid := uint16(1); qid <= uint16(pairs); qid++ {
		q := d.newQueue(qid, cfg.QueueDepth)
		if _, err := d.adminCmd(p, nvme.Command{
			Opcode: nvme.OpCreateIOCQ,
			PRP1:   q.cqBase,
			CDW10:  uint32(q.id) | uint32(cfg.QueueDepth-1)<<16,
			CDW11:  1, // physically contiguous
		}); err != nil {
			return nil, err
		}
		if _, err := d.adminCmd(p, nvme.Command{
			Opcode: nvme.OpCreateIOSQ,
			PRP1:   q.sqBase,
			CDW10:  uint32(q.id) | uint32(cfg.QueueDepth-1)<<16,
			CDW11:  1 | uint32(q.id)<<16,
		}); err != nil {
			return nil, err
		}
		d.ioQs = append(d.ioQs, q)
	}
	return d, nil
}

// newQueue allocates SQ/CQ rings in host memory and arms the CQ watch.
func (d *Driver) newQueue(id uint16, entries int) *hostQueue {
	q := &hostQueue{
		d:        d,
		id:       id,
		entries:  entries,
		sqBase:   d.host.Alloc(int64(entries*nvme.SQESize), nvme.PageSize),
		cqBase:   d.host.Alloc(int64(entries*nvme.CQESize), nvme.PageSize),
		phase:    true,
		inflight: make(map[uint16]func(nvme.Completion)),
	}
	for i := entries - 1; i >= 0; i-- {
		q.cidFree = append(q.cidFree, uint16(i))
	}
	d.host.Mem.Watch(q.cqBase, int64(entries*nvme.CQESize), func(addr uint64, n int64, data []byte) {
		d.k.After(d.cfg.PollDelay, func() { q.reap() })
	})
	return q
}

// reap consumes ready CQEs in order, paying CPU time per completion.
func (q *hostQueue) reap() {
	for {
		raw := make([]byte, nvme.CQESize)
		off := q.cqBase - hostMemBase(q.d.host) + uint64(q.cqHead*nvme.CQESize)
		q.d.host.Mem.Store().ReadBytes(off, raw)
		cqe, err := nvme.UnmarshalCompletion(raw)
		if err != nil || cqe.Phase != q.phase {
			return
		}
		q.cqHead++
		if q.cqHead == q.entries {
			q.cqHead = 0
			q.phase = !q.phase
		}
		q.sqHead = int(cqe.SQHead)
		cb, okCID := q.inflight[cqe.CID]
		if !okCID {
			panic(fmt.Sprintf("spdk: completion for unknown CID %d", cqe.CID))
		}
		delete(q.inflight, cqe.CID)
		q.cidFree = append(q.cidFree, cqe.CID)
		// CQ head doorbell + completion processing on the data-path core.
		q.d.cpu.OccupyAnd(q.d.cfg.CompleteCost, func() {
			q.d.host.Port.Write(q.d.bar+nvme.RegDoorbellBase+uint64(2*q.id+1)*4, 4, le32b(uint32(q.cqHead)), nil)
			if cb != nil {
				cb(cqe)
			}
			// A freed SQ slot may unblock a queued submitter.
			if len(q.slotWaiters) > 0 && !q.full() {
				w := q.slotWaiters[0]
				q.slotWaiters = q.slotWaiters[1:]
				w()
			}
		})
	}
}

// submit places cmd in the SQ and rings the doorbell, invoking cb on
// completion. It blocks (via callback queuing) while the SQ is full.
func (q *hostQueue) submit(cmd nvme.Command, cb func(nvme.Completion)) {
	if q.full() {
		q.slotWaiters = append(q.slotWaiters, func() { q.submit(cmd, cb) })
		return
	}
	cmd.CID = q.cidFree[len(q.cidFree)-1]
	q.cidFree = q.cidFree[:len(q.cidFree)-1]
	q.inflight[cmd.CID] = cb
	// Store the SQE (host CPU writing its own DRAM) and ring the doorbell.
	off := q.sqBase - hostMemBase(q.d.host) + uint64(q.sqTail*nvme.SQESize)
	q.d.host.Mem.Store().WriteBytes(off, cmd.Marshal())
	q.sqTail = (q.sqTail + 1) % q.entries
	tail := q.sqTail
	q.d.cpu.OccupyAnd(q.d.cfg.SubmitCost, func() {
		q.d.host.Port.Write(q.d.bar+nvme.RegDoorbellBase+uint64(2*q.id)*4, 4, le32b(uint32(tail)), nil)
	})
}

// adminCmd submits on the admin queue and blocks until completion.
func (d *Driver) adminCmd(p *sim.Proc, cmd nvme.Command) (nvme.Completion, error) {
	ch := sim.NewChan[nvme.Completion](d.k, 1)
	d.admin.submit(cmd, func(c nvme.Completion) { ch.TryPut(c) })
	cpl := ch.Get(p)
	if cpl.Status != nvme.StatusSuccess {
		return cpl, &nvme.StatusError{Op: cmd.Opcode, CID: cpl.CID, Status: cpl.Status}
	}
	return cpl, nil
}

func (d *Driver) waitReady(p *sim.Proc) error {
	for i := 0; i < 1000; i++ {
		buf := make([]byte, 4)
		d.regRead(p, nvme.RegCSTS, buf)
		if le32(buf)&nvme.CSTSReady != 0 {
			return nil
		}
		p.Sleep(10 * sim.Microsecond)
	}
	return fmt.Errorf("spdk: controller never became ready")
}

// Register access helpers.

func (d *Driver) regWrite32(p *sim.Proc, off uint64, v uint32) {
	d.host.Port.WriteB(p, d.bar+off, 4, le32b(v))
}

func (d *Driver) regWrite64(p *sim.Proc, off uint64, v uint64) {
	b := make([]byte, 8)
	copy(b, le32b(uint32(v)))
	copy(b[4:], le32b(uint32(v>>32)))
	d.host.Port.WriteB(p, d.bar+off, 8, b)
}

func (d *Driver) regRead(p *sim.Proc, off uint64, buf []byte) {
	d.host.Port.ReadB(p, d.bar+off, int64(len(buf)), buf)
}

// Little-endian helpers (kept local; encoding/binary needs slices anyway).

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

func le32b(v uint32) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}

func hostMemBase(h *pcie.Host) uint64 { return h.Mem.Base }

// Detach tears the controller down cleanly: delete the I/O queues (SQ
// before CQ, per spec), then disable the controller.
func (d *Driver) Detach(p *sim.Proc) error {
	for _, q := range d.ioQs {
		if _, err := d.adminCmd(p, nvme.Command{Opcode: nvme.OpDeleteIOSQ, CDW10: uint32(q.id)}); err != nil {
			return err
		}
	}
	d.ioQs = nil
	d.regWrite32(p, nvme.RegCC, 0)
	for i := 0; i < 1000; i++ {
		buf := make([]byte, 4)
		d.regRead(p, nvme.RegCSTS, buf)
		if le32(buf)&nvme.CSTSReady == 0 {
			return nil
		}
		p.Sleep(10 * sim.Microsecond)
	}
	return fmt.Errorf("spdk: controller never cleared ready on disable")
}

package spdk

import (
	"testing"

	"snacc/internal/nvme"
	"snacc/internal/sim"
)

// These tests pin the SPDK reference path against the paper's Figure 4
// measurements (see EXPERIMENTS.md for the calibration discussion). The
// tolerances are deliberately loose enough to survive refactoring of the
// underlying models but tight enough to catch a broken mechanism.

func measure(t *testing.T, fn func(p *sim.Proc, d *Driver) float64) float64 {
	t.Helper()
	k, host, _ := rig(false)
	var out float64
	k.Spawn("bench", func(p *sim.Proc) {
		d, err := Attach(p, host, testBAR, DefaultDriverConfig())
		if err != nil {
			t.Errorf("Attach: %v", err)
			return
		}
		out = fn(p, d)
	})
	k.Run(0)
	return out
}

func TestCalibrationSeqRead(t *testing.T) {
	got := measure(t, func(p *sim.Proc, d *Driver) float64 {
		return Sequential(p, d, nvme.OpRead, 512*sim.MiB, sim.MiB, 0).GBps()
	})
	if got < 6.5 || got > 7.1 {
		t.Errorf("SPDK seq read = %.2f GB/s, paper: 6.9", got)
	}
}

func TestCalibrationSeqWrite(t *testing.T) {
	got := measure(t, func(p *sim.Proc, d *Driver) float64 {
		return Sequential(p, d, nvme.OpWrite, 512*sim.MiB, sim.MiB, 0).GBps()
	})
	if got < 5.7 || got > 6.5 {
		t.Errorf("SPDK seq write = %.2f GB/s, paper: 5.90-6.24", got)
	}
}

func TestCalibrationSeqWriteBimodal(t *testing.T) {
	// Consecutive 1 GiB-epoch halves must alternate between the two program
	// rates "without any intermediate values" (§5.2).
	k, host, _ := rig(false)
	var rates []float64
	k.Spawn("bench", func(p *sim.Proc) {
		d, err := Attach(p, host, testBAR, DefaultDriverConfig())
		if err != nil {
			t.Errorf("Attach: %v", err)
			return
		}
		for i := 0; i < 4; i++ {
			r := Sequential(p, d, nvme.OpWrite, sim.GiB, sim.MiB, 0)
			rates = append(rates, r.GBps())
		}
	})
	k.Run(0)
	if len(rates) != 4 {
		t.Fatal("missing measurements")
	}
	// Expect alternation: |r0-r2| small, |r0-r1| large.
	diffAdj := rates[0] - rates[1]
	if diffAdj < 0 {
		diffAdj = -diffAdj
	}
	diffAlt := rates[0] - rates[2]
	if diffAlt < 0 {
		diffAlt = -diffAlt
	}
	if diffAdj < 0.15 {
		t.Errorf("adjacent epochs too similar (%.3f vs %.3f GB/s); expected bimodal alternation: %v",
			rates[0], rates[1], rates)
	}
	// The first epoch benefits slightly from the initially empty write
	// buffer, so allow a modest mismatch between same-parity epochs.
	if diffAlt > 0.15 {
		t.Errorf("alternating epochs should match: %v", rates)
	}
}

func TestCalibrationRandRead(t *testing.T) {
	got := measure(t, func(p *sim.Proc, d *Driver) float64 {
		return RandomIO(p, d, nvme.OpRead, 128*sim.MiB, 4096, 99).GBps()
	})
	if got < 3.9 || got > 5.1 {
		t.Errorf("SPDK rand read = %.2f GB/s, paper: 4.5", got)
	}
}

func TestCalibrationRandWrite(t *testing.T) {
	got := measure(t, func(p *sim.Proc, d *Driver) float64 {
		return RandomIO(p, d, nvme.OpWrite, 128*sim.MiB, 4096, 7).GBps()
	})
	if got < 4.8 || got > 5.7 {
		t.Errorf("SPDK rand write = %.2f GB/s, paper: 5.25", got)
	}
}

func TestCalibrationReadLatency(t *testing.T) {
	k, host, _ := rig(false)
	var mean sim.Time
	k.Spawn("bench", func(p *sim.Proc) {
		d, err := Attach(p, host, testBAR, DefaultDriverConfig())
		if err != nil {
			t.Errorf("Attach: %v", err)
			return
		}
		mean = Latency(p, d, nvme.OpRead, 4096, 200, 5).Mean()
	})
	k.Run(0)
	if mean < 50*sim.Microsecond || mean > 64*sim.Microsecond {
		t.Errorf("SPDK 4k read latency = %v, paper: 57us", mean)
	}
}

func TestCalibrationWriteLatency(t *testing.T) {
	k, host, _ := rig(false)
	var mean sim.Time
	k.Spawn("bench", func(p *sim.Proc) {
		d, err := Attach(p, host, testBAR, DefaultDriverConfig())
		if err != nil {
			t.Errorf("Attach: %v", err)
			return
		}
		mean = Latency(p, d, nvme.OpWrite, 4096, 200, 5).Mean()
	})
	k.Run(0)
	if mean >= 9*sim.Microsecond {
		t.Errorf("SPDK 4k write latency = %v, paper: < 9us", mean)
	}
}

func TestRandReadScalesWithQueueDepth(t *testing.T) {
	// §5.2: "SPDK can achieve even higher bandwidth when the submission
	// queue size is increased."
	run := func(qd int) float64 {
		k, host, _ := rig(false)
		cfg := DefaultDriverConfig()
		cfg.QueueDepth = qd
		var out float64
		k.Spawn("bench", func(p *sim.Proc) {
			d, err := Attach(p, host, testBAR, cfg)
			if err != nil {
				t.Errorf("Attach: %v", err)
				return
			}
			out = RandomIO(p, d, nvme.OpRead, 64*sim.MiB, 4096, 3).GBps()
		})
		k.Run(0)
		return out
	}
	bw4, bw16, bw64 := run(4), run(16), run(64)
	if !(bw4 < bw16 && bw16 < bw64) {
		t.Errorf("rand-read should scale with QD: 4→%.2f 16→%.2f 64→%.2f GB/s", bw4, bw16, bw64)
	}
}

package spdk

import (
	"snacc/internal/nvme"
	"snacc/internal/sim"
)

// PerfResult is one bandwidth measurement.
type PerfResult struct {
	Bytes   int64
	Elapsed sim.Time
}

// GBps returns decimal gigabytes per second, the paper's unit.
func (r PerfResult) GBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / 1e9
}

// drive keeps the driver's queue depth saturated with operations produced by
// next (which returns false when the workload is exhausted) and blocks p
// until every issued operation completed.
func drive(p *sim.Proc, d *Driver, next func(cb func(error)) bool) {
	k := p.Kernel()
	doneCh := sim.NewChan[struct{}](k, 1)
	inflight := 0
	exhausted := false
	var pump func()
	pump = func() {
		for !exhausted && inflight < d.QueueDepth() {
			issued := next(func(err error) {
				if err != nil {
					panic(err)
				}
				inflight--
				if exhausted && inflight == 0 {
					doneCh.TryPut(struct{}{})
					return
				}
				pump()
			})
			if !issued {
				exhausted = true
				break
			}
			inflight++
		}
		if exhausted && inflight == 0 {
			doneCh.TryPut(struct{}{})
		}
	}
	pump()
	doneCh.Get(p)
}

// Sequential measures a sequential transfer of totalBytes in cmdBytes
// commands starting at startLBA.
func Sequential(p *sim.Proc, d *Driver, op uint8, totalBytes, cmdBytes int64, startLBA uint64) PerfResult {
	if cmdBytes%d.LBASize() != 0 || totalBytes%cmdBytes != 0 {
		panic("spdk: sequential workload sizes must align")
	}
	// One buffer per queue slot, reused round-robin.
	bufs := make([]uint64, d.QueueDepth())
	for i := range bufs {
		bufs[i] = d.AllocBuffer(cmdBytes)
	}
	start := p.Now()
	issued := int64(0)
	i := 0
	drive(p, d, func(cb func(error)) bool {
		if issued >= totalBytes {
			return false
		}
		lba := startLBA + uint64(issued/d.LBASize())
		buf := bufs[i%len(bufs)]
		i++
		issued += cmdBytes
		blocks := uint32(cmdBytes / d.LBASize())
		if op == nvme.OpRead {
			d.ReadAsync(lba, blocks, buf, nil, cb)
		} else {
			d.WriteAsync(lba, blocks, buf, nil, cb)
		}
		return true
	})
	return PerfResult{Bytes: totalBytes, Elapsed: p.Now() - start}
}

// RandomIO measures totalBytes moved in ioBytes commands at uniformly
// random, ioBytes-aligned addresses.
func RandomIO(p *sim.Proc, d *Driver, op uint8, totalBytes, ioBytes int64, seed uint64) PerfResult {
	rng := sim.NewRand(seed)
	bufs := make([]uint64, d.QueueDepth())
	for i := range bufs {
		bufs[i] = d.AllocBuffer(ioBytes)
	}
	// Constrain the address space to a realistic preconditioned span.
	spanBlocks := int64(d.CapacityBlocks()) / 2
	blocksPerIO := ioBytes / d.LBASize()
	start := p.Now()
	issued := int64(0)
	i := 0
	drive(p, d, func(cb func(error)) bool {
		if issued >= totalBytes {
			return false
		}
		issued += ioBytes
		lba := uint64(rng.Int63n(spanBlocks/blocksPerIO)) * uint64(blocksPerIO)
		buf := bufs[i%len(bufs)]
		i++
		if op == nvme.OpRead {
			d.ReadAsync(lba, uint32(blocksPerIO), buf, nil, cb)
		} else {
			d.WriteAsync(lba, uint32(blocksPerIO), buf, nil, cb)
		}
		return true
	})
	return PerfResult{Bytes: totalBytes, Elapsed: p.Now() - start}
}

// Latency measures per-command latency at queue depth 1.
func Latency(p *sim.Proc, d *Driver, op uint8, ioBytes int64, samples int, seed uint64) *sim.Histogram {
	rng := sim.NewRand(seed)
	buf := d.AllocBuffer(ioBytes)
	blocksPerIO := ioBytes / d.LBASize()
	spanBlocks := int64(d.CapacityBlocks()) / 2
	h := &sim.Histogram{}
	for s := 0; s < samples; s++ {
		lba := uint64(rng.Int63n(spanBlocks/blocksPerIO)) * uint64(blocksPerIO)
		start := p.Now()
		var err error
		if op == nvme.OpRead {
			err = d.Read(p, lba, uint32(blocksPerIO), buf, nil)
		} else {
			err = d.Write(p, lba, uint32(blocksPerIO), buf, nil)
		}
		if err != nil {
			panic(err)
		}
		// The calibrated observation residual applies to the latency
		// measurement only (see DriverConfig.ReadObservationDelay).
		if op == nvme.OpRead {
			p.Sleep(d.cfg.ReadObservationDelay)
		}
		h.Add(p.Now() - start)
	}
	return h
}

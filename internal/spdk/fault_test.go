package spdk

import (
	"errors"
	"testing"

	"snacc/internal/nvme"
	"snacc/internal/sim"
)

// faultRig attaches a driver to a device with an installed fault injector.
func faultRig(t *testing.T, inject func(nvme.Command) uint16) (*sim.Kernel, chan *Driver) {
	t.Helper()
	k, _, dev, out := attach(t, false, 0)
	dev.SetFaultInjector(inject)
	return k, out
}

func TestIOFaultSurfacesAsError(t *testing.T) {
	k, out := faultRig(t, func(cmd nvme.Command) uint16 {
		if cmd.Opcode == nvme.OpRead {
			return nvme.StatusInternalError
		}
		return nvme.StatusSuccess
	})
	k.Spawn("io", func(p *sim.Proc) {
		for len(out) == 0 {
			p.Sleep(sim.Millisecond)
		}
		d := <-out
		buf := d.AllocBuffer(4096)
		if err := d.Write(p, 0, 8, buf, nil); err != nil {
			t.Errorf("write should survive a read-only injector: %v", err)
		}
		err := d.Read(p, 0, 8, buf, nil)
		if err == nil {
			t.Fatal("injected read fault never surfaced")
		}
		var cmdErr *nvme.StatusError
		if !errors.As(err, &cmdErr) {
			t.Fatalf("error %v is not a *nvme.StatusError", err)
		}
		if cmdErr.Status != nvme.StatusInternalError {
			t.Fatalf("status %#x, want internal error", cmdErr.Status)
		}
	})
	k.Run(0)
}

func TestIntermittentFaultsDoNotWedgeTheQueue(t *testing.T) {
	// Every third command fails; the ring must keep flowing and deliver
	// each completion (success or failure) exactly once.
	n := 0
	k, out := faultRig(t, func(cmd nvme.Command) uint16 {
		if cmd.Opcode != nvme.OpWrite {
			return nvme.StatusSuccess
		}
		n++
		if n%3 == 0 {
			return nvme.StatusInternalError
		}
		return nvme.StatusSuccess
	})
	k.Spawn("io", func(p *sim.Proc) {
		for len(out) == 0 {
			p.Sleep(sim.Millisecond)
		}
		d := <-out
		buf := d.AllocBuffer(4096)
		const ops = 96
		fails, successes := 0, 0
		got := sim.NewChan[error](p.Kernel(), ops)
		for i := 0; i < ops; i++ {
			d.WriteAsync(uint64(i*8), 8, buf, nil, func(err error) { got.TryPut(err) })
		}
		for i := 0; i < ops; i++ {
			if err := got.Get(p); err != nil {
				fails++
			} else {
				successes++
			}
		}
		if fails != ops/3 || successes != ops-ops/3 {
			t.Fatalf("%d failures / %d successes, want %d / %d", fails, successes, ops/3, ops-ops/3)
		}
		// The queue still works after the fault storm.
		if err := d.Read(p, 0, 8, buf, nil); err != nil {
			t.Fatalf("post-storm read: %v", err)
		}
	})
	k.Run(0)
}

func TestFaultsCountInErrorLog(t *testing.T) {
	k, out := faultRig(t, func(cmd nvme.Command) uint16 {
		if cmd.Opcode == nvme.OpWrite {
			return nvme.StatusInternalError
		}
		return nvme.StatusSuccess
	})
	k.Spawn("io", func(p *sim.Proc) {
		for len(out) == 0 {
			p.Sleep(sim.Millisecond)
		}
		d := <-out
		buf := d.AllocBuffer(4096)
		for i := 0; i < 3; i++ {
			if err := d.Write(p, 0, 8, buf, nil); err == nil {
				t.Fatal("injected fault not surfaced")
			}
		}
		entries, err := d.ReadErrorLog(p, 4)
		if err != nil {
			t.Fatalf("ReadErrorLog: %v", err)
		}
		nonEmpty := 0
		for _, e := range entries {
			if e.Status != 0 {
				nonEmpty++
			}
		}
		if nonEmpty < 3 {
			t.Fatalf("error log holds %d entries, want >= 3", nonEmpty)
		}
	})
	k.Run(0)
}

package obs

import (
	"testing"

	"snacc/internal/sim"
)

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Begin(0x02, false, 0x1000, 4096, 10)
	if sp.ID != 0 || sp.Stages[StageAccepted] != 10 {
		t.Fatalf("Begin: id=%d accepted=%v", sp.ID, sp.Stages[StageAccepted])
	}
	sp.Mark(StageBufReady, 12)
	sp.Mark(StageSubmitted, 14)
	sp.Mark(StageDoorbell, 14)
	sp.Mark(StageFetched, 20)
	sp.Mark(StageTransfer, 25)
	sp.Mark(StageCQE, 40)
	tr.End(sp, 0, 45)
	if !sp.Closed() || sp.Stages[StageRetired] != 45 {
		t.Fatal("End did not close/mark the span")
	}
	if !sp.Monotone() {
		t.Fatal("clean span not monotone")
	}
	if tr.Opened() != 1 || tr.Closed() != 1 {
		t.Fatalf("opened/closed = %d/%d", tr.Opened(), tr.Closed())
	}
	// Post-close marks and annotations are dropped.
	sp.Mark(StageCQE, 1)
	sp.Annotate(AnnotRetry, 1)
	if sp.Stages[StageCQE] != 40 || len(sp.Annots) != 0 {
		t.Fatal("closed span accepted a mark/annotation")
	}
	// Double close is counted, not fatal.
	tr.End(sp, 0, 50)
	if tr.DoubleCloses() != 1 || tr.Closed() != 1 {
		t.Fatalf("double close: %d closed=%d", tr.DoubleCloses(), tr.Closed())
	}
	// Transition histograms tile the span.
	var total sim.Time
	for st := Stage(0); st < NumStages; st++ {
		total += tr.StageHist(st).Sum()
	}
	if total != 45-10 {
		t.Fatalf("stage transitions sum to %v, want 35", total)
	}
	if tr.E2E(false).Count() != 1 || tr.E2E(false).Max() != 35 {
		t.Fatalf("read e2e hist: %v", tr.E2E(false))
	}
}

func TestSpanResubmitClearsDevicePath(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Begin(0x01, true, 0, 512, 0)
	sp.Mark(StageBufReady, 1)
	sp.Mark(StageSubmitted, 2)
	sp.Mark(StageDoorbell, 2)
	sp.Mark(StageFetched, 5)
	sp.Mark(StageTransfer, 8)
	sp.Annotate(AnnotTimeout, 100)
	sp.Resubmit()
	sp.Mark(StageSubmitted, 101)
	sp.Mark(StageDoorbell, 101)
	// The first attempt's late CQE rescues the command before the second
	// attempt is fetched: fetched/transfer stay unmarked, and the span must
	// still be monotone.
	sp.Mark(StageCQE, 105)
	tr.End(sp, 0, 106)
	if sp.Stages[StageFetched] != unmarked || sp.Stages[StageTransfer] != unmarked {
		t.Fatal("Resubmit did not clear device-path stages")
	}
	if !sp.Monotone() {
		t.Fatalf("resubmitted span not monotone: %v", sp.Stages)
	}
	if len(sp.Annots) != 1 || sp.Annots[0].Kind != AnnotTimeout {
		t.Fatalf("annotations lost: %v", sp.Annots)
	}
}

func TestSpanMonotoneDetectsRegression(t *testing.T) {
	sp := &Span{}
	for i := range sp.Stages {
		sp.Stages[i] = unmarked
	}
	sp.Stages[StageFetched] = 50
	sp.Stages[StageSubmitted] = 90 // out of order
	if sp.Monotone() {
		t.Fatal("Monotone missed a regression")
	}
}

func TestTracerSpanLimitAndNilSafety(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		sp := tr.Begin(0x02, false, 0, 512, sim.Time(i))
		tr.End(sp, 0, sim.Time(i+1))
	}
	if len(tr.Spans()) != 2 || tr.Dropped() != 3 {
		t.Fatalf("limit: retained %d dropped %d", len(tr.Spans()), tr.Dropped())
	}
	if tr.Closed() != 5 {
		t.Fatalf("histogram aggregation must continue past the limit: closed=%d", tr.Closed())
	}
	tr.Event(AnnotBreakerTrip, 7)
	if ev := tr.Events(); len(ev) != 1 || ev[0].Kind != AnnotBreakerTrip {
		t.Fatalf("events: %v", ev)
	}

	// A nil tracer and nil span must be inert at every call site.
	var nilTr *Tracer
	sp := nilTr.Begin(0, false, 0, 0, 0)
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.Mark(StageCQE, 1)
	sp.Annotate(AnnotRetry, 1)
	sp.Resubmit()
	sp.SetQueue(3)
	nilTr.End(sp, 0, 1)
	nilTr.LateEvent()
	nilTr.Event(AnnotReset, 1)
	nilTr.CountDoorbell()
	nilTr.CountCommand()
	if nilTr.Opened() != 0 || nilTr.Spans() != nil || nilTr.StageHist(StageCQE) != nil || nilTr.E2E(true) != nil {
		t.Fatal("nil tracer leaked state")
	}
	if nilTr.Doorbells() != 0 || nilTr.Commands() != 0 || nilTr.DoorbellRatio() != 0 {
		t.Fatal("nil tracer leaked doorbell counters")
	}
}

// TestTracerDoorbellCounters pins the doorbells-per-command accounting the
// queue sweep reports: 2.0 for the uncoalesced protocol (one SQ tail ring
// plus one CQ head update per command), dropping as batches coalesce, 0
// before anything was submitted.
func TestTracerDoorbellCounters(t *testing.T) {
	tr := NewTracer(0)
	if tr.DoorbellRatio() != 0 {
		t.Fatalf("ratio with no commands = %v, want 0", tr.DoorbellRatio())
	}
	for i := 0; i < 4; i++ {
		tr.CountCommand()
		tr.CountDoorbell() // SQ tail ring
		tr.CountDoorbell() // CQ head update
	}
	if tr.Commands() != 4 || tr.Doorbells() != 8 {
		t.Fatalf("commands/doorbells = %d/%d, want 4/8", tr.Commands(), tr.Doorbells())
	}
	if tr.DoorbellRatio() != 2.0 {
		t.Fatalf("uncoalesced ratio = %v, want 2.0", tr.DoorbellRatio())
	}
	// Four more commands coalesced into a single tail ring and head update.
	for i := 0; i < 4; i++ {
		tr.CountCommand()
	}
	tr.CountDoorbell()
	tr.CountDoorbell()
	if got := tr.DoorbellRatio(); got != 1.25 {
		t.Fatalf("coalesced ratio = %v, want 1.25", got)
	}
}

// TestSpanSetQueue pins the queue annotation: sticky on the live span,
// inert after close.
func TestSpanSetQueue(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Begin(0x02, false, 0, 512, 0)
	sp.SetQueue(2)
	if sp.Queue != 2 {
		t.Fatalf("Queue = %d, want 2", sp.Queue)
	}
	tr.End(sp, 0, 10)
	sp.SetQueue(7)
	if sp.Queue != 2 {
		t.Fatalf("closed span accepted SetQueue: Queue = %d, want 2", sp.Queue)
	}
}

func TestBreakdown(t *testing.T) {
	tr := NewTracer(8)
	mk := func(write bool, base sim.Time) {
		sp := tr.Begin(0x02, write, 0, 512, base)
		sp.Mark(StageSubmitted, base+2)
		sp.Mark(StageCQE, base+10)
		tr.End(sp, 0, base+11)
	}
	mk(false, 0)
	mk(true, 100)
	spans := tr.Spans()
	var reads []Span
	for _, sp := range spans {
		if !sp.Write {
			reads = append(reads, sp)
		}
	}
	b := NewBreakdown(reads)
	if b.Stage[StageSubmitted].Count() != 1 || b.Stage[StageSubmitted].Max() != 2 {
		t.Fatalf("breakdown submitted: %v", b.Stage[StageSubmitted].String())
	}
	if b.Stage[StageCQE].Max() != 8 || b.Stage[StageRetired].Max() != 1 {
		t.Fatal("breakdown transitions wrong")
	}
}

func TestStageAndAnnotStrings(t *testing.T) {
	if StageAccepted.String() != "accepted" || StageRetired.String() != "retired" {
		t.Fatal("stage names wrong")
	}
	if Stage(200).String() != "stage?" || AnnotKind(200).String() != "annot?" {
		t.Fatal("out-of-range names must not panic")
	}
	if AnnotReplay.String() != "replay" {
		t.Fatal("annot names wrong")
	}
}

// TestTracerTenantCounters: BeginTenant/End maintain per-tenant opened and
// closed counts that sum to the global ones, Begin attributes to tenant 0,
// and negative tenants clamp to 0.
func TestTracerTenantCounters(t *testing.T) {
	tr := NewTracer(8)
	a := tr.BeginTenant(0x02, false, 0, 4096, 1, 0)
	b := tr.BeginTenant(0x02, false, 0, 4096, 2, 2)
	c := tr.Begin(0x01, true, 0, 4096, 3) // tenant 0
	d := tr.BeginTenant(0x01, true, 0, 4096, 4, -7)
	if b.Tenant != 2 || a.Tenant != 0 || c.Tenant != 0 || d.Tenant != 0 {
		t.Fatalf("tenants = %d/%d/%d/%d", a.Tenant, b.Tenant, c.Tenant, d.Tenant)
	}
	if tr.OpenedByTenant(0) != 3 || tr.OpenedByTenant(1) != 0 || tr.OpenedByTenant(2) != 1 {
		t.Fatalf("opened by tenant = %d/%d/%d",
			tr.OpenedByTenant(0), tr.OpenedByTenant(1), tr.OpenedByTenant(2))
	}
	tr.End(a, 0, 10)
	tr.End(b, 0, 11)
	if tr.ClosedByTenant(0) != 1 || tr.ClosedByTenant(2) != 1 {
		t.Fatalf("closed by tenant = %d/%d", tr.ClosedByTenant(0), tr.ClosedByTenant(2))
	}
	var sum int64
	for i := 0; i < 3; i++ {
		sum += tr.OpenedByTenant(i)
	}
	if sum != tr.Opened() {
		t.Fatalf("per-tenant opened sums to %d, global %d", sum, tr.Opened())
	}
	// Out-of-range lookups and nil tracers are safe zeros.
	if tr.OpenedByTenant(-1) != 0 || tr.OpenedByTenant(99) != 0 {
		t.Fatal("out-of-range tenant lookup not zero")
	}
	var nilTr *Tracer
	if nilTr.OpenedByTenant(0) != 0 || nilTr.ClosedByTenant(0) != 0 {
		t.Fatal("nil tracer tenant lookup not zero")
	}
	if sp := nilTr.BeginTenant(0, false, 0, 0, 0, 1); sp != nil {
		t.Fatal("nil tracer BeginTenant returned a span")
	}
	// Tenant survives retirement into the retained copy.
	spans := tr.Spans()
	if len(spans) != 2 || spans[1].Tenant != 2 {
		t.Fatalf("retained spans lost tenant attribution: %+v", spans)
	}
}

// TestSpansDeepCopy is the aliasing regression test: mutating a span (and
// its Annots) returned by Spans must not change what the next call returns.
func TestSpansDeepCopy(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Begin(0x02, false, 0, 4096, 1)
	sp.Annotate(AnnotRetry, 5)
	sp.Annotate(AnnotTimeout, 6)
	tr.End(sp, 0, 10)

	got := tr.Spans()
	got[0].Annots[0].Kind = AnnotDead
	got[0].Annots[1].At = 999
	got[0].Status = 0xFF

	again := tr.Spans()
	if again[0].Annots[0].Kind != AnnotRetry || again[0].Annots[1].At != 6 {
		t.Error("Spans aliases the retained Annots backing array")
	}
	if again[0].Status == 0xFF {
		t.Error("Spans aliases retained span fields")
	}
}

// TestSpanNodeAttribution pins the cluster node identity: spans opened by a
// tracer stamped with SetNode carry the node id through retirement, and the
// nil tracer stays safe.
func TestSpanNodeAttribution(t *testing.T) {
	tr := NewTracer(8)
	tr.SetNode(3)
	if tr.Node() != 3 {
		t.Fatalf("Node() = %d, want 3", tr.Node())
	}
	sp := tr.Begin(0x02, false, 0, 4096, 1)
	if sp.Node != 3 {
		t.Fatalf("span opened with Node %d, want 3", sp.Node)
	}
	tr.End(sp, 0, 10)
	if got := tr.Spans(); len(got) != 1 || got[0].Node != 3 {
		t.Fatalf("retained span lost node attribution: %+v", got)
	}

	var nilTr *Tracer
	nilTr.SetNode(7)
	if nilTr.Node() != 0 {
		t.Fatalf("nil tracer Node() = %d, want 0", nilTr.Node())
	}
}

// Package obs is the per-command observability layer: span tracing across
// the NVMe command pipeline (PE acceptance → staging buffer → SQE → doorbell
// → controller fetch → data transfer → CQE → in-order retirement) and
// fixed-bucket latency histograms for the stage-to-stage transitions. It is
// the simulation counterpart of the ILA captures the paper's §5.2 uses to
// attribute the URAM write ceiling — but per command and always on, so tail
// latency can be attributed to a pipeline stage instead of inferred from
// aggregate means.
//
// Everything here is nil-safe and zero-value-ready: a Streamer without a
// Tracer pays one pointer compare per instrumentation site, and the
// histogram record path performs no allocations, preserving the hot-path
// guarantees of the benchmark suite.
package obs

import (
	"fmt"
	"math"
	"math/bits"

	"snacc/internal/sim"
)

// Bucketing: histSubCount linear sub-buckets per power-of-two octave
// (HDR-histogram style). With 32 sub-buckets the relative bucket width is
// ≤ 1/32 ≈ 3.1%, which is far below the run-to-run variation of any latency
// this simulator models, while the whole table for 63 octaves of sim.Time
// stays a fixed 15 KiB array — no allocation, ever.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	histSubMask  = histSubCount - 1
	histBuckets  = histSubCount * (64 - histSubBits + 1)
)

// Hist is a fixed-bucket, log-spaced latency histogram over non-negative
// sim.Time values. The zero value is ready to use; Record never allocates.
// Unlike sim.Histogram it does not retain samples, so its percentiles are
// bucket-quantized (≈3% relative error) but its memory is constant.
type Hist struct {
	counts [histBuckets]int64
	n      int64
	sum    sim.Time
	min    sim.Time
	max    sim.Time
}

// histBucket maps a value to its bucket index: identity below histSubCount,
// then histSubCount linear sub-buckets per octave.
func histBucket(v sim.Time) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1
	return ((exp - histSubBits + 1) << histSubBits) + int((u>>uint(exp-histSubBits))&histSubMask)
}

// histBucketHigh returns the largest value mapping to bucket i — the value
// reported for percentiles falling in that bucket (so quantiles are always
// conservative, never under-reported).
func histBucketHigh(i int) sim.Time {
	if i < histSubCount {
		return sim.Time(i)
	}
	exp := uint(i>>histSubBits) + histSubBits - 1
	width := int64(1) << (exp - histSubBits)
	lo := int64(1)<<exp + int64(i&histSubMask)*width
	return sim.Time(lo + width - 1)
}

// Record adds one sample. Negative values clamp to zero (stage deltas are
// non-negative by construction; the clamp keeps a corrupted input visible at
// bucket 0 instead of panicking).
func (h *Hist) Record(v sim.Time) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.counts[histBucket(v)]++
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.n }

// Sum returns the sum of all recorded samples.
func (h *Hist) Sum() sim.Time { return h.sum }

// Mean returns the arithmetic mean (exact, from the running sum).
func (h *Hist) Mean() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.sum / sim.Time(h.n)
}

// Min returns the smallest recorded sample (exact).
func (h *Hist) Min() sim.Time { return h.min }

// Max returns the largest recorded sample (exact).
func (h *Hist) Max() sim.Time { return h.max }

// Percentile returns the value at or below which p percent of samples fall,
// quantized to the containing bucket's upper bound and clamped into
// [Min, Max] so the extremes stay exact.
//
// Contract for out-of-range input: p is clamped into [0, 100] (p <= 0 yields
// Min, p >= 100 yields Max) and NaN yields 0 — a poisoned quantile must not
// masquerade as a real latency. int64(NaN) is platform-dependent in Go, so
// without the explicit check the result would differ across architectures.
func (h *Hist) Percentile(p float64) sim.Time {
	if h.n == 0 || math.IsNaN(p) {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= rank {
			v := histBucketHigh(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// P50, P90, P99 and P999 are the quantiles the latency-breakdown reports use.
func (h *Hist) P50() sim.Time  { return h.Percentile(50) }
func (h *Hist) P90() sim.Time  { return h.Percentile(90) }
func (h *Hist) P99() sim.Time  { return h.Percentile(99) }
func (h *Hist) P999() sim.Time { return h.Percentile(99.9) }

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.n == 0 {
		return
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
}

// Reset clears the histogram.
func (h *Hist) Reset() { *h = Hist{} }

// String summarizes the distribution.
func (h *Hist) String() string {
	if h.n == 0 {
		return "hist: empty"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v p999=%v max=%v",
		h.n, h.Mean(), h.P50(), h.P90(), h.P99(), h.P999(), h.max)
}

package obs

import (
	"snacc/internal/sim"
)

// Stage identifies one timestamped edge in an NVMe command's pipeline
// lifecycle, in pipeline order. A span records at most one final timestamp
// per stage; a resubmission (retry or post-reset replay) clears the
// device-path stages so the retained timestamps always describe the attempt
// that produced the completion.
type Stage uint8

const (
	// StageAccepted: the PE's command beat was accepted by the submit FSM.
	StageAccepted Stage = iota
	// StageBufReady: staging-buffer space is reserved (and, for writes,
	// the payload is staged) — the command can go on the wire.
	StageBufReady
	// StageSubmitted: the SQE was encoded into the SQ FIFO.
	StageSubmitted
	// StageDoorbell: the SQ tail doorbell write was posted to the device.
	StageDoorbell
	// StageFetched: the controller's fetch engine pulled the SQE over PCIe.
	StageFetched
	// StageTransfer: the controller began executing the data transfer.
	StageTransfer
	// StageCQE: the completion entry reached the reorder buffer.
	StageCQE
	// StageRetired: the command retired in order to the PE.
	StageRetired

	// NumStages bounds the per-span stage table.
	NumStages
)

var stageNames = [NumStages]string{
	"accepted", "buf-ready", "submitted", "doorbell",
	"fetched", "transfer", "cqe", "retired",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// AnnotKind classifies a span or tracer annotation — the fault and
// crash-recovery machinery leaving its fingerprints on the timeline.
type AnnotKind uint8

const (
	// AnnotRetry: the command was resubmitted (error status or watchdog).
	AnnotRetry AnnotKind = iota
	// AnnotTimeout: the completion watchdog expired for this command.
	AnnotTimeout
	// AnnotReplay: the command was resubmitted by the post-reset replay.
	AnnotReplay
	// AnnotBreakerTrip: the controller-failure circuit breaker opened.
	AnnotBreakerTrip
	// AnnotReset: a controller reset attempt was issued.
	AnnotReset
	// AnnotDead: the controller was declared permanently dead.
	AnnotDead
	// AnnotFailFast: the command failed fast against a dead controller
	// without ever going on the wire.
	AnnotFailFast
)

var annotNames = [...]string{
	"retry", "timeout", "replay", "breaker-trip", "reset", "dead", "fail-fast",
}

func (k AnnotKind) String() string {
	if int(k) < len(annotNames) {
		return annotNames[k]
	}
	return "annot?"
}

// Annot is one timestamped annotation.
type Annot struct {
	Kind AnnotKind
	At   sim.Time
}

// unmarked is the sentinel for a stage with no timestamp.
const unmarked = sim.Time(-1)

// Span follows one NVMe command from PE acceptance to in-order retirement.
// All methods are nil-receiver safe so instrumentation sites need no guard.
type Span struct {
	// ID numbers spans in Begin order within one Tracer.
	ID uint64
	// Op is the NVMe opcode; Write is its direction.
	Op    uint8
	Write bool
	// Addr/Len locate the command on the namespace (byte quantities).
	Addr uint64
	Len  int64
	// Status is the final NVMe status, valid once the span is closed.
	Status uint16
	// Stages holds the per-stage timestamps, unmarked (-1) where the
	// stage was never observed (e.g. no fetch for a fail-fast command).
	Stages [NumStages]sim.Time
	// Annots lists retry/replay/breaker annotations in time order.
	Annots []Annot
	// Queue is the I/O queue pair the command was placed on (0 in the
	// single-queue configuration; sticky across retries and replays).
	Queue int
	// Tenant is the tenant the command was submitted for (0 both for the
	// first tenant and for untenanted traffic; fixed at Begin time so every
	// retry and replay of the command stays attributed to its owner).
	Tenant int
	// Node is the cluster node that served the command (0 both for the
	// first node and for single-node systems; stamped at Begin time from
	// the tracer's node identity, so merged multi-node span sets stay
	// attributable).
	Node int

	closed bool
}

// SetQueue annotates the span with the I/O queue pair index the command was
// placed on.
func (sp *Span) SetQueue(q int) {
	if sp == nil || sp.closed {
		return
	}
	sp.Queue = q
}

// Mark records the timestamp of stage st. Later marks win (a resubmitted
// command re-marks the device path); marks on a closed span are dropped.
func (sp *Span) Mark(st Stage, at sim.Time) {
	if sp == nil || sp.closed {
		return
	}
	sp.Stages[st] = at
}

// Annotate appends a timestamped annotation.
func (sp *Span) Annotate(k AnnotKind, at sim.Time) {
	if sp == nil || sp.closed {
		return
	}
	sp.Annots = append(sp.Annots, Annot{Kind: k, At: at})
}

// Resubmit clears the device-path stages (submitted … cqe) ahead of a new
// attempt, so a span never mixes timestamps of different attempts: stale
// fetch/transfer marks from a superseded attempt would otherwise break
// monotonicity when the new attempt's submission lands after them.
func (sp *Span) Resubmit() {
	if sp == nil || sp.closed {
		return
	}
	for st := StageSubmitted; st <= StageCQE; st++ {
		sp.Stages[st] = unmarked
	}
}

// Closed reports whether the span has been ended.
func (sp *Span) Closed() bool { return sp != nil && sp.closed }

// Monotone reports whether the marked stages carry non-decreasing
// timestamps in pipeline order — the core span invariant.
func (sp *Span) Monotone() bool {
	prev := unmarked
	for _, at := range sp.Stages {
		if at == unmarked {
			continue
		}
		if prev != unmarked && at < prev {
			return false
		}
		prev = at
	}
	return true
}

// Tracer collects spans and aggregates per-stage latency histograms. All
// methods are nil-receiver safe; a nil Tracer records nothing.
//
// Aggregation model: stage[st] is the latency of the transition INTO stage
// st, measured from the previous marked stage of the same span (skipping
// stages the completing attempt never touched), so the per-stage histograms
// tile each span's end-to-end latency exactly.
type Tracer struct {
	limit  int
	nextID uint64
	node   int

	opened      int64
	closed      int64
	dropped     int64
	late        int64
	doubleClose int64
	doorbells   int64
	commands    int64

	// openedT/closedT count spans per tenant, indexed by tenant and grown
	// on demand; the multi-tenant invariant tests diff them per tenant the
	// way opened/closed are diffed globally.
	openedT []int64
	closedT []int64

	spans    []Span
	stage    [NumStages]Hist
	readE2E  Hist
	writeE2E Hist
	events   []Annot
}

// DefaultSpanLimit caps retained completed spans unless NewTracer is told
// otherwise. Histograms and counters keep aggregating past the cap.
const DefaultSpanLimit = 512

// NewTracer returns a tracer retaining up to limit completed spans
// (DefaultSpanLimit when limit <= 0). The first limit spans to complete are
// kept — deterministic, and the interesting ones for a waterfall.
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Tracer{limit: limit}
}

// Begin opens a span for one NVMe command, marking StageAccepted at `at`.
// Equivalent to BeginTenant with tenant 0, so untenanted callers need no
// change when tenancy is off.
func (t *Tracer) Begin(op uint8, write bool, addr uint64, n int64, at sim.Time) *Span {
	return t.BeginTenant(op, write, addr, n, at, 0)
}

// SetNode records the cluster node identity this tracer traces for; every
// span it subsequently opens carries the id. Nil-receiver safe.
func (t *Tracer) SetNode(id int) {
	if t == nil {
		return
	}
	t.node = id
}

// Node returns the tracer's node identity (0 unless SetNode was called).
func (t *Tracer) Node() int {
	if t == nil {
		return 0
	}
	return t.node
}

// BeginTenant opens a span attributed to one tenant, marking StageAccepted
// at `at`. Negative tenant indices clamp to 0.
func (t *Tracer) BeginTenant(op uint8, write bool, addr uint64, n int64, at sim.Time, tenant int) *Span {
	if t == nil {
		return nil
	}
	if tenant < 0 {
		tenant = 0
	}
	t.opened++
	t.openedT = growCount(t.openedT, tenant)
	t.openedT[tenant]++
	sp := &Span{ID: t.nextID, Op: op, Write: write, Addr: addr, Len: n, Tenant: tenant, Node: t.node}
	t.nextID++
	for i := range sp.Stages {
		sp.Stages[i] = unmarked
	}
	sp.Stages[StageAccepted] = at
	return sp
}

// growCount extends a per-tenant counter slice to cover index i.
func growCount(s []int64, i int) []int64 {
	for len(s) <= i {
		s = append(s, 0)
	}
	return s
}

// End closes a span: marks StageRetired at `at`, latches the final status,
// folds the stage transitions into the histograms, and retains the span if
// the limit allows. Ending a span twice is counted, not fatal — it would
// mean a slot retired twice, which the invariant tests assert never happens.
func (t *Tracer) End(sp *Span, status uint16, at sim.Time) {
	if t == nil || sp == nil {
		return
	}
	if sp.closed {
		t.doubleClose++
		return
	}
	sp.Mark(StageRetired, at)
	sp.Status = status
	sp.closed = true
	t.closed++
	t.closedT = growCount(t.closedT, sp.Tenant)
	t.closedT[sp.Tenant]++
	prev := unmarked
	for st, ts := range sp.Stages {
		if ts == unmarked {
			continue
		}
		if prev != unmarked {
			t.stage[st].Record(ts - prev)
		}
		prev = ts
	}
	if e2e := sp.Stages[StageRetired] - sp.Stages[StageAccepted]; sp.Stages[StageAccepted] != unmarked {
		if sp.Write {
			t.writeE2E.Record(e2e)
		} else {
			t.readE2E.Record(e2e)
		}
	}
	if len(t.spans) < t.limit {
		t.spans = append(t.spans, *sp)
	} else {
		t.dropped++
	}
}

// LateEvent counts a pipeline event that arrived for a slot no live span
// owns — e.g. the fetch of a zombie attempt after a late completion already
// resolved the command.
func (t *Tracer) LateEvent() {
	if t != nil {
		t.late++
	}
}

// Event records a tracer-global annotation (breaker trip, reset, death).
func (t *Tracer) Event(k AnnotKind, at sim.Time) {
	if t != nil {
		t.events = append(t.events, Annot{Kind: k, At: at})
	}
}

// Spans returns a copy of the retained completed spans, in completion order.
// The copy is deep: each span's Annots slice is cloned too, so mutating a
// returned span can never corrupt the tracer's retained state (a shallow
// copy would alias the Annot backing arrays).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		if len(out[i].Annots) > 0 {
			annots := make([]Annot, len(out[i].Annots))
			copy(annots, out[i].Annots)
			out[i].Annots = annots
		}
	}
	return out
}

// Events returns a copy of the tracer-global annotations, in time order.
func (t *Tracer) Events() []Annot {
	if t == nil {
		return nil
	}
	out := make([]Annot, len(t.events))
	copy(out, t.events)
	return out
}

// StageHist returns the latency histogram of the transition into stage st
// (nil for a nil tracer). The histogram aggregates reads and writes; use
// Breakdown over Spans for a per-direction view.
func (t *Tracer) StageHist(st Stage) *Hist {
	if t == nil {
		return nil
	}
	return &t.stage[st]
}

// E2E returns the end-to-end (accepted → retired) latency histogram for the
// given direction.
func (t *Tracer) E2E(write bool) *Hist {
	if t == nil {
		return nil
	}
	if write {
		return &t.writeE2E
	}
	return &t.readE2E
}

// Accounting.

// Opened returns spans begun.
func (t *Tracer) Opened() int64 {
	if t == nil {
		return 0
	}
	return t.opened
}

// Closed returns spans ended.
func (t *Tracer) Closed() int64 {
	if t == nil {
		return 0
	}
	return t.closed
}

// OpenedByTenant returns spans begun for tenant i (0 for out-of-range i).
func (t *Tracer) OpenedByTenant(i int) int64 {
	if t == nil || i < 0 || i >= len(t.openedT) {
		return 0
	}
	return t.openedT[i]
}

// ClosedByTenant returns spans ended for tenant i (0 for out-of-range i).
func (t *Tracer) ClosedByTenant(i int) int64 {
	if t == nil || i < 0 || i >= len(t.closedT) {
		return 0
	}
	return t.closedT[i]
}

// Dropped returns completed spans not retained because of the span limit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// LateEvents returns pipeline events dropped because no live span owned the
// slot they named.
func (t *Tracer) LateEvents() int64 {
	if t == nil {
		return 0
	}
	return t.late
}

// DoubleCloses returns End calls on already-closed spans (always 0 unless a
// retirement invariant broke).
func (t *Tracer) DoubleCloses() int64 {
	if t == nil {
		return 0
	}
	return t.doubleClose
}

// CountDoorbell counts one posted doorbell write (SQ tail or CQ head).
func (t *Tracer) CountDoorbell() {
	if t != nil {
		t.doorbells++
	}
}

// CountCommand counts one NVMe command submission (including retries and
// replays — each re-encoded SQE eventually needs its tail rung).
func (t *Tracer) CountCommand() {
	if t != nil {
		t.commands++
	}
}

// Doorbells returns posted doorbell writes counted so far.
func (t *Tracer) Doorbells() int64 {
	if t == nil {
		return 0
	}
	return t.doorbells
}

// Commands returns NVMe command submissions counted so far.
func (t *Tracer) Commands() int64 {
	if t == nil {
		return 0
	}
	return t.commands
}

// DoorbellRatio returns doorbell writes per submitted command — 2.0 without
// coalescing (one tail ring plus one head update per command), approaching
// 2/DoorbellBatch as coalescing amortizes both sides. 0 when nothing was
// submitted or the tracer is nil.
func (t *Tracer) DoorbellRatio() float64 {
	if t == nil || t.commands == 0 {
		return 0
	}
	return float64(t.doorbells) / float64(t.commands)
}

// Breakdown aggregates per-stage transition histograms from a span set the
// caller has filtered (typically by direction) — same tiling rule as the
// tracer's live aggregation.
type Breakdown struct {
	Stage [NumStages]Hist
}

// NewBreakdown builds a Breakdown over spans.
func NewBreakdown(spans []Span) *Breakdown {
	b := &Breakdown{}
	for i := range spans {
		prev := unmarked
		for st, ts := range spans[i].Stages {
			if ts == unmarked {
				continue
			}
			if prev != unmarked {
				b.Stage[st].Record(ts - prev)
			}
			prev = ts
		}
	}
	return b
}

package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"snacc/internal/sim"
)

func TestHistBucketBounds(t *testing.T) {
	// Every value must land in a bucket whose upper bound is >= the value
	// and within the bucket's relative-width guarantee.
	vals := []sim.Time{0, 1, 31, 32, 33, 63, 64, 65, 1023, 1024, 4097,
		sim.Microsecond, sim.Millisecond, sim.Second, 1<<62 + 12345}
	for _, v := range vals {
		b := histBucket(v)
		hi := histBucketHigh(b)
		if hi < v {
			t.Errorf("value %d: bucket %d upper bound %d < value", v, b, hi)
		}
		if b > 0 && histBucketHigh(b-1) >= v {
			t.Errorf("value %d: previous bucket %d already covers it", v, b-1)
		}
		// Relative quantization error bounded by one sub-bucket width.
		if v >= histSubCount && float64(hi-v) > float64(v)/float64(histSubCount)+1 {
			t.Errorf("value %d: bucket upper bound %d overshoots by more than 1/%d", v, hi, histSubCount)
		}
	}
}

func TestHistBucketMonotone(t *testing.T) {
	prev := -1
	for v := sim.Time(0); v < 100000; v += 7 {
		b := histBucket(v)
		if b < prev {
			t.Fatalf("bucket index decreased at value %d: %d < %d", v, b, prev)
		}
		prev = b
	}
	if b := histBucket(sim.Time(1<<63 - 1)); b >= histBuckets {
		t.Fatalf("max value bucket %d out of range %d", b, histBuckets)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	rng := rand.New(rand.NewSource(42))
	samples := make([]int64, 10000)
	for i := range samples {
		samples[i] = rng.Int63n(int64(10 * sim.Millisecond))
		h.Record(sim.Time(samples[i]))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if h.Count() != 10000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != sim.Time(samples[0]) || h.Max() != sim.Time(samples[len(samples)-1]) {
		t.Fatalf("Min/Max = %v/%v, want %d/%d", h.Min(), h.Max(), samples[0], samples[len(samples)-1])
	}
	for _, p := range []float64{50, 90, 99, 99.9} {
		exact := samples[int(p/100*float64(len(samples)))-1]
		got := int64(h.Percentile(p))
		// Bucket-quantized: within one sub-bucket width above the exact rank.
		if got < exact || float64(got-exact) > float64(exact)/histSubCount+float64(histSubCount) {
			t.Errorf("p%v = %d, exact %d (error too large)", p, got, exact)
		}
	}
}

func TestHistEmptyAndEdge(t *testing.T) {
	var h Hist
	if h.Percentile(99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read as zero")
	}
	if h.String() != "hist: empty" {
		t.Fatalf("String = %q", h.String())
	}
	h.Record(-5) // clamps to 0
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative clamp: min=%v max=%v n=%d", h.Min(), h.Max(), h.Count())
	}
	h.Record(100)
	if h.Percentile(100) != 100 {
		t.Fatalf("p100 = %v, want 100", h.Percentile(100))
	}
	if h.Percentile(0) != 0 {
		t.Fatalf("p0 = %v, want 0", h.Percentile(0))
	}
}

func TestHistMergeReset(t *testing.T) {
	var a, b Hist
	for i := 0; i < 100; i++ {
		a.Record(sim.Time(i))
		b.Record(sim.Time(1000 + i))
	}
	a.Merge(&b)
	if a.Count() != 200 || a.Min() != 0 || a.Max() != 1099 {
		t.Fatalf("merge: n=%d min=%v max=%v", a.Count(), a.Min(), a.Max())
	}
	a.Merge(nil) // no-op
	if a.Count() != 200 {
		t.Fatal("merge(nil) changed the histogram")
	}
	a.Reset()
	if a.Count() != 0 || a.Sum() != 0 {
		t.Fatal("reset left state behind")
	}
}

func BenchmarkHistRecord(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(sim.Time(i) * 37)
	}
	if h.Count() != int64(b.N) {
		b.Fatal("miscount")
	}
}

// TestHistPercentileContract pins the out-of-range input contract: p is
// clamped into [0, 100] and NaN returns 0, on empty, single-sample, and
// populated histograms alike.
func TestHistPercentileContract(t *testing.T) {
	var empty Hist

	var single Hist
	single.Record(77)

	var multi Hist
	for v := sim.Time(1); v <= 100; v++ {
		multi.Record(v)
	}

	nan := math.NaN()
	cases := []struct {
		name string
		h    *Hist
		p    float64
		want sim.Time
	}{
		{"empty p50", &empty, 50, 0},
		{"empty NaN", &empty, nan, 0},
		{"empty negative", &empty, -10, 0},
		{"empty over", &empty, 250, 0},
		{"single p0", &single, 0, 77},
		{"single p50", &single, 50, 77},
		{"single p100", &single, 100, 77},
		{"single negative clamps to min", &single, -5, 77},
		{"single over clamps to max", &single, 101, 77},
		{"single NaN", &single, nan, 0},
		{"multi p0 clamps to min", &multi, 0, 1},
		{"multi negative clamps to min", &multi, -273.15, 1},
		{"multi p100 is max", &multi, 100, 100},
		{"multi over clamps to max", &multi, 1e9, 100},
		{"multi +Inf clamps to max", &multi, math.Inf(1), 100},
		{"multi -Inf clamps to min", &multi, math.Inf(-1), 1},
		{"multi NaN", &multi, nan, 0},
	}
	for _, tc := range cases {
		if got := tc.h.Percentile(tc.p); got != tc.want {
			t.Errorf("%s: Percentile(%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
	// In-range quantiles keep their ~3% bucket-quantization guarantee.
	if got := multi.Percentile(50); float64(got) < 50 || float64(got) > 52 {
		t.Errorf("p50 = %v, want within [50, 52]", got)
	}
}

package serve

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeeds builds the seed corpus: valid capsules of both kinds plus the
// canonical malformed shapes — truncated, oversized, bad-magic, and
// length-overflow capsules.
func fuzzSeeds() [][]byte {
	validRead := AppendRequest(nil, Request{ID: 1, Conn: 9, Op: OpRead, Addr: 4096, N: 4096})
	validWrite := AppendRequest(nil, Request{ID: 2, Conn: 3, Tenant: 1, Op: OpWrite, Addr: 0, N: 512, Flags: FlagFin})
	inline := AppendRequest(nil, Request{ID: 3, Conn: 1, Op: OpWrite, Addr: 512, N: 512, Payload: make([]byte, 512)})
	validResp := AppendResponse(nil, Response{ID: 1, Conn: 9, N: 4096, Read: true})
	failResp := AppendResponse(nil, Response{ID: 2, Conn: 3, Status: 1})

	badMagic := append([]byte(nil), validRead...)
	badMagic[0] = 0x00
	badVersion := append([]byte(nil), validRead...)
	badVersion[2] = 0xfe
	badOp := append([]byte(nil), validRead...)
	badOp[3] = 0x33

	// Length overflow: the prefix claims far more than the buffer holds,
	// and more than the oversize cap allows.
	overflow := append([]byte(nil), validRead...)
	binary.LittleEndian.PutUint32(overflow[4:], 0xffff_fff0)
	// Oversized: a length just past header+MaxTransferBytes.
	oversized := append([]byte(nil), validRead...)
	binary.LittleEndian.PutUint32(oversized[4:], RequestHeaderBytes+MaxTransferBytes+1)
	// Undersized: a length below the header.
	undersized := append([]byte(nil), validRead...)
	binary.LittleEndian.PutUint32(undersized[4:], 4)
	// Transfer shape violations.
	zeroN := append([]byte(nil), validRead...)
	binary.LittleEndian.PutUint64(zeroN[32:], 0)
	hugeN := append([]byte(nil), validRead...)
	binary.LittleEndian.PutUint64(hugeN[32:], 1<<63)

	return [][]byte{
		nil,
		{0x52},
		validRead[:7],                    // truncated prologue
		validRead[:RequestHeaderBytes-1], // truncated header
		inline[:len(inline)-100],         // truncated payload
		validRead,
		validWrite,
		inline,
		validResp,
		failResp,
		append(append([]byte(nil), validRead...), validWrite...), // stream of two
		badMagic,
		badVersion,
		badOp,
		overflow,
		oversized,
		undersized,
		zeroN,
		hugeN,
		bytes.Repeat([]byte{0x52, 0x53}, 40), // magic-looking garbage
	}
}

// FuzzParseFrame throws arbitrary bytes at both capsule decoders. Three
// properties: neither decoder panics, neither consumes bytes it did not
// validate (consumed == 0 on error, consumed <= len(input) on success), and
// any capsule a decoder accepts survives a re-encode byte-for-byte — the
// codec is the wire contract between the client fleet and the server, so
// "what you decoded is what was sent" has to hold exactly.
func FuzzParseFrame(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		if req, n, err := ParseRequest(input); err == nil {
			if n < RequestHeaderBytes || n > len(input) {
				t.Fatalf("request consumed %d of %d bytes", n, len(input))
			}
			enc := AppendRequest(nil, req)
			if !bytes.Equal(enc, input[:n]) {
				t.Fatalf("request re-encode diverged:\nin:  %x\nout: %x", input[:n], enc)
			}
		} else if n != 0 {
			t.Fatalf("request error %v consumed %d bytes", err, n)
		}
		if resp, n, err := ParseResponse(input); err == nil {
			if n < ResponseHeaderBytes || n > len(input) {
				t.Fatalf("response consumed %d of %d bytes", n, len(input))
			}
			enc := AppendResponse(nil, resp)
			if !bytes.Equal(enc, input[:n]) {
				t.Fatalf("response re-encode diverged:\nin:  %x\nout: %x", input[:n], enc)
			}
		} else if n != 0 {
			t.Fatalf("response error %v consumed %d bytes", err, n)
		}
	})
}

// Package serve is the open-loop RPC serving tier over the simulated 100 G
// link: a length-prefixed frame codec for request/response capsules, a
// compact array-backed connection table sized for a million simulated
// clients, and a front end that decodes arrivals off ethernet.MAC frames,
// batches them into the NVMe Streamer (or a TenantHub), and closes the
// backpressure loop — a full dispatch queue stalls the receiver, the MAC's
// 802.3x machinery pauses the transmitter, and the open-loop client sheds
// load at its bound instead of buffering without limit.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format. Every capsule is little-endian, length-prefixed, and starts
// with the same 8-byte prologue:
//
//	off 0  magic   uint16  0x5352 "SR"
//	off 2  version uint8   1
//	off 3  op      uint8   request: OpRead/OpWrite; response: opResponse
//	off 4  length  uint32  total capsule bytes, header + inline payload
//
// A request continues:
//
//	off 8  conn    uint32  connection id
//	off 12 tenant  uint16
//	off 14 flags   uint16  bit 0: FIN (close the connection after this op)
//	off 16 id      uint64  request id, echoed by the response
//	off 24 addr    uint64  device byte address (512-aligned)
//	off 32 n       uint64  transfer length (positive multiple of 512)
//
// A response continues:
//
//	off 8  conn    uint32
//	off 12 tenant  uint16
//	off 14 status  uint16  0 = OK
//	off 16 id      uint64
//	off 24 n       uint64  bytes actually moved
//
// The length field may exceed the header by the inline payload the capsule
// carries (write data on requests, read data on responses); a timing-only
// capsule omits the payload and charges it on the Ethernet frame's Bytes
// instead. Anything else — short buffer, wrong magic or version, a length
// below the header or past the oversize cap, a payload that matches neither
// zero nor n, an unaligned or oversized transfer — is a decode error. The
// decoder never panics and never reads past length (FuzzParseFrame pins
// both).

const (
	// Magic opens every capsule.
	Magic = 0x5352
	// Version is the only wire version this codec speaks.
	Version = 1

	// RequestHeaderBytes / ResponseHeaderBytes are the fixed header sizes.
	RequestHeaderBytes  = 40
	ResponseHeaderBytes = 32

	// MaxTransferBytes bounds a single request's transfer length; a length
	// prefix implying more than header+MaxTransferBytes is rejected as
	// oversized before any allocation happens.
	MaxTransferBytes = 4 << 20
)

// Op selects a request's storage operation.
type Op uint8

// Request operations, and the reserved response marker.
const (
	OpRead  Op = 1
	OpWrite Op = 2
	// opResponse tags response capsules so a request decoder pointed at a
	// response stream fails loudly instead of misparsing.
	opResponse Op = 0x80
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// FlagFin marks a request as the connection's last; the server closes the
// connection after dispatching it.
const FlagFin = 1 << 0

// Decode errors. All parse failures wrap one of these.
var (
	ErrTruncated = errors.New("serve: truncated capsule")
	ErrMagic     = errors.New("serve: bad capsule magic")
	ErrVersion   = errors.New("serve: unsupported capsule version")
	ErrOp        = errors.New("serve: unknown capsule op")
	ErrLength    = errors.New("serve: bad capsule length")
	ErrTransfer  = errors.New("serve: bad transfer shape")
)

// Request is one decoded RPC request.
type Request struct {
	ID     uint64
	Conn   uint32
	Tenant uint16
	Flags  uint16
	Op     Op
	Addr   uint64
	N      int64
	// Payload is the inline write data (nil for timing-only capsules).
	Payload []byte
}

// Fin reports whether the request closes its connection.
func (r Request) Fin() bool { return r.Flags&FlagFin != 0 }

// WireBytes is the capsule's modeled on-wire size: the header plus the
// operation's payload (write data travels with the request), whether or not
// the payload is carried inline.
func (r Request) WireBytes() int64 {
	if r.Op == OpWrite {
		return RequestHeaderBytes + r.N
	}
	return RequestHeaderBytes
}

// Response answers one request.
type Response struct {
	ID     uint64
	Conn   uint32
	Tenant uint16
	// Status is 0 on success; any other value is a server-side error code.
	Status uint16
	// N is the byte count the operation moved.
	N int64
	// Read marks a read response, whose payload travels back on the wire.
	Read bool
	// Payload is the inline read data (nil for timing-only capsules).
	Payload []byte
}

// WireBytes is the response's modeled on-wire size (read data travels with
// the response).
func (r Response) WireBytes() int64 {
	if r.Read {
		return ResponseHeaderBytes + r.N
	}
	return ResponseHeaderBytes
}

// AppendRequest encodes r onto dst and returns the extended slice.
func AppendRequest(dst []byte, r Request) []byte {
	var h [RequestHeaderBytes]byte
	binary.LittleEndian.PutUint16(h[0:], Magic)
	h[2] = Version
	h[3] = byte(r.Op)
	binary.LittleEndian.PutUint32(h[4:], uint32(RequestHeaderBytes+len(r.Payload)))
	binary.LittleEndian.PutUint32(h[8:], r.Conn)
	binary.LittleEndian.PutUint16(h[12:], r.Tenant)
	binary.LittleEndian.PutUint16(h[14:], r.Flags)
	binary.LittleEndian.PutUint64(h[16:], r.ID)
	binary.LittleEndian.PutUint64(h[24:], r.Addr)
	binary.LittleEndian.PutUint64(h[32:], uint64(r.N))
	dst = append(dst, h[:]...)
	return append(dst, r.Payload...)
}

// AppendResponse encodes r onto dst and returns the extended slice. The
// Read direction rides the status field's top bit so it survives the trip.
func AppendResponse(dst []byte, r Response) []byte {
	var h [ResponseHeaderBytes]byte
	binary.LittleEndian.PutUint16(h[0:], Magic)
	h[2] = Version
	h[3] = byte(opResponse)
	binary.LittleEndian.PutUint32(h[4:], uint32(ResponseHeaderBytes+len(r.Payload)))
	binary.LittleEndian.PutUint32(h[8:], r.Conn)
	binary.LittleEndian.PutUint16(h[12:], r.Tenant)
	status := r.Status
	if r.Read {
		status |= respReadBit
	}
	binary.LittleEndian.PutUint16(h[14:], status)
	binary.LittleEndian.PutUint64(h[16:], r.ID)
	binary.LittleEndian.PutUint64(h[24:], uint64(r.N))
	dst = append(dst, h[:]...)
	return append(dst, r.Payload...)
}

// respReadBit marks a read response in the status field. Status codes keep
// to the low 15 bits.
const respReadBit = 0x8000

// prologue validates the shared 8-byte capsule opening and returns the op
// and total capsule length. maxLen is the op-specific oversize cap.
func prologue(b []byte, minLen, maxLen int) (Op, int, error) {
	if len(b) < 8 {
		return 0, 0, fmt.Errorf("%w: %d of 8 prologue bytes", ErrTruncated, len(b))
	}
	if m := binary.LittleEndian.Uint16(b[0:]); m != Magic {
		return 0, 0, fmt.Errorf("%w: %#04x", ErrMagic, m)
	}
	if b[2] != Version {
		return 0, 0, fmt.Errorf("%w: %d", ErrVersion, b[2])
	}
	length := binary.LittleEndian.Uint32(b[4:])
	if length < uint32(minLen) || length > uint32(maxLen) {
		return 0, 0, fmt.Errorf("%w: %d outside [%d, %d]", ErrLength, length, minLen, maxLen)
	}
	if int(length) > len(b) {
		return 0, 0, fmt.Errorf("%w: capsule length %d, %d bytes buffered", ErrTruncated, length, len(b))
	}
	return Op(b[3]), int(length), nil
}

// ParseRequest decodes one request capsule from the front of b, returning
// the consumed byte count. It reads only b[:consumed] and never panics on
// arbitrary input.
func ParseRequest(b []byte) (Request, int, error) {
	op, length, err := prologue(b, RequestHeaderBytes, RequestHeaderBytes+MaxTransferBytes)
	if err != nil {
		return Request{}, 0, err
	}
	if op != OpRead && op != OpWrite {
		return Request{}, 0, fmt.Errorf("%w: %d in request stream", ErrOp, uint8(op))
	}
	r := Request{
		Op:     op,
		Conn:   binary.LittleEndian.Uint32(b[8:]),
		Tenant: binary.LittleEndian.Uint16(b[12:]),
		Flags:  binary.LittleEndian.Uint16(b[14:]),
		ID:     binary.LittleEndian.Uint64(b[16:]),
		Addr:   binary.LittleEndian.Uint64(b[24:]),
	}
	n := binary.LittleEndian.Uint64(b[32:])
	if n == 0 || n > MaxTransferBytes || n%512 != 0 || r.Addr%512 != 0 {
		return Request{}, 0, fmt.Errorf("%w: %d bytes at %#x", ErrTransfer, n, r.Addr)
	}
	r.N = int64(n)
	payload := length - RequestHeaderBytes
	if payload != 0 {
		if r.Op != OpWrite || int64(payload) != r.N {
			return Request{}, 0, fmt.Errorf("%w: %d inline bytes for a %d-byte %s", ErrLength, payload, r.N, r.Op)
		}
		r.Payload = b[RequestHeaderBytes:length:length]
	}
	return r, length, nil
}

// ParseResponse decodes one response capsule from the front of b, returning
// the consumed byte count. Same non-panic / no-over-read contract as
// ParseRequest.
func ParseResponse(b []byte) (Response, int, error) {
	op, length, err := prologue(b, ResponseHeaderBytes, ResponseHeaderBytes+MaxTransferBytes)
	if err != nil {
		return Response{}, 0, err
	}
	if op != opResponse {
		return Response{}, 0, fmt.Errorf("%w: %d in response stream", ErrOp, uint8(op))
	}
	status := binary.LittleEndian.Uint16(b[14:])
	r := Response{
		Conn:   binary.LittleEndian.Uint32(b[8:]),
		Tenant: binary.LittleEndian.Uint16(b[12:]),
		Status: status &^ respReadBit,
		Read:   status&respReadBit != 0,
		ID:     binary.LittleEndian.Uint64(b[16:]),
	}
	n := binary.LittleEndian.Uint64(b[24:])
	if n > MaxTransferBytes {
		return Response{}, 0, fmt.Errorf("%w: %d response bytes", ErrTransfer, n)
	}
	r.N = int64(n)
	payload := length - ResponseHeaderBytes
	if payload != 0 {
		if !r.Read || int64(payload) != r.N {
			return Response{}, 0, fmt.Errorf("%w: %d inline bytes for a %d-byte response", ErrLength, payload, r.N)
		}
		r.Payload = b[ResponseHeaderBytes:length:length]
	}
	return r, length, nil
}
